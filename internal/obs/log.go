package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds a slog.Logger for the -log-level / -log-format
// daemon flags. level is one of debug|info|warn|error and format is
// text|json.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "debug":
		lvl = slog.LevelDebug
	case "info", "":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch format {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("unknown log format %q (want text|json)", format)
	}
	return slog.New(h), nil
}

// Discard returns a logger that drops everything; used as the default
// when a library consumer passes no logger.
func Discard() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}
