package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets are the default request-latency bucket upper bounds in
// seconds (log-spaced 100µs..10s), shared by every endpoint class so
// series stay comparable across specs.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BatchSizeBuckets are the default micro-batch size bucket bounds.
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Counters are plain atomics; there is no lock anywhere on the observe
// path. The last implicit bucket is +Inf.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram returns a histogram over the given sorted upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a point-in-time copy of a histogram, used both as the
// compact /healthz mirror and for before/after deltas in loadgen.
// Counts are per-bucket (non-cumulative) with len(Bounds)+1 entries;
// the final entry is the +Inf bucket.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Nil-safe.
func (h *Histogram) Snapshot() *HistSnapshot {
	if h == nil {
		return nil
	}
	s := &HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Sub returns the delta snapshot s - prev (same bucket layout assumed).
// A nil prev returns s unchanged.
func (s *HistSnapshot) Sub(prev *HistSnapshot) *HistSnapshot {
	if s == nil {
		return nil
	}
	if prev == nil || len(prev.Counts) != len(s.Counts) {
		return s
	}
	d := &HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket. Values in the +Inf bucket clamp to the
// largest finite bound. Returns 0 when the snapshot is empty.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s == nil || s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// formatLe renders a bucket bound the way Prometheus clients expect
// (shortest float form; +Inf handled by the caller).
func formatLe(v float64) string {
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders the histogram as cumulative _bucket series
// plus _sum and _count. labels is a pre-rendered, comma-separated label
// list WITHOUT braces (e.g. `spec="fast",class="query"`); it may be
// empty. HELP/TYPE headers are the caller's responsibility so several
// label sets can share one metric family.
func (h *Histogram) WritePrometheus(w io.Writer, name, labels string) {
	if h == nil {
		return
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatLe(h.bounds[i])
		}
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, cum)
	}
	sum := math.Float64frombits(h.sumBits.Load())
	if labels != "" {
		fmt.Fprintf(w, "%s_sum{%s} %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.count.Load())
	} else {
		fmt.Fprintf(w, "%s_sum %g\n", name, sum)
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	}
}
