package obs

import "sync"

// Recorder keeps the most recent finished traces in a bounded ring.
// Publish is called after the HTTP response has been written, so the
// short critical section here is never on a request's latency path.
type Recorder struct {
	mu   sync.Mutex
	buf  []TraceRecord
	next int // index of the slot Publish writes next
	n    int // number of valid entries (<= len(buf))
}

// NewRecorder returns a ring holding up to capacity traces (min 1).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{buf: make([]TraceRecord, capacity)}
}

// Publish appends a finished trace, evicting the oldest when full.
// A nil Recorder drops the record.
func (r *Recorder) Publish(rec TraceRecord) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Recent returns up to limit traces, newest first, keeping only traces
// at least slowerThanUS microseconds long (0 keeps everything).
// limit <= 0 means no limit.
func (r *Recorder) Recent(limit int, slowerThanUS int64) []TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if limit <= 0 || limit > r.n {
		limit = r.n
	}
	out := make([]TraceRecord, 0, limit)
	for i := 1; i <= r.n && len(out) < limit; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		rec := r.buf[idx]
		if rec.DurationUS >= slowerThanUS {
			out = append(out, rec)
		}
	}
	return out
}
