package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsAndEnsureRequest(t *testing.T) {
	id := NewTraceID()
	if len(id) != 16 || !ValidID(id) {
		t.Fatalf("NewTraceID() = %q, want 16 hex chars", id)
	}
	if sp := NewSpanID(); len(sp) != 8 || !ValidID(sp) {
		t.Fatalf("NewSpanID() = %q, want 8 hex chars", sp)
	}
	if NewTraceID() == NewTraceID() {
		t.Fatal("consecutive trace IDs collided")
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("a", 65), "abc-def"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true, want false", bad)
		}
	}

	r := httptest.NewRequest("GET", "/", nil)
	minted := EnsureRequest(r)
	if !ValidID(minted) {
		t.Fatalf("minted ID %q invalid", minted)
	}
	if got := r.Header.Get(TraceHeader); got != minted {
		t.Fatalf("header not written back: %q vs %q", got, minted)
	}
	r2 := httptest.NewRequest("GET", "/", nil)
	r2.Header.Set(TraceHeader, "deadbeefdeadbeef")
	if got := EnsureRequest(r2); got != "deadbeefdeadbeef" {
		t.Fatalf("valid propagated ID replaced: %q", got)
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace("deadbeefdeadbeef", "/v1/gradient", "fast")
	s := tr.StartSpan("solve")
	time.Sleep(2 * time.Millisecond)
	s.SetAttr("mg_iters", 5)
	s.End()
	tr.AddSpan("batch_wait", time.Now().Add(-time.Millisecond), time.Millisecond)
	rec := tr.Finish(200)

	if rec.TraceID != "deadbeefdeadbeef" || rec.Endpoint != "/v1/gradient" || rec.Spec != "fast" {
		t.Fatalf("bad record identity: %+v", rec)
	}
	if rec.Status != 200 || rec.DurationUS <= 0 {
		t.Fatalf("bad status/duration: %+v", rec)
	}
	if len(rec.Spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(rec.Spans))
	}
	solve := rec.Spans[0]
	if solve.Name != "solve" || solve.DurationUS < 1000 {
		t.Fatalf("solve span not recorded: %+v", solve)
	}
	if len(solve.Attrs) != 1 || solve.Attrs[0].Key != "mg_iters" || solve.Attrs[0].Value != 5 {
		t.Fatalf("attr not recorded: %+v", solve.Attrs)
	}

	// Nil trace: everything is a no-op.
	var nilTr *Trace
	sp := nilTr.StartSpan("x")
	sp.SetAttr("k", 1)
	sp.End()
	nilTr.AddSpan("y", time.Now(), 0)
	if rec := nilTr.Finish(200); rec.TraceID != "" {
		t.Fatalf("nil trace produced record %+v", rec)
	}

	// Span overflow is dropped, not panicking.
	tr2 := NewTrace(NewTraceID(), "/x", "")
	for i := 0; i < maxSpans+4; i++ {
		tr2.StartSpan("s").End()
	}
	if got := len(tr2.Finish(200).Spans); got != maxSpans {
		t.Fatalf("overflow kept %d spans, want %d", got, maxSpans)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 6; i++ {
		r.Publish(TraceRecord{TraceID: NewTraceID(), DurationUS: int64(i * 100)})
	}
	got := r.Recent(0, 0)
	if len(got) != 4 {
		t.Fatalf("ring kept %d, want 4", len(got))
	}
	// Newest first: durations 500, 400, 300, 200.
	for i, want := range []int64{500, 400, 300, 200} {
		if got[i].DurationUS != want {
			t.Fatalf("order wrong at %d: %+v", i, got)
		}
	}
	if slow := r.Recent(0, 350); len(slow) != 2 {
		t.Fatalf("slow filter kept %d, want 2", len(slow))
	}
	if lim := r.Recent(3, 0); len(lim) != 3 {
		t.Fatalf("limit kept %d, want 3", len(lim))
	}

	var nilRec *Recorder
	nilRec.Publish(TraceRecord{})
	if nilRec.Recent(0, 0) != nil {
		t.Fatal("nil recorder returned records")
	}
}

func TestHistogramObserveSnapshotQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 106 {
		t.Fatalf("sum = %g, want 106", s.Sum)
	}
	// le=1 gets 0.5 and 1 (le semantics), le=2 gets 1.5, le=4 gets 3, +Inf gets 100.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if q := s.Quantile(1); q != 4 {
		t.Fatalf("q100 = %g, want clamp to 4", q)
	}
	if q := s.Quantile(0.5); q <= 0 || q > 2 {
		t.Fatalf("median = %g out of range", q)
	}

	d := h.Snapshot().Sub(s)
	if d.Count != 0 || d.Sum != 0 {
		t.Fatalf("zero delta expected, got %+v", d)
	}
	h.Observe(0.1)
	d = h.Snapshot().Sub(s)
	if d.Count != 1 || d.Counts[0] != 1 {
		t.Fatalf("delta after one observe: %+v", d)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g+1) * 0.0001)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
	s := h.Snapshot()
	var sum int64
	for _, c := range s.Counts {
		sum += c
	}
	if sum != 8000 {
		t.Fatalf("bucket sum = %d, want 8000", sum)
	}
}

func TestWritePrometheus(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(5)
	var buf bytes.Buffer
	h.WritePrometheus(&buf, "x_seconds", `spec="fast"`)
	out := buf.String()
	for _, want := range []string{
		`x_seconds_bucket{spec="fast",le="0.001"} 1`,
		`x_seconds_bucket{spec="fast",le="0.01"} 2`,
		`x_seconds_bucket{spec="fast",le="+Inf"} 3`,
		`x_seconds_count{spec="fast"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	var unlabeled bytes.Buffer
	h.WritePrometheus(&unlabeled, "y", "")
	if !strings.Contains(unlabeled.String(), `y_bucket{le="+Inf"} 3`) {
		t.Fatalf("unlabeled render wrong:\n%s", unlabeled.String())
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	lg.Debug("hello", "trace_id", "abc123")
	if !strings.Contains(buf.String(), `"trace_id":"abc123"`) {
		t.Fatalf("json log missing attr: %s", buf.String())
	}
	buf.Reset()
	lg, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("dropped")
	if buf.Len() != 0 {
		t.Fatalf("info not filtered at warn level: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
	Discard().Info("goes nowhere")
}
