// Package obs provides the observability primitives shared by vcseld,
// vcselctl and the client tooling: trace-ID propagation, cheap
// per-request span timelines, bounded trace ring buffers, fixed-bucket
// histograms with Prometheus text rendering, and log/slog setup.
//
// Everything here is stdlib-only and designed to stay off the query hot
// path: span recording costs a couple of monotonic clock reads, trace
// publication happens after the response is written, and histograms are
// plain atomic counters.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"
)

// Header names used to propagate trace context between vcselctl, vcseld
// and clients. Values are lowercase hex strings.
const (
	TraceHeader = "X-Trace-ID"
	SpanHeader  = "X-Span-ID"
)

func randHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// fixed ID rather than panicking in a request handler.
		return "0000000000000000"[:2*n]
	}
	return hex.EncodeToString(b)
}

// NewTraceID returns a fresh 16-hex-char trace ID.
func NewTraceID() string { return randHex(8) }

// NewSpanID returns a fresh 8-hex-char span ID.
func NewSpanID() string { return randHex(4) }

// ValidID reports whether s looks like a propagated ID: 1..64 hex chars.
func ValidID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') && (c < 'A' || c > 'F') {
			return false
		}
	}
	return true
}

// EnsureRequest returns the request's trace ID, minting one if the
// X-Trace-ID header is absent or malformed, and writes the final value
// back into the request headers so downstream handlers see it.
func EnsureRequest(r *http.Request) string {
	id := r.Header.Get(TraceHeader)
	if !ValidID(id) {
		id = NewTraceID()
		r.Header.Set(TraceHeader, id)
	}
	return id
}

// Attr is a numeric span attribute (e.g. mg iteration counts or phase
// fractions). A small slice of these avoids per-span map allocations.
type Attr struct {
	Key   string  `json:"key"`
	Value float64 `json:"value"`
}

// StrAttr is a string-valued span attribute (e.g. the latched coarse
// solver mode). Kept separate from Attr so the numeric fast path stays
// allocation-light and the JSON shape stays typed.
type StrAttr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRec is one finished span inside a trace, offsets relative to the
// trace start.
type SpanRec struct {
	Name       string    `json:"name"`
	StartUS    int64     `json:"start_us"`
	DurationUS int64     `json:"duration_us"`
	Attrs      []Attr    `json:"attrs,omitempty"`
	StrAttrs   []StrAttr `json:"str_attrs,omitempty"`
}

// TraceRecord is the wire form of a finished trace as served by
// GET /debug/requests.
type TraceRecord struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id,omitempty"`
	Endpoint   string    `json:"endpoint"`
	Spec       string    `json:"spec,omitempty"`
	Start      time.Time `json:"start"`
	DurationUS int64     `json:"duration_us"`
	Status     int       `json:"status"`
	Spans      []SpanRec `json:"spans,omitempty"`
}

// maxSpans bounds the per-trace span array; requests record at most a
// handful of phases, so overflow silently drops the extras.
const maxSpans = 12

// Trace accumulates spans for one in-flight request. It is owned by the
// request goroutine; methods are not safe for concurrent use. A nil
// *Trace is valid and makes every method a no-op, which is how tracing
// is disabled without branching at call sites.
type Trace struct {
	traceID  string
	spanID   string
	endpoint string
	spec     string
	start    time.Time
	n        int
	spans    [maxSpans]SpanRec
}

// NewTrace starts a trace for one request. spec may be empty.
func NewTrace(traceID, endpoint, spec string) *Trace {
	return &Trace{
		traceID:  traceID,
		spanID:   NewSpanID(),
		endpoint: endpoint,
		spec:     spec,
		start:    time.Now(),
	}
}

// TraceID returns the propagated trace ID ("" on a nil trace).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SetSpec sets the spec label after creation (resolved mid-handler).
func (t *Trace) SetSpec(spec string) {
	if t != nil {
		t.spec = spec
	}
}

// Span is a lightweight handle to an open span. The zero Span (or any
// span started on a nil trace) is inert.
type Span struct {
	t     *Trace
	idx   int
	start time.Time
}

// StartSpan opens a named span. Call End on the returned handle.
func (t *Trace) StartSpan(name string) Span {
	if t == nil || t.n >= maxSpans {
		return Span{}
	}
	idx := t.n
	t.n++
	now := time.Now()
	t.spans[idx] = SpanRec{Name: name, StartUS: now.Sub(t.start).Microseconds()}
	return Span{t: t, idx: idx, start: now}
}

// End closes the span, recording its duration.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.spans[s.idx].DurationUS = time.Since(s.start).Microseconds()
}

// SetAttr attaches a numeric attribute to the span.
func (s Span) SetAttr(key string, v float64) {
	if s.t == nil {
		return
	}
	rec := &s.t.spans[s.idx]
	rec.Attrs = append(rec.Attrs, Attr{Key: key, Value: v})
}

// SetStrAttr attaches a string attribute to the span. Empty values are
// dropped so call sites can pass through possibly-unset modes directly.
func (s Span) SetStrAttr(key, value string) {
	if s.t == nil || value == "" {
		return
	}
	rec := &s.t.spans[s.idx]
	rec.StrAttrs = append(rec.StrAttrs, StrAttr{Key: key, Value: value})
}

// AddSpan records an already-measured interval (e.g. a wait measured by
// the micro-batcher). The returned handle only serves SetAttr.
func (t *Trace) AddSpan(name string, start time.Time, d time.Duration) Span {
	if t == nil || t.n >= maxSpans {
		return Span{}
	}
	idx := t.n
	t.spans[idx] = SpanRec{
		Name:       name,
		StartUS:    start.Sub(t.start).Microseconds(),
		DurationUS: d.Microseconds(),
	}
	t.n++
	return Span{t: t, idx: idx, start: start}
}

// Finish seals the trace into its wire record. The span slice is copied
// so the Trace can be dropped immediately.
func (t *Trace) Finish(status int) TraceRecord {
	if t == nil {
		return TraceRecord{}
	}
	rec := TraceRecord{
		TraceID:    t.traceID,
		SpanID:     t.spanID,
		Endpoint:   t.endpoint,
		Spec:       t.spec,
		Start:      t.start,
		DurationUS: time.Since(t.start).Microseconds(),
		Status:     status,
		Spans:      append([]SpanRec(nil), t.spans[:t.n]...),
	}
	return rec
}

// Elapsed returns time since the trace started (0 on nil).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}
