package materials

import (
	"math"
	"testing"
	"testing/quick"
)

func TestStandardMaterialsValid(t *testing.T) {
	for _, m := range standardSet() {
		if err := m.Valid(); err != nil {
			t.Errorf("standard material %s invalid: %v", m.Name, err)
		}
	}
}

func TestMaterialValidation(t *testing.T) {
	bad := []Material{
		{Name: "", Conductivity: 1},
		{Name: "zero-k", Conductivity: 0},
		{Name: "neg-k", Conductivity: -5},
		{Name: "neg-rho", Conductivity: 1, Density: -1},
		{Name: "neg-cp", Conductivity: 1, SpecificHeat: -1},
	}
	for _, m := range bad {
		if err := m.Valid(); err == nil {
			t.Errorf("material %+v should be invalid", m)
		}
	}
}

func TestLibraryLookup(t *testing.T) {
	lib := NewLibrary()
	si, err := lib.Get("silicon")
	if err != nil {
		t.Fatalf("Get(silicon): %v", err)
	}
	if si.Conductivity != 130 {
		t.Errorf("silicon k = %g, want 130", si.Conductivity)
	}
	if _, err := lib.Get("unobtainium"); err == nil {
		t.Error("expected error for unknown material")
	}
}

func TestLibraryAddOverride(t *testing.T) {
	lib := NewLibrary()
	custom := Material{Name: "silicon", Conductivity: 100, Density: 2330, SpecificHeat: 700}
	if err := lib.Add(custom); err != nil {
		t.Fatalf("Add: %v", err)
	}
	got, _ := lib.Get("silicon")
	if got.Conductivity != 100 {
		t.Errorf("override failed: k = %g", got.Conductivity)
	}
	if err := lib.Add(Material{Name: "bad"}); err == nil {
		t.Error("Add should reject invalid material")
	}
}

func TestLibraryNamesSorted(t *testing.T) {
	lib := NewLibrary()
	names := lib.Names()
	if len(names) == 0 {
		t.Fatal("no names")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %s >= %s", names[i-1], names[i])
		}
	}
}

func TestSeriesConductivity(t *testing.T) {
	// Two equal layers with k=2 and k=4: 2t/(t/2+t/4) = 2/(3/4) = 8/3.
	k, err := SeriesConductivity([]float64{1e-3, 1e-3}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-8.0/3.0) > 1e-12 {
		t.Errorf("series k = %g, want %g", k, 8.0/3.0)
	}
}

func TestSeriesConductivitySingleLayer(t *testing.T) {
	k, err := SeriesConductivity([]float64{5e-4}, []float64{130})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k-130) > 1e-9 {
		t.Errorf("single layer series k = %g, want 130", k)
	}
}

func TestSeriesConductivityErrors(t *testing.T) {
	if _, err := SeriesConductivity(nil, nil); err == nil {
		t.Error("empty stack should error")
	}
	if _, err := SeriesConductivity([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := SeriesConductivity([]float64{0}, []float64{1}); err == nil {
		t.Error("zero thickness should error")
	}
	if _, err := SeriesConductivity([]float64{1}, []float64{0}); err == nil {
		t.Error("zero conductivity should error")
	}
}

func TestParallelConductivity(t *testing.T) {
	k, err := ParallelConductivity([]float64{0.25, 0.75}, []float64{400, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25*400 + 0.75*1
	if math.Abs(k-want) > 1e-12 {
		t.Errorf("parallel k = %g, want %g", k, want)
	}
}

func TestParallelConductivityErrors(t *testing.T) {
	if _, err := ParallelConductivity([]float64{0.5, 0.4}, []float64{1, 1}); err == nil {
		t.Error("fractions not summing to 1 should error")
	}
	if _, err := ParallelConductivity([]float64{-0.5, 1.5}, []float64{1, 1}); err == nil {
		t.Error("negative fraction should error")
	}
	if _, err := ParallelConductivity(nil, nil); err == nil {
		t.Error("empty should error")
	}
}

func TestTSVEffective(t *testing.T) {
	// 5 µm TSV on a 10 µm pitch in silicon (paper geometry).
	m, err := TSVEffective(Silicon, 5e-6, 10e-6)
	if err != nil {
		t.Fatal(err)
	}
	if m.Conductivity <= Silicon.Conductivity {
		t.Errorf("TSV composite k = %g should exceed host %g", m.Conductivity, Silicon.Conductivity)
	}
	if m.Conductivity >= Copper.Conductivity {
		t.Errorf("TSV composite k = %g should be below copper %g", m.Conductivity, Copper.Conductivity)
	}
	if err := m.Valid(); err != nil {
		t.Errorf("TSV composite invalid: %v", err)
	}
}

func TestTSVEffectiveErrors(t *testing.T) {
	if _, err := TSVEffective(Silicon, 0, 1e-5); err == nil {
		t.Error("zero diameter should error")
	}
	if _, err := TSVEffective(Silicon, 2e-5, 1e-5); err == nil {
		t.Error("diameter > pitch should error")
	}
}

func TestBEOLEffective(t *testing.T) {
	m, err := BEOLEffective(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Conductivity <= SiliconDioxide.Conductivity || m.Conductivity >= Copper.Conductivity {
		t.Errorf("BEOL k = %g outside (%g, %g)", m.Conductivity, SiliconDioxide.Conductivity, Copper.Conductivity)
	}
	if _, err := BEOLEffective(1.5); err == nil {
		t.Error("fraction > 1 should error")
	}
	if _, err := BEOLEffective(-0.1); err == nil {
		t.Error("negative fraction should error")
	}
}

func TestC4Effective(t *testing.T) {
	m, err := C4Effective(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Conductivity <= Epoxy.Conductivity {
		t.Errorf("C4 k = %g should exceed underfill %g", m.Conductivity, Epoxy.Conductivity)
	}
	if _, err := C4Effective(2); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestVolumetricHeatCapacity(t *testing.T) {
	got := Silicon.VolumetricHeatCapacity()
	want := 2330.0 * 700.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("silicon rho*cp = %g, want %g", got, want)
	}
}

// Property: series conductivity lies between min and max component
// conductivity (a physical bound for layered composites).
func TestQuickSeriesBounds(t *testing.T) {
	f := func(t1, t2, k1, k2 float64) bool {
		th1 := 1e-6 + math.Abs(t1)
		th2 := 1e-6 + math.Abs(t2)
		kk1 := 0.1 + math.Abs(k1)
		kk2 := 0.1 + math.Abs(k2)
		if math.IsInf(th1+th2+kk1+kk2, 0) || math.IsNaN(th1+th2+kk1+kk2) {
			return true
		}
		k, err := SeriesConductivity([]float64{th1, th2}, []float64{kk1, kk2})
		if err != nil {
			return false
		}
		lo, hi := math.Min(kk1, kk2), math.Max(kk1, kk2)
		return k >= lo-1e-9 && k <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parallel conductivity is bounded by components and is always
// >= series conductivity with the same pair (Wiener bounds).
func TestQuickWienerBounds(t *testing.T) {
	f := func(frac, k1, k2 float64) bool {
		fr := math.Mod(math.Abs(frac), 1)
		kk1 := 0.1 + math.Abs(k1)
		kk2 := 0.1 + math.Abs(k2)
		if math.IsInf(kk1+kk2, 0) || math.IsNaN(kk1+kk2) {
			return true
		}
		par, err := ParallelConductivity([]float64{fr, 1 - fr}, []float64{kk1, kk2})
		if err != nil {
			return false
		}
		// Series with thickness fractions as weights.
		if fr == 0 || fr == 1 {
			return true
		}
		ser, err := SeriesConductivity([]float64{fr, 1 - fr}, []float64{kk1, kk2})
		if err != nil {
			return false
		}
		return par >= ser-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
