// Package materials provides the thermophysical material library used by the
// thermal simulator: thermal conductivity, density and specific heat for the
// solids appearing in a 3D-stacked optical MPSoC package, plus helpers for
// composite (effective-medium) materials such as TSV arrays, BEOL stacks and
// C4 bump layers.
//
// Values are bulk, room-temperature engineering constants in SI units:
// conductivity in W/(m·K), density in kg/m³, specific heat in J/(kg·K).
package materials

import (
	"fmt"
	"sort"
)

// Material describes an isotropic solid used in the thermal model.
type Material struct {
	// Name identifies the material in specs and error messages.
	Name string
	// Conductivity is the thermal conductivity in W/(m·K).
	Conductivity float64
	// Density is the mass density in kg/m³.
	Density float64
	// SpecificHeat is the specific heat capacity in J/(kg·K).
	SpecificHeat float64
}

// VolumetricHeatCapacity returns density × specific heat in J/(m³·K), the
// quantity used by transient finite-volume simulation.
func (m Material) VolumetricHeatCapacity() float64 {
	return m.Density * m.SpecificHeat
}

// Valid reports whether the material has physically meaningful parameters
// for steady-state simulation (positive conductivity).
func (m Material) Valid() error {
	if m.Name == "" {
		return fmt.Errorf("materials: unnamed material")
	}
	if m.Conductivity <= 0 {
		return fmt.Errorf("materials: %s: conductivity %g must be > 0", m.Name, m.Conductivity)
	}
	if m.Density < 0 || m.SpecificHeat < 0 {
		return fmt.Errorf("materials: %s: negative density or specific heat", m.Name)
	}
	return nil
}

// Standard materials for the SCC + ONoC package stack (Fig. 7 of the paper).
var (
	// Silicon is bulk crystalline silicon (die, interposer, handle wafer).
	Silicon = Material{Name: "silicon", Conductivity: 130, Density: 2330, SpecificHeat: 700}
	// SiliconDioxide is thermal oxide / cladding (buried oxide, waveguide cladding).
	SiliconDioxide = Material{Name: "sio2", Conductivity: 1.4, Density: 2200, SpecificHeat: 740}
	// Copper is used for the package lid and heat-sink base.
	Copper = Material{Name: "copper", Conductivity: 400, Density: 8960, SpecificHeat: 385}
	// Aluminium is a common heat-sink fin material.
	Aluminium = Material{Name: "aluminium", Conductivity: 237, Density: 2700, SpecificHeat: 897}
	// TIM is a thermal interface material (grease/gel) between die and lid.
	TIM = Material{Name: "tim", Conductivity: 4, Density: 2500, SpecificHeat: 1000}
	// Epoxy is underfill/moulding compound.
	Epoxy = Material{Name: "epoxy", Conductivity: 0.9, Density: 1800, SpecificHeat: 1000}
	// FR4 is the motherboard laminate.
	FR4 = Material{Name: "fr4", Conductivity: 0.35, Density: 1850, SpecificHeat: 1100}
	// Steel is the stiffener back-plate.
	Steel = Material{Name: "steel", Conductivity: 50, Density: 7850, SpecificHeat: 490}
	// OrganicSubstrate is the build-up package substrate.
	OrganicSubstrate = Material{Name: "substrate", Conductivity: 15, Density: 2000, SpecificHeat: 900}
	// InP is indium phosphide, the III-V VCSEL cladding layers.
	InP = Material{Name: "inp", Conductivity: 68, Density: 4810, SpecificHeat: 310}
	// InGaAsP is the quaternary active layer of the VCSEL.
	InGaAsP = Material{Name: "ingaasp", Conductivity: 5, Density: 5000, SpecificHeat: 330}
	// VCSELStack is the effective medium of the double photonic-crystal
	// VCSEL mesa: InP/InGaAsP layers perforated by air holes and bounded
	// by Si/SiO2 mirror lines. The air fraction and quaternary layers
	// depress the effective conductivity far below bulk InP, which is the
	// root cause of the poor heat sinking the paper's methodology manages.
	VCSELStack = Material{Name: "vcsel-stack", Conductivity: 9, Density: 4500, SpecificHeat: 320}
	// Air models cavities and, with an effective conductivity, fan-driven gaps.
	Air = Material{Name: "air", Conductivity: 0.026, Density: 1.2, SpecificHeat: 1005}
	// BondingLayer is the oxide/polymer die-to-die bonding film.
	BondingLayer = Material{Name: "bonding", Conductivity: 1.1, Density: 2100, SpecificHeat: 800}
)

// Library is a named collection of materials with lookup by name.
type Library struct {
	byName map[string]Material
}

// NewLibrary builds a library containing the standard materials plus any
// extras. Extras with a name colliding with a standard material override it.
func NewLibrary(extras ...Material) *Library {
	lib := &Library{byName: make(map[string]Material)}
	for _, m := range standardSet() {
		lib.byName[m.Name] = m
	}
	for _, m := range extras {
		lib.byName[m.Name] = m
	}
	return lib
}

func standardSet() []Material {
	return []Material{
		Silicon, SiliconDioxide, Copper, Aluminium, TIM, Epoxy, FR4, Steel,
		OrganicSubstrate, InP, InGaAsP, Air, BondingLayer,
	}
}

// Get returns the named material.
func (l *Library) Get(name string) (Material, error) {
	m, ok := l.byName[name]
	if !ok {
		return Material{}, fmt.Errorf("materials: unknown material %q", name)
	}
	return m, nil
}

// Add registers (or replaces) a material.
func (l *Library) Add(m Material) error {
	if err := m.Valid(); err != nil {
		return err
	}
	l.byName[m.Name] = m
	return nil
}

// Names returns the sorted list of registered material names.
func (l *Library) Names() []string {
	names := make([]string, 0, len(l.byName))
	for n := range l.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SeriesConductivity returns the effective conductivity of layers stacked in
// series (heat flowing through each layer in turn). thicknesses and
// conductivities must have the same length; the result is the harmonic
// thickness-weighted mean.
func SeriesConductivity(thicknesses, conductivities []float64) (float64, error) {
	if len(thicknesses) != len(conductivities) || len(thicknesses) == 0 {
		return 0, fmt.Errorf("materials: series stack needs matching non-empty slices")
	}
	var total, resistance float64
	for i, t := range thicknesses {
		if t <= 0 {
			return 0, fmt.Errorf("materials: layer %d thickness %g must be > 0", i, t)
		}
		if conductivities[i] <= 0 {
			return 0, fmt.Errorf("materials: layer %d conductivity %g must be > 0", i, conductivities[i])
		}
		total += t
		resistance += t / conductivities[i]
	}
	return total / resistance, nil
}

// ParallelConductivity returns the effective conductivity of materials side
// by side sharing the heat-flow direction, weighted by area fraction. The
// fractions must be non-negative and sum to ~1.
func ParallelConductivity(fractions, conductivities []float64) (float64, error) {
	if len(fractions) != len(conductivities) || len(fractions) == 0 {
		return 0, fmt.Errorf("materials: parallel stack needs matching non-empty slices")
	}
	var sum, k float64
	for i, f := range fractions {
		if f < 0 {
			return 0, fmt.Errorf("materials: fraction %d is negative", i)
		}
		if conductivities[i] <= 0 {
			return 0, fmt.Errorf("materials: component %d conductivity %g must be > 0", i, conductivities[i])
		}
		sum += f
		k += f * conductivities[i]
	}
	if sum < 0.999 || sum > 1.001 {
		return 0, fmt.Errorf("materials: fractions sum to %g, want 1", sum)
	}
	return k, nil
}

// TSVEffective returns an effective vertical-conduction material for a
// region of pitch×pitch cells each containing one copper TSV of the given
// diameter embedded in the host material. Lengths are in metres.
func TSVEffective(host Material, diameter, pitch float64) (Material, error) {
	if diameter <= 0 || pitch <= 0 || diameter > pitch {
		return Material{}, fmt.Errorf("materials: invalid TSV geometry d=%g pitch=%g", diameter, pitch)
	}
	area := diameter * diameter * 3.14159265358979 / 4
	frac := area / (pitch * pitch)
	k, err := ParallelConductivity(
		[]float64{frac, 1 - frac},
		[]float64{Copper.Conductivity, host.Conductivity},
	)
	if err != nil {
		return Material{}, err
	}
	return Material{
		Name:         fmt.Sprintf("tsv-%s", host.Name),
		Conductivity: k,
		Density:      frac*Copper.Density + (1-frac)*host.Density,
		SpecificHeat: frac*Copper.SpecificHeat + (1-frac)*host.SpecificHeat,
	}, nil
}

// BEOLEffective returns the effective material for a back-end-of-line metal
// stack: copper wiring embedded in low-k dielectric with the given metal
// area fraction.
func BEOLEffective(metalFraction float64) (Material, error) {
	if metalFraction < 0 || metalFraction > 1 {
		return Material{}, fmt.Errorf("materials: metal fraction %g outside [0,1]", metalFraction)
	}
	k, err := ParallelConductivity(
		[]float64{metalFraction, 1 - metalFraction},
		[]float64{Copper.Conductivity, SiliconDioxide.Conductivity},
	)
	if err != nil {
		return Material{}, err
	}
	return Material{
		Name:         "beol",
		Conductivity: k,
		Density:      metalFraction*Copper.Density + (1-metalFraction)*SiliconDioxide.Density,
		SpecificHeat: metalFraction*Copper.SpecificHeat + (1-metalFraction)*SiliconDioxide.SpecificHeat,
	}, nil
}

// C4Effective returns the effective material for a C4/micro-bump layer:
// solder bumps in underfill with the given bump area fraction. Solder is
// approximated with k=50 W/(m·K).
func C4Effective(bumpFraction float64) (Material, error) {
	if bumpFraction < 0 || bumpFraction > 1 {
		return Material{}, fmt.Errorf("materials: bump fraction %g outside [0,1]", bumpFraction)
	}
	const solderK = 50.0
	k, err := ParallelConductivity(
		[]float64{bumpFraction, 1 - bumpFraction},
		[]float64{solderK, Epoxy.Conductivity},
	)
	if err != nil {
		return Material{}, err
	}
	return Material{
		Name:         "c4",
		Conductivity: k,
		Density:      bumpFraction*7300 + (1-bumpFraction)*Epoxy.Density,
		SpecificHeat: bumpFraction*230 + (1-bumpFraction)*Epoxy.SpecificHeat,
	}, nil
}
