package photodiode

import (
	"math"
	"testing"
	"testing/quick"

	"vcselnoc/internal/units"
)

func det(t testing.TB) *Detector {
	t.Helper()
	d, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamValidation(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.Responsivity = 0 },
		func(p *Params) { p.Responsivity = 2 },
		func(p *Params) { p.DarkCurrent = -1 },
		func(p *Params) { p.SensitivityDBm = math.NaN() },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if _, err := New(p); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

func TestSensitivityFloor(t *testing.T) {
	d := det(t)
	// -20 dBm = 0.01 mW.
	want := 0.01e-3
	if got := d.SensitivityWatts(); math.Abs(got-want) > 1e-12 {
		t.Errorf("sensitivity = %g W, want %g", got, want)
	}
	if !d.Detects(0.02e-3) {
		t.Error("0.02 mW should be detected")
	}
	if d.Detects(0.005e-3) {
		t.Error("0.005 mW should not be detected")
	}
	if !d.Detects(want) {
		t.Error("power exactly at the floor should be detected")
	}
}

func TestPhotocurrent(t *testing.T) {
	d := det(t)
	i, err := d.Photocurrent(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9*1e-3 + 1e-9
	if math.Abs(i-want) > 1e-15 {
		t.Errorf("photocurrent = %g, want %g", i, want)
	}
	if _, err := d.Photocurrent(-1); err == nil {
		t.Error("negative power should error")
	}
	// Zero power leaves only dark current.
	i0, err := d.Photocurrent(0)
	if err != nil || i0 != 1e-9 {
		t.Errorf("dark current = %g, %v", i0, err)
	}
}

func TestQFactorAndBER(t *testing.T) {
	// SNR of 0 dB (=1 linear) gives Q=1, BER = 0.5·erfc(1/√2) ≈ 0.1587.
	q, err := QFactor(1)
	if err != nil || q != 1 {
		t.Fatalf("QFactor(1) = %g, %v", q, err)
	}
	ber, err := BER(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ber-0.1587) > 1e-3 {
		t.Errorf("BER(Q=1) = %g, want ~0.1587", ber)
	}
	// Q=7 corresponds to BER ≈ 1.28e-12 (classic optical-link threshold).
	ber7, err := BER(7)
	if err != nil {
		t.Fatal(err)
	}
	if ber7 > 2e-12 || ber7 < 5e-13 {
		t.Errorf("BER(Q=7) = %g, want ~1.3e-12", ber7)
	}
}

func TestBERFromSNRDB(t *testing.T) {
	// 16.9 dB SNR → Q = sqrt(10^1.69) ≈ 7 → BER ~1e-12.
	ber, err := BERFromSNRDB(16.9)
	if err != nil {
		t.Fatal(err)
	}
	if ber > 1e-11 || ber < 1e-13 {
		t.Errorf("BER(16.9 dB) = %g, want ~1e-12", ber)
	}
	// Higher SNR, lower BER.
	ber2, err := BERFromSNRDB(20)
	if err != nil {
		t.Fatal(err)
	}
	if ber2 >= ber {
		t.Error("BER should fall with SNR")
	}
}

func TestErrors(t *testing.T) {
	if _, err := QFactor(-1); err == nil {
		t.Error("negative SNR should error")
	}
	if _, err := BER(-1); err == nil {
		t.Error("negative Q should error")
	}
	if _, err := BERFromSNRDB(math.Inf(1)); err != nil {
		t.Error("infinite SNR in dB is fine (BER → 0)")
	}
}

// Property: BER is monotonically decreasing in Q and bounded in [0, 0.5].
func TestQuickBERMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		qa := math.Mod(math.Abs(a), 20)
		qb := math.Mod(math.Abs(b), 20)
		lo, hi := math.Min(qa, qb), math.Max(qa, qb)
		berLo, err1 := BER(lo)
		berHi, err2 := BER(hi)
		if err1 != nil || err2 != nil {
			return false
		}
		return berHi <= berLo+1e-15 && berLo <= 0.5 && berHi >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: detection threshold is consistent with dBm conversion.
func TestQuickDetectionConsistent(t *testing.T) {
	d := det(t)
	f := func(dbm float64) bool {
		v := -40 + math.Mod(math.Abs(dbm), 40) // [-40, 0] dBm
		w := units.FromDBm(v)
		return d.Detects(w) == (v >= d.Params().SensitivityDBm-1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
