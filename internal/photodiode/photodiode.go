// Package photodiode models the waveguide-integrated photodetectors that
// terminate ONoC communication channels. The paper uses large-band
// detectors with a −20 dBm sensitivity floor; this package adds the usual
// receiver-side figures of merit (responsivity, OOK Q-factor and BER) so
// that SNR results can be translated into link-level reliability.
package photodiode

import (
	"fmt"
	"math"

	"vcselnoc/internal/units"
)

// Params describes a photodetector.
type Params struct {
	// SensitivityDBm is the minimum detectable average optical power in
	// dBm (−20 in the paper).
	SensitivityDBm float64
	// Responsivity is the photocurrent per optical watt, A/W.
	Responsivity float64
	// DarkCurrent is the dark current in amperes.
	DarkCurrent float64
}

// DefaultParams returns the paper's detector: −20 dBm sensitivity; the
// responsivity and dark current are typical Ge-on-Si values.
func DefaultParams() Params {
	return Params{
		SensitivityDBm: -20,
		Responsivity:   0.9,
		DarkCurrent:    1e-9,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.Responsivity <= 0 || p.Responsivity > 1.25:
		return fmt.Errorf("photodiode: responsivity %g A/W outside (0, 1.25]", p.Responsivity)
	case p.DarkCurrent < 0:
		return fmt.Errorf("photodiode: negative dark current %g", p.DarkCurrent)
	case math.IsNaN(p.SensitivityDBm) || math.IsInf(p.SensitivityDBm, 0):
		return fmt.Errorf("photodiode: invalid sensitivity %g", p.SensitivityDBm)
	}
	return nil
}

// Detector is a photodetector instance.
type Detector struct {
	p           Params
	sensitivity float64 // watts
}

// New builds a detector after validating parameters.
func New(p Params) (*Detector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Detector{p: p, sensitivity: units.FromDBm(p.SensitivityDBm)}, nil
}

// Params returns the detector parameters.
func (d *Detector) Params() Params { return d.p }

// SensitivityWatts returns the sensitivity floor in watts.
func (d *Detector) SensitivityWatts() float64 { return d.sensitivity }

// Detects reports whether an average signal power (W) clears the
// sensitivity floor.
func (d *Detector) Detects(signalW float64) bool {
	return signalW >= d.sensitivity
}

// Photocurrent returns the photocurrent (A) for the given optical power.
func (d *Detector) Photocurrent(signalW float64) (float64, error) {
	if signalW < 0 {
		return 0, fmt.Errorf("photodiode: negative optical power %g", signalW)
	}
	return d.p.Responsivity*signalW + d.p.DarkCurrent, nil
}

// QFactor converts a linear signal-to-noise power ratio into the OOK
// Q-factor under the crosstalk-limited approximation used in ONoC papers:
// Q = sqrt(SNR).
func QFactor(snrLinear float64) (float64, error) {
	if snrLinear < 0 {
		return 0, fmt.Errorf("photodiode: negative SNR %g", snrLinear)
	}
	return math.Sqrt(snrLinear), nil
}

// BER returns the OOK bit-error rate for a given Q-factor:
// BER = 0.5·erfc(Q/√2).
func BER(q float64) (float64, error) {
	if q < 0 {
		return 0, fmt.Errorf("photodiode: negative Q %g", q)
	}
	return 0.5 * math.Erfc(q/math.Sqrt2), nil
}

// BERFromSNRDB is a convenience chaining dB SNR → Q → BER.
func BERFromSNRDB(snrDB float64) (float64, error) {
	q, err := QFactor(units.FromDB(snrDB))
	if err != nil {
		return 0, err
	}
	return BER(q)
}
