// Package mrr models the passive microring resonators (MRs) that perform
// wavelength filtering in the ONoC, including their thermal sensitivity and
// the resistive heaters placed on top of them for calibration.
//
// The drop-port power transmission is the first-order Lorentzian
//
//	T_drop(δ) = 1 / (1 + (2δ/FWHM)²)
//
// with δ the detuning between signal wavelength and ring resonance and
// FWHM the 3 dB bandwidth (1.55 nm in the paper). This matches the paper's
// anchor of 50 % (wrong) drop at 0.77 nm misalignment, i.e. a 7.7 °C
// temperature difference at 0.1 nm/°C.
//
// Note: the paper's text also claims a 0.1 nm drift costs 6.5 % of the
// drop transmission; that number is inconsistent with its own Lorentzian
// anchor (which yields ≈1.6 %). We keep the Lorentzian; see EXPERIMENTS.md.
package mrr

import (
	"fmt"
	"math"
)

// Params describes one microring resonator.
type Params struct {
	// ResonanceNM is the resonant wavelength in nm at TRef with no heater
	// power applied.
	ResonanceNM float64
	// TRef is the calibration temperature, °C.
	TRef float64
	// DLambdaDT is the thermal drift of the resonance, nm/°C (0.1 in the
	// paper).
	DLambdaDT float64
	// FWHMNM is the 3 dB bandwidth in nm (1.55 in the paper).
	FWHMNM float64
	// HeaterTuning is the red-shift per heater watt, nm/W. The paper quotes
	// heat tuning at 190 µW/nm, i.e. ≈ 5263 nm/W.
	HeaterTuning float64
	// DropLoss is the excess linear power loss at the drop port (fraction
	// of the dropped power lost, 0 = lossless).
	DropLoss float64
}

// DefaultParams returns the ring used throughout the paper: 10 µm diameter,
// 1.55 nm 3 dB bandwidth at 1550 nm, 0.1 nm/°C drift.
func DefaultParams() Params {
	return Params{
		ResonanceNM:  1550,
		TRef:         25,
		DLambdaDT:    0.1,
		FWHMNM:       1.55,
		HeaterTuning: 1 / 190e-6, // nm per W: 190 µW/nm heat tuning
		DropLoss:     0,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.ResonanceNM <= 0:
		return fmt.Errorf("mrr: resonance %g must be > 0", p.ResonanceNM)
	case p.FWHMNM <= 0:
		return fmt.Errorf("mrr: FWHM %g must be > 0", p.FWHMNM)
	case p.DLambdaDT < 0:
		return fmt.Errorf("mrr: negative thermal drift %g", p.DLambdaDT)
	case p.HeaterTuning < 0:
		return fmt.Errorf("mrr: negative heater tuning %g", p.HeaterTuning)
	case p.DropLoss < 0 || p.DropLoss >= 1:
		return fmt.Errorf("mrr: drop loss %g outside [0,1)", p.DropLoss)
	}
	return nil
}

// Ring is a microring resonator instance.
type Ring struct {
	p Params
}

// New builds a ring after validating parameters.
func New(p Params) (*Ring, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Ring{p: p}, nil
}

// Params returns the ring parameters.
func (r *Ring) Params() Params { return r.p }

// ResonanceAt returns the resonant wavelength (nm) at ring temperature t
// (°C) with heater power ph (W) applied.
func (r *Ring) ResonanceAt(t, ph float64) float64 {
	return r.p.ResonanceNM + r.p.DLambdaDT*(t-r.p.TRef) + r.p.HeaterTuning*ph
}

// DropFraction returns the fraction of incident power transferred to the
// drop port for a signal at lambdaNM when the ring resonates at resNM.
func (r *Ring) DropFraction(lambdaNM, resNM float64) float64 {
	delta := 2 * (lambdaNM - resNM) / r.p.FWHMNM
	return (1 - r.p.DropLoss) / (1 + delta*delta)
}

// ThroughFraction returns the fraction of incident power continuing on the
// bus waveguide past the ring.
func (r *Ring) ThroughFraction(lambdaNM, resNM float64) float64 {
	delta := 2 * (lambdaNM - resNM) / r.p.FWHMNM
	return 1 - 1/(1+delta*delta)
}

// Q returns the loaded quality factor λ/FWHM.
func (r *Ring) Q() float64 { return r.p.ResonanceNM / r.p.FWHMNM }

// FSRNM returns the free spectral range in nm for a ring of the given
// circumference (m) and group index, at the ring's resonance wavelength:
// FSR = λ² / (n_g · L).
func (r *Ring) FSRNM(circumference, groupIndex float64) (float64, error) {
	if circumference <= 0 || groupIndex <= 0 {
		return 0, fmt.Errorf("mrr: invalid FSR inputs L=%g ng=%g", circumference, groupIndex)
	}
	lambdaM := r.p.ResonanceNM * 1e-9
	fsrM := lambdaM * lambdaM / (groupIndex * circumference)
	return fsrM * 1e9, nil
}

// DetuningForDrop returns the absolute detuning (nm) at which the drop
// fraction equals the given value in (0, 1]. Used to express statements
// like "50 % of the signal is wrongly dropped at 0.77 nm misalignment".
func (r *Ring) DetuningForDrop(fraction float64) (float64, error) {
	if fraction <= 0 || fraction > 1-r.p.DropLoss {
		return 0, fmt.Errorf("mrr: drop fraction %g outside (0, %g]", fraction, 1-r.p.DropLoss)
	}
	// fraction = (1-loss)/(1+x²)  →  x = sqrt((1-loss)/fraction − 1).
	x := math.Sqrt((1-r.p.DropLoss)/fraction - 1)
	return x * r.p.FWHMNM / 2, nil
}

// TemperatureForDetuning converts a wavelength misalignment (nm) into the
// equivalent temperature difference (°C) via the thermal drift coefficient.
func (r *Ring) TemperatureForDetuning(detuningNM float64) (float64, error) {
	if r.p.DLambdaDT == 0 {
		return 0, fmt.Errorf("mrr: ring has no thermal drift")
	}
	return detuningNM / r.p.DLambdaDT, nil
}

// HeaterPowerForShift returns the heater power (W) required to red-shift
// the resonance by shiftNM.
func (r *Ring) HeaterPowerForShift(shiftNM float64) (float64, error) {
	if shiftNM < 0 {
		return 0, fmt.Errorf("mrr: heaters cannot blue-shift (%g nm requested)", shiftNM)
	}
	if r.p.HeaterTuning == 0 {
		return 0, fmt.Errorf("mrr: ring has no heater")
	}
	return shiftNM / r.p.HeaterTuning, nil
}
