package mrr

import (
	"math"
	"testing"
	"testing/quick"
)

func ring(t testing.TB) *Ring {
	t.Helper()
	r, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamValidation(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.ResonanceNM = 0 },
		func(p *Params) { p.FWHMNM = -1 },
		func(p *Params) { p.DLambdaDT = -0.1 },
		func(p *Params) { p.HeaterTuning = -5 },
		func(p *Params) { p.DropLoss = 1 },
		func(p *Params) { p.DropLoss = -0.1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if _, err := New(p); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

// TestPaperAnchor077 verifies the paper's anchor: 50 % of the signal is
// dropped at 0.775 nm misalignment (half the 1.55 nm FWHM), which the
// paper rounds to "0.77 nm / 7.7 °C".
func TestPaperAnchor077(t *testing.T) {
	r := ring(t)
	drop := r.DropFraction(1550+0.775, 1550)
	if math.Abs(drop-0.5) > 1e-9 {
		t.Errorf("drop at +FWHM/2 = %g, want 0.5", drop)
	}
	det, err := r.DetuningForDrop(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(det-0.775) > 1e-9 {
		t.Errorf("detuning for 50%% = %g, want 0.775", det)
	}
	dt, err := r.TemperatureForDetuning(det)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dt-7.75) > 1e-9 {
		t.Errorf("temperature for 50%% drop = %g °C, want 7.75", dt)
	}
}

func TestDropPeakOnResonance(t *testing.T) {
	r := ring(t)
	if got := r.DropFraction(1550, 1550); got != 1 {
		t.Errorf("on-resonance drop = %g, want 1", got)
	}
	if got := r.ThroughFraction(1550, 1550); got != 0 {
		t.Errorf("on-resonance through = %g, want 0", got)
	}
}

func TestFarDetunedPassthrough(t *testing.T) {
	r := ring(t)
	// Paper: wavelengths separated > 1.5 nm mostly pass through.
	drop := r.DropFraction(1550+1.55, 1550)
	if drop > 0.21 {
		t.Errorf("drop one FWHM away = %g, want ~0.2", drop)
	}
	through := r.ThroughFraction(1550+10, 1550)
	if through < 0.99 {
		t.Errorf("through 10 nm away = %g, want ~1", through)
	}
}

func TestThermalDrift(t *testing.T) {
	r := ring(t)
	// +10 °C → +1 nm.
	res := r.ResonanceAt(35, 0)
	if math.Abs(res-1551) > 1e-9 {
		t.Errorf("resonance at 35°C = %g, want 1551", res)
	}
	// At TRef, unshifted.
	if got := r.ResonanceAt(25, 0); got != 1550 {
		t.Errorf("resonance at TRef = %g", got)
	}
}

func TestHeaterShift(t *testing.T) {
	r := ring(t)
	// 190 µW should shift 1 nm (paper's heat-tuning figure).
	res := r.ResonanceAt(25, 190e-6)
	if math.Abs(res-1551) > 1e-6 {
		t.Errorf("resonance with 190µW heater = %g, want ~1551", res)
	}
	p, err := r.HeaterPowerForShift(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-190e-6) > 1e-12 {
		t.Errorf("heater power for 1 nm = %g, want 190 µW", p)
	}
	if _, err := r.HeaterPowerForShift(-1); err == nil {
		t.Error("blue shift request should error")
	}
}

func TestEnergyConservationLossless(t *testing.T) {
	r := ring(t)
	for _, d := range []float64{0, 0.1, 0.5, 0.775, 1.55, 5} {
		drop := r.DropFraction(1550+d, 1550)
		through := r.ThroughFraction(1550+d, 1550)
		if math.Abs(drop+through-1) > 1e-12 {
			t.Errorf("detuning %g: drop+through = %g, want 1", d, drop+through)
		}
	}
}

func TestDropLossReducesDropOnly(t *testing.T) {
	p := DefaultParams()
	p.DropLoss = 0.2
	r, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.DropFraction(1550, 1550); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("lossy on-resonance drop = %g, want 0.8", got)
	}
	// Through port is governed by the coupling, not the drop loss.
	if got := r.ThroughFraction(1550, 1550); got != 0 {
		t.Errorf("through = %g", got)
	}
}

func TestQ(t *testing.T) {
	r := ring(t)
	if got := r.Q(); math.Abs(got-1000) > 1 {
		t.Errorf("Q = %g, want ~1000 (1550/1.55)", got)
	}
}

func TestFSR(t *testing.T) {
	r := ring(t)
	// 10 µm diameter ring, ng=4.2: FSR = λ²/(ng·πd) ≈ 18.2 nm.
	circ := math.Pi * 10e-6
	fsr, err := r.FSRNM(circ, 4.2)
	if err != nil {
		t.Fatal(err)
	}
	if fsr < 15 || fsr > 22 {
		t.Errorf("FSR = %g nm, want ~18", fsr)
	}
	if _, err := r.FSRNM(0, 4.2); err == nil {
		t.Error("zero circumference should error")
	}
	if _, err := r.FSRNM(circ, 0); err == nil {
		t.Error("zero group index should error")
	}
}

func TestDetuningForDropErrors(t *testing.T) {
	r := ring(t)
	if _, err := r.DetuningForDrop(0); err == nil {
		t.Error("zero fraction should error")
	}
	if _, err := r.DetuningForDrop(1.1); err == nil {
		t.Error("fraction > 1 should error")
	}
}

func TestTemperatureForDetuningNoDrift(t *testing.T) {
	p := DefaultParams()
	p.DLambdaDT = 0
	r, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.TemperatureForDetuning(1); err == nil {
		t.Error("zero drift should error")
	}
}

// Property: the Lorentzian is symmetric, peaks on resonance, and decays
// monotonically with |detuning|.
func TestQuickLorentzianShape(t *testing.T) {
	r := ring(t)
	f := func(d1, d2 float64) bool {
		a := math.Mod(math.Abs(d1), 20)
		b := math.Mod(math.Abs(d2), 20)
		sym := math.Abs(r.DropFraction(1550+a, 1550)-r.DropFraction(1550-a, 1550)) < 1e-12
		peak := r.DropFraction(1550+a, 1550) <= r.DropFraction(1550, 1550)
		lo, hi := math.Min(a, b), math.Max(a, b)
		mono := r.DropFraction(1550+hi, 1550) <= r.DropFraction(1550+lo, 1550)+1e-12
		return sym && peak && mono
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: DetuningForDrop inverts DropFraction.
func TestQuickDetuningInverse(t *testing.T) {
	r := ring(t)
	f := func(frac float64) bool {
		fr := 0.01 + math.Mod(math.Abs(frac), 0.98)
		det, err := r.DetuningForDrop(fr)
		if err != nil {
			return false
		}
		back := r.DropFraction(1550+det, 1550)
		return math.Abs(back-fr) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: heater shift plus temperature drift compose additively.
func TestQuickResonanceAdditive(t *testing.T) {
	r := ring(t)
	f := func(tFrac, pFrac float64) bool {
		temp := 25 + math.Mod(math.Abs(tFrac), 60)
		ph := math.Mod(math.Abs(pFrac), 1e-3)
		res := r.ResonanceAt(temp, ph)
		want := r.ResonanceAt(temp, 0) + r.ResonanceAt(25, ph) - r.ResonanceAt(25, 0)
		return math.Abs(res-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
