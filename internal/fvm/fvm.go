// Package fvm discretises the heat-conduction equation on a structured
// non-uniform grid with the Finite Volume Method and solves the resulting
// linear system. It is the numerical core of the IcTherm-style thermal
// simulator used by the paper's methodology.
//
// Steady state:   ∇·(k ∇T) + q = 0
// Transient:      ρc ∂T/∂t = ∇·(k ∇T) + q   (implicit Euler)
//
// Face conductances use the series (harmonic) combination of the two
// half-cells, which preserves flux continuity across material interfaces.
// Boundary faces support adiabatic (zero flux), convection (Robin,
// h·(T−T_amb)) and Dirichlet (fixed temperature) conditions.
package fvm

import (
	"fmt"
	"math"

	"vcselnoc/internal/geom"
	"vcselnoc/internal/mesh"
	"vcselnoc/internal/sparse"
)

// BoundaryType selects the condition applied to one face of the domain.
type BoundaryType int

const (
	// Adiabatic is a zero-flux boundary (default).
	Adiabatic BoundaryType = iota
	// Convection is a Robin boundary: flux = h·(T_surface − Value).
	Convection
	// Dirichlet fixes the boundary temperature to Value.
	Dirichlet
)

func (t BoundaryType) String() string {
	switch t {
	case Adiabatic:
		return "adiabatic"
	case Convection:
		return "convection"
	case Dirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("BoundaryType(%d)", int(t))
	}
}

// Boundary describes the condition on one domain face.
type Boundary struct {
	Type BoundaryType
	// H is the heat transfer coefficient in W/(m²·K); used by Convection.
	H float64
	// Value is the ambient temperature (Convection) or the fixed surface
	// temperature (Dirichlet), in °C.
	Value float64
}

// Problem is a fully specified conduction problem on a grid.
type Problem struct {
	Grid *mesh.Grid
	// Conductivity holds the per-cell thermal conductivity in W/(m·K).
	Conductivity []float64
	// Power holds the per-cell heat source in watts.
	Power []float64
	// HeatCapacity optionally holds per-cell ρc in J/(m³·K) for transient
	// simulation. May be nil for steady-state-only problems.
	HeatCapacity []float64

	// Boundaries of the six domain faces.
	XMin, XMax, YMin, YMax, ZMin, ZMax Boundary
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	if p.Grid == nil {
		return fmt.Errorf("fvm: nil grid")
	}
	n := p.Grid.NumCells()
	if len(p.Conductivity) != n {
		return fmt.Errorf("fvm: conductivity has %d entries, want %d", len(p.Conductivity), n)
	}
	if len(p.Power) != n {
		return fmt.Errorf("fvm: power has %d entries, want %d", len(p.Power), n)
	}
	if p.HeatCapacity != nil && len(p.HeatCapacity) != n {
		return fmt.Errorf("fvm: heat capacity has %d entries, want %d", len(p.HeatCapacity), n)
	}
	for i, k := range p.Conductivity {
		if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
			return fmt.Errorf("fvm: cell %d has invalid conductivity %g", i, k)
		}
	}
	for i, q := range p.Power {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("fvm: cell %d has invalid power %g", i, q)
		}
	}
	for _, b := range p.boundaries() {
		if b.b.Type == Convection && b.b.H <= 0 {
			return fmt.Errorf("fvm: %s convection boundary needs H > 0, got %g", b.name, b.b.H)
		}
	}
	return nil
}

type namedBoundary struct {
	name string
	b    Boundary
}

func (p *Problem) boundaries() []namedBoundary {
	return []namedBoundary{
		{"xmin", p.XMin}, {"xmax", p.XMax},
		{"ymin", p.YMin}, {"ymax", p.YMax},
		{"zmin", p.ZMin}, {"zmax", p.ZMax},
	}
}

// hasFixingBoundary reports whether at least one boundary pins the
// temperature level (required for a well-posed steady problem).
func (p *Problem) hasFixingBoundary() bool {
	for _, b := range p.boundaries() {
		if b.b.Type != Adiabatic {
			return true
		}
	}
	return false
}

// assembled holds the discretised operator.
type assembled struct {
	matrix *sparse.CSR
	rhs    []float64
	// boundaryG[i] is the total boundary conductance of cell i (W/K) and
	// boundaryGT[i] the conductance-weighted boundary temperature, used for
	// energy accounting.
	boundaryG  []float64
	boundaryGT []float64
}

// faceConductance returns the conductance (W/K) between two adjacent cells
// with half-widths d1/2 and d2/2, conductivities k1, k2, across face area a.
func faceConductance(a, d1, k1, d2, k2 float64) float64 {
	return a / (0.5*d1/k1 + 0.5*d2/k2)
}

// boundaryConductance returns the conductance from a cell centre to a
// boundary face of area a. For convection it is the series combination of
// the half-cell conduction and the film coefficient; for Dirichlet it is
// the half-cell conduction alone.
func boundaryConductance(b Boundary, a, d, k float64) float64 {
	switch b.Type {
	case Convection:
		return a / (0.5*d/k + 1/b.H)
	case Dirichlet:
		return a / (0.5 * d / k)
	default:
		return 0
	}
}

// assemble builds the SPD system A·T = b for the steady problem.
func (p *Problem) assemble() (*assembled, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	nx, ny, nz := g.NX(), g.NY(), g.NZ()
	n := g.NumCells()

	// Pass 1: face conductances along each axis.
	// gxF[idx] couples idx and idx+1 (only valid when i < nx-1), etc.
	gxF := make([]float64, n)
	gyF := make([]float64, n)
	gzF := make([]float64, n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := g.Index(i, j, k)
				sz := g.CellSize(i, j, k)
				kc := p.Conductivity[idx]
				if i < nx-1 {
					nb := g.Index(i+1, j, k)
					nsz := g.CellSize(i+1, j, k)
					gxF[idx] = faceConductance(sz.Y*sz.Z, sz.X, kc, nsz.X, p.Conductivity[nb])
				}
				if j < ny-1 {
					nb := g.Index(i, j+1, k)
					nsz := g.CellSize(i, j+1, k)
					gyF[idx] = faceConductance(sz.X*sz.Z, sz.Y, kc, nsz.Y, p.Conductivity[nb])
				}
				if k < nz-1 {
					nb := g.Index(i, j, k+1)
					nsz := g.CellSize(i, j, k+1)
					gzF[idx] = faceConductance(sz.X*sz.Y, sz.Z, kc, nsz.Z, p.Conductivity[nb])
				}
			}
		}
	}

	// Pass 2: count row entries and build CSR directly (sorted columns:
	// -z, -y, -x, diag, +x, +y, +z).
	rowPtr := make([]int, n+1)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				cnt := 1
				if k > 0 {
					cnt++
				}
				if j > 0 {
					cnt++
				}
				if i > 0 {
					cnt++
				}
				if i < nx-1 {
					cnt++
				}
				if j < ny-1 {
					cnt++
				}
				if k < nz-1 {
					cnt++
				}
				rowPtr[g.Index(i, j, k)+1] = cnt
			}
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nnz := rowPtr[n]
	colIdx := make([]int32, nnz)
	values := make([]float64, nnz)
	rhs := make([]float64, n)
	boundaryG := make([]float64, n)
	boundaryGT := make([]float64, n)

	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := g.Index(i, j, k)
				sz := g.CellSize(i, j, k)
				kc := p.Conductivity[idx]
				diag := 0.0
				pos := rowPtr[idx]

				put := func(col int, v float64) {
					colIdx[pos] = int32(col)
					values[pos] = v
					pos++
				}

				var gmx, gmy, gmz, gpx, gpy, gpz float64
				if k > 0 {
					gmz = gzF[g.Index(i, j, k-1)]
				}
				if j > 0 {
					gmy = gyF[g.Index(i, j-1, k)]
				}
				if i > 0 {
					gmx = gxF[g.Index(i-1, j, k)]
				}
				if i < nx-1 {
					gpx = gxF[idx]
				}
				if j < ny-1 {
					gpy = gyF[idx]
				}
				if k < nz-1 {
					gpz = gzF[idx]
				}

				if k > 0 {
					put(g.Index(i, j, k-1), -gmz)
					diag += gmz
				}
				if j > 0 {
					put(g.Index(i, j-1, k), -gmy)
					diag += gmy
				}
				if i > 0 {
					put(g.Index(i-1, j, k), -gmx)
					diag += gmx
				}
				diagPos := pos
				put(idx, 0) // filled below
				if i < nx-1 {
					put(g.Index(i+1, j, k), -gpx)
					diag += gpx
				}
				if j < ny-1 {
					put(g.Index(i, j+1, k), -gpy)
					diag += gpy
				}
				if k < nz-1 {
					put(g.Index(i, j, k+1), -gpz)
					diag += gpz
				}

				// Boundary faces.
				applyBoundary := func(b Boundary, area, d float64) {
					gb := boundaryConductance(b, area, d, kc)
					if gb <= 0 {
						return
					}
					diag += gb
					rhs[idx] += gb * b.Value
					boundaryG[idx] += gb
					boundaryGT[idx] += gb * b.Value
				}
				if i == 0 {
					applyBoundary(p.XMin, sz.Y*sz.Z, sz.X)
				}
				if i == nx-1 {
					applyBoundary(p.XMax, sz.Y*sz.Z, sz.X)
				}
				if j == 0 {
					applyBoundary(p.YMin, sz.X*sz.Z, sz.Y)
				}
				if j == ny-1 {
					applyBoundary(p.YMax, sz.X*sz.Z, sz.Y)
				}
				if k == 0 {
					applyBoundary(p.ZMin, sz.X*sz.Y, sz.Z)
				}
				if k == nz-1 {
					applyBoundary(p.ZMax, sz.X*sz.Y, sz.Z)
				}

				values[diagPos] = diag
				rhs[idx] += p.Power[idx]
			}
		}
	}

	m, err := sparse.NewCSRFromParts(n, rowPtr, colIdx, values)
	if err != nil {
		return nil, fmt.Errorf("fvm: assembly produced invalid CSR: %w", err)
	}
	return &assembled{matrix: m, rhs: rhs, boundaryG: boundaryG, boundaryGT: boundaryGT}, nil
}

// SolveOptions configures a steady-state solve.
type SolveOptions struct {
	// Tolerance is the CG relative residual target (default 1e-8).
	Tolerance float64
	// MaxIterations caps CG iterations (default 10·n).
	MaxIterations int
	// InitialGuess optionally warm-starts the solver (length = cells).
	InitialGuess []float64
}

// Solution is a computed temperature field.
type Solution struct {
	Grid *mesh.Grid
	// T is the per-cell temperature in °C.
	T []float64
	// Stats reports solver convergence.
	Stats sparse.CGResult

	boundaryG  []float64
	boundaryGT []float64
	totalPower float64
}

// SolveSteady solves the steady-state problem.
func SolveSteady(p *Problem, opts SolveOptions) (*Solution, error) {
	if !p.hasFixingBoundary() {
		return nil, fmt.Errorf("fvm: steady problem needs at least one convection or Dirichlet boundary (all faces adiabatic)")
	}
	asm, err := p.assemble()
	if err != nil {
		return nil, err
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	t, stats, err := sparse.SolveCG(asm.matrix, asm.rhs, sparse.CGOptions{
		Tolerance:     tol,
		MaxIterations: opts.MaxIterations,
		InitialGuess:  opts.InitialGuess,
	})
	if err != nil {
		return nil, fmt.Errorf("fvm: steady solve failed: %w", err)
	}
	var total float64
	for _, q := range p.Power {
		total += q
	}
	return &Solution{
		Grid: p.Grid, T: t, Stats: stats,
		boundaryG: asm.boundaryG, boundaryGT: asm.boundaryGT, totalPower: total,
	}, nil
}

// BoundaryHeatFlow returns the net heat leaving the domain through
// non-adiabatic boundaries, in watts. For a converged steady solution this
// matches the total injected power.
func (s *Solution) BoundaryHeatFlow() float64 {
	var out float64
	for i, g := range s.boundaryG {
		if g > 0 {
			out += g*s.T[i] - s.boundaryGT[i]
		}
	}
	return out
}

// EnergyBalanceError returns the relative defect between injected power
// and net boundary outflow. The defect is normalised by the larger of the
// injected power and the gross boundary exchange, so that problems driven
// purely by boundary conditions (zero volumetric sources, e.g. a fin with
// a hot base) are judged against the through-flux rather than zero.
func (s *Solution) EnergyBalanceError() float64 {
	in := s.totalPower
	out := s.BoundaryHeatFlow()
	var gross float64
	for i, g := range s.boundaryG {
		if g > 0 {
			gross += math.Abs(g*s.T[i] - s.boundaryGT[i])
		}
	}
	denom := math.Max(math.Abs(in), math.Max(gross, 1e-12))
	return math.Abs(in-out) / denom
}

// TemperatureAt returns the temperature of the cell containing p.
func (s *Solution) TemperatureAt(p geom.Vec3) (float64, error) {
	i, j, k, ok := s.Grid.FindCell(p)
	if !ok {
		return 0, fmt.Errorf("fvm: point %v outside domain", p)
	}
	return s.T[s.Grid.Index(i, j, k)], nil
}

// RegionStats summarises the temperature field over a box.
type RegionStats struct {
	Min, Max, Mean float64
	// Gradient is Max − Min, the quantity the paper calls the gradient
	// temperature of a region.
	Gradient float64
	// Volume is the overlapped volume used for the averages.
	Volume float64
}

// StatsOver computes volume-weighted statistics over all cells overlapping
// the box.
func (s *Solution) StatsOver(b geom.Box) (RegionStats, error) {
	g := s.Grid
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(b)
	st := RegionStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var weighted float64
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				cell := g.CellBox(i, j, k)
				ov := cell.OverlapVolume(b)
				if ov <= 0 {
					continue
				}
				t := s.T[g.Index(i, j, k)]
				weighted += t * ov
				st.Volume += ov
				if t < st.Min {
					st.Min = t
				}
				if t > st.Max {
					st.Max = t
				}
			}
		}
	}
	if st.Volume == 0 {
		return RegionStats{}, fmt.Errorf("fvm: box %v overlaps no cells", b)
	}
	st.Mean = weighted / st.Volume
	st.Gradient = st.Max - st.Min
	return st, nil
}

// GlobalStats returns statistics over the whole domain.
func (s *Solution) GlobalStats() RegionStats {
	st, _ := s.StatsOver(s.Grid.Domain())
	return st
}

// TransientOptions configures a transient run.
type TransientOptions struct {
	// TimeStep is the implicit-Euler step in seconds (must be > 0).
	TimeStep float64
	// Steps is the number of steps to take (must be > 0).
	Steps int
	// Initial is the starting temperature field; if nil, the field starts
	// uniform at InitialUniform.
	Initial []float64
	// InitialUniform is the uniform start temperature used when Initial is
	// nil (°C).
	InitialUniform float64
	// Tolerance is the per-step CG tolerance (default 1e-8).
	Tolerance float64
	// Snapshot, if non-nil, is called after every step with the step index
	// (1-based), the simulated time and the current field (read-only).
	Snapshot func(step int, time float64, t []float64)
}

// SolveTransient integrates the transient heat equation with implicit
// Euler and returns the final field.
func SolveTransient(p *Problem, opts TransientOptions) (*Solution, error) {
	if p.HeatCapacity == nil {
		return nil, fmt.Errorf("fvm: transient solve requires HeatCapacity")
	}
	if opts.TimeStep <= 0 {
		return nil, fmt.Errorf("fvm: time step %g must be > 0", opts.TimeStep)
	}
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("fvm: steps %d must be > 0", opts.Steps)
	}
	asm, err := p.assemble()
	if err != nil {
		return nil, err
	}
	g := p.Grid
	n := g.NumCells()

	// Capacity term C/dt per cell (W/K).
	cap := make([]float64, n)
	for k := 0; k < g.NZ(); k++ {
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				idx := g.Index(i, j, k)
				c := p.HeatCapacity[idx]
				if c <= 0 {
					return nil, fmt.Errorf("fvm: cell %d has non-positive heat capacity %g", idx, c)
				}
				cap[idx] = c * g.CellVolume(i, j, k) / opts.TimeStep
			}
		}
	}
	// Transient matrix = A + diag(C/dt). Build by copying A and bumping the
	// diagonal.
	m := asm.matrix
	diagBumped := sparse.AddDiagonal(m, cap)

	t := make([]float64, n)
	if opts.Initial != nil {
		if len(opts.Initial) != n {
			return nil, fmt.Errorf("fvm: initial field has %d entries, want %d", len(opts.Initial), n)
		}
		copy(t, opts.Initial)
	} else {
		for i := range t {
			t[i] = opts.InitialUniform
		}
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	rhs := make([]float64, n)
	var stats sparse.CGResult
	for step := 1; step <= opts.Steps; step++ {
		for i := range rhs {
			rhs[i] = asm.rhs[i] + cap[i]*t[i]
		}
		next, st, err := sparse.SolveCG(diagBumped, rhs, sparse.CGOptions{
			Tolerance:    tol,
			InitialGuess: t,
		})
		if err != nil {
			return nil, fmt.Errorf("fvm: transient step %d failed: %w", step, err)
		}
		t = next
		stats = st
		if opts.Snapshot != nil {
			opts.Snapshot(step, float64(step)*opts.TimeStep, t)
		}
	}
	var total float64
	for _, q := range p.Power {
		total += q
	}
	return &Solution{
		Grid: g, T: t, Stats: stats,
		boundaryG: asm.boundaryG, boundaryGT: asm.boundaryGT, totalPower: total,
	}, nil
}
