// Package fvm discretises the heat-conduction equation on a structured
// non-uniform grid with the Finite Volume Method and solves the resulting
// linear system. It is the numerical core of the IcTherm-style thermal
// simulator used by the paper's methodology.
//
// Steady state:   ∇·(k ∇T) + q = 0
// Transient:      ρc ∂T/∂t = ∇·(k ∇T) + q   (implicit Euler)
//
// Face conductances use the series (harmonic) combination of the two
// half-cells, which preserves flux continuity across material interfaces.
// Boundary faces support adiabatic (zero flux), convection (Robin,
// h·(T−T_amb)) and Dirichlet (fixed temperature) conditions.
package fvm

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"vcselnoc/internal/geom"
	"vcselnoc/internal/mesh"
	"vcselnoc/internal/mg"
	"vcselnoc/internal/parallel"
	"vcselnoc/internal/sparse"
)

// BoundaryType selects the condition applied to one face of the domain.
type BoundaryType int

const (
	// Adiabatic is a zero-flux boundary (default).
	Adiabatic BoundaryType = iota
	// Convection is a Robin boundary: flux = h·(T_surface − Value).
	Convection
	// Dirichlet fixes the boundary temperature to Value.
	Dirichlet
)

func (t BoundaryType) String() string {
	switch t {
	case Adiabatic:
		return "adiabatic"
	case Convection:
		return "convection"
	case Dirichlet:
		return "dirichlet"
	default:
		return fmt.Sprintf("BoundaryType(%d)", int(t))
	}
}

// Boundary describes the condition on one domain face.
type Boundary struct {
	Type BoundaryType
	// H is the heat transfer coefficient in W/(m²·K); used by Convection.
	H float64
	// Value is the ambient temperature (Convection) or the fixed surface
	// temperature (Dirichlet), in °C.
	Value float64
}

// Problem is a fully specified conduction problem on a grid.
type Problem struct {
	Grid *mesh.Grid
	// Conductivity holds the per-cell thermal conductivity in W/(m·K).
	Conductivity []float64
	// Power holds the per-cell heat source in watts.
	Power []float64
	// HeatCapacity optionally holds per-cell ρc in J/(m³·K) for transient
	// simulation. May be nil for steady-state-only problems.
	HeatCapacity []float64

	// Boundaries of the six domain faces.
	XMin, XMax, YMin, YMax, ZMin, ZMax Boundary
}

// Validate checks the problem for structural errors.
func (p *Problem) Validate() error {
	if p.Grid == nil {
		return fmt.Errorf("fvm: nil grid")
	}
	n := p.Grid.NumCells()
	if len(p.Conductivity) != n {
		return fmt.Errorf("fvm: conductivity has %d entries, want %d", len(p.Conductivity), n)
	}
	if len(p.Power) != n {
		return fmt.Errorf("fvm: power has %d entries, want %d", len(p.Power), n)
	}
	if p.HeatCapacity != nil && len(p.HeatCapacity) != n {
		return fmt.Errorf("fvm: heat capacity has %d entries, want %d", len(p.HeatCapacity), n)
	}
	for i, k := range p.Conductivity {
		if k <= 0 || math.IsNaN(k) || math.IsInf(k, 0) {
			return fmt.Errorf("fvm: cell %d has invalid conductivity %g", i, k)
		}
	}
	for i, q := range p.Power {
		if math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("fvm: cell %d has invalid power %g", i, q)
		}
	}
	for _, b := range p.boundaries() {
		if b.b.Type == Convection && b.b.H <= 0 {
			return fmt.Errorf("fvm: %s convection boundary needs H > 0, got %g", b.name, b.b.H)
		}
	}
	return nil
}

type namedBoundary struct {
	name string
	b    Boundary
}

func (p *Problem) boundaries() []namedBoundary {
	return []namedBoundary{
		{"xmin", p.XMin}, {"xmax", p.XMax},
		{"ymin", p.YMin}, {"ymax", p.YMax},
		{"zmin", p.ZMin}, {"zmax", p.ZMax},
	}
}

// hasFixingBoundary reports whether at least one boundary pins the
// temperature level (required for a well-posed steady problem).
func (p *Problem) hasFixingBoundary() bool {
	for _, b := range p.boundaries() {
		if b.b.Type != Adiabatic {
			return true
		}
	}
	return false
}

// System is the discretised steady-state operator, assembled once from a
// Problem and reusable across every solve that shares the same grid,
// conductivity field and boundary conditions — only the power (RHS)
// changes between solves. It is the unit of caching the thermal layer
// leans on: superposition bases, transient stepping and design-space
// sweeps all reuse one System instead of re-assembling per solve.
//
// A System is immutable after construction and safe for concurrent use;
// the solve methods create per-call (or per-worker) solver state.
type System struct {
	grid   *mesh.Grid
	matrix *sparse.CSR
	// rhsBoundary is the boundary-condition contribution to the RHS
	// (conductance-weighted boundary temperatures); per-cell power is
	// added on top at solve time.
	rhsBoundary []float64
	// boundaryG[i] is the total boundary conductance of cell i (W/K) and
	// boundaryGT[i] the conductance-weighted boundary temperature, used for
	// energy accounting.
	boundaryG  []float64
	boundaryGT []float64
	// heatCap is the per-cell ρc (J/(m³·K)); nil for steady-only systems.
	heatCap []float64
	// hasFix records whether any boundary pins the temperature level.
	hasFix bool

	// hint carries the grid geometry to geometry-aware sparse backends
	// (geometric multigrid needs the mesh behind the matrix).
	hint sparse.GridHint
	// mgOnce/mgHier/mgErr lazily cache one multigrid hierarchy for the
	// steady operator, shared by every mg-cg solve of this system —
	// batched, blocked and repeated solves pay the Galerkin setup once.
	mgOnce sync.Once
	mgHier *mg.Hierarchy
	mgErr  error
	// mgHierPub republishes mgHier for lock-free observability reads
	// (PhaseStats) that must not trigger a hierarchy build.
	mgHierPub atomic.Pointer[mg.Hierarchy]

	// capOnce/capVol/capErr lazily cache the validated per-cell heat
	// capacity C = ρc·V (J/K) transient operators scale by 1/dt.
	capOnce sync.Once
	capVol  []float64
	capErr  error
	// transientMu/transientOps cache one diagonal-bumped operator (and,
	// lazily, one shifted multigrid hierarchy) per distinct time step, so
	// repeated transient runs — and every step within a run — share a
	// single A + diag(C/dt) assembly instead of rebuilding it per call.
	// Bounded to maxTransientOps, least-recently-used dt evicted;
	// transientUse is the access clock.
	transientMu  sync.Mutex
	transientOps map[float64]*transientOp
	transientUse int64
	// transientHierBuilds counts shifted-hierarchy constructions; the
	// no-per-step-rebuild regression test pins it.
	transientHierBuilds atomic.Int64

	// fpOnce/fp lazily cache the system fingerprint checkpoints embed.
	fpOnce sync.Once
	fp     uint64
}

// NewSystem validates the problem and assembles its operator once. The
// problem's Power field is only length-checked — each solve supplies its
// own power vector.
func NewSystem(p *Problem) (*System, error) {
	return p.assemble()
}

// Grid returns the system's computational grid.
func (s *System) Grid() *mesh.Grid { return s.grid }

// Matrix exposes the assembled conduction operator (read-only).
func (s *System) Matrix() *sparse.CSR { return s.matrix }

// N returns the number of unknowns (cells).
func (s *System) N() int { return s.matrix.N() }

// faceConductance returns the conductance (W/K) between two adjacent cells
// with half-widths d1/2 and d2/2, conductivities k1, k2, across face area a.
func faceConductance(a, d1, k1, d2, k2 float64) float64 {
	return a / (0.5*d1/k1 + 0.5*d2/k2)
}

// boundaryConductance returns the conductance from a cell centre to a
// boundary face of area a. For convection it is the series combination of
// the half-cell conduction and the film coefficient; for Dirichlet it is
// the half-cell conduction alone.
func boundaryConductance(b Boundary, a, d, k float64) float64 {
	switch b.Type {
	case Convection:
		return a / (0.5*d/k + 1/b.H)
	case Dirichlet:
		return a / (0.5 * d / k)
	default:
		return 0
	}
}

// assemble builds the SPD operator for the steady problem. The returned
// system's RHS excludes the per-cell power, which solves add on top.
func (p *Problem) assemble() (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Grid
	nx, ny, nz := g.NX(), g.NY(), g.NZ()
	n := g.NumCells()

	// Pass 1: face conductances along each axis.
	// gxF[idx] couples idx and idx+1 (only valid when i < nx-1), etc.
	gxF := make([]float64, n)
	gyF := make([]float64, n)
	gzF := make([]float64, n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := g.Index(i, j, k)
				sz := g.CellSize(i, j, k)
				kc := p.Conductivity[idx]
				if i < nx-1 {
					nb := g.Index(i+1, j, k)
					nsz := g.CellSize(i+1, j, k)
					gxF[idx] = faceConductance(sz.Y*sz.Z, sz.X, kc, nsz.X, p.Conductivity[nb])
				}
				if j < ny-1 {
					nb := g.Index(i, j+1, k)
					nsz := g.CellSize(i, j+1, k)
					gyF[idx] = faceConductance(sz.X*sz.Z, sz.Y, kc, nsz.Y, p.Conductivity[nb])
				}
				if k < nz-1 {
					nb := g.Index(i, j, k+1)
					nsz := g.CellSize(i, j, k+1)
					gzF[idx] = faceConductance(sz.X*sz.Y, sz.Z, kc, nsz.Z, p.Conductivity[nb])
				}
			}
		}
	}

	// Pass 2: count row entries and build CSR directly (sorted columns:
	// -z, -y, -x, diag, +x, +y, +z).
	rowPtr := make([]int, n+1)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				cnt := 1
				if k > 0 {
					cnt++
				}
				if j > 0 {
					cnt++
				}
				if i > 0 {
					cnt++
				}
				if i < nx-1 {
					cnt++
				}
				if j < ny-1 {
					cnt++
				}
				if k < nz-1 {
					cnt++
				}
				rowPtr[g.Index(i, j, k)+1] = cnt
			}
		}
	}
	for i := 0; i < n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	nnz := rowPtr[n]
	colIdx := make([]int32, nnz)
	values := make([]float64, nnz)
	rhs := make([]float64, n)
	boundaryG := make([]float64, n)
	boundaryGT := make([]float64, n)

	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := g.Index(i, j, k)
				sz := g.CellSize(i, j, k)
				kc := p.Conductivity[idx]
				diag := 0.0
				pos := rowPtr[idx]

				put := func(col int, v float64) {
					colIdx[pos] = int32(col)
					values[pos] = v
					pos++
				}

				var gmx, gmy, gmz, gpx, gpy, gpz float64
				if k > 0 {
					gmz = gzF[g.Index(i, j, k-1)]
				}
				if j > 0 {
					gmy = gyF[g.Index(i, j-1, k)]
				}
				if i > 0 {
					gmx = gxF[g.Index(i-1, j, k)]
				}
				if i < nx-1 {
					gpx = gxF[idx]
				}
				if j < ny-1 {
					gpy = gyF[idx]
				}
				if k < nz-1 {
					gpz = gzF[idx]
				}

				if k > 0 {
					put(g.Index(i, j, k-1), -gmz)
					diag += gmz
				}
				if j > 0 {
					put(g.Index(i, j-1, k), -gmy)
					diag += gmy
				}
				if i > 0 {
					put(g.Index(i-1, j, k), -gmx)
					diag += gmx
				}
				diagPos := pos
				put(idx, 0) // filled below
				if i < nx-1 {
					put(g.Index(i+1, j, k), -gpx)
					diag += gpx
				}
				if j < ny-1 {
					put(g.Index(i, j+1, k), -gpy)
					diag += gpy
				}
				if k < nz-1 {
					put(g.Index(i, j, k+1), -gpz)
					diag += gpz
				}

				// Boundary faces.
				applyBoundary := func(b Boundary, area, d float64) {
					gb := boundaryConductance(b, area, d, kc)
					if gb <= 0 {
						return
					}
					diag += gb
					rhs[idx] += gb * b.Value
					boundaryG[idx] += gb
					boundaryGT[idx] += gb * b.Value
				}
				if i == 0 {
					applyBoundary(p.XMin, sz.Y*sz.Z, sz.X)
				}
				if i == nx-1 {
					applyBoundary(p.XMax, sz.Y*sz.Z, sz.X)
				}
				if j == 0 {
					applyBoundary(p.YMin, sz.X*sz.Z, sz.Y)
				}
				if j == ny-1 {
					applyBoundary(p.YMax, sz.X*sz.Z, sz.Y)
				}
				if k == 0 {
					applyBoundary(p.ZMin, sz.X*sz.Y, sz.Z)
				}
				if k == nz-1 {
					applyBoundary(p.ZMax, sz.X*sz.Y, sz.Z)
				}

				values[diagPos] = diag
			}
		}
	}

	m, err := sparse.NewCSRFromParts(n, rowPtr, colIdx, values)
	if err != nil {
		return nil, fmt.Errorf("fvm: assembly produced invalid CSR: %w", err)
	}
	return &System{
		grid:        g,
		matrix:      m,
		rhsBoundary: rhs,
		boundaryG:   boundaryG,
		boundaryGT:  boundaryGT,
		heatCap:     p.HeatCapacity,
		hasFix:      p.hasFixingBoundary(),
		hint:        sparse.GridHint{X: g.X, Y: g.Y, Z: g.Z},
	}, nil
}

// SolveOptions configures a steady-state solve.
type SolveOptions struct {
	// Tolerance is the relative residual target (default 1e-8).
	Tolerance float64
	// MaxIterations caps solver iterations (default 10·n).
	MaxIterations int
	// InitialGuess optionally warm-starts the solver (length = cells).
	InitialGuess []float64
	// Solver selects the sparse backend by name ("jacobi-cg", "ssor-cg",
	// "mg-cg"); empty selects jacobi-cg.
	Solver string
	// Workers caps the goroutines used for matrix-vector products, the
	// mg-cg red-black line smoother and for fanning out batched solves; 0
	// means GOMAXPROCS.
	Workers int
	// MGOrdering selects the mg-cg line-relaxation order ("redblack",
	// "lex"); empty means red-black. Ignored by other backends.
	MGOrdering string
	// MGPrecision selects the mg-cg V-cycle arithmetic ("float32",
	// "float64"); empty auto-selects per mg.Options.Precision. Ignored by
	// other backends.
	MGPrecision string
	// MGCoarseSolver forces an mg-cg coarse-solve tier ("sparse", "band",
	// "iterative"); empty tries sparse Cholesky, then banded, then the
	// measured iterative fallback. Ignored by other backends.
	MGCoarseSolver string
	// MGCoarseBudget caps the mg-cg direct coarse factorisation in stored
	// entries; 0 means the mg default, negative disables the direct tiers.
	// Ignored by other backends.
	MGCoarseBudget int
	// MGCoarseRebalance opts into appending aggressively merged coarse
	// levels until the direct factorisation fits MGCoarseBudget. Ignored
	// by other backends.
	MGCoarseRebalance bool
}

// newSolver builds the sparse backend described by the options.
func (o SolveOptions) newSolver() (sparse.Solver, error) {
	tol := o.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	return sparse.Config{
		Backend:           o.Solver,
		Tolerance:         tol,
		MaxIterations:     o.MaxIterations,
		Workers:           o.Workers,
		MGOrdering:        o.MGOrdering,
		MGPrecision:       o.MGPrecision,
		MGCoarseSolver:    o.MGCoarseSolver,
		MGCoarseBudget:    o.MGCoarseBudget,
		MGCoarseRebalance: o.MGCoarseRebalance,
	}.New()
}

// hierarchy lazily builds the system's shared multigrid hierarchy (default
// coarsening options, matching the solvers newSolver constructs).
func (s *System) hierarchy() (*mg.Hierarchy, error) {
	s.mgOnce.Do(func() {
		s.mgHier, s.mgErr = mg.BuildHierarchy(s.matrix, s.hint, mg.Options{})
		if s.mgErr == nil {
			s.mgHierPub.Store(s.mgHier)
		}
	})
	return s.mgHier, s.mgErr
}

// Hierarchy returns the system's shared steady-state multigrid
// hierarchy, building it on first call. Benchmarks and diagnostics use
// it to reach the coarsest-level operator and ordering directly.
func (s *System) Hierarchy() (*mg.Hierarchy, error) { return s.hierarchy() }

// PhaseStats returns the cumulative V-cycle phase times of the system's
// shared steady-state multigrid hierarchy, or the zero value when no
// mg-cg solve has built one yet. Observability callers snapshot it
// around a solve to attach per-phase fractions to request traces.
func (s *System) PhaseStats() mg.PhaseStats {
	h := s.mgHierPub.Load()
	if h == nil {
		return mg.PhaseStats{}
	}
	return h.PhaseStats()
}

// solverFor builds the backend described by the options and wires the
// system's geometry into it: grid-aware solvers receive the mesh hint,
// and mg-cg solvers of the steady operator additionally share the
// system's cached hierarchy so parallel workers do not each redo the
// Galerkin setup. Transient steppers pass shareHierarchy=false and wire
// in the per-dt shifted hierarchy themselves (see transientOp).
func (s *System) solverFor(opts SolveOptions, shareHierarchy bool) (sparse.Solver, error) {
	solver, err := opts.newSolver()
	if err != nil {
		return nil, err
	}
	if gs, ok := solver.(sparse.GridSolver); ok {
		gs.SetGridHint(s.hint)
	}
	if ms, ok := solver.(*mg.Solver); ok && shareHierarchy {
		h, err := s.hierarchy()
		if err != nil {
			return nil, err
		}
		ms.SetHierarchy(h)
	}
	return solver, nil
}

// Solution is a computed temperature field.
type Solution struct {
	Grid *mesh.Grid
	// T is the per-cell temperature in °C.
	T []float64
	// Stats reports solver convergence.
	Stats sparse.Result

	boundaryG  []float64
	boundaryGT []float64
	totalPower float64
}

// SolveSteady solves the steady-state problem. It assembles the operator
// per call; repeated solves over the same geometry should assemble once
// with NewSystem and use System.SolveSteady / System.SolveSteadyBatch.
func SolveSteady(p *Problem, opts SolveOptions) (*Solution, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	return sys.SolveSteady(p.Power, opts)
}

// SolveSteady solves the steady problem for one per-cell power vector
// (watts per cell, length N) against the cached operator.
func (s *System) SolveSteady(power []float64, opts SolveOptions) (*Solution, error) {
	solver, err := s.solverFor(opts, true)
	if err != nil {
		return nil, err
	}
	return s.solveSteadyWith(power, opts, solver, nil)
}

// solveSteadyWith runs one steady solve with a caller-supplied solver and
// optional reusable RHS buffer (both enable allocation-free batching).
func (s *System) solveSteadyWith(power []float64, opts SolveOptions, solver sparse.Solver, rhs []float64) (*Solution, error) {
	if !s.hasFix {
		return nil, fmt.Errorf("fvm: steady problem needs at least one convection or Dirichlet boundary (all faces adiabatic)")
	}
	n := s.matrix.N()
	if len(power) != n {
		return nil, fmt.Errorf("fvm: power vector has %d entries, want %d", len(power), n)
	}
	if rhs == nil {
		rhs = make([]float64, n)
	}
	var total float64
	for i, q := range power {
		rhs[i] = s.rhsBoundary[i] + q
		total += q
	}
	t := make([]float64, n)
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != n {
			return nil, fmt.Errorf("fvm: initial guess has %d entries, want %d", len(opts.InitialGuess), n)
		}
		copy(t, opts.InitialGuess)
	}
	stats, err := solver.Solve(s.matrix, rhs, t)
	if err != nil {
		return nil, fmt.Errorf("fvm: steady solve failed: %w", err)
	}
	return &Solution{
		Grid: s.grid, T: t, Stats: stats,
		boundaryG: s.boundaryG, boundaryGT: s.boundaryGT, totalPower: total,
	}, nil
}

// SolveSteadyBatch solves the steady problem for many power vectors
// against the one cached operator, fanning the independent right-hand
// sides across opts.Workers goroutines (0 means GOMAXPROCS), each with its
// own solver workspace and RHS buffer. Solutions are returned in input
// order; the first error aborts the batch (remaining solves are skipped).
func (s *System) SolveSteadyBatch(powers [][]float64, opts SolveOptions) ([]*Solution, error) {
	if len(powers) == 0 {
		return nil, fmt.Errorf("fvm: empty power batch")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(powers) {
		workers = len(powers)
	}
	solvers := make([]sparse.Solver, workers)
	rhsBufs := make([][]float64, workers)
	for w := range solvers {
		solver, err := s.solverFor(opts, true)
		if err != nil {
			return nil, err
		}
		solvers[w] = solver
		rhsBufs[w] = make([]float64, s.matrix.N())
	}
	sols := make([]*Solution, len(powers))
	err := parallel.ForEach(workers, len(powers), func(w, i int) error {
		sol, err := s.solveSteadyWith(powers[i], opts, solvers[w], rhsBufs[w])
		if err != nil {
			return fmt.Errorf("fvm: batch solve %d: %w", i, err)
		}
		sols[i] = sol
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sols, nil
}

// SolveSteadyBlock solves many power vectors against the cached operator
// as ONE block-Krylov solve: all right-hand sides advance through a shared
// block conjugate gradient, so every matrix pass feeds every column
// (sparse.MulVecBlockN) and the columns exchange search directions — the
// batched basis build converges in fewer, cheaper iterations than
// len(powers) independent solves. Every column gets its own multigrid
// V-cycle preconditioner — all sharing the system's cached hierarchy — and
// the applications run concurrently inside each block iteration.
//
// Block Krylov pays off when the preconditioner dominates the iteration
// and the iteration count is small, which is the mg-cg profile; for the
// cheap Jacobi/SSOR preconditioners the hundreds of interleaved block
// iterations cost more than len(powers) embarrassingly parallel solves,
// so every other backend transparently delegates to SolveSteadyBatch (as
// does a block whose search directions lose rank mid-solve — numerically
// dependent right-hand sides). The result contract is identical either
// way: one Solution per power vector, in input order.
func (s *System) SolveSteadyBlock(powers [][]float64, opts SolveOptions) ([]*Solution, error) {
	if len(powers) == 0 {
		return nil, fmt.Errorf("fvm: empty power block")
	}
	if !s.hasFix {
		return nil, fmt.Errorf("fvm: steady problem needs at least one convection or Dirichlet boundary (all faces adiabatic)")
	}
	probe, err := opts.newSolver()
	if err != nil {
		return nil, err
	}
	if _, isMG := probe.(*mg.Solver); !isMG {
		// Cheap-preconditioner backend: the parallel batch is faster.
		return s.SolveSteadyBatch(powers, opts)
	}
	n := s.matrix.N()
	if opts.InitialGuess != nil && len(opts.InitialGuess) != n {
		return nil, fmt.Errorf("fvm: initial guess has %d entries, want %d", len(opts.InitialGuess), n)
	}
	bs := make([][]float64, len(powers))
	xs := make([][]float64, len(powers))
	totals := make([]float64, len(powers))
	for c, power := range powers {
		if len(power) != n {
			return nil, fmt.Errorf("fvm: block power %d has %d entries, want %d", c, len(power), n)
		}
		rhs := make([]float64, n)
		var total float64
		for i, q := range power {
			rhs[i] = s.rhsBoundary[i] + q
			total += q
		}
		bs[c], totals[c] = rhs, total
		xs[c] = make([]float64, n)
		if opts.InitialGuess != nil {
			copy(xs[c], opts.InitialGuess)
		}
	}
	// One preconditioner per column lets BlockCG apply the V-cycles
	// concurrently; Workers == 1 keeps the solve single-threaded by
	// sharing one instance (applied serially), honouring the knob's
	// CPU-bounding contract.
	numPreconds := len(powers)
	if opts.Workers == 1 {
		numPreconds = 1
	}
	preconds := make([]func(z, r []float64), numPreconds)
	for c := range preconds {
		solver, err := s.solverFor(opts, true)
		if err != nil {
			return nil, err
		}
		pc := solver.(sparse.Preconditioned) // probed above; same opts
		preconds[c], err = pc.Preconditioner(s.matrix)
		if err != nil {
			return nil, fmt.Errorf("fvm: block steady solve: %w", err)
		}
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	stats, err := sparse.BlockCG(s.matrix, bs, xs, preconds, tol, opts.MaxIterations, opts.Workers)
	if err != nil {
		if errors.Is(err, sparse.ErrBlockBreakdown) {
			// Rank loss: the columns' Krylov spaces merged. Independent
			// solves cannot break down this way.
			return s.SolveSteadyBatch(powers, opts)
		}
		return nil, fmt.Errorf("fvm: block steady solve failed: %w", err)
	}
	sols := make([]*Solution, len(powers))
	for c := range sols {
		sols[c] = &Solution{
			Grid: s.grid, T: xs[c], Stats: stats[c],
			boundaryG: s.boundaryG, boundaryGT: s.boundaryGT, totalPower: totals[c],
		}
	}
	return sols, nil
}

// BoundaryHeatFlow returns the net heat leaving the domain through
// non-adiabatic boundaries, in watts. For a converged steady solution this
// matches the total injected power.
func (s *Solution) BoundaryHeatFlow() float64 {
	var out float64
	for i, g := range s.boundaryG {
		if g > 0 {
			out += g*s.T[i] - s.boundaryGT[i]
		}
	}
	return out
}

// EnergyBalanceError returns the relative defect between injected power
// and net boundary outflow. The defect is normalised by the larger of the
// injected power and the gross boundary exchange, so that problems driven
// purely by boundary conditions (zero volumetric sources, e.g. a fin with
// a hot base) are judged against the through-flux rather than zero.
func (s *Solution) EnergyBalanceError() float64 {
	in := s.totalPower
	out := s.BoundaryHeatFlow()
	var gross float64
	for i, g := range s.boundaryG {
		if g > 0 {
			gross += math.Abs(g*s.T[i] - s.boundaryGT[i])
		}
	}
	denom := math.Max(math.Abs(in), math.Max(gross, 1e-12))
	return math.Abs(in-out) / denom
}

// TemperatureAt returns the temperature of the cell containing p.
func (s *Solution) TemperatureAt(p geom.Vec3) (float64, error) {
	i, j, k, ok := s.Grid.FindCell(p)
	if !ok {
		return 0, fmt.Errorf("fvm: point %v outside domain", p)
	}
	return s.T[s.Grid.Index(i, j, k)], nil
}

// RegionStats summarises the temperature field over a box.
type RegionStats struct {
	Min, Max, Mean float64
	// Gradient is Max − Min, the quantity the paper calls the gradient
	// temperature of a region.
	Gradient float64
	// Volume is the overlapped volume used for the averages.
	Volume float64
}

// StatsOver computes volume-weighted statistics over all cells overlapping
// the box.
func (s *Solution) StatsOver(b geom.Box) (RegionStats, error) {
	g := s.Grid
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(b)
	st := RegionStats{Min: math.Inf(1), Max: math.Inf(-1)}
	var weighted float64
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				cell := g.CellBox(i, j, k)
				ov := cell.OverlapVolume(b)
				if ov <= 0 {
					continue
				}
				t := s.T[g.Index(i, j, k)]
				weighted += t * ov
				st.Volume += ov
				if t < st.Min {
					st.Min = t
				}
				if t > st.Max {
					st.Max = t
				}
			}
		}
	}
	if st.Volume == 0 {
		return RegionStats{}, fmt.Errorf("fvm: box %v overlaps no cells", b)
	}
	st.Mean = weighted / st.Volume
	st.Gradient = st.Max - st.Min
	return st, nil
}

// GlobalStats returns statistics over the whole domain.
func (s *Solution) GlobalStats() RegionStats {
	st, _ := s.StatsOver(s.Grid.Domain())
	return st
}

// TransientOptions configures a transient run.
type TransientOptions struct {
	// TimeStep is the implicit-Euler step in seconds (must be > 0).
	TimeStep float64
	// Steps is the number of steps to take (must be > 0).
	Steps int
	// Initial is the starting temperature field; if nil, the field starts
	// uniform at InitialUniform.
	Initial []float64
	// InitialUniform is the uniform start temperature used when Initial is
	// nil (°C).
	InitialUniform float64
	// Tolerance is the per-step solver tolerance (default 1e-8).
	Tolerance float64
	// Solver selects the sparse backend by name ("jacobi-cg", "ssor-cg",
	// "mg-cg"); empty selects jacobi-cg.
	Solver string
	// Workers caps the goroutines used for matrix-vector products; 0 means
	// GOMAXPROCS.
	Workers int
	// MGOrdering, MGPrecision and the MGCoarse* knobs tune the mg-cg
	// backend exactly as the fields of the same name on SolveOptions;
	// ignored by other backends.
	MGOrdering        string
	MGPrecision       string
	MGCoarseSolver    string
	MGCoarseBudget    int
	MGCoarseRebalance bool
	// Snapshot, if non-nil, is called after every step with the step index
	// (1-based), the simulated time and a fresh copy of the current field,
	// which the callback may retain.
	Snapshot func(step int, time float64, t []float64)
}

// SolveTransient integrates the transient heat equation with implicit
// Euler and returns the final field. It assembles the operator per call;
// repeated runs over the same geometry should assemble once with
// NewSystem and use System.SolveTransient.
func SolveTransient(p *Problem, opts TransientOptions) (*Solution, error) {
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	return sys.SolveTransient(p.Power, opts)
}

// SolveTransient integrates the transient heat equation for one per-cell
// power vector against the cached operator. It is a thin wrapper over
// TransientStepper: the run reuses the system's per-dt transient operator
// (and, under mg-cg, the shifted multigrid hierarchy derived from the
// steady one), a single solver workspace, and warm-starts every step from
// the previous field. Interruptible, resumable runs use NewTransientStepper
// directly.
func (s *System) SolveTransient(power []float64, opts TransientOptions) (*Solution, error) {
	if opts.Steps <= 0 {
		return nil, fmt.Errorf("fvm: steps %d must be > 0", opts.Steps)
	}
	st, err := s.NewTransientStepper(power, opts)
	if err != nil {
		return nil, err
	}
	for step := 1; step <= opts.Steps; step++ {
		if _, err := st.Step(); err != nil {
			return nil, err
		}
		if opts.Snapshot != nil {
			// Hand out a copy: the stepper's field is its in-place
			// iteration buffer, and callbacks may retain per-step fields.
			opts.Snapshot(st.StepIndex(), st.Time(), st.Field())
		}
	}
	return st.Solution(), nil
}
