//go:build !race

package fvm

// raceEnabled mirrors the -race build flag.
const raceEnabled = false
