package fvm

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTransientStepperMatchesSolveTransient: stepping manually must
// reproduce the run-to-completion wrapper exactly, snapshots included.
func TestTransientStepperMatchesSolveTransient(t *testing.T) {
	p := systemProblem(t, 12, 10, 4)
	opts := TransientOptions{TimeStep: 0.02, Steps: 6, InitialUniform: 25, Tolerance: 1e-10}
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.SolveTransient(p.Power, opts)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewTransientStepper(p.Power, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < opts.Steps; i++ {
		if _, err := st.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if st.StepIndex() != opts.Steps {
		t.Fatalf("step index %d, want %d", st.StepIndex(), opts.Steps)
	}
	if got := st.Time(); got != float64(opts.Steps)*opts.TimeStep {
		t.Errorf("time %g, want %g", got, float64(opts.Steps)*opts.TimeStep)
	}
	if !reflect.DeepEqual(st.Field(), want.T) {
		t.Error("stepper field differs from SolveTransient")
	}
	sol := st.Solution()
	if !reflect.DeepEqual(sol.T, want.T) || sol.Stats != want.Stats {
		t.Error("stepper Solution differs from SolveTransient")
	}
}

// TestTransientOperatorCachedPerDt: the diagonal-bumped operator must be
// built once per distinct dt and shared across runs, and a warm Step must
// be effectively allocation-free — the perf fix over the seed path, which
// rebuilt the bumped CSR on every SolveTransient call.
func TestTransientOperatorCachedPerDt(t *testing.T) {
	p := systemProblem(t, 10, 10, 4) // 400 cells: matvecs stay serial
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	op1, err := sys.transientOperator(0.01)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := sys.transientOperator(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if op1 != op2 || op1.matrix != op2.matrix {
		t.Error("same dt must reuse the cached transient operator")
	}
	op3, err := sys.transientOperator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	if op3 == op1 || op3.matrix == op1.matrix {
		t.Error("different dt must build a distinct operator")
	}
	// The cache is bounded: dt arrives from the network in the serving
	// layer, so distinct values must evict, not accumulate.
	for i := 0; i < 3*maxTransientOps; i++ {
		if _, err := sys.transientOperator(1e-3 * float64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	sys.transientMu.Lock()
	cached := len(sys.transientOps)
	sys.transientMu.Unlock()
	if cached > maxTransientOps {
		t.Errorf("transient operator cache holds %d entries, bound is %d", cached, maxTransientOps)
	}
	// Two steppers over the same dt share one operator.
	stA, err := sys.NewTransientStepper(p.Power, TransientOptions{TimeStep: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	stB, err := sys.NewTransientStepper(p.Power, TransientOptions{TimeStep: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if stA.op != stB.op {
		t.Error("steppers with equal dt must share the cached operator")
	}
	if _, err := stA.Step(); err != nil { // warm the solver workspace
		t.Fatal(err)
	}
	if raceEnabled {
		return // the detector's instrumentation inflates allocation counts
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := stA.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("warm transient step allocates %.0f objects; the cached-operator path should be near allocation-free", allocs)
	}
}

// TestTransientCheckpointRoundTripResume: a run interrupted at step k,
// serialised, decoded and resumed — even on a freshly rebuilt System —
// must be bit-identical to the uninterrupted run, for both the cheap and
// the multigrid backend.
func TestTransientCheckpointRoundTripResume(t *testing.T) {
	for _, backend := range []string{"jacobi-cg", "mg-cg"} {
		p := systemProblem(t, 14, 12, 5)
		opts := TransientOptions{TimeStep: 0.05, Steps: 9, InitialUniform: 25, Tolerance: 1e-9, Solver: backend}
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.SolveTransient(p.Power, opts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}

		st, err := sys.NewTransientStepper(p.Power, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			if _, err := st.Step(); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := st.Checkpoint().Encode(&buf); err != nil {
			t.Fatal(err)
		}
		cp, err := DecodeTransientCheckpoint(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Step != 4 || cp.Solver != backend {
			t.Fatalf("%s: checkpoint records step %d solver %q", backend, cp.Step, cp.Solver)
		}

		// Resume on a rebuilt system (fresh process simulation): assembly
		// is deterministic, so the fingerprints must match.
		sys2, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		if sys2.Fingerprint() != sys.Fingerprint() {
			t.Fatal("rebuilt system changed fingerprint — assembly not deterministic")
		}
		st2, err := sys2.NewTransientStepper(p.Power, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := st2.Restore(cp); err != nil {
			t.Fatal(err)
		}
		for st2.StepIndex() < opts.Steps {
			if _, err := st2.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(st2.Field(), want.T) {
			t.Errorf("%s: resumed run is not bit-identical to the uninterrupted run", backend)
		}
	}
}

// TestTransientCheckpointRefusals: corrupted or mismatched checkpoints
// must refuse cleanly with a descriptive error, never restore.
func TestTransientCheckpointRefusals(t *testing.T) {
	p := systemProblem(t, 10, 10, 4)
	opts := TransientOptions{TimeStep: 0.05, InitialUniform: 25, Tolerance: 1e-9}
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sys.NewTransientStepper(p.Power, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(); err != nil {
		t.Fatal(err)
	}
	good := st.Checkpoint()

	fresh := func() *TransientStepper {
		s2, err := sys.NewTransientStepper(p.Power, opts)
		if err != nil {
			t.Fatal(err)
		}
		return s2
	}
	cases := []struct {
		name   string
		mutate func(cp *TransientCheckpoint)
		stepr  *TransientStepper
	}{
		{"version", func(cp *TransientCheckpoint) { cp.Version = 99 }, fresh()},
		{"system fingerprint", func(cp *TransientCheckpoint) { cp.System = "deadbeefdeadbeef" }, fresh()},
		{"power fingerprint", func(cp *TransientCheckpoint) { cp.Power = "deadbeefdeadbeef" }, fresh()},
		{"solver", func(cp *TransientCheckpoint) { cp.Solver = "ssor-cg" }, fresh()},
		{"tolerance", func(cp *TransientCheckpoint) { cp.Tolerance = 1e-3 }, fresh()},
		{"time step", func(cp *TransientCheckpoint) { cp.TimeStep = 0.1 }, fresh()},
		{"field length", func(cp *TransientCheckpoint) { cp.T = cp.T[:3] }, fresh()},
	}
	for _, tc := range cases {
		cp := *good
		cp.T = append([]float64(nil), good.T...)
		tc.mutate(&cp)
		if err := tc.stepr.Restore(&cp); err == nil {
			t.Errorf("restore with mismatched %s should refuse", tc.name)
		}
	}
	// A checkpoint from a different problem (different conductivity) must
	// refuse on the system fingerprint.
	p2 := systemProblem(t, 10, 10, 4)
	for i := range p2.Conductivity {
		p2.Conductivity[i] *= 1.5
	}
	sys2, err := NewSystem(p2)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sys2.NewTransientStepper(p2.Power, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Restore(good); err == nil {
		t.Error("checkpoint from a different system should refuse")
	}
	// Corrupted serialisations refuse at decode time.
	for _, raw := range []string{
		"not json",
		`{"version":1,"time_step_s":0.05,"step":1}`,                   // no field
		`{"version":1,"time_step_s":-1,"step":1,"t_c":[1]}`,           // bad dt
		`{"version":1,"time_step_s":0.05,"step":1,"t_c":[1],"x":"y"}`, // unknown field
	} {
		if _, err := DecodeTransientCheckpoint(strings.NewReader(raw)); err == nil {
			t.Errorf("decoding %q should fail", raw)
		}
	}
}

// TestTransientMGShiftedHierarchy is the pinned mg-cg transient test: the
// shifted V-cycle must be built exactly once per dt (never per step or
// per run), keep per-step iteration counts in the steady solves' low
// single-digit band, and stay mesh-independent when the lateral
// resolution doubles.
func TestTransientMGShiftedHierarchy(t *testing.T) {
	maxItersAt := func(nx, ny int) (int, *System) {
		p := systemProblem(t, nx, ny, 6)
		sys, err := NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sys.NewTransientStepper(p.Power, TransientOptions{
			TimeStep: 5, InitialUniform: 25, Tolerance: 1e-9, Solver: "mg-cg",
		})
		if err != nil {
			t.Fatal(err)
		}
		maxIters := 0
		for i := 0; i < 5; i++ {
			stats, err := st.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !stats.Converged {
				t.Fatalf("step %d did not converge", i+1)
			}
			if stats.Iterations > maxIters {
				maxIters = stats.Iterations
			}
		}
		return maxIters, sys
	}
	small, _ := maxItersAt(24, 20)
	large, sysL := maxItersAt(48, 40)
	t.Logf("mg-cg transient iterations/step: %d at 24×20, %d at 48×40", small, large)
	if small > 10 || large > 10 {
		t.Errorf("transient mg-cg iteration count left the pinned band: %d / %d > 10", small, large)
	}
	if large > small+2 {
		t.Errorf("iteration count grew from %d to %d under refinement — not mesh independent", small, large)
	}
	// One shifted hierarchy per dt, however many steps and steppers run.
	if got := sysL.transientHierBuilds.Load(); got != 1 {
		t.Errorf("shifted hierarchy built %d times, want exactly 1", got)
	}
	st2, err := sysL.NewTransientStepper(make([]float64, sysL.N()), TransientOptions{
		TimeStep: 5, InitialUniform: 25, Solver: "mg-cg",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Step(); err != nil {
		t.Fatal(err)
	}
	if got := sysL.transientHierBuilds.Load(); got != 1 {
		t.Errorf("second stepper rebuilt the shifted hierarchy (%d builds)", got)
	}
}
