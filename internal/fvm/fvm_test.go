package fvm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vcselnoc/internal/geom"
	"vcselnoc/internal/mesh"
)

func uniformGrid(t testing.TB, nx, ny, nz int, lx, ly, lz float64) *mesh.Grid {
	t.Helper()
	mk := func(n int, l float64) []float64 {
		lines := make([]float64, n+1)
		for i := range lines {
			lines[i] = l * float64(i) / float64(n)
		}
		return lines
	}
	g, err := mesh.NewGrid(mk(nx, lx), mk(ny, ly), mk(nz, lz))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fill(n int, v float64) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = v
	}
	return s
}

// TestSlab1DAnalytic validates the solver against the exact solution of a
// 1-D slab with uniform volumetric heating, one Dirichlet face and one
// adiabatic face: T(x) = T0 + (q_v/k)·(L·x − x²/2).
func TestSlab1DAnalytic(t *testing.T) {
	const (
		L  = 1e-3 // 1 mm slab
		k  = 100.0
		qv = 1e9 // W/m³
		T0 = 25.0
	)
	g := uniformGrid(t, 50, 1, 1, L, 1e-4, 1e-4)
	n := g.NumCells()
	power := make([]float64, n)
	for i := 0; i < g.NX(); i++ {
		power[g.Index(i, 0, 0)] = qv * g.CellVolume(i, 0, 0)
	}
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, k),
		Power:        power,
		XMin:         Boundary{Type: Dirichlet, Value: T0},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NX(); i++ {
		x := g.CellCenter(i, 0, 0).X
		want := T0 + qv/k*(L*x-x*x/2)
		got := sol.T[g.Index(i, 0, 0)]
		if math.Abs(got-want) > 0.02*(want-T0)+1e-6 {
			t.Fatalf("cell %d at x=%g: T=%g, want %g", i, x, got, want)
		}
	}
	if e := sol.EnergyBalanceError(); e > 1e-6 {
		t.Errorf("energy balance error %g", e)
	}
}

// TestSeriesSlabAnalytic checks a two-material slab with a fixed heat flux
// driven by Dirichlet conditions at both ends: the interface temperature
// must follow the series thermal resistance.
func TestSeriesSlabAnalytic(t *testing.T) {
	const (
		L      = 2e-3
		k1, k2 = 10.0, 100.0
		Tleft  = 100.0
		Tright = 0.0
	)
	g := uniformGrid(t, 40, 1, 1, L, 1e-4, 1e-4)
	n := g.NumCells()
	cond := make([]float64, n)
	for i := 0; i < g.NX(); i++ {
		if g.CellCenter(i, 0, 0).X < L/2 {
			cond[g.Index(i, 0, 0)] = k1
		} else {
			cond[g.Index(i, 0, 0)] = k2
		}
	}
	p := &Problem{
		Grid:         g,
		Conductivity: cond,
		Power:        fill(n, 0),
		XMin:         Boundary{Type: Dirichlet, Value: Tleft},
		XMax:         Boundary{Type: Dirichlet, Value: Tright},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic interface temperature: flux q = ΔT / (R1+R2),
	// R1 = (L/2)/k1, R2 = (L/2)/k2; T_if = Tleft − q·R1.
	r1 := (L / 2) / k1
	r2 := (L / 2) / k2
	q := (Tleft - Tright) / (r1 + r2)
	wantIf := Tleft - q*r1
	gotIf, err := sol.TemperatureAt(geom.Vec3{X: L / 2, Y: 5e-5, Z: 5e-5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotIf-wantIf) > 1.5 {
		t.Errorf("interface T = %g, want ~%g", gotIf, wantIf)
	}
}

// TestConvectionAnalytic checks the overall thermal resistance of a slab
// cooled by convection: T_base − T_amb = P·(L/(k·A) + 1/(h·A)).
func TestConvectionAnalytic(t *testing.T) {
	const (
		L    = 1e-3
		A    = 1e-6 // 1 mm × 1 mm
		k    = 50.0
		h    = 1e4
		P    = 0.5
		Tamb = 25.0
	)
	g := uniformGrid(t, 1, 1, 30, 1e-3, 1e-3, L)
	n := g.NumCells()
	power := make([]float64, n)
	power[g.Index(0, 0, 0)] = P // heat injected in bottom cell
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, k),
		Power:        power,
		ZMax:         Boundary{Type: Convection, H: h, Value: Tamb},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Bottom cell centre sits dz/2 above z=0, so conduction path is
	// L − dz/2.
	dz := L / 30
	want := Tamb + P*((L-dz/2)/(k*A)+1/(h*A))
	got := sol.T[g.Index(0, 0, 0)]
	if math.Abs(got-want) > 0.01*(want-Tamb) {
		t.Errorf("base T = %g, want %g", got, want)
	}
	if e := sol.EnergyBalanceError(); e > 1e-6 {
		t.Errorf("energy balance error %g", e)
	}
}

func TestValidationErrors(t *testing.T) {
	g := uniformGrid(t, 2, 2, 2, 1, 1, 1)
	n := g.NumCells()
	good := func() *Problem {
		return &Problem{
			Grid:         g,
			Conductivity: fill(n, 1),
			Power:        fill(n, 0),
			ZMax:         Boundary{Type: Convection, H: 10, Value: 25},
		}
	}

	p := good()
	p.Grid = nil
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("nil grid should error")
	}

	p = good()
	p.Conductivity = fill(n-1, 1)
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("short conductivity should error")
	}

	p = good()
	p.Conductivity[3] = -1
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("negative conductivity should error")
	}

	p = good()
	p.Power[0] = math.NaN()
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("NaN power should error")
	}

	p = good()
	p.ZMax = Boundary{Type: Convection, H: 0, Value: 25}
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("zero H convection should error")
	}

	p = good()
	p.ZMax = Boundary{} // all adiabatic
	if _, err := SolveSteady(p, SolveOptions{}); err == nil {
		t.Error("all-adiabatic steady problem should error")
	}
}

func TestBoundaryTypeString(t *testing.T) {
	if Adiabatic.String() != "adiabatic" || Convection.String() != "convection" ||
		Dirichlet.String() != "dirichlet" {
		t.Error("BoundaryType strings wrong")
	}
	if BoundaryType(42).String() == "" {
		t.Error("unknown type should stringify")
	}
}

// TestMaximumPrinciple: with no heat sources, the temperature everywhere
// must lie between the boundary temperatures.
func TestMaximumPrinciple(t *testing.T) {
	g := uniformGrid(t, 8, 8, 8, 1e-3, 1e-3, 1e-3)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 10),
		Power:        fill(n, 0),
		XMin:         Boundary{Type: Dirichlet, Value: 10},
		XMax:         Boundary{Type: Dirichlet, Value: 90},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.GlobalStats()
	if st.Min < 10-1e-6 || st.Max > 90+1e-6 {
		t.Errorf("maximum principle violated: [%g, %g] outside [10, 90]", st.Min, st.Max)
	}
}

// TestSuperposition: the steady solution is linear in the power vector,
// relative to the ambient offset. T(q1+q2) − T_amb = (T(q1)−T_amb) +
// (T(q2)−T_amb) when all boundaries share the same ambient value.
func TestSuperposition(t *testing.T) {
	g := uniformGrid(t, 6, 6, 4, 1e-3, 1e-3, 5e-4)
	n := g.NumCells()
	const amb = 30.0
	base := func() *Problem {
		return &Problem{
			Grid:         g,
			Conductivity: fill(n, 20),
			Power:        fill(n, 0),
			ZMax:         Boundary{Type: Convection, H: 5e3, Value: amb},
		}
	}
	p1 := base()
	p1.Power[g.Index(1, 1, 0)] = 0.3
	p2 := base()
	p2.Power[g.Index(4, 4, 1)] = 0.7
	p12 := base()
	p12.Power[g.Index(1, 1, 0)] = 0.3
	p12.Power[g.Index(4, 4, 1)] = 0.7

	s1, err := SolveSteady(p1, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SolveSteady(p2, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	s12, err := SolveSteady(p12, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range s12.T {
		want := (s1.T[i] - amb) + (s2.T[i] - amb) + amb
		if math.Abs(s12.T[i]-want) > 1e-6 {
			t.Fatalf("superposition violated at cell %d: %g vs %g", i, s12.T[i], want)
		}
	}
}

func TestStatsOver(t *testing.T) {
	g := uniformGrid(t, 4, 4, 1, 4, 4, 1)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 1),
		Power:        fill(n, 0),
		XMin:         Boundary{Type: Dirichlet, Value: 0},
		XMax:         Boundary{Type: Dirichlet, Value: 100},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sol.StatsOver(g.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if st.Gradient <= 0 {
		t.Error("gradient should be positive in a temperature ramp")
	}
	if st.Mean < st.Min || st.Mean > st.Max {
		t.Error("mean outside [min, max]")
	}
	// Out-of-domain box errors.
	if _, err := sol.StatsOver(geom.NewBox(geom.Vec3{X: 100}, geom.Vec3{X: 1, Y: 1, Z: 1})); err == nil {
		t.Error("disjoint box should error")
	}
}

func TestTemperatureAtOutside(t *testing.T) {
	g := uniformGrid(t, 2, 2, 2, 1, 1, 1)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 1),
		Power:        fill(n, 0),
		ZMax:         Boundary{Type: Dirichlet, Value: 25},
	}
	sol, err := SolveSteady(p, SolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sol.TemperatureAt(geom.Vec3{X: -5}); err == nil {
		t.Error("outside point should error")
	}
}

// TestTransientApproachesSteady: after many time steps the transient field
// must converge to the steady solution.
func TestTransientApproachesSteady(t *testing.T) {
	g := uniformGrid(t, 6, 6, 3, 1e-3, 1e-3, 3e-4)
	n := g.NumCells()
	power := fill(n, 0)
	power[g.Index(2, 3, 0)] = 0.2
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 30),
		Power:        power,
		HeatCapacity: fill(n, 1.6e6),
		ZMax:         Boundary{Type: Convection, H: 1e4, Value: 25},
	}
	steady, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	var lastTime float64
	var snaps int
	trans, err := SolveTransient(p, TransientOptions{
		TimeStep:       5e-3,
		Steps:          4000,
		InitialUniform: 25,
		Tolerance:      1e-10,
		Snapshot: func(step int, tm float64, _ []float64) {
			snaps++
			lastTime = tm
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snaps != 4000 || math.Abs(lastTime-20.0) > 1e-9 {
		t.Errorf("snapshots=%d lastTime=%g", snaps, lastTime)
	}
	for i := range steady.T {
		if math.Abs(trans.T[i]-steady.T[i]) > 0.05 {
			t.Fatalf("transient did not reach steady at cell %d: %g vs %g", i, trans.T[i], steady.T[i])
		}
	}
}

// TestTransientMonotoneHeating: starting at ambient with constant power,
// the hottest cell's temperature must rise monotonically.
func TestTransientMonotoneHeating(t *testing.T) {
	g := uniformGrid(t, 4, 4, 2, 1e-3, 1e-3, 2e-4)
	n := g.NumCells()
	power := fill(n, 0)
	hot := g.Index(1, 1, 0)
	power[hot] = 0.5
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 100),
		Power:        power,
		HeatCapacity: fill(n, 1.6e6),
		ZMax:         Boundary{Type: Convection, H: 5e3, Value: 25},
	}
	prev := 25.0
	_, err := SolveTransient(p, TransientOptions{
		TimeStep:       1e-2,
		Steps:          50,
		InitialUniform: 25,
		Snapshot: func(_ int, _ float64, field []float64) {
			if field[hot] < prev-1e-9 {
				t.Errorf("hot cell cooled during constant heating: %g -> %g", prev, field[hot])
			}
			prev = field[hot]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if prev <= 25 {
		t.Error("hot cell never heated")
	}
}

func TestTransientErrors(t *testing.T) {
	g := uniformGrid(t, 2, 2, 2, 1, 1, 1)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 1),
		Power:        fill(n, 0),
		ZMax:         Boundary{Type: Dirichlet, Value: 25},
	}
	if _, err := SolveTransient(p, TransientOptions{TimeStep: 1, Steps: 1}); err == nil {
		t.Error("missing heat capacity should error")
	}
	p.HeatCapacity = fill(n, 1e6)
	if _, err := SolveTransient(p, TransientOptions{TimeStep: 0, Steps: 1}); err == nil {
		t.Error("zero dt should error")
	}
	if _, err := SolveTransient(p, TransientOptions{TimeStep: 1, Steps: 0}); err == nil {
		t.Error("zero steps should error")
	}
	if _, err := SolveTransient(p, TransientOptions{TimeStep: 1, Steps: 1, Initial: fill(3, 0)}); err == nil {
		t.Error("wrong initial length should error")
	}
	p.HeatCapacity[0] = -1
	if _, err := SolveTransient(p, TransientOptions{TimeStep: 1, Steps: 1}); err == nil {
		t.Error("negative capacity should error")
	}
}

// TestMeshRefinementConvergence: refining the grid should not change the
// solution much (consistency of the discretisation).
func TestMeshRefinementConvergence(t *testing.T) {
	solveWith := func(nx int) float64 {
		g := uniformGrid(t, nx, 1, 1, 1e-3, 1e-4, 1e-4)
		n := g.NumCells()
		power := make([]float64, n)
		for i := 0; i < g.NX(); i++ {
			power[g.Index(i, 0, 0)] = 1e9 * g.CellVolume(i, 0, 0)
		}
		p := &Problem{
			Grid:         g,
			Conductivity: fill(n, 100),
			Power:        power,
			XMin:         Boundary{Type: Dirichlet, Value: 0},
		}
		sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		v, err := sol.TemperatureAt(geom.Vec3{X: 0.9999e-3, Y: 5e-5, Z: 5e-5})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	coarse := solveWith(10)
	fine := solveWith(80)
	// Analytic peak: qv·L²/(2k) = 1e9·1e-6/200 = 5.
	if math.Abs(fine-5) > 0.05 {
		t.Errorf("fine solution %g, want ~5", fine)
	}
	if math.Abs(coarse-fine) > 0.5 {
		t.Errorf("refinement changed solution too much: %g vs %g", coarse, fine)
	}
}

// Property: random well-posed problems satisfy the discrete maximum
// principle (solution bounded by boundary values when sources are zero)
// and conserve energy.
func TestQuickWellPosedProblems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nx := 2 + rng.Intn(5)
		ny := 2 + rng.Intn(5)
		nz := 2 + rng.Intn(3)
		g := uniformGrid(t, nx, ny, nz, 1e-3, 1e-3, 5e-4)
		n := g.NumCells()
		cond := make([]float64, n)
		for i := range cond {
			cond[i] = 1 + rng.Float64()*200
		}
		power := make([]float64, n)
		var total float64
		for i := range power {
			if rng.Float64() < 0.3 {
				power[i] = rng.Float64()
				total += power[i]
			}
		}
		amb := 20 + rng.Float64()*20
		p := &Problem{
			Grid:         g,
			Conductivity: cond,
			Power:        power,
			ZMax:         Boundary{Type: Convection, H: 100 + rng.Float64()*1e4, Value: amb},
		}
		sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-11})
		if err != nil {
			return false
		}
		st := sol.GlobalStats()
		// With non-negative sources, everything is at least ambient.
		if st.Min < amb-1e-6 {
			return false
		}
		if total == 0 {
			// Degenerate draw (possible on the smallest grids): no cell
			// received power, the solution is uniformly ambient, and the
			// relative energy metric divides rounding noise by its 1e-12
			// denominator floor. Absolute conservation is the meaningful
			// check here.
			return math.Abs(sol.BoundaryHeatFlow()) < 1e-9
		}
		return sol.EnergyBalanceError() < 1e-5
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSteadySolve20x20x10(b *testing.B) {
	g := uniformGrid(b, 20, 20, 10, 2e-2, 2e-2, 2e-3)
	n := g.NumCells()
	power := fill(n, 0)
	power[g.Index(10, 10, 0)] = 5
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 100),
		Power:        power,
		ZMax:         Boundary{Type: Convection, H: 1e4, Value: 25},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSteady(p, SolveOptions{Tolerance: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
