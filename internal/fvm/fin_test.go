package fvm

import (
	"math"
	"testing"

	"vcselnoc/internal/geom"
)

// TestFinEquationAnalytic validates lateral convection against the classic
// cooling-fin solution: a rod held at T_base at x=0, losing heat from its
// lateral faces into ambient, follows
//
//	θ(x)/θ_base = cosh(m·(L−x)) / cosh(m·L),  m = sqrt(h·P / (k·A))
//
// with P the perimeter and A the cross-section. This exercises convection
// on side faces (y/z), which no other analytic test covers.
func TestFinEquationAnalytic(t *testing.T) {
	const (
		L     = 10e-3 // rod length, x
		w     = 1e-3  // square cross-section side
		k     = 50.0  // conductivity
		h     = 500.0 // film coefficient on all four lateral faces
		Tamb  = 25.0
		Tbase = 100.0
	)
	g := uniformGrid(t, 80, 2, 2, L, w, w)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, k),
		Power:        fill(n, 0),
		XMin:         Boundary{Type: Dirichlet, Value: Tbase},
		YMin:         Boundary{Type: Convection, H: h, Value: Tamb},
		YMax:         Boundary{Type: Convection, H: h, Value: Tamb},
		ZMin:         Boundary{Type: Convection, H: h, Value: Tamb},
		ZMax:         Boundary{Type: Convection, H: h, Value: Tamb},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	perimeter := 4 * w
	area := w * w
	m := math.Sqrt(h * perimeter / (k * area))
	for _, xFrac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		x := xFrac * L
		want := Tamb + (Tbase-Tamb)*math.Cosh(m*(L-x))/math.Cosh(m*L)
		got, err := sol.TemperatureAt(geom.Vec3{X: x, Y: w / 2, Z: w / 2})
		if err != nil {
			t.Fatal(err)
		}
		// The 1-D fin model ignores the transverse profile, so allow a few
		// per cent of the driving temperature difference.
		if math.Abs(got-want) > 0.05*(Tbase-Tamb) {
			t.Errorf("x=%.1f mm: T=%.2f, fin equation %.2f", x*1e3, got, want)
		}
	}
	// The tip must be the coldest point and still above ambient.
	tip, err := sol.TemperatureAt(geom.Vec3{X: 0.999 * L, Y: w / 2, Z: w / 2})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sol.TemperatureAt(geom.Vec3{X: 0.001 * L, Y: w / 2, Z: w / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !(Tamb < tip && tip < base && base <= Tbase) {
		t.Errorf("ordering violated: amb %.1f, tip %.2f, base %.2f", Tamb, tip, base)
	}
	if e := sol.EnergyBalanceError(); e > 1e-6 {
		t.Errorf("energy balance error %g", e)
	}
}

// TestLateralBoundaryCombination: mixing Dirichlet on one side face with
// adiabatic elsewhere must reproduce a pure lateral ramp regardless of z.
func TestLateralBoundaryCombination(t *testing.T) {
	g := uniformGrid(t, 2, 12, 3, 1e-3, 6e-3, 1e-3)
	n := g.NumCells()
	p := &Problem{
		Grid:         g,
		Conductivity: fill(n, 10),
		Power:        fill(n, 0),
		YMin:         Boundary{Type: Dirichlet, Value: 0},
		YMax:         Boundary{Type: Dirichlet, Value: 60},
	}
	sol, err := SolveSteady(p, SolveOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Linear in y, constant in x and z.
	for j := 0; j < g.NY(); j++ {
		y := g.CellCenter(0, j, 0).Y
		want := 60 * y / 6e-3
		for _, idx := range []int{g.Index(0, j, 0), g.Index(1, j, 2)} {
			if math.Abs(sol.T[idx]-want) > 1e-6 {
				t.Fatalf("cell %d at y=%g: T=%g, want %g", idx, y, sol.T[idx], want)
			}
		}
	}
}
