//go:build race

package fvm

// raceEnabled mirrors the -race build flag: the detector's allocation
// instrumentation makes object counts unrepresentative, so pinned
// allocation tests skip under it.
const raceEnabled = true
