package fvm

import (
	"math"
	"testing"
)

// benchProblem builds a modest 3D conduction problem with convection top
// and bottom — the same boundary structure the thermal layer produces.
func systemProblem(t testing.TB, nx, ny, nz int) *Problem {
	g := uniformGrid(t, nx, ny, nz, 1e-2, 1e-2, 1e-3)
	n := g.NumCells()
	power := make([]float64, n)
	// A few point sources at varying depths.
	power[g.Index(nx/2, ny/2, nz-1)] = 0.5
	power[g.Index(nx/4, ny/4, nz/2)] = 0.25
	power[g.Index(3*nx/4, ny/3, 0)] = 0.1
	return &Problem{
		Grid:         g,
		Conductivity: fill(n, 120),
		Power:        power,
		HeatCapacity: fill(n, 1.6e6),
		ZMin:         Boundary{Type: Convection, H: 15, Value: 25},
		ZMax:         Boundary{Type: Convection, H: 800, Value: 25},
	}
}

// TestBackendsAgreeOnFVMSystem is the acceptance check for the solver
// spine: every backend — including the geometry-aware mg-cg, which
// receives the mesh through the System's grid hint — must agree on a
// finite-volume temperature field to within 1e-6 relative of the
// reference backend.
func TestBackendsAgreeOnFVMSystem(t *testing.T) {
	p := systemProblem(t, 20, 18, 6)
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	fields := map[string][]float64{}
	backends := []string{"jacobi-cg", "ssor-cg", "mg-cg"}
	for _, backend := range backends {
		sol, err := sys.SolveSteady(p.Power, SolveOptions{Tolerance: 1e-10, Solver: backend})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !sol.Stats.Converged {
			t.Fatalf("%s did not converge", backend)
		}
		fields[backend] = sol.T
	}
	ref := fields["jacobi-cg"]
	var maxT float64
	for i := range ref {
		if a := math.Abs(ref[i]); a > maxT {
			maxT = a
		}
	}
	for _, backend := range backends[1:] {
		var maxD float64
		for i, v := range fields[backend] {
			if d := math.Abs(ref[i] - v); d > maxD {
				maxD = d
			}
		}
		if maxD/maxT > 1e-6 {
			t.Errorf("%s disagrees with jacobi-cg on temperature field: rel diff %.2e > 1e-6", backend, maxD/maxT)
		}
	}
}

// TestSolveSteadyBlockMatchesIndividual: the block-Krylov multi-RHS path
// must land on the per-vector solutions for every backend that can join a
// block solve. Run under -race this doubles as the data-race smoke of the
// concurrent per-column preconditioner application.
func TestSolveSteadyBlockMatchesIndividual(t *testing.T) {
	p := systemProblem(t, 16, 14, 6)
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	powers := make([][]float64, 4)
	for i := range powers {
		pw := make([]float64, n)
		pw[(i*131)%n] = 0.4 + 0.05*float64(i)
		pw[(i*577+23)%n] = 0.1
		powers[i] = pw
	}
	for _, backend := range []string{"jacobi-cg", "ssor-cg", "mg-cg"} {
		opts := SolveOptions{Tolerance: 1e-10, Solver: backend}
		want := make([]*Solution, len(powers))
		for i, pw := range powers {
			want[i], err = sys.SolveSteady(pw, opts)
			if err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
		}
		got, err := sys.SolveSteadyBlock(powers, opts)
		if err != nil {
			t.Fatalf("%s block: %v", backend, err)
		}
		var maxT float64
		for _, sol := range want {
			for _, v := range sol.T {
				if a := math.Abs(v); a > maxT {
					maxT = a
				}
			}
		}
		for i := range got {
			if !got[i].Stats.Converged {
				t.Fatalf("%s block column %d did not converge", backend, i)
			}
			for c := range got[i].T {
				if math.Abs(got[i].T[c]-want[i].T[c])/maxT > 1e-8 {
					t.Fatalf("%s solution %d cell %d: block %g vs individual %g",
						backend, i, c, got[i].T[c], want[i].T[c])
				}
			}
			if math.Abs(got[i].EnergyBalanceError()) > 1e-6 {
				t.Errorf("%s solution %d: energy balance error %g", backend, i, got[i].EnergyBalanceError())
			}
		}
	}
	// Error surface: bad lengths still rejected through the block path.
	if _, err := sys.SolveSteadyBlock(nil, SolveOptions{}); err == nil {
		t.Error("empty block should error")
	}
	if _, err := sys.SolveSteadyBlock([][]float64{make([]float64, 2)}, SolveOptions{}); err == nil {
		t.Error("bad block entry should error")
	}
}

// TestSystemMatchesSolveSteady: the cached-operator path must reproduce
// the one-shot SolveSteady result exactly.
func TestSystemMatchesSolveSteady(t *testing.T) {
	p := systemProblem(t, 16, 14, 5)
	direct, err := SolveSteady(p, SolveOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sys.SolveSteady(p.Power, SolveOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.T {
		if direct.T[i] != cached.T[i] {
			t.Fatalf("cell %d: direct %g vs cached %g", i, direct.T[i], cached.T[i])
		}
	}
	if math.Abs(direct.BoundaryHeatFlow()-cached.BoundaryHeatFlow()) > 1e-12 {
		t.Error("boundary heat flow differs between paths")
	}
}

// TestSolveSteadyBatchMatchesIndividual: a batch over several power
// vectors must equal per-vector solves, in order, for every worker count.
func TestSolveSteadyBatchMatchesIndividual(t *testing.T) {
	p := systemProblem(t, 14, 12, 5)
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	n := sys.N()
	powers := make([][]float64, 5)
	for i := range powers {
		pw := make([]float64, n)
		pw[(i*97)%n] = 0.3 + 0.1*float64(i)
		pw[(i*389+41)%n] = 0.05
		powers[i] = pw
	}
	want := make([]*Solution, len(powers))
	for i, pw := range powers {
		want[i], err = sys.SolveSteady(pw, SolveOptions{Tolerance: 1e-10})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{0, 1, 2, 4, 9} {
		got, err := sys.SolveSteadyBatch(powers, SolveOptions{Tolerance: 1e-10, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			for c := range got[i].T {
				if math.Abs(got[i].T[c]-want[i].T[c]) > 1e-9 {
					t.Fatalf("workers=%d solution %d cell %d: batch %g vs individual %g",
						workers, i, c, got[i].T[c], want[i].T[c])
				}
			}
			if math.Abs(got[i].EnergyBalanceError()) > 1e-6 {
				t.Errorf("workers=%d solution %d: energy balance error %g", workers, i, got[i].EnergyBalanceError())
			}
		}
	}
}

// TestSystemTransientMatchesProblemLevel: the System transient path must
// reproduce the package-level SolveTransient.
func TestSystemTransientMatchesProblemLevel(t *testing.T) {
	p := systemProblem(t, 10, 10, 4)
	opts := TransientOptions{TimeStep: 0.01, Steps: 5, InitialUniform: 25, Tolerance: 1e-10}
	direct, err := SolveTransient(p, opts)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := sys.SolveTransient(p.Power, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range direct.T {
		if math.Abs(direct.T[i]-cached.T[i]) > 1e-9 {
			t.Fatalf("cell %d: direct %g vs cached %g", i, direct.T[i], cached.T[i])
		}
	}
}

// TestSystemSolverSelection: transient and steady runs must accept both
// backends and agree across them.
func TestSystemSolverSelection(t *testing.T) {
	p := systemProblem(t, 10, 8, 4)
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	var prev []float64
	for _, backend := range []string{"jacobi-cg", "ssor-cg", "mg-cg"} {
		sol, err := sys.SolveTransient(p.Power, TransientOptions{
			TimeStep: 0.01, Steps: 3, InitialUniform: 25, Tolerance: 1e-11, Solver: backend,
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if prev != nil {
			for i := range sol.T {
				if math.Abs(sol.T[i]-prev[i]) > 1e-6 {
					t.Fatalf("transient backends disagree at cell %d: %g vs %g", i, sol.T[i], prev[i])
				}
			}
		}
		prev = sol.T
	}
	if _, err := sys.SolveSteady(p.Power, SolveOptions{Solver: "nope"}); err == nil {
		t.Error("unknown backend should error")
	}
}

func TestSystemErrors(t *testing.T) {
	p := systemProblem(t, 8, 8, 3)
	sys, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SolveSteady(make([]float64, 3), SolveOptions{}); err == nil {
		t.Error("wrong power length should error")
	}
	if _, err := sys.SolveSteadyBatch(nil, SolveOptions{}); err == nil {
		t.Error("empty batch should error")
	}
	if _, err := sys.SolveSteadyBatch([][]float64{make([]float64, 2)}, SolveOptions{}); err == nil {
		t.Error("bad batch entry should error")
	}
	if _, err := sys.SolveSteady(p.Power, SolveOptions{InitialGuess: make([]float64, 2)}); err == nil {
		t.Error("bad initial guess length should error")
	}
	if _, err := sys.SolveTransient(make([]float64, 2), TransientOptions{TimeStep: 1, Steps: 1}); err == nil {
		t.Error("wrong transient power length should error")
	}
	// All-adiabatic steady problems remain rejected through the System path.
	g := uniformGrid(t, 4, 4, 2, 1e-3, 1e-3, 1e-4)
	bad := &Problem{
		Grid:         g,
		Conductivity: fill(g.NumCells(), 100),
		Power:        fill(g.NumCells(), 0.01),
	}
	badSys, err := NewSystem(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := badSys.SolveSteady(bad.Power, SolveOptions{}); err == nil {
		t.Error("all-adiabatic steady solve should error")
	}
}
