package fvm

// Transient stepping as a first-class, resumable subsystem: a
// TransientStepper advances one implicit-Euler step at a time against a
// cached transient operator (A + diag(C/dt), built once per distinct dt,
// not per run), and can serialise its state into a TransientCheckpoint
// whose fingerprints guard restores against a different mesh, operator,
// power vector, time step or solver. Under mg-cg the stepper
// preconditions every step with a shifted V-cycle derived from the
// system's cached steady hierarchy — only the Galerkin diagonals are
// rebuilt for the C/dt bump — so transient steps keep the steady solves'
// mesh-independent iteration counts without any per-run (let alone
// per-step) hierarchy rebuild.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sync"

	"vcselnoc/internal/mg"
	"vcselnoc/internal/sparse"
)

// transientOp is the cached operator of one time step size: the capacity
// term C/dt, the diagonal-bumped matrix A + diag(C/dt) (structure shared
// with the steady matrix), and — built lazily, only under mg-cg — the
// shifted multigrid hierarchy derived from the system's steady one.
type transientOp struct {
	dt     float64
	cap    []float64 // C/dt per cell (W/K)
	matrix *sparse.CSR
	// use orders cache entries for eviction (guarded by transientMu).
	use int64

	hierOnce sync.Once
	hier     *mg.Hierarchy
	hierErr  error
}

// maxTransientOps bounds the per-dt operator cache: each entry retains a
// full value copy of the operator (plus, under mg-cg, a shifted
// hierarchy), and dt can arrive from the network (vcseld transient
// jobs), so an unbounded map is a memory-exhaustion vector. Eviction is
// safe — live steppers hold their operator directly; only future reuse
// of an evicted dt pays a rebuild.
const maxTransientOps = 8

// capacityVolumes validates the heat-capacity field once per System and
// returns the per-cell capacity C = ρc·V (J/K).
func (s *System) capacityVolumes() ([]float64, error) {
	if s.heatCap == nil {
		return nil, fmt.Errorf("fvm: transient solve requires HeatCapacity")
	}
	s.capOnce.Do(func() {
		g := s.grid
		cv := make([]float64, g.NumCells())
		for k := 0; k < g.NZ(); k++ {
			for j := 0; j < g.NY(); j++ {
				for i := 0; i < g.NX(); i++ {
					idx := g.Index(i, j, k)
					c := s.heatCap[idx]
					if c <= 0 {
						s.capErr = fmt.Errorf("fvm: cell %d has non-positive heat capacity %g", idx, c)
						return
					}
					cv[idx] = c * g.CellVolume(i, j, k)
				}
			}
		}
		s.capVol = cv
	})
	return s.capVol, s.capErr
}

// transientOperator returns (building and caching on first use) the
// transient operator for one time step size.
func (s *System) transientOperator(dt float64) (*transientOp, error) {
	if dt <= 0 || math.IsNaN(dt) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("fvm: time step %g must be > 0", dt)
	}
	capVol, err := s.capacityVolumes()
	if err != nil {
		return nil, err
	}
	s.transientMu.Lock()
	defer s.transientMu.Unlock()
	s.transientUse++
	if op, ok := s.transientOps[dt]; ok {
		op.use = s.transientUse
		return op, nil
	}
	cp := make([]float64, len(capVol))
	for i, cv := range capVol {
		cp[i] = cv / dt
	}
	op := &transientOp{dt: dt, cap: cp, matrix: sparse.AddDiagonal(s.matrix, cp), use: s.transientUse}
	if s.transientOps == nil {
		s.transientOps = make(map[float64]*transientOp)
	}
	for len(s.transientOps) >= maxTransientOps {
		var oldestDt float64
		oldest := int64(math.MaxInt64)
		for d, o := range s.transientOps {
			if o.use < oldest {
				oldest, oldestDt = o.use, d
			}
		}
		delete(s.transientOps, oldestDt)
	}
	s.transientOps[dt] = op
	return op, nil
}

// shiftedHierarchy lazily derives the transient multigrid hierarchy from
// the system's cached steady one: transfer operators and off-diagonal
// Galerkin stencils are shared, only the diagonals carry the C/dt bump.
func (op *transientOp) shiftedHierarchy(s *System) (*mg.Hierarchy, error) {
	op.hierOnce.Do(func() {
		steady, err := s.hierarchy()
		if err != nil {
			op.hierErr = err
			return
		}
		op.hier, op.hierErr = steady.Shifted(op.matrix, op.cap)
		if op.hierErr == nil {
			s.transientHierBuilds.Add(1)
		}
	})
	return op.hier, op.hierErr
}

// hashWrite folds raw bytes into an FNV-1a hash (never errors).
func hashFloats(h io.Writer, xs []float64) {
	var buf [8]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:]) //nolint:errcheck
	}
}

func hashInt(h io.Writer, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
	h.Write(buf[:]) //nolint:errcheck
}

// HashFloat64s fingerprints a float vector (FNV-1a over the IEEE-754
// bits) — the primitive checkpoint and job-result integrity checks use.
func HashFloat64s(xs []float64) uint64 {
	h := fnv.New64a()
	hashInt(h, len(xs))
	hashFloats(h, xs)
	return h.Sum64()
}

// Fingerprint identifies the discretised system for checkpoint
// compatibility checks: grid geometry, operator values, boundary RHS and
// heat capacity all contribute, so a checkpoint taken on one mesh or
// material field can never silently restore onto another. Computed once
// and cached; deterministic across processes for identical problems.
func (s *System) Fingerprint() uint64 {
	s.fpOnce.Do(func() {
		h := fnv.New64a()
		hashInt(h, s.grid.NX())
		hashInt(h, s.grid.NY())
		hashInt(h, s.grid.NZ())
		hashFloats(h, s.grid.X)
		hashFloats(h, s.grid.Y)
		hashFloats(h, s.grid.Z)
		for i := 0; i < s.matrix.N(); i++ {
			cols, vals := s.matrix.Row(i)
			for p := range cols {
				hashInt(h, int(cols[p]))
			}
			hashFloats(h, vals)
		}
		hashFloats(h, s.rhsBoundary)
		if s.heatCap != nil {
			hashFloats(h, s.heatCap)
		}
		s.fp = h.Sum64()
	})
	return s.fp
}

// TransientCheckpointVersion is the on-disk format version Decode accepts.
const TransientCheckpointVersion = 1

// TransientCheckpoint is the serialisable state of a transient run:
// enough to resume bit-identically, and enough fingerprints to refuse a
// resume against anything else. Encoding is JSON; Go's float64
// marshalling is shortest-round-trip, so the field restores bit-exactly.
type TransientCheckpoint struct {
	Version int `json:"version"`
	// System fingerprints the discretised operator (mesh, matrix,
	// boundaries, heat capacity) the run stepped; Power fingerprints the
	// per-cell power vector. Both are %016x-formatted 64-bit hashes.
	System string `json:"system_fingerprint"`
	Power  string `json:"power_fingerprint"`
	// Solver and Tolerance pin the backend and target that produced the
	// trajectory — resuming under a different one would diverge.
	Solver    string  `json:"solver"`
	Tolerance float64 `json:"tolerance"`
	// TimeStep is the implicit-Euler dt (s); Step the completed steps.
	TimeStep float64 `json:"time_step_s"`
	Step     int     `json:"step"`
	// T is the temperature field after Step steps (°C).
	T []float64 `json:"t_c"`
}

// Validate reports structural checkpoint errors (decode calls it; Restore
// additionally checks compatibility with the target stepper).
func (cp *TransientCheckpoint) Validate() error {
	if cp.Version != TransientCheckpointVersion {
		return fmt.Errorf("fvm: checkpoint version %d not supported (want %d)", cp.Version, TransientCheckpointVersion)
	}
	if cp.TimeStep <= 0 || math.IsNaN(cp.TimeStep) || math.IsInf(cp.TimeStep, 0) {
		return fmt.Errorf("fvm: checkpoint time step %g must be > 0", cp.TimeStep)
	}
	if cp.Step < 0 {
		return fmt.Errorf("fvm: negative checkpoint step %d", cp.Step)
	}
	if len(cp.T) == 0 {
		return fmt.Errorf("fvm: checkpoint has no temperature field")
	}
	for i, v := range cp.T {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fvm: checkpoint field has invalid value %g at cell %d", v, i)
		}
	}
	return nil
}

// Encode writes the checkpoint as JSON.
func (cp *TransientCheckpoint) Encode(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("fvm: encoding checkpoint: %w", err)
	}
	return nil
}

// DecodeTransientCheckpoint reads and validates a JSON checkpoint.
func DecodeTransientCheckpoint(r io.Reader) (*TransientCheckpoint, error) {
	cp := &TransientCheckpoint{}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(cp); err != nil {
		return nil, fmt.Errorf("fvm: corrupt checkpoint: %w", err)
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}

// TransientStepper advances an implicit-Euler transient run one step at a
// time against the system's cached per-dt operator. It owns a solver
// workspace and the in-place field buffer, so it is NOT safe for
// concurrent use; create one per run. Opts.Steps is ignored — the caller
// decides when to stop (SolveTransient is the run-to-completion wrapper).
type TransientStepper struct {
	sys    *System
	op     *transientOp
	solver sparse.Solver

	solverName string
	tol        float64

	power   []float64 // private copy: async runs must not see caller mutation
	powerFP uint64

	rhs  []float64
	t    []float64 // live field, warm start and output of each solve
	step int
	last sparse.Result
}

// NewTransientStepper validates the options, resolves (or builds) the
// cached transient operator for opts.TimeStep and prepares a stepper at
// step 0 with the initial field. opts.Steps and opts.Snapshot are not
// used by the stepper itself.
func (s *System) NewTransientStepper(power []float64, opts TransientOptions) (*TransientStepper, error) {
	n := s.matrix.N()
	if len(power) != n {
		return nil, fmt.Errorf("fvm: power vector has %d entries, want %d", len(power), n)
	}
	op, err := s.transientOperator(opts.TimeStep)
	if err != nil {
		return nil, err
	}
	tol := opts.Tolerance
	if tol <= 0 {
		tol = 1e-8
	}
	solver, err := sparse.Config{
		Backend:           opts.Solver,
		Tolerance:         tol,
		Workers:           opts.Workers,
		MGOrdering:        opts.MGOrdering,
		MGPrecision:       opts.MGPrecision,
		MGCoarseSolver:    opts.MGCoarseSolver,
		MGCoarseBudget:    opts.MGCoarseBudget,
		MGCoarseRebalance: opts.MGCoarseRebalance,
	}.New()
	if err != nil {
		return nil, err
	}
	if gs, ok := solver.(sparse.GridSolver); ok {
		gs.SetGridHint(s.hint)
	}
	if ms, ok := solver.(*mg.Solver); ok {
		h, err := op.shiftedHierarchy(s)
		if err != nil {
			return nil, err
		}
		ms.SetHierarchy(h)
	}
	t := make([]float64, n)
	if opts.Initial != nil {
		if len(opts.Initial) != n {
			return nil, fmt.Errorf("fvm: initial field has %d entries, want %d", len(opts.Initial), n)
		}
		copy(t, opts.Initial)
	} else {
		for i := range t {
			t[i] = opts.InitialUniform
		}
	}
	pw := make([]float64, n)
	copy(pw, power)
	return &TransientStepper{
		sys: s, op: op, solver: solver,
		solverName: solver.Name(), tol: tol,
		power: pw, powerFP: HashFloat64s(pw),
		rhs: make([]float64, n), t: t,
	}, nil
}

// Step advances the run by one implicit-Euler step and returns the
// solver statistics of the step.
func (st *TransientStepper) Step() (sparse.Result, error) {
	rhs, t, cap := st.rhs, st.t, st.op.cap
	for i := range rhs {
		rhs[i] = st.sys.rhsBoundary[i] + st.power[i] + cap[i]*t[i]
	}
	// t is both the warm start and the output of the in-place solve.
	stats, err := st.solver.Solve(st.op.matrix, rhs, t)
	if err != nil {
		return stats, fmt.Errorf("fvm: transient step %d failed: %w", st.step+1, err)
	}
	st.step++
	st.last = stats
	return stats, nil
}

// StepIndex returns the number of completed steps.
func (st *TransientStepper) StepIndex() int { return st.step }

// Time returns the simulated time (s).
func (st *TransientStepper) Time() float64 { return float64(st.step) * st.op.dt }

// TimeStep returns the implicit-Euler dt (s).
func (st *TransientStepper) TimeStep() float64 { return st.op.dt }

// SolverName returns the effective sparse backend of the run.
func (st *TransientStepper) SolverName() string { return st.solverName }

// LastStats returns the solver statistics of the most recent step.
func (st *TransientStepper) LastStats() sparse.Result { return st.last }

// Field returns a copy of the current temperature field.
func (st *TransientStepper) Field() []float64 {
	out := make([]float64, len(st.t))
	copy(out, st.t)
	return out
}

// FieldView returns the live field without copying. The slice is
// overwritten by the next Step; callers must neither retain nor modify
// it — it exists for cheap per-step observation (peak temperature,
// probe statistics).
func (st *TransientStepper) FieldView() []float64 { return st.t }

// Solution snapshots the run as a Solution (field copy plus the last
// step's solver statistics and the system's energy accounting).
func (st *TransientStepper) Solution() *Solution {
	var total float64
	for _, q := range st.power {
		total += q
	}
	return &Solution{
		Grid: st.sys.grid, T: st.Field(), Stats: st.last,
		boundaryG: st.sys.boundaryG, boundaryGT: st.sys.boundaryGT, totalPower: total,
	}
}

// Checkpoint serialises the run state: fingerprints of the system and
// power vector, solver identity, dt, completed steps and a copy of the
// field.
func (st *TransientStepper) Checkpoint() *TransientCheckpoint {
	return &TransientCheckpoint{
		Version:   TransientCheckpointVersion,
		System:    fmt.Sprintf("%016x", st.sys.Fingerprint()),
		Power:     fmt.Sprintf("%016x", st.powerFP),
		Solver:    st.solverName,
		Tolerance: st.tol,
		TimeStep:  st.op.dt,
		Step:      st.step,
		T:         st.Field(),
	}
}

// Restore rewinds (or fast-forwards) the stepper to a checkpoint's state
// after a hard compatibility check: the checkpoint must have been taken
// on an identical system (mesh, operator, boundaries, heat capacity),
// power vector, time step, solver backend and tolerance — anything else
// refuses, because the resumed trajectory would silently diverge from
// the original run. Stepping after a successful Restore is bit-identical
// to the uninterrupted run: every solve is fully re-initialised from the
// field and RHS, so no solver workspace state survives the handoff.
func (st *TransientStepper) Restore(cp *TransientCheckpoint) error {
	if err := cp.Validate(); err != nil {
		return err
	}
	if want := fmt.Sprintf("%016x", st.sys.Fingerprint()); cp.System != want {
		return fmt.Errorf("fvm: checkpoint system fingerprint %s does not match this system (%s): different mesh, materials or boundaries", cp.System, want)
	}
	if want := fmt.Sprintf("%016x", st.powerFP); cp.Power != want {
		return fmt.Errorf("fvm: checkpoint power fingerprint %s does not match this run's power vector (%s)", cp.Power, want)
	}
	if cp.Solver != st.solverName {
		return fmt.Errorf("fvm: checkpoint was stepped by %q, this run uses %q", cp.Solver, st.solverName)
	}
	if cp.Tolerance != st.tol {
		return fmt.Errorf("fvm: checkpoint tolerance %g does not match this run's %g", cp.Tolerance, st.tol)
	}
	if cp.TimeStep != st.op.dt {
		return fmt.Errorf("fvm: checkpoint time step %g does not match this run's %g", cp.TimeStep, st.op.dt)
	}
	if len(cp.T) != len(st.t) {
		return fmt.Errorf("fvm: checkpoint field has %d cells, want %d", len(cp.T), len(st.t))
	}
	copy(st.t, cp.T)
	st.step = cp.Step
	st.last = sparse.Result{}
	return nil
}
