package fleet

// Worker registry: the coordinator's view of the fleet, fed by periodic
// heartbeat scrapes of each worker's /healthz and /metrics endpoints.
// Failure is a first-class state — a worker moves alive → suspect →
// dead as consecutive scrapes miss, and back to alive the moment a
// scrape succeeds (rejoin). Dead workers stay registered and keep being
// scraped: eviction means "migrate its jobs and stop placing work on
// it", not "forget it", so a flapping worker re-enters the placement
// pool without re-registering.

import (
	"bufio"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"

	"vcselnoc/internal/obs"
	"vcselnoc/internal/serve"
)

// Worker lifecycle states.
const (
	StateAlive   = "alive"
	StateSuspect = "suspect"
	StateDead    = "dead"
)

// workerState is one fleet member's scraped and tracked state.
type workerState struct {
	url    string
	jobDir string

	state    string
	misses   int
	lastSeen time.Time

	// Scraped from /healthz and /metrics.
	specs     []serve.SpecInfo
	jobCounts map[string]int
	admitted  int64
	shed      int64
	warmBases int
	// p99s is the worst observed query p99 (seconds) across the worker's
	// specs, read from the latency histogram /healthz mirrors.
	p99s float64

	// inflight counts the coordinator's own outstanding requests to this
	// worker — the freshest load signal available, ahead of any scrape.
	inflight int
}

// score ranks a worker for placement; lower places first. The
// coordinator's own in-flight requests weigh heaviest (they are
// real-time, not a scrape old), then the worker's queued+running
// transient jobs, then recent admission shed pressure. Warm bases
// subtract: a warm worker answers without paying a basis build.
func (w *workerState) score() float64 {
	s := 10*float64(w.inflight) +
		5*float64(w.jobCounts[serve.JobQueued]+w.jobCounts[serve.JobRunning])
	if total := w.admitted + w.shed; total > 0 {
		s += 20 * float64(w.shed) / float64(total)
	}
	// Observed tail latency adds pressure — a worker answering slowly is
	// already saturated even if its queues look empty. Capped at 500 ms
	// (5 points) so one slow cold-start histogram cannot exile a worker.
	p := w.p99s
	if p > 0.5 {
		p = 0.5
	}
	s += 10 * p
	warm := w.warmBases
	if warm > 4 {
		warm = 4
	}
	return s - float64(warm)
}

// WorkerInfo is the wire form of one registry entry (GET /v1/fleet).
type WorkerInfo struct {
	URL    string `json:"url"`
	State  string `json:"state"`
	Misses int    `json:"misses,omitempty"`
	JobDir string `json:"job_dir,omitempty"`
	// LastSeenAgoS is seconds since the last successful scrape (absent
	// before the first one).
	LastSeenAgoS float64        `json:"last_seen_ago_s,omitempty"`
	Inflight     int            `json:"inflight"`
	Jobs         map[string]int `json:"jobs,omitempty"`
	WarmBases    int            `json:"warm_bases,omitempty"`
	Admitted     int64          `json:"admitted,omitempty"`
	Shed         int64          `json:"shed,omitempty"`
	// P99S is the worst scraped query p99 across the worker's specs, in
	// seconds (absent until latency histograms hold data).
	P99S  float64 `json:"p99_s,omitempty"`
	Score float64 `json:"score"`
}

// registry holds the worker set under one lock.
type registry struct {
	suspectAfter int
	evictAfter   int
	logger       *slog.Logger

	mu      sync.Mutex
	workers map[string]*workerState
}

func newRegistry(suspectAfter, evictAfter int) *registry {
	return &registry{
		suspectAfter: suspectAfter,
		evictAfter:   evictAfter,
		logger:       obs.Discard(),
		workers:      make(map[string]*workerState),
	}
}

// normalizeURL canonicalises a worker base URL the way NewShardClient
// does, so registry keys match the URLs the scatter path dials.
func normalizeURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("fleet: empty worker URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	return strings.TrimRight(raw, "/"), nil
}

// add registers (or updates) a worker. New workers start suspect — they
// enter the placement pool on their first successful scrape, so a typo'd
// registration never receives work.
func (r *registry) add(url, jobDir string) (string, error) {
	url, err := normalizeURL(url)
	if err != nil {
		return "", err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		w = &workerState{url: url, state: StateSuspect}
		r.workers[url] = w
	}
	if jobDir != "" {
		w.jobDir = jobDir
	}
	return url, nil
}

// urls snapshots the registered worker URLs (scrape targets — every
// state, dead included, so flapping workers can rejoin).
func (r *registry) urls() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.workers))
	for url := range r.workers {
		out = append(out, url)
	}
	return out
}

// seen records a successful scrape: the worker is alive (rejoining if it
// was suspect or dead) and its load signals refresh.
func (r *registry) seen(url string, specs []serve.SpecInfo, jobCounts map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return
	}
	prev := w.state
	w.state = StateAlive
	w.misses = 0
	w.lastSeen = time.Now()
	w.jobCounts = jobCounts
	w.admitted, w.shed, w.warmBases, w.p99s = 0, 0, 0, 0
	for i := range specs {
		info := &specs[i]
		w.admitted += info.Admitted
		w.shed += info.Shed
		w.warmBases += info.WarmBases
		// Extract the placement signal, then strip the histogram pointers:
		// stored SpecInfos feed struct-equality consensus comparisons, and
		// two workers' snapshot pointers would never compare equal.
		if info.QueryLatency != nil {
			if p := info.QueryLatency.Quantile(0.99); p > w.p99s {
				w.p99s = p
			}
		}
		info.QueryLatency, info.BatchSize = nil, nil
	}
	w.specs = specs
	if prev != StateAlive {
		r.logger.Info("worker alive", "url", url, "was", prev, "p99_s", w.p99s)
	}
}

// miss records a failed scrape and advances the failure state machine.
func (r *registry) miss(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[url]
	if !ok {
		return
	}
	w.misses++
	prev := w.state
	switch {
	case w.misses >= r.evictAfter:
		w.state = StateDead
	case w.misses >= r.suspectAfter:
		w.state = StateSuspect
	}
	if w.state != prev {
		r.logger.Warn("worker "+w.state, "url", url, "misses", w.misses, "was", prev)
	}
}

// stateOf reports a worker's lifecycle state ("" for unknown workers).
func (r *registry) stateOf(url string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok {
		return w.state
	}
	return ""
}

// jobDirOf reports a worker's registered job directory.
func (r *registry) jobDirOf(url string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok {
		return w.jobDir
	}
	return ""
}

// addInflight adjusts the coordinator-tracked in-flight count.
func (r *registry) addInflight(url string, delta int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if w, ok := r.workers[url]; ok {
		w.inflight += delta
	}
}

// placement returns the alive workers ordered by ascending load score —
// the order sweep chunks and transient jobs prefer them in.
func (r *registry) placement() []string {
	r.mu.Lock()
	type scored struct {
		url   string
		score float64
	}
	ranked := make([]scored, 0, len(r.workers))
	for url, w := range r.workers {
		if w.state != StateAlive {
			continue
		}
		ranked = append(ranked, scored{url, w.score()})
	}
	r.mu.Unlock()
	// Stable order for equal scores so tests (and operators) can predict
	// placement.
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0 && (ranked[j].score < ranked[j-1].score ||
			(ranked[j].score == ranked[j-1].score && ranked[j].url < ranked[j-1].url)); j-- {
			ranked[j], ranked[j-1] = ranked[j-1], ranked[j]
		}
	}
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.url
	}
	return out
}

// snapshot renders the registry for the fleet status endpoints.
func (r *registry) snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		info := WorkerInfo{
			URL: w.url, State: w.state, Misses: w.misses, JobDir: w.jobDir,
			Inflight: w.inflight, Jobs: w.jobCounts,
			WarmBases: w.warmBases, Admitted: w.admitted, Shed: w.shed,
			P99S: w.p99s, Score: w.score(),
		}
		if !w.lastSeen.IsZero() {
			info.LastSeenAgoS = time.Since(w.lastSeen).Seconds()
		}
		out = append(out, info)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].URL < out[j-1].URL; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// consensusSpec returns the named spec's info as agreed by every alive
// worker that has been scraped. Disagreement on the discretisation or
// solver is a hard error: placing chunks of one grid across mixed meshes
// would merge incompatible rows.
func (r *registry) consensusSpec(name string) (serve.SpecInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var found *serve.SpecInfo
	var foundOn string
	for _, w := range r.workers {
		if w.state != StateAlive {
			continue
		}
		for i := range w.specs {
			info := &w.specs[i]
			if info.Name != name {
				continue
			}
			if found == nil {
				found, foundOn = info, w.url
				break
			}
			if info.ONICell != found.ONICell || info.DieCell != found.DieCell ||
				info.MaxZCell != found.MaxZCell || info.Solver != found.Solver {
				return serve.SpecInfo{}, fmt.Errorf(
					"fleet: workers %s and %s disagree on spec %q (%g/%g/%g m %s vs %g/%g/%g m %s)",
					foundOn, w.url, name,
					found.ONICell, found.DieCell, found.MaxZCell, found.Solver,
					info.ONICell, info.DieCell, info.MaxZCell, info.Solver)
			}
			break
		}
	}
	if found == nil {
		return serve.SpecInfo{}, fmt.Errorf("fleet: no alive worker registers spec %q", name)
	}
	return *found, nil
}

// allSpecs returns the union of alive workers' spec registries (one
// entry per name), for GET /v1/specs — what a ShardClient pointed at the
// coordinator preflights against.
func (r *registry) allSpecs() []serve.SpecInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	var out []serve.SpecInfo
	for _, w := range r.workers {
		if w.state != StateAlive {
			continue
		}
		for _, info := range w.specs {
			if !seen[info.Name] {
				seen[info.Name] = true
				out = append(out, info)
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// parseJobsGauge extracts the vcseld_jobs{state=...} gauge from a
// Prometheus text-format /metrics body.
func parseJobsGauge(body string) map[string]int {
	counts := make(map[string]int)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		rest, ok := strings.CutPrefix(line, `vcseld_jobs{state="`)
		if !ok {
			continue
		}
		state, val, ok := strings.Cut(rest, `"} `)
		if !ok {
			continue
		}
		if n, err := strconv.Atoi(strings.TrimSpace(val)); err == nil {
			counts[state] = n
		}
	}
	return counts
}
