package fleet

// Transient-job tracking and checkpoint-driven migration. The
// coordinator owns the canonical record of every job it placed: which
// worker runs it, its last polled status, and its freshest checkpoint.
// One poll loop is the single writer of these records — it refreshes
// statuses, caches checkpoints off diskless workers, and migrates jobs
// whose owner the heartbeat state machine has declared dead.
//
// Migration preserves bit-identity: the job is resubmitted to a
// survivor under its original id with a Resume checkpoint, and the fvm
// system fingerprint inside the checkpoint refuses any survivor whose
// discretisation differs — so a migrated run's final field is exactly
// the field an uninterrupted run would have produced.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vcselnoc/internal/fvm"
	"vcselnoc/internal/serve"
)

// trackedJob is the coordinator's record of one placed transient job.
type trackedJob struct {
	id string
	// req is the original submission (Resume stripped; the coordinator
	// supplies its own checkpoint on migration).
	req serve.TransientRequest
	// worker is the current owner's URL; empty while the job waits for a
	// survivor to migrate onto.
	worker string
	// status is the last polled JobStatus from the owner.
	status serve.JobStatus
	// cp is the freshest checkpoint the coordinator holds — cached from
	// the owner's checkpoint-export endpoint when the owner runs without
	// a job directory, or read from its job file at migration time.
	cp         *fvm.TransientCheckpoint
	migrations int
	// traceID is the submission's request trace — it rides every
	// placement and migration POST so the whole lifetime of the job joins
	// one trace across coordinator and worker logs.
	traceID string
	// placing guards the window between tracker insertion and the initial
	// placement landing: the poll loop must not mistake the still-empty
	// worker field for a lost owner and "migrate" a job that was never
	// placed.
	placing bool
}

// JobRecord is the wire form of a tracked job (fleet job endpoints).
type JobRecord struct {
	serve.JobStatus
	// Worker is the current owner's URL ("" while awaiting migration).
	Worker string `json:"worker,omitempty"`
	// Migrations counts how many times the job moved workers.
	Migrations int `json:"migrations,omitempty"`
}

// jobTracker holds the records under one lock. Handlers read and insert;
// the poll loop is the only mutator of ownership.
type jobTracker struct {
	mu   sync.Mutex
	jobs map[string]*trackedJob
}

func newJobTracker() *jobTracker {
	return &jobTracker{jobs: make(map[string]*trackedJob)}
}

func (t *jobTracker) get(id string) (*trackedJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// insert registers a freshly placed job; false if the id is taken.
func (t *jobTracker) insert(j *trackedJob) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.jobs[j.id]; exists {
		return false
	}
	t.jobs[j.id] = j
	return true
}

// record snapshots one job under the lock.
func (t *jobTracker) record(j *trackedJob) JobRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return JobRecord{JobStatus: j.status, Worker: j.worker, Migrations: j.migrations}
}

// list snapshots every record, id-sorted.
func (t *jobTracker) list() []JobRecord {
	t.mu.Lock()
	out := make([]JobRecord, 0, len(t.jobs))
	for _, j := range t.jobs {
		out = append(out, JobRecord{JobStatus: j.status, Worker: j.worker, Migrations: j.migrations})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// active returns the non-terminal jobs — the poll loop's work list.
func (t *jobTracker) active() []*trackedJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*trackedJob
	for _, j := range t.jobs {
		if j.placing || j.status.State == serve.JobDone || j.status.State == serve.JobFailed {
			continue
		}
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// pollJobs is one tick of the job loop: refresh every active job's
// status from its owner, cache checkpoints off diskless owners, and
// migrate jobs owned by dead workers.
func (c *Coordinator) pollJobs() {
	for _, j := range c.jobs.active() {
		c.jobs.mu.Lock()
		owner := j.worker
		c.jobs.mu.Unlock()
		switch {
		case owner == "":
			// Waiting for a survivor since a failed migration attempt.
			c.migrate(j)
		case c.reg.stateOf(owner) == StateDead:
			c.migrate(j)
		default:
			c.refreshJob(j, owner)
		}
	}
}

// refreshJob polls one job's status off its (believed-alive) owner.
func (c *Coordinator) refreshJob(j *trackedJob, owner string) {
	var st serve.JobStatus
	code, err := c.getJSON(owner+"/v1/jobs/"+j.id, &st)
	switch {
	case err == nil && code == 200:
		c.jobs.mu.Lock()
		if st.TraceID == "" {
			st.TraceID = j.traceID
		}
		j.status = st
		c.jobs.mu.Unlock()
		if st.State == serve.JobRunning && c.reg.jobDirOf(owner) == "" {
			// Diskless owner: the cached checkpoint is the only migration
			// source if it dies, so keep it fresh.
			var cp fvm.TransientCheckpoint
			if code, err := c.getJSON(owner+"/v1/jobs/"+j.id+"/checkpoint", &cp); err == nil && code == 200 {
				c.jobs.mu.Lock()
				if j.cp == nil || cp.Step > j.cp.Step {
					j.cp = &cp
				}
				c.jobs.mu.Unlock()
			}
		}
	case err == nil && code == 404:
		// The owner is alive but no longer knows the job (restart without
		// a job dir, or TTL GC raced us). Re-place it from what we hold.
		c.migrate(j)
	default:
		// Transport failure: leave the record alone; the heartbeat state
		// machine decides whether this owner is dead.
	}
}

// bestCheckpoint picks the migration source for a job whose owner died:
// the dead worker's persisted job file when it registered a -job-dir
// (reachable because coordinator and workers share the filesystem or a
// mount), else the checkpoint cached from its export endpoint, else nil
// (restart from step 0 — correct, just slower). A job file that already
// records a terminal state short-circuits the migration entirely.
func (c *Coordinator) bestCheckpoint(j *trackedJob, deadWorker string) (*fvm.TransientCheckpoint, *serve.PersistedJob) {
	c.jobs.mu.Lock()
	cached := j.cp
	c.jobs.mu.Unlock()
	dir := c.reg.jobDirOf(deadWorker)
	if dir == "" {
		return cached, nil
	}
	data, err := os.ReadFile(filepath.Join(dir, j.id+".json"))
	if err != nil {
		return cached, nil
	}
	var pj serve.PersistedJob
	if json.Unmarshal(data, &pj) != nil || pj.ID != j.id {
		return cached, nil
	}
	if pj.State == serve.JobDone || pj.State == serve.JobFailed {
		return nil, &pj
	}
	if pj.Checkpoint != nil && (cached == nil || pj.Checkpoint.Step > cached.Step) {
		return pj.Checkpoint, nil
	}
	return cached, nil
}

// migrate moves a job off its dead (or lost) owner: recover the best
// checkpoint, pick the least-loaded alive survivor, and resubmit under
// the same id with the checkpoint as the Resume point. A survivor that
// already owns the id (a previous migration half-completed) is simply
// adopted. With no survivor the job stays pending and every later tick
// retries — a flapping fleet heals instead of failing the job.
func (c *Coordinator) migrate(j *trackedJob) {
	c.jobs.mu.Lock()
	oldOwner := j.worker
	j.worker = ""
	c.jobs.mu.Unlock()

	var cp *fvm.TransientCheckpoint
	var terminal *serve.PersistedJob
	if oldOwner != "" {
		cp, terminal = c.bestCheckpoint(j, oldOwner)
	} else {
		c.jobs.mu.Lock()
		cp = j.cp
		c.jobs.mu.Unlock()
	}
	if terminal != nil {
		// The job finished before its worker died; adopt the persisted
		// verdict instead of re-running anything.
		c.jobs.mu.Lock()
		j.status.State = terminal.State
		j.status.Error = terminal.Error
		j.status.Result = terminal.Result
		if terminal.State == serve.JobDone {
			j.status.Step = j.req.Steps
		}
		c.jobs.mu.Unlock()
		return
	}

	req := j.req
	req.ID = j.id
	req.Resume = cp
	resumeStep := 0
	if cp != nil {
		resumeStep = cp.Step
	}
	for _, target := range c.placementTargets(oldOwner) {
		var st serve.JobStatus
		code, err := c.postJSON(target+"/v1/transient", j.traceID, req, &st)
		switch {
		case err == nil && (code == 202 || code == 200):
			c.jobs.mu.Lock()
			j.worker = target
			if st.TraceID == "" {
				st.TraceID = j.traceID
			}
			j.status = st
			j.migrations++
			n := j.migrations
			if cp != nil {
				j.cp = cp
			}
			c.jobs.mu.Unlock()
			c.migrations.Add(1)
			c.logger.Info("job migrated", "job", j.id, "trace_id", j.traceID,
				"from", oldOwner, "to", target, "resume_step", resumeStep, "migrations", n)
			return
		case err == nil && code == 409:
			// The target already owns this id: a previous attempt landed
			// but we crashed before recording it. Adopt and refresh.
			c.jobs.mu.Lock()
			j.worker = target
			j.migrations++
			n := j.migrations
			c.jobs.mu.Unlock()
			c.migrations.Add(1)
			c.logger.Info("job migrated", "job", j.id, "trace_id", j.traceID,
				"from", oldOwner, "to", target, "resume_step", resumeStep, "migrations", n,
				"adopted", true)
			c.refreshJob(j, target)
			return
		}
		// 4xx/5xx/transport error: try the next survivor this tick.
	}
	// No survivor took it; stay pending and retry next tick.
	c.logger.Warn("job awaiting migration", "job", j.id, "trace_id", j.traceID, "from", oldOwner)
}

// placementTargets is the placement order minus one excluded worker.
func (c *Coordinator) placementTargets(exclude string) []string {
	ranked := c.reg.placement()
	out := ranked[:0]
	for _, url := range ranked {
		if url != exclude {
			out = append(out, url)
		}
	}
	return out
}

// placeJob places a fresh submission on the least-loaded alive worker,
// falling through the ranking on per-worker refusals (e.g. a full
// MaxJobs table answers 429).
func (c *Coordinator) placeJob(req serve.TransientRequest, traceID string) (*trackedJob, serve.JobStatus, error) {
	id := req.ID
	if id == "" {
		id = newFleetJobID()
	}
	req.ID = id
	cp := req.Resume
	req.Resume = nil
	j := &trackedJob{
		id: id, req: req, cp: cp, placing: true, traceID: traceID,
		status: serve.JobStatus{ID: id, State: serve.JobQueued, Steps: req.Steps, TimeStepS: req.TimeStepS, TraceID: traceID},
	}
	if !c.jobs.insert(j) {
		return nil, serve.JobStatus{}, &httpError{code: 409, msg: fmt.Sprintf("fleet: job id %q already tracked", id)}
	}
	req.Resume = cp
	targets := c.placementTargets("")
	if len(targets) == 0 {
		c.jobs.drop(id)
		return nil, serve.JobStatus{}, &httpError{code: 503, msg: "fleet: no alive workers"}
	}
	var lastErr error
	for _, target := range targets {
		var st serve.JobStatus
		code, err := c.postJSON(target+"/v1/transient", traceID, req, &st)
		if err == nil && code == 202 {
			c.jobs.mu.Lock()
			j.worker = target
			if st.TraceID == "" {
				st.TraceID = traceID
			}
			j.status = st
			j.placing = false
			c.jobs.mu.Unlock()
			c.logger.Info("job placed", "job", id, "trace_id", traceID,
				"worker", target, "steps", req.Steps)
			return j, st, nil
		}
		if err == nil && code >= 400 && code < 500 && code != 429 {
			// Deterministic rejection (bad request, unknown spec): every
			// worker would refuse it the same way — surface it.
			c.jobs.drop(id)
			return nil, serve.JobStatus{}, &httpError{code: code, msg: st.Error}
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = fmt.Errorf("fleet: worker %s refused the job with HTTP %d", target, code)
		}
	}
	c.jobs.drop(id)
	return nil, serve.JobStatus{}, &httpError{code: 503, msg: fmt.Sprintf("fleet: no worker accepted the job: %v", lastErr)}
}

// drop forgets a job record (failed placement rollback).
func (t *jobTracker) drop(id string) {
	t.mu.Lock()
	delete(t.jobs, id)
	t.mu.Unlock()
}

// jobLoop runs pollJobs on the configured cadence until shutdown.
func (c *Coordinator) jobLoop(every time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.pollJobs()
		}
	}
}
