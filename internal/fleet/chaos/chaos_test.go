package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testBackend is a real HTTP backend answering every request with a
// fixed 1 kB body.
func testBackend(t *testing.T) *httptest.Server {
	t.Helper()
	payload := strings.Repeat("x", 1024)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "real")
		io.WriteString(w, payload)
	}))
	t.Cleanup(hs.Close)
	return hs
}

// proxyFor wires a chaos proxy in front of the backend.
func proxyFor(t *testing.T, backend *httptest.Server, rules ...*Rule) (*Proxy, *httptest.Server) {
	t.Helper()
	p, hs := Serve(backend.URL, rules...)
	t.Cleanup(hs.Close)
	return p, hs
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

// TestCleanForwarding: with no rules the proxy is transparent.
func TestCleanForwarding(t *testing.T) {
	be := testBackend(t)
	p, hs := proxyFor(t, be)
	resp, body, err := get(t, hs.URL+"/v1/anything")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) != 1024 {
		t.Fatalf("forwarded response: HTTP %d, %d bytes", resp.StatusCode, len(body))
	}
	if resp.Header.Get("X-Backend") != "real" {
		t.Error("backend headers not forwarded")
	}
	if p.Requests() != 1 {
		t.Errorf("proxy counted %d requests, want 1", p.Requests())
	}
}

// TestDrop: a drop rule produces a transport-level failure, not an HTTP
// error — indistinguishable from a crashed worker.
func TestDrop(t *testing.T) {
	be := testBackend(t)
	_, hs := proxyFor(t, be, &Rule{Drop: true})
	if _, _, err := get(t, hs.URL+"/"); err == nil {
		t.Fatal("dropped request succeeded")
	}
}

// TestStatusWithRetryAfter: a status rule short-circuits with the code
// and shed schedule; Count bounds how many requests it harms.
func TestStatusWithRetryAfter(t *testing.T) {
	be := testBackend(t)
	rule := &Rule{Status: http.StatusTooManyRequests, RetryAfter: 50 * time.Millisecond, Count: 2}
	p, hs := proxyFor(t, be, rule)
	for i := 0; i < 2; i++ {
		resp, body, err := get(t, hs.URL+"/")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("request %d: HTTP %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") != "1" {
			t.Errorf("Retry-After = %q, want rounded-up seconds", resp.Header.Get("Retry-After"))
		}
		if !strings.Contains(string(body), "retry_after_ms") {
			t.Errorf("429 body %q lacks retry_after_ms", body)
		}
	}
	// The rule is consumed: the third request goes through.
	resp, _, err := get(t, hs.URL+"/")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after Count consumed: HTTP %d, want 200", resp.StatusCode)
	}
	if got := p.Applied(rule); got != 2 {
		t.Errorf("rule applied %d times, want 2", got)
	}
}

// TestTruncate: a truncation rule cuts the body below Content-Length so
// the client sees an incomplete read.
func TestTruncate(t *testing.T) {
	be := testBackend(t)
	_, hs := proxyFor(t, be, &Rule{Truncate: 100})
	resp, err := http.Get(hs.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil && len(body) == 1024 {
		t.Fatal("truncated response arrived complete")
	}
	if len(body) > 100 {
		t.Fatalf("read %d bytes through a 100-byte truncation", len(body))
	}
}

// TestPathAndMethodMatching: rules only harm the traffic they name —
// here sweeps die while health checks stay clean, the shape of a
// worker that is alive but failing its work.
func TestPathAndMethodMatching(t *testing.T) {
	be := testBackend(t)
	_, hs := proxyFor(t, be, &Rule{Method: http.MethodPost, PathPrefix: "/v1/sweep/", Drop: true})
	if resp, _, err := get(t, hs.URL+"/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("health check harmed: %v / %+v", err, resp)
	}
	if _, err := http.Post(hs.URL+"/v1/sweep/gradient", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("matched sweep POST not dropped")
	}
}

// TestDropAllAndHeal: the kill/restart switch a flap test flips.
func TestDropAllAndHeal(t *testing.T) {
	be := testBackend(t)
	p, hs := proxyFor(t, be)
	p.DropAll()
	if _, _, err := get(t, hs.URL+"/healthz"); err == nil {
		t.Fatal("dropped-all request succeeded")
	}
	p.Heal()
	if resp, _, err := get(t, hs.URL+"/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healed proxy still failing: %v", err)
	}
}

// TestDelay: a latency rule delays but does not harm.
func TestDelay(t *testing.T) {
	be := testBackend(t)
	_, hs := proxyFor(t, be, &Rule{Delay: 30 * time.Millisecond})
	start := time.Now()
	resp, _, err := get(t, hs.URL+"/")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("request returned in %v, want >= 30ms", elapsed)
	}
}
