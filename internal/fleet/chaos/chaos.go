// Package chaos is the fleet's fault-injection harness: an HTTP proxy
// that sits between a client (coordinator, shard client, test) and a
// real backend and injects failures per declarative rule — dropped
// connections, added latency, synthetic error statuses, truncated
// response bodies. Every failure path the coordinator claims to survive
// is exercised through this proxy deterministically in tests instead of
// being reasoned about: a rule matches by method/path prefix, applies at
// most Count times (0 = forever), and rule application is counted so
// tests can assert exactly which requests were harmed.
//
// The proxy is deliberately not an httputil.ReverseProxy: dropping a
// connection mid-response and truncating a body below its Content-Length
// are exactly the behaviours a well-behaved reverse proxy refuses to
// produce.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Rule is one fault-injection behaviour. The zero action (no Drop, no
// Status, no Truncate) still applies Delay — a pure latency rule.
type Rule struct {
	// Method matches the request method; empty matches any.
	Method string
	// PathPrefix matches the request path by prefix; empty matches any.
	PathPrefix string
	// Count bounds how many matching requests the rule harms; 0 harms
	// every match. A consumed rule stops matching, so "fail the first two
	// attempts, then recover" is Count: 2.
	Count int

	// Delay is added before the action (and before forwarding).
	Delay time.Duration
	// Drop aborts the exchange with no response: the client sees the
	// connection reset, indistinguishable from a crashed worker.
	Drop bool
	// Status short-circuits with this status code instead of forwarding.
	// The response body is the plain-text reason "chaos".
	Status int
	// RetryAfter decorates a Status response with a Retry-After header
	// (whole seconds, rounded up) and the serve JSON envelope's
	// retry_after_ms field — enough for clients that honour shed
	// schedules.
	RetryAfter time.Duration
	// Truncate forwards the request but cuts the response body after this
	// many bytes while keeping the original Content-Length, so the client
	// sees an unexpected EOF mid-body.
	Truncate int
}

// matches reports whether the rule covers the request (ignoring Count).
func (r *Rule) matches(req *http.Request) bool {
	if r.Method != "" && r.Method != req.Method {
		return false
	}
	return r.PathPrefix == "" || strings.HasPrefix(req.URL.Path, r.PathPrefix)
}

// Proxy forwards requests to Target, harming those matched by rules.
// Safe for concurrent use; rules can be swapped while serving.
type Proxy struct {
	// Target is the backend base URL ("http://host:port").
	Target string
	// Transport overrides http.DefaultTransport for forwarded requests.
	Transport http.RoundTripper

	mu      sync.Mutex
	rules   []*Rule
	applied map[*Rule]int
	total   int64
}

// NewProxy builds a proxy over the backend base URL with the given
// initial rules.
func NewProxy(target string, rules ...*Rule) *Proxy {
	p := &Proxy{Target: strings.TrimRight(target, "/")}
	p.SetRules(rules...)
	return p
}

// SetRules atomically replaces the rule set (clearing application
// counts). First match wins.
func (p *Proxy) SetRules(rules ...*Rule) {
	p.mu.Lock()
	p.rules = rules
	p.applied = make(map[*Rule]int, len(rules))
	p.mu.Unlock()
}

// DropAll is the "worker died" switch: every subsequent request is
// dropped until the next SetRules. Heartbeats, job polls and chunk
// fetches all start failing at once, exactly like a kill -9.
func (p *Proxy) DropAll() { p.SetRules(&Rule{Drop: true}) }

// Heal removes all rules: the worker is reachable again (the flapping
// half of a flap test).
func (p *Proxy) Heal() { p.SetRules() }

// Applied reports how many requests a rule has harmed.
func (p *Proxy) Applied(r *Rule) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied[r]
}

// Requests reports the total requests the proxy has seen (harmed or
// forwarded cleanly).
func (p *Proxy) Requests() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// pick returns the first live rule matching the request, consuming one
// application.
func (p *Proxy) pick(req *http.Request) *Rule {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total++
	for _, r := range p.rules {
		if !r.matches(req) {
			continue
		}
		if r.Count > 0 && p.applied[r] >= r.Count {
			continue
		}
		p.applied[r]++
		return r
	}
	return nil
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	rule := p.pick(req)
	if rule != nil {
		if rule.Delay > 0 {
			time.Sleep(rule.Delay)
		}
		switch {
		case rule.Drop:
			p.drop(w)
			return
		case rule.Status != 0:
			if rule.RetryAfter > 0 {
				secs := int64((rule.RetryAfter + time.Second - 1) / time.Second)
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(rule.Status)
				fmt.Fprintf(w, `{"error":"chaos","retry_after_ms":%g}`,
					float64(rule.RetryAfter)/float64(time.Millisecond))
				return
			}
			http.Error(w, "chaos", rule.Status)
			return
		}
	}
	p.forward(w, req, rule)
}

// drop kills the client connection without a response. Hijacking closes
// the TCP stream mid-request; when the ResponseWriter cannot hijack
// (HTTP/2, recorders), aborting the handler produces the same
// client-visible transport error.
func (p *Proxy) drop(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// forward relays the request to the target, applying a truncation rule
// to the response body if present.
func (p *Proxy) forward(w http.ResponseWriter, req *http.Request, rule *Rule) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, p.Target+req.URL.RequestURI(), req.Body)
	if err != nil {
		http.Error(w, "chaos: "+err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = req.Header.Clone()
	transport := p.Transport
	if transport == nil {
		transport = http.DefaultTransport
	}
	resp, err := transport.RoundTrip(out)
	if err != nil {
		http.Error(w, "chaos: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	body := io.Reader(resp.Body)
	if rule != nil && rule.Truncate > 0 {
		// Content-Length was already forwarded above, so stopping short
		// leaves the client with a visibly incomplete body.
		body = io.LimitReader(resp.Body, int64(rule.Truncate))
	}
	_, _ = io.Copy(w, body)
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if rule != nil && rule.Truncate > 0 {
		// Close the connection rather than let the server pad or reuse
		// it; the truncation must reach the client as a transport error.
		p.drop(w)
	}
}

// Serve starts the proxy on an httptest listener and returns it; tests
// point clients at the returned server's URL and the backend stays
// untouched.
func Serve(target string, rules ...*Rule) (*Proxy, *httptest.Server) {
	p := NewProxy(target, rules...)
	return p, httptest.NewServer(p)
}
