// Package fleet is the coordinator side of the vcseld control plane: a
// registry of workers kept fresh by heartbeat scrapes of their /healthz
// and /metrics endpoints, load-aware placement of sweep chunks and
// transient jobs over that registry, and failure treated as a
// first-class state — missed heartbeats move a worker alive → suspect →
// dead, sweep chunks reroute to survivors under backoff, and transient
// jobs migrate off dead workers from their last checkpoint and resume
// bit-identically.
//
// The coordinator serves the same sweep and transient-job API shape as
// a vcseld worker, so a ShardClient (or cmd/dse -coordinator) can point
// at it as if it were a single very reliable worker; behind the API it
// sub-scatters and places by observed load instead of round-robin.
package fleet

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/obs"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/thermal"
)

// Defaults for the heartbeat state machine. Two misses make a worker
// suspect (held out of new placements), four make it dead (its jobs
// migrate). At the default cadence that is ~4 s to suspicion and ~8 s
// to eviction — fast enough that a killed worker's jobs resume within
// seconds, slow enough that one dropped scrape doesn't trigger a
// migration storm.
const (
	DefaultHeartbeatEvery = 2 * time.Second
	DefaultSuspectAfter   = 2
	DefaultEvictAfter     = 4
	DefaultScrapeTimeout  = 5 * time.Second
)

// Config configures a Coordinator.
type Config struct {
	// Workers statically registers fleet members at startup (base URLs).
	// Workers may also self-register via POST /v1/fleet/register.
	Workers []string
	// WorkerJobDirs maps a static worker URL to its -job-dir, enabling
	// file-based checkpoint recovery when that worker dies. Self-registered
	// workers carry their job dir in the registration.
	WorkerJobDirs map[string]string
	// HeartbeatEvery is the scrape cadence; 0 selects
	// DefaultHeartbeatEvery.
	HeartbeatEvery time.Duration
	// SuspectAfter/EvictAfter are the consecutive missed-scrape thresholds
	// for suspicion (no new placements) and eviction (jobs migrate);
	// 0 selects the defaults.
	SuspectAfter int
	EvictAfter   int
	// JobPollEvery is the job status/migration loop cadence; 0 follows
	// HeartbeatEvery.
	JobPollEvery time.Duration
	// ScrapeTimeout bounds one heartbeat scrape; 0 selects
	// DefaultScrapeTimeout.
	ScrapeTimeout time.Duration
	// HTTPClient overrides the placement/proxy client (sweep chunks, job
	// submissions). Its transport is wrapped to track per-worker in-flight
	// counts. Nil selects a client with serve.DefaultShardTimeout.
	HTTPClient *http.Client
	// ChunkAttempts, RetryBase and RetryMax tune the sweep scatter's
	// reroute/backoff behaviour (see serve.ShardClient); 0 selects that
	// client's defaults.
	ChunkAttempts       int
	RetryBase, RetryMax time.Duration
	// Logger receives structured coordinator logs: worker state
	// transitions, job placements and migrations (trace-keyed), sweep
	// scatters. Nil discards them.
	Logger *slog.Logger
}

// Coordinator owns the fleet registry and job records and implements
// http.Handler.
type Coordinator struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	reg    *registry
	jobs   *jobTracker
	logger *slog.Logger

	// scrapeClient does heartbeats (short timeout); chunkClient carries
	// placed work (long timeout, in-flight counting transport).
	scrapeClient *http.Client
	chunkClient  *http.Client

	migrations atomic.Int64

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds and starts a Coordinator: the heartbeat and job loops run
// until Close.
func New(cfg Config) (*Coordinator, error) {
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = DefaultSuspectAfter
	}
	if cfg.EvictAfter <= 0 {
		cfg.EvictAfter = DefaultEvictAfter
	}
	if cfg.EvictAfter < cfg.SuspectAfter {
		return nil, fmt.Errorf("fleet: EvictAfter %d < SuspectAfter %d", cfg.EvictAfter, cfg.SuspectAfter)
	}
	if cfg.JobPollEvery <= 0 {
		cfg.JobPollEvery = cfg.HeartbeatEvery
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = DefaultScrapeTimeout
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		cfg:    cfg,
		mux:    http.NewServeMux(),
		start:  time.Now(),
		reg:    newRegistry(cfg.SuspectAfter, cfg.EvictAfter),
		jobs:   newJobTracker(),
		logger: cfg.Logger,
		ctx:    ctx, cancel: cancel,
	}
	c.reg.logger = cfg.Logger
	c.scrapeClient = &http.Client{Timeout: cfg.ScrapeTimeout}
	base := cfg.HTTPClient
	if base == nil {
		base = &http.Client{Timeout: serve.DefaultShardTimeout}
	}
	counting := *base
	counting.Transport = &countingTransport{reg: c.reg, base: base.Transport}
	c.chunkClient = &counting
	for _, url := range cfg.Workers {
		if _, err := c.reg.add(url, cfg.WorkerJobDirs[url]); err != nil {
			cancel()
			return nil, err
		}
	}
	c.routes()
	c.wg.Add(2)
	go c.heartbeatLoop()
	go c.jobLoop(cfg.JobPollEvery)
	// An immediate first scrape so statically configured workers enter
	// the placement pool without waiting a full heartbeat.
	c.scrapeAll()
	return c, nil
}

// Close stops the heartbeat and job loops. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(c.cancel)
	c.wg.Wait()
}

// countingTransport tracks the coordinator's in-flight requests per
// worker — the freshest load signal placement has. The count drops when
// response headers arrive: by then the worker has finished computing.
type countingTransport struct {
	reg  *registry
	base http.RoundTripper
}

func (t *countingTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := req.URL.Scheme + "://" + req.URL.Host
	t.reg.addInflight(key, 1)
	defer t.reg.addInflight(key, -1)
	base := t.base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// --- heartbeats --------------------------------------------------------

// heartbeatLoop scrapes the whole registry on the configured cadence.
func (c *Coordinator) heartbeatLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.scrapeAll()
		}
	}
}

// scrapeAll heartbeats every registered worker concurrently — dead ones
// included, so a flapping worker rejoins on its first good scrape.
func (c *Coordinator) scrapeAll() {
	urls := c.reg.urls()
	var wg sync.WaitGroup
	for _, url := range urls {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.scrape(url)
		}()
	}
	wg.Wait()
}

// scrape is one heartbeat: /healthz for the spec registry and warm-state
// statistics, /metrics for the job-state gauge. Both must answer for the
// worker to count as seen.
func (c *Coordinator) scrape(url string) {
	var h serve.Health
	code, err := c.getJSONWith(c.scrapeClient, url+"/healthz", &h)
	if err != nil || code != 200 || h.Status != "ok" {
		c.reg.miss(url)
		return
	}
	resp, err := c.scrapeClient.Get(url + "/metrics")
	if err != nil {
		c.reg.miss(url)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != 200 {
		c.reg.miss(url)
		return
	}
	c.reg.seen(url, h.Specs, parseJobsGauge(string(body)))
}

// --- HTTP plumbing -----------------------------------------------------

// httpError carries a status code through the fleet handlers.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits the same JSON error envelope vcseld uses, so fleet and
// worker errors look alike to clients.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	if he, ok := err.(*httpError); ok {
		code = he.code
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

// maxFleetBodyBytes mirrors the worker's transient-submit cap: resume
// checkpoints pass through the coordinator.
const maxFleetBodyBytes = 64 << 20

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxFleetBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return &httpError{code: 400, msg: fmt.Sprintf("fleet: bad request body: %v", err)}
	}
	return nil
}

// getJSON GETs through the chunk client and decodes 200/4xx JSON bodies
// into v (error envelopes decode their "error" field where v has one).
func (c *Coordinator) getJSON(url string, v any) (int, error) {
	return c.getJSONWith(c.chunkClient, url, v)
}

func (c *Coordinator) getJSONWith(client *http.Client, url string, v any) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxFleetBodyBytes)).Decode(v); err != nil && resp.StatusCode == 200 {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// postJSON POSTs req and decodes the response body into v. A non-empty
// traceID rides the request as X-Trace-ID so worker logs and envelopes
// join the coordinator-side trace.
func (c *Coordinator) postJSON(url, traceID string, req, v any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	httpReq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		httpReq.Header.Set(obs.TraceHeader, traceID)
		httpReq.Header.Set(obs.SpanHeader, obs.NewSpanID())
	}
	resp, err := c.chunkClient.Do(httpReq)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxFleetBodyBytes)).Decode(v); err != nil && resp.StatusCode == 200 {
		return resp.StatusCode, err
	}
	return resp.StatusCode, nil
}

// newFleetJobID mints a coordinator job id.
func newFleetJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("fleet: crypto/rand unavailable: %v", err))
	}
	return "fj-" + hex.EncodeToString(b[:])
}

// --- API ---------------------------------------------------------------

func (c *Coordinator) routes() {
	c.mux.HandleFunc("GET /healthz", c.handleHealth)
	c.mux.HandleFunc("GET /v1/fleet", c.handleFleet)
	c.mux.HandleFunc("POST /v1/fleet/register", c.handleRegister)
	c.mux.HandleFunc("GET /v1/specs", c.handleSpecs)
	c.mux.HandleFunc("POST /v1/sweep/gradient", c.handleGradientSweep)
	c.mux.HandleFunc("POST /v1/sweep/avgtemp", c.handleAvgTempSweep)
	c.mux.HandleFunc("POST /v1/transient", c.handleTransient)
	c.mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
}

// ServeHTTP implements http.Handler. Every request gets a trace id —
// minted here when the client sent none — echoed in the response header
// and propagated to the workers the request fans out to.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := obs.EnsureRequest(r)
	w.Header().Set(obs.TraceHeader, id)
	c.mux.ServeHTTP(w, r)
}

// FleetStatus is the GET /v1/fleet (and /healthz) body.
type FleetStatus struct {
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
	// Alive counts workers currently in the placement pool.
	Alive   int          `json:"alive"`
	Workers []WorkerInfo `json:"workers"`
	// Jobs are the tracked transient jobs; Migrations the total worker
	// moves performed.
	Jobs       []JobRecord `json:"jobs,omitempty"`
	Migrations int64       `json:"migrations"`
}

func (c *Coordinator) fleetStatus(includeJobs bool) FleetStatus {
	workers := c.reg.snapshot()
	alive := 0
	for _, w := range workers {
		if w.State == StateAlive {
			alive++
		}
	}
	fs := FleetStatus{
		Status: "ok", UptimeS: time.Since(c.start).Seconds(),
		Alive: alive, Workers: workers, Migrations: c.migrations.Load(),
	}
	if alive == 0 {
		fs.Status = "degraded"
	}
	if includeJobs {
		fs.Jobs = c.jobs.list()
	}
	return fs
}

func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.fleetStatus(false))
}

func (c *Coordinator) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, c.fleetStatus(true))
}

// RegisterRequest is a worker's self-registration (fleet.Announce).
type RegisterRequest struct {
	// URL is the worker's base URL as reachable from the coordinator.
	URL string `json:"url"`
	// JobDir is the worker's -job-dir as reachable from the coordinator's
	// filesystem (shared disk/mount); empty means diskless, and the
	// coordinator falls back to the checkpoint-export endpoint.
	JobDir string `json:"job_dir,omitempty"`
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	url, err := c.reg.add(req.URL, req.JobDir)
	if err != nil {
		writeErr(w, &httpError{code: 400, msg: err.Error()})
		return
	}
	// Scrape it now so it can enter the placement pool immediately.
	c.scrape(url)
	writeJSON(w, struct {
		URL   string `json:"url"`
		State string `json:"state"`
	}{url, c.reg.stateOf(url)})
}

// handleSpecs serves the fleet's spec registry from cached scrapes — the
// preflight surface a ShardClient pointed at the coordinator checks.
func (c *Coordinator) handleSpecs(w http.ResponseWriter, r *http.Request) {
	specs := c.reg.allSpecs()
	if len(specs) == 0 {
		writeErr(w, &httpError{code: 503, msg: "fleet: no alive workers scraped yet"})
		return
	}
	writeJSON(w, specs)
}

// shardClient builds the scatter client over the current placement
// order, pinned to the consensus discretisation so a worker that came
// back mid-sweep with a different mesh is refused per chunk.
func (c *Coordinator) shardClient(sc serve.Scenario, spec serve.SpecInfo, traceID string) (*serve.ShardClient, error) {
	workers := c.reg.placement()
	if len(workers) == 0 {
		return nil, &httpError{code: 503, msg: "fleet: no alive workers"}
	}
	res := thermal.Resolution{ONICell: spec.ONICell, DieCell: spec.DieCell, MaxZCell: spec.MaxZCell}
	return &serve.ShardClient{
		Workers:       workers,
		Scenario:      sc,
		HTTPClient:    c.chunkClient,
		ExpectRes:     &res,
		ExpectSolver:  spec.Solver,
		ChunkAttempts: c.cfg.ChunkAttempts,
		RetryBase:     c.cfg.RetryBase,
		RetryMax:      c.cfg.RetryMax,
		TraceID:       traceID,
	}, nil
}

// specNameOf mirrors the worker-side default spec resolution.
func specNameOf(sc serve.Scenario) string {
	if sc.Spec == "" {
		return serve.DefaultSpec
	}
	return sc.Spec
}

// window validates a row window request against the axis length.
func window(total, start, count int) (int, int, error) {
	if start < 0 || start >= total {
		return 0, 0, &httpError{code: 400, msg: fmt.Sprintf("fleet: row_start %d outside [0, %d)", start, total)}
	}
	if count < 0 {
		return 0, 0, &httpError{code: 400, msg: fmt.Sprintf("fleet: negative row_count %d", count)}
	}
	hi := total
	if count > 0 && start+count < total {
		hi = start + count
	}
	return start, hi, nil
}

// handleGradientSweep serves the worker-shaped gradient sweep API by
// sub-scattering the requested row window across the fleet.
func (c *Coordinator) handleGradientSweep(w http.ResponseWriter, r *http.Request) {
	var req serve.GradientSweepRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Lasers) == 0 || len(req.Heaters) == 0 {
		writeErr(w, &httpError{code: 400, msg: "fleet: empty sweep axes"})
		return
	}
	lo, hi, err := window(len(req.Lasers), req.RowStart, req.RowCount)
	if err != nil {
		writeErr(w, err)
		return
	}
	spec, err := c.reg.consensusSpec(specNameOf(req.Scenario))
	if err != nil {
		writeErr(w, &httpError{code: 503, msg: err.Error()})
		return
	}
	traceID := r.Header.Get(obs.TraceHeader)
	sc, err := c.shardClient(req.Scenario, spec, traceID)
	if err != nil {
		writeErr(w, err)
		return
	}
	start := time.Now()
	rows, err := sc.SweepGradient(req.Chip, req.Lasers[lo:hi], req.Heaters)
	if err != nil {
		writeErr(w, &httpError{code: 502, msg: err.Error()})
		return
	}
	c.logger.Info("sweep scattered", "kind", "gradient", "trace_id", traceID,
		"rows", hi-lo, "workers", len(sc.Workers), "duration_ms", time.Since(start).Seconds()*1e3)
	writeJSON(w, serve.GradientSweepResponse{
		RowStart: lo, TotalRows: len(req.Lasers), Rows: rows,
		ONICell: spec.ONICell, DieCell: spec.DieCell, MaxZCell: spec.MaxZCell,
		Solver: spec.Solver, TraceID: traceID,
	})
}

// handleAvgTempSweep is the chip × laser counterpart.
func (c *Coordinator) handleAvgTempSweep(w http.ResponseWriter, r *http.Request) {
	var req serve.AvgTempSweepRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	if len(req.Chips) == 0 || len(req.Lasers) == 0 {
		writeErr(w, &httpError{code: 400, msg: "fleet: empty sweep axes"})
		return
	}
	lo, hi, err := window(len(req.Chips), req.RowStart, req.RowCount)
	if err != nil {
		writeErr(w, err)
		return
	}
	spec, err := c.reg.consensusSpec(specNameOf(req.Scenario))
	if err != nil {
		writeErr(w, &httpError{code: 503, msg: err.Error()})
		return
	}
	traceID := r.Header.Get(obs.TraceHeader)
	sc, err := c.shardClient(req.Scenario, spec, traceID)
	if err != nil {
		writeErr(w, err)
		return
	}
	start := time.Now()
	rows, err := sc.SweepAvgTemp(req.Chips[lo:hi], req.Lasers)
	if err != nil {
		writeErr(w, &httpError{code: 502, msg: err.Error()})
		return
	}
	c.logger.Info("sweep scattered", "kind", "avgtemp", "trace_id", traceID,
		"rows", hi-lo, "workers", len(sc.Workers), "duration_ms", time.Since(start).Seconds()*1e3)
	writeJSON(w, serve.AvgTempSweepResponse{
		RowStart: lo, TotalRows: len(req.Chips), Rows: rows,
		ONICell: spec.ONICell, DieCell: spec.DieCell, MaxZCell: spec.MaxZCell,
		Solver: spec.Solver, TraceID: traceID,
	})
}

// handleTransient places a transient job on the least-loaded alive
// worker and tracks it for migration.
func (c *Coordinator) handleTransient(w http.ResponseWriter, r *http.Request) {
	var req serve.TransientRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	j, st, err := c.placeJob(req, r.Header.Get(obs.TraceHeader))
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(st)
}

// JobRecordList is the paginated GET /v1/jobs body.
type JobRecordList struct {
	Jobs   []JobRecord `json:"jobs"`
	Total  int         `json:"total"`
	Offset int         `json:"offset"`
	More   bool        `json:"more"`
}

func pageParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, &httpError{code: 400, msg: fmt.Sprintf("fleet: %s %q must be a non-negative integer", name, raw)}
	}
	return n, nil
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	offset, err := pageParam(r, "offset")
	if err != nil {
		writeErr(w, err)
		return
	}
	limit, err := pageParam(r, "limit")
	if err != nil {
		writeErr(w, err)
		return
	}
	all := c.jobs.list()
	lo := offset
	if lo > len(all) {
		lo = len(all)
	}
	hi := len(all)
	if limit > 0 && lo+limit < hi {
		hi = lo + limit
	}
	writeJSON(w, JobRecordList{Jobs: all[lo:hi], Total: len(all), Offset: offset, More: hi < len(all)})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, &httpError{code: 404, msg: fmt.Sprintf("fleet: unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, c.jobs.record(j))
}

// --- worker-side helper ------------------------------------------------

// Announce registers a worker with a coordinator, retrying until it
// lands or ctx ends — vcseld calls this in the background when started
// with -coordinator, so worker and coordinator may come up in any
// order. Registration is idempotent; liveness afterwards is the
// coordinator's heartbeats, not re-announcement.
func Announce(ctx context.Context, coordinator, selfURL, jobDir string) error {
	coordinator, err := normalizeURL(coordinator)
	if err != nil {
		return err
	}
	body, err := json.Marshal(RegisterRequest{URL: selfURL, JobDir: jobDir})
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: DefaultScrapeTimeout}
	delay := 500 * time.Millisecond
	for {
		resp, err := client.Post(coordinator+"/v1/fleet/register", "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == 200 {
				return nil
			}
			if code >= 400 && code < 500 {
				return fmt.Errorf("fleet: coordinator %s refused registration with HTTP %d", coordinator, code)
			}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		if delay < 10*time.Second {
			delay *= 2
		}
	}
}
