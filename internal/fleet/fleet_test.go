package fleet

// Fleet failover tests. Every failure path the coordinator claims to
// survive is exercised here deterministically: heartbeat loss and
// flapping rejoin through the chaos proxy, a worker dying mid-sweep
// (chunks reroute to survivors, grid stays bit-identical to the
// in-process explorer), and a worker dying mid-transient-job (the job
// migrates from its last checkpoint — via the dead worker's job dir or
// the coordinator's cached export — and the resumed result is
// bit-identical to an uninterrupted run).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/fleet/chaos"
	"vcselnoc/internal/serve"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/thermal"
)

// --- helpers -----------------------------------------------------------

func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full model builds skipped in -short")
	}
}

func previewSpec(t *testing.T) thermal.Spec {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	return spec
}

// newWorker spins one vcseld-equivalent with transient-job persistence
// in dir ("" keeps jobs in memory) and a tight checkpoint cadence, on an
// httptest listener. warm pre-builds the model and basis — needed by
// tests that place work, skipped by tests that only heartbeat.
func newWorker(t *testing.T, dir string, warm bool) (*serve.Server, *httptest.Server) {
	t.Helper()
	s, err := serve.New(serve.Config{
		Specs:              map[string]thermal.Spec{serve.DefaultSpec: previewSpec(t)},
		BatchWindow:        -1,
		JobDir:             dir,
		JobCheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		if err := s.Warm(serve.DefaultSpec); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// newCoordinator builds a coordinator with test-speed cadences.
func newCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.SuspectAfter == 0 {
		cfg.SuspectAfter = 2
	}
	if cfg.EvictAfter == 0 {
		cfg.EvictAfter = 3
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 3 * time.Minute}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// ctlDo drives one request through the coordinator without a network.
func ctlDo(t *testing.T, c *Coordinator, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	c.ServeHTTP(w, req)
	return w
}

func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(w.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v (body %q)", err, w.Body.String())
	}
	return v
}

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// workerStateVia reads one worker's state off the fleet status endpoint.
func workerStateVia(t *testing.T, c *Coordinator, url string) string {
	t.Helper()
	for _, w := range decodeBody[FleetStatus](t, ctlDo(t, c, "GET", "/healthz", "")).Workers {
		if w.URL == url {
			return w.State
		}
	}
	return ""
}

// fleetJob reads one tracked job's record off the coordinator.
func fleetJob(t *testing.T, c *Coordinator, id string) JobRecord {
	t.Helper()
	w := ctlDo(t, c, "GET", "/v1/jobs/"+id, "")
	if w.Code != http.StatusOK {
		t.Fatalf("fleet job read: HTTP %d (%s)", w.Code, w.Body.String())
	}
	return decodeBody[JobRecord](t, w)
}

// workerJob reads a job's status straight off a worker's handler.
func workerJob(t *testing.T, s *serve.Server, id string) serve.JobStatus {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("worker job read: HTTP %d (%s)", w.Code, w.Body.String())
	}
	return decodeBody[serve.JobStatus](t, w)
}

// pollFleetJob polls the coordinator until the job reaches a terminal
// state, failing the test if that state is failed.
func pollFleetJob(t *testing.T, c *Coordinator, id string) JobRecord {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		rec := fleetJob(t, c, id)
		if rec.State == serve.JobFailed {
			t.Fatalf("fleet job failed: %s", rec.Error)
		}
		if rec.State == serve.JobDone {
			return rec
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("fleet job did not finish in time")
	return JobRecord{}
}

const transientBody = `{"chip": 25, "pvcsel": 4e-3, "pheater": 1.2e-3, "time_step_s": 0.02, "steps": %d}`

// --- registry unit tests ----------------------------------------------

func TestRegistryStateMachine(t *testing.T) {
	r := newRegistry(2, 4)
	url, err := r.add("localhost:1234/", "")
	if err != nil {
		t.Fatal(err)
	}
	if url != "http://localhost:1234" {
		t.Fatalf("normalized URL = %q", url)
	}
	if got := r.stateOf(url); got != StateSuspect {
		t.Fatalf("new worker state = %q, want suspect until first scrape", got)
	}
	if len(r.placement()) != 0 {
		t.Fatal("unscraped worker entered placement")
	}

	r.seen(url, nil, nil)
	if got := r.stateOf(url); got != StateAlive {
		t.Fatalf("state after scrape = %q", got)
	}
	if got := r.placement(); len(got) != 1 || got[0] != url {
		t.Fatalf("placement = %v", got)
	}

	r.miss(url)
	if got := r.stateOf(url); got != StateAlive {
		t.Fatalf("state after 1 miss = %q, want alive (suspectAfter=2)", got)
	}
	r.miss(url)
	if got := r.stateOf(url); got != StateSuspect {
		t.Fatalf("state after 2 misses = %q, want suspect", got)
	}
	if len(r.placement()) != 0 {
		t.Fatal("suspect worker stayed in placement")
	}
	r.miss(url)
	r.miss(url)
	if got := r.stateOf(url); got != StateDead {
		t.Fatalf("state after 4 misses = %q, want dead", got)
	}
	if got := r.urls(); len(got) != 1 {
		t.Fatalf("dead worker dropped from scrape targets: %v", got)
	}

	// Rejoin: one good scrape fully revives the worker.
	r.seen(url, nil, nil)
	if got := r.stateOf(url); got != StateAlive {
		t.Fatalf("state after rejoin = %q", got)
	}
	r.miss(url)
	if got := r.stateOf(url); got != StateAlive {
		t.Fatal("rejoin did not reset the miss counter")
	}
}

func TestPlacementOrdersByLoad(t *testing.T) {
	r := newRegistry(2, 4)
	a, _ := r.add("http://a:1", "")
	b, _ := r.add("http://b:1", "")
	r.seen(a, nil, nil)
	r.seen(b, nil, nil)

	// Equal scores tie-break by URL.
	if got := r.placement(); !reflect.DeepEqual(got, []string{a, b}) {
		t.Fatalf("placement = %v", got)
	}
	// One in-flight request (weight 10) beats two queued jobs (weight 5
	// each) only at equal count; three jobs outweigh one request.
	r.addInflight(a, 1)
	if got := r.placement(); !reflect.DeepEqual(got, []string{b, a}) {
		t.Fatalf("placement with a in-flight = %v", got)
	}
	r.seen(b, nil, map[string]int{serve.JobQueued: 1, serve.JobRunning: 2})
	if got := r.placement(); !reflect.DeepEqual(got, []string{a, b}) {
		t.Fatalf("placement with b loaded = %v", got)
	}
	// Warm bases subtract from the score.
	r.seen(b, []serve.SpecInfo{{Name: "x", WarmBases: 8}}, nil)
	r.addInflight(b, 1)
	if got := r.placement(); !reflect.DeepEqual(got, []string{b, a}) {
		t.Fatalf("placement with b warm = %v", got)
	}
}

func TestConsensusSpec(t *testing.T) {
	r := newRegistry(2, 4)
	a, _ := r.add("http://a:1", "")
	b, _ := r.add("http://b:1", "")
	info := serve.SpecInfo{Name: "paper", ONICell: 1e-5, DieCell: 2e-4, MaxZCell: 5e-5, Solver: "mg-cg"}
	r.seen(a, []serve.SpecInfo{info}, nil)
	r.seen(b, []serve.SpecInfo{info}, nil)
	got, err := r.consensusSpec("paper")
	if err != nil {
		t.Fatal(err)
	}
	if got != info {
		t.Fatalf("consensus = %+v", got)
	}
	if _, err := r.consensusSpec("nope"); err == nil {
		t.Fatal("unknown spec produced a consensus")
	}
	diverged := info
	diverged.ONICell = 2e-5
	r.seen(b, []serve.SpecInfo{diverged}, nil)
	if _, err := r.consensusSpec("paper"); err == nil {
		t.Fatal("diverged discretisations produced a consensus")
	}
	// A dead worker's divergence no longer vetoes the fleet.
	for i := 0; i < 4; i++ {
		r.miss(b)
	}
	if _, err := r.consensusSpec("paper"); err != nil {
		t.Fatalf("dead worker still vetoes consensus: %v", err)
	}
}

func TestParseJobsGauge(t *testing.T) {
	body := `# HELP vcseld_jobs Transient jobs by state.
# TYPE vcseld_jobs gauge
vcseld_jobs{state="queued"} 1
vcseld_jobs{state="running"} 2
vcseld_jobs{state="done"} 7
vcseld_up 1
`
	got := parseJobsGauge(body)
	want := map[string]int{"queued": 1, "running": 2, "done": 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseJobsGauge = %v, want %v", got, want)
	}
}

// --- coordinator API edges --------------------------------------------

func TestCoordinatorEmptyFleet(t *testing.T) {
	c := newCoordinator(t, Config{})
	if st := decodeBody[FleetStatus](t, ctlDo(t, c, "GET", "/healthz", "")); st.Status != "degraded" {
		t.Fatalf("empty fleet status = %q, want degraded", st.Status)
	}
	if w := ctlDo(t, c, "GET", "/v1/specs", ""); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("specs with no workers: HTTP %d", w.Code)
	}
	if w := ctlDo(t, c, "POST", "/v1/transient", fmt.Sprintf(transientBody, 4)); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("placement with no workers: HTTP %d (%s)", w.Code, w.Body.String())
	}
	if w := ctlDo(t, c, "POST", "/v1/fleet/register", `{"url": ""}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty registration: HTTP %d", w.Code)
	}
	if w := ctlDo(t, c, "GET", "/v1/jobs?offset=-1", ""); w.Code != http.StatusBadRequest {
		t.Fatalf("negative offset: HTTP %d", w.Code)
	}
}

// TestFleetHeartbeatFlapRejoin drives the full lifecycle through the
// chaos proxy: alive → (partition) suspect → dead → (heal) alive, with
// the worker's process running untouched the whole time.
func TestFleetHeartbeatFlapRejoin(t *testing.T) {
	_, ts := newWorker(t, "", false)
	proxy, ps := chaos.Serve(ts.URL)
	t.Cleanup(ps.Close)

	c := newCoordinator(t, Config{Workers: []string{ps.URL}})
	waitFor(t, "worker alive", time.Minute, func() bool {
		return workerStateVia(t, c, ps.URL) == StateAlive
	})

	proxy.DropAll()
	waitFor(t, "worker suspect", time.Minute, func() bool {
		st := workerStateVia(t, c, ps.URL)
		return st == StateSuspect || st == StateDead
	})
	waitFor(t, "worker dead", time.Minute, func() bool {
		return workerStateVia(t, c, ps.URL) == StateDead
	})
	if st := decodeBody[FleetStatus](t, ctlDo(t, c, "GET", "/healthz", "")); st.Status != "degraded" || st.Alive != 0 {
		t.Fatalf("fleet with its only worker dead: status %q, alive %d", st.Status, st.Alive)
	}

	proxy.Heal()
	waitFor(t, "worker rejoined", time.Minute, func() bool {
		return workerStateVia(t, c, ps.URL) == StateAlive
	})
	if st := decodeBody[FleetStatus](t, ctlDo(t, c, "GET", "/healthz", "")); st.Status != "ok" || st.Alive != 1 {
		t.Fatalf("healed fleet: status %q, alive %d", st.Status, st.Alive)
	}
}

// TestFleetSweepSurvivesMidChunkDeath is the sweep acceptance test: a
// gradient grid requested from the coordinator must come back
// bit-identical to the in-process explorer even when one worker drops a
// chunk's connection mid-sweep (the chunk reroutes to the survivor).
func TestFleetSweepSurvivesMidChunkDeath(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	m, err := core.NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explorer(activity.Uniform{})
	if err != nil {
		t.Fatal(err)
	}

	_, ts1 := newWorker(t, "", true)
	_, ts2 := newWorker(t, "", true)
	rule := &chaos.Rule{Method: http.MethodPost, PathPrefix: "/v1/sweep/", Drop: true, Count: 1}
	proxy, ps := chaos.Serve(ts2.URL, rule)
	t.Cleanup(ps.Close)

	c := newCoordinator(t, Config{Workers: []string{ts1.URL, ps.URL}})
	waitFor(t, "both workers alive", time.Minute, func() bool {
		return workerStateVia(t, c, ts1.URL) == StateAlive && workerStateVia(t, c, ps.URL) == StateAlive
	})

	chip := 25.0
	lasers := []float64{1e-3, 2e-3, 3e-3, 4e-3}
	heaters := []float64{0, 1e-3, 2e-3}
	want, err := ex.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}

	body := fmt.Sprintf(`{"chip": %g, "pvcsel": 1e-3, "lasers": [1e-3, 2e-3, 3e-3, 4e-3], "heaters": [0, 1e-3, 2e-3]}`, chip)
	w := ctlDo(t, c, "POST", "/v1/sweep/gradient", body)
	if w.Code != http.StatusOK {
		t.Fatalf("fleet sweep: HTTP %d (%s)", w.Code, w.Body.String())
	}
	resp := decodeBody[serve.GradientSweepResponse](t, w)
	if resp.TotalRows != len(lasers) || len(resp.Rows) != len(lasers) {
		t.Fatalf("fleet sweep shape: total %d, rows %d", resp.TotalRows, len(resp.Rows))
	}
	if !reflect.DeepEqual(resp.Rows, want) {
		t.Fatal("fleet sweep grid differs from the in-process explorer")
	}
	if got := proxy.Applied(rule); got != 1 {
		t.Fatalf("chaos rule applied %d times, want 1 (the mid-sweep death must have happened)", got)
	}
}

// runReference runs the uninterrupted reference job directly on one
// worker and returns its terminal status.
func runReference(t *testing.T, s *serve.Server, steps int) serve.JobStatus {
	t.Helper()
	body := fmt.Sprintf(`{"chip": 25, "pvcsel": 4e-3, "pheater": 1.2e-3, "time_step_s": 0.02, "steps": %d, "id": "ref-uninterrupted"}`, steps)
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/transient", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	s.ServeHTTP(w, req)
	if w.Code != http.StatusAccepted {
		t.Fatalf("reference submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	id := decodeBody[serve.JobStatus](t, w).ID
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := workerJob(t, s, id)
		if st.State == serve.JobFailed {
			t.Fatalf("reference job failed: %s", st.Error)
		}
		if st.State == serve.JobDone {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("reference job did not finish")
	return serve.JobStatus{}
}

// killOwnerMidJob submits a transient job through the coordinator,
// waits for its owner to pass minStep, kills the owner, and returns the
// job id plus the surviving worker. Shared by both migration tests.
func killOwnerMidJob(t *testing.T, c *Coordinator, steps, minStep int,
	workers map[string]*serve.Server, servers map[string]*httptest.Server) (string, *serve.Server) {
	t.Helper()
	w := ctlDo(t, c, "POST", "/v1/transient", fmt.Sprintf(transientBody, steps))
	if w.Code != http.StatusAccepted {
		t.Fatalf("fleet submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	id := decodeBody[serve.JobStatus](t, w).ID
	rec := fleetJob(t, c, id)
	if rec.Worker == "" {
		t.Fatal("placed job has no owner")
	}
	owner := workers[rec.Worker]
	if owner == nil {
		t.Fatalf("unknown owner %q", rec.Worker)
	}
	// Tight-poll the owner directly (no coordinator latency) so the kill
	// lands mid-job, well before the final step.
	waitFor(t, "job past checkpointed step", time.Minute, func() bool {
		st := workerJob(t, owner, id)
		if st.State == serve.JobDone || st.State == serve.JobFailed {
			t.Fatalf("job reached %s before the kill — raise steps", st.State)
		}
		return st.Step >= minStep
	})
	servers[rec.Worker].Close()
	owner.Close()

	var survivor *serve.Server
	for url, s := range workers {
		if url != rec.Worker {
			survivor = s
		}
	}
	return id, survivor
}

// TestFleetJobMigratesFromJobDir kills a worker mid-transient-job and
// requires the coordinator to resume it on the survivor from the job
// file persisted in the dead worker's -job-dir, with the final result
// bit-identical (DeepEqual and field fingerprint) to an uninterrupted
// run.
func TestFleetJobMigratesFromJobDir(t *testing.T) {
	skipShort(t)
	dir1, dir2 := t.TempDir(), t.TempDir()
	s1, ts1 := newWorker(t, dir1, true)
	s2, ts2 := newWorker(t, dir2, true)
	workers := map[string]*serve.Server{ts1.URL: s1, ts2.URL: s2}
	servers := map[string]*httptest.Server{ts1.URL: ts1, ts2.URL: ts2}

	c := newCoordinator(t, Config{
		Workers:       []string{ts1.URL, ts2.URL},
		WorkerJobDirs: map[string]string{ts1.URL: dir1, ts2.URL: dir2},
		JobPollEvery:  20 * time.Millisecond,
	})
	waitFor(t, "both workers alive", time.Minute, func() bool {
		return workerStateVia(t, c, ts1.URL) == StateAlive && workerStateVia(t, c, ts2.URL) == StateAlive
	})

	const steps = 40
	id, survivor := killOwnerMidJob(t, c, steps, 6, workers, servers)
	rec := pollFleetJob(t, c, id)

	if rec.Migrations != 1 {
		t.Fatalf("job migrated %d times, want 1", rec.Migrations)
	}
	if !rec.Resumed {
		t.Fatal("migrated job did not resume from a checkpoint")
	}
	if rec.Step != steps {
		t.Fatalf("migrated job finished at step %d, want %d", rec.Step, steps)
	}
	if rec.Result == nil || rec.Result.FieldFingerprint == "" {
		t.Fatal("migrated job carries no result fingerprint")
	}

	ref := runReference(t, survivor, steps)
	if rec.Result.FieldFingerprint != ref.Result.FieldFingerprint {
		t.Fatalf("migrated fingerprint %s != uninterrupted %s",
			rec.Result.FieldFingerprint, ref.Result.FieldFingerprint)
	}
	if !reflect.DeepEqual(rec.Result, ref.Result) {
		t.Fatal("migrated result differs from the uninterrupted run")
	}

	if st := decodeBody[FleetStatus](t, ctlDo(t, c, "GET", "/v1/fleet", "")); st.Migrations != 1 {
		t.Fatalf("fleet migration counter = %d", st.Migrations)
	}
	// Pagination over the tracked jobs.
	list := decodeBody[JobRecordList](t, ctlDo(t, c, "GET", "/v1/jobs?limit=1", ""))
	if len(list.Jobs) != 1 || list.Total != 1 || list.More {
		t.Fatalf("job page = %d of %d (more %v)", len(list.Jobs), list.Total, list.More)
	}
}

// TestFleetJobMigratesFromCheckpointExport covers the diskless path: no
// worker has a job dir, so the coordinator's only migration source is
// the checkpoint it cached off the owner's export endpoint before the
// death. The resumed result must still match the uninterrupted run
// exactly.
func TestFleetJobMigratesFromCheckpointExport(t *testing.T) {
	skipShort(t)
	s1, ts1 := newWorker(t, "", true)
	s2, ts2 := newWorker(t, "", true)
	workers := map[string]*serve.Server{ts1.URL: s1, ts2.URL: s2}
	servers := map[string]*httptest.Server{ts1.URL: ts1, ts2.URL: ts2}

	c := newCoordinator(t, Config{
		Workers:      []string{ts1.URL, ts2.URL},
		JobPollEvery: 10 * time.Millisecond,
	})
	waitFor(t, "both workers alive", time.Minute, func() bool {
		return workerStateVia(t, c, ts1.URL) == StateAlive && workerStateVia(t, c, ts2.URL) == StateAlive
	})

	const steps = 40
	w := ctlDo(t, c, "POST", "/v1/transient", fmt.Sprintf(transientBody, steps))
	if w.Code != http.StatusAccepted {
		t.Fatalf("fleet submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	id := decodeBody[serve.JobStatus](t, w).ID
	rec := fleetJob(t, c, id)
	owner := workers[rec.Worker]

	// The poll loop must have cached a checkpoint before the kill — it is
	// the only migration source a diskless fleet has.
	waitFor(t, "coordinator-cached checkpoint", time.Minute, func() bool {
		j, ok := c.jobs.get(id)
		if !ok {
			return false
		}
		c.jobs.mu.Lock()
		defer c.jobs.mu.Unlock()
		if j.cp == nil {
			st := workerJob(t, owner, id)
			if st.State == serve.JobDone {
				t.Fatal("job finished before a checkpoint was cached — raise steps")
			}
			return false
		}
		return true
	})
	servers[rec.Worker].Close()
	owner.Close()
	var survivor *serve.Server
	for url, s := range workers {
		if url != rec.Worker {
			survivor = s
		}
	}

	final := pollFleetJob(t, c, id)
	if final.Migrations != 1 {
		t.Fatalf("job migrated %d times, want 1", final.Migrations)
	}
	if !final.Resumed {
		t.Logf("fleet record: %+v; survivor: %+v", final.JobStatus, workerJob(t, survivor, id))
		t.Fatal("migrated job did not resume from the cached checkpoint")
	}
	ref := runReference(t, survivor, steps)
	if final.Result.FieldFingerprint != ref.Result.FieldFingerprint {
		t.Fatalf("migrated fingerprint %s != uninterrupted %s",
			final.Result.FieldFingerprint, ref.Result.FieldFingerprint)
	}
	if !reflect.DeepEqual(final.Result, ref.Result) {
		t.Fatal("migrated result differs from the uninterrupted run")
	}
}
