// Package core implements the paper's thermal-aware design methodology
// (Fig. 3): a system specification (package, floorplan, ONI layout, VCSEL
// library) feeds steady-state thermal simulation; design-space exploration
// over the laser and heater powers reduces the intra-ONI gradient; and an
// analytical SNR model evaluates the resulting ONoC's reliability and
// power efficiency under a given chip activity.
//
// Methodology is the facade a downstream user drives; each step is also
// available individually through the internal packages it composes
// (thermal, dse, ornoc, snr).
package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/oni"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/thermal"
)

// CommPattern selects the communication set evaluated on a ring.
type CommPattern int

const (
	// Neighbour sends each ONI's traffic to the next ONI on the ring
	// (maximal wavelength reuse, shortest paths).
	Neighbour CommPattern = iota
	// Paired sends each ONI's traffic halfway around the ring (longest
	// paths, most intermediate filters).
	Paired
)

func (p CommPattern) String() string {
	switch p {
	case Neighbour:
		return "neighbour"
	case Paired:
		return "paired"
	default:
		return fmt.Sprintf("CommPattern(%d)", int(p))
	}
}

// Methodology is a configured instance of the paper's design flow. It is
// safe for concurrent use: basis builds are serialised per activity with
// single-flight deduplication (concurrent requests for a cold activity
// share one build), and everything else only reads immutable state.
type Methodology struct {
	spec   thermal.Spec
	snrCfg snr.Config

	model *thermal.Model

	mu     sync.Mutex
	bases  map[string]*basisEntry
	builds atomic.Int64
}

// basisEntry is one activity's basis slot: the once gates the build so
// concurrent BasisFor calls for the same activity share a single solve;
// done publishes b/err to goroutines that only peek (ThermalAnalysis)
// without joining the flight.
type basisEntry struct {
	once sync.Once
	done atomic.Bool
	b    *thermal.Basis
	err  error
}

// ready returns the completed basis, or nil when the entry is still
// building or its build failed.
func (e *basisEntry) ready() *thermal.Basis {
	if e == nil || !e.done.Load() || e.err != nil {
		return nil
	}
	return e.b
}

// New builds the methodology at the paper's operating point (SCC case
// study, default technology parameters).
func New() (*Methodology, error) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		return nil, err
	}
	return NewWithSpec(spec, snr.DefaultConfig())
}

// NewWithSpec builds the methodology from an explicit specification.
func NewWithSpec(spec thermal.Spec, cfg snr.Config) (*Methodology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model, err := thermal.NewModel(spec)
	if err != nil {
		return nil, err
	}
	return &Methodology{
		spec:   spec,
		snrCfg: cfg,
		model:  model,
		bases:  make(map[string]*basisEntry),
	}, nil
}

// Spec returns the system specification.
func (m *Methodology) Spec() thermal.Spec { return m.spec }

// SNRConfig returns the SNR technology configuration.
func (m *Methodology) SNRConfig() snr.Config { return m.snrCfg }

// Model exposes the assembled thermal model.
func (m *Methodology) Model() *thermal.Model { return m.model }

// basisKey identifies a scenario for basis caching. Name() alone is not
// enough for a long-lived Methodology: parameterised scenarios (Random's
// seed, Hotspot's tile) share a Name, and a warm server must not answer a
// seed-2 query from a seed-1 basis. The key therefore appends the
// scenario's field values.
func basisKey(act activity.Scenario) string {
	if act == nil {
		act = activity.Uniform{}
	}
	return fmt.Sprintf("%s|%+v", act.Name(), act)
}

// BasisFor returns (building and caching on first use) the superposition
// basis for an activity shape. Concurrent calls for the same cold
// activity are deduplicated: exactly one build runs, the rest wait for
// and share its result. Failed builds are not cached, so a later call may
// retry.
func (m *Methodology) BasisFor(act activity.Scenario) (*thermal.Basis, error) {
	if act == nil {
		act = activity.Uniform{}
	}
	name := basisKey(act)
	m.mu.Lock()
	e, ok := m.bases[name]
	if !ok {
		e = &basisEntry{}
		m.bases[name] = e
	}
	m.mu.Unlock()
	e.once.Do(func() {
		m.builds.Add(1)
		e.b, e.err = m.model.BuildBasis(act)
		e.done.Store(true)
	})
	if e.err != nil {
		m.mu.Lock()
		if m.bases[name] == e {
			delete(m.bases, name)
		}
		m.mu.Unlock()
		return nil, e.err
	}
	return e.b, nil
}

// BasisBuilds returns the number of basis builds actually executed — the
// observable the single-flight tests and the service's stats endpoint
// use: N concurrent cold queries must report exactly one build.
func (m *Methodology) BasisBuilds() int64 { return m.builds.Load() }

// EvictBasis drops the cached basis for an activity shape so its memory
// (~4 fields × NumCells × 8 bytes) can be reclaimed, and reports whether
// an entry was present. Safe against racing BasisFor calls: an in-flight
// build on the evicted entry completes and serves its waiters — the
// entry just stops being shared with later calls, which rebuild. Because
// the solve pipeline is deterministic, a rebuilt basis is value-identical
// to the evicted one (pinned by the serve eviction tests).
func (m *Methodology) EvictBasis(act activity.Scenario) bool {
	key := basisKey(act)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.bases[key]; !ok {
		return false
	}
	delete(m.bases, key)
	return true
}

// BasisCount reports the cached basis entries (completed or building) —
// the bounded-memory invariant the serving layer's LRU maintains.
func (m *Methodology) BasisCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.bases)
}

// Explorer returns a design-space explorer bound to the activity's basis.
// The spec's Workers knob caps the explorer's sweep parallelism.
func (m *Methodology) Explorer(act activity.Scenario) (*dse.Explorer, error) {
	b, err := m.BasisFor(act)
	if err != nil {
		return nil, err
	}
	ex, err := dse.NewExplorer(b)
	if err != nil {
		return nil, err
	}
	ex.SetWorkers(m.spec.Workers)
	return ex, nil
}

// ThermalAnalysis runs one steady-state simulation (step 1 of the flow).
// When a basis exists for the powers' activity it is used; otherwise a
// direct solve runs.
func (m *Methodology) ThermalAnalysis(p thermal.Powers) (*thermal.Result, error) {
	m.mu.Lock()
	e := m.bases[basisKey(p.Activity)]
	m.mu.Unlock()
	if b := e.ready(); b != nil {
		return b.Evaluate(p)
	}
	return m.model.Solve(p)
}

// SNRScenario specifies one Fig. 12-style evaluation.
type SNRScenario struct {
	// Case selects the ONI placement (ring length).
	Case ornoc.CaseStudy
	// Activity shapes the chip power.
	Activity activity.Scenario
	// ChipPower is the total processing power (W); the paper's SNR study
	// uses 24 W.
	ChipPower float64
	// PVCSEL and PHeater are the per-device powers (W); the paper uses
	// 3.6 mW and 1.08 mW (= 0.3 ratio).
	PVCSEL, PHeater float64
	// Pattern selects the communication set.
	Pattern CommPattern
}

// Validate reports scenario errors.
func (s SNRScenario) Validate() error {
	if s.ChipPower < 0 || s.PVCSEL < 0 || s.PHeater < 0 {
		return fmt.Errorf("core: negative power in scenario %+v", s)
	}
	if s.Pattern != Neighbour && s.Pattern != Paired {
		return fmt.Errorf("core: unknown pattern %v", s.Pattern)
	}
	return nil
}

// SNRResult bundles the thermal and signal outcomes of a scenario.
type SNRResult struct {
	Scenario SNRScenario
	Thermal  *thermal.Result
	Ring     *ornoc.Ring
	Report   *snr.Report
	// RingLengthM is the waveguide loop length.
	RingLengthM float64
	// NodeTempMin and NodeTempMax bound the ONI temperatures on the ring
	// (the inter-ONI spread the paper quotes per case).
	NodeTempMin, NodeTempMax float64
}

// SNRAnalysis runs the full chain: thermal map → ONI temperatures on the
// ring → analytical SNR (steps 2–3 of the flow).
func (m *Methodology) SNRAnalysis(s SNRScenario) (*SNRResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	ring, err := ornoc.BuildCase(m.spec.Floorplan, s.Case)
	if err != nil {
		return nil, err
	}
	res, err := m.ThermalAnalysis(thermal.Powers{
		Chip:     s.ChipPower,
		Activity: s.Activity,
		VCSEL:    s.PVCSEL,
		Driver:   s.PVCSEL, // the paper's worst case: P_driver = P_VCSEL
		Heater:   s.PHeater,
	})
	if err != nil {
		return nil, err
	}

	var comms []ornoc.Communication
	switch s.Pattern {
	case Neighbour:
		comms = ornoc.NeighbourPattern(ring.N())
	case Paired:
		comms = ornoc.PairedPattern(ring.N())
	}
	if _, err := ring.AssignChannels(comms); err != nil {
		return nil, err
	}

	out := &SNRResult{
		Scenario:    s,
		Thermal:     res,
		Ring:        ring,
		RingLengthM: ring.Length(),
		NodeTempMin: math.Inf(1),
		NodeTempMax: math.Inf(-1),
	}
	temps := make([]float64, ring.N())
	for i, node := range ring.Nodes {
		if node.SiteIndex < 0 || node.SiteIndex >= len(res.ONIs) {
			return nil, fmt.Errorf("core: ring node %d references ONI %d outside thermal result", i, node.SiteIndex)
		}
		t := res.ONIs[node.SiteIndex].AvgTemp
		temps[i] = t
		if t < out.NodeTempMin {
			out.NodeTempMin = t
		}
		if t > out.NodeTempMax {
			out.NodeTempMax = t
		}
	}

	cfg := m.snrCfg
	cfg.PVCSEL = s.PVCSEL
	report, err := snr.Evaluate(cfg, snr.Input{Ring: ring, Comms: comms, NodeTemps: temps})
	if err != nil {
		return nil, err
	}
	out.Report = report
	return out, nil
}

// DesignEvaluation is the flow's final verdict for one operating point:
// thermal feasibility, signal quality and ONoC power cost.
type DesignEvaluation struct {
	Scenario    SNRScenario
	Feasibility dse.Feasibility
	SNR         *SNRResult
	// ONoCPower is the total optical-network electrical power: all
	// VCSELs, their drivers and all MR heaters (W).
	ONoCPower float64
	// Reliable means the gradient constraint holds, every signal clears
	// the detector floor and the worst-case SNR is positive.
	Reliable bool
}

// EvaluateDesign runs the complete methodology for one operating point.
func (m *Methodology) EvaluateDesign(s SNRScenario) (*DesignEvaluation, error) {
	ex, err := m.Explorer(s.Activity)
	if err != nil {
		return nil, err
	}
	feas, err := ex.CheckFeasibility(thermal.Powers{
		Chip:     s.ChipPower,
		Activity: s.Activity,
		VCSEL:    s.PVCSEL,
		Driver:   s.PVCSEL,
		Heater:   s.PHeater,
	})
	if err != nil {
		return nil, err
	}
	snrRes, err := m.SNRAnalysis(s)
	if err != nil {
		return nil, err
	}
	nONI := len(m.spec.Floorplan.ONISites)
	perONIVCSELs := oni.WaveguidesPerONI * oni.TransmittersPerWaveguide
	perONIMRs := oni.WaveguidesPerONI * oni.ReceiversPerWaveguide
	power := float64(nONI) * (float64(perONIVCSELs)*(s.PVCSEL+s.PVCSEL) + float64(perONIMRs)*s.PHeater)
	ev := &DesignEvaluation{
		Scenario:    s,
		Feasibility: feas,
		SNR:         snrRes,
		ONoCPower:   power,
	}
	ev.Reliable = feas.Feasible && snrRes.Report.AllDetected && snrRes.Report.WorstSNRdB > 0
	return ev, nil
}

// OptimalHeaterRatio runs the paper's headline exploration: the heater
// power fraction that minimises the intra-ONI gradient at the given chip
// activity and laser power.
func (m *Methodology) OptimalHeaterRatio(act activity.Scenario, chip, pv float64) (dse.HeaterOptimum, error) {
	ex, err := m.Explorer(act)
	if err != nil {
		return dse.HeaterOptimum{}, err
	}
	return ex.OptimalHeater(chip, pv, pv)
}
