package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/thermal"
)

var (
	once      sync.Once
	shared    *Methodology
	sharedErr error
)

// fullRes skips tests whose assertions are calibrated against the coarse
// (20 µm) mesh and are not meaningful on the -short preview mesh.
func fullRes(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("quantitative SNR/gradient bands need the full coarse mesh; skipped under -short")
	}
}

func methodology(t *testing.T) *Methodology {
	t.Helper()
	once.Do(func() {
		spec, err := thermal.PaperSpec()
		if err != nil {
			sharedErr = err
			return
		}
		spec.Res = thermal.CoarseResolution()
		if testing.Short() {
			spec.Res = thermal.PreviewResolution()
		}
		spec.SolverTol = 1e-7
		shared, sharedErr = NewWithSpec(spec, snr.DefaultConfig())
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return shared
}

func TestNewWithBadConfig(t *testing.T) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	cfg := snr.DefaultConfig()
	cfg.CouplingEfficiency = 0
	if _, err := NewWithSpec(spec, cfg); err == nil {
		t.Error("invalid SNR config should error")
	}
	bad := spec
	bad.Floorplan = nil
	if _, err := NewWithSpec(bad, snr.DefaultConfig()); err == nil {
		t.Error("invalid spec should error")
	}
}

func TestAccessors(t *testing.T) {
	m := methodology(t)
	if m.Model() == nil {
		t.Error("nil model")
	}
	if m.Spec().Floorplan == nil {
		t.Error("spec floorplan missing")
	}
	if m.SNRConfig().BaseLambdaNM != 1550 {
		t.Error("snr config wrong")
	}
}

func TestBasisCaching(t *testing.T) {
	m := methodology(t)
	b1, err := m.BasisFor(activity.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.BasisFor(nil) // nil means uniform
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("uniform basis not cached/shared")
	}
}

// TestEvictBasisRebuildDeterminism pins the contract the serving layer's
// bounded basis LRU relies on: evicting a basis frees its slot (the
// count drops, ThermalAnalysis falls back cleanly), and a rebuilt basis
// evaluates bit-identically — reflect.DeepEqual on the full temperature
// field — to both its first build and a basis from a fresh model.
func TestEvictBasisRebuildDeterminism(t *testing.T) {
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	m, err := NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	act := activity.Random{Seed: 7}
	powers := thermal.Powers{Chip: 25, Activity: act, VCSEL: 2e-3, Driver: 2e-3, Heater: 0.6e-3}

	b1, err := m.BasisFor(act)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := b1.Evaluate(powers)
	if err != nil {
		t.Fatal(err)
	}
	if m.BasisCount() != 1 {
		t.Fatalf("basis count = %d, want 1", m.BasisCount())
	}
	if !m.EvictBasis(act) {
		t.Fatal("EvictBasis found nothing to evict")
	}
	if m.EvictBasis(act) {
		t.Fatal("double eviction reported an entry")
	}
	if m.BasisCount() != 0 {
		t.Fatalf("basis count after eviction = %d, want 0", m.BasisCount())
	}
	// An evaluation holding the evicted basis pointer still works.
	if _, err := b1.Evaluate(powers); err != nil {
		t.Fatalf("evicted basis unusable by in-flight holder: %v", err)
	}

	// Rebuild: a new build (counter advances) with a bit-identical field.
	b2, err := m.BasisFor(act)
	if err != nil {
		t.Fatal(err)
	}
	if b2 == b1 {
		t.Fatal("rebuild returned the evicted pointer — eviction did not drop the cache entry")
	}
	if m.BasisBuilds() != 2 {
		t.Fatalf("builds = %d, want 2", m.BasisBuilds())
	}
	r2, err := b2.Evaluate(powers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.T, r2.T) {
		t.Fatal("rebuilt basis evaluates to a different temperature field")
	}

	// And against a completely fresh model of the same spec.
	m2, err := NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b3, err := m2.BasisFor(act)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := b3.Evaluate(powers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2.T, r3.T) {
		t.Fatal("rebuilt basis differs from a fresh model's basis")
	}
	if !reflect.DeepEqual(r2.ONIs, r3.ONIs) {
		t.Fatal("rebuilt basis ONI reports differ from a fresh model's")
	}
}

func TestThermalAnalysisUsesBasis(t *testing.T) {
	m := methodology(t)
	if _, err := m.BasisFor(activity.Uniform{}); err != nil {
		t.Fatal(err)
	}
	res, err := m.ThermalAnalysis(thermal.Powers{Chip: 25, VCSEL: 2e-3, Driver: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ONIs) != 16 {
		t.Fatalf("%d ONIs", len(res.ONIs))
	}
	if res.MeanONITemp() < 30 {
		t.Errorf("mean ONI temp %.1f suspiciously low", res.MeanONITemp())
	}
}

func TestSNRScenarioValidation(t *testing.T) {
	good := SNRScenario{Case: ornoc.Case18mm, ChipPower: 24, PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: Neighbour}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.ChipPower = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative chip power should fail")
	}
	bad = good
	bad.Pattern = CommPattern(9)
	if err := bad.Validate(); err == nil {
		t.Error("unknown pattern should fail")
	}
}

func TestCommPatternString(t *testing.T) {
	if Neighbour.String() != "neighbour" || Paired.String() != "paired" {
		t.Error("pattern strings wrong")
	}
	if CommPattern(9).String() == "" {
		t.Error("unknown pattern should stringify")
	}
}

// TestFig12Structure reproduces the qualitative structure of Fig. 12:
// SNR decreases with ring length, and the diagonal activity yields a lower
// SNR than uniform at the longest case.
func TestFig12Structure(t *testing.T) {
	fullRes(t)
	m := methodology(t)
	run := func(cs ornoc.CaseStudy, act activity.Scenario) *SNRResult {
		t.Helper()
		r, err := m.SNRAnalysis(SNRScenario{
			Case: cs, Activity: act, ChipPower: 24,
			PVCSEL: 3.6e-3, PHeater: 1.08e-3, Pattern: Neighbour,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	var prevSNR = math.Inf(1)
	var prevSpread = -1.0
	for _, cs := range []ornoc.CaseStudy{ornoc.Case18mm, ornoc.Case32mm, ornoc.Case47mm} {
		r := run(cs, activity.Uniform{})
		if r.Report.WorstSNRdB >= prevSNR {
			t.Errorf("%v: uniform SNR %.1f dB not decreasing", cs, r.Report.WorstSNRdB)
		}
		prevSNR = r.Report.WorstSNRdB
		spread := r.NodeTempMax - r.NodeTempMin
		if spread < prevSpread {
			t.Errorf("%v: ONI spread %.2f shrank", cs, spread)
		}
		prevSpread = spread
		if !r.Report.AllDetected {
			t.Errorf("%v: signals below detector floor", cs)
		}
		if r.Report.MeanSignalW < 0.05e-3 || r.Report.MeanSignalW > 1e-3 {
			t.Errorf("%v: mean signal %.3g W outside the paper's range", cs, r.Report.MeanSignalW)
		}
	}
	// Diagonal worse than uniform on the long ring.
	u := run(ornoc.Case47mm, activity.Uniform{})
	d := run(ornoc.Case47mm, activity.Diagonal{})
	if d.Report.WorstSNRdB >= u.Report.WorstSNRdB {
		t.Errorf("diagonal SNR %.1f not below uniform %.1f",
			d.Report.WorstSNRdB, u.Report.WorstSNRdB)
	}
	// Diagonal widens the inter-ONI spread.
	if (d.NodeTempMax - d.NodeTempMin) <= (u.NodeTempMax - u.NodeTempMin) {
		t.Error("diagonal should widen the ONI temperature spread")
	}
}

func TestSNRAnalysisErrors(t *testing.T) {
	m := methodology(t)
	if _, err := m.SNRAnalysis(SNRScenario{Case: ornoc.Case18mm, ChipPower: -1, Pattern: Neighbour}); err == nil {
		t.Error("invalid scenario should error")
	}
	if _, err := m.SNRAnalysis(SNRScenario{Case: ornoc.CaseStudy(9), ChipPower: 24, Pattern: Neighbour}); err == nil {
		t.Error("unknown case should error")
	}
}

// TestEvaluateDesign exercises the design tension at the heart of the
// paper: a too-small modulation current leaves the lasers dark (thermally
// fine, optically dead), while a large current without enough heater power
// violates the 1 °C gradient constraint (optically fine, thermally
// infeasible).
func TestEvaluateDesign(t *testing.T) {
	fullRes(t)
	m := methodology(t)
	// Sub-threshold laser: feasible but no light.
	low, err := m.EvaluateDesign(SNRScenario{
		Case: ornoc.Case32mm, Activity: activity.Uniform{}, ChipPower: 24,
		PVCSEL: 0.5e-3, PHeater: 0.15e-3, Pattern: Neighbour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Feasibility.Feasible {
		t.Errorf("0.5 mW should satisfy the gradient constraint (max %.2f)",
			low.Feasibility.MaxGradient)
	}
	if low.SNR.Report.AllDetected {
		t.Error("sub-threshold lasers should not clear the detector floor")
	}
	if low.Reliable {
		t.Error("dark design must not be reliable")
	}
	// ONoC power accounting: 16 ONIs × (16 lasers × 2×P_VCSEL + 16 heaters × P_heater).
	want := 16 * (16*(0.5e-3+0.5e-3) + 16*0.15e-3)
	if math.Abs(low.ONoCPower-want) > 1e-12 {
		t.Errorf("ONoC power %.4f W, want %.4f", low.ONoCPower, want)
	}

	// Strong laser without heater: good SNR, infeasible gradient.
	high, err := m.EvaluateDesign(SNRScenario{
		Case: ornoc.Case32mm, Activity: activity.Uniform{}, ChipPower: 24,
		PVCSEL: 6e-3, PHeater: 0, Pattern: Neighbour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if high.Feasibility.Feasible {
		t.Error("6 mW without heater should violate the gradient constraint")
	}
	if !high.SNR.Report.AllDetected {
		t.Error("6 mW lasers should be detected")
	}
	if high.Reliable {
		t.Error("gradient-infeasible design must not be reliable")
	}
	// Verdict consistency.
	for _, ev := range []*DesignEvaluation{low, high} {
		wantReliable := ev.Feasibility.Feasible && ev.SNR.Report.AllDetected && ev.SNR.Report.WorstSNRdB > 0
		if ev.Reliable != wantReliable {
			t.Errorf("verdict inconsistent: %v vs %v", ev.Reliable, wantReliable)
		}
	}
}

func TestOptimalHeaterRatio(t *testing.T) {
	fullRes(t)
	m := methodology(t)
	opt, err := m.OptimalHeaterRatio(activity.Uniform{}, 25, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Ratio <= 0 || opt.Ratio >= 1 {
		t.Errorf("ratio %.2f outside (0, 1)", opt.Ratio)
	}
	if opt.MeanGradient >= opt.GradientNoHeater {
		t.Error("optimal heater should reduce the gradient")
	}
}
