package xbar

import (
	"math"
	"testing"

	"vcselnoc/internal/waveguide"
)

func budget() waveguide.LossBudget { return waveguide.DefaultLossBudget() }

func TestDesignValidation(t *testing.T) {
	good := Design{Topology: ORNoC, N: 4, Pitch: 2e-3, Budget: budget()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.N = 1
	if err := bad.Validate(); err == nil {
		t.Error("N=1 should fail")
	}
	bad = good
	bad.Pitch = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero pitch should fail")
	}
	bad = good
	bad.Budget.DropDB = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative budget should fail")
	}
}

func TestTopologyStrings(t *testing.T) {
	for _, topo := range AllTopologies() {
		if topo.String() == "" {
			t.Errorf("empty string for %d", int(topo))
		}
	}
	if Topology(99).String() == "" {
		t.Error("unknown topology should stringify")
	}
}

func TestAnalyzePairCount(t *testing.T) {
	for _, topo := range AllTopologies() {
		a, err := Analyze(Design{Topology: topo, N: 5, Pitch: 2e-3, Budget: budget()})
		if err != nil {
			t.Fatalf("%v: %v", topo, err)
		}
		if len(a.Paths) != 5*4 {
			t.Errorf("%v: %d paths, want 20", topo, len(a.Paths))
		}
		if a.WorstLossDB < a.AverageLossDB {
			t.Errorf("%v: worst %.2f below average %.2f", topo, a.WorstLossDB, a.AverageLossDB)
		}
		if a.AverageLossDB <= 0 {
			t.Errorf("%v: non-positive average loss", topo)
		}
	}
}

func TestConnectionErrors(t *testing.T) {
	d := Design{Topology: ORNoC, N: 4, Pitch: 2e-3, Budget: budget()}
	if _, err := connection(d, 0, 0); err == nil {
		t.Error("self connection should error")
	}
	if _, err := connection(d, 0, 9); err == nil {
		t.Error("out-of-range dst should error")
	}
	d.Topology = Topology(42)
	if _, err := connection(d, 0, 1); err == nil {
		t.Error("unknown topology should error")
	}
}

func TestORNoCNoCrossings(t *testing.T) {
	a, err := Analyze(Design{Topology: ORNoC, N: 8, Pitch: 2e-3, Budget: budget()})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a.Paths {
		if p.Crossings != 0 {
			t.Fatalf("ORNoC path %d->%d has %d crossings", p.Src, p.Dst, p.Crossings)
		}
		if p.Drops != 1 {
			t.Fatalf("path %d->%d has %d drops", p.Src, p.Dst, p.Drops)
		}
	}
}

// TestORNoCWinsEverywhere reproduces the motivation for choosing ORNoC
// (ref [20]): lower worst-case and average insertion loss than Matrix,
// λ-router and Snake at every evaluated scale.
func TestORNoCWinsEverywhere(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		c, err := Compare(n, 2e-3, budget())
		if err != nil {
			t.Fatal(err)
		}
		orn := c.Results[ORNoC]
		for _, topo := range AllTopologies() {
			if topo == ORNoC {
				continue
			}
			other := c.Results[topo]
			if orn.WorstLossDB >= other.WorstLossDB {
				t.Errorf("n=%d: ORNoC worst %.2f dB not below %v %.2f dB",
					n, orn.WorstLossDB, topo, other.WorstLossDB)
			}
			if orn.AverageLossDB >= other.AverageLossDB {
				t.Errorf("n=%d: ORNoC avg %.2f dB not below %v %.2f dB",
					n, orn.AverageLossDB, topo, other.AverageLossDB)
			}
		}
	}
}

// TestSavingsMagnitude checks the 4×4-scale savings land in the
// neighbourhood of [20]'s 42.5 % (worst) and 38 % (average). Structural
// approximations shift the exact figures; see EXPERIMENTS.md.
func TestSavingsMagnitude(t *testing.T) {
	c, err := Compare(16, 2e-3, budget())
	if err != nil {
		t.Fatal(err)
	}
	if c.WorstSaving < 0.25 || c.WorstSaving > 0.70 {
		t.Errorf("worst-case saving %.1f%%, want 25–70%% (paper: 42.5%%)", c.WorstSaving*100)
	}
	if c.AverageSaving < 0.15 || c.AverageSaving > 0.60 {
		t.Errorf("average saving %.1f%%, want 15–60%% (paper: 38%%)", c.AverageSaving*100)
	}
}

func TestLossGrowsWithScale(t *testing.T) {
	for _, topo := range AllTopologies() {
		var prev float64
		for _, n := range []int{4, 8, 16} {
			a, err := Analyze(Design{Topology: topo, N: n, Pitch: 2e-3, Budget: budget()})
			if err != nil {
				t.Fatal(err)
			}
			if a.WorstLossDB <= prev {
				t.Errorf("%v: worst loss %.2f not growing at n=%d", topo, a.WorstLossDB, n)
			}
			prev = a.WorstLossDB
		}
	}
}

func TestWorstPairIdentified(t *testing.T) {
	a, err := Analyze(Design{Topology: Matrix, N: 6, Pitch: 2e-3, Budget: budget()})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := a.WorstPair.LossDB(budget())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-a.WorstLossDB) > 1e-12 {
		t.Errorf("worst pair loss %.4f != worst loss %.4f", loss, a.WorstLossDB)
	}
	// Matrix worst case should be a maximal-distance pair.
	if abs(a.WorstPair.Dst-a.WorstPair.Src) != 5 {
		t.Errorf("matrix worst pair %d->%d not maximal distance", a.WorstPair.Src, a.WorstPair.Dst)
	}
}

func TestCompareErrors(t *testing.T) {
	if _, err := Compare(1, 2e-3, budget()); err == nil {
		t.Error("N=1 should error")
	}
	bad := budget()
	bad.CrossingDB = math.NaN()
	if _, err := Compare(4, 2e-3, bad); err == nil {
		t.Error("bad budget should error")
	}
}
