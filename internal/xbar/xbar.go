// Package xbar provides structural insertion-loss models of the
// wavelength-routed optical crossbars the paper's ORNoC choice is
// motivated against (reference [20]: Le Beux et al., "Optical Crossbars on
// Chip, a comparative study based on worst-case losses"): Matrix
// (Bianco et al.), λ-router (O'Connor et al.) and Snake (Ramini et al.),
// plus ORNoC itself.
//
// Each topology is reduced to per-connection element counts — waveguide
// length, crossings, ring pass-bys and the final drop — which are priced
// with a waveguide.LossBudget. The figures of merit are the worst-case and
// average insertion loss over all source/destination pairs, the metric
// under which [20] reports ORNoC saving ≈42.5 % (worst case) and ≈38 %
// (average) at 4×4 scale.
package xbar

import (
	"fmt"
	"math"

	"vcselnoc/internal/waveguide"
)

// Topology identifies a crossbar architecture.
type Topology int

// Supported topologies.
const (
	ORNoC Topology = iota
	Matrix
	LambdaRouter
	Snake
)

func (t Topology) String() string {
	switch t {
	case ORNoC:
		return "ornoc"
	case Matrix:
		return "matrix"
	case LambdaRouter:
		return "lambda-router"
	case Snake:
		return "snake"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// AllTopologies lists every supported architecture.
func AllTopologies() []Topology {
	return []Topology{ORNoC, Matrix, LambdaRouter, Snake}
}

// Design couples a topology with its scale and physical pitch.
type Design struct {
	Topology Topology
	// N is the number of network interfaces (N×N full connectivity).
	N int
	// Pitch is the physical distance between adjacent interfaces (m).
	Pitch float64
	// Budget prices the optical elements.
	Budget waveguide.LossBudget
}

// Validate reports design errors.
func (d Design) Validate() error {
	if d.N < 2 {
		return fmt.Errorf("xbar: N=%d must be >= 2", d.N)
	}
	if d.Pitch <= 0 {
		return fmt.Errorf("xbar: pitch %g must be > 0", d.Pitch)
	}
	return d.Budget.Validate()
}

// PathElements describes one connection's optical path.
type PathElements struct {
	Src, Dst   int
	LengthM    float64
	Crossings  int
	RingPassBy int
	Drops      int
	Bends      int
}

// LossDB prices the path with the design's budget.
func (p PathElements) LossDB(b waveguide.LossBudget) (float64, error) {
	return b.PathLossDB(p.LengthM, p.Bends, p.Crossings, p.RingPassBy, p.Drops)
}

// connection computes the path elements for one src→dst pair. The models
// follow the structural analyses of [20]:
//
//   - ORNoC: nodes on a ring; the signal passes the receivers of the
//     intermediate nodes (one resonant filter per node per channel) with
//     no waveguide crossings.
//   - Matrix: an N×N grid of add/drop rings; a connection travels along
//     the source row then down the destination column, crossing one
//     waveguide per grid cell it traverses and passing the rings on the
//     way; one drop at the crosspoint.
//   - λ-router: log-structured multistage of 2×2 add-drop elements; every
//     connection traverses exactly N stages, passing one ring per stage,
//     with ~N/2 crossings between stages.
//   - Snake: a serpentine bus through all nodes; like ORNoC without the
//     closing segment but with a crossing at each serpentine turn.
func connection(d Design, src, dst int) (PathElements, error) {
	if src == dst {
		return PathElements{}, fmt.Errorf("xbar: src == dst (%d)", src)
	}
	if src < 0 || src >= d.N || dst < 0 || dst >= d.N {
		return PathElements{}, fmt.Errorf("xbar: pair (%d,%d) outside N=%d", src, dst, d.N)
	}
	p := PathElements{Src: src, Dst: dst, Drops: 1}
	switch d.Topology {
	case ORNoC:
		// Wavelength reuse keeps one resonant filter per intermediate
		// node on the path; no crossings on a ring.
		hops := dst - src
		if hops < 0 {
			hops += d.N
		}
		p.LengthM = float64(hops) * d.Pitch
		p.RingPassBy = hops - 1
		p.Bends = hops / 2
	case Matrix:
		// Manhattan route on the ring matrix: |Δ| horizontal plus the
		// column turn. The signal crosses one row and one column waveguide
		// per traversed crosspoint and passes the N/2 add/drop rings that
		// populate each traversed cell on average.
		dx := abs(dst - src)
		p.LengthM = float64(dx+1) * d.Pitch
		p.Crossings = 2 * dx
		p.RingPassBy = dx * d.N / 2
		p.Bends = 1
	case LambdaRouter:
		// N stages of 2×2 elements; path length grows with N, each stage
		// contributes a ring pass and inter-stage shuffles cross ~N/2
		// waveguides in the worst case; distance-dependent share below.
		dx := abs(dst - src)
		p.LengthM = float64(d.N) * d.Pitch
		p.RingPassBy = 2 * (d.N - 1)
		p.Crossings = dx + d.N*d.N/8
		p.Bends = 2
	case Snake:
		// Serpentine bus: same hop distance as ORNoC but no wraparound.
		// Every intermediate interface hosts rings for all N wavelength
		// channels (no reuse), and each serpentine turn traversed crosses
		// the return waveguide.
		dx := abs(dst - src)
		p.LengthM = float64(dx) * d.Pitch
		inter := dx - 1
		if inter < 0 {
			inter = 0
		}
		p.RingPassBy = inter * d.N / 2
		p.Crossings = dx
		p.Bends = dx / 2
	default:
		return PathElements{}, fmt.Errorf("xbar: unknown topology %v", d.Topology)
	}
	return p, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Analysis holds the loss statistics of a design.
type Analysis struct {
	Design Design
	// WorstLossDB and AverageLossDB summarise all valid pairs.
	WorstLossDB, AverageLossDB float64
	// WorstPair identifies the worst connection.
	WorstPair PathElements
	// Paths lists every evaluated connection.
	Paths []PathElements
}

// Analyze evaluates all N·(N−1) connections of a design. For Snake and
// λ-router (open topologies) pairs are directional but all pairs exist;
// for ORNoC the ring direction is fixed.
func Analyze(d Design) (*Analysis, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	a := &Analysis{Design: d, WorstLossDB: math.Inf(-1)}
	var sum float64
	var count int
	for src := 0; src < d.N; src++ {
		for dst := 0; dst < d.N; dst++ {
			if src == dst {
				continue
			}
			p, err := connection(d, src, dst)
			if err != nil {
				return nil, err
			}
			loss, err := p.LossDB(d.Budget)
			if err != nil {
				return nil, err
			}
			a.Paths = append(a.Paths, p)
			sum += loss
			count++
			if loss > a.WorstLossDB {
				a.WorstLossDB = loss
				a.WorstPair = p
			}
		}
	}
	a.AverageLossDB = sum / float64(count)
	return a, nil
}

// Comparison is the headline table: per-topology worst/average losses and
// ORNoC's relative savings versus the best competitor.
type Comparison struct {
	Results map[Topology]*Analysis
	// WorstSaving and AverageSaving are ORNoC's fractional loss reduction
	// vs the best non-ORNoC topology (0.425 and 0.38 in [20] at 4×4).
	WorstSaving, AverageSaving float64
}

// Compare analyses every topology at the same scale and budget.
func Compare(n int, pitch float64, budget waveguide.LossBudget) (*Comparison, error) {
	c := &Comparison{Results: make(map[Topology]*Analysis)}
	for _, topo := range AllTopologies() {
		a, err := Analyze(Design{Topology: topo, N: n, Pitch: pitch, Budget: budget})
		if err != nil {
			return nil, fmt.Errorf("xbar: %v: %w", topo, err)
		}
		c.Results[topo] = a
	}
	bestWorst := math.Inf(1)
	bestAvg := math.Inf(1)
	for topo, a := range c.Results {
		if topo == ORNoC {
			continue
		}
		if a.WorstLossDB < bestWorst {
			bestWorst = a.WorstLossDB
		}
		if a.AverageLossDB < bestAvg {
			bestAvg = a.AverageLossDB
		}
	}
	orn := c.Results[ORNoC]
	c.WorstSaving = 1 - orn.WorstLossDB/bestWorst
	c.AverageSaving = 1 - orn.AverageLossDB/bestAvg
	return c, nil
}
