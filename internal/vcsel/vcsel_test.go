package vcsel

import (
	"math"
	"testing"
	"testing/quick"
)

func device(t testing.TB) *Device {
	t.Helper()
	d, err := New(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParamValidation(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.LambdaNM = 0 },
		func(p *Params) { p.IthRef = 0 },
		func(p *Params) { p.T0 = -1 },
		func(p *Params) { p.S0 = 0 },
		func(p *Params) { p.S0 = 1.5 },
		func(p *Params) { p.TSMax = p.TSRef },
		func(p *Params) { p.V0 = 0 },
		func(p *Params) { p.Rs = -1 },
		func(p *Params) { p.Rth = -1 },
		func(p *Params) { p.MaxCurrent = 0 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if _, err := New(p); err == nil {
			t.Errorf("mutation %d should have failed validation", i)
		}
	}
}

// TestPaperAnchors checks the efficiency anchor points the paper quotes:
// η ≈ 15 % at 40 °C dropping to ≈ 4 % at 60 °C (same drive current), and a
// peak efficiency near 18 % at 10 °C.
func TestPaperAnchors(t *testing.T) {
	d := device(t)
	peak10, _, err := d.PeakEfficiency(10)
	if err != nil {
		t.Fatal(err)
	}
	if peak10 < 0.15 || peak10 > 0.22 {
		t.Errorf("peak η(10°C) = %.1f%%, want 15–22%%", peak10*100)
	}
	peak40, i40, err := d.PeakEfficiency(40)
	if err != nil {
		t.Fatal(err)
	}
	if peak40 < 0.12 || peak40 > 0.18 {
		t.Errorf("η(40°C) = %.1f%%, want 12–18%%", peak40*100)
	}
	pt60, err := d.Operate(i40, 60)
	if err != nil {
		t.Fatal(err)
	}
	if pt60.Efficiency < 0.025 || pt60.Efficiency > 0.07 {
		t.Errorf("η(60°C) = %.1f%%, want 2.5–7%%", pt60.Efficiency*100)
	}
	// The collapse factor 40→60 °C should be large (paper: 15/4 ≈ 3.75).
	if ratio := peak40 / pt60.Efficiency; ratio < 2 || ratio > 6 {
		t.Errorf("efficiency collapse ratio = %.2f, want 2–6", ratio)
	}
}

// TestEfficiencyMonotoneInTemperature: at a fixed mid-range current,
// heating the base always hurts efficiency.
func TestEfficiencyMonotoneInTemperature(t *testing.T) {
	d := device(t)
	prev := math.Inf(1)
	for temp := 10.0; temp <= 70; temp += 5 {
		pt, err := d.Operate(4e-3, temp)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Efficiency > prev+1e-12 {
			t.Errorf("efficiency rose with temperature at %g°C: %g > %g", temp, pt.Efficiency, prev)
		}
		prev = pt.Efficiency
	}
}

func TestThresholdParabola(t *testing.T) {
	d := device(t)
	p := d.Params()
	min := d.Threshold(p.TPeak)
	if math.Abs(min-p.IthRef) > 1e-12 {
		t.Errorf("threshold at TPeak = %g, want %g", min, p.IthRef)
	}
	if d.Threshold(p.TPeak+30) <= min || d.Threshold(p.TPeak-30) <= min {
		t.Error("threshold should grow away from TPeak")
	}
	// Symmetry.
	if math.Abs(d.Threshold(p.TPeak+20)-d.Threshold(p.TPeak-20)) > 1e-12 {
		t.Error("threshold parabola should be symmetric")
	}
}

func TestSlopeDecay(t *testing.T) {
	d := device(t)
	p := d.Params()
	if got := d.Slope(p.TSRef); got != p.S0 {
		t.Errorf("slope at TSRef = %g, want %g", got, p.S0)
	}
	if got := d.Slope(p.TSRef - 40); got != p.S0 {
		t.Errorf("slope below TSRef = %g, want saturation at %g", got, p.S0)
	}
	if got := d.Slope(p.TSMax); got != 0 {
		t.Errorf("slope at TSMax = %g, want 0", got)
	}
	if got := d.Slope(p.TSMax + 50); got != 0 {
		t.Errorf("slope beyond TSMax = %g, want 0", got)
	}
	// Quartic: decay is slow near TSRef.
	near := d.Slope(p.TSRef + 0.1*(p.TSMax-p.TSRef))
	if near < 0.99*p.S0 {
		t.Errorf("slope 10%% into decay = %g, want > 99%% of S0", near)
	}
}

func TestOperateBelowThreshold(t *testing.T) {
	d := device(t)
	pt, err := d.Operate(0.1e-3, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pt.OpticalPower != 0 {
		t.Errorf("sub-threshold emission %g", pt.OpticalPower)
	}
	if pt.Efficiency != 0 {
		t.Errorf("sub-threshold efficiency %g", pt.Efficiency)
	}
	// All electrical power becomes heat.
	if math.Abs(pt.DissipatedPower-pt.ElectricalPower) > 1e-15 {
		t.Error("sub-threshold dissipation should equal electrical power")
	}
}

func TestOperateZeroCurrent(t *testing.T) {
	d := device(t)
	pt, err := d.Operate(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pt.ElectricalPower != 0 || pt.OpticalPower != 0 || pt.JunctionTemp != 25 {
		t.Errorf("off state wrong: %+v", pt)
	}
}

func TestOperateErrors(t *testing.T) {
	d := device(t)
	if _, err := d.Operate(-1e-3, 25); err == nil {
		t.Error("negative current should error")
	}
	if _, err := d.Operate(20e-3, 25); err == nil {
		t.Error("current above max should error")
	}
	if _, err := d.Operate(1e-3, math.NaN()); err == nil {
		t.Error("NaN temperature should error")
	}
}

// TestEnergyConservation: optical power never exceeds electrical power and
// dissipated power is the exact difference.
func TestEnergyConservation(t *testing.T) {
	d := device(t)
	for _, i := range []float64{0.5e-3, 1e-3, 3e-3, 5e-3, 8e-3, 12e-3} {
		for _, temp := range []float64{0, 25, 50, 75} {
			pt, err := d.Operate(i, temp)
			if err != nil {
				t.Fatal(err)
			}
			if pt.OpticalPower > pt.ElectricalPower {
				t.Errorf("I=%g T=%g: OP %g > PE %g", i, temp, pt.OpticalPower, pt.ElectricalPower)
			}
			if math.Abs(pt.DissipatedPower-(pt.ElectricalPower-pt.OpticalPower)) > 1e-12 {
				t.Errorf("I=%g T=%g: dissipation mismatch", i, temp)
			}
			if pt.Efficiency < 0 || pt.Efficiency > 1 {
				t.Errorf("I=%g T=%g: efficiency %g outside [0,1]", i, temp, pt.Efficiency)
			}
			if pt.JunctionTemp < pt.BaseTemp-1e-9 {
				t.Errorf("I=%g T=%g: junction cooler than base", i, temp)
			}
		}
	}
}

// TestThermalRollover: sweeping current upward, the optical power must
// first rise and eventually fall (the rollover visible in Fig. 8-c).
func TestThermalRollover(t *testing.T) {
	d := device(t)
	var maxOP float64
	var rolled bool
	for i := 0.5e-3; i <= 15e-3; i += 0.25e-3 {
		pt, err := d.Operate(i, 40)
		if err != nil {
			t.Fatal(err)
		}
		if pt.OpticalPower > maxOP {
			maxOP = pt.OpticalPower
		}
		if maxOP > 0 && pt.OpticalPower < maxOP*0.5 {
			rolled = true
		}
	}
	if maxOP <= 0 {
		t.Fatal("laser never emitted")
	}
	if !rolled {
		t.Error("no thermal rollover observed up to max current")
	}
}

func TestOperateAtDissipation(t *testing.T) {
	d := device(t)
	for _, target := range []float64{0.5e-3, 1e-3, 3.6e-3, 6e-3} {
		pt, err := d.OperateAtDissipation(target, 45)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		if math.Abs(pt.DissipatedPower-target) > 1e-6*target+1e-12 {
			t.Errorf("target %g: got dissipation %g", target, pt.DissipatedPower)
		}
	}
}

func TestOperateAtDissipationEdges(t *testing.T) {
	d := device(t)
	pt, err := d.OperateAtDissipation(0, 30)
	if err != nil || pt.Current != 0 {
		t.Errorf("zero dissipation should give off state: %+v, %v", pt, err)
	}
	if _, err := d.OperateAtDissipation(-1e-3, 30); err == nil {
		t.Error("negative target should error")
	}
	if _, err := d.OperateAtDissipation(1, 30); err == nil {
		t.Error("unreachable target should error")
	}
}

func TestWavelengthDrift(t *testing.T) {
	d := device(t)
	p := d.Params()
	base := d.WavelengthNM(p.TRef)
	if base != p.LambdaNM {
		t.Errorf("wavelength at TRef = %g, want %g", base, p.LambdaNM)
	}
	// 10 °C hotter → +1 nm at 0.1 nm/°C.
	if got := d.WavelengthNM(p.TRef + 10); math.Abs(got-(p.LambdaNM+1)) > 1e-9 {
		t.Errorf("wavelength at TRef+10 = %g, want %g", got, p.LambdaNM+1)
	}
}

func TestEfficiencyCurveShape(t *testing.T) {
	d := device(t)
	currents := make([]float64, 60)
	for i := range currents {
		currents[i] = float64(i+1) * 0.25e-3
	}
	effs, err := d.EfficiencyCurve(25, currents)
	if err != nil {
		t.Fatal(err)
	}
	// Single interior maximum: rises then falls.
	peakIdx := 0
	for i, e := range effs {
		if e > effs[peakIdx] {
			peakIdx = i
		}
	}
	if peakIdx == 0 || peakIdx == len(effs)-1 {
		t.Errorf("peak at boundary index %d", peakIdx)
	}
	for i := 1; i <= peakIdx; i++ {
		if effs[i] < effs[i-1]-1e-9 {
			t.Errorf("efficiency not rising before peak at %d", i)
		}
	}
	for i := peakIdx + 1; i < len(effs); i++ {
		if effs[i] > effs[i-1]+1e-9 {
			t.Errorf("efficiency not falling after peak at %d", i)
		}
	}
}

func TestPowerCurve(t *testing.T) {
	d := device(t)
	currents := []float64{1e-3, 3e-3, 5e-3}
	diss, op, err := d.PowerCurve(30, currents)
	if err != nil {
		t.Fatal(err)
	}
	if len(diss) != 3 || len(op) != 3 {
		t.Fatal("wrong lengths")
	}
	for i := 1; i < len(diss); i++ {
		if diss[i] <= diss[i-1] {
			t.Error("dissipated power should increase with current")
		}
	}
}

// Property: the self-heating fixed point is consistent: recomputing
// dissipation at the reported junction temperature reproduces the reported
// dissipation.
func TestQuickFixedPointConsistent(t *testing.T) {
	d := device(t)
	f := func(iFrac, tFrac float64) bool {
		i := math.Mod(math.Abs(iFrac), 1) * d.Params().MaxCurrent
		temp := math.Mod(math.Abs(tFrac), 80)
		pt, err := d.Operate(i, temp)
		if err != nil {
			return false
		}
		wantTj := temp + d.Params().Rth*pt.DissipatedPower
		return math.Abs(pt.JunctionTemp-wantTj) < 1e-6
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: dissipated power is monotone in current (the invariant the
// OperateAtDissipation bisection relies on).
func TestQuickDissipationMonotone(t *testing.T) {
	d := device(t)
	f := func(aFrac, bFrac, tFrac float64) bool {
		a := math.Mod(math.Abs(aFrac), 1) * d.Params().MaxCurrent
		b := math.Mod(math.Abs(bFrac), 1) * d.Params().MaxCurrent
		if a > b {
			a, b = b, a
		}
		temp := math.Mod(math.Abs(tFrac), 80)
		pa, err := d.Operate(a, temp)
		if err != nil {
			return false
		}
		pb, err := d.Operate(b, temp)
		if err != nil {
			return false
		}
		return pb.DissipatedPower >= pa.DissipatedPower-1e-12
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
