// Package vcsel models the CMOS-compatible vertical-cavity surface-emitting
// laser used as the distributed on-chip light source in the paper
// (Sciancalepore et al., double photonic-crystal VCSEL; Amann & Hofmann,
// InP long-wavelength VCSELs).
//
// The model is an empirical rate-equation-style description:
//
//	OP(I, Tj) = S(Tj) · (I − Ith(Tj))      for I > Ith, else 0
//	Ith(T)    = IthRef · (1 + ((T − TPeak)/T0)²)   (parabolic threshold)
//	S(T)      = S0 · max(0, 1 − ((T − TSRef)/(TSMax − TSRef))⁴)
//	V(I)      = V0 + Rs·I
//	Tj        = Tbase + Rth · (V·I − OP)   (self-heating fixed point)
//
// The quartic slope decay is deliberately flat at low temperature and
// collapses near TSMax: this is what lets one parameter set reproduce both
// the mild 10→40 °C efficiency loss (≈18 % → ≈15 %) and the steep
// 40→60 °C collapse (≈15 % → ≈4 %) that the paper reports.
//
// The junction temperature couples back into threshold and slope, which
// reproduces the efficiency collapse the paper quotes (η ≈ 15 % at 40 °C
// falling to ≈ 4 % at 60 °C) and the thermal rollover of the L–P curve in
// Fig. 8-c. The fixed point is solved by monotone iteration, which always
// converges because dissipated power is non-decreasing in Tj and bounded
// by the electrical power.
package vcsel

import (
	"fmt"
	"math"
)

// Params holds the device parameters. All defaults are calibrated against
// the anchor points quoted in the paper (see DefaultParams).
type Params struct {
	// LambdaNM is the nominal emission wavelength at TRef, in nm.
	LambdaNM float64
	// DLambdaDT is the emission wavelength drift in nm/°C.
	DLambdaDT float64
	// TRef is the reference temperature for LambdaNM, in °C.
	TRef float64

	// IthRef is the minimum threshold current in amperes, reached at TPeak.
	IthRef float64
	// TPeak is the temperature of minimum threshold, °C.
	TPeak float64
	// T0 is the parabolic threshold width, °C.
	T0 float64

	// S0 is the low-temperature slope efficiency in W/A.
	S0 float64
	// TSRef and TSMax define the linear slope decay: S = S0 at TSRef,
	// S = 0 at TSMax.
	TSRef, TSMax float64

	// V0 is the diode turn-on voltage in volts, Rs the series resistance in
	// ohms.
	V0, Rs float64

	// Rth is the junction-to-baseplate thermal resistance in K/W.
	Rth float64

	// MaxCurrent is the largest drive current the driver can deliver, A.
	MaxCurrent float64
}

// DefaultParams returns parameters calibrated to the paper's device:
// 1550 nm, 15×30 µm² footprint, 3 dB modulation bandwidth 12 GHz, and the
// efficiency anchors η(40 °C) ≈ 15 %, η(60 °C) ≈ 4 % at the nominal drive
// current (≈ 5 mA), with peak wall-plug efficiency near 18–20 % at 10 °C.
func DefaultParams() Params {
	return Params{
		LambdaNM:   1550,
		DLambdaDT:  0.1,
		TRef:       25,
		IthRef:     0.8e-3,
		TPeak:      15,
		T0:         50,
		S0:         0.30,
		TSRef:      15,
		TSMax:      79,
		V0:         0.95,
		Rs:         90,
		Rth:        2500, // K/W (≈ 2.5 °C/mW, small-cavity III-V on oxide)
		MaxCurrent: 15e-3,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	switch {
	case p.LambdaNM <= 0:
		return fmt.Errorf("vcsel: wavelength %g must be > 0", p.LambdaNM)
	case p.IthRef <= 0:
		return fmt.Errorf("vcsel: threshold %g must be > 0", p.IthRef)
	case p.T0 <= 0:
		return fmt.Errorf("vcsel: T0 %g must be > 0", p.T0)
	case p.S0 <= 0 || p.S0 > 1.0:
		return fmt.Errorf("vcsel: slope %g W/A outside (0, 1]", p.S0)
	case p.TSMax <= p.TSRef:
		return fmt.Errorf("vcsel: TSMax %g must exceed TSRef %g", p.TSMax, p.TSRef)
	case p.V0 <= 0 || p.Rs < 0:
		return fmt.Errorf("vcsel: invalid electrical parameters V0=%g Rs=%g", p.V0, p.Rs)
	case p.Rth < 0:
		return fmt.Errorf("vcsel: negative thermal resistance %g", p.Rth)
	case p.MaxCurrent <= 0:
		return fmt.Errorf("vcsel: max current %g must be > 0", p.MaxCurrent)
	}
	return nil
}

// Device is an operating VCSEL model.
type Device struct {
	p Params
}

// New builds a device after validating the parameters.
func New(p Params) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{p: p}, nil
}

// Params returns the device parameters.
func (d *Device) Params() Params { return d.p }

// Threshold returns the threshold current (A) at junction temperature T.
func (d *Device) Threshold(tj float64) float64 {
	dt := (tj - d.p.TPeak) / d.p.T0
	return d.p.IthRef * (1 + dt*dt)
}

// Slope returns the slope efficiency (W/A) at junction temperature T.
// Below TSRef the slope saturates at S0; above it decays quartically to
// zero at TSMax and stays zero beyond.
func (d *Device) Slope(tj float64) float64 {
	if tj <= d.p.TSRef {
		return d.p.S0
	}
	x := (tj - d.p.TSRef) / (d.p.TSMax - d.p.TSRef)
	if x >= 1 {
		return 0
	}
	x2 := x * x
	return d.p.S0 * (1 - x2*x2)
}

// Voltage returns the forward voltage at drive current i.
func (d *Device) Voltage(i float64) float64 { return d.p.V0 + d.p.Rs*i }

// WavelengthNM returns the emission wavelength (nm) at junction
// temperature tj.
func (d *Device) WavelengthNM(tj float64) float64 {
	return d.p.LambdaNM + d.p.DLambdaDT*(tj-d.p.TRef)
}

// OperatingPoint describes a self-consistent electro-opto-thermal state.
type OperatingPoint struct {
	Current         float64 // A
	BaseTemp        float64 // °C, the temperature of the mounting surface
	JunctionTemp    float64 // °C, after self-heating
	Voltage         float64 // V
	ElectricalPower float64 // W
	OpticalPower    float64 // W emitted into the cavity output
	DissipatedPower float64 // W converted to heat
	Efficiency      float64 // wall-plug, OpticalPower/ElectricalPower
	WavelengthNM    float64 // nm at the junction temperature
}

// Operate solves the self-heating fixed point at drive current i (A) and
// base temperature tbase (°C).
func (d *Device) Operate(i, tbase float64) (OperatingPoint, error) {
	if i < 0 {
		return OperatingPoint{}, fmt.Errorf("vcsel: negative drive current %g", i)
	}
	if i > d.p.MaxCurrent {
		return OperatingPoint{}, fmt.Errorf("vcsel: current %g A exceeds maximum %g A", i, d.p.MaxCurrent)
	}
	if math.IsNaN(tbase) || math.IsInf(tbase, 0) {
		return OperatingPoint{}, fmt.Errorf("vcsel: invalid base temperature %g", tbase)
	}
	v := d.Voltage(i)
	pe := v * i
	// Monotone fixed-point iteration from the coolest state: Tj starts at
	// tbase; dissipation is non-decreasing in Tj, so the sequence is
	// monotone non-decreasing and bounded by tbase + Rth·pe.
	tj := tbase
	for iter := 0; iter < 200; iter++ {
		op := d.opticalAt(i, tj)
		next := tbase + d.p.Rth*(pe-op)
		if math.Abs(next-tj) < 1e-9 {
			tj = next
			break
		}
		tj = next
	}
	op := d.opticalAt(i, tj)
	pt := OperatingPoint{
		Current:         i,
		BaseTemp:        tbase,
		JunctionTemp:    tj,
		Voltage:         v,
		ElectricalPower: pe,
		OpticalPower:    op,
		DissipatedPower: pe - op,
		WavelengthNM:    d.WavelengthNM(tj),
	}
	if pe > 0 {
		pt.Efficiency = op / pe
	}
	return pt, nil
}

func (d *Device) opticalAt(i, tj float64) float64 {
	ith := d.Threshold(tj)
	if i <= ith {
		return 0
	}
	return d.Slope(tj) * (i - ith)
}

// OperateAtDissipation finds the drive current whose dissipated power
// equals pdiss (W) at the given base temperature, by bisection. Dissipated
// power is strictly increasing in current, so the solution is unique.
// pdiss=0 returns the off state.
func (d *Device) OperateAtDissipation(pdiss, tbase float64) (OperatingPoint, error) {
	if pdiss < 0 {
		return OperatingPoint{}, fmt.Errorf("vcsel: negative dissipation target %g", pdiss)
	}
	if pdiss == 0 {
		return d.Operate(0, tbase)
	}
	hi, err := d.Operate(d.p.MaxCurrent, tbase)
	if err != nil {
		return OperatingPoint{}, err
	}
	if pdiss > hi.DissipatedPower {
		return OperatingPoint{}, fmt.Errorf("vcsel: dissipation %g W unreachable (max %g W at %g A)",
			pdiss, hi.DissipatedPower, d.p.MaxCurrent)
	}
	lo, hiI := 0.0, d.p.MaxCurrent
	var pt OperatingPoint
	for iter := 0; iter < 80; iter++ {
		mid := (lo + hiI) / 2
		pt, err = d.Operate(mid, tbase)
		if err != nil {
			return OperatingPoint{}, err
		}
		if pt.DissipatedPower < pdiss {
			lo = mid
		} else {
			hiI = mid
		}
	}
	return pt, nil
}

// EfficiencyCurve evaluates wall-plug efficiency across the drive currents
// at a fixed base temperature (Fig. 8-b of the paper).
func (d *Device) EfficiencyCurve(tbase float64, currents []float64) ([]float64, error) {
	out := make([]float64, len(currents))
	for idx, i := range currents {
		pt, err := d.Operate(i, tbase)
		if err != nil {
			return nil, err
		}
		out[idx] = pt.Efficiency
	}
	return out, nil
}

// PowerCurve evaluates (dissipated power, optical power) pairs across the
// drive currents at a fixed base temperature (Fig. 8-c of the paper).
func (d *Device) PowerCurve(tbase float64, currents []float64) (diss, op []float64, err error) {
	diss = make([]float64, len(currents))
	op = make([]float64, len(currents))
	for idx, i := range currents {
		pt, e := d.Operate(i, tbase)
		if e != nil {
			return nil, nil, e
		}
		diss[idx] = pt.DissipatedPower
		op[idx] = pt.OpticalPower
	}
	return diss, op, nil
}

// PeakEfficiency scans the current range and returns the maximum wall-plug
// efficiency and the current where it occurs.
func (d *Device) PeakEfficiency(tbase float64) (eff, current float64, err error) {
	const steps = 300
	for s := 1; s <= steps; s++ {
		i := d.p.MaxCurrent * float64(s) / steps
		pt, e := d.Operate(i, tbase)
		if e != nil {
			return 0, 0, e
		}
		if pt.Efficiency > eff {
			eff = pt.Efficiency
			current = i
		}
	}
	return eff, current, nil
}
