// Package dse implements the design-space exploration at the heart of the
// paper's methodology: sweeping the VCSEL dissipated power (set by the
// modulation current) and the MR heater power over steady-state thermal
// evaluations, locating the heater power that minimises the intra-ONI
// gradient, and checking the 1 °C gradient constraint that makes run-time
// MR calibration practical.
//
// All sweeps run on a thermal.Basis (superposition of unit-power solves),
// so exploring hundreds of operating points costs microseconds each
// instead of full finite-volume solves.
package dse

import (
	"fmt"
	"math"
	"runtime"

	"vcselnoc/internal/parallel"
	"vcselnoc/internal/thermal"
)

// GradientLimit is the paper's intra-ONI gradient constraint (°C): with
// 1.55 nm-BW rings and 0.1 nm/°C drift, 1 °C keeps the transmission
// penalty below ~7 %.
const GradientLimit = 1.0

// Explorer runs sweeps over a prepared thermal basis. Sweep grid cells
// are independent basis evaluations, so SweepAvgTemp, SweepGradient and
// HeaterComparison fan them out across a worker pool; sequential searches
// (OptimalHeater, MaxFeasibleLaserPower) stay serial by nature.
type Explorer struct {
	basis   *thermal.Basis
	workers int
}

// NewExplorer wraps a thermal basis. The worker pool defaults to
// GOMAXPROCS; tune it with SetWorkers.
func NewExplorer(b *thermal.Basis) (*Explorer, error) {
	if b == nil {
		return nil, fmt.Errorf("dse: nil basis")
	}
	return &Explorer{basis: b}, nil
}

// SetWorkers caps the goroutines used by sweeps; n <= 0 restores the
// GOMAXPROCS default.
func (e *Explorer) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.workers = n
}

// poolSize resolves the worker count for a sweep of n independent cells.
func (e *Explorer) poolSize(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEach evaluates fn for every index in [0, n) across the worker pool
// and returns the first error; remaining cells are skipped after a
// failure.
func (e *Explorer) forEach(n int, fn func(i int) error) error {
	return parallel.ForEach(e.poolSize(n), n, func(_, i int) error { return fn(i) })
}

// AvgTempPoint is one cell of the Fig. 9-a sweep.
type AvgTempPoint struct {
	ChipPower float64 // W
	PVCSEL    float64 // W per laser (driver matched)
	// MeanONITemp averages the per-ONI average temperatures (°C).
	MeanONITemp float64
}

// SweepAvgTemp reproduces Fig. 9-a: mean ONI temperature across a
// chip-power × laser-power grid (P_driver = P_VCSEL, the paper's worst
// case). Rows iterate chip powers, columns laser powers.
func (e *Explorer) SweepAvgTemp(chipPowers, laserPowers []float64) ([][]AvgTempPoint, error) {
	if len(chipPowers) == 0 || len(laserPowers) == 0 {
		return nil, fmt.Errorf("dse: empty sweep axes")
	}
	out := make([][]AvgTempPoint, len(chipPowers))
	for i := range out {
		out[i] = make([]AvgTempPoint, len(laserPowers))
	}
	cols := len(laserPowers)
	err := e.forEach(len(chipPowers)*cols, func(k int) error {
		i, j := k/cols, k%cols
		chip, pv := chipPowers[i], laserPowers[j]
		res, err := e.basis.Evaluate(thermal.Powers{Chip: chip, VCSEL: pv, Driver: pv})
		if err != nil {
			return err
		}
		out[i][j] = AvgTempPoint{ChipPower: chip, PVCSEL: pv, MeanONITemp: res.MeanONITemp()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// GradientPoint is one cell of the Fig. 9-b sweep.
type GradientPoint struct {
	PVCSEL  float64
	PHeater float64
	// MeanGradient averages the per-ONI gradient temperatures (°C).
	MeanGradient float64
	// MaxGradient is the worst ONI's gradient (°C).
	MaxGradient float64
}

// SweepGradient reproduces Fig. 9-b: intra-ONI gradient across a laser ×
// heater power grid at fixed chip power.
func (e *Explorer) SweepGradient(chip float64, laserPowers, heaterPowers []float64) ([][]GradientPoint, error) {
	if len(laserPowers) == 0 || len(heaterPowers) == 0 {
		return nil, fmt.Errorf("dse: empty sweep axes")
	}
	out := make([][]GradientPoint, len(laserPowers))
	for i := range out {
		out[i] = make([]GradientPoint, len(heaterPowers))
	}
	cols := len(heaterPowers)
	err := e.forEach(len(laserPowers)*cols, func(k int) error {
		i, j := k/cols, k%cols
		gp, err := e.gradientAt(chip, laserPowers[i], heaterPowers[j])
		if err != nil {
			return err
		}
		out[i][j] = gp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (e *Explorer) gradientAt(chip, pv, ph float64) (GradientPoint, error) {
	res, err := e.basis.Evaluate(thermal.Powers{Chip: chip, VCSEL: pv, Driver: pv, Heater: ph})
	if err != nil {
		return GradientPoint{}, err
	}
	return GradientPoint{
		PVCSEL:       pv,
		PHeater:      ph,
		MeanGradient: res.MeanONIGradient(),
		MaxGradient:  res.MaxONIGradient(),
	}, nil
}

// HeaterOptimum is the result of the heater-power search.
type HeaterOptimum struct {
	PVCSEL  float64
	PHeater float64
	// Ratio is PHeater/PVCSEL — the paper's headline is ≈0.3.
	Ratio float64
	// MeanGradient is the gradient at the optimum.
	MeanGradient float64
	// GradientNoHeater is the gradient with the heater off.
	GradientNoHeater float64
}

// OptimalHeater finds the heater power in [0, maxHeater] minimising the
// mean intra-ONI gradient at the given chip and laser power, by golden
// -section search (the gradient is unimodal in the heater power: heating
// first closes the VCSEL–MR gap, then overshoots).
func (e *Explorer) OptimalHeater(chip, pv, maxHeater float64) (HeaterOptimum, error) {
	if pv <= 0 {
		return HeaterOptimum{}, fmt.Errorf("dse: laser power %g must be > 0", pv)
	}
	if maxHeater <= 0 {
		return HeaterOptimum{}, fmt.Errorf("dse: heater bound %g must be > 0", maxHeater)
	}
	f := func(ph float64) (float64, error) {
		gp, err := e.gradientAt(chip, pv, ph)
		if err != nil {
			return 0, err
		}
		return gp.MeanGradient, nil
	}
	base, err := f(0)
	if err != nil {
		return HeaterOptimum{}, err
	}

	const phi = 0.6180339887498949
	lo, hi := 0.0, maxHeater
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, err := f(x1)
	if err != nil {
		return HeaterOptimum{}, err
	}
	f2, err := f(x2)
	if err != nil {
		return HeaterOptimum{}, err
	}
	for iter := 0; iter < 60 && hi-lo > maxHeater*1e-4; iter++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			if f1, err = f(x1); err != nil {
				return HeaterOptimum{}, err
			}
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			if f2, err = f(x2); err != nil {
				return HeaterOptimum{}, err
			}
		}
	}
	best := (lo + hi) / 2
	bestG, err := f(best)
	if err != nil {
		return HeaterOptimum{}, err
	}
	// The heater never helps? Then 0 is optimal.
	if base <= bestG {
		best, bestG = 0, base
	}
	return HeaterOptimum{
		PVCSEL:           pv,
		PHeater:          best,
		Ratio:            best / pv,
		MeanGradient:     bestG,
		GradientNoHeater: base,
	}, nil
}

// ComparisonRow is one Fig. 10 row: gradient and average temperature with
// and without the MR heater at P_heater = ratio × P_VCSEL.
type ComparisonRow struct {
	PVCSEL                      float64
	GradientWithout             float64
	GradientWith                float64
	AvgTempWithout, AvgTempWith float64
}

// HeaterComparison reproduces Fig. 10 for the given heater ratio
// (the paper's optimum is 0.3).
func (e *Explorer) HeaterComparison(chip float64, laserPowers []float64, ratio float64) ([]ComparisonRow, error) {
	if ratio < 0 {
		return nil, fmt.Errorf("dse: negative heater ratio %g", ratio)
	}
	rows := make([]ComparisonRow, len(laserPowers))
	err := e.forEach(len(laserPowers), func(i int) error {
		pv := laserPowers[i]
		off, err := e.basis.Evaluate(thermal.Powers{Chip: chip, VCSEL: pv, Driver: pv})
		if err != nil {
			return err
		}
		on, err := e.basis.Evaluate(thermal.Powers{Chip: chip, VCSEL: pv, Driver: pv, Heater: ratio * pv})
		if err != nil {
			return err
		}
		rows[i] = ComparisonRow{
			PVCSEL:          pv,
			GradientWithout: meanGradient(off),
			GradientWith:    meanGradient(on),
			AvgTempWithout:  off.MeanONITemp(),
			AvgTempWith:     on.MeanONITemp(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func meanGradient(r *thermal.Result) float64 { return r.MeanONIGradient() }

// Feasibility reports whether an operating point satisfies the 1 °C
// intra-ONI gradient constraint and records the margins.
type Feasibility struct {
	Powers       thermal.Powers
	MeanGradient float64
	MaxGradient  float64
	// Feasible means every ONI satisfies the GradientLimit.
	Feasible bool
}

// CheckFeasibility evaluates the gradient constraint at one point.
func (e *Explorer) CheckFeasibility(p thermal.Powers) (Feasibility, error) {
	res, err := e.basis.Evaluate(p)
	if err != nil {
		return Feasibility{}, err
	}
	f := Feasibility{
		Powers:       p,
		MeanGradient: meanGradient(res),
		MaxGradient:  res.MaxONIGradient(),
	}
	f.Feasible = f.MaxGradient <= GradientLimit
	return f, nil
}

// MaxFeasibleLaserPower finds (by bisection) the largest P_VCSEL whose
// optimal-heater configuration still satisfies the gradient constraint.
// Returns 0 if even the smallest probe violates it.
func (e *Explorer) MaxFeasibleLaserPower(chip, ratio, bound float64) (float64, error) {
	if bound <= 0 {
		return 0, fmt.Errorf("dse: bound %g must be > 0", bound)
	}
	feasible := func(pv float64) (bool, error) {
		res, err := e.basis.Evaluate(thermal.Powers{Chip: chip, VCSEL: pv, Driver: pv, Heater: ratio * pv})
		if err != nil {
			return false, err
		}
		return res.MaxONIGradient() <= GradientLimit, nil
	}
	ok, err := feasible(bound)
	if err != nil {
		return 0, err
	}
	if ok {
		return bound, nil
	}
	lo, hi := 0.0, bound
	for iter := 0; iter < 50; iter++ {
		mid := (lo + hi) / 2
		ok, err := feasible(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// GradientCurveMinimum scans a gradient row (fixed PVCSEL, swept heater)
// and returns the index of its minimum — a helper for verifying the
// V-shape in tests and benches.
func GradientCurveMinimum(row []GradientPoint) (int, error) {
	if len(row) == 0 {
		return 0, fmt.Errorf("dse: empty row")
	}
	min := 0
	for i, p := range row {
		if math.IsNaN(p.MeanGradient) {
			return 0, fmt.Errorf("dse: NaN gradient at index %d", i)
		}
		if p.MeanGradient < row[min].MeanGradient {
			min = i
		}
	}
	return min, nil
}
