package dse

import (
	"math"
	"sync"
	"testing"

	"vcselnoc/internal/thermal"
)

var (
	once      sync.Once
	sharedEx  *Explorer
	sharedErr error
)

// fullRes skips tests whose assertions (intra-ONI gradients, the 1 °C
// feasibility constant, V-curve interior minima) are calibrated against
// the coarse mesh and are not meaningful on the -short preview mesh.
func fullRes(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("gradient-calibrated assertions need the full coarse mesh; skipped under -short")
	}
}

func explorer(t *testing.T) *Explorer {
	t.Helper()
	once.Do(func() {
		spec, err := thermal.PaperSpec()
		if err != nil {
			sharedErr = err
			return
		}
		spec.Res = thermal.CoarseResolution()
		if testing.Short() {
			spec.Res = thermal.PreviewResolution()
		}
		spec.SolverTol = 1e-7
		model, err := thermal.NewModel(spec)
		if err != nil {
			sharedErr = err
			return
		}
		basis, err := model.BuildBasis(nil)
		if err != nil {
			sharedErr = err
			return
		}
		sharedEx, sharedErr = NewExplorer(basis)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return sharedEx
}

func TestNewExplorerNil(t *testing.T) {
	if _, err := NewExplorer(nil); err == nil {
		t.Error("nil basis should error")
	}
}

func TestSweepAvgTempShape(t *testing.T) {
	ex := explorer(t)
	chips := []float64{12.5, 18.75, 25, 31.25}
	lasers := []float64{0, 2e-3, 4e-3, 6e-3}
	table, err := ex.SweepAvgTemp(chips, lasers)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 || len(table[0]) != 4 {
		t.Fatalf("table shape %dx%d", len(table), len(table[0]))
	}
	// Fig. 9-a invariants: temperature increases along both axes.
	for i := range table {
		for j := range table[i] {
			if i > 0 && table[i][j].MeanONITemp <= table[i-1][j].MeanONITemp {
				t.Errorf("temp not increasing with chip power at (%d,%d)", i, j)
			}
			if j > 0 && table[i][j].MeanONITemp <= table[i][j-1].MeanONITemp {
				t.Errorf("temp not increasing with laser power at (%d,%d)", i, j)
			}
		}
	}
	// The paper's slopes: ~+3.3 °C per +6.25 W chip power and ~+11 °C per
	// +6 mW laser power. Accept the right order of magnitude.
	chipSlope := table[3][0].MeanONITemp - table[0][0].MeanONITemp // over 18.75 W
	if chipSlope < 5 || chipSlope > 30 {
		t.Errorf("chip-power response %.1f °C over 18.75 W outside [5, 30]", chipSlope)
	}
	laserSlope := table[2][3].MeanONITemp - table[2][0].MeanONITemp // over 6 mW
	if laserSlope < 3 || laserSlope > 20 {
		t.Errorf("laser-power response %.1f °C over 6 mW outside [3, 20]", laserSlope)
	}
}

func TestSweepAvgTempErrors(t *testing.T) {
	ex := explorer(t)
	if _, err := ex.SweepAvgTemp(nil, []float64{1e-3}); err == nil {
		t.Error("empty chip axis should error")
	}
	if _, err := ex.SweepAvgTemp([]float64{25}, nil); err == nil {
		t.Error("empty laser axis should error")
	}
	if _, err := ex.SweepAvgTemp([]float64{-1}, []float64{1e-3}); err == nil {
		t.Error("negative chip power should error")
	}
}

func TestSweepGradientVShape(t *testing.T) {
	fullRes(t)
	ex := explorer(t)
	lasers := []float64{2e-3, 4e-3, 6e-3}
	heaters := []float64{0, 0.4e-3, 0.8e-3, 1.2e-3, 1.6e-3, 2.0e-3, 2.8e-3, 3.6e-3}
	table, err := ex.SweepGradient(25, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range table {
		minIdx, err := GradientCurveMinimum(row)
		if err != nil {
			t.Fatal(err)
		}
		if minIdx == 0 || minIdx == len(row)-1 {
			t.Errorf("laser %g: V-minimum at boundary (idx %d)", lasers[i], minIdx)
		}
		// Gradient grows with laser power at zero heater (Fig. 9-b).
		if i > 0 && row[0].MeanGradient <= table[i-1][0].MeanGradient {
			t.Errorf("no-heater gradient not increasing with laser power at row %d", i)
		}
	}
}

func TestOptimalHeater(t *testing.T) {
	fullRes(t)
	ex := explorer(t)
	opt, err := ex.OptimalHeater(25, 4e-3, 4e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Paper's headline: optimum near 0.3 × P_VCSEL. Coarse meshes shift
	// it; accept an interior fraction.
	if opt.Ratio <= 0.05 || opt.Ratio >= 0.8 {
		t.Errorf("optimal ratio %.2f outside (0.05, 0.8)", opt.Ratio)
	}
	if opt.MeanGradient >= opt.GradientNoHeater {
		t.Errorf("optimum gradient %.2f not below no-heater %.2f",
			opt.MeanGradient, opt.GradientNoHeater)
	}
	if opt.PVCSEL != 4e-3 {
		t.Errorf("echoed laser power %g", opt.PVCSEL)
	}
}

func TestOptimalHeaterErrors(t *testing.T) {
	ex := explorer(t)
	if _, err := ex.OptimalHeater(25, 0, 1e-3); err == nil {
		t.Error("zero laser power should error")
	}
	if _, err := ex.OptimalHeater(25, 1e-3, 0); err == nil {
		t.Error("zero bound should error")
	}
}

func TestHeaterComparison(t *testing.T) {
	fullRes(t)
	ex := explorer(t)
	lasers := []float64{1e-3, 2e-3, 4e-3, 6e-3}
	rows, err := ex.HeaterComparison(25, lasers, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for i, r := range rows {
		// Fig. 10: the heater reduces the gradient at every laser power...
		if r.GradientWith >= r.GradientWithout {
			t.Errorf("pv=%g: heater did not reduce gradient (%.2f vs %.2f)",
				r.PVCSEL, r.GradientWith, r.GradientWithout)
		}
		// ... at a small average-temperature cost.
		dAvg := r.AvgTempWith - r.AvgTempWithout
		if dAvg <= 0 || dAvg > 3 {
			t.Errorf("pv=%g: average-temp cost %.2f °C outside (0, 3]", r.PVCSEL, dAvg)
		}
		// Gradients grow with laser power.
		if i > 0 && r.GradientWithout <= rows[i-1].GradientWithout {
			t.Error("no-heater gradient not increasing")
		}
	}
	if _, err := ex.HeaterComparison(25, lasers, -0.1); err == nil {
		t.Error("negative ratio should error")
	}
}

func TestCheckFeasibility(t *testing.T) {
	fullRes(t)
	ex := explorer(t)
	// Tiny laser power: gradient well under 1 °C.
	low, err := ex.CheckFeasibility(thermal.Powers{Chip: 25, VCSEL: 0.2e-3, Driver: 0.2e-3})
	if err != nil {
		t.Fatal(err)
	}
	if !low.Feasible {
		t.Errorf("0.2 mW should be feasible (max gradient %.2f)", low.MaxGradient)
	}
	// Large laser power without heater: infeasible.
	high, err := ex.CheckFeasibility(thermal.Powers{Chip: 25, VCSEL: 6e-3, Driver: 6e-3})
	if err != nil {
		t.Fatal(err)
	}
	if high.Feasible {
		t.Errorf("6 mW without heater should violate the 1 °C constraint (max %.2f)", high.MaxGradient)
	}
	if high.MaxGradient < high.MeanGradient {
		t.Error("max gradient below mean")
	}
}

func TestMaxFeasibleLaserPower(t *testing.T) {
	fullRes(t)
	ex := explorer(t)
	pv, err := ex.MaxFeasibleLaserPower(25, 0.3, 8e-3)
	if err != nil {
		t.Fatal(err)
	}
	if pv <= 0 || pv >= 8e-3 {
		t.Fatalf("max feasible laser power %g outside (0, 8 mW)", pv)
	}
	// The returned point must indeed be feasible...
	f, err := ex.CheckFeasibility(thermal.Powers{Chip: 25, VCSEL: pv, Driver: pv, Heater: 0.3 * pv})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Feasible {
		t.Errorf("returned power %g infeasible (max gradient %.3f)", pv, f.MaxGradient)
	}
	// ... and slightly above it must not be.
	f2, err := ex.CheckFeasibility(thermal.Powers{Chip: 25, VCSEL: pv * 1.1, Driver: pv * 1.1, Heater: 0.3 * pv * 1.1})
	if err != nil {
		t.Fatal(err)
	}
	if f2.Feasible {
		t.Errorf("10%% above the maximum should be infeasible")
	}
	if _, err := ex.MaxFeasibleLaserPower(25, 0.3, 0); err == nil {
		t.Error("zero bound should error")
	}
}

func TestGradientCurveMinimum(t *testing.T) {
	row := []GradientPoint{
		{MeanGradient: 3}, {MeanGradient: 1}, {MeanGradient: 2},
	}
	idx, err := GradientCurveMinimum(row)
	if err != nil || idx != 1 {
		t.Errorf("minimum idx = %d, %v", idx, err)
	}
	if _, err := GradientCurveMinimum(nil); err == nil {
		t.Error("empty row should error")
	}
	bad := []GradientPoint{{MeanGradient: math.NaN()}}
	if _, err := GradientCurveMinimum(bad); err == nil {
		t.Error("NaN should error")
	}
}
