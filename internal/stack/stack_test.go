package stack

import (
	"math"
	"testing"

	"vcselnoc/internal/materials"
)

func TestDefaultSCCStack(t *testing.T) {
	s, err := DefaultSCC()
	if err != nil {
		t.Fatal(err)
	}
	// Layers in order, contiguous, total thickness plausible (~3.6 mm).
	spans := s.Spans()
	if len(spans) != 11 {
		t.Fatalf("got %d layers, want 11", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if math.Abs(spans[i].Z0-spans[i-1].Z1) > 1e-15 {
			t.Errorf("gap between %s and %s", spans[i-1].Name, spans[i].Name)
		}
	}
	total := s.TotalThickness()
	if total < 3e-3 || total > 4e-3 {
		t.Errorf("total thickness = %g m, want ~3.5 mm", total)
	}
	// Optical layer must sit between the BEOL (below) and the handle.
	opt, err := s.Find(LayerOptical)
	if err != nil {
		t.Fatal(err)
	}
	beol, err := s.Find(LayerBEOL)
	if err != nil {
		t.Fatal(err)
	}
	lid, err := s.Find(LayerLid)
	if err != nil {
		t.Fatal(err)
	}
	if !(beol.Z1 <= opt.Z0) {
		t.Error("BEOL should be below the optical layer")
	}
	if !(opt.Z1 <= lid.Z0) {
		t.Error("optical layer should be below the lid")
	}
	if math.Abs(opt.Z1-opt.Z0-4e-6) > 1e-12 {
		t.Errorf("optical layer thickness = %g, want 4 µm", opt.Z1-opt.Z0)
	}
}

func TestStackValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty stack should error")
	}
	if _, err := New([]Layer{{"", 1e-3, materials.Silicon}}); err == nil {
		t.Error("unnamed layer should error")
	}
	if _, err := New([]Layer{{"a", 0, materials.Silicon}}); err == nil {
		t.Error("zero thickness should error")
	}
	if _, err := New([]Layer{
		{"a", 1e-3, materials.Silicon},
		{"a", 1e-3, materials.Copper},
	}); err == nil {
		t.Error("duplicate names should error")
	}
	if _, err := New([]Layer{{"a", 1e-3, materials.Material{Name: "bad"}}}); err == nil {
		t.Error("invalid material should error")
	}
}

func TestFindAndLayerAt(t *testing.T) {
	s, err := New([]Layer{
		{"bottom", 1e-3, materials.Silicon},
		{"top", 2e-3, materials.Copper},
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := s.Find("top")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Z0 != 1e-3 || sp.Z1 != 3e-3 {
		t.Errorf("top span = [%g, %g]", sp.Z0, sp.Z1)
	}
	if _, err := s.Find("missing"); err == nil {
		t.Error("missing layer should error")
	}
	at, err := s.LayerAt(0.5e-3)
	if err != nil || at.Name != "bottom" {
		t.Errorf("LayerAt(0.5mm) = %v, %v", at.Name, err)
	}
	at, err = s.LayerAt(1e-3)
	if err != nil || at.Name != "top" {
		t.Errorf("LayerAt(1mm) = %v (boundary belongs to upper layer)", at.Name)
	}
	if _, err := s.LayerAt(-1); err == nil {
		t.Error("negative z should error")
	}
	if _, err := s.LayerAt(3e-3); err == nil {
		t.Error("z at top surface should error (half-open)")
	}
}

func TestHeatSinkDefault(t *testing.T) {
	h := DefaultHeatSink()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	eff, err := h.EffectiveH()
	if err != nil {
		t.Fatal(err)
	}
	// The fin array must strongly amplify the raw film coefficient.
	if eff < 5*h.AirH {
		t.Errorf("effective h = %g, want at least 5x the film coefficient %g", eff, h.AirH)
	}
	r, err := h.ThermalResistance()
	if err != nil {
		t.Fatal(err)
	}
	// A 125 W-class sink should be a few tenths of K/W.
	if r < 0.05 || r > 1.5 {
		t.Errorf("sink resistance = %g K/W, want 0.05–1.5", r)
	}
}

func TestHeatSinkFinEfficiency(t *testing.T) {
	h := DefaultHeatSink()
	eta, err := h.FinEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if eta <= 0 || eta > 1 {
		t.Errorf("fin efficiency = %g, want (0, 1]", eta)
	}
	// Thicker fins are more efficient (lower m).
	h2 := h
	h2.FinThickness = 4e-3
	h2.FinCount = 10
	eta2, err := h2.FinEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if eta2 <= eta {
		t.Errorf("thicker fins should be more efficient: %g vs %g", eta2, eta)
	}
	// No fins: zero efficiency contribution, effective h equals film h.
	h3 := h
	h3.FinCount = 0
	eff, err := h3.EffectiveH()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-h.AirH) > 1e-9 {
		t.Errorf("bare plate effective h = %g, want %g", eff, h.AirH)
	}
}

func TestHeatSinkValidation(t *testing.T) {
	bad := []func(*HeatSink){
		func(h *HeatSink) { h.BaseArea = 0 },
		func(h *HeatSink) { h.FinCount = -1 },
		func(h *HeatSink) { h.FinHeight = 0 },
		func(h *HeatSink) { h.AirH = 0 },
		func(h *HeatSink) { h.FinConductivity = 0 },
	}
	for i, mut := range bad {
		h := DefaultHeatSink()
		mut(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
	// Fins covering more than the base: EffectiveH must error.
	h := DefaultHeatSink()
	h.FinCount = 1000
	if _, err := h.EffectiveH(); err == nil {
		t.Error("overfull base should error")
	}
}
