// Package stack models the vertical structure of the 3D-stacked optical
// MPSoC package (Fig. 7 of the paper): the layer pile from the organic
// substrate up to the copper lid, and the finned heat sink that sets the
// top-side convection boundary condition.
package stack

import (
	"fmt"
	"math"

	"vcselnoc/internal/materials"
)

// Layer is one slab of the package pile.
type Layer struct {
	// Name identifies the layer ("optical", "beol", ...).
	Name string
	// Thickness in metres.
	Thickness float64
	// Mat is the layer material (possibly an effective medium).
	Mat materials.Material
}

// Span is a layer with its resolved vertical position.
type Span struct {
	Layer
	// Z0 and Z1 bound the layer: Z0 <= z < Z1, with z measured upward from
	// the bottom of the stack.
	Z0, Z1 float64
}

// Stack is an ordered pile of layers, listed bottom to top.
type Stack struct {
	layers []Layer
	spans  []Span
}

// New validates the layer list and resolves the vertical positions.
func New(layers []Layer) (*Stack, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("stack: no layers")
	}
	seen := make(map[string]bool, len(layers))
	spans := make([]Span, len(layers))
	z := 0.0
	for i, l := range layers {
		if l.Name == "" {
			return nil, fmt.Errorf("stack: layer %d unnamed", i)
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("stack: duplicate layer name %q", l.Name)
		}
		seen[l.Name] = true
		if l.Thickness <= 0 {
			return nil, fmt.Errorf("stack: layer %q thickness %g must be > 0", l.Name, l.Thickness)
		}
		if err := l.Mat.Valid(); err != nil {
			return nil, fmt.Errorf("stack: layer %q: %w", l.Name, err)
		}
		spans[i] = Span{Layer: l, Z0: z, Z1: z + l.Thickness}
		z += l.Thickness
	}
	return &Stack{layers: layers, spans: spans}, nil
}

// Spans returns the resolved layers bottom to top.
func (s *Stack) Spans() []Span { return s.spans }

// TotalThickness returns the pile height in metres.
func (s *Stack) TotalThickness() float64 { return s.spans[len(s.spans)-1].Z1 }

// Find returns the span of the named layer.
func (s *Stack) Find(name string) (Span, error) {
	for _, sp := range s.spans {
		if sp.Name == name {
			return sp, nil
		}
	}
	return Span{}, fmt.Errorf("stack: no layer named %q", name)
}

// LayerAt returns the span containing height z.
func (s *Stack) LayerAt(z float64) (Span, error) {
	if z < 0 || z >= s.TotalThickness() {
		return Span{}, fmt.Errorf("stack: z=%g outside [0, %g)", z, s.TotalThickness())
	}
	for _, sp := range s.spans {
		if z >= sp.Z0 && z < sp.Z1 {
			return sp, nil
		}
	}
	return Span{}, fmt.Errorf("stack: internal error locating z=%g", z)
}

// Canonical layer names used by the default SCC + ONoC stack. The thermal
// builder looks these up to place heat sources and probes.
const (
	LayerSubstrate  = "substrate"
	LayerC4         = "c4"
	LayerInterposer = "interposer"
	LayerDie        = "die-silicon"
	LayerBEOL       = "beol"
	LayerBonding    = "bonding"
	LayerOptical    = "optical"
	LayerHandle     = "handle-silicon"
	LayerEpoxy      = "epoxy"
	LayerTIM        = "tim"
	LayerLid        = "lid"
)

// DefaultSCC returns the paper's package pile (Fig. 7), bottom to top:
// substrate, C4 bumps, silicon interposer, thinned electrical die with its
// BEOL, bonding layer, the ~4 µm optical layer, handle silicon, epoxy,
// TIM and the 2 mm copper lid. The heat sink on top is modelled as a
// convection boundary (see HeatSink).
func DefaultSCC() (*Stack, error) {
	beol, err := materials.BEOLEffective(0.25)
	if err != nil {
		return nil, err
	}
	c4, err := materials.C4Effective(0.2)
	if err != nil {
		return nil, err
	}
	return New([]Layer{
		{LayerSubstrate, 1e-3, materials.OrganicSubstrate},
		{LayerC4, 75e-6, c4},
		{LayerInterposer, 200e-6, materials.Silicon},
		{LayerDie, 50e-6, materials.Silicon},
		{LayerBEOL, 15e-6, beol},
		{LayerBonding, 20e-6, materials.BondingLayer},
		{LayerOptical, 4e-6, materials.SiliconDioxide},
		{LayerHandle, 50e-6, materials.Silicon},
		{LayerEpoxy, 80e-6, materials.Epoxy},
		{LayerTIM, 75e-6, materials.TIM},
		{LayerLid, 2e-3, materials.Copper},
	})
}

// HeatSink models a finned air-cooled heat sink as an effective convection
// coefficient applied to the lid top surface.
type HeatSink struct {
	// BaseArea is the footprint of the sink base in m².
	BaseArea float64
	// FinCount is the number of straight fins.
	FinCount int
	// FinHeight, FinThickness and FinLength describe each fin in metres.
	FinHeight, FinThickness, FinLength float64
	// AirH is the convective film coefficient on the fin surfaces in
	// W/(m²·K) (forced air: 20–100).
	AirH float64
	// FinConductivity is the fin material conductivity (aluminium by
	// default).
	FinConductivity float64
}

// DefaultHeatSink returns a forced-air sink sized for the SCC package
// (125 W TDP class).
func DefaultHeatSink() HeatSink {
	return HeatSink{
		BaseArea:        (60e-3) * (60e-3),
		FinCount:        30,
		FinHeight:       30e-3,
		FinThickness:    1e-3,
		FinLength:       60e-3,
		AirH:            60,
		FinConductivity: materials.Aluminium.Conductivity,
	}
}

// Validate reports geometry errors.
func (h HeatSink) Validate() error {
	switch {
	case h.BaseArea <= 0:
		return fmt.Errorf("stack: heat sink base area %g must be > 0", h.BaseArea)
	case h.FinCount < 0:
		return fmt.Errorf("stack: negative fin count %d", h.FinCount)
	case h.FinCount > 0 && (h.FinHeight <= 0 || h.FinThickness <= 0 || h.FinLength <= 0):
		return fmt.Errorf("stack: invalid fin geometry h=%g t=%g l=%g", h.FinHeight, h.FinThickness, h.FinLength)
	case h.AirH <= 0:
		return fmt.Errorf("stack: air film coefficient %g must be > 0", h.AirH)
	case h.FinCount > 0 && h.FinConductivity <= 0:
		return fmt.Errorf("stack: fin conductivity %g must be > 0", h.FinConductivity)
	}
	return nil
}

// FinEfficiency returns the classic straight-fin efficiency
// tanh(mL)/(mL) with m = sqrt(2h/(k·t)).
func (h HeatSink) FinEfficiency() (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if h.FinCount == 0 {
		return 0, nil
	}
	m := math.Sqrt(2 * h.AirH / (h.FinConductivity * h.FinThickness))
	ml := m * h.FinHeight
	if ml == 0 {
		return 1, nil
	}
	return math.Tanh(ml) / ml, nil
}

// EffectiveH returns the equivalent convection coefficient referred to the
// base area: the finned surface multiplies the raw film coefficient by the
// effective area ratio.
func (h HeatSink) EffectiveH() (float64, error) {
	eta, err := h.FinEfficiency()
	if err != nil {
		return 0, err
	}
	finArea := float64(h.FinCount) * 2 * h.FinHeight * h.FinLength
	baseExposed := h.BaseArea - float64(h.FinCount)*h.FinThickness*h.FinLength
	if baseExposed < 0 {
		return 0, fmt.Errorf("stack: fins cover more than the base area")
	}
	total := h.AirH * (baseExposed + eta*finArea)
	return total / h.BaseArea, nil
}

// ThermalResistance returns the sink's bulk resistance in K/W for the
// configured base area.
func (h HeatSink) ThermalResistance() (float64, error) {
	he, err := h.EffectiveH()
	if err != nil {
		return 0, err
	}
	return 1 / (he * h.BaseArea), nil
}
