package snr

import (
	"math"
	"testing"

	"vcselnoc/internal/ornoc"
)

func ringOf(t *testing.T, n int, pitch float64) *ornoc.Ring {
	t.Helper()
	nodes := make([]ornoc.Node, n)
	for i := range nodes {
		// Rectangular loop: half the nodes along the bottom, half on top.
		half := (n + 1) / 2
		if i < half {
			nodes[i] = ornoc.Node{SiteIndex: i, X: float64(i) * pitch, Y: 0}
		} else {
			nodes[i] = ornoc.Node{SiteIndex: i, X: float64(n-1-i) * pitch, Y: pitch}
		}
	}
	r, err := ornoc.NewRing(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func uniformTemps(n int, temp float64) []float64 {
	ts := make([]float64, n)
	for i := range ts {
		ts[i] = temp
	}
	return ts
}

func assignedNeighbour(t *testing.T, r *ornoc.Ring) []ornoc.Communication {
	t.Helper()
	comms := ornoc.NeighbourPattern(r.N())
	if _, err := r.AssignChannels(comms); err != nil {
		t.Fatal(err)
	}
	return comms
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.CouplingEfficiency = 0 },
		func(c *Config) { c.CouplingEfficiency = 1.5 },
		func(c *Config) { c.ChannelSpacingNM = 0 },
		func(c *Config) { c.BaseLambdaNM = -1 },
		func(c *Config) { c.PVCSEL = -1 },
		func(c *Config) { c.MR.FWHMNM = 0 },
		func(c *Config) { c.VCSEL.S0 = 0 },
	}
	for i, mut := range mutations {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d should fail", i)
		}
	}
}

// TestIsothermalHighSNR: with all ONIs at the same temperature, wavelengths
// stay aligned, destinations drop ~100 % of their signals, and the SNR is
// very high.
func TestIsothermalHighSNR(t *testing.T) {
	r := ringOf(t, 4, 4e-3)
	comms := assignedNeighbour(t, r)
	rep, err := Evaluate(DefaultConfig(), Input{
		Ring: r, Comms: comms, NodeTemps: uniformTemps(4, 50),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstSNRdB < 40 {
		t.Errorf("isothermal worst SNR = %.1f dB, want > 40", rep.WorstSNRdB)
	}
	if !rep.AllDetected {
		t.Error("all signals should clear the -20 dBm floor")
	}
	for _, cr := range rep.PerComm {
		if cr.SignalW <= 0 {
			t.Errorf("comm %d->%d no signal", cr.Comm.Src, cr.Comm.Dst)
		}
		if cr.SignalW >= cr.LaunchW {
			t.Errorf("signal %g not attenuated below launch %g", cr.SignalW, cr.LaunchW)
		}
	}
}

// TestGradientDegradesSNR: the paper's central SNR claim — a temperature
// spread across ONIs lowers the worst-case SNR.
func TestGradientDegradesSNR(t *testing.T) {
	r := ringOf(t, 8, 4e-3)
	comms := assignedNeighbour(t, r)
	iso, err := Evaluate(DefaultConfig(), Input{
		Ring: r, Comms: comms, NodeTemps: uniformTemps(8, 55),
	})
	if err != nil {
		t.Fatal(err)
	}
	temps := uniformTemps(8, 55)
	for i := range temps {
		temps[i] += float64(i) * 0.8 // 5.6 °C spread
	}
	grad, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: temps})
	if err != nil {
		t.Fatal(err)
	}
	if grad.WorstSNRdB >= iso.WorstSNRdB {
		t.Errorf("gradient SNR %.1f dB not below isothermal %.1f dB",
			grad.WorstSNRdB, iso.WorstSNRdB)
	}
	if grad.MeanCrosstalkW <= iso.MeanCrosstalkW {
		t.Error("gradient should increase crosstalk")
	}
}

// TestLongerRingLowerSNR: a bigger ring spans more of the die (larger
// temperature spread under the same spatial field) and its communications
// cross more intermediate MRs. With half-ring communications the worst
// SNR must fall with ring size — Fig. 12's x-axis trend.
func TestLongerRingLowerSNR(t *testing.T) {
	cfg := DefaultConfig()
	var prev float64 = math.Inf(1)
	for _, n := range []int{4, 8, 16} {
		r := ringOf(t, n, 4e-3)
		comms := ornoc.PairedPattern(n)
		if _, err := r.AssignChannels(comms); err != nil {
			t.Fatal(err)
		}
		// Fixed spatial field: temperature rises 0.25 °C per mm across the
		// die, so bigger rings see proportionally bigger spreads.
		temps := make([]float64, n)
		for i, node := range r.Nodes {
			temps[i] = 55 + 250*node.X
		}
		rep, err := Evaluate(cfg, Input{Ring: r, Comms: comms, NodeTemps: temps})
		if err != nil {
			t.Fatal(err)
		}
		if rep.WorstSNRdB >= prev {
			t.Errorf("n=%d: SNR %.1f dB not below previous %.1f dB", n, rep.WorstSNRdB, prev)
		}
		prev = rep.WorstSNRdB
	}
}

// TestHotterChipLowerSignal: higher ONI temperatures reduce laser output
// and hence the received signal power.
func TestHotterChipLowerSignal(t *testing.T) {
	r := ringOf(t, 4, 4e-3)
	comms := assignedNeighbour(t, r)
	cool, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(4, 45)})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(4, 62)})
	if err != nil {
		t.Fatal(err)
	}
	if hot.MeanSignalW >= cool.MeanSignalW {
		t.Errorf("hotter chip should emit less: %g vs %g", hot.MeanSignalW, cool.MeanSignalW)
	}
}

func TestEnergyConservation(t *testing.T) {
	// Total deposited power can never exceed launched power.
	r := ringOf(t, 6, 4e-3)
	comms := assignedNeighbour(t, r)
	temps := uniformTemps(6, 50)
	temps[2] = 58
	temps[4] = 44
	rep, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: temps})
	if err != nil {
		t.Fatal(err)
	}
	var launched, deposited float64
	for _, cr := range rep.PerComm {
		launched += cr.LaunchW
		deposited += cr.SignalW + cr.CrosstalkW
	}
	if deposited > launched {
		t.Errorf("deposited %g exceeds launched %g", deposited, launched)
	}
}

func TestEvaluateErrors(t *testing.T) {
	r := ringOf(t, 4, 4e-3)
	comms := assignedNeighbour(t, r)
	cfg := DefaultConfig()
	if _, err := Evaluate(cfg, Input{Ring: nil, Comms: comms, NodeTemps: uniformTemps(4, 50)}); err == nil {
		t.Error("nil ring should error")
	}
	if _, err := Evaluate(cfg, Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(3, 50)}); err == nil {
		t.Error("temp count mismatch should error")
	}
	if _, err := Evaluate(cfg, Input{Ring: r, Comms: nil, NodeTemps: uniformTemps(4, 50)}); err == nil {
		t.Error("empty comms should error")
	}
	bad := []ornoc.Communication{{Src: 0, Dst: 1, Channel: -1}}
	if _, err := Evaluate(cfg, Input{Ring: r, Comms: bad, NodeTemps: uniformTemps(4, 50)}); err == nil {
		t.Error("unassigned channel should error")
	}
	nan := uniformTemps(4, 50)
	nan[1] = math.NaN()
	if _, err := Evaluate(cfg, Input{Ring: r, Comms: comms, NodeTemps: nan}); err == nil {
		t.Error("NaN temps should error")
	}
	// A laser that cannot reach the dissipation target must error.
	cfg2 := DefaultConfig()
	cfg2.PVCSEL = 1 // 1 W is unreachable
	if _, err := Evaluate(cfg2, Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(4, 50)}); err == nil {
		t.Error("unreachable laser power should error")
	}
}

func TestChannelSeparationLimitsCrosstalk(t *testing.T) {
	// Two overlapping communications on different channels: crosstalk
	// should fall as the channel spacing grows.
	r := ringOf(t, 4, 4e-3)
	comms := []ornoc.Communication{
		{Src: 0, Dst: 2, Channel: -1},
		{Src: 1, Dst: 3, Channel: -1},
	}
	if _, err := r.AssignChannels(comms); err != nil {
		t.Fatal(err)
	}
	if comms[0].Channel == comms[1].Channel {
		t.Fatal("overlapping comms must get distinct channels")
	}
	prevXtalk := math.Inf(1)
	for _, spacing := range []float64{1.6, 3.2, 6.4} {
		cfg := DefaultConfig()
		cfg.ChannelSpacingNM = spacing
		rep, err := Evaluate(cfg, Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(4, 50)})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MeanCrosstalkW >= prevXtalk {
			t.Errorf("spacing %g: crosstalk %g did not fall", spacing, rep.MeanCrosstalkW)
		}
		prevXtalk = rep.MeanCrosstalkW
	}
}

func TestReportConsistency(t *testing.T) {
	r := ringOf(t, 8, 3e-3)
	comms := assignedNeighbour(t, r)
	temps := uniformTemps(8, 52)
	for i := range temps {
		temps[i] += float64(i%3) * 0.5
	}
	rep, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: temps})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerComm) != len(comms) {
		t.Fatalf("%d reports for %d comms", len(rep.PerComm), len(comms))
	}
	worst := math.Inf(1)
	for _, cr := range rep.PerComm {
		if cr.SNRdB < worst {
			worst = cr.SNRdB
		}
		if cr.PathLengthM <= 0 {
			t.Error("non-positive path length")
		}
		if cr.SignalLambdaNM < 1540 || cr.SignalLambdaNM > 1570 {
			t.Errorf("wavelength %g nm out of band", cr.SignalLambdaNM)
		}
	}
	if worst != rep.WorstSNRdB {
		t.Errorf("worst SNR mismatch: %g vs %g", worst, rep.WorstSNRdB)
	}
}

// TestCouplingScaleInvariance: scaling every launch power by the same
// factor (the taper coupling efficiency) scales signal and crosstalk
// identically, so the SNR in dB must not move — only detectability may.
func TestCouplingScaleInvariance(t *testing.T) {
	r := ringOf(t, 8, 4e-3)
	comms := assignedNeighbour(t, r)
	temps := uniformTemps(8, 55)
	for i := range temps {
		temps[i] += float64(i%2) * 1.2
	}
	base := DefaultConfig()
	base.CouplingEfficiency = 0.7
	repA, err := Evaluate(base, Input{Ring: r, Comms: comms, NodeTemps: temps})
	if err != nil {
		t.Fatal(err)
	}
	halved := base
	halved.CouplingEfficiency = 0.35
	repB, err := Evaluate(halved, Input{Ring: r, Comms: comms, NodeTemps: temps})
	if err != nil {
		t.Fatal(err)
	}
	for i := range repA.PerComm {
		a, b := repA.PerComm[i], repB.PerComm[i]
		if math.Abs(a.SNRdB-b.SNRdB) > 1e-9 {
			t.Errorf("comm %d: SNR moved with coupling (%.3f vs %.3f dB)", i, a.SNRdB, b.SNRdB)
		}
		if math.Abs(b.SignalW-a.SignalW/2) > 1e-15 {
			t.Errorf("comm %d: signal did not halve", i)
		}
	}
}

// TestHeaterAlignedTempsRecoverSNR: shifting every node by the same
// temperature offset preserves alignment (wavelengths and resonances
// drift together), so crosstalk must not grow — only the laser output
// changes. This is the physical basis for the paper's gradient-first
// (rather than absolute-temperature-first) design target.
func TestHeaterAlignedTempsRecoverSNR(t *testing.T) {
	r := ringOf(t, 6, 4e-3)
	comms := assignedNeighbour(t, r)
	repCool, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(6, 45)})
	if err != nil {
		t.Fatal(err)
	}
	repHot, err := Evaluate(DefaultConfig(), Input{Ring: r, Comms: comms, NodeTemps: uniformTemps(6, 58)})
	if err != nil {
		t.Fatal(err)
	}
	// Both isothermal: crosstalk stays negligible relative to signal.
	for _, rep := range []*Report{repCool, repHot} {
		if rep.MeanCrosstalkW > 1e-3*rep.MeanSignalW {
			t.Errorf("isothermal crosstalk %.3g not negligible vs signal %.3g",
				rep.MeanCrosstalkW, rep.MeanSignalW)
		}
	}
	// But the hot chip emits less light.
	if repHot.MeanSignalW >= repCool.MeanSignalW {
		t.Error("hot isothermal chip should emit less")
	}
}
