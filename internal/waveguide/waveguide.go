// Package waveguide provides the optical loss model for the silicon
// waveguides connecting ONIs: propagation loss per length, bend loss,
// waveguide-crossing loss and per-ring pass-by loss. The loss budget also
// serves the crossbar baseline comparison (ORNoC vs Matrix, λ-router,
// Snake), which is dominated by crossing counts.
package waveguide

import (
	"fmt"
	"math"

	"vcselnoc/internal/units"
)

// LossBudget gathers the per-element losses (all in dB, positive numbers).
type LossBudget struct {
	// PropagationDBPerCM is the straight-waveguide loss (0.5 dB/cm in the
	// paper, after Biberman et al.).
	PropagationDBPerCM float64
	// BendDB is the loss per 90° bend.
	BendDB float64
	// CrossingDB is the loss per waveguide crossing.
	CrossingDB float64
	// PassByDB is the parasitic loss each time a signal passes a
	// non-resonant ring on the bus.
	PassByDB float64
	// DropDB is the insertion loss of an on-resonance drop operation.
	DropDB float64
}

// DefaultLossBudget returns the technology point used by the paper and its
// loss-comparison reference [20].
func DefaultLossBudget() LossBudget {
	return LossBudget{
		PropagationDBPerCM: 0.5,
		BendDB:             0.005,
		CrossingDB:         0.12,
		PassByDB:           0.005,
		DropDB:             0.5,
	}
}

// Validate reports budget errors.
func (b LossBudget) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{
		{"propagation", b.PropagationDBPerCM},
		{"bend", b.BendDB},
		{"crossing", b.CrossingDB},
		{"pass-by", b.PassByDB},
		{"drop", b.DropDB},
	} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("waveguide: %s loss %g must be >= 0 and finite", v.name, v.val)
		}
	}
	return nil
}

// PropagationLossDB returns the propagation loss in dB over a length in
// metres.
func (b LossBudget) PropagationLossDB(lengthM float64) (float64, error) {
	if lengthM < 0 {
		return 0, fmt.Errorf("waveguide: negative length %g", lengthM)
	}
	return b.PropagationDBPerCM * lengthM / units.Centimetre, nil
}

// PathLossDB sums the loss of a path with the given geometry.
func (b LossBudget) PathLossDB(lengthM float64, bends, crossings, ringPassBys int, drops int) (float64, error) {
	if bends < 0 || crossings < 0 || ringPassBys < 0 || drops < 0 {
		return 0, fmt.Errorf("waveguide: negative element count")
	}
	prop, err := b.PropagationLossDB(lengthM)
	if err != nil {
		return 0, err
	}
	return prop +
		float64(bends)*b.BendDB +
		float64(crossings)*b.CrossingDB +
		float64(ringPassBys)*b.PassByDB +
		float64(drops)*b.DropDB, nil
}

// Transmission converts a loss in dB to a linear power transmission
// fraction in (0, 1].
func Transmission(lossDB float64) (float64, error) {
	if lossDB < 0 {
		return 0, fmt.Errorf("waveguide: negative loss %g dB", lossDB)
	}
	return units.FromDB(-lossDB), nil
}

// Path describes one physical route between a transmitter and a receiver.
type Path struct {
	LengthM    float64
	Bends      int
	Crossings  int
	RingPassBy int
}

// LossDB returns the path loss excluding the final drop.
func (p Path) LossDB(b LossBudget) (float64, error) {
	return b.PathLossDB(p.LengthM, p.Bends, p.Crossings, p.RingPassBy, 0)
}
