package waveguide

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultBudgetValid(t *testing.T) {
	if err := DefaultLossBudget().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetValidation(t *testing.T) {
	b := DefaultLossBudget()
	b.PropagationDBPerCM = -1
	if err := b.Validate(); err == nil {
		t.Error("negative propagation loss should fail")
	}
	b = DefaultLossBudget()
	b.CrossingDB = math.NaN()
	if err := b.Validate(); err == nil {
		t.Error("NaN crossing loss should fail")
	}
}

func TestPropagationLoss(t *testing.T) {
	b := DefaultLossBudget()
	// Paper: 0.5 dB/cm. 46.8 mm → 2.34 dB (the longest case in Fig. 11).
	loss, err := b.PropagationLossDB(46.8e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss-2.34) > 1e-9 {
		t.Errorf("loss over 46.8mm = %g dB, want 2.34", loss)
	}
	// 18 mm → 0.9 dB.
	loss18, err := b.PropagationLossDB(18e-3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loss18-0.9) > 1e-9 {
		t.Errorf("loss over 18mm = %g dB, want 0.9", loss18)
	}
	if _, err := b.PropagationLossDB(-1); err == nil {
		t.Error("negative length should error")
	}
}

func TestPathLoss(t *testing.T) {
	b := DefaultLossBudget()
	loss, err := b.PathLossDB(1e-2, 2, 3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 + 2*0.005 + 3*0.12 + 10*0.005 + 1*0.5
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("path loss = %g, want %g", loss, want)
	}
	if _, err := b.PathLossDB(1, -1, 0, 0, 0); err == nil {
		t.Error("negative count should error")
	}
}

func TestTransmission(t *testing.T) {
	tr, err := Transmission(3.0103)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr-0.5) > 1e-4 {
		t.Errorf("3 dB transmission = %g, want 0.5", tr)
	}
	if tr0, _ := Transmission(0); tr0 != 1 {
		t.Errorf("0 dB transmission = %g, want 1", tr0)
	}
	if _, err := Transmission(-1); err == nil {
		t.Error("negative loss should error")
	}
}

func TestPathLossDB(t *testing.T) {
	b := DefaultLossBudget()
	p := Path{LengthM: 2e-2, Bends: 4, Crossings: 2, RingPassBy: 6}
	loss, err := p.LossDB(b)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + 4*0.005 + 2*0.12 + 6*0.005
	if math.Abs(loss-want) > 1e-12 {
		t.Errorf("path loss = %g, want %g", loss, want)
	}
}

// Property: loss is additive over path concatenation.
func TestQuickLossAdditive(t *testing.T) {
	b := DefaultLossBudget()
	f := func(l1, l2 float64, c1, c2 uint8) bool {
		la := math.Mod(math.Abs(l1), 0.1)
		lb := math.Mod(math.Abs(l2), 0.1)
		x1, err1 := b.PathLossDB(la, 0, int(c1%10), 0, 0)
		x2, err2 := b.PathLossDB(lb, 0, int(c2%10), 0, 0)
		both, err3 := b.PathLossDB(la+lb, 0, int(c1%10)+int(c2%10), 0, 0)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return math.Abs(x1+x2-both) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: transmission is in (0, 1] and multiplicative where loss is
// additive.
func TestQuickTransmissionMultiplicative(t *testing.T) {
	f := func(a, b float64) bool {
		la := math.Mod(math.Abs(a), 30)
		lb := math.Mod(math.Abs(b), 30)
		ta, err1 := Transmission(la)
		tb, err2 := Transmission(lb)
		tab, err3 := Transmission(la + lb)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if ta <= 0 || ta > 1 || tb <= 0 || tb > 1 {
			return false
		}
		return math.Abs(ta*tb-tab) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
