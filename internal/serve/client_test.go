package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/fleet/chaos"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/thermal"
)

// previewSpec is the shared worker/in-process spec for shard tests.
func previewSpec(t *testing.T) thermal.Spec {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	return spec
}

// localExplorer builds the in-process reference explorer.
func localExplorer(t *testing.T, spec thermal.Spec) *dse.Explorer {
	t.Helper()
	m, err := core.NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explorer(activity.Uniform{})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

// startWorker spins one warm vcseld-equivalent on an httptest listener.
// Warming up front (the daemon's -warm flow) keeps the cold basis build
// out of the request path, whose client timeout a -race build would
// otherwise blow.
func startWorker(t *testing.T, spec thermal.Spec) *httptest.Server {
	t.Helper()
	s, err := New(Config{Specs: map[string]thermal.Spec{DefaultSpec: spec}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Warm(DefaultSpec); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// patientClient widens the HTTP timeout for instrumented (-race) runs.
func patientClient(c *ShardClient) *ShardClient {
	c.HTTPClient = &http.Client{Timeout: 3 * time.Minute}
	return c
}

// TestShardedSweepMatchesInProcess is the acceptance test of the sharded
// DSE path: a SweepGradient and a SweepAvgTemp scattered across two live
// workers must reproduce the in-process Explorer grids exactly — same
// values (bit-for-bit), same row order.
func TestShardedSweepMatchesInProcess(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	ex := localExplorer(t, spec)
	w1 := startWorker(t, spec)
	w2 := startWorker(t, spec)

	client, err := NewShardClient(w1.URL+","+w2.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	if len(client.Workers) != 2 {
		t.Fatalf("parsed %d workers", len(client.Workers))
	}

	chip := 25.0
	lasers := []float64{1e-3, 2e-3, 3e-3, 4e-3, 5e-3}
	heaters := []float64{0, 0.5e-3, 1e-3, 1.5e-3}

	want, err := ex.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("sharded SweepGradient differs from in-process grid")
	}

	chips := []float64{20, 25, 30}
	wantT, err := ex.SweepAvgTemp(chips, lasers)
	if err != nil {
		t.Fatal(err)
	}
	gotT, err := client.SweepAvgTemp(chips, lasers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotT, wantT) {
		t.Fatal("sharded SweepAvgTemp differs from in-process grid")
	}
}

// TestShardRerouteToSurvivor: chunks landing on a dead worker are
// rerouted to the surviving worker — not stolen back onto the local
// fallback — and the merged grid stays exact.
func TestShardRerouteToSurvivor(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	ex := localExplorer(t, spec)
	alive := startWorker(t, spec)
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from now on

	var fallbacks atomic.Int32
	client, err := NewShardClient(alive.URL+","+dead.URL, Scenario{}, func() (*dse.Explorer, error) {
		fallbacks.Add(1)
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	// Two chunks of one row each: one lands on the dead worker.
	client.ChunkRows = 1
	client.RetryBase = time.Millisecond

	chip := 25.0
	lasers := []float64{2e-3, 4e-3}
	heaters := []float64{0, 1e-3}
	want, err := ex.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("grid with reroute differs from in-process grid")
	}
	if fallbacks.Load() != 0 {
		t.Fatalf("fallback built %d times, want 0: a surviving worker should absorb the chunk", fallbacks.Load())
	}
}

// TestShardLocalRetry: only when every worker is dead — all remote
// attempts exhausted — does the chunk land on the local fallback, built
// once.
func TestShardLocalRetry(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	ex := localExplorer(t, spec)
	dead1 := httptest.NewServer(http.NotFoundHandler())
	dead1.Close()
	dead2 := httptest.NewServer(http.NotFoundHandler())
	dead2.Close()

	var fallbacks atomic.Int32
	client, err := NewShardClient(dead1.URL+","+dead2.URL, Scenario{}, func() (*dse.Explorer, error) {
		fallbacks.Add(1)
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	client.ChunkRows = 1
	client.ChunkAttempts = 2
	client.RetryBase = time.Millisecond

	chip := 25.0
	lasers := []float64{2e-3, 4e-3}
	heaters := []float64{0, 1e-3}
	want, err := ex.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.SweepGradient(chip, lasers, heaters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("grid with local retry differs from in-process grid")
	}
	if fallbacks.Load() != 1 {
		t.Fatalf("fallback built %d times, want 1 (single-flight)", fallbacks.Load())
	}
}

// TestShardHonours429: an admission shed is waited out on its worker's
// advertised schedule, not treated as a failure — no reroute, no
// fallback, and the sweep still completes.
func TestShardHonours429(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	w := startWorker(t, spec)
	rule := &chaos.Rule{Method: http.MethodPost, PathPrefix: "/v1/sweep/", Status: http.StatusTooManyRequests, RetryAfter: 30 * time.Millisecond, Count: 2}
	proxy, ps := chaos.Serve(w.URL, rule)
	t.Cleanup(ps.Close)

	client, err := NewShardClient(ps.URL, Scenario{}, func() (*dse.Explorer, error) {
		t.Error("429 pushed the chunk onto the local fallback")
		return nil, fmt.Errorf("no fallback expected")
	})
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	client.ChunkAttempts = 4
	client.RetryBase = time.Millisecond

	start := time.Now()
	if _, err := client.SweepGradient(25, []float64{1e-3}, []float64{0}); err != nil {
		t.Fatalf("sweep through two sheds failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("sweep finished in %v: the two 30 ms shed schedules were not honoured", elapsed)
	}
	if got := proxy.Applied(rule); got != 2 {
		t.Errorf("shed rule applied %d times, want 2", got)
	}
}

// TestShardPermanentClientError: a non-shed 4xx is deterministic — it
// must not burn retry attempts before surfacing.
func TestShardPermanentClientError(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"serve: bad request"}`, http.StatusBadRequest)
	}))
	t.Cleanup(hs.Close)
	client, err := NewShardClient(hs.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.RetryBase = time.Millisecond
	if _, err := client.SweepGradient(25, []float64{1e-3}, []float64{0}); err == nil {
		t.Fatal("bad request accepted")
	}
	if hits.Load() != 1 {
		t.Fatalf("worker hit %d times for a deterministic 400, want 1", hits.Load())
	}
}

// TestShardNoFallbackPropagates: without a local fallback, a dead worker
// fails the sweep with its error.
func TestShardNoFallbackPropagates(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	client, err := NewShardClient(dead.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client.RetryBase = time.Millisecond
	if _, err := client.SweepGradient(25, []float64{1e-3}, []float64{0}); err == nil {
		t.Fatal("sweep against a dead fleet succeeded")
	}
}

// TestShardWorkerErrorEnvelope: a worker's 4xx JSON error surfaces in
// the client error rather than a bare status code.
func TestShardWorkerErrorEnvelope(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	w := startWorker(t, spec)
	client, err := NewShardClient(w.URL, Scenario{Activity: "volcano"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	_, err = client.SweepGradient(25, []float64{1e-3}, []float64{0})
	if err == nil {
		t.Fatal("unknown activity accepted")
	}
	if !strings.Contains(err.Error(), "volcano") {
		t.Fatalf("error %q does not surface the worker message", err)
	}
}

// TestNewShardClientParsing pins the -shards flag format.
func TestNewShardClientParsing(t *testing.T) {
	c, err := NewShardClient(" host1:8080 , http://host2:9090/ ", Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://host1:8080", "http://host2:9090"}
	if !reflect.DeepEqual(c.Workers, want) {
		t.Fatalf("workers = %v, want %v", c.Workers, want)
	}
	if _, err := NewShardClient(" , ", Scenario{}, nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

// TestChunking pins the partition: contiguous, covering, capped.
func TestChunking(t *testing.T) {
	c := &ShardClient{Workers: []string{"a", "b"}}
	for _, tc := range []struct {
		total, chunkRows int
		want             []chunk
	}{
		{5, 0, []chunk{{0, 3}, {3, 5}}},
		{4, 1, []chunk{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{3, 10, []chunk{{0, 3}}},
	} {
		c.ChunkRows = tc.chunkRows
		got := c.chunks(tc.total)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("chunks(%d) with ChunkRows=%d = %v, want %v", tc.total, tc.chunkRows, got, tc.want)
		}
	}
}

// TestShardClientSpecMismatch: a worker that does not know the requested
// spec rejects the chunk; with a fallback the sweep still completes.
func TestShardClientSpecMismatch(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	ex := localExplorer(t, spec)
	w := startWorker(t, spec)
	client, err := NewShardClient(w.URL, Scenario{Spec: "exotic"}, func() (*dse.Explorer, error) {
		return ex, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	want, err := ex.SweepGradient(25, []float64{1e-3, 2e-3}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.SweepGradient(25, []float64{1e-3, 2e-3}, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fallback grid differs from in-process grid")
	}
}

// TestShardPreflightResolutionMismatch: a reachable worker meshing at a
// different resolution must fail the sweep outright — merging rows from
// two discretisations would be silently wrong data.
func TestShardPreflightResolutionMismatch(t *testing.T) {
	skipShort(t)
	spec := previewSpec(t)
	w := startWorker(t, spec)
	client, err := NewShardClient(w.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	patientClient(client)
	fastRes := thermal.FastResolution()
	client.ExpectRes = &fastRes
	_, err = client.SweepGradient(25, []float64{1e-3}, []float64{0})
	if err == nil || !strings.Contains(err.Error(), "refusing to merge") {
		t.Fatalf("resolution mismatch not rejected: %v", err)
	}

	// A solver mismatch is rejected the same way: locally retried
	// chunks would differ from fleet rows at the solve tolerance.
	solverClient, err := NewShardClient(w.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	patientClient(solverClient)
	solverClient.ExpectSolver = "ssor-cg" // worker auto-selects jacobi-cg at preview
	_, err = solverClient.SweepGradient(25, []float64{1e-3}, []float64{0})
	if err == nil || !strings.Contains(err.Error(), "ssor-cg") {
		t.Fatalf("solver mismatch not rejected: %v", err)
	}

	// Matching expectations pass preflight and sweep normally.
	match, err := NewShardClient(w.URL, Scenario{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	patientClient(match)
	res := spec.Res
	match.ExpectRes = &res
	match.ExpectSolver = spec.EffectiveSolver()
	if _, err := match.SweepGradient(25, []float64{1e-3}, []float64{0}); err != nil {
		t.Fatalf("matching preflight rejected: %v", err)
	}
}

// verify the error message includes the failed row range for operators.
func TestShardErrorNamesRows(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	client, err := NewShardClient(dead.URL, Scenario{}, func() (*dse.Explorer, error) {
		return nil, fmt.Errorf("no local model")
	})
	if err != nil {
		t.Fatal(err)
	}
	client.RetryBase = time.Millisecond
	_, err = client.SweepGradient(25, []float64{1e-3}, []float64{0})
	if err == nil || !strings.Contains(err.Error(), "rows [0,1)") {
		t.Fatalf("error %v does not name the failed rows", err)
	}
}
