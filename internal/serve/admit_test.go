package serve

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"vcselnoc/internal/thermal"
)

// TestGCRASchedule drives the limiter with a synthetic clock: burst
// admits instantly, sustained traffic is paced at the configured rate,
// and the shed verdict's retry-after lands exactly on the next
// conforming instant.
func TestGCRASchedule(t *testing.T) {
	g := newGCRA(10, 2) // emission 100 ms, limit 200 ms
	now := int64(0)
	for i := 0; i < 2; i++ {
		if ok, _ := g.admit(now); !ok {
			t.Fatalf("burst request %d shed", i)
		}
	}
	ok, retry := g.admit(now)
	if ok {
		t.Fatal("third instantaneous request admitted past burst 2")
	}
	if retry != 100*time.Millisecond {
		t.Fatalf("retry-after = %v, want 100ms", retry)
	}
	// Exactly at the advertised instant the request conforms again.
	now += int64(retry)
	if ok, _ := g.admit(now); !ok {
		t.Fatal("request at the advertised retry instant shed")
	}
	// Sustained pacing: one request per emission interval is always
	// admitted, forever.
	for i := 0; i < 50; i++ {
		now += int64(100 * time.Millisecond)
		if ok, _ := g.admit(now); !ok {
			t.Fatalf("paced request %d shed", i)
		}
	}
	// After a long idle gap the full burst is available again.
	now += int64(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := g.admit(now); !ok {
			t.Fatalf("post-idle burst request %d shed", i)
		}
	}
}

// TestGCRAConcurrentBurst: N goroutines racing the same instant admit
// exactly burst requests — the atomic CAS loop neither over- nor
// under-admits.
func TestGCRAConcurrentBurst(t *testing.T) {
	const n, burst = 64, 8
	g := newGCRA(1, burst)
	now := time.Now().UnixNano()
	var admitted, shed int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ok, _ := g.admit(now)
			mu.Lock()
			if ok {
				admitted++
			} else {
				shed++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if admitted != burst || shed != n-burst {
		t.Fatalf("admitted %d shed %d, want %d/%d", admitted, shed, burst, n-burst)
	}
}

// admitServer builds a warm preview server with the given admission
// configuration.
func admitServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	// Explicit worker count: the batcher's early-flush threshold tracks
	// it, and on a single-CPU runner the default (GOMAXPROCS) would make
	// every 1-job batch flush instantly — defeating the coalescing
	// window the tests rely on.
	spec.Workers = 4
	cfg.Specs = map[string]thermal.Spec{DefaultSpec: spec}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if err := s.Warm(DefaultSpec); err != nil {
		t.Fatal(err)
	}
	return s
}

// postAs posts a gradient query under a client identity.
func postAs(s *Server, client, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(body))
	req.Header.Set("X-Client-ID", client)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestAdmissionShed pins the 429 surface: a spec-wide rate of 1/s with
// burst 2 admits two instantaneous queries and sheds the third with the
// JSON envelope, a positive Retry-After header and retry_after_ms.
func TestAdmissionShed(t *testing.T) {
	s := admitServer(t, Config{BatchWindow: -1, AdmitRate: 1, AdmitBurst: 2})
	const q = `{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`
	for i := 0; i < 2; i++ {
		if w := postAs(s, "c1", q); w.Code != http.StatusOK {
			t.Fatalf("burst query %d: %d (%s)", i, w.Code, w.Body.String())
		}
	}
	w := postAs(s, "c1", q)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst query = %d, want 429 (%s)", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("429 Content-Type = %q", ct)
	}
	ra := w.Header().Get("Retry-After")
	secs, err := strconv.ParseInt(ra, 10, 64)
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer second count", ra)
	}
	eb := decodeBody[errorBody](t, w)
	if eb.Error == "" || eb.RetryAfterMs <= 0 {
		t.Fatalf("shed envelope = %+v, want error text and positive retry_after_ms", eb)
	}
	// The shed query is visible in the stats and never reached a solve.
	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	admitted, shed, _ := st.adm.stats()
	if admitted != 2 || shed != 1 {
		t.Fatalf("admitted/shed = %d/%d, want 2/1", admitted, shed)
	}
}

// TestAdmissionPerClient: one greedy client exhausting its own bucket
// must not shed its neighbours.
func TestAdmissionPerClient(t *testing.T) {
	s := admitServer(t, Config{BatchWindow: -1, ClientRate: 0.5, ClientBurst: 1})
	const q = `{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`
	if w := postAs(s, "greedy", q); w.Code != http.StatusOK {
		t.Fatalf("greedy first query: %d", w.Code)
	}
	if w := postAs(s, "greedy", q); w.Code != http.StatusTooManyRequests {
		t.Fatalf("greedy second query = %d, want 429", w.Code)
	}
	if w := postAs(s, "patient", q); w.Code != http.StatusOK {
		t.Fatalf("other client shed by greedy neighbour: %d", w.Code)
	}
	st, _ := s.state(DefaultSpec)
	if _, _, clients := st.adm.stats(); clients != 2 {
		t.Fatalf("tracked clients = %d, want 2", clients)
	}
}

// TestAdmissionIdleClientGC: the off-path flusher reclaims idle client
// buckets (driven directly here — the ticker cadence is too slow for a
// test).
func TestAdmissionIdleClientGC(t *testing.T) {
	a := newAdmission(Config{ClientRate: 100, ClientBurst: 4})
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		a.admit(fmt.Sprintf("c%d", i), now)
	}
	if _, _, clients := a.stats(); clients != 10 {
		t.Fatalf("tracked clients = %d, want 10", clients)
	}
	// Touch one client later; GC at a cutoff between the two instants.
	a.admit("c0", now+int64(2*time.Minute))
	a.gcIdle(now + int64(time.Minute))
	if _, _, clients := a.stats(); clients != 1 {
		t.Fatalf("clients after GC = %d, want 1", clients)
	}
}

// TestAdmissionClientOverflow: clients beyond MaxClients still get
// served (spec bucket permitting) instead of erroring.
func TestAdmissionClientOverflow(t *testing.T) {
	a := newAdmission(Config{ClientRate: 1, ClientBurst: 1, MaxClients: 2})
	now := time.Now().UnixNano()
	for i := 0; i < 4; i++ {
		ok, _ := a.admit(fmt.Sprintf("c%d", i), now)
		if !ok {
			t.Fatalf("client %d shed", i)
		}
	}
	if _, _, clients := a.stats(); clients != 2 {
		t.Fatalf("tracked clients = %d, want cap 2", clients)
	}
	if got := a.overflow.Load(); got != 2 {
		t.Fatalf("overflow = %d, want 2", got)
	}
}

// TestAdmissionHammer mixes admitted, shed, coalesced and cached queries
// on one hot spec from many goroutines — the -race test of the admission
// hot path. Every response must be 200 or a well-formed 429, and the
// admission ledger must balance exactly.
func TestAdmissionHammer(t *testing.T) {
	s := admitServer(t, Config{
		BatchWindow: DefaultBatchWindow,
		AdmitRate:   200, AdmitBurst: 16,
		ClientRate: 100, ClientBurst: 8,
	})
	bodies := []string{
		`{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`, // hot key
		`{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`, // hot key again
		`{"chip": 26, "pvcsel": 3e-3, "pheater": 1e-3}`,
		`{"chip": 24, "pvcsel": 1e-3, "pheater": 0}`,
	}
	const workers, rounds = 8, 16
	var wg sync.WaitGroup
	errc := make(chan error, workers*rounds)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			client := fmt.Sprintf("hammer-%d", wkr%4)
			for i := 0; i < rounds; i++ {
				w := postAs(s, client, bodies[(wkr+i)%len(bodies)])
				switch w.Code {
				case http.StatusOK:
				case http.StatusTooManyRequests:
					if w.Header().Get("Retry-After") == "" {
						errc <- fmt.Errorf("429 without Retry-After")
					}
				default:
					errc <- fmt.Errorf("unexpected status %d (%s)", w.Code, w.Body.String())
				}
			}
		}(wkr)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	admitted, shed, _ := st.adm.stats()
	if admitted+shed != workers*rounds {
		t.Fatalf("admission ledger %d admitted + %d shed != %d requests", admitted, shed, workers*rounds)
	}
	// Every admitted query was answered by a solve, a coalesced share of
	// one, or a cache hit.
	_, queries := st.batch.Stats()
	hits, _ := st.cache.Stats()
	if queries+st.flights.Coalesced()+hits < admitted {
		t.Fatalf("solves %d + coalesced %d + hits %d < admitted %d",
			queries, st.flights.Coalesced(), hits, admitted)
	}
}
