package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"vcselnoc/internal/dse"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/parallel"
	"vcselnoc/internal/thermal"
)

// ShardClient scatters design-space sweep grids across a fleet of
// vcseld workers and gathers the rows back into the exact grid an
// in-process Explorer would produce. Rows (the outer sweep axis) are
// partitioned into contiguous chunks, chunks are assigned round-robin
// across the workers and fetched concurrently, and each chunk's rows are
// written at their absolute indices — so the merge is deterministic
// whatever order responses arrive in.
//
// A chunk whose worker fails is first rerouted to the surviving workers
// under capped exponential backoff with jitter; an admission shed (HTTP
// 429) waits out the worker's advertised Retry-After/retry_after_ms
// schedule instead of counting as a failure. Only when every attempt is
// exhausted is the chunk retried locally against a lazily built fallback
// Explorer, keeping the whole sweep available through total fleet
// outages without stealing fleet-sized work back onto the client for a
// single dead member.
//
// Exactness holds because every sweep cell is an independent
// superposition evaluation and every stage of the solve pipeline
// (matvec rows, serial dot products, line smoothing) is deterministic
// and worker-count independent: a worker's basis is bit-identical to a
// local one built from the same spec.
type ShardClient struct {
	// Workers are the base URLs of the vcseld fleet ("http://host:port").
	Workers []string
	// Scenario pins the spec/activity the sweeps run against; the power
	// knobs of individual sweeps override its Chip/PVCSEL/PHeater.
	Scenario Scenario
	// HTTPClient overrides the default client (DefaultShardTimeout).
	HTTPClient *http.Client
	// ChunkRows caps rows per request; 0 splits the grid evenly across
	// the workers (one chunk each).
	ChunkRows int
	// Fallback builds the local Explorer used to recompute chunks whose
	// worker failed. Nil disables local retry: a failed chunk fails the
	// sweep.
	Fallback func() (*dse.Explorer, error)
	// ExpectRes, when non-nil, is checked against each reachable
	// worker's registered resolution before the first sweep: a fleet
	// member meshing the problem differently would otherwise merge
	// rows from a different discretisation into the grid with no error.
	// Mismatches — and reachable workers whose /v1/specs is broken — are
	// hard failures; connection-level failures pass preflight (their
	// chunks fail over per chunk as usual).
	ExpectRes *thermal.Resolution
	// ExpectSolver, when non-empty, must additionally match each
	// reachable worker's effective sparse backend: a locally retried
	// chunk computed with a different backend would differ from the
	// fleet's rows at the solve tolerance, breaking the bit-identical
	// merge guarantee.
	ExpectSolver string
	// ChunkAttempts bounds remote fetch attempts per chunk before the
	// local fallback; 0 selects DefaultChunkAttempts. Transport and
	// server-side (5xx) failures reroute the next attempt to the next
	// worker; a 429 shed stays on its worker and waits at least the
	// advertised schedule. Non-shed client errors (4xx) are permanent and
	// never retried remotely.
	ChunkAttempts int
	// RetryBase and RetryMax shape the capped exponential backoff between
	// attempts (base·2^n up to max, plus up to 50% jitter); 0 selects
	// DefaultRetryBase/DefaultRetryMax.
	RetryBase, RetryMax time.Duration
	// TraceID, when set, rides every chunk request as the X-Trace-ID
	// header (each attempt gets a fresh X-Span-ID), so a sweep scattered
	// across the fleet carries one trace end to end — retries, reroutes
	// and all.
	TraceID string

	preOnce sync.Once
	preErr  error

	fbOnce sync.Once
	fbEx   *dse.Explorer
	fbErr  error
}

// NewShardClient parses a comma-separated worker list (the cmd/dse
// -shards flag format) into a client.
func NewShardClient(shards string, sc Scenario, fallback func() (*dse.Explorer, error)) (*ShardClient, error) {
	var workers []string
	for _, w := range strings.Split(shards, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		if !strings.Contains(w, "://") {
			w = "http://" + w
		}
		workers = append(workers, strings.TrimRight(w, "/"))
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("serve: no shard workers in %q", shards)
	}
	return &ShardClient{Workers: workers, Scenario: sc, Fallback: fallback}, nil
}

// DefaultShardTimeout bounds one chunk request. It is sized for a cold
// worker: the first query against an un-warmed spec blocks on the
// single-flighted basis build (11–167 s at fast/paper resolution), and
// timing out sooner would silently fall every chunk back to local
// computation.
const DefaultShardTimeout = 5 * time.Minute

// httpClient resolves the HTTP client.
func (c *ShardClient) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: DefaultShardTimeout}
}

// preflight cross-checks each reachable worker's spec registration
// against ExpectRes/ExpectSolver (once per client). A mismatched worker
// must fail the sweep, not silently contribute rows from a different
// discretisation or solver; only connection-level failures pass, since
// the per-chunk retry already covers dead workers. Workers are probed
// concurrently so one blackholed member costs a single timeout, not one
// per worker.
func (c *ShardClient) preflight() error {
	if c.ExpectRes == nil && c.ExpectSolver == "" {
		return nil
	}
	c.preOnce.Do(func() {
		name := c.Scenario.specName()
		// The metadata GET is cheap — never triggers a model build — so
		// it gets a short timeout of its own; the long chunk timeout
		// would let one blackholed worker stall the whole sweep start.
		metaClient := &http.Client{Timeout: 10 * time.Second}
		c.preErr = parallel.ForEach(len(c.Workers), len(c.Workers), func(_, i int) error {
			worker := c.Workers[i]
			resp, err := metaClient.Get(worker + "/v1/specs")
			if err != nil {
				return nil // dead worker: chunk-level retry handles it
			}
			defer resp.Body.Close()
			var infos []SpecInfo
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("serve: worker %s answered /v1/specs with HTTP %d — not a compatible vcseld", worker, resp.StatusCode)
			}
			if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
				return fmt.Errorf("serve: worker %s /v1/specs is not decodable (%v) — not a compatible vcseld", worker, err)
			}
			for _, info := range infos {
				if info.Name != name {
					continue
				}
				if want := c.ExpectRes; want != nil &&
					(info.ONICell != want.ONICell || info.DieCell != want.DieCell || info.MaxZCell != want.MaxZCell) {
					return fmt.Errorf(
						"serve: worker %s spec %q meshes at %g/%g/%g m, client expects %g/%g/%g m — refusing to merge grids across resolutions",
						worker, name, info.ONICell, info.DieCell, info.MaxZCell,
						want.ONICell, want.DieCell, want.MaxZCell)
				}
				if c.ExpectSolver != "" && info.Solver != c.ExpectSolver {
					return fmt.Errorf(
						"serve: worker %s spec %q solves with %s, client expects %s — locally retried chunks would differ at the solve tolerance",
						worker, name, info.Solver, c.ExpectSolver)
				}
				return nil
			}
			return fmt.Errorf("serve: worker %s does not register spec %q", worker, name)
		})
	})
	return c.preErr
}

// fallbackExplorer builds (once) the local retry explorer.
func (c *ShardClient) fallbackExplorer() (*dse.Explorer, error) {
	if c.Fallback == nil {
		return nil, fmt.Errorf("serve: no local fallback configured")
	}
	c.fbOnce.Do(func() { c.fbEx, c.fbErr = c.Fallback() })
	return c.fbEx, c.fbErr
}

// errFingerprint marks a chunk whose worker solved on a different
// discretisation or backend. Unlike transport failures it is a fleet
// misconfiguration: retrying locally would mask it, so scatter
// propagates it instead.
var errFingerprint = errors.New("serve: worker fingerprint mismatch")

// checkFingerprint verifies a chunk response's discretisation — the full
// resolution triple, not just the ONI cell — against the client's
// expectations. Preflight can miss a worker that was down during the
// probe and came back mid-sweep, so every chunk is checked.
func (c *ShardClient) checkFingerprint(worker string, res thermal.Resolution, solver string) error {
	if c.ExpectRes != nil && res != *c.ExpectRes {
		return fmt.Errorf("%w: worker %s solved on ONI/die/z cells %g/%g/%g m, client expects %g/%g/%g m — refusing to merge grids across discretisations",
			errFingerprint, worker, res.ONICell, res.DieCell, res.MaxZCell,
			c.ExpectRes.ONICell, c.ExpectRes.DieCell, c.ExpectRes.MaxZCell)
	}
	if c.ExpectSolver != "" && solver != c.ExpectSolver {
		return fmt.Errorf("%w: worker %s solved with %s, client expects %s",
			errFingerprint, worker, solver, c.ExpectSolver)
	}
	return nil
}

// chunk is one contiguous row window of a sweep grid.
type chunk struct{ lo, hi int }

// chunks partitions total rows: explicit ChunkRows wins, otherwise the
// rows split evenly across the workers.
func (c *ShardClient) chunks(total int) []chunk {
	size := c.ChunkRows
	if size <= 0 {
		size = (total + len(c.Workers) - 1) / len(c.Workers)
	}
	if size < 1 {
		size = 1
	}
	var out []chunk
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		out = append(out, chunk{lo, hi})
	}
	return out
}

// workerHTTPError carries the status (and, for sheds, the advertised
// retry schedule) of a worker's non-200 answer, so the retry loop can
// tell permanent client errors from transient server-side failures.
type workerHTTPError struct {
	status     int
	retryAfter time.Duration
	err        error
}

func (e *workerHTTPError) Error() string { return e.err.Error() }

// post sends one JSON request and decodes the response; non-200 answers
// surface the server's error envelope as a workerHTTPError.
func (c *ShardClient) post(worker, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequest(http.MethodPost, worker+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.TraceID != "" {
		httpReq.Header.Set(obs.TraceHeader, c.TraceID)
		httpReq.Header.Set(obs.SpanHeader, obs.NewSpanID())
	}
	httpResp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		we := &workerHTTPError{status: httpResp.StatusCode}
		var eb errorBody
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		if json.Unmarshal(msg, &eb) == nil && eb.Error != "" {
			we.err = fmt.Errorf("serve: worker %s: %s (HTTP %d)", worker, eb.Error, httpResp.StatusCode)
		} else {
			we.err = fmt.Errorf("serve: worker %s: HTTP %d", worker, httpResp.StatusCode)
		}
		// The shed schedule arrives twice; prefer the millisecond envelope
		// field over the whole-second header.
		if eb.RetryAfterMs > 0 {
			we.retryAfter = time.Duration(eb.RetryAfterMs * float64(time.Millisecond))
		} else if secs, err := strconv.Atoi(httpResp.Header.Get("Retry-After")); err == nil && secs > 0 {
			we.retryAfter = time.Duration(secs) * time.Second
		}
		return we
	}
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// DefaultChunkAttempts is the remote attempts per chunk before the local
// fallback: with the default one-reroute-then-once-more shape, a chunk
// survives its worker dying and the replacement being busy.
const DefaultChunkAttempts = 3

// DefaultRetryBase and DefaultRetryMax shape the default backoff.
const (
	DefaultRetryBase = 250 * time.Millisecond
	DefaultRetryMax  = 5 * time.Second
)

// fetchChunk runs one chunk's remote attempts: reroute-on-failure across
// the worker ring starting at slot, capped exponential backoff with
// jitter between attempts, shed schedules honoured. Returns nil on the
// first success; fingerprint mismatches and non-shed 4xx answers return
// immediately (retrying or falling back would mask misconfiguration).
func (c *ShardClient) fetchChunk(slot int, ck chunk, fetch func(worker string, ck chunk) error) error {
	attempts := c.ChunkAttempts
	if attempts <= 0 {
		attempts = DefaultChunkAttempts
	}
	base := c.RetryBase
	if base <= 0 {
		base = DefaultRetryBase
	}
	cap := c.RetryMax
	if cap <= 0 {
		cap = DefaultRetryMax
	}
	var err error
	for attempt := 0; ; attempt++ {
		err = fetch(c.Workers[slot%len(c.Workers)], ck)
		if err == nil || errors.Is(err, errFingerprint) {
			return err
		}
		var we *workerHTTPError
		shed := errors.As(err, &we) && we.status == http.StatusTooManyRequests
		if !shed && we != nil && we.status < 500 {
			return err // deterministic client error: no retry will change it
		}
		if attempt+1 >= attempts {
			return err
		}
		delay := base << attempt
		if delay > cap || delay <= 0 {
			delay = cap
		}
		if shed {
			// Honour the worker's schedule (it knows its bucket) and stay
			// on it: admission pressure is not death.
			if we.retryAfter > delay {
				delay = we.retryAfter
			}
		} else {
			slot++ // reroute: the next attempt goes to the next worker
		}
		time.Sleep(delay + time.Duration(rand.Int63n(int64(delay/2)+1)))
	}
}

// scatter fans the chunks across the fleet and fills rows via fetch;
// chunks whose remote attempts are exhausted are recomputed locally via
// local. Both callbacks write only their own chunk's rows, so no
// synchronisation is needed beyond the fan-out join.
func (c *ShardClient) scatter(total int, fetch func(worker string, ck chunk) error, local func(ck chunk) error) error {
	if err := c.preflight(); err != nil {
		return err
	}
	cks := c.chunks(total)
	return parallel.ForEach(len(c.Workers), len(cks), func(_, i int) error {
		err := c.fetchChunk(i, cks[i], fetch)
		if err == nil {
			return nil
		}
		if c.Fallback == nil || errors.Is(err, errFingerprint) {
			return err
		}
		if lerr := local(cks[i]); lerr != nil {
			return fmt.Errorf("serve: chunk rows [%d,%d): worker: %v; local retry: %w",
				cks[i].lo, cks[i].hi, err, lerr)
		}
		return nil
	})
}

// SweepGradient reproduces Explorer.SweepGradient across the fleet:
// same values, same row order.
func (c *ShardClient) SweepGradient(chip float64, lasers, heaters []float64) ([][]dse.GradientPoint, error) {
	if len(lasers) == 0 || len(heaters) == 0 {
		return nil, fmt.Errorf("serve: empty sweep axes")
	}
	out := make([][]dse.GradientPoint, len(lasers))
	sc := c.Scenario
	sc.Chip = chip
	err := c.scatter(len(lasers),
		func(worker string, ck chunk) error {
			req := GradientSweepRequest{Scenario: sc, Lasers: lasers, Heaters: heaters, RowStart: ck.lo, RowCount: ck.hi - ck.lo}
			var resp GradientSweepResponse
			if err := c.post(worker, "/v1/sweep/gradient", req, &resp); err != nil {
				return err
			}
			if err := c.checkFingerprint(worker, thermal.Resolution{ONICell: resp.ONICell, DieCell: resp.DieCell, MaxZCell: resp.MaxZCell}, resp.Solver); err != nil {
				return err
			}
			if resp.RowStart != ck.lo || len(resp.Rows) != ck.hi-ck.lo {
				return fmt.Errorf("serve: worker %s returned rows [%d,%d), want [%d,%d)",
					worker, resp.RowStart, resp.RowStart+len(resp.Rows), ck.lo, ck.hi)
			}
			copy(out[ck.lo:ck.hi], resp.Rows)
			return nil
		},
		func(ck chunk) error {
			ex, err := c.fallbackExplorer()
			if err != nil {
				return err
			}
			rows, err := ex.SweepGradient(chip, lasers[ck.lo:ck.hi], heaters)
			if err != nil {
				return err
			}
			copy(out[ck.lo:ck.hi], rows)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SweepAvgTemp reproduces Explorer.SweepAvgTemp across the fleet.
func (c *ShardClient) SweepAvgTemp(chips, lasers []float64) ([][]dse.AvgTempPoint, error) {
	if len(chips) == 0 || len(lasers) == 0 {
		return nil, fmt.Errorf("serve: empty sweep axes")
	}
	out := make([][]dse.AvgTempPoint, len(chips))
	err := c.scatter(len(chips),
		func(worker string, ck chunk) error {
			req := AvgTempSweepRequest{Scenario: c.Scenario, Chips: chips, Lasers: lasers, RowStart: ck.lo, RowCount: ck.hi - ck.lo}
			var resp AvgTempSweepResponse
			if err := c.post(worker, "/v1/sweep/avgtemp", req, &resp); err != nil {
				return err
			}
			if err := c.checkFingerprint(worker, thermal.Resolution{ONICell: resp.ONICell, DieCell: resp.DieCell, MaxZCell: resp.MaxZCell}, resp.Solver); err != nil {
				return err
			}
			if resp.RowStart != ck.lo || len(resp.Rows) != ck.hi-ck.lo {
				return fmt.Errorf("serve: worker %s returned rows [%d,%d), want [%d,%d)",
					worker, resp.RowStart, resp.RowStart+len(resp.Rows), ck.lo, ck.hi)
			}
			copy(out[ck.lo:ck.hi], resp.Rows)
			return nil
		},
		func(ck chunk) error {
			ex, err := c.fallbackExplorer()
			if err != nil {
				return err
			}
			rows, err := ex.SweepAvgTemp(chips[ck.lo:ck.hi], lasers)
			if err != nil {
				return err
			}
			copy(out[ck.lo:ck.hi], rows)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}
