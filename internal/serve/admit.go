package serve

// Admission control for the cheap-query hot path, VSA-style: the admit
// decision is one lock-free O(1) check — a GCRA (generic cell rate
// algorithm / virtual-scheduling leaky bucket) whose entire state is a
// single atomic int64, the theoretical arrival time of the next
// conforming request. The hot path never takes a lock and never writes a
// map: per-client buckets are found with one sync.Map load, accounting is
// plain atomic adds ("information, not traffic"), and everything that
// needs iteration — idle-client garbage collection, the tracked-client
// gauge — runs off-path on the server's background flusher.
//
// Shed requests get HTTP 429 with the standard JSON error envelope plus a
// Retry-After header (and retry_after_ms in the body) computed from the
// bucket's schedule, so well-behaved clients can pace themselves instead
// of retrying into the same wall.

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultAdmitBurst is the burst a rate-limited bucket tolerates when the
// configuration leaves it zero: large enough that a well-paced client
// never sheds on scheduling jitter, small enough that a hot-key stampede
// is flattened within one burst.
const DefaultAdmitBurst = 16

// DefaultMaxClients bounds the per-client buckets one spec tracks.
// Clients beyond the bound are still admission-controlled by the spec
// bucket; they just lose their individual rate share until the flusher
// garbage-collects idle buckets.
const DefaultMaxClients = 4096

// admitFlushInterval is the off-path accounting cadence: how often the
// background flusher folds per-client state (idle-bucket GC, the
// tracked-client gauge) — never on the request path.
const admitFlushInterval = time.Second

// admitClientIdleAfter is how long a client bucket may go unused before
// the flusher reclaims it. A returning client restarts with a full
// burst — the cost of keeping eviction O(idle), not O(traffic).
const admitClientIdleAfter = time.Minute

// gcra is a lock-free rate limiter: tat holds the theoretical arrival
// time (ns) of the next conforming request. A request at time t conforms
// when max(tat, t) + emission - t <= limit; admitting advances tat by one
// emission interval with a single CAS. Sustained throughput is
// 1/emission requests per ns with `limit/emission` requests of burst.
type gcra struct {
	tat      atomic.Int64
	emission int64 // ns between conforming requests at the sustained rate
	limit    int64 // ns of schedule slack = emission × burst
}

// newGCRA builds a limiter admitting rate requests/second with the given
// burst. rate must be positive; burst < 1 is clamped to 1.
func newGCRA(rate float64, burst int) *gcra {
	if burst < 1 {
		burst = 1
	}
	emission := int64(1e9 / rate)
	if emission < 1 {
		emission = 1
	}
	return &gcra{emission: emission, limit: emission * int64(burst)}
}

// admit decides one request at time now (ns). On shed it reports how long
// the caller should wait before the next request would conform.
func (g *gcra) admit(now int64) (ok bool, retryAfter time.Duration) {
	for {
		tat := g.tat.Load()
		base := tat
		if now > base {
			base = now
		}
		next := base + g.emission
		if next-now > g.limit {
			wait := tat + g.emission - g.limit - now
			if wait < 0 {
				wait = 0
			}
			return false, time.Duration(wait)
		}
		if g.tat.CompareAndSwap(tat, next) {
			return true, 0
		}
	}
}

// clientBucket is one tracked client's limiter plus the idle timestamp
// the flusher GCs on. Both fields are atomics: the hot path only loads
// and CASes.
type clientBucket struct {
	g        gcra
	lastSeen atomic.Int64
}

// admission is one spec's admission controller.
type admission struct {
	spec       *gcra // nil = no spec-wide rate
	clientRate float64
	// clientEmission/clientLimit are the precomputed gcra parameters
	// every client bucket shares.
	clientEmission, clientLimit int64
	maxClients                  int

	clients     sync.Map // client id -> *clientBucket
	clientCount atomic.Int64

	// Coalesced accounting: the request path does nothing but these
	// atomic adds; aggregation and per-client bookkeeping happen on the
	// flusher.
	admitted atomic.Int64
	shed     atomic.Int64
	overflow atomic.Int64 // requests from clients beyond maxClients
}

// newAdmission builds a controller; nil when both rates are unlimited so
// the hot path can skip admission with one pointer check.
func newAdmission(cfg Config) *admission {
	if cfg.AdmitRate <= 0 && cfg.ClientRate <= 0 {
		return nil
	}
	a := &admission{
		clientRate: cfg.ClientRate,
		maxClients: cfg.MaxClients,
	}
	if a.maxClients <= 0 {
		a.maxClients = DefaultMaxClients
	}
	if a.clientRate > 0 {
		burst := cfg.ClientBurst
		if burst <= 0 {
			burst = DefaultAdmitBurst
		}
		proto := newGCRA(a.clientRate, burst)
		a.clientEmission, a.clientLimit = proto.emission, proto.limit
	}
	if cfg.AdmitRate > 0 {
		burst := cfg.AdmitBurst
		if burst <= 0 {
			burst = DefaultAdmitBurst
		}
		a.spec = newGCRA(cfg.AdmitRate, burst)
	}
	return a
}

// admit runs the O(1) hot-path check for one request. Both levels are
// consulted — the per-client bucket first (a greedy client must not
// starve its neighbours), then the spec-wide bucket.
func (a *admission) admit(client string, now int64) (ok bool, retryAfter time.Duration) {
	if a == nil {
		return true, 0
	}
	if a.clientRate > 0 {
		if b := a.clientFor(client, now); b != nil {
			if ok, wait := b.g.admit(now); !ok {
				a.shed.Add(1)
				return false, wait
			}
		} else {
			a.overflow.Add(1)
		}
	}
	if a.spec != nil {
		if ok, wait := a.spec.admit(now); !ok {
			a.shed.Add(1)
			return false, wait
		}
	}
	a.admitted.Add(1)
	return true, 0
}

// clientFor finds (or creates, bounded) the client's bucket. Returns nil
// when the tracking table is full — those clients fall back to the
// spec-wide bucket only.
func (a *admission) clientFor(client string, now int64) *clientBucket {
	if v, ok := a.clients.Load(client); ok {
		b := v.(*clientBucket)
		b.lastSeen.Store(now)
		return b
	}
	if a.clientCount.Load() >= int64(a.maxClients) {
		return nil
	}
	b := &clientBucket{}
	b.g.emission, b.g.limit = a.clientEmission, a.clientLimit
	b.lastSeen.Store(now)
	if actual, loaded := a.clients.LoadOrStore(client, b); loaded {
		b = actual.(*clientBucket)
		b.lastSeen.Store(now)
		return b
	}
	a.clientCount.Add(1)
	return b
}

// gcIdle reclaims client buckets unused since the cutoff — the flusher's
// off-path share of the accounting work.
func (a *admission) gcIdle(cutoff int64) {
	if a == nil {
		return
	}
	a.clients.Range(func(key, v any) bool {
		if v.(*clientBucket).lastSeen.Load() < cutoff {
			a.clients.Delete(key)
			a.clientCount.Add(-1)
		}
		return true
	})
}

// stats snapshots the coalesced counters.
func (a *admission) stats() (admitted, shed int64, clients int) {
	if a == nil {
		return 0, 0, 0
	}
	return a.admitted.Load(), a.shed.Load(), int(a.clientCount.Load())
}

// flusher is the server's background accounting loop: every interval it
// folds per-client admission state across all specs. It owns the only
// iteration over the client tables — the request path never pays for it.
func (s *Server) flusher() {
	defer s.flushWG.Done()
	t := time.NewTicker(admitFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.flushStop:
			return
		case <-t.C:
			cutoff := time.Now().Add(-admitClientIdleAfter).UnixNano()
			for _, st := range s.specs {
				st.adm.gcIdle(cutoff)
			}
		}
	}
}

// clientID identifies the caller for per-client admission: the
// X-Client-ID header when present (how multiplexing proxies and loadgen
// label their principals), otherwise the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// shedError is the 429 a shed request gets: statusError semantics plus
// the retry schedule for the envelope and Retry-After header.
func shedError(spec string, retryAfter time.Duration) error {
	if retryAfter <= 0 {
		// Lost a photo-finish race with a conforming request: "retry
		// immediately" still must carry a positive schedule.
		retryAfter = time.Millisecond
	}
	return &statusError{
		code:       http.StatusTooManyRequests,
		retryAfter: retryAfter,
		err:        fmt.Errorf("serve: spec %q shed the query (admission rate exceeded); retry in %v", spec, retryAfter),
	}
}
