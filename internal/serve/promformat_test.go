package serve

// Prometheus exposition-format conformance for /metrics, checked with a
// purpose-built mini-parser rather than string containment: a scraper
// rejects the whole page on one malformed line, so the test enforces
// the format rules that actually break ingestion — HELP/TYPE headers
// preceding their samples exactly once, no duplicate series, quoted and
// escapable label values, histogram buckets cumulative and ending at
// le="+Inf" in agreement with _count.

import (
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSample is one parsed sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   int
}

// parseProm parses a text-format 0.0.4 page into per-family metadata and
// samples, failing the test on any line that does not lex.
func parseProm(t *testing.T, body string) (help, typ map[string]string, samples []promSample) {
	t.Helper()
	help = make(map[string]string)
	typ = make(map[string]string)
	sawSample := make(map[string]bool)
	for i, line := range strings.Split(body, "\n") {
		lineNo := i + 1
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, ok := strings.Cut(rest, " ")
			if !ok || name == "" || text == "" {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			if _, dup := help[name]; dup {
				t.Fatalf("line %d: second HELP for %s", lineNo, name)
			}
			if sawSample[name] {
				t.Fatalf("line %d: HELP for %s after its samples", lineNo, name)
			}
			help[name] = text
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown TYPE %q for %s", lineNo, kind, name)
			}
			if _, dup := typ[name]; dup {
				t.Fatalf("line %d: second TYPE for %s", lineNo, name)
			}
			if sawSample[name] {
				t.Fatalf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		s := parsePromSample(t, line, lineNo)
		sawSample[familyOf(s.name)] = true
		samples = append(samples, s)
	}
	return help, typ, samples
}

// parsePromSample lexes `name{l1="v1",l2="v2"} value` (labels optional).
func parsePromSample(t *testing.T, line string, lineNo int) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string), line: lineNo}
	rest := line
	if brace := strings.IndexByte(line, '{'); brace >= 0 {
		s.name = line[:brace]
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			t.Fatalf("line %d: unterminated label set: %q", lineNo, line)
		}
		for _, pair := range splitLabels(t, line[brace+1:end], lineNo) {
			key, quoted, ok := strings.Cut(pair, "=")
			if !ok {
				t.Fatalf("line %d: label without '=': %q", lineNo, pair)
			}
			val, err := strconv.Unquote(quoted)
			if err != nil {
				t.Fatalf("line %d: label value %s not a quoted string: %v", lineNo, quoted, err)
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %q", lineNo, key)
			}
			s.labels[key] = val
		}
		rest = line[end+1:]
	} else {
		name, v, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value: %q", lineNo, line)
		}
		s.name = name
		rest = " " + v
	}
	valStr := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		t.Fatalf("line %d: value %q does not parse: %v", lineNo, valStr, err)
	}
	s.value = v
	if s.name == "" {
		t.Fatalf("line %d: empty metric name", lineNo)
	}
	return s
}

// splitLabels splits a label body on commas outside quotes.
func splitLabels(t *testing.T, body string, lineNo int) []string {
	t.Helper()
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if depth {
		t.Fatalf("line %d: unbalanced quotes in labels %q", lineNo, body)
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// familyOf maps a sample name to its metric family: histogram series
// carry _bucket/_sum/_count suffixes on the family name.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(name, suf); ok {
			return fam
		}
	}
	return name
}

// seriesKey renders name plus the sorted label set — the identity a TSDB
// stores — for duplicate detection.
func seriesKey(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		b.WriteString("|" + k + "=" + s.labels[k])
	}
	return b.String()
}

// labelsWithoutLe is the bucket-group identity: one histogram's buckets
// share every label except le.
func labelsWithoutLe(s promSample) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k + "=" + s.labels[k] + "|")
	}
	return b.String()
}

func TestMetricsPrometheusConformance(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	t.Cleanup(s.Close)
	// Populate the latency and batch-size histograms with a real query so
	// the conformance check sees non-empty bucket series.
	if w := postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3}`); w.Code != http.StatusOK {
		t.Fatalf("seed query failed: %d (%s)", w.Code, w.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want text/plain version=0.0.4", ct)
	}
	help, typ, samples := parseProm(t, w.Body.String())
	if len(samples) == 0 {
		t.Fatal("no samples on the page")
	}

	// Every sample's family must carry HELP and TYPE.
	seen := make(map[string]bool)
	for _, s := range samples {
		fam := familyOf(s.name)
		if help[fam] == "" {
			t.Errorf("line %d: %s has no HELP", s.line, fam)
		}
		if typ[fam] == "" {
			t.Errorf("line %d: %s has no TYPE", s.line, fam)
		}
		if key := seriesKey(s); seen[key] {
			t.Errorf("line %d: duplicate series %s", s.line, key)
		} else {
			seen[key] = true
		}
		// _bucket/_sum/_count suffixes are reserved for histograms; a
		// counter named *_total_count would shadow them.
		if fam != s.name && typ[fam] != "histogram" {
			t.Errorf("line %d: %s uses a histogram suffix but %s is a %s", s.line, s.name, fam, typ[fam])
		}
	}

	// Histogram families: group buckets by label set, check cumulative
	// monotonicity, the +Inf terminal, and agreement with _count.
	type group struct {
		les    []float64
		counts []float64
		hasInf bool
		count  float64
	}
	groups := make(map[string]*group)
	g := func(fam string, s promSample) *group {
		key := fam + "|" + labelsWithoutLe(s)
		if groups[key] == nil {
			groups[key] = &group{count: -1}
		}
		return groups[key]
	}
	for fam, kind := range typ {
		if kind != "histogram" {
			continue
		}
		for _, s := range samples {
			switch s.name {
			case fam + "_bucket":
				le, ok := s.labels["le"]
				if !ok {
					t.Fatalf("line %d: bucket without le: %s", s.line, s.name)
				}
				gr := g(fam, s)
				if le == "+Inf" {
					gr.hasInf = true
					gr.les = append(gr.les, 0)
				} else {
					bound, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Fatalf("line %d: le=%q does not parse: %v", s.line, le, err)
					}
					if gr.hasInf {
						t.Errorf("line %d: bucket le=%q after +Inf", s.line, le)
					}
					gr.les = append(gr.les, bound)
				}
				gr.counts = append(gr.counts, s.value)
			case fam + "_count":
				g(fam, s).count = s.value
			}
		}
	}
	if len(groups) == 0 {
		t.Fatal("no histogram bucket groups found")
	}
	for key, gr := range groups {
		if !gr.hasInf {
			t.Errorf("%s: bucket series does not end at le=\"+Inf\"", key)
		}
		for i := 1; i < len(gr.counts); i++ {
			if gr.les[i] != 0 && gr.les[i] <= gr.les[i-1] {
				t.Errorf("%s: bucket bounds not increasing at index %d", key, i)
			}
			if gr.counts[i] < gr.counts[i-1] {
				t.Errorf("%s: cumulative bucket counts decrease at index %d (%g -> %g)",
					key, i, gr.counts[i-1], gr.counts[i])
			}
		}
		if gr.count < 0 {
			t.Errorf("%s: histogram has buckets but no _count", key)
		} else if n := len(gr.counts); n > 0 && gr.counts[n-1] != gr.count {
			t.Errorf("%s: +Inf bucket %g != _count %g", key, gr.counts[n-1], gr.count)
		}
	}

	// The series the ops runbook and the fleet scraper key on.
	for _, want := range []string{
		"vcseld_query_duration_seconds", "vcseld_batch_size", "vcseld_jobs",
	} {
		if typ[want] == "" {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
}
