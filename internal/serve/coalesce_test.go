package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupSharing: concurrent callers of one key run the function
// once; distinct keys run independently; errors reach every waiter.
func TestFlightGroupSharing(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	release := make(chan struct{})
	const followers = 7

	var wg sync.WaitGroup
	results := make([]struct {
		resp   QueryResponse
		shared bool
		err    error
	}, followers+1)
	started := make(chan struct{}, followers+1)
	for i := 0; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			results[i].resp, results[i].shared, results[i].err = g.do("k", func() (QueryResponse, error) {
				calls.Add(1)
				<-release
				return QueryResponse{MeanONITemp: 42}, nil
			})
		}(i)
	}
	for i := 0; i <= followers; i++ {
		<-started
	}
	// Give followers time to join the leader's flight before releasing.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	leaders := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: %v", i, r.err)
		}
		if r.resp.MeanONITemp != 42 {
			t.Fatalf("caller %d got %+v", i, r.resp)
		}
		if !r.shared {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	if g.Coalesced() != followers {
		t.Fatalf("coalesced = %d, want %d", g.Coalesced(), followers)
	}

	// Error propagation: a failing leader fails its followers too, and
	// the retired flight leaves the key reusable.
	wantErr := errors.New("boom")
	if _, _, err := g.do("k", func() (QueryResponse, error) { return QueryResponse{}, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if resp, shared, err := g.do("k", func() (QueryResponse, error) { return QueryResponse{MeanONITemp: 7}, nil }); err != nil || shared || resp.MeanONITemp != 7 {
		t.Fatalf("fresh flight after error: resp=%+v shared=%v err=%v", resp, shared, err)
	}
}

// TestQueryCoalescingOneSolve is the pinned hot-key property: N
// identical concurrent scenarios perform exactly ONE solve. The wide
// batch window holds the leader's evaluation open long enough that every
// concurrent identical query either joins its flight or lands on the LRU
// entry it populates — in all cases the batcher sees a single
// submission.
func TestQueryCoalescingOneSolve(t *testing.T) {
	s := admitServer(t, Config{BatchWindow: 50 * time.Millisecond})
	const n = 12
	const body = `{"chip": 25, "pvcsel": 2.5e-3, "pheater": 0.7e-3}`

	var wg sync.WaitGroup
	start := make(chan struct{})
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if w := postAs(s, "coalesce", body); w.Code != 200 {
				errc <- fmt.Errorf("HTTP %d (%s)", w.Code, w.Body.String())
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, queries := st.batch.Stats(); queries != 1 {
		t.Fatalf("%d identical concurrent queries submitted %d solves, want exactly 1", n, queries)
	}
	coalesced := st.flights.Coalesced()
	hits, _ := st.cache.Stats()
	if coalesced+hits != n-1 {
		t.Fatalf("coalesced %d + cache hits %d != %d followers", coalesced, hits, n-1)
	}
	if coalesced == 0 {
		t.Fatal("no query was coalesced — followers never joined the leader's flight")
	}
}
