package serve

// Query-granularity single-flight: identical canonicalised scenarios that
// are in flight at the same moment share one evaluation, not just one
// basis build. The basis-level single-flight (core.Methodology) already
// stops a cold spec from building twice; this layer stops a hot-key
// stampede — N clients asking for the same operating point in the same
// instant — from running N superposition evaluations when one would
// serve them all. Followers wait on the leader's channel and reuse its
// response; the LRU then absorbs later arrivals.

import (
	"sync"
	"sync/atomic"
)

// flightGroup deduplicates concurrent evaluations by cache key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall

	// coalesced counts followers that shared a leader's solve — the
	// observable the loadgen coalesce rate and the pinned
	// one-solve-for-N-queries test read.
	coalesced atomic.Int64
}

type flightCall struct {
	done chan struct{}
	resp QueryResponse
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key among concurrent callers: the first caller
// (leader) evaluates, everyone else (followers) blocks until the leader
// finishes and shares its result. shared reports whether this caller was
// a follower.
func (g *flightGroup) do(key string, fn func() (QueryResponse, error)) (resp QueryResponse, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		g.coalesced.Add(1)
		return c.resp, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.resp, c.err = fn()

	// Retire the flight before releasing followers: a request arriving
	// after this point starts fresh (and will normally hit the LRU the
	// leader just populated).
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.resp, false, c.err
}

// Coalesced reports the cumulative follower count.
func (g *flightGroup) Coalesced() int64 { return g.coalesced.Load() }
