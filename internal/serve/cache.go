package serve

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// lruCache is a bounded, mutex-guarded LRU keyed on canonicalised
// scenario strings. Values are small query summaries (never full
// temperature fields), so a few thousand entries cost kilobytes.
type lruCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element

	hits, misses atomic.Int64
}

type lruEntry struct {
	key string
	val QueryResponse
}

func newLRUCache(capacity int) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached response and promotes the entry.
func (c *lruCache) Get(key string) (QueryResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		return QueryResponse{}, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Add inserts or refreshes an entry, evicting the least recently used
// entry beyond capacity.
func (c *lruCache) Add(key string, val QueryResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*lruEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the live entry count.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cumulative hit/miss counters.
func (c *lruCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
