package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/obs"
	"vcselnoc/internal/parallel"
	"vcselnoc/internal/thermal"
)

// batcher micro-batches cheap superposition evaluations: requests
// arriving within one collection window are gathered and evaluated as a
// group through the worker pool, so a burst of concurrent queries costs
// one coordinated fan-out instead of a goroutine stampede, and the pool
// bound applies across requests rather than per request.
//
// A window of zero disables batching — each submission evaluates inline —
// which is both the low-latency single-client mode and the "unbatched"
// arm of BenchmarkServeGradientQueries.
type batcher struct {
	window  time.Duration
	workers int
	// flushAt flushes a batch as soon as it can saturate the worker
	// pool — waiting out the rest of the window past that point only
	// adds latency.
	flushAt int

	mu      sync.Mutex
	pending []*evalJob

	batches, queries atomic.Int64

	// sizeHist, when set, observes the size of every flushed batch
	// (nil-safe — the obs histogram ignores a nil receiver).
	sizeHist *obs.Histogram
}

// evalJob is one queued evaluation. The basis rides along because a spec
// serves many activity shapes: one flush may mix bases.
type evalJob struct {
	basis  *thermal.Basis
	powers thermal.Powers
	res    *thermal.Result
	err    error
	// eval is the job's own evaluation time, written by flush before
	// done closes so SubmitTimed can split wait from work.
	eval time.Duration
	done chan struct{}
}

func newBatcher(window time.Duration, workers int) *batcher {
	flushAt := workers
	if flushAt <= 0 {
		flushAt = runtime.GOMAXPROCS(0)
	}
	return &batcher{window: window, workers: workers, flushAt: flushAt}
}

// Submit evaluates powers against basis, possibly sharing a batch with
// concurrent submissions, and blocks until the result is ready.
func (b *batcher) Submit(basis *thermal.Basis, powers thermal.Powers) (*thermal.Result, error) {
	res, _, _, err := b.SubmitTimed(basis, powers)
	return res, err
}

// SubmitTimed is Submit plus a split of the request's time into batch
// wait (queueing until the flush reached this job) and evaluation time,
// feeding per-request trace spans.
func (b *batcher) SubmitTimed(basis *thermal.Basis, powers thermal.Powers) (res *thermal.Result, wait, eval time.Duration, err error) {
	b.queries.Add(1)
	if b.window <= 0 {
		b.batches.Add(1)
		b.sizeHist.Observe(1)
		start := time.Now()
		res, err = basis.Evaluate(powers)
		return res, 0, time.Since(start), err
	}
	job := &evalJob{basis: basis, powers: powers, done: make(chan struct{})}
	submitted := time.Now()
	b.mu.Lock()
	b.pending = append(b.pending, job)
	n := len(b.pending)
	if n == 1 {
		// First job of a new batch: schedule its flush. Later arrivals
		// inside the window join this batch for free. (The timer may
		// fire after an early flush already drained the batch; flush on
		// an empty pending list is a no-op.)
		time.AfterFunc(b.window, b.flush)
	}
	b.mu.Unlock()
	if n >= b.flushAt {
		b.flush()
	}
	<-job.done
	wait = time.Since(submitted) - job.eval
	if wait < 0 {
		wait = 0
	}
	return job.res, wait, job.eval, job.err
}

// flush drains the pending batch and evaluates it across the worker
// pool. Each job gets its own error; one bad scenario never poisons its
// batchmates.
func (b *batcher) flush() {
	b.mu.Lock()
	jobs := b.pending
	b.pending = nil
	b.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	b.batches.Add(1)
	b.sizeHist.Observe(float64(len(jobs)))
	workers := b.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Errors are per-job, so ForEach itself never fails.
	_ = parallel.ForEach(workers, len(jobs), func(_, i int) error {
		start := time.Now()
		jobs[i].res, jobs[i].err = jobs[i].basis.Evaluate(jobs[i].powers)
		jobs[i].eval = time.Since(start)
		close(jobs[i].done)
		return nil
	})
}

// Stats reports cumulative flush and query counts.
func (b *batcher) Stats() (batches, queries int64) {
	return b.batches.Load(), b.queries.Load()
}
