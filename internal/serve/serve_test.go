package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"vcselnoc/internal/thermal"
)

// testServer builds a preview-resolution server (cold: no model built
// yet) with the given batch window.
func testServer(t *testing.T, window time.Duration) *Server {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	s, err := New(Config{
		Specs:       map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow: window,
		CacheSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postJSON drives one request through the handler without a network.
func postJSON(t *testing.T, s *Server, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// skipShort gates tests whose model/basis builds are affordable in the
// regular suite but slow under -race -short CI runs. The concurrency
// tests (single-flight, mixed-query hammer) stay on in every mode.
func skipShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("full model builds skipped in -short")
	}
}

func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(w.Body).Decode(&v); err != nil {
		t.Fatalf("decode response: %v (body %q)", err, w.Body.String())
	}
	return v
}

// TestBadInputs pins the client-error surface: every malformed request
// must come back 4xx with the JSON error envelope, never a 500 or an
// empty body.
func TestBadInputs(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	cases := []struct {
		name, path, body string
		wantStatus       int
	}{
		{"malformed JSON", "/v1/gradient", `{"chip": `, http.StatusBadRequest},
		{"unknown field", "/v1/gradient", `{"chip": 25, "bogus": 1}`, http.StatusBadRequest},
		{"trailing data", "/v1/gradient", `{"chip": 25} {"chip": 26}`, http.StatusBadRequest},
		{"negative power", "/v1/gradient", `{"chip": -1}`, http.StatusBadRequest},
		{"NaN-free unknown activity", "/v1/gradient", `{"chip": 25, "activity": "volcano"}`, http.StatusBadRequest},
		{"unknown spec", "/v1/gradient", `{"chip": 25, "spec": "nope"}`, http.StatusNotFound},
		{"empty sweep axes", "/v1/sweep/gradient", `{"chip": 25, "lasers": [], "heaters": [1e-3]}`, http.StatusBadRequest},
		{"row window out of range", "/v1/sweep/gradient", `{"chip": 25, "lasers": [1e-3], "heaters": [0], "row_start": 5}`, http.StatusBadRequest},
		{"unknown case", "/v1/snr", `{"chip": 24, "pvcsel": 3.6e-3, "case": 9}`, http.StatusBadRequest},
		{"unknown pattern", "/v1/snr", `{"chip": 24, "pvcsel": 3.6e-3, "pattern": "mesh"}`, http.StatusBadRequest},
		{"unknown layer", "/v1/map", `{"chip": 25, "layer": "mantle"}`, http.StatusBadRequest},
		{"zero laser for heater search", "/v1/heater/optimal", `{"chip": 25, "pvcsel": 0}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", w.Code, tc.wantStatus, w.Body.String())
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want application/json", ct)
			}
			eb := decodeBody[errorBody](t, w)
			if eb.Error == "" {
				t.Fatal("error envelope has empty message")
			}
		})
	}
}

// TestBasisEvictionLRU: a spec holds at most Config.MaxBases warm bases —
// the guard against a client looping random seeds to exhaust daemon
// memory. A request for a shape beyond the bound evicts the
// least-recently-used basis and is served (no 429 cliff), and a request
// for the evicted shape deterministically rebuilds it.
func TestBasisEvictionLRU(t *testing.T) {
	skipShort(t)
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	s, err := New(Config{
		Specs:       map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow: -1,
		MaxBases:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	const seed1 = `{"chip": 25, "pvcsel": 2e-3, "activity": "random", "seed": 1}`
	var firstSeed1 QueryResponse
	for i, body := range []string{
		seed1,
		seed1,                          // same shape: no new slot, no new build
		`{"chip": 25, "pvcsel": 2e-3}`, // uniform: second slot
	} {
		w := postJSON(t, s, "/v1/gradient", body)
		if w.Code != http.StatusOK {
			t.Fatalf("query within bound rejected: %d (%s)", w.Code, w.Body.String())
		}
		if i == 0 {
			firstSeed1 = decodeBody[QueryResponse](t, w)
		}
	}
	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	meth, err := st.methodology()
	if err != nil {
		t.Fatal(err)
	}
	if builds := meth.BasisBuilds(); builds != 2 {
		t.Fatalf("builds before eviction = %d, want 2", builds)
	}

	// A third shape evicts the least-recently-used basis (seed 1) and is
	// served normally.
	w := postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3, "activity": "random", "seed": 2}`)
	if w.Code != http.StatusOK {
		t.Fatalf("shape beyond bound = %d, want 200 with LRU eviction (%s)", w.Code, w.Body.String())
	}
	if got := st.basisEvictions.Load(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if got := meth.BasisCount(); got != 2 {
		t.Fatalf("methodology holds %d bases after eviction, want 2", got)
	}

	// Asking for the evicted shape again rebuilds it (evicting uniform,
	// now the LRU) and — the determinism pin — answers identically to the
	// first build. The cache is cleared first so the answer is truly
	// recomputed through the rebuilt basis.
	st.cache = newLRUCache(64)
	w = postJSON(t, s, "/v1/gradient", seed1)
	if w.Code != http.StatusOK {
		t.Fatalf("evicted shape rebuild = %d (%s)", w.Code, w.Body.String())
	}
	rebuilt := decodeBody[QueryResponse](t, w)
	rebuilt.TraceID = firstSeed1.TraceID // per-request id, not part of the determinism pin
	if rebuilt != firstSeed1 {
		t.Fatalf("rebuilt basis answered differently:\nfirst   %+v\nrebuilt %+v", firstSeed1, rebuilt)
	}
	if builds := meth.BasisBuilds(); builds != 4 {
		t.Fatalf("builds after rebuild = %d, want 4", builds)
	}
	if got := st.basisEvictions.Load(); got != 2 {
		t.Fatalf("evictions after rebuild = %d, want 2", got)
	}
}

// TestMethodNotAllowed: the mux's method patterns must reject a GET on a
// POST endpoint.
func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, -1)
	req := httptest.NewRequest(http.MethodGet, "/v1/gradient", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/gradient = %d, want %d", w.Code, http.StatusMethodNotAllowed)
	}
}

// TestGradientCacheHitMiss: the first query misses and computes, the
// second identical query (even spelled differently) hits, and a
// different operating point misses again.
func TestGradientCacheHitMiss(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	const q = `{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`

	w := postJSON(t, s, "/v1/gradient", q)
	if w.Code != http.StatusOK {
		t.Fatalf("first query: %d (%s)", w.Code, w.Body.String())
	}
	first := decodeBody[QueryResponse](t, w)
	if first.Cached {
		t.Fatal("first query claims cached")
	}
	if first.MeanONITemp <= 25 {
		t.Fatalf("implausible mean ONI temp %g", first.MeanONITemp)
	}

	// Same point with the driver spelled explicitly: canonicalisation
	// must collapse it onto the same key.
	w = postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3, "pdriver": 2e-3, "pheater": 0.6e-3}`)
	second := decodeBody[QueryResponse](t, w)
	if !second.Cached {
		t.Fatal("identical query missed the cache")
	}
	if second.MeanONITemp != first.MeanONITemp || second.MaxGradient != first.MaxGradient {
		t.Fatal("cached answer differs from computed answer")
	}

	w = postJSON(t, s, "/v1/gradient", `{"chip": 26, "pvcsel": 2e-3, "pheater": 0.6e-3}`)
	third := decodeBody[QueryResponse](t, w)
	if third.Cached {
		t.Fatal("different operating point served from cache")
	}

	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := st.cache.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestSingleFlightBasisBuild: N concurrent queries against a cold spec
// must trigger exactly one model build and one basis build.
func TestSingleFlightBasisBuild(t *testing.T) {
	s := testServer(t, DefaultBatchWindow)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Distinct operating points: no cache short-circuit, all
			// must wait on the same cold basis.
			body := fmt.Sprintf(`{"chip": 25, "pvcsel": %g, "pheater": 1e-3}`, 1e-3+float64(i)*1e-4)
			req := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(body))
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				errs[i] = fmt.Errorf("query %d: HTTP %d (%s)", i, w.Code, w.Body.String())
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.state(DefaultSpec)
	if err != nil {
		t.Fatal(err)
	}
	meth, err := st.methodology()
	if err != nil {
		t.Fatal(err)
	}
	if builds := meth.BasisBuilds(); builds != 1 {
		t.Fatalf("%d concurrent cold queries ran %d basis builds, want 1", n, builds)
	}
}

// TestConcurrentMixedQueries hammers a warm server from many goroutines
// across endpoint kinds — the -race test of the serving hot path.
func TestConcurrentMixedQueries(t *testing.T) {
	s := testServer(t, DefaultBatchWindow)
	if err := s.Warm(DefaultSpec); err != nil {
		t.Fatal(err)
	}
	bodies := []struct{ path, body string }{
		{"/v1/gradient", `{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`},
		{"/v1/gradient", `{"chip": 25, "pvcsel": 3e-3, "pheater": 1e-3}`},
		{"/v1/feasibility", `{"chip": 25, "pvcsel": 4e-3, "pheater": 1.2e-3}`},
		{"/v1/sweep/gradient", `{"chip": 25, "lasers": [1e-3, 2e-3], "heaters": [0, 1e-3]}`},
		{"/v1/sweep/avgtemp", `{"chips": [20, 25], "lasers": [0, 2e-3]}`},
	}
	const rounds = 4
	var wg sync.WaitGroup
	errc := make(chan error, rounds*len(bodies)+2*rounds)
	for r := 0; r < rounds; r++ {
		for _, b := range bodies {
			wg.Add(1)
			go func(path, body string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("%s: HTTP %d (%s)", path, w.Code, w.Body.String())
				}
			}(b.path, b.body)
		}
		// Stats endpoints race the queries: the peek paths must be clean.
		for _, path := range []string{"/healthz", "/v1/specs"} {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodGet, path, nil)
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					errc <- fmt.Errorf("%s: HTTP %d", path, w.Code)
				}
			}(path)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestHealthAndSpecs covers the introspection endpoints before and after
// warm-up.
func TestHealthAndSpecs(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	h := decodeBody[Health](t, w)
	if h.Status != "ok" || len(h.Specs) != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Specs[0].ModelReady {
		t.Fatal("cold spec reports a ready model")
	}

	if w := postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3}`); w.Code != http.StatusOK {
		t.Fatalf("warm-up query: %d", w.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/specs", nil)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	infos := decodeBody[[]SpecInfo](t, w)
	if len(infos) != 1 || !infos[0].ModelReady || infos[0].Cells == 0 || infos[0].BasisBuilds != 1 {
		t.Fatalf("specs after warm-up = %+v", infos)
	}
	if infos[0].Solver == "" {
		t.Fatal("spec info missing effective solver")
	}
}

// TestMapEndpoint sanity-checks a layer slice.
func TestMapEndpoint(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	w := postJSON(t, s, "/v1/map", `{"chip": 25, "pvcsel": 2e-3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("map: %d (%s)", w.Code, w.Body.String())
	}
	m := decodeBody[MapResponse](t, w)
	if m.Layer != "optical" || len(m.X) == 0 || len(m.T) != len(m.Y) || m.Max < m.Min {
		t.Fatalf("map response malformed: layer=%q nx=%d ny=%d", m.Layer, len(m.X), len(m.Y))
	}
	if m.Max <= 25 {
		t.Fatalf("optical layer max %g never rose above ambient", m.Max)
	}
}

// TestSNREndpoint runs the full chain once.
func TestSNREndpoint(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	w := postJSON(t, s, "/v1/snr", `{"chip": 24, "pvcsel": 3.6e-3, "pheater": 1.08e-3, "case": 1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("snr: %d (%s)", w.Code, w.Body.String())
	}
	r := decodeBody[SNRResponse](t, w)
	if r.Comms == 0 || r.RingLengthM <= 0 || r.NodeTempMax < r.NodeTempMin {
		t.Fatalf("snr response malformed: %+v", r)
	}
}

// TestSweepPagination: a row window must return exactly the requested
// rows of the full grid.
func TestSweepPagination(t *testing.T) {
	skipShort(t)
	s := testServer(t, -1)
	full := postJSON(t, s, "/v1/sweep/gradient",
		`{"chip": 25, "lasers": [1e-3, 2e-3, 3e-3], "heaters": [0, 1e-3]}`)
	if full.Code != http.StatusOK {
		t.Fatalf("full sweep: %d", full.Code)
	}
	fullResp := decodeBody[GradientSweepResponse](t, full)
	if len(fullResp.Rows) != 3 || fullResp.TotalRows != 3 {
		t.Fatalf("full sweep returned %d rows", len(fullResp.Rows))
	}
	window := postJSON(t, s, "/v1/sweep/gradient",
		`{"chip": 25, "lasers": [1e-3, 2e-3, 3e-3], "heaters": [0, 1e-3], "row_start": 1, "row_count": 1}`)
	winResp := decodeBody[GradientSweepResponse](t, window)
	if winResp.RowStart != 1 || len(winResp.Rows) != 1 {
		t.Fatalf("window = start %d, %d rows", winResp.RowStart, len(winResp.Rows))
	}
	if !bytes.Equal(mustJSON(t, winResp.Rows[0]), mustJSON(t, fullResp.Rows[1])) {
		t.Fatal("windowed row differs from the same row of the full sweep")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
