package serve

// Prometheus text-format metrics (exposition format 0.0.4), stdlib only:
// the handler renders the same warm-state statistics /healthz reports —
// query-cache hits/misses, basis builds, micro-batch counters — plus the
// transient-job state gauge and step counter, in a form scrapers ingest
// directly.

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
	"time"
)

// handleMetrics renders the metrics snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b bytes.Buffer

	gauge := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	}
	counter := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	}

	gauge("vcseld_uptime_seconds", "Seconds since the server started.")
	fmt.Fprintf(&b, "vcseld_uptime_seconds %g\n", time.Since(s.start).Seconds())

	names := make([]string, 0, len(s.specs))
	for name := range s.specs {
		names = append(names, name)
	}
	sort.Strings(names)

	type specMetric struct {
		name, help string
		value      func(SpecInfo) float64
		counter    bool
	}
	specMetrics := []specMetric{
		{"vcseld_cache_hits_total", "Query LRU hits.", func(i SpecInfo) float64 { return float64(i.CacheHits) }, true},
		{"vcseld_cache_misses_total", "Query LRU misses.", func(i SpecInfo) float64 { return float64(i.CacheMisses) }, true},
		{"vcseld_cache_entries", "Query LRU occupancy.", func(i SpecInfo) float64 { return float64(i.CacheLen) }, false},
		{"vcseld_basis_builds_total", "Superposition basis builds executed.", func(i SpecInfo) float64 { return float64(i.BasisBuilds) }, true},
		{"vcseld_batches_total", "Micro-batch flushes.", func(i SpecInfo) float64 { return float64(i.Batches) }, true},
		{"vcseld_batched_queries_total", "Queries carried by micro-batches (divide by vcseld_batches_total for the mean batch size).", func(i SpecInfo) float64 { return float64(i.BatchedQueries) }, true},
		{"vcseld_model_cells", "Mesh cells of the warm model (0 until the first query builds it).", func(i SpecInfo) float64 { return float64(i.Cells) }, false},
		{"vcseld_admitted_total", "Hot-path queries admitted by admission control.", func(i SpecInfo) float64 { return float64(i.Admitted) }, true},
		{"vcseld_shed_total", "Hot-path queries shed with HTTP 429.", func(i SpecInfo) float64 { return float64(i.Shed) }, true},
		{"vcseld_coalesced_queries_total", "Queries that shared an identical in-flight query's solve.", func(i SpecInfo) float64 { return float64(i.CoalescedQueries) }, true},
		{"vcseld_admission_clients", "Per-client admission buckets currently tracked.", func(i SpecInfo) float64 { return float64(i.Clients) }, false},
		{"vcseld_warm_bases", "Warm superposition bases held (bounded LRU).", func(i SpecInfo) float64 { return float64(i.WarmBases) }, false},
		{"vcseld_basis_evictions_total", "Least-recently-used basis evictions.", func(i SpecInfo) float64 { return float64(i.BasisEvictions) }, true},
	}
	infos := make(map[string]SpecInfo, len(names))
	for _, info := range s.specInfos() {
		infos[info.Name] = info
	}
	for _, m := range specMetrics {
		if m.counter {
			counter(m.name, m.help)
		} else {
			gauge(m.name, m.help)
		}
		for _, name := range names {
			fmt.Fprintf(&b, "%s{spec=%q} %g\n", m.name, name, m.value(infos[name]))
		}
	}

	histogram := func(name, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	}
	histogram("vcseld_query_duration_seconds",
		"Server-side request latency by spec and endpoint class (query = cheap superposition queries, sweep = DSE grid windows).")
	for _, name := range names {
		st := s.specs[name]
		st.latQuery.WritePrometheus(&b, "vcseld_query_duration_seconds",
			fmt.Sprintf("spec=%q,class=%q", name, "query"))
		st.latSweep.WritePrometheus(&b, "vcseld_query_duration_seconds",
			fmt.Sprintf("spec=%q,class=%q", name, "sweep"))
	}
	histogram("vcseld_batch_size", "Queries per micro-batch flush.")
	for _, name := range names {
		s.specs[name].batchSize.WritePrometheus(&b, "vcseld_batch_size", fmt.Sprintf("spec=%q", name))
	}

	gauge("vcseld_jobs", "Transient jobs by lifecycle state.")
	states := s.jobs.stateCounts()
	for _, state := range []string{JobQueued, JobRunning, JobDone, JobFailed} {
		fmt.Fprintf(&b, "vcseld_jobs{state=%q} %d\n", state, states[state])
	}
	counter("vcseld_job_steps_total", "Transient integration steps executed across all jobs.")
	fmt.Fprintf(&b, "vcseld_job_steps_total %d\n", s.jobs.stepsTotal.Load())
	counter("vcseld_jobs_expired_total", "Terminal transient jobs garbage-collected past their TTL.")
	fmt.Fprintf(&b, "vcseld_jobs_expired_total %d\n", s.jobs.expired.Load())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(b.Bytes())
}
