package serve

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"vcselnoc/internal/thermal"
)

// TestLRUEviction: capacity bounds the cache and evicts least recently
// used first.
func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", QueryResponse{MeanONITemp: 1})
	c.Add("b", QueryResponse{MeanONITemp: 2})
	if _, ok := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Add("c", QueryResponse{MeanONITemp: 3}) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted wrongly", k)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

// TestLRURefresh: re-adding a key updates in place without growing.
func TestLRURefresh(t *testing.T) {
	c := newLRUCache(2)
	c.Add("a", QueryResponse{MeanONITemp: 1})
	c.Add("a", QueryResponse{MeanONITemp: 9})
	v, ok := c.Get("a")
	if !ok || v.MeanONITemp != 9 {
		t.Fatalf("refresh lost: %+v ok=%v", v, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d after refresh", c.Len())
	}
}

// TestLRUConcurrent hammers the cache from many goroutines (-race).
func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*7+i)%32)
				if i%3 == 0 {
					c.Add(k, QueryResponse{MeanONITemp: float64(i)})
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache grew past capacity: %d", c.Len())
	}
}

// TestCacheKeyCanonicalisation: the driver default and float spellings
// collapse; distinct scenarios stay distinct.
func TestCacheKeyCanonicalisation(t *testing.T) {
	base := Scenario{Chip: 25, PVCSEL: 2e-3, PHeater: 6e-4}
	explicit := base
	d := 2e-3
	explicit.PDriver = &d
	if base.cacheKey() != explicit.cacheKey() {
		t.Fatal("defaulted and explicit driver produce different keys")
	}
	uniform := base
	uniform.Activity = "uniform"
	if base.cacheKey() != uniform.cacheKey() {
		t.Fatal("empty and explicit uniform activity produce different keys")
	}
	seeded := uniform
	seeded.Seed = 7 // uniform ignores the seed
	if uniform.cacheKey() != seeded.cacheKey() {
		t.Fatal("stray seed on a non-random activity splits the key")
	}
	distinct := []Scenario{
		{Chip: 25, PVCSEL: 2e-3},
		{Chip: 25, PVCSEL: 3e-3},
		{Chip: 25, PVCSEL: 2e-3, PHeater: 1e-3},
		{Chip: 25, PVCSEL: 2e-3, Activity: "diagonal"},
		{Chip: 25, PVCSEL: 2e-3, Activity: "random", Seed: 7},
		{Chip: 25, PVCSEL: 2e-3, Spec: "other"},
	}
	seen := map[string]int{}
	for i, sc := range distinct {
		k := sc.cacheKey()
		if j, dup := seen[k]; dup {
			t.Fatalf("scenarios %d and %d collide on %q", i, j, k)
		}
		seen[k] = i
	}
}

// TestBatcherWindowCollects: submissions inside one window share a
// flush.
func TestBatcherWindowCollects(t *testing.T) {
	skipShort(t)
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	model, err := thermal.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := model.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Explicit pool of 4: the early-flush threshold stays below the job
	// count even on single-CPU machines (workers 0 would resolve the
	// threshold to GOMAXPROCS).
	b := newBatcher(20*time.Millisecond, 4)
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := b.Submit(basis, thermal.Powers{Chip: 25, VCSEL: float64(i+1) * 1e-3})
			if err == nil && res.MeanONITemp() <= 25 {
				err = fmt.Errorf("implausible temp %g", res.MeanONITemp())
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	batches, queries := b.Stats()
	if queries != n {
		t.Fatalf("queries = %d, want %d", queries, n)
	}
	if batches >= n {
		t.Fatalf("no batching happened: %d batches for %d queries", batches, n)
	}

	// Unbatched mode answers inline, one "batch" per query.
	ub := newBatcher(0, 0)
	if _, err := ub.Submit(basis, thermal.Powers{Chip: 25}); err != nil {
		t.Fatal(err)
	}
	if batches, queries := ub.Stats(); batches != 1 || queries != 1 {
		t.Fatalf("unbatched stats = %d/%d", batches, queries)
	}
}

// TestBatcherIsolatesErrors: one invalid job must not poison its
// batchmates.
func TestBatcherIsolatesErrors(t *testing.T) {
	skipShort(t)
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	model, err := thermal.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	basis, err := model.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}
	b := newBatcher(20*time.Millisecond, 0)
	var wg sync.WaitGroup
	var goodErr, badErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, goodErr = b.Submit(basis, thermal.Powers{Chip: 25, VCSEL: 2e-3})
	}()
	go func() {
		defer wg.Done()
		_, badErr = b.Submit(basis, thermal.Powers{Chip: -1}) // invalid
	}()
	wg.Wait()
	if goodErr != nil {
		t.Fatalf("good job failed alongside bad batchmate: %v", goodErr)
	}
	if badErr == nil {
		t.Fatal("invalid powers accepted")
	}
}
