package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestGracefulShutdown: cancelling the context must stop new connections
// immediately but let the in-flight request finish and be answered
// before Run returns — the property that lets shard clients drain
// cleanly when a worker is being rotated out.
func TestGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "drained")
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- Run(ctx, ln, handler, 10*time.Second) }()

	// In-flight request that will straddle the shutdown.
	type result struct {
		body string
		err  error
	}
	reqDone := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/slow")
		if err != nil {
			reqDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		reqDone <- result{body: string(b), err: err}
	}()
	<-entered

	cancel()

	// Run must still be draining the in-flight request.
	select {
	case err := <-runDone:
		t.Fatalf("Run returned (%v) before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}

	// New connections are refused once shutdown begins (allow a moment
	// for the listener to close).
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting connections after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(release)
	res := <-reqDone
	if res.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", res.err)
	}
	if res.body != "drained" {
		t.Fatalf("in-flight response = %q, want %q", res.body, "drained")
	}
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v after clean drain, want nil", err)
	}
}

// TestRunReturnsListenerError: a listener dying outside a shutdown is a
// failure, not a clean exit.
func TestRunReturnsListenerError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		runDone <- Run(context.Background(), ln, http.NotFoundHandler(), time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	ln.Close()
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("Run returned nil after the listener died")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not return after the listener died")
	}
}

// TestListenAndRunReportsAddr: the onListen hook sees the bound address
// (the ":0" workflow the smoke tests and local fleets use).
func TestListenAndRunReportsAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan net.Addr, 1)
	runDone := make(chan error, 1)
	go func() {
		runDone <- ListenAndRun(ctx, "127.0.0.1:0", http.NotFoundHandler(), time.Second, func(a net.Addr) {
			got <- a
		})
	}()
	select {
	case a := <-got:
		if a.(*net.TCPAddr).Port == 0 {
			t.Fatal("onListen reported port 0")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onListen never fired")
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("ListenAndRun = %v", err)
	}
}
