package serve

import (
	"fmt"
	"strconv"
	"strings"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/fvm"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/thermal"
)

// Scenario is the wire form of one operating point: which registered
// spec, which chip-activity shape, and the four power knobs. It is the
// request body (or embedded portion) of every query endpoint.
type Scenario struct {
	// Spec names a registered system spec; empty selects DefaultSpec.
	Spec string `json:"spec,omitempty"`
	// Activity names the chip activity scenario (uniform, diagonal,
	// random, hotspot, checkerboard); empty means uniform.
	Activity string `json:"activity,omitempty"`
	// Seed parameterises the random activity.
	Seed int64 `json:"seed,omitempty"`
	// Chip is the total processing power (W).
	Chip float64 `json:"chip"`
	// PVCSEL is the per-laser dissipated power (W).
	PVCSEL float64 `json:"pvcsel"`
	// PDriver is the per-driver power (W); nil applies the paper's worst
	// case P_driver = P_VCSEL.
	PDriver *float64 `json:"pdriver,omitempty"`
	// PHeater is the per-MR heater power (W).
	PHeater float64 `json:"pheater"`
}

// scenario resolution helpers -------------------------------------------

// specName returns the registry key the scenario addresses.
func (s Scenario) specName() string {
	if s.Spec == "" {
		return DefaultSpec
	}
	return s.Spec
}

// activityScenario resolves the named chip activity.
func (s Scenario) activityScenario() (activity.Scenario, error) {
	if s.Activity == "" {
		return activity.Uniform{}, nil
	}
	return activity.ByName(s.Activity, s.Seed)
}

// powers maps the wire scenario onto thermal power knobs (activity
// excluded — the caller attaches the resolved scenario where needed).
func (s Scenario) powers() thermal.Powers {
	driver := s.PVCSEL
	if s.PDriver != nil {
		driver = *s.PDriver
	}
	return thermal.Powers{Chip: s.Chip, VCSEL: s.PVCSEL, Driver: driver, Heater: s.PHeater}
}

// cacheKey canonicalises the scenario for the query LRU: the driver
// default is applied first (so {pvcsel: 2 mW} and {pvcsel: 2 mW,
// pdriver: 2 mW} share an entry), the empty activity collapses onto
// "uniform", the seed is zeroed for activities that ignore it, and
// floats are formatted shortest-round-trip so numerically identical
// JSON spellings collide.
func (s Scenario) cacheKey() string {
	p := s.powers()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return strings.Join([]string{
		s.specName(), s.basisSlotKey(),
		f(p.Chip), f(p.VCSEL), f(p.Driver), f(p.Heater),
	}, "|")
}

// basisSlotKey identifies the activity shape for the per-spec basis
// bound and the cache key: the activity name normalised (empty means
// uniform) plus the seed for the seed-sensitive random activity.
func (s Scenario) basisSlotKey() string {
	act := s.Activity
	if act == "" {
		act = "uniform"
	}
	seed := s.Seed
	if act != "random" {
		seed = 0
	}
	return act + "|" + strconv.FormatInt(seed, 10)
}

// QueryResponse is the answer to a gradient or feasibility query: the
// superposition evaluation's ONI summary plus the paper's 1 °C verdict.
type QueryResponse struct {
	// MeanONITemp averages the per-ONI average temperatures (°C).
	MeanONITemp float64 `json:"mean_oni_temp"`
	// MeanGradient and MaxGradient summarise the intra-ONI gradients (°C).
	MeanGradient float64 `json:"mean_gradient"`
	MaxGradient  float64 `json:"max_gradient"`
	// Feasible reports the paper's 1 °C gradient constraint.
	Feasible bool `json:"feasible"`
	// ChipMax and ChipAvg summarise the junction layer (°C).
	ChipMax float64 `json:"chip_max"`
	ChipAvg float64 `json:"chip_avg"`
	// Cached marks answers served from the query LRU.
	Cached bool `json:"cached"`
	// TraceID echoes the request's X-Trace-ID (set per request, never
	// cached or shared between coalesced callers' envelopes).
	TraceID string `json:"trace_id,omitempty"`
}

// HeaterRequest asks for the gradient-minimising heater power.
type HeaterRequest struct {
	Scenario
	// MaxHeater bounds the search (W); zero defaults to PVCSEL.
	MaxHeater float64 `json:"max_heater,omitempty"`
}

// HeaterResponse reports the heater optimum.
type HeaterResponse struct {
	PVCSEL           float64 `json:"pvcsel"`
	PHeater          float64 `json:"pheater"`
	Ratio            float64 `json:"ratio"`
	MeanGradient     float64 `json:"mean_gradient"`
	GradientNoHeater float64 `json:"gradient_no_heater"`
}

// SNRRequest runs the full methodology chain for one placement case.
type SNRRequest struct {
	Scenario
	// Case is the ONI placement: 1 (18 mm), 2 (32 mm) or 3 (47 mm,
	// default).
	Case int `json:"case,omitempty"`
	// Pattern is the communication set: "neighbour" (default) or
	// "paired".
	Pattern string `json:"pattern,omitempty"`
}

// SNRResponse is the signal-quality verdict.
type SNRResponse struct {
	Case        string  `json:"case"`
	Pattern     string  `json:"pattern"`
	RingLengthM float64 `json:"ring_length_m"`
	NodeTempMin float64 `json:"node_temp_min"`
	NodeTempMax float64 `json:"node_temp_max"`
	WorstSNRdB  float64 `json:"worst_snr_db"`
	AllDetected bool    `json:"all_detected"`
	Comms       int     `json:"comms"`
}

// MapRequest asks for a lateral temperature slice.
type MapRequest struct {
	Scenario
	// Layer names the stack layer; empty selects the optical layer.
	Layer string `json:"layer,omitempty"`
}

// MapResponse carries one layer's temperature map.
type MapResponse struct {
	Layer string      `json:"layer"`
	X     []float64   `json:"x_m"`
	Y     []float64   `json:"y_m"`
	T     [][]float64 `json:"temp_c"`
	Min   float64     `json:"min_c"`
	Max   float64     `json:"max_c"`
}

// GradientSweepRequest is a (paginated) Fig. 9-b grid: rows iterate laser
// powers, columns heater powers. RowStart/RowCount select a row window
// for sharded scatter/gather; RowCount 0 means "to the end".
type GradientSweepRequest struct {
	Scenario
	Lasers   []float64 `json:"lasers"`
	Heaters  []float64 `json:"heaters"`
	RowStart int       `json:"row_start,omitempty"`
	RowCount int       `json:"row_count,omitempty"`
}

// GradientSweepResponse returns the requested row window. The full
// resolution triple (ONI/die/z cells) and Solver fingerprint the
// worker's discretisation so shard clients can verify every chunk —
// including chunks from workers that were unreachable during preflight
// and came back mid-sweep with a different mesh.
type GradientSweepResponse struct {
	RowStart  int                   `json:"row_start"`
	TotalRows int                   `json:"total_rows"`
	Rows      [][]dse.GradientPoint `json:"rows"`
	ONICell   float64               `json:"oni_cell_m"`
	DieCell   float64               `json:"die_cell_m"`
	MaxZCell  float64               `json:"max_z_cell_m"`
	Solver    string                `json:"solver"`
	// TraceID echoes the request's X-Trace-ID.
	TraceID string `json:"trace_id,omitempty"`
}

// AvgTempSweepRequest is a (paginated) Fig. 9-a grid: rows iterate chip
// powers, columns laser powers.
type AvgTempSweepRequest struct {
	Scenario
	Chips    []float64 `json:"chips"`
	Lasers   []float64 `json:"lasers"`
	RowStart int       `json:"row_start,omitempty"`
	RowCount int       `json:"row_count,omitempty"`
}

// AvgTempSweepResponse returns the requested row window, fingerprinted
// like GradientSweepResponse.
type AvgTempSweepResponse struct {
	RowStart  int                  `json:"row_start"`
	TotalRows int                  `json:"total_rows"`
	Rows      [][]dse.AvgTempPoint `json:"rows"`
	ONICell   float64              `json:"oni_cell_m"`
	DieCell   float64              `json:"die_cell_m"`
	MaxZCell  float64              `json:"max_z_cell_m"`
	Solver    string               `json:"solver"`
	// TraceID echoes the request's X-Trace-ID.
	TraceID string `json:"trace_id,omitempty"`
}

// TransientRequest submits an asynchronous transient (warm-up) job: the
// operating point of a Scenario plus the integration horizon. The
// response is the job's initial JobStatus; progress is polled (or
// streamed) from the job endpoints.
type TransientRequest struct {
	Scenario
	// TimeStepS is the implicit-Euler step (s).
	TimeStepS float64 `json:"time_step_s"`
	// Steps is the number of steps to integrate (bounded by the server's
	// MaxJobSteps).
	Steps int `json:"steps"`
	// CheckpointEvery overrides the server's checkpoint cadence for this
	// job (steps); 0 keeps the server default.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// ID, when set, is the client-chosen job id (lowercase alphanumerics
	// and dashes, ≤ 64 chars). The fleet coordinator uses it to keep a
	// migrated job's identity across workers; a colliding id is refused
	// with HTTP 409. Empty lets the server mint one.
	ID string `json:"id,omitempty"`
	// Resume, when set, restores the job from this checkpoint instead of
	// starting at step 0 — the job-handoff half of checkpoint-driven
	// migration. The checkpoint's system fingerprint is hard-checked
	// against the spec's mesh/operator/powers before any step runs, so a
	// handoff to a worker with a different discretisation fails cleanly.
	Resume *fvm.TransientCheckpoint `json:"resume,omitempty"`
}

// JobState names a transient job's lifecycle phase.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the wire form of one transient job's progress.
type JobStatus struct {
	ID   string `json:"id"`
	Spec string `json:"spec"`
	// State is one of queued, running, done, failed.
	State string `json:"state"`
	// Step/Steps report progress; TimeS the simulated seconds so far.
	Step      int     `json:"step"`
	Steps     int     `json:"steps"`
	TimeS     float64 `json:"time_s"`
	TimeStepS float64 `json:"time_step_s"`
	// PeakTemp and MaxGradient are the latest per-step observations (°C).
	PeakTemp    float64 `json:"peak_temp_c,omitempty"`
	MaxGradient float64 `json:"max_gradient_c,omitempty"`
	// Resumed marks a job restored from a persisted checkpoint after a
	// daemon restart.
	Resumed bool `json:"resumed,omitempty"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Result is present once State is done.
	Result *TransientJobResult `json:"result,omitempty"`
	// TraceID is the trace that submitted the job, carried across
	// checkpoint-driven migrations so one ID follows the job between
	// workers.
	TraceID string `json:"trace_id,omitempty"`
}

// JobList is the paginated GET /v1/jobs answer: the requested window of
// jobs (sorted by id) plus enough bookkeeping to continue the walk —
// long-lived daemons accumulate history, and an unpaginated list would
// grow the response without bound.
type JobList struct {
	Jobs   []JobStatus `json:"jobs"`
	Total  int         `json:"total"`
	Offset int         `json:"offset"`
	// More reports whether jobs beyond this window remain; continue with
	// offset = Offset + len(Jobs).
	More bool `json:"more"`
}

// TransientJobResult is a completed job's final state: the standard ONI
// summary plus an integrity fingerprint of the full temperature field,
// so clients can assert two runs (e.g. interrupted-and-resumed vs
// uninterrupted) landed on bit-identical fields without shipping them.
type TransientJobResult struct {
	QueryResponse
	// FieldFingerprint hashes the final per-cell temperature field.
	FieldFingerprint string `json:"field_fingerprint"`
	// TimeS is the total simulated time (s).
	TimeS float64 `json:"time_s"`
}

// SpecInfo describes one registered spec's warm state.
type SpecInfo struct {
	Name string `json:"name"`
	// Resolution echoes the lateral/vertical cell sizes (m).
	ONICell  float64 `json:"oni_cell_m"`
	DieCell  float64 `json:"die_cell_m"`
	MaxZCell float64 `json:"max_z_cell_m"`
	// Solver is the effective sparse backend.
	Solver string `json:"solver"`
	// ModelReady and Cells report the lazily built mesh (Cells is 0 until
	// the first query forces the build).
	ModelReady bool `json:"model_ready"`
	Cells      int  `json:"cells,omitempty"`
	// BasisBuilds counts the unit-solve basis builds this spec has run.
	BasisBuilds int64 `json:"basis_builds"`
	// CacheHits/CacheMisses/CacheLen describe the query LRU.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheLen    int   `json:"cache_len"`
	// Batches and BatchedQueries count micro-batch flushes and the
	// queries they carried. BatchedQueries is also the spec's solve
	// count: every evaluation that actually ran went through the
	// batcher, so admitted − cache hits − coalesced ≈ BatchedQueries.
	Batches        int64 `json:"batches"`
	BatchedQueries int64 `json:"batched_queries"`
	// Admitted and Shed count hot-path queries through admission control
	// (both zero when admission is disabled); Clients is the tracked
	// per-client bucket count.
	Admitted int64 `json:"admitted"`
	Shed     int64 `json:"shed"`
	Clients  int   `json:"clients"`
	// CoalescedQueries counts queries that shared another identical
	// in-flight query's solve (query-granularity single-flight).
	CoalescedQueries int64 `json:"coalesced_queries"`
	// WarmBases and BasisEvictions describe the bounded basis LRU.
	WarmBases      int   `json:"warm_bases"`
	BasisEvictions int64 `json:"basis_evictions"`
	// QueryLatency and BatchSize mirror the server's /metrics histograms
	// in compact form so fleet placement can score workers by observed
	// tail latency. Pointer fields keep SpecInfo comparable (and are
	// stripped before mesh-fingerprint consensus comparisons).
	QueryLatency *obs.HistSnapshot `json:"query_latency,omitempty"`
	BatchSize    *obs.HistSnapshot `json:"batch_size,omitempty"`
}

// Health is the /healthz body.
type Health struct {
	Status  string     `json:"status"`
	UptimeS float64    `json:"uptime_s"`
	Specs   []SpecInfo `json:"specs"`
}

// errorBody is the JSON error envelope every non-2xx answer uses. Shed
// (429) answers additionally carry the retry schedule in milliseconds,
// mirroring the whole-second Retry-After header at finer grain.
type errorBody struct {
	Error        string  `json:"error"`
	RetryAfterMs float64 `json:"retry_after_ms,omitempty"`
	// TraceID echoes the request's X-Trace-ID so failures correlate with
	// logs and /debug/requests.
	TraceID string `json:"trace_id,omitempty"`
}

// parseCase maps the wire case number onto the placement enum.
func parseCase(n int) (ornoc.CaseStudy, error) {
	switch n {
	case 0, 3:
		return ornoc.Case47mm, nil
	case 1:
		return ornoc.Case18mm, nil
	case 2:
		return ornoc.Case32mm, nil
	default:
		return 0, fmt.Errorf("serve: unknown placement case %d (want 1, 2 or 3)", n)
	}
}

// parsePattern maps the wire pattern name onto the enum.
func parsePattern(name string) (core.CommPattern, error) {
	switch name {
	case "", "neighbour":
		return core.Neighbour, nil
	case "paired":
		return core.Paired, nil
	default:
		return 0, fmt.Errorf("serve: unknown pattern %q (want neighbour or paired)", name)
	}
}
