package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"vcselnoc/internal/thermal"
)

// jobServer builds a preview-resolution server with transient-job
// persistence in dir ("" keeps jobs in memory) and a tight checkpoint
// cadence so interruption tests always have a checkpoint to resume.
func jobServer(t *testing.T, dir string) *Server {
	t.Helper()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	s, err := New(Config{
		Specs:              map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow:        -1,
		JobDir:             dir,
		JobCheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func getJSON(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// pollJob polls a job until it reaches a terminal state.
func pollJob(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		w := getJSON(t, s, "/v1/jobs/"+id)
		if w.Code != http.StatusOK {
			t.Fatalf("job poll: HTTP %d (%s)", w.Code, w.Body.String())
		}
		st := decodeBody[JobStatus](t, w)
		if st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
	return JobStatus{}
}

// waitForStep blocks until the job has completed at least n steps.
func waitForStep(t *testing.T, s *Server, id string, n int) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		st := decodeBody[JobStatus](t, getJSON(t, s, "/v1/jobs/"+id))
		if st.Step >= n || st.State == JobDone || st.State == JobFailed {
			return st
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job never reached step %d", n)
	return JobStatus{}
}

const transientBody = `{"chip": 25, "pvcsel": 4e-3, "pheater": 1.2e-3, "time_step_s": 0.02, "steps": %d}`

// TestTransientJobBadInputs pins the submission error surface.
func TestTransientJobBadInputs(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"missing dt", `{"chip": 25, "steps": 5}`, http.StatusBadRequest},
		{"missing steps", `{"chip": 25, "time_step_s": 0.01}`, http.StatusBadRequest},
		{"steps over cap", `{"chip": 25, "time_step_s": 0.01, "steps": 1000001}`, http.StatusBadRequest},
		{"negative cadence", `{"chip": 25, "time_step_s": 0.01, "steps": 5, "checkpoint_every": -1}`, http.StatusBadRequest},
		{"negative power", `{"chip": -1, "time_step_s": 0.01, "steps": 5}`, http.StatusBadRequest},
		{"unknown activity", `{"chip": 25, "activity": "volcano", "time_step_s": 0.01, "steps": 5}`, http.StatusBadRequest},
		{"unknown spec", `{"chip": 25, "spec": "nope", "time_step_s": 0.01, "steps": 5}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := postJSON(t, s, "/v1/transient", tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body %q)", w.Code, tc.wantStatus, w.Body.String())
			}
			if decodeBody[errorBody](t, w).Error == "" {
				t.Fatal("empty error envelope")
			}
		})
	}
	if w := getJSON(t, s, "/v1/jobs/tj-nope"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job id: HTTP %d, want 404", w.Code)
	}
}

// TestTransientJobLifecycle: a submitted job runs to completion in the
// background and its result matches an in-process Model.SolveTransient
// of the same operating point — including a bit-identical field
// fingerprint, the through-the-endpoints half of the determinism
// guarantee.
func TestTransientJobLifecycle(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", "6").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	initial := decodeBody[JobStatus](t, w)
	if initial.ID == "" || initial.Steps != 6 {
		t.Fatalf("bad initial status %+v", initial)
	}
	if loc := w.Header().Get("Location"); loc != "/v1/jobs/"+initial.ID {
		t.Errorf("Location = %q", loc)
	}
	st := pollJob(t, s, initial.ID)
	if st.State != JobDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.Result == nil || st.Result.FieldFingerprint == "" {
		t.Fatal("done job has no result")
	}
	if st.Step != 6 || st.PeakTemp <= 25 {
		t.Errorf("final status %+v", st)
	}

	// The same run in-process must land on the identical field.
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	m, err := thermal.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.NewTransientRun(
		thermal.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3, Heater: 1.2e-3},
		thermal.TransientSpec{TimeStep: 0.02, Steps: 6})
	if err != nil {
		t.Fatal(err)
	}
	for !run.Done() {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := run.FieldFingerprint(); got != st.Result.FieldFingerprint {
		t.Errorf("job field fingerprint %s != in-process %s", st.Result.FieldFingerprint, got)
	}
	res, err := run.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := summarise(res); !reflect.DeepEqual(st.Result.QueryResponse, want) {
		t.Errorf("job summary %+v != in-process %+v", st.Result.QueryResponse, want)
	}

	// The job list includes it.
	list := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs"))
	if list.Total != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != initial.ID || list.More {
		t.Errorf("job list %+v", list)
	}
}

// TestTransientJobStream: the NDJSON stream must deliver status
// snapshots ending in a terminal state.
func TestTransientJobStream(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	hs := httptest.NewServer(s)
	defer hs.Close()
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", "5").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", w.Code)
	}
	id := decodeBody[JobStatus](t, w).ID
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type %q", ct)
	}
	var last JobStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("stream delivered nothing")
	}
	if last.State != JobDone && last.State != JobFailed {
		// The stream may end between the last observation and the
		// terminal update; the polled endpoint must still converge.
		last = pollJob(t, s, id)
	}
	if last.State != JobDone {
		t.Fatalf("stream ended with %+v", last)
	}
}

// TestTransientJobStreamEndsOnClose: Server.Close must release attached
// stream clients promptly — otherwise a graceful daemon shutdown stalls
// on open streams for its full drain timeout.
func TestTransientJobStreamEndsOnClose(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	hs := httptest.NewServer(s)
	defer hs.Close()
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", "100000").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", w.Code)
	}
	id := decodeBody[JobStatus](t, w).ID
	resp, err := http.Get(hs.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond) // let the stream attach
	start := time.Now()
	s.Close()
	select {
	case <-done:
		t.Logf("stream released %v after Close", time.Since(start))
	case <-time.After(10 * time.Second):
		t.Fatal("stream still open 10 s after Server.Close")
	}
}

// TestTransientJobSubmitRollsBackOnPersistFailure: a submission whose
// initial persist fails must not leave a phantom queued job holding a
// MaxJobs slot.
func TestTransientJobSubmitRollsBackOnPersistFailure(t *testing.T) {
	skipShort(t)
	dir := t.TempDir()
	s := jobServer(t, dir)
	if err := os.RemoveAll(dir); err != nil { // persistence now fails
		t.Fatal(err)
	}
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", "3").Replace(transientBody))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("submit with broken job dir: HTTP %d (%s)", w.Code, w.Body.String())
	}
	if list := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs")); list.Total != 0 {
		t.Errorf("phantom job retained after failed persist: %+v", list)
	}
}

// TestTransientJobResumeAcrossRestart is the acceptance check for
// resumable serving: a job interrupted by a daemon shutdown must resume
// from its checkpoint on the next daemon over the same job directory and
// finish bit-identically to an uninterrupted run.
func TestTransientJobResumeAcrossRestart(t *testing.T) {
	skipShort(t)
	dir := t.TempDir()

	// Uninterrupted reference through a throwaway server.
	ref := jobServer(t, "")
	w := postJSON(t, ref, "/v1/transient", strings.NewReplacer("%d", "30").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", w.Code)
	}
	want := pollJob(t, ref, decodeBody[JobStatus](t, w).ID)
	if want.State != JobDone {
		t.Fatalf("reference run failed: %+v", want)
	}

	// First daemon: submit, let it pass a few checkpoints, kill it.
	s1 := jobServer(t, dir)
	w = postJSON(t, s1, "/v1/transient", strings.NewReplacer("%d", "30").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", w.Code)
	}
	id := decodeBody[JobStatus](t, w).ID
	mid := waitForStep(t, s1, id, 5)
	s1.Close() // interrupt: persists a checkpoint at the exact current step
	if mid.State == JobFailed {
		t.Fatalf("job failed before interruption: %+v", mid)
	}

	// Second daemon over the same directory: the job resumes and
	// completes.
	s2 := jobServer(t, dir)
	st := pollJob(t, s2, id)
	if st.State != JobDone {
		t.Fatalf("resumed job failed: %+v", st)
	}
	// Only flag Resumed if the first daemon didn't already finish it (a
	// very fast machine could); the field identity check below is the
	// real assertion either way.
	interrupted := mid.State != JobDone
	if interrupted && !st.Resumed {
		t.Error("resumed job not marked Resumed")
	}
	if st.Result.FieldFingerprint != want.Result.FieldFingerprint {
		t.Errorf("resumed field fingerprint %s != uninterrupted %s",
			st.Result.FieldFingerprint, want.Result.FieldFingerprint)
	}
	if !reflect.DeepEqual(st.Result.QueryResponse, want.Result.QueryResponse) {
		t.Errorf("resumed summary %+v != uninterrupted %+v", st.Result.QueryResponse, want.Result.QueryResponse)
	}
}

// TestTransientJobCorruptCheckpoints: corrupt job files surface as
// failed jobs, and a checkpoint whose fingerprint does not match the
// server's mesh refuses to resume instead of silently continuing.
func TestTransientJobCorruptCheckpoints(t *testing.T) {
	skipShort(t)
	dir := t.TempDir()

	// A syntactically corrupt job file.
	if err := os.WriteFile(filepath.Join(dir, "tj-corrupt.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A well-formed job file whose checkpoint was taken on a different
	// (coarse-mesh) system.
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.CoarseResolution()
	mc, err := thermal.NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := mc.NewTransientRun(
		thermal.Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3, Heater: 1.2e-3},
		thermal.TransientSpec{TimeStep: 0.02, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Step(); err != nil {
		t.Fatal(err)
	}
	var req TransientRequest
	if err := json.Unmarshal([]byte(strings.NewReplacer("%d", "4").Replace(transientBody)), &req); err != nil {
		t.Fatal(err)
	}
	jf := PersistedJob{ID: "tj-mismatch", Request: req, State: JobRunning, Checkpoint: run.Checkpoint()}
	data, err := json.Marshal(jf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tj-mismatch.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := jobServer(t, dir) // preview-resolution mesh
	corrupt := decodeBody[JobStatus](t, getJSON(t, s, "/v1/jobs/tj-corrupt"))
	if corrupt.State != JobFailed || !strings.Contains(corrupt.Error, "corrupt") {
		t.Errorf("corrupt file surfaced as %+v", corrupt)
	}
	mismatch := pollJob(t, s, "tj-mismatch")
	if mismatch.State != JobFailed || !strings.Contains(mismatch.Error, "fingerprint") {
		t.Errorf("fingerprint mismatch surfaced as %+v", mismatch)
	}
}

// submitSteps submits a transient job of n steps and returns its id.
func submitSteps(t *testing.T, s *Server, n string) string {
	t.Helper()
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", n).Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	return decodeBody[JobStatus](t, w).ID
}

// TestJobListPagination: offset/limit windows are consistent with the
// full id-sorted listing, out-of-range offsets return empty windows, and
// malformed parameters are client errors.
func TestJobListPagination(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	for i := 0; i < 5; i++ {
		pollJob(t, s, submitSteps(t, s, "1"))
	}
	full := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs"))
	if full.Total != 5 || len(full.Jobs) != 5 || full.More {
		t.Fatalf("full listing %+v", full)
	}
	page := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs?offset=1&limit=2"))
	if page.Total != 5 || page.Offset != 1 || len(page.Jobs) != 2 || !page.More {
		t.Fatalf("page %+v", page)
	}
	if page.Jobs[0].ID != full.Jobs[1].ID || page.Jobs[1].ID != full.Jobs[2].ID {
		t.Errorf("page window %v misaligned with full listing", page.Jobs)
	}
	tail := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs?offset=3"))
	if len(tail.Jobs) != 2 || tail.More {
		t.Errorf("tail window %+v", tail)
	}
	empty := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs?offset=99"))
	if len(empty.Jobs) != 0 || empty.More || empty.Total != 5 {
		t.Errorf("past-the-end window %+v", empty)
	}
	for _, q := range []string{"?offset=-1", "?limit=x", "?offset=1.5"} {
		if w := getJSON(t, s, "/v1/jobs"+q); w.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", q, w.Code)
		}
	}
}

// TestJobTTLGC: terminal jobs older than JobTTL are dropped from both
// the listing and the job directory; the expired counter reaches
// /metrics.
func TestJobTTLGC(t *testing.T) {
	skipShort(t)
	dir := t.TempDir()
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	s, err := New(Config{
		Specs:              map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow:        -1,
		JobDir:             dir,
		JobCheckpointEvery: 2,
		JobTTL:             50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := submitSteps(t, s, "2")
	if st := pollJob(t, s, id); st.State != JobDone {
		t.Fatalf("job failed: %+v", st)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if list := decodeBody[JobList](t, getJSON(t, s, "/v1/jobs")); list.Total == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal job never garbage-collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".json")); !os.IsNotExist(err) {
		t.Errorf("job file survived GC: %v", err)
	}
	if w := getJSON(t, s, "/v1/jobs/"+id); w.Code != http.StatusNotFound {
		t.Errorf("collected job still resolvable: HTTP %d", w.Code)
	}
	if body := getJSON(t, s, "/metrics").Body.String(); !strings.Contains(body, "vcseld_jobs_expired_total 1") {
		t.Errorf("/metrics missing expired counter:\n%s", body)
	}
}

// TestJobCheckpointExportAndHandoff is the worker-side half of fleet
// migration: the checkpoint endpoint serves a running job's latest
// in-memory checkpoint even on a diskless server, and resubmitting that
// checkpoint (same id, resume field) to a second identical-spec server
// finishes bit-identically to an uninterrupted run.
func TestJobCheckpointExportAndHandoff(t *testing.T) {
	skipShort(t)

	// Uninterrupted reference.
	ref := jobServer(t, "")
	want := pollJob(t, ref, submitSteps(t, ref, "30"))
	if want.State != JobDone {
		t.Fatalf("reference failed: %+v", want)
	}

	// Diskless origin server: run past a checkpoint, export it.
	s1 := jobServer(t, "")
	id := submitSteps(t, s1, "30")
	if w := getJSON(t, s1, "/v1/jobs/"+id+"/checkpoint"); w.Code == http.StatusOK {
		// Plausible on a fast machine (first cadence hit already); fine.
		t.Logf("checkpoint available immediately")
	}
	waitForStep(t, s1, id, 5)
	cw := getJSON(t, s1, "/v1/jobs/"+id+"/checkpoint")
	if cw.Code != http.StatusOK {
		t.Fatalf("checkpoint export: HTTP %d (%s)", cw.Code, cw.Body.String())
	}
	s1.Close() // origin dies; its in-flight progress is abandoned

	// Survivor: resume under the same id from the exported checkpoint.
	s2 := jobServer(t, "")
	var req TransientRequest
	if err := json.Unmarshal([]byte(strings.NewReplacer("%d", "30").Replace(transientBody)), &req); err != nil {
		t.Fatal(err)
	}
	req.ID = id
	if err := json.Unmarshal(cw.Body.Bytes(), &req.Resume); err != nil {
		t.Fatalf("exported checkpoint not JSON: %v", err)
	}
	if req.Resume.Step < 1 {
		t.Fatalf("exported checkpoint at step %d", req.Resume.Step)
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, s2, "/v1/transient", string(body))
	if w.Code != http.StatusAccepted {
		t.Fatalf("resume submit: HTTP %d (%s)", w.Code, w.Body.String())
	}
	st := pollJob(t, s2, id)
	if st.State != JobDone || !st.Resumed {
		t.Fatalf("migrated job: %+v", st)
	}
	if st.Result.FieldFingerprint != want.Result.FieldFingerprint {
		t.Errorf("migrated fingerprint %s != uninterrupted %s",
			st.Result.FieldFingerprint, want.Result.FieldFingerprint)
	}
	if !reflect.DeepEqual(st.Result.QueryResponse, want.Result.QueryResponse) {
		t.Errorf("migrated summary %+v != uninterrupted %+v", st.Result.QueryResponse, want.Result.QueryResponse)
	}

	// The id is now taken: a duplicate submission conflicts.
	if w := postJSON(t, s2, "/v1/transient", string(body)); w.Code != http.StatusConflict {
		t.Errorf("duplicate id: HTTP %d, want 409", w.Code)
	}
	// Unknown job / bad ids on the checkpoint endpoint.
	if w := getJSON(t, s2, "/v1/jobs/tj-nope/checkpoint"); w.Code != http.StatusNotFound {
		t.Errorf("unknown job checkpoint: HTTP %d", w.Code)
	}
}

// TestTransientJobBadResume pins the resume-field error surface: ids
// must match the server's pattern, and a checkpoint beyond the requested
// horizon is a client error.
func TestTransientJobBadResume(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	for _, tc := range []struct{ name, body string }{
		{"bad id", `{"chip": 25, "time_step_s": 0.02, "steps": 4, "id": "../etc/passwd"}`},
		{"resume past horizon", `{"chip": 25, "time_step_s": 0.02, "steps": 4, "resume": {"version": 1, "system_fingerprint": "x", "power_fingerprint": "x", "solver": "cg", "tolerance": 1e-9, "time_step_s": 0.02, "step": 9, "t_c": [25]}}`},
		{"invalid resume", `{"chip": 25, "time_step_s": 0.02, "steps": 4, "resume": {"version": 99, "time_step_s": 0.02, "step": 1, "t_c": [25]}}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if w := postJSON(t, s, "/v1/transient", tc.body); w.Code != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400 (%s)", w.Code, w.Body.String())
			}
		})
	}
}

// TestMetricsEndpoint: the Prometheus text endpoint must expose the
// cache, basis, batch and job-state series.
func TestMetricsEndpoint(t *testing.T) {
	skipShort(t)
	s := jobServer(t, "")
	// One query and one job populate the counters.
	if w := postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3, "pheater": 0.6e-3}`); w.Code != http.StatusOK {
		t.Fatalf("gradient: HTTP %d (%s)", w.Code, w.Body.String())
	}
	w := postJSON(t, s, "/v1/transient", strings.NewReplacer("%d", "3").Replace(transientBody))
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", w.Code)
	}
	pollJob(t, s, decodeBody[JobStatus](t, w).ID)

	mw := getJSON(t, s, "/metrics")
	if mw.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", mw.Code)
	}
	if ct := mw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q", ct)
	}
	body := mw.Body.String()
	for _, want := range []string{
		"vcseld_uptime_seconds",
		`vcseld_cache_misses_total{spec="default"} 1`,
		`vcseld_basis_builds_total{spec="default"} 1`,
		`vcseld_batches_total{spec="default"}`,
		`vcseld_jobs{state="done"} 1`,
		`vcseld_jobs{state="failed"} 0`,
		"vcseld_job_steps_total 3",
		`vcseld_model_cells{spec="default"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n%s", want, body)
		}
	}
}
