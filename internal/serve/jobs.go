package serve

// Async transient jobs: POST /v1/transient returns a job id immediately,
// the integration runs in the background against the spec's warm model,
// and GET /v1/jobs/{id} reports progress (with an NDJSON stream variant
// for live monitoring). Jobs checkpoint periodically into the server's
// JobDir through the thermal layer's checkpoint sink; a daemon restarted
// over the same directory resumes every unfinished job from its last
// checkpoint, and the fvm fingerprint check guarantees a resumed job can
// never silently continue on a different mesh, operator or power vector.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/fvm"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/thermal"
)

// jobConcurrency bounds transient jobs integrating at once: each job's
// solves already use the spec's worker pool, so running many concurrently
// oversubscribes the CPU without finishing anything sooner.
const jobConcurrency = 2

// jobIDPattern validates ids loaded from checkpoint filenames.
var jobIDPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// jobManager owns the transient jobs of one Server.
type jobManager struct {
	srv      *Server
	dir      string
	every    int
	maxJobs  int
	maxSteps int
	ttl      time.Duration

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu   sync.Mutex
	jobs map[string]*transientJob

	// stepsTotal counts integration steps executed across all jobs — a
	// /metrics counter. expired counts TTL garbage collections.
	stepsTotal atomic.Int64
	expired    atomic.Int64
}

// transientJob is one job's mutable state plus its stream subscribers.
type transientJob struct {
	id  string
	req TransientRequest

	mu     sync.Mutex
	status JobStatus
	subs   map[chan JobStatus]struct{}
	// lastCP is the most recent checkpoint (in memory even without a
	// JobDir) — what GET /v1/jobs/{id}/checkpoint exports so a
	// coordinator can migrate the job without filesystem access.
	lastCP *fvm.TransientCheckpoint
	// doneAt timestamps the terminal transition for TTL garbage
	// collection.
	doneAt time.Time
}

// snapshot returns a copy of the status under the job lock.
func (j *transientJob) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status and broadcasts the new snapshot to stream
// subscribers; a terminal state closes their channels.
func (j *transientJob) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	snap := j.status
	terminal := snap.State == JobDone || snap.State == JobFailed
	if terminal && j.doneAt.IsZero() {
		j.doneAt = time.Now()
	}
	for ch := range j.subs {
		select {
		case ch <- snap:
		default: // slow subscriber: drop the intermediate snapshot
		}
		if terminal {
			close(ch)
			delete(j.subs, ch)
		}
	}
	j.mu.Unlock()
}

// subscribe registers a stream listener and returns the channel plus the
// current snapshot. A terminal job returns a closed channel.
func (j *transientJob) subscribe() (chan JobStatus, JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan JobStatus, 16)
	if j.status.State == JobDone || j.status.State == JobFailed {
		close(ch)
		return ch, j.status
	}
	if j.subs == nil {
		j.subs = make(map[chan JobStatus]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, j.status
}

func (j *transientJob) unsubscribe(ch chan JobStatus) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// setCheckpoint records the job's latest checkpoint for export.
func (j *transientJob) setCheckpoint(cp *fvm.TransientCheckpoint) {
	j.mu.Lock()
	j.lastCP = cp
	j.mu.Unlock()
}

// checkpoint returns the latest recorded checkpoint (nil before the
// first cadence).
func (j *transientJob) checkpoint() *fvm.TransientCheckpoint {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastCP
}

// expiredAt reports whether the job is terminal and older than the
// cutoff.
func (j *transientJob) expiredAt(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return !j.doneAt.IsZero() && j.doneAt.Before(cutoff)
}

func newJobManager(s *Server, cfg Config) *jobManager {
	every := cfg.JobCheckpointEvery
	if every <= 0 {
		every = DefaultJobCheckpointEvery
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	maxSteps := cfg.MaxJobSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxJobSteps
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{
		srv: s, dir: cfg.JobDir,
		every: every, maxJobs: maxJobs, maxSteps: maxSteps,
		ttl: cfg.JobTTL,
		ctx: ctx, cancel: cancel,
		sem:  make(chan struct{}, jobConcurrency),
		jobs: make(map[string]*transientJob),
	}
}

// stop interrupts every running job (each persists a checkpoint of its
// exact current step first when persistence is on) and waits for the job
// goroutines to exit.
func (jm *jobManager) stop() {
	jm.cancel()
	jm.wg.Wait()
}

// startGC launches the age-based job garbage collector when a TTL is
// configured: terminal jobs older than the TTL are dropped from the
// registry (and their files removed) so long-lived daemons don't grow
// unboundedly. Running and queued jobs are never collected.
func (jm *jobManager) startGC() {
	if jm.ttl <= 0 {
		return
	}
	interval := jm.ttl / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Minute {
		interval = time.Minute
	}
	jm.wg.Add(1)
	go func() {
		defer jm.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-jm.ctx.Done():
				return
			case <-t.C:
				jm.gcExpired(time.Now().Add(-jm.ttl))
			}
		}
	}()
}

// gcExpired removes terminal jobs older than the cutoff.
func (jm *jobManager) gcExpired(cutoff time.Time) {
	jm.mu.Lock()
	var drop []string
	for id, j := range jm.jobs {
		if j.expiredAt(cutoff) {
			drop = append(drop, id)
			delete(jm.jobs, id)
		}
	}
	jm.mu.Unlock()
	for _, id := range drop {
		jm.expired.Add(1)
		if jm.dir != "" {
			os.Remove(filepath.Join(jm.dir, id+".json")) //nolint:errcheck // best-effort cleanup of already-forgotten jobs
		}
	}
}

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: crypto/rand unavailable: %v", err))
	}
	return "tj-" + hex.EncodeToString(b[:])
}

// validate rejects malformed submissions before a job is created.
func (jm *jobManager) validate(req TransientRequest) error {
	if _, err := jm.srv.state(req.specName()); err != nil {
		return notFound(err)
	}
	if _, err := req.activityScenario(); err != nil {
		return badRequest(err)
	}
	if err := req.powers().Validate(); err != nil {
		return badRequest(err)
	}
	if req.TimeStepS <= 0 {
		return badRequest(fmt.Errorf("serve: time_step_s %g must be > 0", req.TimeStepS))
	}
	if req.Steps <= 0 || req.Steps > jm.maxSteps {
		return badRequest(fmt.Errorf("serve: steps %d outside [1, %d]", req.Steps, jm.maxSteps))
	}
	if req.CheckpointEvery < 0 {
		return badRequest(fmt.Errorf("serve: negative checkpoint_every %d", req.CheckpointEvery))
	}
	if req.ID != "" && !jobIDPattern.MatchString(req.ID) {
		return badRequest(fmt.Errorf("serve: job id %q must match %s", req.ID, jobIDPattern))
	}
	if req.Resume != nil {
		if err := req.Resume.Validate(); err != nil {
			return badRequest(fmt.Errorf("serve: resume checkpoint: %w", err))
		}
		if req.Resume.Step > req.Steps {
			return badRequest(fmt.Errorf("serve: resume checkpoint is at step %d, beyond the job's %d steps", req.Resume.Step, req.Steps))
		}
	}
	return nil
}

// submit registers a new job and starts its background run. A request
// carrying an ID keeps it (the coordinator's migration handoff relies on
// a migrated job keeping its identity on the new worker); a request
// carrying a Resume checkpoint continues from it instead of step 0.
// traceID is the submitting request's trace, carried on the job status
// (and its persisted file) so migrated jobs keep one trace end to end.
func (jm *jobManager) submit(req TransientRequest, traceID string) (*transientJob, error) {
	if err := jm.validate(req); err != nil {
		return nil, err
	}
	id := req.ID
	if id == "" {
		id = newJobID()
	}
	// The checkpoint travels in the job file's Checkpoint slot (and the
	// in-memory lastCP), not inside the stored request — persisting it
	// twice would double every job file's dominant payload.
	cp := req.Resume
	req.Resume = nil
	j := &transientJob{
		id:  id,
		req: req,
		status: JobStatus{
			Spec: req.specName(), State: JobQueued,
			Steps: req.Steps, TimeStepS: req.TimeStepS,
			TraceID: traceID,
		},
	}
	j.status.ID = j.id
	if cp != nil {
		j.lastCP = cp
		j.status.Step = cp.Step
		j.status.TimeS = float64(cp.Step) * req.TimeStepS
	}
	jm.mu.Lock()
	if _, exists := jm.jobs[j.id]; exists {
		jm.mu.Unlock()
		return nil, &statusError{
			code: http.StatusConflict,
			err:  fmt.Errorf("serve: job id %q already exists", j.id),
		}
	}
	if len(jm.jobs) >= jm.maxJobs {
		jm.mu.Unlock()
		return nil, &statusError{
			code: http.StatusTooManyRequests,
			err:  fmt.Errorf("serve: %d transient jobs already retained (raise Config.MaxJobs)", jm.maxJobs),
		}
	}
	jm.jobs[j.id] = j
	jm.mu.Unlock()
	if err := jm.persist(j, cp); err != nil {
		// Unregister the never-started job: leaving it would hold a
		// MaxJobs slot as a phantom "queued" entry forever.
		jm.mu.Lock()
		delete(jm.jobs, j.id)
		jm.mu.Unlock()
		return nil, err
	}
	jm.start(j, cp)
	return j, nil
}

// start launches the background integration goroutine.
func (jm *jobManager) start(j *transientJob, cp *fvm.TransientCheckpoint) {
	jm.wg.Add(1)
	go jm.run(j, cp)
}

// get resolves a job id.
func (jm *jobManager) get(id string) (*transientJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	return j, ok
}

// list snapshots every job, sorted by id.
func (jm *jobManager) list() []JobStatus {
	jm.mu.Lock()
	jobs := make([]*transientJob, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// stateCounts tallies jobs per lifecycle state (the /metrics gauge).
func (jm *jobManager) stateCounts() map[string]int {
	counts := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, st := range jm.list() {
		counts[st.State]++
	}
	return counts
}

// fail marks the job failed and persists the verdict.
func (jm *jobManager) fail(j *transientJob, err error) {
	j.update(func(s *JobStatus) {
		s.State = JobFailed
		s.Error = err.Error()
	})
	jm.persist(j, nil) //nolint:errcheck // the job state itself carries the error
	snap := j.snapshot()
	jm.srv.logger.Warn("job failed",
		"job", j.id, "trace_id", snap.TraceID, "spec", snap.Spec, "err", err.Error())
}

// run integrates one job to completion (or interruption) in the
// background. cp, when non-nil, resumes a persisted checkpoint.
func (jm *jobManager) run(j *transientJob, cp *fvm.TransientCheckpoint) {
	defer jm.wg.Done()
	// Bound concurrent integrations; an interrupted wait stays queued and
	// resumes on the next daemon start (the submission was persisted).
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-jm.ctx.Done():
		return
	}
	st, err := jm.srv.state(j.req.specName())
	if err != nil {
		jm.fail(j, err)
		return
	}
	meth, err := st.methodology()
	if err != nil {
		jm.fail(j, err)
		return
	}
	act, err := j.req.activityScenario()
	if err != nil {
		jm.fail(j, err)
		return
	}
	powers := j.req.powers()
	powers.Activity = act

	every := j.req.CheckpointEvery
	if every <= 0 {
		every = jm.every
	}
	ts := thermal.TransientSpec{
		TimeStep: j.req.TimeStepS, Steps: j.req.Steps,
		CheckpointEvery: every, Resume: cp,
		Observer: func(o thermal.TransientObservation) {
			jm.stepsTotal.Add(1)
			j.update(func(s *JobStatus) {
				s.Step = o.Step
				s.TimeS = o.TimeS
				s.PeakTemp = o.PeakTemp
				s.MaxGradient = o.MaxGradient
			})
		},
	}
	// The cadence sink always records the checkpoint in memory (the
	// export endpoint serves it to migrating coordinators even on
	// diskless workers) and additionally persists it when a JobDir is
	// configured.
	ts.Checkpoint = func(cp *fvm.TransientCheckpoint) error {
		j.setCheckpoint(cp)
		if jm.dir == "" {
			return nil
		}
		return jm.persist(j, cp)
	}
	run, err := meth.Model().NewTransientRun(powers, ts)
	if err != nil {
		jm.fail(j, err)
		return
	}
	j.update(func(s *JobStatus) {
		s.State = JobRunning
		s.Step = run.StepIndex()
		s.TimeS = run.Time()
		s.Resumed = run.Resumed()
	})
	for !run.Done() {
		select {
		case <-jm.ctx.Done():
			// Interrupted (daemon shutdown): checkpoint the exact current
			// step so the next start resumes bit-identically, and leave
			// the persisted state non-terminal.
			cp := run.Checkpoint()
			j.setCheckpoint(cp)
			if jm.dir != "" {
				jm.persist(j, cp) //nolint:errcheck // shutting down; the prior cadence checkpoint remains
			}
			return
		default:
		}
		if err := run.Step(); err != nil {
			jm.fail(j, err)
			return
		}
	}
	res, err := run.Result()
	if err != nil {
		jm.fail(j, err)
		return
	}
	result := &TransientJobResult{
		QueryResponse:    summarise(res),
		FieldFingerprint: run.FieldFingerprint(),
		TimeS:            run.Time(),
	}
	j.update(func(s *JobStatus) {
		s.State = JobDone
		s.Result = result
	})
	jm.persist(j, nil) //nolint:errcheck // completed in memory; persistence is best-effort at this point
	snap := j.snapshot()
	jm.srv.logger.Info("job done",
		"job", j.id, "trace_id", snap.TraceID, "spec", snap.Spec,
		"steps", snap.Steps, "time_s", snap.TimeS)
}

// PersistedJob is the on-disk form of one job in a -job-dir: the
// submission, the lifecycle verdict, and (for unfinished jobs) the
// latest checkpoint to resume from. It is exported because it is also
// the fleet coordinator's migration source: when a worker dies, the
// coordinator reads `<job-dir>/<id>.json` off the dead worker's
// directory and resubmits Request with Checkpoint as the Resume point on
// a survivor.
type PersistedJob struct {
	ID         string                   `json:"id"`
	Request    TransientRequest         `json:"request"`
	State      string                   `json:"state"`
	Error      string                   `json:"error,omitempty"`
	Result     *TransientJobResult      `json:"result,omitempty"`
	Checkpoint *fvm.TransientCheckpoint `json:"checkpoint,omitempty"`
	// TraceID is the submitting request's trace, restored on daemon
	// restart so a resumed job keeps correlating with its original logs.
	TraceID string `json:"trace_id,omitempty"`
}

// persist atomically writes the job's file (tmp + rename). cp carries the
// latest checkpoint for unfinished jobs; terminal jobs drop the field —
// the result is what matters then.
func (jm *jobManager) persist(j *transientJob, cp *fvm.TransientCheckpoint) error {
	if jm.dir == "" {
		return nil
	}
	snap := j.snapshot()
	jf := PersistedJob{
		ID: j.id, Request: j.req,
		State: snap.State, Error: snap.Error, Result: snap.Result,
		TraceID: snap.TraceID,
	}
	if snap.State != JobDone && snap.State != JobFailed {
		jf.Checkpoint = cp
	}
	data, err := json.Marshal(jf)
	if err != nil {
		return fmt.Errorf("serve: marshalling job %s: %w", j.id, err)
	}
	path := filepath.Join(jm.dir, j.id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: persisting job %s: %w", j.id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: persisting job %s: %w", j.id, err)
	}
	return nil
}

// loadPersisted restores jobs from the job directory at startup:
// completed and failed jobs become queryable history, unfinished jobs
// resume from their last checkpoint (or from scratch when none was
// reached). Corrupt files become failed jobs so operators see them
// instead of silently losing work.
func (jm *jobManager) loadPersisted() error {
	if jm.dir == "" {
		return nil
	}
	if err := os.MkdirAll(jm.dir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	entries, err := os.ReadDir(jm.dir)
	if err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !jobIDPattern.MatchString(id) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(jm.dir, name))
		var jf PersistedJob
		if err == nil {
			err = json.Unmarshal(data, &jf)
		}
		if err == nil && jf.ID != id {
			err = fmt.Errorf("job file %s names id %q", name, jf.ID)
		}
		if err == nil && jf.Checkpoint != nil {
			err = jf.Checkpoint.Validate()
		}
		j := &transientJob{id: id}
		if err != nil {
			j.status = JobStatus{
				ID: id, State: JobFailed,
				Error: fmt.Sprintf("serve: corrupt job file: %v", err),
			}
			j.doneAt = time.Now()
			jm.jobs[id] = j
			continue
		}
		j.req = jf.Request
		j.status = JobStatus{
			ID: id, Spec: jf.Request.specName(), State: jf.State,
			Steps: jf.Request.Steps, TimeStepS: jf.Request.TimeStepS,
			Error: jf.Error, Result: jf.Result,
			TraceID: jf.TraceID,
		}
		j.lastCP = jf.Checkpoint
		// Terminal jobs age for the TTL collector from their file's
		// mtime — the best persisted approximation of when they finished.
		if jf.State == JobDone || jf.State == JobFailed {
			j.doneAt = time.Now()
			if info, err := e.Info(); err == nil {
				j.doneAt = info.ModTime()
			}
		}
		switch jf.State {
		case JobDone:
			j.status.Step = jf.Request.Steps
			j.status.TimeS = float64(jf.Request.Steps) * jf.Request.TimeStepS
			jm.jobs[id] = j
		case JobFailed:
			jm.jobs[id] = j
		default:
			// Unfinished: resume from the checkpoint (nil restarts from
			// step 0 — the run never reached its first cadence).
			j.status.State = JobQueued
			if jf.Checkpoint != nil {
				j.status.Step = jf.Checkpoint.Step
				j.status.TimeS = float64(jf.Checkpoint.Step) * jf.Request.TimeStepS
			}
			jm.jobs[id] = j
			jm.start(j, jf.Checkpoint)
		}
	}
	return nil
}

// --- HTTP handlers -----------------------------------------------------

// maxTransientBodyBytes bounds transient submissions separately from the
// general request cap: a migration handoff carries a full per-cell
// checkpoint field (~20 MB of JSON at paper resolution), far beyond the
// 1 MB that bounds every other endpoint.
const maxTransientBodyBytes = 64 << 20

// handleTransientSubmit accepts a transient job and returns its initial
// status with 202 Accepted.
func (s *Server) handleTransientSubmit(w http.ResponseWriter, r *http.Request) {
	traceID := r.Header.Get(obs.TraceHeader)
	var req TransientRequest
	if err := decodeLimit(r, &req, maxTransientBodyBytes); err != nil {
		writeErrTrace(w, traceID, err)
		return
	}
	j, err := s.jobs.submit(req, traceID)
	if err != nil {
		writeErrTrace(w, traceID, err)
		return
	}
	snap := j.snapshot()
	s.logger.Info("job accepted",
		"job", j.id, "trace_id", traceID, "spec", snap.Spec,
		"steps", snap.Steps, "resume_step", snap.Step)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(snap)
}

// pageParam parses one non-negative pagination query parameter.
func pageParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, badRequest(fmt.Errorf("serve: %s %q must be a non-negative integer", name, raw))
	}
	return n, nil
}

// handleJobs lists retained jobs, paginated: ?offset=N skips the first N
// (id-sorted) jobs, ?limit=M caps the window (0 or absent returns the
// rest). An offset beyond the end returns an empty window, not an error,
// so pagination loops terminate cleanly.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	offset, err := pageParam(r, "offset")
	if err != nil {
		writeErr(w, err)
		return
	}
	limit, err := pageParam(r, "limit")
	if err != nil {
		writeErr(w, err)
		return
	}
	all := s.jobs.list()
	lo := offset
	if lo > len(all) {
		lo = len(all)
	}
	hi := len(all)
	if limit > 0 && lo+limit < hi {
		hi = lo + limit
	}
	writeJSON(w, JobList{
		Jobs:   all[lo:hi],
		Total:  len(all),
		Offset: offset,
		More:   hi < len(all),
	})
}

// handleJobCheckpoint exports a job's latest checkpoint — the
// coordinator's migration source for workers running without a shared
// job directory. 404 until the first cadence checkpoint exists.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, notFound(fmt.Errorf("serve: unknown job %q", r.PathValue("id"))))
		return
	}
	cp := j.checkpoint()
	if cp == nil {
		writeErr(w, notFound(fmt.Errorf("serve: job %q has no checkpoint yet", j.id)))
		return
	}
	writeJSON(w, cp)
}

// handleJob reports one job's progress (and result once done).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, notFound(fmt.Errorf("serve: unknown job %q", r.PathValue("id"))))
		return
	}
	writeJSON(w, j.snapshot())
}

// handleJobStream streams a job's status snapshots as NDJSON until the
// job reaches a terminal state or the client goes away. The first line
// is always the current status, so a late subscriber still sees the
// final state of a finished job.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, notFound(fmt.Errorf("serve: unknown job %q", r.PathValue("id"))))
		return
	}
	flusher, _ := w.(http.Flusher)
	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	terminal := func(st JobStatus) bool { return st.State == JobDone || st.State == JobFailed }
	if err := enc.Encode(snap); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	last := snap
	for {
		select {
		case st, open := <-ch:
			if !open {
				// The broadcast may have dropped the terminal snapshot on
				// a lagging subscriber; guarantee the stream still ends
				// with the final state (result included).
				if !terminal(last) {
					_ = enc.Encode(j.snapshot())
				}
				return
			}
			if err := enc.Encode(st); err != nil {
				return
			}
			last = st
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.jobs.ctx.Done():
			// Server shutdown: end the stream so graceful HTTP drains do
			// not stall on attached stream clients.
			return
		}
	}
}
