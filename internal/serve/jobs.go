package serve

// Async transient jobs: POST /v1/transient returns a job id immediately,
// the integration runs in the background against the spec's warm model,
// and GET /v1/jobs/{id} reports progress (with an NDJSON stream variant
// for live monitoring). Jobs checkpoint periodically into the server's
// JobDir through the thermal layer's checkpoint sink; a daemon restarted
// over the same directory resumes every unfinished job from its last
// checkpoint, and the fvm fingerprint check guarantees a resumed job can
// never silently continue on a different mesh, operator or power vector.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vcselnoc/internal/fvm"
	"vcselnoc/internal/thermal"
)

// jobConcurrency bounds transient jobs integrating at once: each job's
// solves already use the spec's worker pool, so running many concurrently
// oversubscribes the CPU without finishing anything sooner.
const jobConcurrency = 2

// jobIDPattern validates ids loaded from checkpoint filenames.
var jobIDPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]{0,63}$`)

// jobManager owns the transient jobs of one Server.
type jobManager struct {
	srv      *Server
	dir      string
	every    int
	maxJobs  int
	maxSteps int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	sem    chan struct{}

	mu   sync.Mutex
	jobs map[string]*transientJob

	// stepsTotal counts integration steps executed across all jobs — a
	// /metrics counter.
	stepsTotal atomic.Int64
}

// transientJob is one job's mutable state plus its stream subscribers.
type transientJob struct {
	id  string
	req TransientRequest

	mu     sync.Mutex
	status JobStatus
	subs   map[chan JobStatus]struct{}
}

// snapshot returns a copy of the status under the job lock.
func (j *transientJob) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// update mutates the status and broadcasts the new snapshot to stream
// subscribers; a terminal state closes their channels.
func (j *transientJob) update(fn func(*JobStatus)) {
	j.mu.Lock()
	fn(&j.status)
	snap := j.status
	terminal := snap.State == JobDone || snap.State == JobFailed
	for ch := range j.subs {
		select {
		case ch <- snap:
		default: // slow subscriber: drop the intermediate snapshot
		}
		if terminal {
			close(ch)
			delete(j.subs, ch)
		}
	}
	j.mu.Unlock()
}

// subscribe registers a stream listener and returns the channel plus the
// current snapshot. A terminal job returns a closed channel.
func (j *transientJob) subscribe() (chan JobStatus, JobStatus) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan JobStatus, 16)
	if j.status.State == JobDone || j.status.State == JobFailed {
		close(ch)
		return ch, j.status
	}
	if j.subs == nil {
		j.subs = make(map[chan JobStatus]struct{})
	}
	j.subs[ch] = struct{}{}
	return ch, j.status
}

func (j *transientJob) unsubscribe(ch chan JobStatus) {
	j.mu.Lock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
	j.mu.Unlock()
}

func newJobManager(s *Server, cfg Config) *jobManager {
	every := cfg.JobCheckpointEvery
	if every <= 0 {
		every = DefaultJobCheckpointEvery
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = DefaultMaxJobs
	}
	maxSteps := cfg.MaxJobSteps
	if maxSteps <= 0 {
		maxSteps = DefaultMaxJobSteps
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &jobManager{
		srv: s, dir: cfg.JobDir,
		every: every, maxJobs: maxJobs, maxSteps: maxSteps,
		ctx: ctx, cancel: cancel,
		sem:  make(chan struct{}, jobConcurrency),
		jobs: make(map[string]*transientJob),
	}
}

// stop interrupts every running job (each persists a checkpoint of its
// exact current step first when persistence is on) and waits for the job
// goroutines to exit.
func (jm *jobManager) stop() {
	jm.cancel()
	jm.wg.Wait()
}

func newJobID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("serve: crypto/rand unavailable: %v", err))
	}
	return "tj-" + hex.EncodeToString(b[:])
}

// validate rejects malformed submissions before a job is created.
func (jm *jobManager) validate(req TransientRequest) error {
	if _, err := jm.srv.state(req.specName()); err != nil {
		return notFound(err)
	}
	if _, err := req.activityScenario(); err != nil {
		return badRequest(err)
	}
	if err := req.powers().Validate(); err != nil {
		return badRequest(err)
	}
	if req.TimeStepS <= 0 {
		return badRequest(fmt.Errorf("serve: time_step_s %g must be > 0", req.TimeStepS))
	}
	if req.Steps <= 0 || req.Steps > jm.maxSteps {
		return badRequest(fmt.Errorf("serve: steps %d outside [1, %d]", req.Steps, jm.maxSteps))
	}
	if req.CheckpointEvery < 0 {
		return badRequest(fmt.Errorf("serve: negative checkpoint_every %d", req.CheckpointEvery))
	}
	return nil
}

// submit registers a new job and starts its background run.
func (jm *jobManager) submit(req TransientRequest) (*transientJob, error) {
	if err := jm.validate(req); err != nil {
		return nil, err
	}
	j := &transientJob{
		id:  newJobID(),
		req: req,
		status: JobStatus{
			Spec: req.specName(), State: JobQueued,
			Steps: req.Steps, TimeStepS: req.TimeStepS,
		},
	}
	j.status.ID = j.id
	jm.mu.Lock()
	if len(jm.jobs) >= jm.maxJobs {
		jm.mu.Unlock()
		return nil, &statusError{
			code: http.StatusTooManyRequests,
			err:  fmt.Errorf("serve: %d transient jobs already retained (raise Config.MaxJobs)", jm.maxJobs),
		}
	}
	jm.jobs[j.id] = j
	jm.mu.Unlock()
	if err := jm.persist(j, nil); err != nil {
		// Unregister the never-started job: leaving it would hold a
		// MaxJobs slot as a phantom "queued" entry forever.
		jm.mu.Lock()
		delete(jm.jobs, j.id)
		jm.mu.Unlock()
		return nil, err
	}
	jm.start(j, nil)
	return j, nil
}

// start launches the background integration goroutine.
func (jm *jobManager) start(j *transientJob, cp *fvm.TransientCheckpoint) {
	jm.wg.Add(1)
	go jm.run(j, cp)
}

// get resolves a job id.
func (jm *jobManager) get(id string) (*transientJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	return j, ok
}

// list snapshots every job, sorted by id.
func (jm *jobManager) list() []JobStatus {
	jm.mu.Lock()
	jobs := make([]*transientJob, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		jobs = append(jobs, j)
	}
	jm.mu.Unlock()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// stateCounts tallies jobs per lifecycle state (the /metrics gauge).
func (jm *jobManager) stateCounts() map[string]int {
	counts := map[string]int{JobQueued: 0, JobRunning: 0, JobDone: 0, JobFailed: 0}
	for _, st := range jm.list() {
		counts[st.State]++
	}
	return counts
}

// fail marks the job failed and persists the verdict.
func (jm *jobManager) fail(j *transientJob, err error) {
	j.update(func(s *JobStatus) {
		s.State = JobFailed
		s.Error = err.Error()
	})
	jm.persist(j, nil) //nolint:errcheck // the job state itself carries the error
}

// run integrates one job to completion (or interruption) in the
// background. cp, when non-nil, resumes a persisted checkpoint.
func (jm *jobManager) run(j *transientJob, cp *fvm.TransientCheckpoint) {
	defer jm.wg.Done()
	// Bound concurrent integrations; an interrupted wait stays queued and
	// resumes on the next daemon start (the submission was persisted).
	select {
	case jm.sem <- struct{}{}:
		defer func() { <-jm.sem }()
	case <-jm.ctx.Done():
		return
	}
	st, err := jm.srv.state(j.req.specName())
	if err != nil {
		jm.fail(j, err)
		return
	}
	meth, err := st.methodology()
	if err != nil {
		jm.fail(j, err)
		return
	}
	act, err := j.req.activityScenario()
	if err != nil {
		jm.fail(j, err)
		return
	}
	powers := j.req.powers()
	powers.Activity = act

	every := j.req.CheckpointEvery
	if every <= 0 {
		every = jm.every
	}
	ts := thermal.TransientSpec{
		TimeStep: j.req.TimeStepS, Steps: j.req.Steps,
		CheckpointEvery: every, Resume: cp,
		Observer: func(o thermal.TransientObservation) {
			jm.stepsTotal.Add(1)
			j.update(func(s *JobStatus) {
				s.Step = o.Step
				s.TimeS = o.TimeS
				s.PeakTemp = o.PeakTemp
				s.MaxGradient = o.MaxGradient
			})
		},
	}
	if jm.dir != "" {
		ts.Checkpoint = func(cp *fvm.TransientCheckpoint) error { return jm.persist(j, cp) }
	}
	run, err := meth.Model().NewTransientRun(powers, ts)
	if err != nil {
		jm.fail(j, err)
		return
	}
	j.update(func(s *JobStatus) {
		s.State = JobRunning
		s.Step = run.StepIndex()
		s.TimeS = run.Time()
		s.Resumed = run.Resumed()
	})
	for !run.Done() {
		select {
		case <-jm.ctx.Done():
			// Interrupted (daemon shutdown): checkpoint the exact current
			// step so the next start resumes bit-identically, and leave
			// the persisted state non-terminal.
			if jm.dir != "" {
				jm.persist(j, run.Checkpoint()) //nolint:errcheck // shutting down; the prior cadence checkpoint remains
			}
			return
		default:
		}
		if err := run.Step(); err != nil {
			jm.fail(j, err)
			return
		}
	}
	res, err := run.Result()
	if err != nil {
		jm.fail(j, err)
		return
	}
	result := &TransientJobResult{
		QueryResponse:    summarise(res),
		FieldFingerprint: run.FieldFingerprint(),
		TimeS:            run.Time(),
	}
	j.update(func(s *JobStatus) {
		s.State = JobDone
		s.Result = result
	})
	jm.persist(j, nil) //nolint:errcheck // completed in memory; persistence is best-effort at this point
}

// jobFile is the on-disk form of one job: the submission, the lifecycle
// verdict, and (for unfinished jobs) the latest checkpoint to resume
// from.
type jobFile struct {
	ID         string                   `json:"id"`
	Request    TransientRequest         `json:"request"`
	State      string                   `json:"state"`
	Error      string                   `json:"error,omitempty"`
	Result     *TransientJobResult      `json:"result,omitempty"`
	Checkpoint *fvm.TransientCheckpoint `json:"checkpoint,omitempty"`
}

// persist atomically writes the job's file (tmp + rename). cp carries the
// latest checkpoint for unfinished jobs; terminal jobs drop the field —
// the result is what matters then.
func (jm *jobManager) persist(j *transientJob, cp *fvm.TransientCheckpoint) error {
	if jm.dir == "" {
		return nil
	}
	snap := j.snapshot()
	jf := jobFile{
		ID: j.id, Request: j.req,
		State: snap.State, Error: snap.Error, Result: snap.Result,
	}
	if snap.State != JobDone && snap.State != JobFailed {
		jf.Checkpoint = cp
	}
	data, err := json.Marshal(jf)
	if err != nil {
		return fmt.Errorf("serve: marshalling job %s: %w", j.id, err)
	}
	path := filepath.Join(jm.dir, j.id+".json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serve: persisting job %s: %w", j.id, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serve: persisting job %s: %w", j.id, err)
	}
	return nil
}

// loadPersisted restores jobs from the job directory at startup:
// completed and failed jobs become queryable history, unfinished jobs
// resume from their last checkpoint (or from scratch when none was
// reached). Corrupt files become failed jobs so operators see them
// instead of silently losing work.
func (jm *jobManager) loadPersisted() error {
	if jm.dir == "" {
		return nil
	}
	if err := os.MkdirAll(jm.dir, 0o755); err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	entries, err := os.ReadDir(jm.dir)
	if err != nil {
		return fmt.Errorf("serve: job dir: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !jobIDPattern.MatchString(id) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(jm.dir, name))
		var jf jobFile
		if err == nil {
			err = json.Unmarshal(data, &jf)
		}
		if err == nil && jf.ID != id {
			err = fmt.Errorf("job file %s names id %q", name, jf.ID)
		}
		if err == nil && jf.Checkpoint != nil {
			err = jf.Checkpoint.Validate()
		}
		j := &transientJob{id: id}
		if err != nil {
			j.status = JobStatus{
				ID: id, State: JobFailed,
				Error: fmt.Sprintf("serve: corrupt job file: %v", err),
			}
			jm.jobs[id] = j
			continue
		}
		j.req = jf.Request
		j.status = JobStatus{
			ID: id, Spec: jf.Request.specName(), State: jf.State,
			Steps: jf.Request.Steps, TimeStepS: jf.Request.TimeStepS,
			Error: jf.Error, Result: jf.Result,
		}
		switch jf.State {
		case JobDone:
			j.status.Step = jf.Request.Steps
			j.status.TimeS = float64(jf.Request.Steps) * jf.Request.TimeStepS
			jm.jobs[id] = j
		case JobFailed:
			jm.jobs[id] = j
		default:
			// Unfinished: resume from the checkpoint (nil restarts from
			// step 0 — the run never reached its first cadence).
			j.status.State = JobQueued
			if jf.Checkpoint != nil {
				j.status.Step = jf.Checkpoint.Step
				j.status.TimeS = float64(jf.Checkpoint.Step) * jf.Request.TimeStepS
			}
			jm.jobs[id] = j
			jm.start(j, jf.Checkpoint)
		}
	}
	return nil
}

// --- HTTP handlers -----------------------------------------------------

// handleTransientSubmit accepts a transient job and returns its initial
// status with 202 Accepted.
func (s *Server) handleTransientSubmit(w http.ResponseWriter, r *http.Request) {
	var req TransientRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	j, err := s.jobs.submit(req)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(j.snapshot())
}

// handleJobs lists every retained job.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.jobs.list())
}

// handleJob reports one job's progress (and result once done).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, notFound(fmt.Errorf("serve: unknown job %q", r.PathValue("id"))))
		return
	}
	writeJSON(w, j.snapshot())
}

// handleJobStream streams a job's status snapshots as NDJSON until the
// job reaches a terminal state or the client goes away. The first line
// is always the current status, so a late subscriber still sees the
// final state of a finished job.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, notFound(fmt.Errorf("serve: unknown job %q", r.PathValue("id"))))
		return
	}
	flusher, _ := w.(http.Flusher)
	ch, snap := j.subscribe()
	defer j.unsubscribe(ch)
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	terminal := func(st JobStatus) bool { return st.State == JobDone || st.State == JobFailed }
	if err := enc.Encode(snap); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	last := snap
	for {
		select {
		case st, open := <-ch:
			if !open {
				// The broadcast may have dropped the terminal snapshot on
				// a lagging subscriber; guarantee the stream still ends
				// with the final state (result included).
				if !terminal(last) {
					_ = enc.Encode(j.snapshot())
				}
				return
			}
			if err := enc.Encode(st); err != nil {
				return
			}
			last = st
			if flusher != nil {
				flusher.Flush()
			}
		case <-r.Context().Done():
			return
		case <-s.jobs.ctx.Done():
			// Server shutdown: end the stream so graceful HTTP drains do
			// not stall on attached stream clients.
			return
		}
	}
}
