package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"vcselnoc/internal/obs"
)

func errBadLimit(v string) error {
	return fmt.Errorf("serve: bad limit %q (want a non-negative integer)", v)
}

func errBadSlow(v string) error {
	return fmt.Errorf("serve: bad slow filter %q (want a duration like 250ms)", v)
}

// DebugRequests is the GET /debug/requests body: the most recent
// finished request traces, newest first.
type DebugRequests struct {
	// Tracing reports whether span recording is enabled; when false the
	// ring only ever holds traces recorded before it was disabled.
	Tracing bool `json:"tracing"`
	// Requests are the retained traces after the limit/slow filters.
	Requests []obs.TraceRecord `json:"requests"`
}

// defaultDebugLimit bounds an unqualified /debug/requests answer.
const defaultDebugLimit = 64

// handleDebugRequests serves the recent-trace ring. Query parameters:
// ?limit=N caps the answer (default 64, "0" means the whole ring) and
// ?slow=DUR (a Go duration like 250ms, or a plain number of
// milliseconds) keeps only traces at least that long.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	limit := defaultDebugLimit
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeErr(w, badRequest(errBadLimit(v)))
			return
		}
		limit = n
	}
	var slowUS int64
	if v := r.URL.Query().Get("slow"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			// Bare numbers are read as milliseconds.
			ms, merr := strconv.ParseFloat(v, 64)
			if merr != nil || ms < 0 {
				writeErr(w, badRequest(errBadSlow(v)))
				return
			}
			d = time.Duration(ms * float64(time.Millisecond))
		}
		if d < 0 {
			writeErr(w, badRequest(errBadSlow(v)))
			return
		}
		slowUS = d.Microseconds()
	}
	writeJSON(w, DebugRequests{
		Tracing:  s.tracing,
		Requests: s.recorder.Recent(limit, slowUS),
	})
}
