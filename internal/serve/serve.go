// Package serve is the warm thermal-analysis service: a long-lived HTTP
// layer over the solver stack that keeps expensive state — assembled
// thermal.Model operators, superposition Basis fields, the shared
// multigrid hierarchy behind them — alive across requests, so every
// design query after the first costs a superposition evaluation instead
// of an 11–167 s basis build.
//
// The server answers JSON queries for intra-ONI gradients and
// feasibility, heater optimisation, worst-case SNR scenarios,
// thermal-map slices and paginated sweep grids. Cheap superposition
// queries are micro-batched (concurrent requests within ~1 ms evaluate
// as one worker-pool fan-out) and memoised in a bounded LRU keyed on the
// canonicalised scenario; basis builds are deduplicated single-flight so
// a cold spec never builds twice however many clients hit it at once.
//
// The same package holds the scatter/gather ShardClient that partitions
// design-space sweep grids across a fleet of these servers (see
// client.go), closing the loop for sharded DSE.
package serve

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/dse"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/stack"
	"vcselnoc/internal/thermal"
)

// DefaultSpec is the registry name a scenario with an empty Spec field
// addresses.
const DefaultSpec = "default"

// DefaultBatchWindow is the micro-batch collection window: long enough
// to gather a concurrent burst, short enough to be invisible next to a
// basis evaluation.
const DefaultBatchWindow = time.Millisecond

// DefaultCacheSize bounds the per-spec query LRU.
const DefaultCacheSize = 4096

// DefaultMaxBases bounds the warm bases a spec holds at once. Each basis
// costs a multi-solve build and ~4 fields × NumCells × 8 bytes, and the
// random activity's seed is client-controlled — without a bound, looping
// seeds is a trivial memory exhaustion attack on the daemon. Beyond the
// bound the least-recently-used basis is evicted (and deterministically
// rebuilt if asked for again) rather than the request shed, so memory
// stays bounded without a hard 429 cliff for many-spec registries; the
// admission rate caps how fast a seed-looping client can force rebuilds.
const DefaultMaxBases = 8

// maxBodyBytes bounds request bodies; sweep axes are the largest
// legitimate payload and fit comfortably.
const maxBodyBytes = 1 << 20

// DefaultJobCheckpointEvery is the default transient-job checkpoint
// cadence in steps.
const DefaultJobCheckpointEvery = 25

// DefaultMaxJobs bounds the transient jobs a server retains (active plus
// completed); submissions beyond get HTTP 429.
const DefaultMaxJobs = 64

// DefaultMaxJobSteps bounds a single transient job's horizon: steps are
// client-controlled work, so an unbounded count is a CPU-exhaustion
// vector.
const DefaultMaxJobSteps = 100000

// Config configures a Server.
type Config struct {
	// Specs registers the system specifications the server owns warm
	// state for, by name. Empty registers PaperSpec under DefaultSpec.
	Specs map[string]thermal.Spec
	// SNR is the technology configuration for SNR queries; the zero
	// value selects snr.DefaultConfig.
	SNR snr.Config
	// BatchWindow is the micro-batch collection window; 0 selects
	// DefaultBatchWindow, negative disables batching.
	BatchWindow time.Duration
	// CacheSize bounds each spec's query LRU; 0 selects
	// DefaultCacheSize, negative disables caching (capacity 1).
	CacheSize int
	// MaxBases bounds the warm bases (distinct activity name + seed
	// shapes) each spec holds; 0 selects DefaultMaxBases. A request for a
	// shape beyond the bound evicts the least-recently-used basis.
	MaxBases int
	// AdmitRate rate-limits the cheap-query hot path per spec
	// (queries/second); 0 disables spec-wide admission. Shed queries get
	// HTTP 429 with a Retry-After.
	AdmitRate float64
	// AdmitBurst is the spec bucket's burst tolerance; 0 selects
	// DefaultAdmitBurst.
	AdmitBurst int
	// ClientRate rate-limits each client (X-Client-ID header, falling
	// back to remote host) per spec; 0 disables per-client admission.
	ClientRate float64
	// ClientBurst is the per-client burst tolerance; 0 selects
	// DefaultAdmitBurst.
	ClientBurst int
	// MaxClients bounds tracked per-client buckets per spec; 0 selects
	// DefaultMaxClients.
	MaxClients int
	// JobDir persists transient-job checkpoints and results so jobs
	// survive — and resume from their last checkpoint on — daemon
	// restarts; empty keeps jobs in memory only.
	JobDir string
	// JobCheckpointEvery is the default per-job checkpoint cadence in
	// steps; 0 selects DefaultJobCheckpointEvery. Individual submissions
	// may override it.
	JobCheckpointEvery int
	// MaxJobs bounds retained transient jobs; 0 selects DefaultMaxJobs.
	MaxJobs int
	// MaxJobSteps bounds one job's step count; 0 selects
	// DefaultMaxJobSteps.
	MaxJobSteps int
	// JobTTL garbage-collects terminal (done/failed/cancelled) transient
	// jobs this long after they finish, dropping both the in-memory record
	// and the persisted job file; 0 retains them until MaxJobs pressure.
	// Running jobs are never collected.
	JobTTL time.Duration
	// DisableTracing turns off per-request span recording and the
	// /debug/requests ring buffer. Trace-ID propagation, response-header
	// echo and the /metrics histograms stay on — they are atomic-cheap
	// and the fleet depends on them.
	DisableTracing bool
	// TraceBuffer bounds the recent-trace ring served by
	// GET /debug/requests; 0 selects DefaultTraceBuffer.
	TraceBuffer int
	// Logger receives the server's structured logs (request completions
	// at debug, basis builds / sweeps / job transitions at info); nil
	// discards them.
	Logger *slog.Logger
}

// DefaultTraceBuffer is the default /debug/requests ring capacity.
const DefaultTraceBuffer = 256

// Server owns the warm per-spec state and implements http.Handler.
type Server struct {
	mux   *http.ServeMux
	specs map[string]*specState
	start time.Time
	// sweepSem bounds concurrent sweep evaluations server-wide: each
	// sweep fans out across a full worker pool, so without a bound N
	// concurrent sweep requests oversubscribe the CPU N-fold. Cheap
	// point queries go through the micro-batcher instead and are not
	// gated here.
	sweepSem chan struct{}
	// jobs owns the async transient jobs (see jobs.go).
	jobs *jobManager
	// flushStop/flushWG run the off-path admission accounting loop (see
	// admit.go); closeOnce makes Close idempotent.
	flushStop chan struct{}
	flushWG   sync.WaitGroup
	closeOnce sync.Once
	// tracing gates span recording; recorder keeps recent finished
	// traces for GET /debug/requests; logger receives structured logs.
	tracing  bool
	recorder *obs.Recorder
	logger   *slog.Logger
}

// specState is one registered spec's warm state. The Methodology (model,
// bases, single-flight) builds lazily on first use so registering many
// specs is free until they are queried.
type specState struct {
	name string
	spec thermal.Spec

	once  sync.Once
	ready atomic.Bool // publishes meth/err to stats-only readers
	meth  *core.Methodology
	err   error

	snrCfg snr.Config
	cache  *lruCache
	batch  *batcher
	// adm gates the cheap-query hot path (nil = admission disabled);
	// flights deduplicates identical in-flight queries.
	adm     *admission
	flights *flightGroup

	// basisMu guards the LRU over warm bases: basisOrder (front = most
	// recently used) and basisIdx bound how many distinct activity
	// shapes this spec holds bases for — client-controlled seeds must
	// not grow server memory without limit, so the least-recently-used
	// shape is evicted (and rebuilt on demand) beyond maxBases.
	basisMu        sync.Mutex
	basisOrder     *list.List // element values are *basisSlot
	basisIdx       map[string]*list.Element
	maxBases       int
	basisEvictions atomic.Int64

	// latQuery/latSweep/batchSize are the always-on server-side
	// histograms behind /metrics and the /healthz snapshots: request
	// latency by endpoint class, and flushed micro-batch sizes.
	latQuery  *obs.Histogram
	latSweep  *obs.Histogram
	batchSize *obs.Histogram
	logger    *slog.Logger
}

// basisSlot is one warm activity shape in the basis LRU; the resolved
// scenario rides along so eviction can address the methodology's cache.
type basisSlot struct {
	key string
	act activity.Scenario
}

// methodology builds (once) and returns the spec's warm methodology.
// The sync.Once is the model-level single-flight: concurrent cold
// requests share one mesh assembly.
func (st *specState) methodology() (*core.Methodology, error) {
	st.once.Do(func() {
		st.meth, st.err = core.NewWithSpec(st.spec, st.snrCfg)
		st.ready.Store(true)
	})
	return st.meth, st.err
}

// New validates the configuration and builds a Server. Models and bases
// are not built yet: the first query (or an explicit Warm) pays that
// cost.
func New(cfg Config) (*Server, error) {
	if len(cfg.Specs) == 0 {
		spec, err := thermal.PaperSpec()
		if err != nil {
			return nil, err
		}
		cfg.Specs = map[string]thermal.Spec{DefaultSpec: spec}
	}
	if cfg.SNR == (snr.Config{}) {
		cfg.SNR = snr.DefaultConfig()
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = DefaultBatchWindow
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxBases <= 0 {
		cfg.MaxBases = DefaultMaxBases
	}
	if cfg.TraceBuffer <= 0 {
		cfg.TraceBuffer = DefaultTraceBuffer
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	s := &Server{
		mux:       http.NewServeMux(),
		specs:     make(map[string]*specState, len(cfg.Specs)),
		start:     time.Now(),
		sweepSem:  make(chan struct{}, 2),
		flushStop: make(chan struct{}),
		tracing:   !cfg.DisableTracing,
		recorder:  obs.NewRecorder(cfg.TraceBuffer),
		logger:    cfg.Logger,
	}
	for name, spec := range cfg.Specs {
		if name == "" {
			return nil, fmt.Errorf("serve: empty spec name in registry")
		}
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("serve: spec %q: %w", name, err)
		}
		st := &specState{
			name:       name,
			spec:       spec,
			snrCfg:     cfg.SNR,
			cache:      newLRUCache(cfg.CacheSize),
			batch:      newBatcher(cfg.BatchWindow, spec.Workers),
			adm:        newAdmission(cfg),
			flights:    newFlightGroup(),
			basisOrder: list.New(),
			basisIdx:   make(map[string]*list.Element),
			maxBases:   cfg.MaxBases,
			latQuery:   obs.NewHistogram(obs.LatencyBuckets),
			latSweep:   obs.NewHistogram(obs.LatencyBuckets),
			batchSize:  obs.NewHistogram(obs.BatchSizeBuckets),
			logger:     cfg.Logger,
		}
		st.batch.sizeHist = st.batchSize
		s.specs[name] = st
	}
	s.jobs = newJobManager(s, cfg)
	s.routes()
	if err := s.jobs.loadPersisted(); err != nil {
		return nil, err
	}
	s.jobs.startGC()
	s.flushWG.Add(1)
	go s.flusher()
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/specs", s.handleSpecs)
	s.mux.HandleFunc("POST /v1/gradient", s.handleGradient)
	s.mux.HandleFunc("POST /v1/feasibility", s.handleGradient) // same evaluation, same body
	s.mux.HandleFunc("POST /v1/heater/optimal", s.handleHeater)
	s.mux.HandleFunc("POST /v1/snr", s.handleSNR)
	s.mux.HandleFunc("POST /v1/map", s.handleMap)
	s.mux.HandleFunc("POST /v1/sweep/gradient", s.handleGradientSweep)
	s.mux.HandleFunc("POST /v1/sweep/avgtemp", s.handleAvgTempSweep)
	s.mux.HandleFunc("POST /v1/transient", s.handleTransientSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/checkpoint", s.handleJobCheckpoint)
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
}

// ServeHTTP implements http.Handler. Every request — whatever the
// endpoint — gets a trace ID (propagated from X-Trace-ID or minted
// here) echoed back as a response header before the handler runs.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := obs.EnsureRequest(r)
	w.Header().Set(obs.TraceHeader, id)
	s.mux.ServeHTTP(w, r)
}

// trace starts a span timeline for the request, or returns nil (inert)
// when tracing is disabled.
func (s *Server) trace(r *http.Request, endpoint string) *obs.Trace {
	if !s.tracing {
		return nil
	}
	return obs.NewTrace(r.Header.Get(obs.TraceHeader), endpoint, "")
}

// publish seals the trace into the /debug/requests ring.
func (s *Server) publish(tr *obs.Trace, status int) {
	if tr == nil {
		return
	}
	s.recorder.Publish(tr.Finish(status))
}

// Close stops the server's background work: every running transient job
// checkpoints its exact current step (when a JobDir is configured, so
// the next daemon resumes it bit-identically), the admission accounting
// flusher exits, and Close blocks until all background goroutines are
// gone. Idempotent. The HTTP side is unaffected — callers drain it
// separately via Run's context.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.flushStop)
	})
	s.flushWG.Wait()
	s.jobs.stop()
}

// Warm forces the named spec's model and uniform-activity basis to build
// now (daemon startup with -warm), so the first client query is already
// cheap.
func (s *Server) Warm(name string) error {
	st, err := s.state(name)
	if err != nil {
		return err
	}
	_, err = st.basisFor(nil, Scenario{}.basisSlotKey())
	return err
}

// basisFor builds (or returns) the basis for one activity shape,
// maintaining the bounded LRU over warm bases: seeds arrive from the
// network, and every new shape is a multi-solve build plus
// NumCells-sized fields — so beyond maxBases the least-recently-used
// shape's basis is evicted from the methodology cache. An in-flight
// evaluation holding the evicted basis finishes safely (the pointer
// stays alive until released); a later request for the evicted shape
// rebuilds it deterministically.
func (st *specState) basisFor(act activity.Scenario, slot string) (*thermal.Basis, error) {
	meth, err := st.methodology()
	if err != nil {
		return nil, err
	}
	st.basisMu.Lock()
	var evicted []activity.Scenario
	if el, known := st.basisIdx[slot]; known {
		st.basisOrder.MoveToFront(el)
	} else {
		for st.basisOrder.Len() >= st.maxBases {
			oldest := st.basisOrder.Back()
			sl := oldest.Value.(*basisSlot)
			st.basisOrder.Remove(oldest)
			delete(st.basisIdx, sl.key)
			evicted = append(evicted, sl.act)
		}
		st.basisIdx[slot] = st.basisOrder.PushFront(&basisSlot{key: slot, act: act})
	}
	st.basisMu.Unlock()
	for _, old := range evicted {
		if meth.EvictBasis(old) {
			st.basisEvictions.Add(1)
		}
	}
	buildsBefore := meth.BasisBuilds()
	b, err := meth.BasisFor(act)
	if err == nil && meth.BasisBuilds() > buildsBefore {
		bs := b.BuildStats()
		st.logger.Info("basis built",
			"spec", st.name, "slot", slot,
			"duration_ms", float64(bs.Wall.Microseconds())/1000,
			"mg_iters", bs.Iterations,
			"coarse_mode", bs.Phases.CoarseMode)
	}
	if err != nil {
		// Release the slot: failed builds are not cached by the
		// methodology either, so a later request may retry.
		st.basisMu.Lock()
		if el, ok := st.basisIdx[slot]; ok {
			st.basisOrder.Remove(el)
			delete(st.basisIdx, slot)
		}
		st.basisMu.Unlock()
		return nil, err
	}
	return b, nil
}

// state resolves a registry name.
func (s *Server) state(name string) (*specState, error) {
	if name == "" {
		name = DefaultSpec
	}
	st, ok := s.specs[name]
	if !ok {
		return nil, fmt.Errorf("serve: unknown spec %q", name)
	}
	return st, nil
}

// statusError carries an HTTP status through the handler helpers;
// retryAfter (when positive) additionally sets the Retry-After header
// and the envelope's retry_after_ms on shed responses.
type statusError struct {
	code       int
	retryAfter time.Duration
	err        error
}

func (e *statusError) Error() string { return e.err.Error() }

func badRequest(err error) error { return &statusError{code: http.StatusBadRequest, err: err} }
func notFound(err error) error   { return &statusError{code: http.StatusNotFound, err: err} }

// writeJSON emits a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeErr emits the JSON error envelope with the mapped status code.
// Shed responses carry their retry schedule twice: the standard
// Retry-After header (whole seconds, rounded up, so naive clients back
// off at least as long as asked) and retry_after_ms in the envelope for
// clients that pace tighter than a second.
func writeErr(w http.ResponseWriter, err error) {
	writeErrTrace(w, "", err)
}

// writeErrTrace is writeErr with the request's trace ID stamped into the
// envelope; it returns the status code written so callers can seal the
// request's trace with it.
func writeErrTrace(w http.ResponseWriter, traceID string, err error) int {
	code := http.StatusInternalServerError
	body := errorBody{Error: err.Error(), TraceID: traceID}
	var se *statusError
	if errors.As(err, &se) {
		code = se.code
		if se.retryAfter > 0 {
			body.RetryAfterMs = float64(se.retryAfter) / float64(time.Millisecond)
			secs := int64((se.retryAfter + time.Second - 1) / time.Second)
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
	return code
}

// decode strictly parses the request body into v: unknown fields and
// trailing garbage are client errors, not silent drops.
func decode(r *http.Request, v any) error {
	return decodeLimit(r, v, maxBodyBytes)
}

// decodeLimit is decode with an explicit body cap, for the endpoints
// (transient submit with a resume checkpoint) whose legitimate payloads
// exceed the general bound.
func decodeLimit(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(fmt.Errorf("serve: bad request body: %w", err))
	}
	if dec.More() {
		return badRequest(fmt.Errorf("serve: trailing data after JSON body"))
	}
	return nil
}

// resolve maps a wire scenario onto the warm state it needs: spec state,
// methodology and (building on first use, single-flight) the basis for
// its activity shape.
func (s *Server) resolve(sc Scenario) (*specState, *thermal.Basis, error) {
	st, err := s.state(sc.specName())
	if err != nil {
		return nil, nil, notFound(err)
	}
	basis, err := st.resolveBasis(sc)
	if err != nil {
		return nil, nil, err
	}
	return st, basis, nil
}

// resolveBasis validates the scenario against an already-resolved spec
// and returns its basis.
func (st *specState) resolveBasis(sc Scenario) (*thermal.Basis, error) {
	act, err := sc.activityScenario()
	if err != nil {
		return nil, badRequest(err)
	}
	if err := sc.powers().Validate(); err != nil {
		return nil, badRequest(err)
	}
	return st.basisFor(act, sc.basisSlotKey())
}

// handleGradient answers the cheap superposition query — the serving hot
// path, in admission order: one O(1) atomic admission check (429 +
// Retry-After on shed, before any solver work), then the LRU, then
// query-granularity single-flight around a micro-batched basis
// evaluation so identical in-flight scenarios share one solve.
func (s *Server) handleGradient(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := r.Header.Get(obs.TraceHeader)
	tr := s.trace(r, r.URL.Path)
	var st *specState
	fail := func(err error) {
		if st != nil {
			st.latQuery.Observe(time.Since(start).Seconds())
		}
		code := writeErrTrace(w, traceID, err)
		s.publish(tr, code)
		s.logger.Debug("query failed",
			"trace_id", traceID, "endpoint", r.URL.Path, "status", code, "err", err.Error())
	}
	var sc Scenario
	if err := decode(r, &sc); err != nil {
		fail(err)
		return
	}
	var err error
	st, err = s.state(sc.specName())
	if err != nil {
		fail(notFound(err))
		return
	}
	tr.SetSpec(st.name)
	sp := tr.StartSpan("admission")
	ok, retry := st.adm.admit(clientID(r), time.Now().UnixNano())
	sp.End()
	if !ok {
		fail(shedError(st.name, retry))
		return
	}
	sp = tr.StartSpan("basis")
	basis, err := st.resolveBasis(sc)
	sp.End()
	if err != nil {
		fail(err)
		return
	}
	// The basis span carries the mg cost of the build that produced this
	// basis (zero/near-zero duration when it was already warm).
	bs := basis.BuildStats()
	sp.SetAttr("mg_iters", float64(bs.Iterations))
	sp.SetStrAttr("coarse_mode", bs.Phases.CoarseMode)
	if total := bs.Phases.Total(); total > 0 {
		sp.SetAttr("build_smoothfrac", float64(bs.Phases.Smooth)/float64(total))
		sp.SetAttr("build_coarsefrac", float64(bs.Phases.Coarse)/float64(total))
	}
	sp = tr.StartSpan("cache")
	key := sc.cacheKey()
	cached, hit := st.cache.Get(key)
	sp.End()
	if hit {
		cached.Cached = true
		cached.TraceID = traceID
		writeJSON(w, cached)
		st.latQuery.Observe(time.Since(start).Seconds())
		s.publish(tr, http.StatusOK)
		s.logger.Debug("query",
			"trace_id", traceID, "spec", st.name, "cached", true,
			"duration_ms", msSince(start))
		return
	}
	// The scenario was fully validated above, so an evaluation error
	// here is the server's fault, not the client's. Identical scenarios
	// racing this one wait for — and share — this evaluation; only the
	// leader's goroutine runs the closure, so the leader's trace gets the
	// batch_wait/solve split and followers record one coalesce_wait.
	flightStart := time.Now()
	resp, shared, err := st.flights.do(key, func() (QueryResponse, error) {
		subStart := time.Now()
		res, wait, eval, err := st.batch.SubmitTimed(basis, sc.powers())
		if err != nil {
			return QueryResponse{}, err
		}
		tr.AddSpan("batch_wait", subStart, wait)
		solve := tr.AddSpan("solve", subStart.Add(wait), eval)
		solve.SetAttr("mg_iters", float64(bs.Iterations))
		resp := summarise(res)
		st.cache.Add(key, resp)
		return resp, nil
	})
	if err != nil {
		fail(err)
		return
	}
	if shared {
		tr.AddSpan("coalesce_wait", flightStart, time.Since(flightStart))
	}
	resp.TraceID = traceID
	writeJSON(w, resp)
	st.latQuery.Observe(time.Since(start).Seconds())
	s.publish(tr, http.StatusOK)
	s.logger.Debug("query",
		"trace_id", traceID, "spec", st.name, "cached", false, "shared", shared,
		"coarse_mode", bs.Phases.CoarseMode,
		"duration_ms", msSince(start))
}

// msSince renders an elapsed time in fractional milliseconds for logs.
func msSince(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// summarise reduces a full evaluation to the cacheable query answer.
func summarise(res *thermal.Result) QueryResponse {
	maxGrad := res.MaxONIGradient()
	return QueryResponse{
		MeanONITemp:  res.MeanONITemp(),
		MeanGradient: res.MeanONIGradient(),
		MaxGradient:  maxGrad,
		Feasible:     maxGrad <= dse.GradientLimit,
		ChipMax:      res.ChipMax,
		ChipAvg:      res.ChipAvg,
	}
}

// handleHeater runs the sequential golden-section heater optimisation.
func (s *Server) handleHeater(w http.ResponseWriter, r *http.Request) {
	var req HeaterRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	_, basis, err := s.resolve(req.Scenario)
	if err != nil {
		writeErr(w, err)
		return
	}
	ex, err := dse.NewExplorer(basis)
	if err != nil {
		writeErr(w, err)
		return
	}
	maxHeater := req.MaxHeater
	if maxHeater == 0 {
		maxHeater = req.PVCSEL
	}
	opt, err := ex.OptimalHeater(req.Chip, req.PVCSEL, maxHeater)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	writeJSON(w, HeaterResponse{
		PVCSEL:           opt.PVCSEL,
		PHeater:          opt.PHeater,
		Ratio:            opt.Ratio,
		MeanGradient:     opt.MeanGradient,
		GradientNoHeater: opt.GradientNoHeater,
	})
}

// handleSNR runs the full methodology chain for one placement case.
func (s *Server) handleSNR(w http.ResponseWriter, r *http.Request) {
	var req SNRRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	st, err := s.state(req.specName())
	if err != nil {
		writeErr(w, notFound(err))
		return
	}
	cs, err := parseCase(req.Case)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	pat, err := parsePattern(req.Pattern)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	act, err := req.activityScenario()
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	meth, err := st.methodology()
	if err != nil {
		writeErr(w, err)
		return
	}
	// Warm the basis so SNRAnalysis evaluates by superposition instead of
	// falling back to a direct solve per request.
	if _, err := st.basisFor(act, req.basisSlotKey()); err != nil {
		writeErr(w, err)
		return
	}
	res, err := meth.SNRAnalysis(core.SNRScenario{
		Case:      cs,
		Activity:  act,
		ChipPower: req.Chip,
		PVCSEL:    req.PVCSEL,
		PHeater:   req.PHeater,
		Pattern:   pat,
	})
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	writeJSON(w, SNRResponse{
		Case:        cs.String(),
		Pattern:     pat.String(),
		RingLengthM: res.RingLengthM,
		NodeTempMin: res.NodeTempMin,
		NodeTempMax: res.NodeTempMax,
		WorstSNRdB:  res.Report.WorstSNRdB,
		AllDetected: res.Report.AllDetected,
		Comms:       len(res.Report.PerComm),
	})
}

// handleMap returns a lateral temperature slice of one stack layer.
func (s *Server) handleMap(w http.ResponseWriter, r *http.Request) {
	var req MapRequest
	if err := decode(r, &req); err != nil {
		writeErr(w, err)
		return
	}
	st, basis, err := s.resolve(req.Scenario)
	if err != nil {
		writeErr(w, err)
		return
	}
	layer := req.Layer
	if layer == "" {
		layer = stack.LayerOptical
	}
	res, err := st.batch.Submit(basis, req.powers())
	if err != nil {
		writeErr(w, err)
		return
	}
	lm, err := res.LayerSlice(layer)
	if err != nil {
		writeErr(w, badRequest(err))
		return
	}
	writeJSON(w, MapResponse{Layer: lm.Layer, X: lm.X, Y: lm.Y, T: lm.T, Min: lm.Min, Max: lm.Max})
}

// rowWindow validates and clamps a sweep pagination window.
func rowWindow(total, start, count int) (lo, hi int, err error) {
	if start < 0 || start >= total {
		return 0, 0, fmt.Errorf("serve: row_start %d outside [0, %d)", start, total)
	}
	if count < 0 {
		return 0, 0, fmt.Errorf("serve: negative row_count %d", count)
	}
	hi = total
	if count > 0 && start+count < total {
		hi = start + count
	}
	return start, hi, nil
}

// handleGradientSweep evaluates a laser × heater gradient grid row
// window. Rows are independent basis evaluations, so a window's values
// are bit-identical to the same rows of a full in-process sweep — the
// property the sharded scatter/gather relies on.
func (s *Server) handleGradientSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := r.Header.Get(obs.TraceHeader)
	tr := s.trace(r, r.URL.Path)
	var st *specState
	fail := func(err error) {
		if st != nil {
			st.latSweep.Observe(time.Since(start).Seconds())
		}
		code := writeErrTrace(w, traceID, err)
		s.publish(tr, code)
	}
	var req GradientSweepRequest
	if err := decode(r, &req); err != nil {
		fail(err)
		return
	}
	if len(req.Lasers) == 0 || len(req.Heaters) == 0 {
		fail(badRequest(fmt.Errorf("serve: empty sweep axes")))
		return
	}
	sp := tr.StartSpan("basis")
	st, basis, err := s.resolve(req.Scenario)
	sp.End()
	if err != nil {
		fail(err)
		return
	}
	tr.SetSpec(st.name)
	lo, hi, err := rowWindow(len(req.Lasers), req.RowStart, req.RowCount)
	if err != nil {
		fail(badRequest(err))
		return
	}
	ex, err := dse.NewExplorer(basis)
	if err != nil {
		fail(err)
		return
	}
	ex.SetWorkers(st.spec.Workers)
	sp = tr.StartSpan("sweep_wait")
	s.sweepSem <- struct{}{}
	sp.End()
	sp = tr.StartSpan("solve")
	rows, err := ex.SweepGradient(req.Chip, req.Lasers[lo:hi], req.Heaters)
	sp.End()
	<-s.sweepSem
	if err != nil {
		fail(err)
		return
	}
	writeJSON(w, GradientSweepResponse{
		RowStart: lo, TotalRows: len(req.Lasers), Rows: rows,
		ONICell: st.spec.Res.ONICell, DieCell: st.spec.Res.DieCell, MaxZCell: st.spec.Res.MaxZCell,
		Solver:  st.spec.EffectiveSolver(),
		TraceID: traceID,
	})
	st.latSweep.Observe(time.Since(start).Seconds())
	s.publish(tr, http.StatusOK)
	s.logger.Info("sweep",
		"trace_id", traceID, "spec", st.name, "kind", "gradient",
		"rows", hi-lo, "cols", len(req.Heaters), "duration_ms", msSince(start))
}

// handleAvgTempSweep evaluates a chip × laser mean-temperature grid row
// window.
func (s *Server) handleAvgTempSweep(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := r.Header.Get(obs.TraceHeader)
	tr := s.trace(r, r.URL.Path)
	var st *specState
	fail := func(err error) {
		if st != nil {
			st.latSweep.Observe(time.Since(start).Seconds())
		}
		code := writeErrTrace(w, traceID, err)
		s.publish(tr, code)
	}
	var req AvgTempSweepRequest
	if err := decode(r, &req); err != nil {
		fail(err)
		return
	}
	if len(req.Chips) == 0 || len(req.Lasers) == 0 {
		fail(badRequest(fmt.Errorf("serve: empty sweep axes")))
		return
	}
	sp := tr.StartSpan("basis")
	st, basis, err := s.resolve(req.Scenario)
	sp.End()
	if err != nil {
		fail(err)
		return
	}
	tr.SetSpec(st.name)
	lo, hi, err := rowWindow(len(req.Chips), req.RowStart, req.RowCount)
	if err != nil {
		fail(badRequest(err))
		return
	}
	ex, err := dse.NewExplorer(basis)
	if err != nil {
		fail(err)
		return
	}
	ex.SetWorkers(st.spec.Workers)
	sp = tr.StartSpan("sweep_wait")
	s.sweepSem <- struct{}{}
	sp.End()
	sp = tr.StartSpan("solve")
	rows, err := ex.SweepAvgTemp(req.Chips[lo:hi], req.Lasers)
	sp.End()
	<-s.sweepSem
	if err != nil {
		fail(err)
		return
	}
	writeJSON(w, AvgTempSweepResponse{
		RowStart: lo, TotalRows: len(req.Chips), Rows: rows,
		ONICell: st.spec.Res.ONICell, DieCell: st.spec.Res.DieCell, MaxZCell: st.spec.Res.MaxZCell,
		Solver:  st.spec.EffectiveSolver(),
		TraceID: traceID,
	})
	st.latSweep.Observe(time.Since(start).Seconds())
	s.publish(tr, http.StatusOK)
	s.logger.Info("sweep",
		"trace_id", traceID, "spec", st.name, "kind", "avgtemp",
		"rows", hi-lo, "cols", len(req.Lasers), "duration_ms", msSince(start))
}

// handleHealth reports liveness plus per-spec warm-state statistics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, Health{
		Status:  "ok",
		UptimeS: time.Since(s.start).Seconds(),
		Specs:   s.specInfos(),
	})
}

// handleSpecs lists the registry.
func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.specInfos())
}

func (s *Server) specInfos() []SpecInfo {
	infos := make([]SpecInfo, 0, len(s.specs))
	for _, st := range s.specs {
		info := SpecInfo{
			Name:     st.name,
			ONICell:  st.spec.Res.ONICell,
			DieCell:  st.spec.Res.DieCell,
			MaxZCell: st.spec.Res.MaxZCell,
			Solver:   st.spec.EffectiveSolver(),
		}
		hits, misses := st.cache.Stats()
		info.CacheHits, info.CacheMisses = hits, misses
		info.CacheLen = st.cache.Len()
		info.Batches, info.BatchedQueries = st.batch.Stats()
		info.Admitted, info.Shed, info.Clients = st.adm.stats()
		info.CoalescedQueries = st.flights.Coalesced()
		info.BasisEvictions = st.basisEvictions.Load()
		info.QueryLatency = st.latQuery.Snapshot()
		info.BatchSize = st.batchSize.Snapshot()
		st.basisMu.Lock()
		info.WarmBases = st.basisOrder.Len()
		st.basisMu.Unlock()
		// Peek without forcing a build: only report the model when some
		// query has already paid for it.
		if st.ready.Load() && st.err == nil {
			info.ModelReady = true
			info.Cells = st.meth.Model().NumCells()
			info.BasisBuilds = st.meth.BasisBuilds()
		}
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
