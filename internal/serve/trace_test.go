package serve

// End-to-end request tracing through the worker: a caller-supplied
// X-Trace-ID survives into the response header, the JSON envelope and
// the /debug/requests span timeline; a caller without one gets a minted
// id; errors echo the id in their envelope too.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vcselnoc/internal/obs"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/thermal"
)

func TestTraceEndToEnd(t *testing.T) {
	skipShort(t)
	// Force the mg-cg backend (preview resolution auto-selects jacobi-cg)
	// so the basis span carries the coarse-solve mode attribute.
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	spec.Solver = sparse.BackendMGCG
	s, err := New(Config{
		Specs:       map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow: -1,
		CacheSize:   64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	const traceID = "feedc0de00000001"
	req := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(`{"chip": 25, "pvcsel": 2e-3}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("query status = %d (%s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get(obs.TraceHeader); got != traceID {
		t.Fatalf("response %s = %q, want the caller's %q", obs.TraceHeader, got, traceID)
	}
	resp := decodeBody[QueryResponse](t, w)
	if resp.TraceID != traceID {
		t.Fatalf("envelope trace_id = %q, want %q", resp.TraceID, traceID)
	}

	// No inbound id: the server mints a valid one and still echoes it.
	w2 := postJSON(t, s, "/v1/gradient", `{"chip": 26, "pvcsel": 2e-3}`)
	if w2.Code != http.StatusOK {
		t.Fatalf("second query status = %d (%s)", w2.Code, w2.Body.String())
	}
	minted := w2.Header().Get(obs.TraceHeader)
	if !obs.ValidID(minted) {
		t.Fatalf("minted trace id %q is not a valid id", minted)
	}
	if minted == traceID {
		t.Fatal("minted id collided with the caller-supplied one")
	}
	if resp2 := decodeBody[QueryResponse](t, w2); resp2.TraceID != minted {
		t.Fatalf("envelope trace_id = %q, want minted %q", resp2.TraceID, minted)
	}

	// Errors carry the trace id in their envelope as well.
	breq := httptest.NewRequest(http.MethodPost, "/v1/gradient", strings.NewReader(`{"chip": -1}`))
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set(obs.TraceHeader, traceID)
	bw := httptest.NewRecorder()
	s.ServeHTTP(bw, breq)
	if bw.Code != http.StatusBadRequest {
		t.Fatalf("bad query status = %d", bw.Code)
	}
	if eb := decodeBody[errorBody](t, bw); eb.TraceID != traceID {
		t.Fatalf("error envelope trace_id = %q, want %q", eb.TraceID, traceID)
	}

	// The span timeline for the traced request is in /debug/requests.
	dreq := httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	dw := httptest.NewRecorder()
	s.ServeHTTP(dw, dreq)
	if dw.Code != http.StatusOK {
		t.Fatalf("/debug/requests status = %d (%s)", dw.Code, dw.Body.String())
	}
	dr := decodeBody[DebugRequests](t, dw)
	if !dr.Tracing {
		t.Fatal("tracing reported disabled on a default server")
	}
	var rec *obs.TraceRecord
	for i := range dr.Requests {
		if dr.Requests[i].TraceID == traceID && dr.Requests[i].Status == http.StatusOK {
			rec = &dr.Requests[i]
			break
		}
	}
	if rec == nil {
		t.Fatalf("trace %s not in /debug/requests (%d records)", traceID, len(dr.Requests))
	}
	if rec.DurationUS <= 0 {
		t.Fatalf("trace duration = %d µs, want > 0", rec.DurationUS)
	}
	spans := make(map[string]obs.SpanRec)
	for _, sp := range rec.Spans {
		spans[sp.Name] = sp
	}
	for _, want := range []string{"admission", "basis", "cache", "solve"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace is missing the %q span (have %v)", want, spanNames(rec.Spans))
		}
	}
	if sp := spans["solve"]; sp.DurationUS <= 0 {
		t.Errorf("solve span duration = %d µs, want > 0", sp.DurationUS)
	}
	if sp := spans["basis"]; !hasAttr(sp, "mg_iters") {
		t.Errorf("basis span has no mg_iters attribute (attrs %v)", sp.Attrs)
	}
	if mode := strAttr(spans["basis"], "coarse_mode"); mode == "" {
		t.Errorf("basis span has no coarse_mode attribute (str attrs %v)", spans["basis"].StrAttrs)
	} else if mode != "sparse-chol" && mode != "band-chol" && mode != "zline" && mode != "ssor" {
		t.Errorf("coarse_mode = %q, not a known coarse tier", mode)
	}

	// The ?slow= filter with an absurd threshold drops everything.
	sreq := httptest.NewRequest(http.MethodGet, "/debug/requests?slow=10m", nil)
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, sreq)
	if sdr := decodeBody[DebugRequests](t, sw); len(sdr.Requests) != 0 {
		t.Fatalf("?slow=10m kept %d records, want 0", len(sdr.Requests))
	}
}

func spanNames(spans []obs.SpanRec) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

func hasAttr(sp obs.SpanRec, key string) bool {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return true
		}
	}
	return false
}

func strAttr(sp obs.SpanRec, key string) string {
	for _, a := range sp.StrAttrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTracingDisabled pins the -no-trace path: ids still mint and echo,
// but the span ring stays empty.
func TestTracingDisabled(t *testing.T) {
	skipShort(t)
	spec, err := thermal.PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = thermal.PreviewResolution()
	s, err := New(Config{
		Specs:          map[string]thermal.Spec{DefaultSpec: spec},
		BatchWindow:    -1,
		DisableTracing: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	w := postJSON(t, s, "/v1/gradient", `{"chip": 25, "pvcsel": 2e-3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("query status = %d (%s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get(obs.TraceHeader); !obs.ValidID(got) {
		t.Fatalf("trace id not echoed with tracing disabled: %q", got)
	}
	dreq := httptest.NewRequest(http.MethodGet, "/debug/requests", nil)
	dw := httptest.NewRecorder()
	s.ServeHTTP(dw, dreq)
	dr := decodeBody[DebugRequests](t, dw)
	if dr.Tracing {
		t.Fatal("tracing reported enabled under DisableTracing")
	}
	if len(dr.Requests) != 0 {
		t.Fatalf("span ring holds %d records under DisableTracing, want 0", len(dr.Requests))
	}
}
