package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// DefaultShutdownTimeout bounds how long Run waits for in-flight
// requests after the context is cancelled. Sweep chunks at preview/fast
// resolution finish in well under this.
const DefaultShutdownTimeout = 30 * time.Second

// Run serves handler on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately (shard clients dialling in
// see clean refusals), in-flight requests — including sweep chunks — get
// up to timeout to finish, and Run returns nil on a clean drain. A
// timeout ≤ 0 selects DefaultShutdownTimeout.
//
// cmd/vcseld drives this with a signal.NotifyContext; tests drive it
// with a plain cancelable context.
func Run(ctx context.Context, ln net.Listener, handler http.Handler, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = DefaultShutdownTimeout
	}
	// Read-side timeouts keep a long-lived daemon safe from clients that
	// hold connections open without completing requests (headers or a
	// trickled body); requests here carry small JSON bodies, so a minute
	// is generous. No WriteTimeout: the long-running side is legitimate
	// response computation — sweep chunks on cold fast/paper-resolution
	// specs run for minutes.
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own (port stolen, ln closed): that is
		// a failure, not a shutdown.
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := hs.Shutdown(sctx)
	// Serve always returns ErrServerClosed after Shutdown; drain it.
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	return err
}

// ListenAndRun binds addr and calls Run. The bound address (useful with
// ":0") is reported through onListen when non-nil.
func ListenAndRun(ctx context.Context, addr string, handler http.Handler, timeout time.Duration, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return Run(ctx, ln, handler, timeout)
}
