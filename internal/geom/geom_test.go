package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{1, 3}
	if iv.Length() != 2 {
		t.Errorf("Length = %g", iv.Length())
	}
	if iv.Empty() {
		t.Error("non-empty interval reported empty")
	}
	if !iv.Contains(1) || iv.Contains(3) || !iv.Contains(2.5) {
		t.Error("half-open containment wrong")
	}
	if iv.Center() != 2 {
		t.Errorf("Center = %g", iv.Center())
	}
	if !(Interval{2, 2}).Empty() || !(Interval{3, 1}).Empty() {
		t.Error("degenerate intervals should be empty")
	}
}

func TestIntervalOverlap(t *testing.T) {
	cases := []struct {
		a, b Interval
		want float64
	}{
		{Interval{0, 2}, Interval{1, 3}, 1},
		{Interval{0, 2}, Interval{2, 3}, 0},
		{Interval{0, 5}, Interval{1, 2}, 1},
		{Interval{0, 1}, Interval{2, 3}, 0},
		{Interval{0, 4}, Interval{0, 4}, 4},
	}
	for _, c := range cases {
		if got := c.a.Overlap(c.b); got != c.want {
			t.Errorf("%v.Overlap(%v) = %g, want %g", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlap(c.a); got != c.want {
			t.Errorf("overlap not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestVec3Algebra(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if got := v.Add(w); got != (Vec3{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got != (Vec3{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
}

func TestBoxVolumeAndCenter(t *testing.T) {
	b := NewBox(Vec3{0, 0, 0}, Vec3{2, 3, 4})
	if b.Volume() != 24 {
		t.Errorf("Volume = %g", b.Volume())
	}
	if b.Center() != (Vec3{1, 1.5, 2}) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.FootprintArea() != 6 {
		t.Errorf("FootprintArea = %g", b.FootprintArea())
	}
	if b.Size() != (Vec3{2, 3, 4}) {
		t.Errorf("Size = %v", b.Size())
	}
}

func TestBoxEmpty(t *testing.T) {
	if !NewBox(Vec3{}, Vec3{1, 1, 0}).Empty() {
		t.Error("zero-thickness box should be empty")
	}
	if !NewBox(Vec3{}, Vec3{-1, 1, 1}).Empty() {
		t.Error("negative-size box should be empty")
	}
	if NewBox(Vec3{}, Vec3{1, 1, 1}).Empty() {
		t.Error("unit box reported empty")
	}
}

func TestBoxIntersect(t *testing.T) {
	a := NewBox(Vec3{0, 0, 0}, Vec3{2, 2, 2})
	b := NewBox(Vec3{1, 1, 1}, Vec3{2, 2, 2})
	ov := a.OverlapVolume(b)
	if ov != 1 {
		t.Errorf("overlap volume = %g, want 1", ov)
	}
	if !a.Intersects(b) {
		t.Error("boxes should intersect")
	}
	c := NewBox(Vec3{5, 5, 5}, Vec3{1, 1, 1})
	if a.Intersects(c) {
		t.Error("disjoint boxes reported intersecting")
	}
	if a.OverlapVolume(c) != 0 {
		t.Error("disjoint overlap volume should be 0")
	}
}

func TestBoxContains(t *testing.T) {
	b := NewBox(Vec3{0, 0, 0}, Vec3{1, 1, 1})
	if !b.Contains(Vec3{0.5, 0.5, 0.5}) {
		t.Error("center not contained")
	}
	if b.Contains(Vec3{1, 0.5, 0.5}) {
		t.Error("half-open upper bound violated")
	}
	inner := NewBox(Vec3{0.2, 0.2, 0.2}, Vec3{0.5, 0.5, 0.5})
	if !b.ContainsBox(inner) {
		t.Error("inner box not contained")
	}
	if inner.ContainsBox(b) {
		t.Error("outer contained in inner")
	}
}

func TestBoxTranslateUnion(t *testing.T) {
	a := NewBox(Vec3{0, 0, 0}, Vec3{1, 1, 1})
	b := a.Translate(Vec3{2, 0, 0})
	u := a.Union(b)
	if u.X.Lo != 0 || u.X.Hi != 3 {
		t.Errorf("union X = %v", u.X)
	}
	if u.Volume() != 3 {
		t.Errorf("union volume = %g (bounding box)", u.Volume())
	}
	var empty Box
	if got := a.Union(empty); got != a {
		t.Error("union with empty should return original")
	}
	if got := empty.Union(a); got != a {
		t.Error("empty union with box should return box")
	}
}

func TestRectGrid(t *testing.T) {
	r := NewRect(0, 0, 6, 4)
	cells, err := r.GridPositions(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("got %d cells", len(cells))
	}
	var total float64
	for _, c := range cells {
		total += c.Area()
	}
	if math.Abs(total-24) > 1e-12 {
		t.Errorf("cell areas sum to %g, want 24", total)
	}
	// Row-major: second cell should be x-shifted.
	if cells[1].X.Lo != 2 || cells[1].Y.Lo != 0 {
		t.Errorf("cell order wrong: %v", cells[1])
	}
	if cells[3].Y.Lo != 2 {
		t.Errorf("second row should start at y=2: %v", cells[3])
	}
	// No pairwise overlaps.
	for i := range cells {
		for j := i + 1; j < len(cells); j++ {
			if cells[i].Intersects(cells[j]) {
				t.Errorf("cells %d and %d overlap", i, j)
			}
		}
	}
}

func TestRectGridErrors(t *testing.T) {
	r := NewRect(0, 0, 1, 1)
	if _, err := r.GridPositions(0, 2); err == nil {
		t.Error("nx=0 should error")
	}
	if _, err := (Rect{}).GridPositions(2, 2); err == nil {
		t.Error("empty rect should error")
	}
}

func TestRectExtrude(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	b := r.Extrude(5, 6)
	if b.Volume() != 12 {
		t.Errorf("extruded volume = %g", b.Volume())
	}
	if b.Z.Lo != 5 || b.Z.Hi != 6 {
		t.Errorf("z range = %v", b.Z)
	}
}

func TestCenteredRect(t *testing.T) {
	r := CenteredRect(10, 20, 4, 6)
	cx, cy := r.Center()
	if cx != 10 || cy != 20 {
		t.Errorf("center = (%g, %g)", cx, cy)
	}
	if r.Area() != 24 {
		t.Errorf("area = %g", r.Area())
	}
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Property: overlap volume is symmetric and bounded by both volumes.
func TestQuickOverlapBounds(t *testing.T) {
	f := func(ax, ay, az, aw, ah, ad, bx, by, bz, bw, bh, bd float64) bool {
		if !finite(ax, ay, az, aw, ah, ad, bx, by, bz, bw, bh, bd) {
			return true
		}
		a := NewBox(Vec3{ax, ay, az}, Vec3{math.Abs(aw), math.Abs(ah), math.Abs(ad)})
		b := NewBox(Vec3{bx, by, bz}, Vec3{math.Abs(bw), math.Abs(bh), math.Abs(bd)})
		ov1 := a.OverlapVolume(b)
		ov2 := b.OverlapVolume(a)
		if ov1 != ov2 {
			return false
		}
		return ov1 <= a.Volume()+1e-9 && ov1 <= b.Volume()+1e-9 && ov1 >= 0
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: intersection is contained in both operands; union contains both.
func TestQuickIntersectUnionContainment(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		if !finite(ax, ay, az, bx, by, bz) {
			return true
		}
		a := NewBox(Vec3{ax, ay, az}, Vec3{1 + math.Mod(math.Abs(ax), 3), 1, 1})
		b := NewBox(Vec3{bx, by, bz}, Vec3{1, 1 + math.Mod(math.Abs(by), 3), 1})
		inter := a.Intersect(b)
		u := a.Union(b)
		return a.ContainsBox(inter) && b.ContainsBox(inter) &&
			u.ContainsBox(a) && u.ContainsBox(b)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: grid cells exactly tile the parent rectangle's area.
func TestQuickGridTiling(t *testing.T) {
	f := func(w, h float64, nx, ny uint8) bool {
		ww := 0.1 + math.Mod(math.Abs(w), 100)
		hh := 0.1 + math.Mod(math.Abs(h), 100)
		gx := 1 + int(nx%8)
		gy := 1 + int(ny%8)
		r := NewRect(0, 0, ww, hh)
		cells, err := r.GridPositions(gx, gy)
		if err != nil {
			return false
		}
		var area float64
		for _, c := range cells {
			area += c.Area()
		}
		return math.Abs(area-r.Area()) < 1e-9*r.Area()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
