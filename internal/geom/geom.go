// Package geom provides the axis-aligned geometry primitives used to
// describe chip floorplans and 3D package stacks: intervals, rectangles and
// boxes with overlap/clip algebra. All coordinates are in metres.
package geom

import (
	"fmt"
	"math"
)

// Interval is a half-open interval [Lo, Hi) on one axis.
type Interval struct {
	Lo, Hi float64
}

// Length returns Hi-Lo (zero or negative means empty).
func (iv Interval) Length() float64 { return iv.Hi - iv.Lo }

// Empty reports whether the interval has no extent.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Contains reports whether x lies in [Lo, Hi).
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x < iv.Hi }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{Lo: math.Max(iv.Lo, other.Lo), Hi: math.Min(iv.Hi, other.Hi)}
}

// Overlap returns the length of the overlap between two intervals, >= 0.
func (iv Interval) Overlap(other Interval) float64 {
	o := iv.Intersect(other)
	if o.Empty() {
		return 0
	}
	return o.Length()
}

// Center returns the midpoint of the interval.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// Vec3 is a point or displacement in 3D space (metres).
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.X*v.X + v.Y*v.Y + v.Z*v.Z) }

// Box is an axis-aligned box: the product of three half-open intervals.
type Box struct {
	X, Y, Z Interval
}

// NewBox builds a box from a minimum corner and sizes. Negative sizes
// produce an empty box.
func NewBox(origin Vec3, size Vec3) Box {
	return Box{
		X: Interval{origin.X, origin.X + size.X},
		Y: Interval{origin.Y, origin.Y + size.Y},
		Z: Interval{origin.Z, origin.Z + size.Z},
	}
}

// Empty reports whether the box has zero (or negative) volume.
func (b Box) Empty() bool { return b.X.Empty() || b.Y.Empty() || b.Z.Empty() }

// Volume returns the box volume in m³ (0 for empty boxes).
func (b Box) Volume() float64 {
	if b.Empty() {
		return 0
	}
	return b.X.Length() * b.Y.Length() * b.Z.Length()
}

// FootprintArea returns the XY area in m² (0 for empty footprints).
func (b Box) FootprintArea() float64 {
	if b.X.Empty() || b.Y.Empty() {
		return 0
	}
	return b.X.Length() * b.Y.Length()
}

// Center returns the box centroid.
func (b Box) Center() Vec3 {
	return Vec3{b.X.Center(), b.Y.Center(), b.Z.Center()}
}

// Size returns the box extents along each axis.
func (b Box) Size() Vec3 {
	return Vec3{b.X.Length(), b.Y.Length(), b.Z.Length()}
}

// Contains reports whether p lies inside the box.
func (b Box) Contains(p Vec3) bool {
	return b.X.Contains(p.X) && b.Y.Contains(p.Y) && b.Z.Contains(p.Z)
}

// Intersect returns the overlap box (possibly empty).
func (b Box) Intersect(other Box) Box {
	return Box{
		X: b.X.Intersect(other.X),
		Y: b.Y.Intersect(other.Y),
		Z: b.Z.Intersect(other.Z),
	}
}

// OverlapVolume returns the volume shared by two boxes.
func (b Box) OverlapVolume(other Box) float64 { return b.Intersect(other).Volume() }

// Intersects reports whether the boxes share positive volume.
func (b Box) Intersects(other Box) bool { return !b.Intersect(other).Empty() }

// Translate returns the box shifted by d.
func (b Box) Translate(d Vec3) Box {
	return Box{
		X: Interval{b.X.Lo + d.X, b.X.Hi + d.X},
		Y: Interval{b.Y.Lo + d.Y, b.Y.Hi + d.Y},
		Z: Interval{b.Z.Lo + d.Z, b.Z.Hi + d.Z},
	}
}

// Union returns the smallest box containing both boxes. Empty inputs are
// ignored; union of two empty boxes is empty.
func (b Box) Union(other Box) Box {
	if b.Empty() {
		return other
	}
	if other.Empty() {
		return b
	}
	return Box{
		X: Interval{math.Min(b.X.Lo, other.X.Lo), math.Max(b.X.Hi, other.X.Hi)},
		Y: Interval{math.Min(b.Y.Lo, other.Y.Lo), math.Max(b.Y.Hi, other.Y.Hi)},
		Z: Interval{math.Min(b.Z.Lo, other.Z.Lo), math.Max(b.Z.Hi, other.Z.Hi)},
	}
}

// ContainsBox reports whether other lies entirely within b.
func (b Box) ContainsBox(other Box) bool {
	if other.Empty() {
		return true
	}
	return other.X.Lo >= b.X.Lo && other.X.Hi <= b.X.Hi &&
		other.Y.Lo >= b.Y.Lo && other.Y.Hi <= b.Y.Hi &&
		other.Z.Lo >= b.Z.Lo && other.Z.Hi <= b.Z.Hi
}

func (b Box) String() string {
	return fmt.Sprintf("box[x %.6g:%.6g, y %.6g:%.6g, z %.6g:%.6g]",
		b.X.Lo, b.X.Hi, b.Y.Lo, b.Y.Hi, b.Z.Lo, b.Z.Hi)
}

// Rect is a 2D axis-aligned rectangle in the XY plane, used for floorplans.
type Rect struct {
	X, Y Interval
}

// NewRect builds a rectangle from origin and size.
func NewRect(x, y, w, h float64) Rect {
	return Rect{X: Interval{x, x + w}, Y: Interval{y, y + h}}
}

// Empty reports whether the rectangle has no area.
func (r Rect) Empty() bool { return r.X.Empty() || r.Y.Empty() }

// Area returns the rectangle area.
func (r Rect) Area() float64 {
	if r.Empty() {
		return 0
	}
	return r.X.Length() * r.Y.Length()
}

// Center returns the rectangle centroid as (x, y).
func (r Rect) Center() (float64, float64) { return r.X.Center(), r.Y.Center() }

// Intersect returns the rectangle overlap.
func (r Rect) Intersect(other Rect) Rect {
	return Rect{X: r.X.Intersect(other.X), Y: r.Y.Intersect(other.Y)}
}

// Intersects reports whether the rectangles share positive area.
func (r Rect) Intersects(other Rect) bool { return !r.Intersect(other).Empty() }

// Extrude lifts the rectangle into a box spanning [z0, z1).
func (r Rect) Extrude(z0, z1 float64) Box {
	return Box{X: r.X, Y: r.Y, Z: Interval{z0, z1}}
}

// GridPositions returns nx×ny cell rectangles tiling r in row-major order
// (y outer, x inner). nx and ny must be positive.
func (r Rect) GridPositions(nx, ny int) ([]Rect, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("geom: grid %dx%d must be positive", nx, ny)
	}
	if r.Empty() {
		return nil, fmt.Errorf("geom: cannot grid an empty rectangle")
	}
	// Precompute shared edge coordinates so adjacent cells meet exactly
	// (no floating-point overlap or gap between neighbours).
	xs := make([]float64, nx+1)
	for i := 0; i <= nx; i++ {
		xs[i] = r.X.Lo + r.X.Length()*float64(i)/float64(nx)
	}
	ys := make([]float64, ny+1)
	for j := 0; j <= ny; j++ {
		ys[j] = r.Y.Lo + r.Y.Length()*float64(j)/float64(ny)
	}
	out := make([]Rect, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			out = append(out, Rect{
				X: Interval{xs[i], xs[i+1]},
				Y: Interval{ys[j], ys[j+1]},
			})
		}
	}
	return out, nil
}

// CenteredRect returns a w×h rectangle centred at (cx, cy).
func CenteredRect(cx, cy, w, h float64) Rect {
	return NewRect(cx-w/2, cy-h/2, w, h)
}
