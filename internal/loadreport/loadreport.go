// Package loadreport defines the machine-readable artifact cmd/loadgen
// emits and cmd/benchguard gates: one Report per load run (traffic
// shape, client- and server-side counters, a latency histogram with
// p50/p99/p999), plus the regression-gate logic comparing a run against
// a committed baseline. It lives in its own package so the generator and
// the gate can never drift on the wire format.
package loadreport

import (
	"fmt"
	"math"
	"sort"
)

// HistBucketsMs are the latency histogram's upper bounds (milliseconds),
// log-spaced; the final +Inf bucket is implicit.
var HistBucketsMs = []float64{0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Latency summarises a run's latency distribution (milliseconds).
type Latency struct {
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	P999  float64 `json:"p999_ms"`
	Max   float64 `json:"max_ms"`
	Mean  float64 `json:"mean_ms"`
	Count int64   `json:"count"`
}

// Bucket is one histogram bin: requests with latency ≤ LeMs
// (cumulative, Prometheus-style; LeMs 0 encodes +Inf).
type Bucket struct {
	LeMs  float64 `json:"le_ms"`
	Count int64   `json:"count"`
}

// Report is one load run's artifact.
type Report struct {
	// Shape is the traffic shape: "hotkey" or "uniform".
	Shape string `json:"shape"`
	// DurationS is the measured run length; OfferedQPS the configured
	// offered rate (0 = closed loop) and SentQPS the achieved send rate.
	DurationS  float64 `json:"duration_s"`
	OfferedQPS float64 `json:"offered_qps"`
	SentQPS    float64 `json:"sent_qps"`
	// Client-side outcome counts.
	Sent     int64 `json:"sent"`
	OK       int64 `json:"ok"`
	Shed     int64 `json:"shed"`
	Err5xx   int64 `json:"err_5xx"`
	ErrOther int64 `json:"err_other"`
	// Server-side deltas scraped from /healthz around the run.
	ServerAdmitted  int64 `json:"server_admitted"`
	ServerShed      int64 `json:"server_shed"`
	ServerCoalesced int64 `json:"server_coalesced"`
	ServerSolves    int64 `json:"server_solves"`
	ServerCacheHits int64 `json:"server_cache_hits"`
	// Derived rates: ShedRate = client-observed 429 fraction of sent;
	// CoalesceRate = coalesced fraction of OK answers.
	ShedRate     float64  `json:"shed_rate"`
	CoalesceRate float64  `json:"coalesce_rate"`
	Latency      Latency  `json:"latency"`
	Hist         []Bucket `json:"hist,omitempty"`
	// Server is the server's own view of the run, deltaed from the
	// worker's /healthz latency histogram around it (absent against
	// daemons that predate the histograms).
	Server *ServerLatency `json:"server_latency,omitempty"`
}

// ServerLatency summarises the server-side latency histogram delta for a
// run, with the client-vs-server percentile skew: the network, client
// stack and accept-queue time the client pays that the server's own
// timer never sees. A large skew with a small server p99 means the
// bottleneck is in front of the daemon, not inside it.
type ServerLatency struct {
	P50     float64 `json:"p50_ms"`
	P90     float64 `json:"p90_ms"`
	P99     float64 `json:"p99_ms"`
	Count   int64   `json:"count"`
	SkewP50 float64 `json:"skew_p50_ms"`
	SkewP99 float64 `json:"skew_p99_ms"`
}

// Derive fills the derived rate fields from the counts.
func (r *Report) Derive() {
	if r.Sent > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Sent)
		r.SentQPS = float64(r.Sent) / r.DurationS
	}
	if r.OK > 0 {
		r.CoalesceRate = float64(r.ServerCoalesced) / float64(r.OK)
	}
}

// Baseline is the committed bench/LOAD_baseline.json document: one
// reference Report per traffic shape, tagged with the mesh resolution
// the runs used so artifacts from different tiers never compare.
type Baseline struct {
	Resolution string            `json:"resolution"`
	Runs       map[string]Report `json:"runs"`
}

// Summarize computes the latency summary and histogram from raw
// per-request latencies (milliseconds). The sample slice is sorted in
// place.
func Summarize(samplesMs []float64) (Latency, []Bucket) {
	n := len(samplesMs)
	if n == 0 {
		return Latency{}, nil
	}
	sort.Float64s(samplesMs)
	pct := func(q float64) float64 {
		i := int(math.Ceil(q*float64(n))) - 1
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return samplesMs[i]
	}
	sum := 0.0
	for _, v := range samplesMs {
		sum += v
	}
	lat := Latency{
		P50:   pct(0.50),
		P90:   pct(0.90),
		P99:   pct(0.99),
		P999:  pct(0.999),
		Max:   samplesMs[n-1],
		Mean:  sum / float64(n),
		Count: int64(n),
	}
	hist := make([]Bucket, 0, len(HistBucketsMs)+1)
	for _, le := range HistBucketsMs {
		// Cumulative count ≤ le: first index past le in the sorted slice.
		idx := sort.SearchFloat64s(samplesMs, math.Nextafter(le, math.Inf(1)))
		hist = append(hist, Bucket{LeMs: le, Count: int64(idx)})
	}
	hist = append(hist, Bucket{LeMs: 0, Count: int64(n)}) // +Inf
	return lat, hist
}

// Gate compares a run against its baseline and returns the violations
// (empty = pass). maxRatio gates p99 wall-clock loosely (baseline and CI
// runner are different machines) with slackMs of absolute headroom so a
// microsecond-scale baseline can't fail on scheduler noise; the shed
// rate gets the same ratio philosophy with a 5-point absolute floor. Any
// 5xx is an unconditional failure — overload must shed, never error.
func Gate(run, base Report, maxRatio, slackMs float64) []string {
	var problems []string
	if run.Err5xx > 0 {
		problems = append(problems, fmt.Sprintf("%s: %d 5xx responses under load (want 0)", run.Shape, run.Err5xx))
	}
	if limit := base.Latency.P99*maxRatio + slackMs; run.Latency.P99 > limit {
		problems = append(problems, fmt.Sprintf("%s: p99 %.2f ms exceeds gate %.2f ms (baseline %.2f ms × %.1f + %.0f ms slack)",
			run.Shape, run.Latency.P99, limit, base.Latency.P99, maxRatio, slackMs))
	}
	if limit := base.ShedRate*maxRatio + 0.05; run.ShedRate > limit {
		problems = append(problems, fmt.Sprintf("%s: shed rate %.3f exceeds gate %.3f (baseline %.3f × %.1f + 0.05)",
			run.Shape, run.ShedRate, limit, base.ShedRate, maxRatio))
	}
	return problems
}
