package loadreport

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizePercentiles(t *testing.T) {
	// 1..1000 ms: percentiles are exact order statistics.
	samples := make([]float64, 1000)
	for i := range samples {
		samples[i] = float64(i + 1)
	}
	lat, hist := Summarize(samples)
	if lat.P50 != 500 || lat.P90 != 900 || lat.P99 != 990 || lat.P999 != 999 || lat.Max != 1000 {
		t.Fatalf("percentiles = %+v", lat)
	}
	if lat.Count != 1000 || math.Abs(lat.Mean-500.5) > 1e-9 {
		t.Fatalf("count/mean = %d/%g", lat.Count, lat.Mean)
	}
	// Histogram is cumulative; the +Inf bucket holds everything.
	if len(hist) != len(HistBucketsMs)+1 {
		t.Fatalf("%d buckets", len(hist))
	}
	for _, b := range hist {
		switch b.LeMs {
		case 256:
			if b.Count != 256 {
				t.Fatalf("le=256 count %d", b.Count)
			}
		case 0:
			if b.Count != 1000 {
				t.Fatalf("+Inf count %d", b.Count)
			}
		}
	}
}

func TestSummarizeSmall(t *testing.T) {
	lat, _ := Summarize([]float64{3})
	if lat.P50 != 3 || lat.P999 != 3 || lat.Count != 1 {
		t.Fatalf("single sample: %+v", lat)
	}
	if lat, hist := Summarize(nil); lat.Count != 0 || hist != nil {
		t.Fatal("empty samples should yield a zero summary")
	}
}

func TestDerive(t *testing.T) {
	r := Report{DurationS: 2, Sent: 100, OK: 80, Shed: 20, ServerCoalesced: 8}
	r.Derive()
	if r.ShedRate != 0.2 || r.CoalesceRate != 0.1 || r.SentQPS != 50 {
		t.Fatalf("derived = %+v", r)
	}
}

func TestGate(t *testing.T) {
	base := Report{Shape: "hotkey", Latency: Latency{P99: 10}, ShedRate: 0.2}
	pass := Report{Shape: "hotkey", Latency: Latency{P99: 19}, ShedRate: 0.3}
	if problems := Gate(pass, base, 2.0, 25); len(problems) != 0 {
		t.Fatalf("pass run failed gate: %v", problems)
	}
	// p99 regression beyond ratio + slack.
	slow := Report{Shape: "hotkey", Latency: Latency{P99: 50}, ShedRate: 0.2}
	problems := Gate(slow, base, 2.0, 25)
	if len(problems) != 1 || !strings.Contains(problems[0], "p99") {
		t.Fatalf("slow run: %v", problems)
	}
	// Shed-rate regression.
	shedding := Report{Shape: "hotkey", Latency: Latency{P99: 10}, ShedRate: 0.5}
	problems = Gate(shedding, base, 2.0, 25)
	if len(problems) != 1 || !strings.Contains(problems[0], "shed rate") {
		t.Fatalf("shedding run: %v", problems)
	}
	// 5xx is an unconditional failure even when fast.
	erroring := Report{Shape: "hotkey", Latency: Latency{P99: 1}, Err5xx: 3}
	problems = Gate(erroring, base, 2.0, 25)
	if len(problems) != 1 || !strings.Contains(problems[0], "5xx") {
		t.Fatalf("erroring run: %v", problems)
	}
	// Tiny baseline: absolute slack absorbs scheduler noise.
	tiny := Report{Shape: "uniform", Latency: Latency{P99: 20}}
	if problems := Gate(tiny, Report{Shape: "uniform", Latency: Latency{P99: 0.5}}, 2.0, 25); len(problems) != 0 {
		t.Fatalf("tiny baseline: %v", problems)
	}
}
