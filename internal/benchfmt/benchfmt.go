// Package benchfmt parses `go test -bench` output into the benchmark
// artifact format shared by cmd/benchguard (baseline gating, A/B compare)
// and cmd/perfab (configuration sweeps), and renders comparisons between
// two artifacts. Keeping the format in one place guarantees perfab's
// sweep outputs are directly consumable by `benchguard -compare`.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurements: ns/op plus any custom metrics
// (e.g. the solver benches' iters/solve or smoothfrac).
type Entry struct {
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON document the tools read and write.
type Artifact struct {
	// Resolution records the mesh resolution the benches ran at (from
	// VCSELNOC_BENCH_RES), so artifacts from different tiers are never
	// compared by accident.
	Resolution string           `json:"resolution"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Parse extracts benchmark result lines of the form
//
//	BenchmarkName/sub-8   1   123456 ns/op   5.000 iters/solve
//
// from go test output. The trailing -N GOMAXPROCS suffix is stripped so
// results compare across machines with different core counts. resolution
// is stamped into the artifact.
func Parse(r io.Reader, resolution string) (*Artifact, error) {
	art := &Artifact{Resolution: resolution, Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		e := Entry{Metrics: map[string]float64{}}
		ok := false
		// fields[1] is the iteration count; value/unit pairs follow.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = v
				ok = true
			default:
				e.Metrics[unit] = v
			}
		}
		if ok {
			if len(e.Metrics) == 0 {
				e.Metrics = nil
			}
			art.Benchmarks[name] = e
		}
	}
	return art, sc.Err()
}

// ReadFile loads an artifact JSON.
func ReadFile(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art := &Artifact{}
	if err := json.Unmarshal(data, art); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return art, nil
}

// WriteFile writes an artifact JSON, indented, with a trailing newline.
func WriteFile(path string, art *Artifact) error {
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MetricDelta is the old/new pair of one custom metric.
type MetricDelta struct {
	Unit     string
	Old, New float64
	// Ratio is New/Old; 0 when Old is 0.
	Ratio float64
}

// Delta is one benchmark's comparison between two artifacts. Exactly one
// of the three cases holds: both sides present (Old/New/Ratio filled),
// OldOnly (retired benchmark), or NewOnly (added benchmark).
type Delta struct {
	Name     string
	Old, New float64 // ns/op
	// Ratio is New/Old ns/op: < 1 is a speedup, > 1 a slowdown.
	Ratio   float64
	Metrics []MetricDelta
	OldOnly bool
	NewOnly bool
}

// Speedup returns Old/New — the conventional "×" speedup factor.
func (d Delta) Speedup() float64 {
	if d.New == 0 {
		return 0
	}
	return d.Old / d.New
}

// Compare pairs the benchmarks of two artifacts by name, sorted.
func Compare(old, new *Artifact) []Delta {
	names := map[string]bool{}
	for n := range old.Benchmarks {
		names[n] = true
	}
	for n := range new.Benchmarks {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	deltas := make([]Delta, 0, len(sorted))
	for _, n := range sorted {
		o, hasOld := old.Benchmarks[n]
		e, hasNew := new.Benchmarks[n]
		d := Delta{Name: n, Old: o.NsPerOp, New: e.NsPerOp, OldOnly: !hasNew, NewOnly: !hasOld}
		if hasOld && hasNew {
			if o.NsPerOp != 0 {
				d.Ratio = e.NsPerOp / o.NsPerOp
			}
			units := map[string]bool{}
			for u := range o.Metrics {
				units[u] = true
			}
			for u := range e.Metrics {
				units[u] = true
			}
			su := make([]string, 0, len(units))
			for u := range units {
				su = append(su, u)
			}
			sort.Strings(su)
			for _, u := range su {
				md := MetricDelta{Unit: u, Old: o.Metrics[u], New: e.Metrics[u]}
				if md.Old != 0 {
					md.Ratio = md.New / md.Old
				}
				d.Metrics = append(d.Metrics, md)
			}
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Informational reports whether a metric unit is machine- or
// phase-dependent bookkeeping (unit suffix "frac", e.g. the V-cycle's
// smoothfrac time shares) that should be reported but never gated:
// time fractions shift with core count and cache sizes without implying
// a regression.
func Informational(unit string) bool {
	return strings.HasSuffix(unit, "frac")
}

// Regressions returns one human-readable line per gate violation:
// ns/op ratios above maxRatio and non-informational metric ratios above
// maxMetricRatio. Benchmarks present on only one side never fail.
func Regressions(deltas []Delta, maxRatio, maxMetricRatio float64) []string {
	var out []string
	for _, d := range deltas {
		if d.OldOnly || d.NewOnly {
			continue
		}
		if d.Ratio > maxRatio {
			out = append(out, fmt.Sprintf("%s: %.0f ns/op vs %.0f, ratio %.2fx exceeds %.2fx",
				d.Name, d.New, d.Old, d.Ratio, maxRatio))
		}
		for _, m := range d.Metrics {
			if Informational(m.Unit) || m.Old == 0 {
				continue
			}
			if m.Ratio > maxMetricRatio {
				out = append(out, fmt.Sprintf("%s: %.3f %s vs %.3f, ratio %.2fx exceeds %.2fx",
					d.Name, m.New, m.Unit, m.Old, m.Ratio, maxMetricRatio))
			}
		}
	}
	return out
}

// Markdown renders the comparison as a GitHub-flavoured markdown table.
// oldLabel/newLabel title the two sides (e.g. artifact file names or
// sweep configuration names).
func Markdown(w io.Writer, deltas []Delta, oldLabel, newLabel string) {
	fmt.Fprintf(w, "| benchmark | %s | %s | speedup | metrics |\n", oldLabel, newLabel)
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	for _, d := range deltas {
		switch {
		case d.OldOnly:
			fmt.Fprintf(w, "| %s | %s | — | | retired |\n", d.Name, fmtNs(d.Old))
		case d.NewOnly:
			fmt.Fprintf(w, "| %s | — | %s | | new |\n", d.Name, fmtNs(d.New))
		default:
			var ms []string
			for _, m := range d.Metrics {
				if m.Old == m.New {
					ms = append(ms, fmt.Sprintf("%s %.3g", m.Unit, m.New))
				} else {
					ms = append(ms, fmt.Sprintf("%s %.3g→%.3g", m.Unit, m.Old, m.New))
				}
			}
			fmt.Fprintf(w, "| %s | %s | %s | %.2f× | %s |\n",
				d.Name, fmtNs(d.Old), fmtNs(d.New), d.Speedup(), strings.Join(ms, ", "))
		}
	}
}

// fmtNs renders nanoseconds human-readably (µs/ms/s above the thresholds).
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2f s", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1f ms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1f µs", ns/1e3)
	default:
		return fmt.Sprintf("%.0f ns", ns)
	}
}
