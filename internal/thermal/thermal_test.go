package thermal

import (
	"math"
	"sync"
	"testing"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/oni"
)

// Tests share one coarse model and basis: building them is the expensive
// part, and every test only reads. Under -short the fixture drops to the
// preview mesh — structural and equivalence tests still hold there, while
// tests asserting the paper's quantitative bands skip via fullRes.
var (
	once      sync.Once
	shared    *Model
	sharedB   *Basis
	sharedErr error
)

// fullRes skips tests whose assertions are calibrated against the coarse
// (20 µm) mesh and are not meaningful on the preview mesh used by -short
// and -race runs.
func fullRes(t *testing.T) {
	t.Helper()
	if testing.Short() || raceEnabled {
		t.Skip("quantitative thermal bands need the full coarse mesh; skipped under -short/-race")
	}
}

func testModel(t *testing.T) (*Model, *Basis) {
	t.Helper()
	once.Do(func() {
		spec, err := PaperSpec()
		if err != nil {
			sharedErr = err
			return
		}
		spec.Res = CoarseResolution()
		if testing.Short() || raceEnabled {
			spec.Res = PreviewResolution()
		}
		spec.SolverTol = 1e-7
		shared, sharedErr = NewModel(spec)
		if sharedErr != nil {
			return
		}
		sharedB, sharedErr = shared.BuildBasis(nil)
	})
	if sharedErr != nil {
		t.Fatal(sharedErr)
	}
	return shared, sharedB
}

func TestResolutionValidate(t *testing.T) {
	if err := PaperResolution().Validate(); err != nil {
		t.Error(err)
	}
	if err := FastResolution().Validate(); err != nil {
		t.Error(err)
	}
	if err := CoarseResolution().Validate(); err != nil {
		t.Error(err)
	}
	bad := Resolution{ONICell: 0, DieCell: 1e-3, MaxZCell: 1e-3}
	if err := bad.Validate(); err == nil {
		t.Error("zero ONI cell should fail")
	}
	bad = Resolution{ONICell: 1e-3, DieCell: 1e-6, MaxZCell: 1e-3}
	if err := bad.Validate(); err == nil {
		t.Error("ONI cell > die cell should fail")
	}
}

func TestSpecValidation(t *testing.T) {
	spec, err := PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	s := spec
	s.Floorplan = nil
	if err := s.Validate(); err == nil {
		t.Error("nil floorplan should fail")
	}
	s = spec
	s.Stack = nil
	if err := s.Validate(); err == nil {
		t.Error("nil stack should fail")
	}
	s = spec
	s.BoardH = -1
	if err := s.Validate(); err == nil {
		t.Error("negative board H should fail")
	}
	s = spec
	s.Ambient = math.NaN()
	if err := s.Validate(); err == nil {
		t.Error("NaN ambient should fail")
	}
	s = spec
	s.HeaterFootprintScale = 9
	if err := s.Validate(); err == nil {
		t.Error("absurd heater scale should fail")
	}
}

func TestPowersValidation(t *testing.T) {
	if err := (Powers{Chip: 25, VCSEL: 1e-3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Powers{Chip: -1}).Validate(); err == nil {
		t.Error("negative chip power should fail")
	}
	if err := (Powers{VCSEL: math.NaN()}).Validate(); err == nil {
		t.Error("NaN power should fail")
	}
}

func TestModelStructure(t *testing.T) {
	m, _ := testModel(t)
	if got := len(m.ONIs()); got != 16 {
		t.Fatalf("%d ONIs, want 16", got)
	}
	if m.NumCells() < 1000 {
		t.Fatalf("suspiciously small mesh: %d cells", m.NumCells())
	}
	// The mesh must resolve the optical layer: at least one z-slice there.
	found := false
	g := m.Grid()
	for k := 0; k < g.NZ(); k++ {
		zc := g.CellCenter(0, 0, k).Z
		if sp, err := m.spec.Stack.LayerAt(zc); err == nil && sp.Name == "optical" {
			found = true
		}
	}
	if !found {
		t.Error("no z-slice centred in the optical layer")
	}
}

func TestBaselineTemperatures(t *testing.T) {
	fullRes(t)
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 25})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanONITemp()
	// Calibration target: the paper's ~49 °C at 25 W uniform (generous
	// band; coarse mesh shifts it slightly).
	if mean < 42 || mean > 56 {
		t.Errorf("mean ONI temp at 25 W = %.1f °C, want 42–56", mean)
	}
	// All ONIs above ambient, chip hotter than ambient.
	for _, o := range res.ONIs {
		if o.AvgTemp <= m25Ambient(t) {
			t.Errorf("ONI %d at %g °C not above ambient", o.Index, o.AvgTemp)
		}
		if len(o.VCSELTemps) != 16 || len(o.MRTemps) != 16 {
			t.Errorf("ONI %d device temps %d/%d, want 16/16", o.Index, len(o.VCSELTemps), len(o.MRTemps))
		}
	}
	if res.ChipAvg <= m25Ambient(t) {
		t.Error("chip average not above ambient")
	}
}

func m25Ambient(t *testing.T) float64 {
	m, _ := testModel(t)
	return m.spec.Ambient
}

func TestMonotoneInChipPower(t *testing.T) {
	_, b := testModel(t)
	prev := -math.MaxFloat64
	for _, chip := range []float64{5, 15, 25, 35} {
		res, err := b.Evaluate(Powers{Chip: chip})
		if err != nil {
			t.Fatal(err)
		}
		mean := res.MeanONITemp()
		if mean <= prev {
			t.Errorf("mean ONI temp not increasing with chip power at %g W", chip)
		}
		prev = mean
	}
}

func TestVCSELPowerHeatsONIs(t *testing.T) {
	fullRes(t)
	_, b := testModel(t)
	base, err := b.Evaluate(Powers{Chip: 25})
	if err != nil {
		t.Fatal(err)
	}
	hot, err := b.Evaluate(Powers{Chip: 25, VCSEL: 6e-3, Driver: 6e-3})
	if err != nil {
		t.Fatal(err)
	}
	rise := hot.MeanONITemp() - base.MeanONITemp()
	// Paper: ≈ +11 °C for +6 mW; accept the right order of magnitude.
	if rise < 4 || rise > 20 {
		t.Errorf("ONI rise for 6 mW VCSEL+driver = %.1f °C, want 4–20", rise)
	}
	// The gradient must grow substantially when lasers turn on.
	if hot.MaxONIGradient() < base.MaxONIGradient()+1 {
		t.Errorf("gradient barely moved: %.2f -> %.2f", base.MaxONIGradient(), hot.MaxONIGradient())
	}
	// VCSELs must be the hot devices without heaters.
	o := hot.ONIs[5]
	if o.MeanVCSELTemp() <= o.MeanMRTemp() {
		t.Error("VCSELs should run hotter than MRs without heater power")
	}
}

// TestHeaterVShape reproduces the core of Fig. 9-b at coarse resolution:
// sweeping the heater power at fixed P_VCSEL produces a V-shaped mean
// gradient with an interior minimum at a fraction of P_VCSEL.
func TestHeaterVShape(t *testing.T) {
	fullRes(t)
	_, b := testModel(t)
	const pv = 4e-3
	var grads []float64
	phs := []float64{0, 0.4e-3, 0.8e-3, 1.2e-3, 1.6e-3, 2.4e-3, 3.2e-3, 4e-3}
	for _, ph := range phs {
		res, err := b.Evaluate(Powers{Chip: 25, VCSEL: pv, Driver: pv, Heater: ph})
		if err != nil {
			t.Fatal(err)
		}
		var mean float64
		for _, o := range res.ONIs {
			mean += o.Gradient
		}
		grads = append(grads, mean/float64(len(res.ONIs)))
	}
	minIdx := 0
	for i, g := range grads {
		if g < grads[minIdx] {
			minIdx = i
		}
	}
	if minIdx == 0 || minIdx == len(grads)-1 {
		t.Fatalf("gradient minimum at sweep boundary (idx %d): %v", minIdx, grads)
	}
	ratio := phs[minIdx] / pv
	if ratio < 0.05 || ratio > 0.6 {
		t.Errorf("optimal heater ratio = %.2f, want an interior fraction (paper: 0.3)", ratio)
	}
	// The heater must meaningfully reduce the gradient.
	if grads[minIdx] > 0.9*grads[0] {
		t.Errorf("heater barely helps: %.2f -> %.2f", grads[0], grads[minIdx])
	}
}

// TestSuperpositionMatchesDirect verifies that Basis.Evaluate agrees with a
// direct assembled solve — the correctness condition for all the fast
// sweeps.
func TestSuperpositionMatchesDirect(t *testing.T) {
	m, b := testModel(t)
	p := Powers{Chip: 20, VCSEL: 3e-3, Driver: 3e-3, Heater: 1e-3}
	direct, err := m.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	super, err := b.Evaluate(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct.MeanONITemp()-super.MeanONITemp()) > 0.05 {
		t.Errorf("mean ONI: direct %.3f vs basis %.3f", direct.MeanONITemp(), super.MeanONITemp())
	}
	for i := range direct.ONIs {
		d := direct.ONIs[i]
		s := super.ONIs[i]
		if math.Abs(d.AvgTemp-s.AvgTemp) > 0.1 {
			t.Errorf("ONI %d avg: direct %.3f vs basis %.3f", i, d.AvgTemp, s.AvgTemp)
		}
		if math.Abs(d.Gradient-s.Gradient) > 0.1 {
			t.Errorf("ONI %d gradient: direct %.3f vs basis %.3f", i, d.Gradient, s.Gradient)
		}
	}
}

// TestDiagonalActivitySkew: the diagonal scenario must heat the hot
// quadrants' ONIs more than the cold ones and widen the inter-ONI spread.
func TestDiagonalActivitySkew(t *testing.T) {
	m, _ := testModel(t)
	resU, err := m.Solve(Powers{Chip: 24, Activity: activity.Uniform{}})
	if err != nil {
		t.Fatal(err)
	}
	resD, err := m.Solve(Powers{Chip: 24, Activity: activity.Diagonal{}})
	if err != nil {
		t.Fatal(err)
	}
	minU, maxU := resU.ONITempRange()
	minD, maxD := resD.ONITempRange()
	if (maxD - minD) <= (maxU - minU) {
		t.Errorf("diagonal spread %.2f not wider than uniform %.2f", maxD-minD, maxU-minU)
	}
	// ONI 0 is lower-left (cold quadrant), ONI 15 upper-right (cold);
	// ONI 3 lower-right (hot), ONI 12 upper-left (hot).
	d := resD.ONIs
	if !(d[3].AvgTemp > d[0].AvgTemp) || !(d[12].AvgTemp > d[15].AvgTemp) {
		t.Errorf("diagonal pattern wrong: %f %f %f %f",
			d[0].AvgTemp, d[3].AvgTemp, d[12].AvgTemp, d[15].AvgTemp)
	}
}

func TestChessboardBeatsClustered(t *testing.T) {
	fullRes(t)
	spec, err := PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = CoarseResolution()
	spec.SolverTol = 1e-7
	spec.ONIStyle = oni.Clustered
	mc, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	clustered, err := mc.Solve(Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := testModel(t)
	chess, err := m.Solve(Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3})
	if err != nil {
		t.Fatal(err)
	}
	var gc, gx float64
	for i := range clustered.ONIs {
		gc += clustered.ONIs[i].Gradient
		gx += chess.ONIs[i].Gradient
	}
	// The chessboard layout exists to pre-spread VCSEL heat: its mean
	// gradient must not be worse than the clustered one.
	if gx > gc*1.02 {
		t.Errorf("chessboard gradient %.3f worse than clustered %.3f", gx/16, gc/16)
	}
}

func TestSolveRejectsBadPowers(t *testing.T) {
	m, _ := testModel(t)
	if _, err := m.Solve(Powers{Chip: -5}); err == nil {
		t.Error("negative chip power should error")
	}
	if _, err := m.Solve(Powers{VCSEL: math.Inf(1)}); err == nil {
		t.Error("infinite power should error")
	}
}

func TestBasisEvaluateRejectsBadPowers(t *testing.T) {
	_, b := testModel(t)
	if _, err := b.Evaluate(Powers{Heater: -1}); err == nil {
		t.Error("negative heater power should error")
	}
}

func TestONIReportHelpers(t *testing.T) {
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 25, VCSEL: 2e-3, Driver: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	o := res.ONIs[0]
	if o.HottestDevice == "" || o.ColdestDevice == "" {
		t.Error("extreme device names missing")
	}
	if o.Gradient < 0 {
		t.Error("negative gradient")
	}
	if math.IsNaN(o.MeanVCSELTemp()) || math.IsNaN(o.MeanMRTemp()) {
		t.Error("NaN device means")
	}
	min, max := res.ONITempRange()
	if min > max {
		t.Error("inverted ONI range")
	}
}

// TestSystemTransient: starting from the chip-only steady state and
// switching the lasers on, the ONI temperatures must rise monotonically
// toward the lasers-on steady state.
func TestSystemTransient(t *testing.T) {
	m, b := testModel(t)
	before, err := b.Evaluate(Powers{Chip: 25})
	if err != nil {
		t.Fatal(err)
	}
	after, err := b.Evaluate(Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3})
	if err != nil {
		t.Fatal(err)
	}
	var snaps int
	prev := before.MeanONITemp()
	final, err := m.SolveTransient(
		Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3},
		TransientSpec{
			TimeStep: 0.05,
			Steps:    8,
			Initial:  before,
			Snapshot: func(step int, tm float64, r *Result) {
				snaps++
				mean := r.MeanONITemp()
				if mean < prev-0.05 {
					t.Errorf("step %d: ONI mean fell %.3f -> %.3f", step, prev, mean)
				}
				prev = mean
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if snaps != 8 {
		t.Errorf("%d snapshots, want 8", snaps)
	}
	// The final transient state lies between the two steady states.
	if final.MeanONITemp() <= before.MeanONITemp() {
		t.Error("transient did not heat up")
	}
	if final.MeanONITemp() > after.MeanONITemp()+0.1 {
		t.Errorf("transient %.2f overshot steady %.2f", final.MeanONITemp(), after.MeanONITemp())
	}
}

func TestSystemTransientErrors(t *testing.T) {
	m, _ := testModel(t)
	if _, err := m.SolveTransient(Powers{Chip: -1}, TransientSpec{TimeStep: 1, Steps: 1}); err == nil {
		t.Error("bad powers should error")
	}
	if _, err := m.SolveTransient(Powers{Chip: 10}, TransientSpec{TimeStep: 0, Steps: 1}); err == nil {
		t.Error("zero dt should error")
	}
	bad := &Result{T: []float64{1, 2, 3}}
	if _, err := m.SolveTransient(Powers{Chip: 10}, TransientSpec{TimeStep: 1, Steps: 1, Initial: bad}); err == nil {
		t.Error("mismatched initial field should error")
	}
}
