package thermal

import (
	"strings"
	"testing"

	"vcselnoc/internal/stack"
)

func TestLayerSlice(t *testing.T) {
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.OpticalLayerSlice()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.X) == 0 || len(m.Y) == 0 || len(m.T) != len(m.Y) {
		t.Fatalf("map shape wrong: %d x %d", len(m.X), len(m.Y))
	}
	if m.Min >= m.Max {
		t.Errorf("degenerate range [%g, %g]", m.Min, m.Max)
	}
	// All ONIs dissipate, so the optical layer must be above ambient
	// everywhere on the die.
	if m.Min <= 25 {
		t.Errorf("optical layer min %.2f not above ambient", m.Min)
	}
	// The BEOL slice must exist too; with lasers on, the hottest point of
	// the whole stack is a VCSEL island in the optical layer (the poor
	// heat sinking the paper manages), so the optical max exceeds the
	// BEOL max.
	mb, err := res.LayerSlice(stack.LayerBEOL)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Max <= 25 {
		t.Errorf("BEOL max %.2f not above ambient", mb.Max)
	}
	if m.Max <= mb.Max {
		t.Errorf("optical max %.2f should exceed BEOL max %.2f with lasers on", m.Max, mb.Max)
	}
}

func TestLayerSliceErrors(t *testing.T) {
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.LayerSlice("no-such-layer"); err == nil {
		t.Error("unknown layer should error")
	}
}

func TestWriteCSV(t *testing.T) {
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 20})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.OpticalLayerSlice()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := m.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "x_m,y_m,temp_c\n") {
		t.Error("missing CSV header")
	}
	lines := strings.Count(out, "\n")
	want := len(m.X)*len(m.Y) + 1
	if lines != want {
		t.Errorf("%d CSV lines, want %d", lines, want)
	}
}

func TestRenderASCII(t *testing.T) {
	_, b := testModel(t)
	res, err := b.Evaluate(Powers{Chip: 25, VCSEL: 6e-3, Driver: 6e-3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := res.OpticalLayerSlice()
	if err != nil {
		t.Fatal(err)
	}
	art := m.RenderASCII(60)
	if !strings.Contains(art, "optical layer") {
		t.Error("missing legend")
	}
	rows := strings.Split(strings.TrimSpace(art), "\n")
	if len(rows) < 3 {
		t.Errorf("only %d rows rendered", len(rows))
	}
	// The hot ONI sites should produce bright glyphs somewhere.
	if !strings.ContainsAny(art, "#%@") {
		t.Error("no hot spots rendered")
	}
	// Tiny cols clamp.
	if small := m.RenderASCII(1); small == "" {
		t.Error("small render empty")
	}
}
