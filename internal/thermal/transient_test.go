package thermal

import (
	"math"
	"reflect"
	"testing"

	"vcselnoc/internal/fvm"
)

// transientPowers is the lasers-on operating point the transient tests
// integrate towards.
var transientPowers = Powers{Chip: 25, VCSEL: 4e-3, Driver: 4e-3, Heater: 1.2e-3}

// TestTransientRunResumeDeterminism: a run checkpointed at step k and
// resumed on a freshly built model must land on a field bit-identical to
// the uninterrupted run — reflect.DeepEqual on the full Result.
func TestTransientRunResumeDeterminism(t *testing.T) {
	spec := previewSpec(t)
	m1, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	base := TransientSpec{TimeStep: 0.02, Steps: 8}
	want, err := m1.SolveTransient(transientPowers, base)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint every 3 steps, stop after step 6.
	var cps []*fvm.TransientCheckpoint
	run, err := m1.NewTransientRun(transientPowers, TransientSpec{
		TimeStep: base.TimeStep, Steps: base.Steps,
		CheckpointEvery: 3,
		Checkpoint:      func(cp *fvm.TransientCheckpoint) error { cps = append(cps, cp); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for run.StepIndex() < 6 {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if len(cps) != 2 || cps[0].Step != 3 || cps[1].Step != 6 {
		t.Fatalf("checkpoint cadence wrong: got %d checkpoints", len(cps))
	}

	// Resume from step 6 on a second model built from the same spec —
	// the cross-restart scenario.
	m2, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := m2.NewTransientRun(transientPowers, TransientSpec{
		TimeStep: base.TimeStep, Steps: base.Steps, Resume: cps[1],
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.Resumed() || resumed.StepIndex() != 6 {
		t.Fatalf("resume state: resumed=%v step=%d", resumed.Resumed(), resumed.StepIndex())
	}
	for !resumed.Done() {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.T, want.T) {
		t.Error("resumed field is not bit-identical to the uninterrupted run")
	}
	if !reflect.DeepEqual(got.ONIs, want.ONIs) {
		t.Error("resumed ONI reports differ from the uninterrupted run")
	}
}

// TestTransientObserver: the cheap observer must fire every step with
// sane statistics — rising peak temperature during warm-up, one gradient
// per ONI, and a gradient consistent with the full report's.
func TestTransientObserver(t *testing.T) {
	m, err := NewModel(previewSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var obs []TransientObservation
	res, err := m.SolveTransient(transientPowers, TransientSpec{
		TimeStep: 0.02, Steps: 5,
		Observer: func(o TransientObservation) { obs = append(obs, o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 5 {
		t.Fatalf("%d observations, want 5", len(obs))
	}
	for i, o := range obs {
		if o.Step != i+1 {
			t.Errorf("observation %d has step %d", i, o.Step)
		}
		if len(o.ONIGradients) != len(m.ONIs()) {
			t.Errorf("step %d: %d gradients for %d ONIs", o.Step, len(o.ONIGradients), len(m.ONIs()))
		}
		if o.SolverIterations <= 0 {
			t.Errorf("step %d: no solver iterations reported", o.Step)
		}
		if i > 0 && o.PeakTemp < obs[i-1].PeakTemp-1e-9 {
			t.Errorf("peak temperature fell during warm-up: %g -> %g", obs[i-1].PeakTemp, o.PeakTemp)
		}
	}
	// The observer's gradient tracks the full report's to stencil
	// accuracy (both are volume-weighted device means).
	last := obs[len(obs)-1]
	if d := math.Abs(last.MaxGradient - res.MaxONIGradient()); d > 1e-9 {
		t.Errorf("observer gradient %g vs report %g (|Δ|=%g)", last.MaxGradient, res.MaxONIGradient(), d)
	}
}

// TestTransientResumeRefusals: resuming against a different mesh, or
// past the run's horizon, must refuse.
func TestTransientResumeRefusals(t *testing.T) {
	m, err := NewModel(previewSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.NewTransientRun(transientPowers, TransientSpec{TimeStep: 0.02, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	for !run.Done() {
		if err := run.Step(); err != nil {
			t.Fatal(err)
		}
	}
	cp := run.Checkpoint()

	// Different mesh: coarse vs preview.
	coarse := previewSpec(t)
	coarse.Res = CoarseResolution()
	mc, err := NewModel(coarse)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.NewTransientRun(transientPowers, TransientSpec{TimeStep: 0.02, Steps: 8, Resume: cp}); err == nil {
		t.Error("resume on a different mesh should refuse")
	}
	// Different powers on the same mesh.
	if _, err := m.NewTransientRun(Powers{Chip: 30}, TransientSpec{TimeStep: 0.02, Steps: 8, Resume: cp}); err == nil {
		t.Error("resume with different powers should refuse")
	}
	// Horizon already passed.
	if _, err := m.NewTransientRun(transientPowers, TransientSpec{TimeStep: 0.02, Steps: 2, Resume: cp}); err == nil {
		t.Error("resume past the run horizon should refuse")
	}
	// Stepping a finished run refuses.
	if err := run.Step(); err == nil {
		t.Error("stepping a completed run should refuse")
	}
}
