//go:build race

package thermal

// raceEnabled mirrors the -race build flag: race runs exercise the
// concurrent solver paths on the preview mesh, where the detector's
// instrumentation overhead stays affordable.
const raceEnabled = true
