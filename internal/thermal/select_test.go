package thermal

import (
	"testing"

	"vcselnoc/internal/sparse"
)

// TestEffectiveSolverPerResolution pins the auto-selection: mg-cg at the
// fast/paper resolutions where its mesh-independent iteration count
// dominates, jacobi-cg on the coarse/preview meshes, and an explicit
// Solver name always winning.
func TestEffectiveSolverPerResolution(t *testing.T) {
	cases := []struct {
		name string
		res  Resolution
		want string
	}{
		{"paper", PaperResolution(), sparse.BackendMGCG},
		{"fast", FastResolution(), sparse.BackendMGCG},
		{"coarse", CoarseResolution(), sparse.BackendJacobiCG},
		{"preview", PreviewResolution(), sparse.BackendJacobiCG},
		{"zero", Resolution{}, sparse.BackendJacobiCG},
	}
	for _, tc := range cases {
		got := Spec{Res: tc.res}.EffectiveSolver()
		if got != tc.want {
			t.Errorf("%s: EffectiveSolver() = %q, want %q", tc.name, got, tc.want)
		}
	}
	for _, explicit := range sparse.Backends() {
		spec := Spec{Res: PaperResolution(), Solver: explicit}
		if got := spec.EffectiveSolver(); got != explicit {
			t.Errorf("explicit %q overridden to %q", explicit, got)
		}
	}
}

// TestResolutionByName pins the shared -res flag vocabulary.
func TestResolutionByName(t *testing.T) {
	for name, want := range map[string]Resolution{
		"preview": PreviewResolution(),
		"coarse":  CoarseResolution(),
		"fast":    FastResolution(),
		"paper":   PaperResolution(),
	} {
		got, err := ResolutionByName(name)
		if err != nil || got != want {
			t.Errorf("ResolutionByName(%q) = %+v, %v", name, got, err)
		}
	}
	if _, err := ResolutionByName("ultra"); err == nil {
		t.Error("unknown resolution accepted")
	}
}

// TestSolveOptionsUseEffectiveSolver checks the auto-selection actually
// reaches the solve path, not just the accessor.
func TestSolveOptionsUseEffectiveSolver(t *testing.T) {
	spec, err := PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = PreviewResolution()
	spec.Solver = ""
	m, err := NewModel(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.solveOptions().Solver; got != sparse.BackendJacobiCG {
		t.Fatalf("preview solveOptions solver = %q, want %q", got, sparse.BackendJacobiCG)
	}
	m.spec.Res = FastResolution() // selection is resolution-driven, no rebuild needed
	if got := m.solveOptions().Solver; got != sparse.BackendMGCG {
		t.Fatalf("fast solveOptions solver = %q, want %q", got, sparse.BackendMGCG)
	}
}
