package thermal

import (
	"math"
	"testing"

	"vcselnoc/internal/fvm"
)

// previewSpec is a tiny-mesh spec for solver-equivalence tests: these
// assert numerical agreement between code paths, not paper physics, so
// the coarsest mesh suffices and keeps -race runs quick.
func previewSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = PreviewResolution()
	spec.SolverTol = 1e-9
	return spec
}

// TestBuildBasisParallelMatchesSerial: fanning the four unit solves
// across a worker pool must reproduce the serial basis. Run under -race
// this is the data-race check for the parallel BuildBasis path.
func TestBuildBasisParallelMatchesSerial(t *testing.T) {
	serialSpec := previewSpec(t)
	serialSpec.Workers = 1
	ms, err := NewModel(serialSpec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ms.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}
	parallelSpec := previewSpec(t)
	parallelSpec.Workers = 4
	mp, err := NewModel(parallelSpec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := mp.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name             string
		serial, parallel []float64
	}{
		{"chip", serial.chip, parallel.chip},
		{"vcsel", serial.vcsel, parallel.vcsel},
		{"driver", serial.driver, parallel.driver},
		{"heater", serial.heater, parallel.heater},
	}
	for _, pr := range pairs {
		if len(pr.serial) != len(pr.parallel) {
			t.Fatalf("%s: length %d vs %d", pr.name, len(pr.serial), len(pr.parallel))
		}
		for i := range pr.serial {
			if math.Abs(pr.serial[i]-pr.parallel[i]) > 1e-9 {
				t.Fatalf("%s basis differs at cell %d: serial %g vs parallel %g",
					pr.name, i, pr.serial[i], pr.parallel[i])
			}
		}
	}
}

// TestSolverBackendsAgreeOnModel: a full system solve must agree across
// the Jacobi-CG, SSOR-CG and MG-CG backends to 1e-6 relative on the
// temperature rise.
func TestSolverBackendsAgreeOnModel(t *testing.T) {
	p := Powers{Chip: 25, VCSEL: 3e-3, Driver: 3e-3, Heater: 1e-3}
	backends := []string{"jacobi-cg", "ssor-cg", "mg-cg"}
	fields := map[string][]float64{}
	var ambient float64
	for _, backend := range backends {
		spec := previewSpec(t)
		spec.Solver = backend
		m, err := NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		fields[backend] = res.T
		ambient = spec.Ambient
	}
	ref := fields["jacobi-cg"]
	var maxRise float64
	for i := range ref {
		if r := math.Abs(ref[i] - ambient); r > maxRise {
			maxRise = r
		}
	}
	for _, backend := range backends[1:] {
		var maxD float64
		for i, v := range fields[backend] {
			if d := math.Abs(ref[i] - v); d > maxD {
				maxD = d
			}
		}
		if maxD/maxRise > 1e-6 {
			t.Errorf("%s disagrees with jacobi-cg on the model field: rel diff %.2e > 1e-6", backend, maxD/maxRise)
		}
	}
}

// TestMGCGMeshIndependence is the property the multigrid backend exists
// for: its CG iteration count must stay within a narrow band as the mesh
// refines Preview → Coarse → Fast (the bench resolution), while SSOR-CG —
// whose iterations scale with √κ ∝ 1/h — degrades. The Fast tier costs an
// SSOR-CG solve of the 285k-cell system, so it is skipped under -short;
// the Preview → Coarse band is still asserted there.
func TestMGCGMeshIndependence(t *testing.T) {
	resolutions := []struct {
		name string
		res  Resolution
	}{
		{"preview", PreviewResolution()},
		{"coarse", CoarseResolution()},
		{"fast", FastResolution()},
	}
	if testing.Short() {
		resolutions = resolutions[:2]
	}
	p := Powers{Chip: 25, VCSEL: 3e-3, Driver: 3e-3, Heater: 1e-3}
	iters := map[string][]int{}
	for _, rn := range resolutions {
		spec, err := PaperSpec()
		if err != nil {
			t.Fatal(err)
		}
		spec.Res = rn.res
		spec.SolverTol = 1e-8
		m, err := NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		power, err := m.PowerVector(p)
		if err != nil {
			t.Fatal(err)
		}
		backends := []string{"mg-cg"}
		if !testing.Short() {
			// The SSOR-CG comparison column costs hundreds of iterations
			// per tier; -short keeps only the cheap mg-cg band check.
			backends = append(backends, "ssor-cg")
		}
		for _, backend := range backends {
			sol, err := m.System().SolveSteady(power, fvm.SolveOptions{Tolerance: 1e-8, Solver: backend})
			if err != nil {
				t.Fatalf("%s/%s: %v", rn.name, backend, err)
			}
			if !sol.Stats.Converged {
				t.Fatalf("%s/%s did not converge", rn.name, backend)
			}
			iters[backend] = append(iters[backend], sol.Stats.Iterations)
		}
		t.Logf("%s (n=%d): iterations %v", rn.name, m.System().N(), iters)
	}
	mg0 := float64(iters["mg-cg"][0])
	for i, it := range iters["mg-cg"] {
		if float64(it) > 1.5*mg0 {
			t.Errorf("mg-cg iterations grew from %d (preview) to %d (%s) — over the 1.5x mesh-independence band",
				iters["mg-cg"][0], it, resolutions[i].name)
		}
	}
	if !testing.Short() {
		last := len(iters["ssor-cg"]) - 1
		mgGrowth := float64(iters["mg-cg"][last]) / mg0
		ssorGrowth := float64(iters["ssor-cg"][last]) / float64(iters["ssor-cg"][0])
		if ssorGrowth <= 2 {
			t.Logf("note: ssor-cg growth %.2fx unexpectedly mild", ssorGrowth)
		}
		if mgGrowth >= ssorGrowth {
			t.Errorf("mg-cg growth %.2fx is not better than ssor-cg's %.2fx", mgGrowth, ssorGrowth)
		}
	}
}

// TestSpecSolverValidation: unknown backends and negative worker counts
// must be rejected at spec level.
func TestSpecSolverValidation(t *testing.T) {
	spec := previewSpec(t)
	spec.Solver = "multigrid"
	if err := spec.Validate(); err == nil {
		t.Error("unknown solver backend should fail validation")
	}
	spec = previewSpec(t)
	spec.Workers = -2
	if err := spec.Validate(); err == nil {
		t.Error("negative worker count should fail validation")
	}
	spec = previewSpec(t)
	spec.Solver = "ssor-cg"
	spec.Workers = 2
	if err := spec.Validate(); err != nil {
		t.Errorf("valid solver spec rejected: %v", err)
	}
}
