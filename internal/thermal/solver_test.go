package thermal

import (
	"math"
	"testing"
)

// previewSpec is a tiny-mesh spec for solver-equivalence tests: these
// assert numerical agreement between code paths, not paper physics, so
// the coarsest mesh suffices and keeps -race runs quick.
func previewSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := PaperSpec()
	if err != nil {
		t.Fatal(err)
	}
	spec.Res = PreviewResolution()
	spec.SolverTol = 1e-9
	return spec
}

// TestBuildBasisParallelMatchesSerial: fanning the four unit solves
// across a worker pool must reproduce the serial basis. Run under -race
// this is the data-race check for the parallel BuildBasis path.
func TestBuildBasisParallelMatchesSerial(t *testing.T) {
	serialSpec := previewSpec(t)
	serialSpec.Workers = 1
	ms, err := NewModel(serialSpec)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ms.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}
	parallelSpec := previewSpec(t)
	parallelSpec.Workers = 4
	mp, err := NewModel(parallelSpec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := mp.BuildBasis(nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := []struct {
		name             string
		serial, parallel []float64
	}{
		{"chip", serial.chip, parallel.chip},
		{"vcsel", serial.vcsel, parallel.vcsel},
		{"driver", serial.driver, parallel.driver},
		{"heater", serial.heater, parallel.heater},
	}
	for _, pr := range pairs {
		if len(pr.serial) != len(pr.parallel) {
			t.Fatalf("%s: length %d vs %d", pr.name, len(pr.serial), len(pr.parallel))
		}
		for i := range pr.serial {
			if math.Abs(pr.serial[i]-pr.parallel[i]) > 1e-9 {
				t.Fatalf("%s basis differs at cell %d: serial %g vs parallel %g",
					pr.name, i, pr.serial[i], pr.parallel[i])
			}
		}
	}
}

// TestSolverBackendsAgreeOnModel: a full system solve must agree between
// the Jacobi-CG and SSOR-CG backends to 1e-6 relative on the temperature
// rise.
func TestSolverBackendsAgreeOnModel(t *testing.T) {
	p := Powers{Chip: 25, VCSEL: 3e-3, Driver: 3e-3, Heater: 1e-3}
	fields := map[string][]float64{}
	var ambient float64
	for _, backend := range []string{"jacobi-cg", "ssor-cg"} {
		spec := previewSpec(t)
		spec.Solver = backend
		m, err := NewModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Solve(p)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		fields[backend] = res.T
		ambient = spec.Ambient
	}
	ja, ss := fields["jacobi-cg"], fields["ssor-cg"]
	var maxD, maxRise float64
	for i := range ja {
		if d := math.Abs(ja[i] - ss[i]); d > maxD {
			maxD = d
		}
		if r := math.Abs(ja[i] - ambient); r > maxRise {
			maxRise = r
		}
	}
	if maxD/maxRise > 1e-6 {
		t.Errorf("backends disagree on the model field: rel diff %.2e > 1e-6", maxD/maxRise)
	}
}

// TestSpecSolverValidation: unknown backends and negative worker counts
// must be rejected at spec level.
func TestSpecSolverValidation(t *testing.T) {
	spec := previewSpec(t)
	spec.Solver = "multigrid"
	if err := spec.Validate(); err == nil {
		t.Error("unknown solver backend should fail validation")
	}
	spec = previewSpec(t)
	spec.Workers = -2
	if err := spec.Validate(); err == nil {
		t.Error("negative worker count should fail validation")
	}
	spec = previewSpec(t)
	spec.Solver = "ssor-cg"
	spec.Workers = 2
	if err := spec.Validate(); err != nil {
		t.Errorf("valid solver spec rejected: %v", err)
	}
}
