package thermal

// System-level transient simulation as a resumable run: TransientRun
// wraps the fvm.TransientStepper with the model's power deposition and
// reporting, adds a cheap per-step observer (peak temperature, per-ONI
// device gradients via precomputed probe stencils) and checkpoint/resume
// knobs, and is the unit the serving layer's async transient jobs drive
// step by step. Model.SolveTransient remains the run-to-completion
// wrapper over it.

import (
	"fmt"

	"vcselnoc/internal/fvm"
)

// DefaultCheckpointEvery is the checkpoint cadence (in steps) used when a
// TransientSpec supplies a Checkpoint sink without a CheckpointEvery.
const DefaultCheckpointEvery = 25

// TransientSpec configures a system-level transient simulation.
type TransientSpec struct {
	// TimeStep is the implicit-Euler step in seconds.
	TimeStep float64
	// Steps is the number of steps to integrate (total, including any
	// steps already covered by a Resume checkpoint).
	Steps int
	// Initial optionally seeds the run with a previous result's field
	// (e.g. the chip-only steady state before the lasers switch on). When
	// nil the field starts uniform at the ambient temperature. Ignored
	// when Resume is set — the checkpoint carries the field.
	Initial *Result
	// Snapshot, if non-nil, receives a full report after each step.
	// Building a report costs per-ONI statistics; pass nil and use the
	// returned final result when only the end state matters.
	Snapshot func(step int, time float64, r *Result)
	// Observer, if non-nil, receives cheap per-step statistics (peak
	// temperature, per-ONI device gradients) computed from precomputed
	// probe stencils — orders of magnitude cheaper than Snapshot.
	Observer func(o TransientObservation)
	// Checkpoint, if non-nil, receives a serialisable checkpoint every
	// CheckpointEvery steps and at the final step; a sink error aborts
	// the run.
	Checkpoint func(cp *fvm.TransientCheckpoint) error
	// CheckpointEvery is the checkpoint cadence in steps; 0 with a
	// non-nil Checkpoint selects DefaultCheckpointEvery.
	CheckpointEvery int
	// Resume, if non-nil, restores the run from a checkpoint after a
	// hard fingerprint check (mesh, operator, power vector, dt, solver):
	// stepping then continues bit-identically to the original run.
	Resume *fvm.TransientCheckpoint
}

// TransientObservation is one step's cheap monitoring statistics.
type TransientObservation struct {
	// Step is the completed step count; TimeS the simulated time (s).
	Step  int
	TimeS float64
	// PeakTemp is the hottest cell anywhere in the package (°C).
	PeakTemp float64
	// ONIGradients holds each ONI's device gradient (max−min over its
	// VCSEL and MR mean temperatures, °C) — the per-laser quantity the
	// paper's 1 °C constraint watches. MaxGradient is their maximum.
	ONIGradients []float64
	MaxGradient  float64
	// SolverIterations reports the step's linear-solve iteration count.
	SolverIterations int
}

// TransientRun is an in-flight resumable transient simulation. It is not
// safe for concurrent use; drive it from one goroutine.
type TransientRun struct {
	model   *Model
	powers  Powers
	spec    TransientSpec
	st      *fvm.TransientStepper
	resumed bool
}

// NewTransientRun prepares (and, with spec.Resume, restores) a transient
// run. The spec's Steps is the run's total horizon: a run resumed from a
// step-k checkpoint has Steps−k steps left.
func (m *Model) NewTransientRun(p Powers, ts TransientSpec) (*TransientRun, error) {
	if ts.Steps <= 0 {
		return nil, fmt.Errorf("thermal: transient steps %d must be > 0", ts.Steps)
	}
	power, err := m.powerVector(p)
	if err != nil {
		return nil, err
	}
	opts := fvm.TransientOptions{
		TimeStep:       ts.TimeStep,
		InitialUniform: m.spec.Ambient,
		Tolerance:      m.spec.SolverTol,
		Solver:         m.spec.EffectiveSolver(),
		Workers:        m.spec.Workers,
	}
	if ts.Initial != nil && ts.Resume == nil {
		if len(ts.Initial.T) != m.grid.NumCells() {
			return nil, fmt.Errorf("thermal: initial field has %d cells, want %d",
				len(ts.Initial.T), m.grid.NumCells())
		}
		opts.Initial = ts.Initial.T
	}
	st, err := m.sys.NewTransientStepper(power, opts)
	if err != nil {
		return nil, err
	}
	run := &TransientRun{model: m, powers: p, spec: ts, st: st}
	if ts.Resume != nil {
		if err := st.Restore(ts.Resume); err != nil {
			return nil, err
		}
		if st.StepIndex() > ts.Steps {
			return nil, fmt.Errorf("thermal: checkpoint is at step %d, beyond the run's %d steps", st.StepIndex(), ts.Steps)
		}
		run.resumed = true
	}
	return run, nil
}

// Step advances one implicit-Euler step and fires the spec's observer,
// snapshot and checkpoint hooks.
func (r *TransientRun) Step() error {
	if r.Done() {
		return fmt.Errorf("thermal: transient run already completed its %d steps", r.spec.Steps)
	}
	stats, err := r.st.Step()
	if err != nil {
		return err
	}
	step, tm := r.st.StepIndex(), r.st.Time()
	if r.spec.Observer != nil {
		o := r.Observation()
		o.SolverIterations = stats.Iterations
		r.spec.Observer(o)
	}
	if r.spec.Snapshot != nil {
		// Field() hands the callback its own copy, so the report may keep
		// it as its T.
		if rep, err := r.model.report(r.st.Field(), r.powers); err == nil {
			r.spec.Snapshot(step, tm, rep)
		}
	}
	if r.spec.Checkpoint != nil {
		every := r.spec.CheckpointEvery
		if every <= 0 {
			every = DefaultCheckpointEvery
		}
		if step%every == 0 || r.Done() {
			if err := r.spec.Checkpoint(r.st.Checkpoint()); err != nil {
				return fmt.Errorf("thermal: checkpoint sink at step %d: %w", step, err)
			}
		}
	}
	return nil
}

// Done reports whether the run has completed its horizon.
func (r *TransientRun) Done() bool { return r.st.StepIndex() >= r.spec.Steps }

// StepIndex returns the completed step count (includes resumed steps).
func (r *TransientRun) StepIndex() int { return r.st.StepIndex() }

// Steps returns the run's total horizon.
func (r *TransientRun) Steps() int { return r.spec.Steps }

// Time returns the simulated time (s).
func (r *TransientRun) Time() float64 { return r.st.Time() }

// Resumed reports whether the run was restored from a checkpoint.
func (r *TransientRun) Resumed() bool { return r.resumed }

// Checkpoint serialises the run's current state.
func (r *TransientRun) Checkpoint() *fvm.TransientCheckpoint { return r.st.Checkpoint() }

// Observation computes the current cheap monitoring statistics.
func (r *TransientRun) Observation() TransientObservation {
	t := r.st.FieldView()
	o := TransientObservation{Step: r.st.StepIndex(), TimeS: r.st.Time()}
	if len(t) > 0 {
		o.PeakTemp = t[0]
		for _, v := range t {
			if v > o.PeakTemp {
				o.PeakTemp = v
			}
		}
	}
	o.ONIGradients = make([]float64, len(r.model.probes))
	for i, probes := range r.model.probes {
		var min, max float64
		for pi := range probes {
			mean := probes[pi].meanTemp(t)
			if pi == 0 || mean < min {
				min = mean
			}
			if pi == 0 || mean > max {
				max = mean
			}
		}
		o.ONIGradients[i] = max - min
		if o.ONIGradients[i] > o.MaxGradient {
			o.MaxGradient = o.ONIGradients[i]
		}
	}
	return o
}

// Result builds the full report of the run's current state.
func (r *TransientRun) Result() (*Result, error) {
	return r.model.report(r.st.Field(), r.powers)
}

// FieldFingerprint hashes the current temperature field — the integrity
// token the job API reports so clients (and tests) can assert that two
// runs landed on bit-identical fields without shipping them.
func (r *TransientRun) FieldFingerprint() string {
	return fmt.Sprintf("%016x", fvm.HashFloat64s(r.st.FieldView()))
}

// SolveTransient integrates the transient heat equation for the system at
// fixed powers (e.g. to watch the ONIs warm up after the lasers switch
// on). It routes through a TransientRun — one step at a time against the
// cached per-dt transient operator — and returns the final state.
func (m *Model) SolveTransient(p Powers, ts TransientSpec) (*Result, error) {
	run, err := m.NewTransientRun(p, ts)
	if err != nil {
		return nil, err
	}
	for !run.Done() {
		if err := run.Step(); err != nil {
			return nil, err
		}
	}
	return run.Result()
}
