//go:build !race

package thermal

// raceEnabled mirrors the -race build flag.
const raceEnabled = false
