// Package thermal is the system-level thermal simulator (the substitute
// for IcTherm in the paper's methodology). It assembles the full 3D model
// — SCC die power map, package stack, ONI device layouts — into a
// finite-volume problem, solves it, and reports the per-ONI average and
// gradient temperatures that drive the design-space exploration.
//
// Because the steady heat equation with fixed-film convection boundaries
// is linear in the injected powers, the package also offers a
// superposition Basis: four unit-power solves (chip, VCSELs, drivers,
// heaters) from which any (P_chip, P_VCSEL, P_driver, P_heater) operating
// point is evaluated by linear combination, making the paper's parameter
// sweeps (Figs. 9 and 10) cheap.
package thermal

import (
	"fmt"
	"math"
	"time"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/fvm"
	"vcselnoc/internal/geom"
	"vcselnoc/internal/materials"
	"vcselnoc/internal/mesh"
	"vcselnoc/internal/mg"
	"vcselnoc/internal/oni"
	"vcselnoc/internal/scc"
	"vcselnoc/internal/sparse"
	"vcselnoc/internal/stack"
)

// Resolution controls mesh density.
type Resolution struct {
	// ONICell is the lateral cell size inside ONI refinement bands (m).
	// The paper uses 5 µm.
	ONICell float64
	// DieCell is the lateral cell size elsewhere on the die (m). The paper
	// uses ~100 µm for heat sources and ~500 µm for the package; a single
	// lateral background value is used here.
	DieCell float64
	// MaxZCell caps the vertical cell size (m); thin layers always get at
	// least one cell.
	MaxZCell float64
}

// PaperResolution is the paper's meshing strategy (5 µm ONI cells). Slow:
// reserve it for benchmark runs.
func PaperResolution() Resolution {
	return Resolution{ONICell: 5e-6, DieCell: 500e-6, MaxZCell: 600e-6}
}

// FastResolution trades some accuracy for speed (10 µm ONI cells).
func FastResolution() Resolution {
	return Resolution{ONICell: 10e-6, DieCell: 1e-3, MaxZCell: 600e-6}
}

// CoarseResolution is for tests: 20 µm ONI cells.
func CoarseResolution() Resolution {
	return Resolution{ONICell: 20e-6, DieCell: 2e-3, MaxZCell: 800e-6}
}

// PreviewResolution is the coarsest usable mesh (40 µm ONI cells): device
// temperatures are only indicative, but models build and solve in a
// fraction of a second. Quick-iteration tests (-short) and smoke runs use
// it.
func PreviewResolution() Resolution {
	return Resolution{ONICell: 40e-6, DieCell: 4e-3, MaxZCell: 1.2e-3}
}

// ResolutionByName resolves a CLI-style resolution name — the single
// source for every command's -res flag, so adding a tier never needs
// per-command switch updates.
func ResolutionByName(name string) (Resolution, error) {
	switch name {
	case "preview":
		return PreviewResolution(), nil
	case "coarse":
		return CoarseResolution(), nil
	case "fast":
		return FastResolution(), nil
	case "paper":
		return PaperResolution(), nil
	default:
		return Resolution{}, fmt.Errorf("thermal: unknown resolution %q (want preview, coarse, fast or paper)", name)
	}
}

// Validate reports resolution errors.
func (r Resolution) Validate() error {
	if r.ONICell <= 0 || r.DieCell <= 0 || r.MaxZCell <= 0 {
		return fmt.Errorf("thermal: resolution cells must be > 0: %+v", r)
	}
	if r.ONICell > r.DieCell {
		return fmt.Errorf("thermal: ONI cell %g larger than die cell %g", r.ONICell, r.DieCell)
	}
	return nil
}

// Spec is the full system specification (the left column of the paper's
// Fig. 3).
type Spec struct {
	Floorplan *scc.Floorplan
	Stack     *stack.Stack
	HeatSink  stack.HeatSink
	// Ambient is the cooling air temperature, °C.
	Ambient float64
	// BoardH is the convection coefficient on the package bottom
	// (secondary cooling path through the board), W/(m²·K).
	BoardH float64
	// ONIStyle selects the chessboard or clustered device placement.
	ONIStyle oni.Style
	// HeaterFootprintScale widens the heater power footprint relative to
	// the MR: the resistive strip covers the ring plus its contacts.
	// Zero defaults to 2.5.
	HeaterFootprintScale float64
	// Res selects the mesh density.
	Res Resolution
	// SolverTol is the solver's relative tolerance (default 1e-8).
	SolverTol float64
	// Solver selects the sparse backend by name ("jacobi-cg", "ssor-cg",
	// "mg-cg"); empty auto-selects per resolution (see EffectiveSolver).
	Solver string
	// Workers caps the goroutines used by parallel solves (basis building,
	// matrix-vector products); 0 means GOMAXPROCS.
	Workers int
}

// PaperSpec returns the spec used throughout the reproduction: SCC
// floorplan, Fig. 7 stack, a heat sink calibrated so that a 25 W uniform
// load puts the ONIs near the paper's ~49 °C, chessboard ONIs.
func PaperSpec() (Spec, error) {
	fp, err := scc.New()
	if err != nil {
		return Spec{}, err
	}
	st, err := stack.DefaultSCC()
	if err != nil {
		return Spec{}, err
	}
	hs := stack.DefaultHeatSink()
	// Calibration: the paper's absolute temperatures (40–70 °C at only
	// 12–31 W) imply a fairly weak junction-to-ambient path (~1 K/W);
	// a modest forced-air sink reproduces that operating point.
	hs.AirH = 13
	return Spec{
		Floorplan: fp,
		Stack:     st,
		HeatSink:  hs,
		Ambient:   25,
		BoardH:    15,
		ONIStyle:  oni.Chessboard,
		Res:       FastResolution(),
		SolverTol: 1e-8,
	}, nil
}

// autoSolverCell is the coarsest ONI cell size (m) at which an empty
// Spec.Solver auto-selects mg-cg: at 10 µm (FastResolution) and finer,
// the mg-cg iteration count is mesh-independent and dominates even for a
// single cold solve. On the coarser preview/coarse tiers the per-solve
// crossover has moved to mg-cg too (the red-black/float32 V-cycle with a
// direct banded coarse solve beats jacobi-cg ~4x per warm solve, see the
// README's Performance section), but its one-off setup — hierarchy,
// Galerkin products, band Cholesky factorisation — still costs more than
// a whole jacobi-cg solve there, so the auto rule keeps jacobi-cg for the
// one-shot small-mesh case. Callers doing repeated solves on a preview
// mesh (servers, basis builds, sweeps) should set Solver: "mg-cg"
// explicitly; the hierarchy is cached on the fvm.System, so only the
// first solve pays the setup.
const autoSolverCell = 10e-6

// EffectiveSolver resolves the sparse backend a solve of this spec uses:
// an explicit Solver name wins; an empty Solver auto-selects mg-cg at
// fast/paper resolutions (ONI cells ≤ 10 µm) and jacobi-cg on the coarser
// preview/coarse meshes, where the V-cycle setup outweighs its per-solve
// advantage for a single solve (see autoSolverCell for the tradeoff).
func (s Spec) EffectiveSolver() string {
	if s.Solver != "" {
		return s.Solver
	}
	if s.Res.ONICell > 0 && s.Res.ONICell <= autoSolverCell {
		return sparse.BackendMGCG
	}
	return sparse.BackendJacobiCG
}

// Validate reports spec errors.
func (s Spec) Validate() error {
	if s.Floorplan == nil {
		return fmt.Errorf("thermal: nil floorplan")
	}
	if s.Stack == nil {
		return fmt.Errorf("thermal: nil stack")
	}
	if err := s.HeatSink.Validate(); err != nil {
		return err
	}
	if err := s.Res.Validate(); err != nil {
		return err
	}
	if s.BoardH < 0 {
		return fmt.Errorf("thermal: negative board coefficient %g", s.BoardH)
	}
	if s.HeaterFootprintScale < 0 || s.HeaterFootprintScale > 4 {
		return fmt.Errorf("thermal: heater footprint scale %g outside [0, 4]", s.HeaterFootprintScale)
	}
	if math.IsNaN(s.Ambient) || math.IsInf(s.Ambient, 0) {
		return fmt.Errorf("thermal: invalid ambient %g", s.Ambient)
	}
	if s.Workers < 0 {
		return fmt.Errorf("thermal: negative worker count %d", s.Workers)
	}
	if _, err := sparse.NewSolver(s.Solver); err != nil {
		return err
	}
	return nil
}

// Powers are the independent power knobs of one operating point.
type Powers struct {
	// Chip is the total processing-layer power (W) distributed by the
	// Activity scenario.
	Chip float64
	// Activity shapes the chip power (nil means uniform).
	Activity activity.Scenario
	// VCSEL is the heat dissipated by each VCSEL (W) in the optical layer.
	VCSEL float64
	// Driver is the heat dissipated by each CMOS driver (W) in the BEOL.
	// The paper's worst case sets Driver = VCSEL.
	Driver float64
	// Heater is the power of each MR heater (W) in the optical layer.
	Heater float64
}

// Validate reports power errors.
func (p Powers) Validate() error {
	for _, v := range []struct {
		name string
		val  float64
	}{{"chip", p.Chip}, {"vcsel", p.VCSEL}, {"driver", p.Driver}, {"heater", p.Heater}} {
		if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
			return fmt.Errorf("thermal: invalid %s power %g", v.name, v.val)
		}
	}
	return nil
}

// weightedCell couples a cell index with the fraction of a group's unit
// power deposited in it.
type weightedCell struct {
	idx    int
	weight float64
}

// deviceProbe locates one optical device for temperature reporting. The
// cells/weights stencil (volume-weighted mean, weights summing to 1) is
// precomputed so per-step transient observers can read device
// temperatures without re-walking the mesh.
type deviceProbe struct {
	name    string
	box     geom.Box
	isVCSEL bool

	cells   []int32
	weights []float64
}

// meanTemp evaluates the probe's volume-weighted mean over a field.
func (p *deviceProbe) meanTemp(t []float64) float64 {
	var s float64
	for i, c := range p.cells {
		s += t[c] * p.weights[i]
	}
	return s
}

// Model is an assembled thermal model: mesh, conductivity, power-group
// stencils AND the discretised finite-volume operator are built once;
// individual solves only change the RHS. A Model is immutable after
// NewModel and safe for concurrent solves.
type Model struct {
	spec    Spec
	grid    *mesh.Grid
	cond    []float64
	heatCap []float64

	// sys is the assembled steady operator, shared by every solve.
	sys *fvm.System

	onis []*oni.Layout

	// Power deposition stencils. vcselCells/driverCells/heaterCells
	// weights sum to 1 per device group; chip weights depend on activity
	// and are rebuilt per solve.
	vcselCells  []weightedCell
	driverCells []weightedCell
	heaterCells []weightedCell
	vcselCount  int
	heaterCount int

	beolSpan    stack.Span
	opticalSpan stack.Span

	probes [][]deviceProbe // per ONI

	topH float64
}

// NewModel builds the mesh, material field and power stencils.
func NewModel(spec Spec) (*Model, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.SolverTol <= 0 {
		spec.SolverTol = 1e-8
	}
	m := &Model{spec: spec}

	// Generate the ONIs.
	for i, site := range spec.Floorplan.ONISites {
		layout, err := oni.Generate(site, spec.ONIStyle)
		if err != nil {
			return nil, fmt.Errorf("thermal: ONI %d: %w", i, err)
		}
		m.onis = append(m.onis, layout)
	}

	var err error
	m.beolSpan, err = spec.Stack.Find(stack.LayerBEOL)
	if err != nil {
		return nil, err
	}
	m.opticalSpan, err = spec.Stack.Find(stack.LayerOptical)
	if err != nil {
		return nil, err
	}

	if err := m.buildGrid(); err != nil {
		return nil, err
	}
	if err := m.buildMaterials(); err != nil {
		return nil, err
	}
	if err := m.buildStencils(); err != nil {
		return nil, err
	}
	m.buildProbes()

	// Effective top-side coefficient: the sink's bulk resistance referred
	// to the die footprint (the lid spreads heat into the larger sink
	// base).
	hEff, err := spec.HeatSink.EffectiveH()
	if err != nil {
		return nil, err
	}
	m.topH = hEff * spec.HeatSink.BaseArea / spec.Floorplan.Die.Area()

	// Assemble the finite-volume operator once: geometry, conductivity and
	// boundaries are fixed for the model's lifetime, so every solve —
	// direct, basis, batch or transient — reuses this System.
	m.sys, err = fvm.NewSystem(&fvm.Problem{
		Grid:         m.grid,
		Conductivity: m.cond,
		Power:        make([]float64, m.grid.NumCells()),
		HeatCapacity: m.heatCap,
		ZMin:         fvm.Boundary{Type: fvm.Convection, H: m.spec.BoardH, Value: m.spec.Ambient},
		ZMax:         fvm.Boundary{Type: fvm.Convection, H: m.topH, Value: m.spec.Ambient},
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}

func (m *Model) buildGrid() error {
	fp := m.spec.Floorplan
	res := m.spec.Res

	xb := mesh.NewAxisBuilder(fp.Die.X.Lo, fp.Die.X.Hi, res.DieCell)
	yb := mesh.NewAxisBuilder(fp.Die.Y.Lo, fp.Die.Y.Hi, res.DieCell)
	for _, site := range fp.ONISites {
		xb.AddRefinement(site.X.Lo, site.X.Hi, res.ONICell)
		yb.AddRefinement(site.Y.Lo, site.Y.Hi, res.ONICell)
	}
	// Tile boundaries as breakpoints so block power lands crisply.
	for _, t := range fp.Tiles {
		xb.AddBreakpoint(t.Bounds.X.Lo)
		xb.AddBreakpoint(t.Bounds.X.Hi)
		yb.AddBreakpoint(t.Bounds.Y.Lo)
		yb.AddBreakpoint(t.Bounds.Y.Hi)
	}

	zb := mesh.NewAxisBuilder(0, m.spec.Stack.TotalThickness(), res.MaxZCell)
	for _, sp := range m.spec.Stack.Spans() {
		zb.AddBreakpoint(sp.Z0)
		zb.AddBreakpoint(sp.Z1)
	}

	xs, err := xb.Build()
	if err != nil {
		return err
	}
	ys, err := yb.Build()
	if err != nil {
		return err
	}
	zs, err := zb.Build()
	if err != nil {
		return err
	}
	m.grid, err = mesh.NewGrid(xs, ys, zs)
	return err
}

func (m *Model) buildMaterials() error {
	g := m.grid
	n := g.NumCells()
	m.cond = make([]float64, n)
	m.heatCap = make([]float64, n)

	// Layer material per z slice.
	for k := 0; k < g.NZ(); k++ {
		zc := g.CellCenter(0, 0, k).Z
		sp, err := m.spec.Stack.LayerAt(zc)
		if err != nil {
			return err
		}
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				idx := g.Index(i, j, k)
				m.cond[idx] = sp.Mat.Conductivity
				m.heatCap[idx] = sp.Mat.VolumetricHeatCapacity()
			}
		}
	}

	// TSV-enhanced vertical path through the bonding layer under each
	// VCSEL (two ⌀5 µm copper TSVs feed every laser).
	bond, err := m.spec.Stack.Find(stack.LayerBonding)
	if err != nil {
		return err
	}
	tsvMat, err := materials.TSVEffective(materials.BondingLayer, oni.TSVDiameter, 10e-6)
	if err != nil {
		return err
	}
	// III-V island where each VCSEL sits in the optical layer.
	for _, layout := range m.onis {
		for _, v := range layout.VCSELs {
			m.overrideMaterial(v.Rect, bond.Z0, bond.Z1, tsvMat)
			m.overrideMaterial(v.Rect, m.opticalSpan.Z0, m.opticalSpan.Z1, materials.VCSELStack)
		}
		for _, r := range layout.MRs {
			m.overrideMaterial(r.Rect, m.opticalSpan.Z0, m.opticalSpan.Z1, materials.Silicon)
		}
	}
	return nil
}

// overrideMaterial replaces the material of every cell whose volume lies
// mostly inside rect × [z0, z1).
func (m *Model) overrideMaterial(rect geom.Rect, z0, z1 float64, mat materials.Material) {
	box := rect.Extrude(z0, z1)
	g := m.grid
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(box)
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				cell := g.CellBox(i, j, k)
				if cell.OverlapVolume(box) >= 0.5*cell.Volume() {
					idx := g.Index(i, j, k)
					m.cond[idx] = mat.Conductivity
					m.heatCap[idx] = mat.VolumetricHeatCapacity()
				}
			}
		}
	}
}

// depositBox spreads a unit power over the cells overlapping box,
// proportionally to overlap volume, and appends the weighted cells.
func (m *Model) depositBox(box geom.Box, scale float64, out *[]weightedCell) error {
	g := m.grid
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(box)
	total := 0.0
	type hit struct {
		idx int
		vol float64
	}
	var hits []hit
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				ov := g.CellBox(i, j, k).OverlapVolume(box)
				if ov > 0 {
					hits = append(hits, hit{g.Index(i, j, k), ov})
					total += ov
				}
			}
		}
	}
	if total == 0 {
		return fmt.Errorf("thermal: power box %v overlaps no cells", box)
	}
	for _, h := range hits {
		*out = append(*out, weightedCell{h.idx, scale * h.vol / total})
	}
	return nil
}

func (m *Model) buildStencils() error {
	nV := 0
	nH := 0
	for _, layout := range m.onis {
		nV += len(layout.VCSELs)
		nH += len(layout.Heaters)
	}
	m.vcselCount = nV
	m.heaterCount = nH
	for _, layout := range m.onis {
		for _, v := range layout.VCSELs {
			box := v.Rect.Extrude(m.opticalSpan.Z0, m.opticalSpan.Z1)
			if err := m.depositBox(box, 1/float64(nV), &m.vcselCells); err != nil {
				return err
			}
		}
		for _, d := range layout.Drivers {
			box := d.Rect.Extrude(m.beolSpan.Z0, m.beolSpan.Z1)
			if err := m.depositBox(box, 1/float64(nV), &m.driverCells); err != nil {
				return err
			}
		}
		scale := m.spec.HeaterFootprintScale
		if scale == 0 {
			scale = 2.5
		}
		for _, h := range layout.Heaters {
			cx, cy := h.Rect.Center()
			rect := geom.CenteredRect(cx, cy, h.Rect.X.Length()*scale, h.Rect.Y.Length()*scale)
			box := rect.Extrude(m.opticalSpan.Z0, m.opticalSpan.Z1)
			if err := m.depositBox(box, 1/float64(nH), &m.heaterCells); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *Model) buildProbes() {
	for _, layout := range m.onis {
		var probes []deviceProbe
		for _, v := range layout.VCSELs {
			probes = append(probes, m.newProbe(v.Name, v.Rect.Extrude(m.opticalSpan.Z0, m.opticalSpan.Z1), true))
		}
		for _, r := range layout.MRs {
			probes = append(probes, m.newProbe(r.Name, r.Rect.Extrude(m.opticalSpan.Z0, m.opticalSpan.Z1), false))
		}
		m.probes = append(m.probes, probes)
	}
}

// newProbe builds a device probe with its volume-weight stencil.
func (m *Model) newProbe(name string, box geom.Box, isVCSEL bool) deviceProbe {
	p := deviceProbe{name: name, box: box, isVCSEL: isVCSEL}
	g := m.grid
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(box)
	var total float64
	for k := k0; k < k1; k++ {
		for j := j0; j < j1; j++ {
			for i := i0; i < i1; i++ {
				ov := g.CellBox(i, j, k).OverlapVolume(box)
				if ov > 0 {
					p.cells = append(p.cells, int32(g.Index(i, j, k)))
					p.weights = append(p.weights, ov)
					total += ov
				}
			}
		}
	}
	for i := range p.weights {
		p.weights[i] /= total
	}
	return p
}

// chipStencil distributes 1 W of chip power into BEOL cells according to
// the activity scenario.
func (m *Model) chipStencil(act activity.Scenario) ([]weightedCell, error) {
	if act == nil {
		act = activity.Uniform{}
	}
	weights, err := act.Weights(scc.TileCols, scc.TileRows)
	if err != nil {
		return nil, err
	}
	blocks, err := m.spec.Floorplan.PowerMap(1.0, weights)
	if err != nil {
		return nil, err
	}
	var cells []weightedCell
	for _, b := range blocks {
		if b.Power == 0 {
			continue
		}
		box := b.Rect.Extrude(m.beolSpan.Z0, m.beolSpan.Z1)
		if err := m.depositBox(box, b.Power, &cells); err != nil {
			return nil, err
		}
	}
	return cells, nil
}

// NumCells exposes the mesh size (diagnostics).
func (m *Model) NumCells() int { return m.grid.NumCells() }

// Grid exposes the computational grid.
func (m *Model) Grid() *mesh.Grid { return m.grid }

// ONIs exposes the generated ONI layouts.
func (m *Model) ONIs() []*oni.Layout { return m.onis }

// powerVector builds the per-cell power (W) for the given powers.
func (m *Model) powerVector(p Powers) ([]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := m.grid.NumCells()
	power := make([]float64, n)
	chip, err := m.chipStencil(p.Activity)
	if err != nil {
		return nil, err
	}
	for _, wc := range chip {
		power[wc.idx] += p.Chip * wc.weight
	}
	for _, wc := range m.vcselCells {
		power[wc.idx] += p.VCSEL * float64(m.vcselCount) * wc.weight
	}
	for _, wc := range m.driverCells {
		power[wc.idx] += p.Driver * float64(m.vcselCount) * wc.weight
	}
	for _, wc := range m.heaterCells {
		power[wc.idx] += p.Heater * float64(m.heaterCount) * wc.weight
	}
	return power, nil
}

// solveOptions maps the spec's solver knobs onto fvm options.
func (m *Model) solveOptions() fvm.SolveOptions {
	return fvm.SolveOptions{
		Tolerance: m.spec.SolverTol,
		Solver:    m.spec.EffectiveSolver(),
		Workers:   m.spec.Workers,
	}
}

// System exposes the cached finite-volume operator (diagnostics and
// benchmarking).
func (m *Model) System() *fvm.System { return m.sys }

// PowerVector exposes the per-cell power deposition (W per cell) for the
// given powers — the RHS a steady solve of this model consumes.
func (m *Model) PowerVector(p Powers) ([]float64, error) { return m.powerVector(p) }

// Problem materialises a standalone fvm.Problem for the given powers.
// Solving it with fvm.SolveSteady re-assembles the operator every call —
// the uncached path the cached System replaces; it remains available for
// raw access and for benchmarking assembly cost.
func (m *Model) Problem(p Powers) (*fvm.Problem, error) {
	power, err := m.powerVector(p)
	if err != nil {
		return nil, err
	}
	return &fvm.Problem{
		Grid:         m.grid,
		Conductivity: m.cond,
		Power:        power,
		HeatCapacity: m.heatCap,
		ZMin:         fvm.Boundary{Type: fvm.Convection, H: m.spec.BoardH, Value: m.spec.Ambient},
		ZMax:         fvm.Boundary{Type: fvm.Convection, H: m.topH, Value: m.spec.Ambient},
	}, nil
}

// Solve runs a direct steady-state simulation at the given powers against
// the cached operator.
func (m *Model) Solve(p Powers) (*Result, error) {
	power, err := m.powerVector(p)
	if err != nil {
		return nil, err
	}
	sol, err := m.sys.SolveSteady(power, m.solveOptions())
	if err != nil {
		return nil, err
	}
	return m.report(sol.T, p)
}

// ONIReport summarises one ONI's thermal state.
type ONIReport struct {
	Index int
	Site  geom.Rect
	// AvgTemp is the mean temperature over the ONI footprint in the
	// optical layer (°C).
	AvgTemp float64
	// Gradient is max−min over the ONI's VCSEL and MR device temperatures
	// (°C): the quantity the paper requires to stay below 1 °C.
	Gradient float64
	// VCSELTemps and MRTemps are the per-device mean temperatures.
	VCSELTemps []float64
	MRTemps    []float64
	// HottestDevice and ColdestDevice name the extreme devices.
	HottestDevice, ColdestDevice string
}

// MeanVCSELTemp returns the average of the ONI's VCSEL temperatures.
func (r ONIReport) MeanVCSELTemp() float64 { return mean(r.VCSELTemps) }

// MeanMRTemp returns the average of the ONI's MR temperatures.
func (r ONIReport) MeanMRTemp() float64 { return mean(r.MRTemps) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Result is a solved operating point.
type Result struct {
	Powers Powers
	// T is the raw cell temperature field (°C).
	T []float64
	// ONIs holds one report per ONI, ordered as the floorplan's sites.
	ONIs []ONIReport
	// ChipMax and ChipAvg summarise the BEOL (junction) layer.
	ChipMax, ChipAvg float64

	model *Model
}

// report computes ONI statistics from a temperature field.
func (m *Model) report(t []float64, p Powers) (*Result, error) {
	res := &Result{Powers: p, T: t, model: m}
	sol := &fvm.Solution{Grid: m.grid, T: t}
	for i, layout := range m.onis {
		rep := ONIReport{Index: i, Site: layout.Site}
		box := layout.Site.Extrude(m.opticalSpan.Z0, m.opticalSpan.Z1)
		st, err := sol.StatsOver(box)
		if err != nil {
			return nil, fmt.Errorf("thermal: ONI %d stats: %w", i, err)
		}
		rep.AvgTemp = st.Mean

		minT, maxT := math.Inf(1), math.Inf(-1)
		for _, probe := range m.probes[i] {
			ds, err := sol.StatsOver(probe.box)
			if err != nil {
				return nil, fmt.Errorf("thermal: probe %s: %w", probe.name, err)
			}
			if probe.isVCSEL {
				rep.VCSELTemps = append(rep.VCSELTemps, ds.Mean)
			} else {
				rep.MRTemps = append(rep.MRTemps, ds.Mean)
			}
			if ds.Mean > maxT {
				maxT = ds.Mean
				rep.HottestDevice = probe.name
			}
			if ds.Mean < minT {
				minT = ds.Mean
				rep.ColdestDevice = probe.name
			}
		}
		rep.Gradient = maxT - minT
		res.ONIs = append(res.ONIs, rep)
	}
	// Chip layer stats.
	beolBox := m.spec.Floorplan.Die.Extrude(m.beolSpan.Z0, m.beolSpan.Z1)
	st, err := sol.StatsOver(beolBox)
	if err != nil {
		return nil, err
	}
	res.ChipMax = st.Max
	res.ChipAvg = st.Mean
	return res, nil
}

// MeanONITemp averages the per-ONI average temperatures.
func (r *Result) MeanONITemp() float64 {
	var s float64
	for _, o := range r.ONIs {
		s += o.AvgTemp
	}
	return s / float64(len(r.ONIs))
}

// MeanONIGradient averages the per-ONI gradient temperatures — the
// quantity the heater optimisation minimises and the serving layer
// reports.
func (r *Result) MeanONIGradient() float64 {
	var s float64
	for _, o := range r.ONIs {
		s += o.Gradient
	}
	return s / float64(len(r.ONIs))
}

// MaxONIGradient returns the worst intra-ONI gradient.
func (r *Result) MaxONIGradient() float64 {
	worst := 0.0
	for _, o := range r.ONIs {
		if o.Gradient > worst {
			worst = o.Gradient
		}
	}
	return worst
}

// ONITempRange returns the min and max per-ONI average temperature, the
// inter-ONI spread the SNR analysis depends on.
func (r *Result) ONITempRange() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, o := range r.ONIs {
		if o.AvgTemp < min {
			min = o.AvgTemp
		}
		if o.AvgTemp > max {
			max = o.AvgTemp
		}
	}
	return min, max
}

// Basis is a set of unit-power solutions enabling O(1) evaluation of any
// operating point with a fixed activity shape.
type Basis struct {
	model    *Model
	activity activity.Scenario
	// unit responses: temperature rise fields for 1 W in each group.
	chip, vcsel, driver, heater []float64
	stats                       BasisBuildStats
}

// BasisBuildStats describes what the four unit solves behind a basis
// cost, for attachment to request traces and structured logs.
type BasisBuildStats struct {
	// Iterations is the largest outer iteration count across the four
	// unit solves (under mg-cg's block solve they advance together, so
	// this is the shared count).
	Iterations int
	// Wall is the end-to-end build time including operator assembly.
	Wall time.Duration
	// Phases is the V-cycle phase time the build spent on this model's
	// hierarchy (zero for non-mg backends).
	Phases mg.PhaseStats
}

// BuildStats returns how much the basis cost to build.
func (b *Basis) BuildStats() BasisBuildStats { return b.stats }

// BuildBasis performs the four unit solves for the given activity shape.
// The solves share the model's cached operator. Under the mg-cg backend
// they run as one block-Krylov solve: all four right-hand sides advance
// through a shared block CG whose matrix passes feed every column and
// whose per-column multigrid V-cycles share one cached hierarchy; other
// backends fan the solves across the spec's worker pool.
func (m *Model) BuildBasis(act activity.Scenario) (*Basis, error) {
	if act == nil {
		act = activity.Uniform{}
	}
	b := &Basis{model: m, activity: act}
	groups := []struct {
		name   string
		powers Powers
		dst    *[]float64
	}{
		{"chip", Powers{Chip: 1, Activity: act}, &b.chip},
		{"vcsel", Powers{VCSEL: 1 / float64(m.vcselCount)}, &b.vcsel},
		{"driver", Powers{Driver: 1 / float64(m.vcselCount)}, &b.driver},
		{"heater", Powers{Heater: 1 / float64(m.heaterCount)}, &b.heater},
	}
	batch := make([][]float64, len(groups))
	for i, g := range groups {
		power, err := m.powerVector(g.powers)
		if err != nil {
			return nil, fmt.Errorf("thermal: %s basis: %w", g.name, err)
		}
		batch[i] = power
	}
	buildStart := time.Now()
	phasesBefore := m.sys.PhaseStats()
	sols, err := m.sys.SolveSteadyBlock(batch, m.solveOptions())
	if err != nil {
		return nil, fmt.Errorf("thermal: basis solves: %w", err)
	}
	b.stats.Wall = time.Since(buildStart)
	b.stats.Phases = m.sys.PhaseStats().Sub(phasesBefore)
	for _, sol := range sols {
		if sol.Stats.Iterations > b.stats.Iterations {
			b.stats.Iterations = sol.Stats.Iterations
		}
	}
	for i, g := range groups {
		// Store the rise relative to ambient.
		rise := make([]float64, len(sols[i].T))
		for j, t := range sols[i].T {
			rise[j] = t - m.spec.Ambient
		}
		*g.dst = rise
	}
	return b, nil
}

// Evaluate combines the basis fields for the given powers. The activity
// shape must match the one the basis was built with; Evaluate enforces the
// Chip/VCSEL/Driver/Heater scaling only. Evaluate only reads the basis and
// model, so it is safe to call concurrently from many goroutines — the
// property the parallel design-space sweeps rely on.
func (b *Basis) Evaluate(p Powers) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := b.model
	n := len(b.chip)
	t := make([]float64, n)
	vTot := p.VCSEL * float64(m.vcselCount)
	dTot := p.Driver * float64(m.vcselCount)
	hTot := p.Heater * float64(m.heaterCount)
	for i := 0; i < n; i++ {
		t[i] = m.spec.Ambient +
			p.Chip*b.chip[i] +
			vTot*b.vcsel[i] +
			dTot*b.driver[i] +
			hTot*b.heater[i]
	}
	pp := p
	pp.Activity = b.activity
	return m.report(t, pp)
}
