package thermal

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vcselnoc/internal/stack"
)

// LayerMap is a lateral temperature slice through one stack layer,
// averaged over the layer's z-extent per (i, j) column.
type LayerMap struct {
	Layer string
	// X and Y are the cell-centre coordinates (m).
	X, Y []float64
	// T[j][i] is the temperature (°C) at (X[i], Y[j]).
	T [][]float64
	// Min and Max bound the slice.
	Min, Max float64
}

// LayerSlice extracts the lateral temperature map of the named stack
// layer from a solved result.
func (r *Result) LayerSlice(layerName string) (*LayerMap, error) {
	if r.model == nil {
		return nil, fmt.Errorf("thermal: result has no model attached")
	}
	sp, err := r.model.spec.Stack.Find(layerName)
	if err != nil {
		return nil, err
	}
	g := r.model.grid
	var ks []int
	for k := 0; k < g.NZ(); k++ {
		zc := g.CellCenter(0, 0, k).Z
		if zc >= sp.Z0 && zc < sp.Z1 {
			ks = append(ks, k)
		}
	}
	if len(ks) == 0 {
		return nil, fmt.Errorf("thermal: no z-slice centred in layer %q", layerName)
	}
	m := &LayerMap{
		Layer: layerName,
		X:     make([]float64, g.NX()),
		Y:     make([]float64, g.NY()),
		Min:   math.Inf(1),
		Max:   math.Inf(-1),
	}
	for i := 0; i < g.NX(); i++ {
		m.X[i] = g.CellCenter(i, 0, 0).X
	}
	for j := 0; j < g.NY(); j++ {
		m.Y[j] = g.CellCenter(0, j, 0).Y
	}
	m.T = make([][]float64, g.NY())
	for j := 0; j < g.NY(); j++ {
		m.T[j] = make([]float64, g.NX())
		for i := 0; i < g.NX(); i++ {
			var sum float64
			for _, k := range ks {
				sum += r.T[g.Index(i, j, k)]
			}
			t := sum / float64(len(ks))
			m.T[j][i] = t
			if t < m.Min {
				m.Min = t
			}
			if t > m.Max {
				m.Max = t
			}
		}
	}
	return m, nil
}

// OpticalLayerSlice is a shorthand for the ONoC layer.
func (r *Result) OpticalLayerSlice() (*LayerMap, error) {
	return r.LayerSlice(stack.LayerOptical)
}

// WriteCSV emits the map as x,y,temperature rows with a header.
func (m *LayerMap) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "x_m,y_m,temp_c\n"); err != nil {
		return err
	}
	for j, y := range m.Y {
		for i, x := range m.X {
			if _, err := fmt.Fprintf(w, "%.6e,%.6e,%.4f\n", x, y, m.T[j][i]); err != nil {
				return err
			}
		}
	}
	return nil
}

// asciiRamp maps normalised temperature to glyphs, cold → hot.
const asciiRamp = " .:-=+*#%@"

// RenderASCII draws a downsampled character map (roughly cols wide) with a
// temperature legend — a quick visual check of the thermal field.
func (m *LayerMap) RenderASCII(cols int) string {
	if cols < 8 {
		cols = 8
	}
	nx := len(m.X)
	ny := len(m.Y)
	stepX := (nx + cols - 1) / cols
	if stepX < 1 {
		stepX = 1
	}
	// Terminal cells are ~2:1 tall, so sample y twice as coarsely.
	stepY := stepX * 2
	span := m.Max - m.Min
	var b strings.Builder
	fmt.Fprintf(&b, "%s layer: %.2f °C (dark) … %.2f °C (bright)\n", m.Layer, m.Min, m.Max)
	for j := ny - 1; j >= 0; j -= stepY {
		for i := 0; i < nx; i += stepX {
			idx := 0
			if span > 0 {
				idx = int((m.T[j][i] - m.Min) / span * float64(len(asciiRamp)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
