package ornoc

import (
	"math"
	"testing"
	"testing/quick"

	"vcselnoc/internal/scc"
)

func square(t *testing.T) *Ring {
	t.Helper()
	r, err := NewRing([]Node{
		{SiteIndex: 0, X: 0, Y: 0},
		{SiteIndex: 1, X: 1e-3, Y: 0},
		{SiteIndex: 2, X: 1e-3, Y: 1e-3},
		{SiteIndex: 3, X: 0, Y: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingBasics(t *testing.T) {
	r := square(t)
	if r.N() != 4 {
		t.Fatalf("N = %d", r.N())
	}
	if math.Abs(r.Length()-4e-3) > 1e-12 {
		t.Errorf("length = %g, want 4 mm", r.Length())
	}
	seg, err := r.SegmentLength(0)
	if err != nil || math.Abs(seg-1e-3) > 1e-15 {
		t.Errorf("segment 0 = %g, %v", seg, err)
	}
	if _, err := r.SegmentLength(4); err == nil {
		t.Error("segment out of range should error")
	}
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(nil); err == nil {
		t.Error("empty ring should error")
	}
	if _, err := NewRing([]Node{{SiteIndex: 0}}); err == nil {
		t.Error("single node should error")
	}
	if _, err := NewRing([]Node{{SiteIndex: 0}, {SiteIndex: 0, X: 1}}); err == nil {
		t.Error("duplicate site index should error")
	}
}

func TestPathLength(t *testing.T) {
	r := square(t)
	cases := []struct {
		src, dst int
		want     float64
	}{
		{0, 1, 1e-3},
		{0, 2, 2e-3},
		{0, 3, 3e-3},
		{3, 0, 1e-3}, // wraps
		{2, 1, 3e-3}, // wraps: 2->3->0->1
	}
	for _, c := range cases {
		got, err := r.PathLength(c.src, c.dst)
		if err != nil {
			t.Fatalf("PathLength(%d,%d): %v", c.src, c.dst, err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PathLength(%d,%d) = %g, want %g", c.src, c.dst, got, c.want)
		}
	}
	if _, err := r.PathLength(0, 0); err == nil {
		t.Error("self path should error")
	}
	if _, err := r.PathLength(0, 9); err == nil {
		t.Error("out of range dst should error")
	}
}

func TestHopsAndIntermediates(t *testing.T) {
	r := square(t)
	h, err := r.Hops(1, 3)
	if err != nil || h != 2 {
		t.Errorf("Hops(1,3) = %d, %v", h, err)
	}
	h, err = r.Hops(3, 1)
	if err != nil || h != 2 {
		t.Errorf("Hops(3,1) = %d (wrap), %v", h, err)
	}
	ints, err := r.Intermediates(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 2 || ints[0] != 1 || ints[1] != 2 {
		t.Errorf("Intermediates(0,3) = %v", ints)
	}
	ints, err = r.Intermediates(0, 1)
	if err != nil || len(ints) != 0 {
		t.Errorf("adjacent intermediates = %v, %v", ints, err)
	}
	ints, err = r.Intermediates(2, 0)
	if err != nil || len(ints) != 1 || ints[0] != 3 {
		t.Errorf("wrapping intermediates = %v, %v", ints, err)
	}
}

func TestNeighbourPattern(t *testing.T) {
	comms := NeighbourPattern(4)
	if len(comms) != 4 {
		t.Fatalf("%d comms", len(comms))
	}
	for i, c := range comms {
		if c.Src != i || c.Dst != (i+1)%4 {
			t.Errorf("comm %d = %+v", i, c)
		}
		if c.Channel != -1 {
			t.Errorf("comm %d pre-assigned", i)
		}
	}
}

func TestPairedPattern(t *testing.T) {
	comms := PairedPattern(8)
	for i, c := range comms {
		if c.Dst != (i+4)%8 {
			t.Errorf("comm %d dst = %d", i, c.Dst)
		}
	}
}

func TestAssignChannelsNeighbour(t *testing.T) {
	r := square(t)
	comms := NeighbourPattern(4)
	n, err := r.AssignChannels(comms)
	if err != nil {
		t.Fatal(err)
	}
	// Neighbour pattern has disjoint segments: one channel suffices.
	if n != 1 {
		t.Errorf("channels = %d, want 1 (full reuse)", n)
	}
	if err := r.ValidateAssignment(comms); err != nil {
		t.Error(err)
	}
}

func TestAssignChannelsOverlapping(t *testing.T) {
	r := square(t)
	comms := []Communication{
		{Src: 0, Dst: 2, Channel: -1},
		{Src: 1, Dst: 3, Channel: -1}, // overlaps segment 1-2
		{Src: 2, Dst: 0, Channel: -1},
		{Src: 3, Dst: 1, Channel: -1}, // overlaps 3-0
	}
	n, err := r.AssignChannels(comms)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Errorf("channels = %d, want >= 2 for overlapping arcs", n)
	}
	if err := r.ValidateAssignment(comms); err != nil {
		t.Error(err)
	}
}

func TestAssignChannelsErrors(t *testing.T) {
	r := square(t)
	if _, err := r.AssignChannels([]Communication{{Src: 0, Dst: 0}}); err == nil {
		t.Error("self-loop should error")
	}
	if _, err := r.AssignChannels([]Communication{{Src: 0, Dst: 7}}); err == nil {
		t.Error("bad node should error")
	}
}

func TestValidateAssignmentCatchesConflicts(t *testing.T) {
	r := square(t)
	comms := []Communication{
		{Src: 0, Dst: 2, Channel: 0},
		{Src: 1, Dst: 3, Channel: 0}, // conflict on segment 1-2
	}
	if err := r.ValidateAssignment(comms); err == nil {
		t.Error("conflicting assignment should fail validation")
	}
	comms[1].Channel = -1
	if err := r.ValidateAssignment(comms); err == nil {
		t.Error("unassigned channel should fail validation")
	}
}

func TestBuildCases(t *testing.T) {
	fp, err := scc.New()
	if err != nil {
		t.Fatal(err)
	}
	wantNodes := map[CaseStudy]int{Case18mm: 4, Case32mm: 8, Case47mm: 16}
	// Case 1 and 2 land near the paper's 18 and 32.4 mm; case 3's closed
	// loop is necessarily longer than the paper's open-serpentine 46.8 mm
	// (see package doc), so its band is centred on the geometric value.
	wantLen := map[CaseStudy]float64{Case18mm: 18e-3, Case32mm: 32.4e-3, Case47mm: 70e-3}
	var prev float64
	for _, cs := range []CaseStudy{Case18mm, Case32mm, Case47mm} {
		r, err := BuildCase(fp, cs)
		if err != nil {
			t.Fatalf("%v: %v", cs, err)
		}
		if r.N() != wantNodes[cs] {
			t.Errorf("%v: %d nodes, want %d", cs, r.N(), wantNodes[cs])
		}
		l := r.Length()
		if l < 0.75*wantLen[cs] || l > 1.25*wantLen[cs] {
			t.Errorf("%v: length %.1f mm, want ~%.1f mm", cs, l*1e3, wantLen[cs]*1e3)
		}
		if l <= prev {
			t.Errorf("%v: length %.1f mm not increasing", cs, l*1e3)
		}
		prev = l
		// Site indices must be valid 4×4 grid positions.
		for _, n := range r.Nodes {
			if n.SiteIndex < 0 || n.SiteIndex >= 16 {
				t.Errorf("%v: site index %d out of range", cs, n.SiteIndex)
			}
		}
	}
	if _, err := BuildCase(nil, Case18mm); err == nil {
		t.Error("nil floorplan should error")
	}
	if _, err := BuildCase(fp, CaseStudy(9)); err == nil {
		t.Error("unknown case should error")
	}
}

func TestCaseStudyString(t *testing.T) {
	if Case18mm.String() == "" || Case32mm.String() == "" || Case47mm.String() == "" {
		t.Error("case strings empty")
	}
	if CaseStudy(9).String() == "" {
		t.Error("unknown case should stringify")
	}
}

// Property: channel assignment is always conflict-free for random
// communication sets.
func TestQuickAssignmentValid(t *testing.T) {
	fp, err := scc.New()
	if err != nil {
		t.Fatal(err)
	}
	ring, err := BuildCase(fp, Case47mm)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		n := ring.N()
		// Derive a deterministic pseudo-random comm set from the seed.
		s := uint64(seed)
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int((s >> 33) % uint64(mod))
		}
		var comms []Communication
		for i := 0; i < 12; i++ {
			src := next(n)
			dst := next(n)
			if src == dst {
				dst = (dst + 1) % n
			}
			comms = append(comms, Communication{Src: src, Dst: dst, Channel: -1})
		}
		if _, err := ring.AssignChannels(comms); err != nil {
			return false
		}
		return ring.ValidateAssignment(comms) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: path lengths around the full ring sum to the loop length.
func TestQuickPathComplement(t *testing.T) {
	r := square(t)
	f := func(a, b uint8) bool {
		src := int(a) % 4
		dst := int(b) % 4
		if src == dst {
			return true
		}
		fwd, err1 := r.PathLength(src, dst)
		back, err2 := r.PathLength(dst, src)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(fwd+back-r.Length()) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
