// Package ornoc models the Optical Ring Network-on-Chip (Le Beux et al.)
// used by the paper: ONIs placed along a closed waveguide ring,
// point-to-point communications between them, and the wavelength-channel
// assignment that lets non-overlapping ring segments reuse wavelengths
// without arbitration.
//
// The package also builds the paper's three case-study rings (Fig. 11):
// the inner 2×2 ONIs (≈17 mm loop), the middle 4×2 ONIs (≈32 mm) and the
// full 4×4 serpentine (≈73 mm closed loop) of the SCC floorplan. The paper
// quotes 46.8 mm for the third case; that figure matches an *open*
// serpentine, whereas a closed Hamiltonian loop over 16 ONIs at the SCC
// tile pitch cannot be shorter than ~65 mm, so the honest geometric length
// is used here (see EXPERIMENTS.md).
package ornoc

import (
	"fmt"
	"math"

	"vcselnoc/internal/scc"
)

// Node is one ONI attached to the ring.
type Node struct {
	// SiteIndex is the index into the floorplan's ONI site list (and into
	// thermal per-ONI reports).
	SiteIndex int
	// X, Y is the ONI centre on the die (m).
	X, Y float64
}

// Ring is a closed waveguide visiting nodes in order. Signals travel in
// one direction (increasing node order, wrapping around).
type Ring struct {
	Nodes []Node
	// segment[i] is the waveguide length from node i to node i+1 (mod N).
	segment []float64
}

// NewRing builds a ring from nodes in visiting order. Segment lengths are
// Manhattan distances (on-chip waveguides are routed rectilinearly); the
// loop closes from the last node back to the first.
func NewRing(nodes []Node) (*Ring, error) {
	if len(nodes) < 2 {
		return nil, fmt.Errorf("ornoc: ring needs at least 2 nodes, got %d", len(nodes))
	}
	seen := make(map[int]bool)
	for _, n := range nodes {
		if seen[n.SiteIndex] {
			return nil, fmt.Errorf("ornoc: duplicate site index %d", n.SiteIndex)
		}
		seen[n.SiteIndex] = true
	}
	r := &Ring{Nodes: nodes, segment: make([]float64, len(nodes))}
	for i := range nodes {
		next := nodes[(i+1)%len(nodes)]
		r.segment[i] = math.Abs(next.X-nodes[i].X) + math.Abs(next.Y-nodes[i].Y)
	}
	return r, nil
}

// N returns the node count.
func (r *Ring) N() int { return len(r.Nodes) }

// Length returns the total loop length (m).
func (r *Ring) Length() float64 {
	var s float64
	for _, l := range r.segment {
		s += l
	}
	return s
}

// SegmentLength returns the length from node i to node i+1 (mod N).
func (r *Ring) SegmentLength(i int) (float64, error) {
	if i < 0 || i >= len(r.segment) {
		return 0, fmt.Errorf("ornoc: segment %d out of range", i)
	}
	return r.segment[i], nil
}

// PathLength returns the waveguide length from src to dst travelling in
// ring direction.
func (r *Ring) PathLength(src, dst int) (float64, error) {
	if err := r.checkNode(src); err != nil {
		return 0, err
	}
	if err := r.checkNode(dst); err != nil {
		return 0, err
	}
	if src == dst {
		return 0, fmt.Errorf("ornoc: src == dst (%d)", src)
	}
	var sum float64
	for i := src; i != dst; i = (i + 1) % r.N() {
		sum += r.segment[i]
	}
	return sum, nil
}

// Hops returns the number of segments from src to dst in ring direction.
func (r *Ring) Hops(src, dst int) (int, error) {
	if err := r.checkNode(src); err != nil {
		return 0, err
	}
	if err := r.checkNode(dst); err != nil {
		return 0, err
	}
	if src == dst {
		return 0, fmt.Errorf("ornoc: src == dst (%d)", src)
	}
	h := dst - src
	if h < 0 {
		h += r.N()
	}
	return h, nil
}

// Intermediates lists the nodes strictly between src and dst in ring
// direction.
func (r *Ring) Intermediates(src, dst int) ([]int, error) {
	h, err := r.Hops(src, dst)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, h-1)
	for i := (src + 1) % r.N(); i != dst; i = (i + 1) % r.N() {
		out = append(out, i)
	}
	return out, nil
}

func (r *Ring) checkNode(i int) error {
	if i < 0 || i >= r.N() {
		return fmt.Errorf("ornoc: node %d out of range [0, %d)", i, r.N())
	}
	return nil
}

// Communication is a point-to-point channel between ring nodes. Channel is
// the wavelength index assigned by AssignChannels (-1 before assignment).
type Communication struct {
	Src, Dst int
	Channel  int
}

// NeighbourPattern returns the all-to-next communication set: node i sends
// to node i+1 (mod N). This is the densest pattern that still allows full
// wavelength reuse on a ring.
func NeighbourPattern(n int) []Communication {
	comms := make([]Communication, n)
	for i := 0; i < n; i++ {
		comms[i] = Communication{Src: i, Dst: (i + 1) % n, Channel: -1}
	}
	return comms
}

// PairedPattern returns a half-ring pattern: node i sends to node
// (i + n/2) mod n, exercising long paths with intermediate nodes.
func PairedPattern(n int) []Communication {
	comms := make([]Communication, n)
	for i := 0; i < n; i++ {
		comms[i] = Communication{Src: i, Dst: (i + n/2) % n, Channel: -1}
	}
	return comms
}

// AssignChannels colours the communications so that any two whose ring
// segments overlap get different channels (ORNoC's design-time wavelength
// allocation). It returns the channel count. The input slice is modified
// in place.
func (r *Ring) AssignChannels(comms []Communication) (int, error) {
	type arc struct {
		idx  int
		segs []bool
	}
	arcs := make([]arc, len(comms))
	for i, c := range comms {
		if err := r.checkNode(c.Src); err != nil {
			return 0, err
		}
		if err := r.checkNode(c.Dst); err != nil {
			return 0, err
		}
		if c.Src == c.Dst {
			return 0, fmt.Errorf("ornoc: communication %d is a self-loop", i)
		}
		segs := make([]bool, r.N())
		for s := c.Src; s != c.Dst; s = (s + 1) % r.N() {
			segs[s] = true
		}
		arcs[i] = arc{idx: i, segs: segs}
	}
	// Greedy colouring in input order: first channel not used by an
	// overlapping arc.
	channels := 0
	for i := range arcs {
		used := make(map[int]bool)
		for j := 0; j < i; j++ {
			if overlaps(arcs[i].segs, arcs[j].segs) {
				used[comms[arcs[j].idx].Channel] = true
			}
		}
		ch := 0
		for used[ch] {
			ch++
		}
		comms[arcs[i].idx].Channel = ch
		if ch+1 > channels {
			channels = ch + 1
		}
	}
	return channels, nil
}

func overlaps(a, b []bool) bool {
	for i := range a {
		if a[i] && b[i] {
			return true
		}
	}
	return false
}

// ValidateAssignment checks that no two overlapping communications share a
// channel and that every communication has a channel.
func (r *Ring) ValidateAssignment(comms []Communication) error {
	segsOf := func(c Communication) []bool {
		segs := make([]bool, r.N())
		for s := c.Src; s != c.Dst; s = (s + 1) % r.N() {
			segs[s] = true
		}
		return segs
	}
	for i, c := range comms {
		if c.Channel < 0 {
			return fmt.Errorf("ornoc: communication %d unassigned", i)
		}
	}
	for i := range comms {
		for j := i + 1; j < len(comms); j++ {
			if comms[i].Channel != comms[j].Channel {
				continue
			}
			if overlaps(segsOf(comms[i]), segsOf(comms[j])) {
				return fmt.Errorf("ornoc: communications %d and %d share channel %d on overlapping segments",
					i, j, comms[i].Channel)
			}
		}
	}
	return nil
}

// CaseStudy identifies the paper's three ONI placements (Fig. 11).
type CaseStudy int

const (
	// Case18mm is the inner 2×2 ONI ring (paper: 18 mm).
	Case18mm CaseStudy = iota
	// Case32mm is the middle 4×2 ONI ring (paper: 32.4 mm).
	Case32mm
	// Case47mm is the full 4×4 serpentine (the paper quotes 46.8 mm for
	// the open path; the closed loop at SCC tile pitch is ~73 mm).
	Case47mm
)

func (c CaseStudy) String() string {
	switch c {
	case Case18mm:
		return "case1-18mm"
	case Case32mm:
		return "case2-32mm"
	case Case47mm:
		return "case3-47mm"
	default:
		return fmt.Sprintf("CaseStudy(%d)", int(c))
	}
}

// BuildCase constructs the ring for one of the paper's placements from the
// SCC floorplan's 4×4 ONI site grid (site index = row*4 + col).
func BuildCase(fp *scc.Floorplan, c CaseStudy) (*Ring, error) {
	if fp == nil {
		return nil, fmt.Errorf("ornoc: nil floorplan")
	}
	if len(fp.ONISites) != scc.ONICols*scc.ONIRows {
		return nil, fmt.Errorf("ornoc: floorplan has %d ONI sites, want %d",
			len(fp.ONISites), scc.ONICols*scc.ONIRows)
	}
	var order []int
	switch c {
	case Case18mm:
		// Inner 2×2: sites (col 1..2, row 1..2), visited clockwise.
		order = []int{idx(1, 1), idx(2, 1), idx(2, 2), idx(1, 2)}
	case Case32mm:
		// Middle two rows, all four columns, loop around.
		order = []int{
			idx(0, 1), idx(1, 1), idx(2, 1), idx(3, 1),
			idx(3, 2), idx(2, 2), idx(1, 2), idx(0, 2),
		}
	case Case47mm:
		// Full 4×4 serpentine: right along row 0, up, left along row 1,
		// up, right along row 2, up, left along row 3, close.
		for row := 0; row < 4; row++ {
			if row%2 == 0 {
				for col := 0; col < 4; col++ {
					order = append(order, idx(col, row))
				}
			} else {
				for col := 3; col >= 0; col-- {
					order = append(order, idx(col, row))
				}
			}
		}
	default:
		return nil, fmt.Errorf("ornoc: unknown case %v", c)
	}
	nodes := make([]Node, len(order))
	for i, siteIdx := range order {
		cx, cy := fp.ONISites[siteIdx].Center()
		nodes[i] = Node{SiteIndex: siteIdx, X: cx, Y: cy}
	}
	return NewRing(nodes)
}

func idx(col, row int) int { return row*scc.ONICols + col }
