// Package units provides the unit conventions and conversion helpers used
// throughout the library.
//
// Unless a name says otherwise, quantities are stored in the following
// engineering units, chosen to match the scales that appear in on-chip
// photonics and package-level thermal analysis:
//
//   - lengths: metres (fields named in µm/mm are converted at the boundary)
//   - power: watts
//   - temperature: degrees Celsius for reporting, kelvin-compatible deltas
//   - wavelength: nanometres
//   - optical power ratios: linear (fractions), with dB helpers here
//
// The package is dependency-free and side-effect free.
package units

import "math"

// Physical constants (SI).
const (
	// PlanckConstant is h in J·s.
	PlanckConstant = 6.62607015e-34
	// SpeedOfLight is c in m/s.
	SpeedOfLight = 2.99792458e8
	// ElementaryCharge is q in coulombs.
	ElementaryCharge = 1.602176634e-19
	// BoltzmannConstant is k_B in J/K.
	BoltzmannConstant = 1.380649e-23
)

// Length conversion factors to metres.
const (
	Micrometre = 1e-6
	Millimetre = 1e-3
	Centimetre = 1e-2
	Nanometre  = 1e-9
)

// Power conversion factors to watts.
const (
	Milliwatt = 1e-3
	Microwatt = 1e-6
)

// ZeroCelsiusInKelvin is the offset between the Celsius and Kelvin scales.
const ZeroCelsiusInKelvin = 273.15

// CToK converts degrees Celsius to kelvin.
func CToK(c float64) float64 { return c + ZeroCelsiusInKelvin }

// KToC converts kelvin to degrees Celsius.
func KToC(k float64) float64 { return k - ZeroCelsiusInKelvin }

// DB converts a linear power ratio to decibels. Ratios <= 0 map to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// DBm converts a power in watts to dBm. Non-positive powers map to -Inf.
func DBm(watts float64) float64 {
	if watts <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(watts/Milliwatt)
}

// FromDBm converts dBm to watts.
func FromDBm(dbm float64) float64 { return Milliwatt * math.Pow(10, dbm/10) }

// WavelengthToFrequency converts a wavelength in nanometres to a frequency
// in hertz.
func WavelengthToFrequency(lambdaNM float64) float64 {
	return SpeedOfLight / (lambdaNM * Nanometre)
}

// PhotonEnergy returns the energy in joules of a photon with the given
// wavelength in nanometres.
func PhotonEnergy(lambdaNM float64) float64 {
	return PlanckConstant * WavelengthToFrequency(lambdaNM)
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// ApproxEqual reports whether a and b agree within the given absolute and
// relative tolerances: |a-b| <= abs + rel*max(|a|,|b|).
func ApproxEqual(a, b, abs, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= abs+rel*scale
}
