package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBRoundTrip(t *testing.T) {
	for _, ratio := range []float64{1e-6, 0.01, 0.5, 1, 2, 1000} {
		db := DB(ratio)
		back := FromDB(db)
		if !ApproxEqual(back, ratio, 0, 1e-12) {
			t.Errorf("FromDB(DB(%g)) = %g", ratio, back)
		}
	}
}

func TestDBKnownValues(t *testing.T) {
	cases := []struct{ ratio, db float64 }{
		{1, 0},
		{10, 10},
		{100, 20},
		{0.5, -3.0102999566},
		{0.1, -10},
	}
	for _, c := range cases {
		if got := DB(c.ratio); !ApproxEqual(got, c.db, 1e-9, 0) {
			t.Errorf("DB(%g) = %g, want %g", c.ratio, got, c.db)
		}
	}
}

func TestDBNonPositive(t *testing.T) {
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(-1) should be -Inf")
	}
	if !math.IsInf(DBm(0), -1) {
		t.Error("DBm(0) should be -Inf")
	}
}

func TestDBmKnownValues(t *testing.T) {
	// 1 mW = 0 dBm, 0.01 mW = -20 dBm (photodetector sensitivity in the paper).
	if got := DBm(1e-3); !ApproxEqual(got, 0, 1e-12, 0) {
		t.Errorf("DBm(1mW) = %g, want 0", got)
	}
	if got := DBm(0.01e-3); !ApproxEqual(got, -20, 1e-9, 0) {
		t.Errorf("DBm(0.01mW) = %g, want -20", got)
	}
	if got := FromDBm(-20); !ApproxEqual(got, 1e-5, 0, 1e-12) {
		t.Errorf("FromDBm(-20) = %g, want 1e-5 W", got)
	}
}

func TestTemperatureConversion(t *testing.T) {
	if got := CToK(0); got != 273.15 {
		t.Errorf("CToK(0) = %g", got)
	}
	if got := KToC(373.15); !ApproxEqual(got, 100, 1e-9, 0) {
		t.Errorf("KToC(373.15) = %g", got)
	}
}

func TestWavelengthToFrequency(t *testing.T) {
	// 1550 nm is about 193.4 THz.
	f := WavelengthToFrequency(1550)
	if !ApproxEqual(f, 193.414e12, 0, 1e-3) {
		t.Errorf("f(1550nm) = %g, want ~193.4 THz", f)
	}
}

func TestPhotonEnergy(t *testing.T) {
	// 1550 nm photon is about 0.8 eV.
	ev := PhotonEnergy(1550) / ElementaryCharge
	if !ApproxEqual(ev, 0.8, 0.01, 0) {
		t.Errorf("photon energy at 1550nm = %g eV, want ~0.8", ev)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 0, 10, 5},
		{-1, 0, 10, 0},
		{11, 0, 10, 10},
		{0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestLerp(t *testing.T) {
	if got := Lerp(0, 10, 0.5); got != 5 {
		t.Errorf("Lerp(0,10,0.5) = %g", got)
	}
	if got := Lerp(2, 2, 0.9); got != 2 {
		t.Errorf("Lerp(2,2,0.9) = %g", got)
	}
}

// Property: DB and FromDB are inverse bijections on positive ratios.
func TestQuickDBInverse(t *testing.T) {
	f := func(x float64) bool {
		r := math.Abs(x)
		if r == 0 || math.IsInf(r, 0) || math.IsNaN(r) || r > 1e100 || r < 1e-100 {
			return true
		}
		return ApproxEqual(FromDB(DB(r)), r, 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Clamp result is always within bounds and idempotent.
func TestQuickClamp(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi && Clamp(c, lo, hi) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: temperature conversions are inverse.
func TestQuickTemperatureInverse(t *testing.T) {
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		return ApproxEqual(KToC(CToK(c)), c, 1e-9, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
