package mg

// Tests for the perf tier of the V-cycle: red-black line colouring,
// concurrent sweeps, mixed precision and the direct coarse solve.

import (
	"math"
	"sync"
	"testing"

	"vcselnoc/internal/sparse"
)

// gradedLines builds a strongly graded axis: runs of fine cells separated
// by a coarse gap, the floorplan-style grading that stalls semicoarsening.
func gradedLines(fine int, fineW, gapW float64) []float64 {
	lines := []float64{0}
	at := 0.0
	for i := 0; i < fine; i++ {
		at += fineW
		lines = append(lines, at)
	}
	at += gapW
	lines = append(lines, at)
	for i := 0; i < fine; i++ {
		at += fineW
		lines = append(lines, at)
	}
	return lines
}

func testHierarchy(t testing.TB) (*Hierarchy, *sparse.CSR, sparse.GridHint) {
	t.Helper()
	xl := gradedLines(8, 1, 9)
	yl := uniformLines(12, 20)
	zl := uniformLines(9, 3)
	a, hint := buildHeatSystem(t, xl, yl, zl)
	h, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h, a, hint
}

// TestLineColoringValid checks, on every level, the defining property of
// the colour classes — no two same-colour lines share a matrix coupling —
// directly against the assembled operator, and that the finest level's
// 5-point lateral stencil gets the classic two colours.
func TestLineColoringValid(t *testing.T) {
	h, _, _ := testHierarchy(t)
	for li, lv := range h.levels {
		ls := lv.ls
		colorOf := make([]int, ls.stride)
		total := 0
		for c, lines := range ls.colors {
			for _, l := range lines {
				colorOf[l] = c
				total++
			}
		}
		if total != ls.stride {
			t.Fatalf("level %d: colour classes cover %d of %d lines", li, total, ls.stride)
		}
		n := lv.n()
		for idx := 0; idx < n; idx++ {
			line := idx % ls.stride
			cols, _ := lv.a.Row(idx)
			for _, c := range cols {
				other := int(c) % ls.stride
				if other != line && colorOf[other] == colorOf[line] {
					t.Fatalf("level %d: coupled lines %d and %d share colour %d", li, line, other, colorOf[line])
				}
			}
		}
		if li == 0 && len(ls.colors) != 2 {
			t.Errorf("finest level got %d colours, want 2 for the 5-point lateral stencil", len(ls.colors))
		}
		t.Logf("level %d: %d lines in %d colours", li, ls.stride, len(ls.colors))
	}
}

// TestColoredSweepMatchesSerial hammers the shared smoother with many
// concurrent multi-worker sweeps (the -race target) and requires every
// result to be bit-identical to the single-worker sweep: same-colour
// lines share no coupling and each line writes only its own cells, so
// parallel relaxation must be deterministic, not merely close.
func TestColoredSweepMatchesSerial(t *testing.T) {
	h, a, _ := testHierarchy(t)
	ls := h.levels[0].ls
	n := a.N()
	b := randRHS(n, 7)

	sweep := func(x []float64, bufs [][]float64, workers int) {
		ls.sweepColored(x, b, bufs, workers, false)
		ls.sweepColored(x, b, bufs, workers, true)
		ls.sweepColored(x, b, bufs, workers, false)
	}
	ref := make([]float64, n)
	sweep(ref, [][]float64{make([]float64, ls.nz)}, 1)

	const hammers = 8
	var wg sync.WaitGroup
	errs := make([]int, hammers)
	for g := 0; g < hammers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			const workers = 4
			bufs := make([][]float64, workers)
			for w := range bufs {
				bufs[w] = make([]float64, ls.nz)
			}
			x := make([]float64, n)
			sweep(x, bufs, workers)
			for i := range x {
				if x[i] != ref[i] {
					errs[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e > 0 {
			t.Fatalf("hammer %d: %d cells differ from the serial sweep", g, e)
		}
	}
}

// applyPrecond builds a fresh mg-cg preconditioner and applies it.
func applyPrecond(t *testing.T, a *sparse.CSR, hint sparse.GridHint, opts Options, r []float64) []float64 {
	t.Helper()
	s := New(opts)
	s.SetGridHint(hint)
	precond, err := s.Preconditioner(a)
	if err != nil {
		t.Fatal(err)
	}
	z := make([]float64, len(r))
	precond(z, r)
	return z
}

// TestPreconditionerSPD checks the property the outer CG depends on: the
// V-cycle application is a symmetric operator, ⟨M⁻¹r₁, r₂⟩ = ⟨r₁, M⁻¹r₂⟩,
// for the red-black float64 cycle (exactly, up to roundoff) and for the
// float32 cycle (up to single-precision rounding).
func TestPreconditionerSPD(t *testing.T) {
	_, a, hint := testHierarchy(t)
	n := a.N()
	r1, r2 := randRHS(n, 11), randRHS(n, 13)
	for _, tc := range []struct {
		name string
		prec string
		tol  float64
	}{
		{"float64", PrecisionFloat64, 1e-12},
		{"float32", PrecisionFloat32, 1e-5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{Ordering: OrderingRedBlack, Precision: tc.prec, Workers: 4}
			z1 := applyPrecond(t, a, hint, opts, r1)
			z2 := applyPrecond(t, a, hint, opts, r2)
			d1 := sparse.Dot(z1, r2)
			d2 := sparse.Dot(r1, z2)
			denom := math.Max(math.Abs(d1), math.Abs(d2))
			if asym := math.Abs(d1-d2) / denom; asym > tc.tol {
				t.Fatalf("asymmetry ⟨M⁻¹r₁,r₂⟩ vs ⟨r₁,M⁻¹r₂⟩ = %g, want ≤ %g", asym, tc.tol)
			}
			if sparse.Dot(z1, r1) <= 0 {
				t.Fatal("⟨M⁻¹r, r⟩ ≤ 0: preconditioner not positive definite")
			}
		})
	}
}

// solveWith runs one mg-cg solve from a zero start and returns the result.
func solveWith(t *testing.T, a *sparse.CSR, hint sparse.GridHint, opts Options, b []float64) (sparse.Result, []float64) {
	t.Helper()
	s := New(opts)
	s.SetGridHint(hint)
	x := make([]float64, a.N())
	res, err := s.Solve(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("solve did not converge: %+v", res)
	}
	return res, x
}

// TestOrderingIterationPin pins the outer CG iteration counts of the
// red-black ordering to the lexicographic reference within ±1: the
// colour order changes the smoother slightly but must not degrade the
// preconditioner.
func TestOrderingIterationPin(t *testing.T) {
	_, a, hint := testHierarchy(t)
	b := randRHS(a.N(), 17)
	lex, xl := solveWith(t, a, hint, Options{Ordering: OrderingLex, Precision: PrecisionFloat64, Tolerance: 1e-10}, b)
	rb, xr := solveWith(t, a, hint, Options{Ordering: OrderingRedBlack, Precision: PrecisionFloat64, Tolerance: 1e-10, Workers: 4}, b)
	if d := rb.Iterations - lex.Iterations; d < -1 || d > 1 {
		t.Fatalf("red-black iterations %d vs lex %d: outside ±1", rb.Iterations, lex.Iterations)
	}
	if rd := relDiff(xr, xl); rd > 1e-8 {
		t.Fatalf("solutions diverge between orderings: rel diff %g", rd)
	}
}

// TestPrecisionIterationPin pins the float32 V-cycle's outer iteration
// count within +1 of the float64 baseline on the synthetic heat system —
// the guard the ISSUE requires for mixed precision (the thermal-model pin
// at preview/bench resolution lives in the root package's tests).
func TestPrecisionIterationPin(t *testing.T) {
	_, a, hint := testHierarchy(t)
	b := randRHS(a.N(), 19)
	f64, x64 := solveWith(t, a, hint, Options{Precision: PrecisionFloat64, Tolerance: 1e-8, Workers: 2}, b)
	f32, x32 := solveWith(t, a, hint, Options{Precision: PrecisionFloat32, Tolerance: 1e-8, Workers: 2}, b)
	if f32.Iterations > f64.Iterations+1 {
		t.Fatalf("float32 iterations %d vs float64 %d: more than +1", f32.Iterations, f64.Iterations)
	}
	if rd := relDiff(x32, x64); rd > 1e-6 {
		t.Fatalf("solutions diverge between precisions: rel diff %g", rd)
	}
}

// TestPrecisionAuto pins the auto-selection rule: loose outer tolerances
// on small-to-mid systems run the float32 cycle; tight tolerances, huge
// systems, and the SSOR smoother (which has no float32 path) stay float64.
func TestPrecisionAuto(t *testing.T) {
	const small = 1 << 10
	for _, tc := range []struct {
		opts Options
		n    int
		want string
	}{
		{Options{}, small, PrecisionFloat32},                            // default tol 1e-9
		{Options{Tolerance: 1e-8}, small, PrecisionFloat32},             // practical tol
		{Options{Tolerance: 1e-11}, small, PrecisionFloat64},            // near roundoff
		{Options{Precision: PrecisionFloat64}, small, PrecisionFloat64}, // explicit wins
		{Options{Tolerance: 1e-11, Precision: PrecisionFloat32}, small, PrecisionFloat32},
		{Options{Smoother: SmootherSSOR}, small, PrecisionFloat64},
		{Options{Tolerance: 1e-8}, autoFloat32MaxCells, PrecisionFloat32},     // at the cap
		{Options{Tolerance: 1e-8}, autoFloat32MaxCells + 1, PrecisionFloat64}, // past the cap
		{Options{Tolerance: 1e-8, Precision: PrecisionFloat32}, autoFloat32MaxCells + 1, PrecisionFloat32},
	} {
		if got := tc.opts.effectivePrecision(tc.n); got != tc.want {
			t.Errorf("effectivePrecision(%+v, n=%d) = %s, want %s", tc.opts, tc.n, got, tc.want)
		}
	}
}

// TestCoarseWorkersPlumbed pins the fix for newWorkspace hard-coding the
// coarse-level SSOR-CG solver to a single worker: Options.Workers must
// reach it.
func TestCoarseWorkersPlumbed(t *testing.T) {
	h, _, _ := testHierarchy(t)
	ws := newWorkspace(h, Options{Workers: 3}.withDefaults())
	if ws.coarse.Workers != 3 {
		t.Fatalf("coarse solver Workers = %d, want 3", ws.coarse.Workers)
	}
	if ws.workers != 3 {
		t.Fatalf("workspace workers = %d, want 3", ws.workers)
	}
	if len(ws.lineBuf) != 3 {
		t.Fatalf("lineBuf has %d worker buffers, want 3", len(ws.lineBuf))
	}
}

// TestCoarseCholeskyMatchesIterative checks the direct coarse solve
// against the iterative fallback on the coarsest-level operator.
func TestCoarseCholeskyMatchesIterative(t *testing.T) {
	h, _, _ := testHierarchy(t)
	lv := h.levels[len(h.levels)-1]
	chol := h.coarseDirect(Options{}.withDefaults())
	if chol == nil {
		t.Fatalf("coarsest level (n=%d) unexpectedly over the factorisation budget", lv.n())
	}
	b := randRHS(lv.n(), 23)
	x := append([]float64(nil), b...)
	chol.SolveInPlace(x)
	ref := make([]float64, lv.n())
	ssor := &sparse.SSORCG{Tolerance: 1e-13, MaxIterations: 100 * lv.n()}
	if _, err := ssor.Solve(lv.a, b, ref); err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(x, ref); rd > 1e-8 {
		t.Fatalf("direct and iterative coarse solutions differ: rel diff %g", rd)
	}
}
