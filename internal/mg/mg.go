// Package mg implements a geometric-multigrid preconditioned conjugate
// gradient backend ("mg-cg") for the structured-grid SPD systems the FVM
// thermal solver assembles. One V-cycle over a semicoarsened mesh
// hierarchy per CG iteration makes the iteration count roughly independent
// of mesh resolution, turning paper-resolution steady solves from
// O(n·√κ) into near-O(n).
//
// The hierarchy semicoarsens the lateral axes only — x and y grid lines
// are thinned 2:1 while the thin, strongly non-uniform z stack (BCB,
// copper, heater layers) is kept at full resolution, which preserves the
// vertical material structure the paper's package model lives on. Coarse
// operators are Galerkin (RAP) products of the assembled fine matrix, so
// material discontinuities are carried down the hierarchy without any
// re-discretisation; transfer operators are tensor-product linear
// interpolation between cell centres (prolongation) and its transpose
// (full-weighting restriction). Levels are smoothed with symmetric z-line
// relaxation by default — exact tridiagonal (Thomas) solves along each
// vertical cell column, the robust partner of lateral semicoarsening on
// stacks whose µm-thin layers couple far more strongly in z than in the
// plane — with the ssor-cg backend's point-SSOR sweep available as an
// alternative. The coarsest level is solved nearly exactly with SSOR-CG
// so the V-cycle stays a fixed SPD operator, as the outer CG requires.
//
// The backend registers itself with the sparse solver registry under
// sparse.BackendMGCG; it needs the mesh geometry behind the matrix, which
// callers supply through sparse.GridSolver.SetGridHint (fvm.System does
// this automatically and additionally shares one cached Hierarchy across
// batched and blocked solves).
package mg

import (
	"fmt"
	"sort"

	"vcselnoc/internal/sparse"
)

func init() {
	sparse.RegisterBackend(sparse.BackendMGCG, func(c sparse.Config) (sparse.Solver, error) {
		return New(Options{
			Tolerance:     c.Tolerance,
			MaxIterations: c.MaxIterations,
			Workers:       c.Workers,
			Omega:         c.Omega,
			Levels:        c.MGLevels,
			Smooth:        c.MGSmooth,
			CoarseTol:     c.MGCoarseTol,
		}), nil
	})
}

// Options parameterises the mg-cg backend. The zero value is a good
// default for FVM conduction systems.
type Options struct {
	// Tolerance is the outer CG relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds the outer CG iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps the goroutines used by matrix-vector products; 0 means
	// GOMAXPROCS. Smoother sweeps are inherently serial.
	Workers int
	// Levels caps the hierarchy depth including the finest level; 0
	// coarsens until the lateral grid is a few cells wide. Levels = 1
	// degenerates into a (costly) near-exact solve of the fine system per
	// V-cycle — useful for debugging only.
	Levels int
	// Smooth is the number of pre- and post-smoothing sweeps per V-cycle
	// side; 0 means 1.
	Smooth int
	// Smoother selects the relaxation scheme: SmootherZLine (default)
	// solves each vertical cell column exactly per sweep — the robust
	// partner of lateral semicoarsening on strongly z-coupled stacks —
	// while SmootherSSOR is the point sweep the ssor-cg backend uses.
	Smoother string
	// Omega is the SSOR smoother relaxation factor in (0, 2); 0 means 1.0
	// (symmetric Gauss–Seidel), the robust choice for smoothing. Ignored
	// by the z-line smoother.
	Omega float64
	// CoarseTol is the relative tolerance of the coarsest-level SSOR-CG
	// solve; 0 means 1e-12, effectively exact.
	CoarseTol float64
	// Cycle is the cycle index γ: 1 is a V-cycle (default), 2 a W-cycle —
	// each level visits the next coarser one twice, which stops
	// convergence from degrading with hierarchy depth at modest extra
	// cost (semicoarsening shrinks levels 4×, so γ=2 still geometrically
	// decreases work per level).
	Cycle int
}

// Smoother names accepted by Options.Smoother.
const (
	SmootherZLine = "zline"
	SmootherSSOR  = "ssor"
)

func (o Options) withDefaults() Options {
	if o.Smooth <= 0 {
		o.Smooth = 1
	}
	if o.Smoother == "" {
		o.Smoother = SmootherZLine
	}
	if o.Cycle <= 0 {
		o.Cycle = 1
	}
	if o.Omega == 0 {
		o.Omega = 1.0
	}
	if o.CoarseTol <= 0 {
		o.CoarseTol = 1e-12
	}
	if o.Levels <= 0 {
		o.Levels = 64 // effectively unlimited; coarsening stops geometrically
	}
	return o
}

// minCoarsenCells is the per-axis cell count below which an axis is no
// longer coarsened, and lateralTargetCells stops the hierarchy once the
// x-y plane is small enough that the near-exact coarse solve (lateral ×
// the fixed z stack) is cheap.
const (
	minCoarsenCells    = 4
	lateralTargetCells = 20
)

// axisInterp is the 1D cell-centred transfer operator of one axis: fine
// cell i interpolates linearly between the two coarse cells whose centres
// bracket it. It doubles as its own adjoint via the rev lists
// (full-weighting restriction).
type axisInterp struct {
	nc int
	// lo/hi are the coarse source cells of each fine cell; hi == lo with
	// whi == 0 where a single source suffices (domain ends, identity).
	lo, hi   []int32
	wlo, whi []float64
	// rev lists the fine contributors of each coarse cell (the transpose
	// structure, used by restriction and the Galerkin product).
	rev  [][]int32
	revW [][]float64
}

// centersOf returns the cell-centre coordinates of a line set.
func centersOf(lines []float64) []float64 {
	c := make([]float64, len(lines)-1)
	for i := range c {
		c[i] = (lines[i] + lines[i+1]) / 2
	}
	return c
}

// coarsenLines merges adjacent cells pairwise, keeping coarse lines a
// subset of fine ones. The merge is size-adaptive: a pair only fuses while
// both cells are within pairRatioCap of the axis' current finest cell, so
// on the strongly graded floorplan meshes this code exists for (runs of
// ~10 µm device cells separated by ~900 µm gap cells) the fine runs halve
// level by level while the already-coarse gap cells stay untouched until
// the fine cells have grown comparable. Merging the gap cells early was
// measured to destroy convergence on the thermal model (5 → ~120 CG
// iterations): their fused centres drift further from the device regions
// whose error the coarse grid must represent, and plain every-other-line
// coarsening fails the same way for the same reason. On a uniform axis
// the rule degenerates to the classic 2:1 coarsening.
func coarsenLines(lines []float64) []float64 {
	n := len(lines) - 1
	out := make([]float64, 0, n/2+2)
	out = append(out, lines[0])
	minW := lines[1] - lines[0]
	for i := 1; i < n; i++ {
		if w := lines[i+1] - lines[i]; w < minW {
			minW = w
		}
	}
	for i := 0; i < n; {
		if i+1 < n {
			w0 := lines[i+1] - lines[i]
			w1 := lines[i+2] - lines[i+1]
			hi := w0
			if w1 > hi {
				hi = w1
			}
			if hi <= pairRatioCap*minW {
				out = append(out, lines[i+2])
				i += 2
				continue
			}
		}
		out = append(out, lines[i+1])
		i++
	}
	return out
}

// pairRatioCap is the largest multiple of the axis' finest cell a cell may
// reach and still merge. 4 tolerates the 2:1 remainders greedy pairing
// leaves (an odd-length fine run keeps one half-width cell) and smoothly
// graded meshes, while deferring the merge of hard size jumps until the
// levels below have evened them out.
const pairRatioCap = 4.0

// newAxisInterp builds the linear interpolation from coarse cell centres
// to fine cell centres. Passing identical line sets yields the identity.
func newAxisInterp(fineLines, coarseLines []float64) *axisInterp {
	cf := centersOf(fineLines)
	cc := centersOf(coarseLines)
	nf, nc := len(cf), len(cc)
	a := &axisInterp{
		nc:   nc,
		lo:   make([]int32, nf),
		hi:   make([]int32, nf),
		wlo:  make([]float64, nf),
		whi:  make([]float64, nf),
		rev:  make([][]int32, nc),
		revW: make([][]float64, nc),
	}
	for i, x := range cf {
		j := sort.SearchFloat64s(cc, x) // first coarse centre ≥ x
		var lo, hi int
		var wlo, whi float64
		switch {
		case j == 0:
			lo, hi, wlo, whi = 0, 0, 1, 0
		case j == nc:
			lo, hi, wlo, whi = nc-1, nc-1, 1, 0
		default:
			lo, hi = j-1, j
			w := (x - cc[lo]) / (cc[hi] - cc[lo])
			wlo, whi = 1-w, w
			// Collapse (near-)degenerate weights so identity axes and
			// coincident centres store a single clean entry.
			if whi == 0 {
				hi = lo
			} else if wlo == 0 {
				lo, wlo, whi = hi, whi, 0
				hi = lo
			}
		}
		a.lo[i], a.hi[i] = int32(lo), int32(hi)
		a.wlo[i], a.whi[i] = wlo, whi
		a.rev[lo] = append(a.rev[lo], int32(i))
		a.revW[lo] = append(a.revW[lo], wlo)
		if whi != 0 {
			a.rev[hi] = append(a.rev[hi], int32(i))
			a.revW[hi] = append(a.revW[hi], whi)
		}
	}
	return a
}

// level is one rung of the hierarchy: its operator plus the transfer maps
// to the next coarser rung (nil on the coarsest).
type level struct {
	a          *sparse.CSR
	diag       []float64
	nx, ny, nz int
	ix, iy, iz *axisInterp
	ls         *lineSmoother
}

// lineSmoother holds the precomputed Thomas factorisation of every
// vertical cell column of one level. Because z is never coarsened and the
// operator's z-coupling is confined to the same lateral position, the
// entries at column offsets ±stride form an exact tridiagonal system per
// (i, j) line on every Galerkin level; solving it exactly per sweep
// removes the strongly-coupled vertical error components a point smoother
// crawls through. The struct is immutable after construction and shared
// (read-only) by all solvers of a hierarchy.
type lineSmoother struct {
	stride, nz int
	// sub[idx] is the coupling to idx−stride (zero on the bottom layer);
	// cp[idx] and inv[idx] are the precomputed forward-elimination
	// coefficients c′_k and 1/(d_k − sub_k·c′_{k−1}) of the Thomas solve.
	sub, cp, inv []float64
}

// newLineSmoother factorises the vertical tridiagonal of every lateral
// line. A non-positive pivot means the operator is not SPD.
func newLineSmoother(a *sparse.CSR, nx, ny, nz int) (*lineSmoother, error) {
	stride := nx * ny
	n := a.N()
	ls := &lineSmoother{
		stride: stride, nz: nz,
		sub: make([]float64, n), cp: make([]float64, n), inv: make([]float64, n),
	}
	for l := 0; l < stride; l++ {
		prevCp := 0.0
		for k := 0; k < nz; k++ {
			idx := k*stride + l
			var sub, diag, sup float64
			cols, vals := a.Row(idx)
			for p, c := range cols {
				switch int(c) {
				case idx - stride:
					sub = vals[p]
				case idx:
					diag = vals[p]
				case idx + stride:
					sup = vals[p]
				}
			}
			if k == 0 {
				sub = 0
			}
			denom := diag - sub*prevCp
			if denom <= 0 {
				return nil, fmt.Errorf("mg: z-line pivot %g at cell %d (matrix not SPD?)", denom, idx)
			}
			ls.sub[idx] = sub
			ls.inv[idx] = 1 / denom
			prevCp = sup / denom
			ls.cp[idx] = prevCp
		}
	}
	return ls, nil
}

// lineSweep runs one block Gauss–Seidel pass over the lateral lines
// (ascending or descending order), updating x in place towards A·x = b:
// each line's vertical tridiagonal is solved exactly against the current
// values of every other line. d is caller scratch of length nz. A forward
// followed by a backward pass is symmetric block Gauss–Seidel, keeping the
// V-cycle an SPD preconditioner.
func (lv *level) lineSweep(x, b, d []float64, reverse bool) {
	ls := lv.ls
	stride, nz := ls.stride, ls.nz
	for li := 0; li < stride; li++ {
		l := li
		if reverse {
			l = stride - 1 - li
		}
		// Forward elimination, building the line RHS on the fly: every
		// off-line entry (different lateral position) is moved to the
		// right-hand side at its current value.
		prev := 0.0
		for k := 0; k < nz; k++ {
			idx := k*stride + l
			s := b[idx]
			cols, vals := lv.a.Row(idx)
			for p, c := range cols {
				ci := int(c)
				if ci != idx && ci != idx-stride && ci != idx+stride {
					s -= vals[p] * x[ci]
				}
			}
			prev = (s - ls.sub[idx]*prev) * ls.inv[idx]
			d[k] = prev
		}
		// Back substitution straight into x.
		x[(nz-1)*stride+l] = d[nz-1]
		for k := nz - 2; k >= 0; k-- {
			idx := k*stride + l
			x[idx] = d[k] - ls.cp[idx]*x[idx+stride]
		}
	}
}

func (lv *level) n() int { return lv.nx * lv.ny * lv.nz }

// coarseN returns the cell count of the next coarser level.
func (lv *level) coarseN() int { return lv.ix.nc * lv.iy.nc * lv.iz.nc }

// Hierarchy is an immutable semicoarsened multigrid hierarchy for one
// matrix. Building one costs a few matrix passes (Galerkin products); it
// is safe for concurrent use by many Solvers, so batched multi-RHS solves
// share a single instance.
type Hierarchy struct {
	levels []*level
}

// Fine returns the matrix the hierarchy was built for.
func (h *Hierarchy) Fine() *sparse.CSR { return h.levels[0].a }

// Depth returns the number of levels including the finest.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// LevelSize returns the unknown count of level l (0 = finest).
func (h *Hierarchy) LevelSize(l int) int { return h.levels[l].n() }

// BuildHierarchy semicoarsens the grid behind a and assembles the Galerkin
// coarse operators. The hint must describe the structured grid a was
// assembled on (cell counts multiplying to a.N()).
func BuildHierarchy(a *sparse.CSR, hint sparse.GridHint, opts Options) (*Hierarchy, error) {
	opts = opts.withDefaults()
	if hint.Empty() {
		return nil, fmt.Errorf("mg: no grid geometry — pass the mesh behind the matrix with SetGridHint (fvm.System does this automatically)")
	}
	nx, ny, nz := hint.NX(), hint.NY(), hint.NZ()
	if nx < 1 || ny < 1 || nz < 1 || nx*ny*nz != a.N() {
		return nil, fmt.Errorf("mg: grid hint %d×%d×%d does not match matrix size %d", nx, ny, nz, a.N())
	}
	h := &Hierarchy{}
	xl, yl, zl := hint.X, hint.Y, hint.Z
	cur := a
	for {
		lv := &level{a: cur, diag: cur.Diag(), nx: len(xl) - 1, ny: len(yl) - 1, nz: len(zl) - 1}
		for i, d := range lv.diag {
			if d <= 0 {
				return nil, fmt.Errorf("mg: non-positive diagonal %g at row %d of level %d (matrix not SPD?)", d, i, len(h.levels))
			}
		}
		// The z-line factorisation is cheap (one matrix pass) and always
		// built, so solvers sharing this hierarchy may pick either smoother.
		ls, err := newLineSmoother(cur, lv.nx, lv.ny, lv.nz)
		if err != nil {
			return nil, fmt.Errorf("mg: level %d: %w", len(h.levels), err)
		}
		lv.ls = ls
		h.levels = append(h.levels, lv)
		if len(h.levels) >= opts.Levels || lv.nx*lv.ny <= lateralTargetCells {
			break
		}
		coarsenX := lv.nx >= minCoarsenCells
		coarsenY := lv.ny >= minCoarsenCells
		if !coarsenX && !coarsenY {
			break
		}
		cxl, cyl := xl, yl
		if coarsenX {
			cxl = coarsenLines(xl)
		}
		if coarsenY {
			cyl = coarsenLines(yl)
		}
		if len(cxl) == len(xl) && len(cyl) == len(yl) {
			// The size-adaptive merge found no fusible pair on either
			// axis (pathologically graded mesh): the hierarchy cannot
			// deepen, so the current level becomes the coarsest.
			break
		}
		lv.ix = newAxisInterp(xl, cxl)
		lv.iy = newAxisInterp(yl, cyl)
		lv.iz = newAxisInterp(zl, zl) // z stack kept at full resolution
		coarse, err := galerkin(lv)
		if err != nil {
			return nil, fmt.Errorf("mg: level %d Galerkin product: %w", len(h.levels), err)
		}
		cur = coarse
		xl, yl = cxl, cyl
	}
	return h, nil
}

// Shifted derives the hierarchy for the diagonally shifted operator
// A + diag(shift) — the implicit-Euler transient matrix A + diag(C/dt) —
// from this (steady) hierarchy without redoing any Galerkin triple
// product. The transfer operators, level geometry and off-diagonal
// Galerkin stencils are shared as-is; only the diagonals change: the
// shift vector is carried down the hierarchy by full-weighting
// restriction (mass lumping of Pᵀ·diag(shift)·P, exact on constants
// because interpolation weights sum to one), each level's operator
// becomes its steady Galerkin operator plus its lumped shift, and the
// per-level diagonal caches and z-line Thomas factorisations are
// recomputed — one cheap matrix pass per level instead of the RAP
// products that dominate BuildHierarchy. A positive shift only adds
// diagonal dominance, so the resulting V-cycle stays an SPD
// preconditioner and typically converges at least as fast as the steady
// one.
//
// fine, when non-nil, becomes the new hierarchy's finest operator and
// must equal Fine() plus diag(shift) (callers that already hold the
// shifted matrix pass it so Hierarchy.Fine() pointer-matches the matrix
// they solve); nil builds it internally.
func (h *Hierarchy) Shifted(fine *sparse.CSR, shift []float64) (*Hierarchy, error) {
	n := h.levels[0].n()
	if len(shift) != n {
		return nil, fmt.Errorf("mg: shift has %d entries, want %d", len(shift), n)
	}
	for i, v := range shift {
		if v < 0 || v != v {
			return nil, fmt.Errorf("mg: invalid shift %g at cell %d (want ≥ 0)", v, i)
		}
	}
	if fine != nil && fine.N() != n {
		return nil, fmt.Errorf("mg: shifted fine matrix size %d does not match hierarchy size %d", fine.N(), n)
	}
	out := &Hierarchy{levels: make([]*level, len(h.levels))}
	cur := shift
	for l, lv := range h.levels {
		a := fine
		if l > 0 || a == nil {
			a = sparse.AddDiagonal(lv.a, cur)
		}
		nlv := &level{
			a: a, diag: a.Diag(),
			nx: lv.nx, ny: lv.ny, nz: lv.nz,
			ix: lv.ix, iy: lv.iy, iz: lv.iz,
		}
		ls, err := newLineSmoother(a, nlv.nx, nlv.ny, nlv.nz)
		if err != nil {
			return nil, fmt.Errorf("mg: shifted level %d: %w", l, err)
		}
		nlv.ls = ls
		out.levels[l] = nlv
		if l < len(h.levels)-1 {
			next := make([]float64, lv.coarseN())
			lv.restrict(next, cur)
			cur = next
		}
	}
	return out, nil
}

// galerkin assembles the coarse operator A_c = Pᵀ·A·P of one level, where
// P is the tensor-product interpolation lv.ix ⊗ lv.iy ⊗ lv.iz. Rows are
// built coarse-row-major with a dense scatter buffer (Gustavson's
// algorithm), so the cost is proportional to the number of triple-product
// terms, not to any matrix dimension squared.
func galerkin(lv *level) (*sparse.CSR, error) {
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxf, nyf := lv.nx, lv.ny
	nxc, nyc, nzc := ix.nc, iy.nc, iz.nc
	nc := nxc * nyc * nzc

	scratch := make([]float64, nc)
	marked := make([]bool, nc)
	var touched []int32

	rowPtr := make([]int, 1, nc+1)
	var cols []int32
	var vals []float64

	// scatter adds w·a into the coarse column derived from fine column c.
	scatter := func(c int, w float64) {
		fi := c % nxf
		rem := c / nxf
		fj := rem % nyf
		fk := rem / nyf
		xw := [2]float64{ix.wlo[fi], ix.whi[fi]}
		xj := [2]int32{ix.lo[fi], ix.hi[fi]}
		yw := [2]float64{iy.wlo[fj], iy.whi[fj]}
		yj := [2]int32{iy.lo[fj], iy.hi[fj]}
		zw := [2]float64{iz.wlo[fk], iz.whi[fk]}
		zj := [2]int32{iz.lo[fk], iz.hi[fk]}
		for zi := 0; zi < 2; zi++ {
			if zw[zi] == 0 {
				continue
			}
			for yi := 0; yi < 2; yi++ {
				if yw[yi] == 0 {
					continue
				}
				for xi := 0; xi < 2; xi++ {
					if xw[xi] == 0 {
						continue
					}
					J := (int(zj[zi])*nyc+int(yj[yi]))*nxc + int(xj[xi])
					if !marked[J] {
						marked[J] = true
						touched = append(touched, int32(J))
					}
					scratch[J] += w * zw[zi] * yw[yi] * xw[xi]
				}
			}
		}
	}

	for ck := 0; ck < nzc; ck++ {
		for cj := 0; cj < nyc; cj++ {
			for ci := 0; ci < nxc; ci++ {
				touched = touched[:0]
				// Fine rows contributing to this coarse row: the adjoint
				// stencils of the three axes.
				for zi, fk := range iz.rev[ck] {
					wz := iz.revW[ck][zi]
					for yi, fj := range iy.rev[cj] {
						wy := iy.revW[cj][yi] * wz
						for xi, fi := range ix.rev[ci] {
							rw := ix.revW[ci][xi] * wy
							r := (int(fk)*nyf+int(fj))*nxf + int(fi)
							rc, rv := lv.a.Row(r)
							for p := range rc {
								scatter(int(rc[p]), rw*rv[p])
							}
						}
					}
				}
				// Gather the scattered row in sorted column order.
				sortInt32(touched)
				for _, J := range touched {
					cols = append(cols, J)
					vals = append(vals, scratch[J])
					scratch[J] = 0
					marked[J] = false
				}
				rowPtr = append(rowPtr, len(vals))
			}
		}
	}
	return sparse.NewCSRFromParts(nc, rowPtr, cols, vals)
}

// sortInt32 insertion-sorts a short slice (coarse stencils are ≤ a few
// dozen entries, below the crossover where library sorts pay off).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// restrict computes bc = Pᵀ·r (full weighting).
func (lv *level) restrict(bc, r []float64) {
	for i := range bc {
		bc[i] = 0
	}
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo[fk], iz.whi[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo[fj], iy.whi[fj]
			for fi := 0; fi < lv.nx; fi++ {
				v := r[idx]
				idx++
				if v == 0 {
					continue
				}
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo[fi], ix.whi[fi]
				accumulate(bc, nxc, nyc, v,
					zl, zh, zwl, zwh, yl, yh, ywl, ywh, xl, xh, xwl, xwh)
			}
		}
	}
}

func accumulate(dst []float64, nxc, nyc int, v float64,
	zl, zh int, zwl, zwh float64, yl, yh int, ywl, ywh float64, xl, xh int, xwl, xwh float64) {
	add := func(zk int, wz float64) {
		base := zk * nyc
		addY := func(yj int, wy float64) {
			row := (base + yj) * nxc
			dst[row+xl] += v * wz * wy * xwl
			if xwh != 0 {
				dst[row+xh] += v * wz * wy * xwh
			}
		}
		addY(yl, ywl)
		if ywh != 0 {
			addY(yh, ywh)
		}
	}
	add(zl, zwl)
	if zwh != 0 {
		add(zh, zwh)
	}
}

// prolongAdd computes x += P·xc (linear interpolation of the coarse
// correction).
func (lv *level) prolongAdd(x, xc []float64) {
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo[fk], iz.whi[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo[fj], iy.whi[fj]
			rowLL := (zl*nyc + yl) * nxc
			for fi := 0; fi < lv.nx; fi++ {
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo[fi], ix.whi[fi]
				sum := zwl * ywl * lerp(xc[rowLL+xl], xc[rowLL+xh], xwl, xwh)
				if ywh != 0 {
					row := (zl*nyc + yh) * nxc
					sum += zwl * ywh * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
				}
				if zwh != 0 {
					row := (zh*nyc + yl) * nxc
					sum += zwh * ywl * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
					if ywh != 0 {
						row = (zh*nyc + yh) * nxc
						sum += zwh * ywh * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
					}
				}
				x[idx] += sum
				idx++
			}
		}
	}
}

func lerp(vlo, vhi, wlo, whi float64) float64 {
	if whi == 0 {
		return vlo * wlo
	}
	return vlo*wlo + vhi*whi
}

// workspace holds the per-level scratch of one Solver. Not shared.
type workspace struct {
	forHier *Hierarchy
	r, z    [][]float64 // per level
	xc, bc  [][]float64 // correction problem per coarser level
	line    [][]float64 // Thomas scratch per level (length nz)
	coarse  *sparse.SSORCG
}

func newWorkspace(h *Hierarchy, opts Options) *workspace {
	ws := &workspace{forHier: h}
	for l, lv := range h.levels {
		ws.r = append(ws.r, make([]float64, lv.n()))
		ws.z = append(ws.z, make([]float64, lv.n()))
		ws.line = append(ws.line, make([]float64, lv.nz))
		if l < len(h.levels)-1 {
			ws.xc = append(ws.xc, make([]float64, lv.coarseN()))
			ws.bc = append(ws.bc, make([]float64, lv.coarseN()))
		}
	}
	coarseN := h.levels[len(h.levels)-1].n()
	ws.coarse = &sparse.SSORCG{
		Tolerance:     opts.CoarseTol,
		MaxIterations: 20 * coarseN,
		Workers:       1,
	}
	return ws
}

// Solver is the mg-cg backend: CG preconditioned by one multigrid V-cycle.
// Like every Solver it owns reusable scratch and is NOT safe for
// concurrent use; hierarchies, in contrast, are immutable and may be
// shared across instances with SetHierarchy.
type Solver struct {
	opts  Options
	hint  sparse.GridHint
	hier  *Hierarchy
	ws    *workspace
	outer *sparse.Workspace
}

// New builds an mg-cg solver. Geometry arrives later via SetGridHint or
// SetHierarchy.
func New(opts Options) *Solver { return &Solver{opts: opts} }

// Name implements sparse.Solver.
func (s *Solver) Name() string { return sparse.BackendMGCG }

// SetGridHint implements sparse.GridSolver: it supplies the structured
// grid behind upcoming matrices. The hierarchy is (re)built lazily on the
// next Solve of a new matrix.
func (s *Solver) SetGridHint(h sparse.GridHint) { s.hint = h }

// SetHierarchy injects a prebuilt hierarchy, sharing its (immutable)
// coarse operators with other solver instances. Solves of matrices other
// than h.Fine() fall back to building from the grid hint.
func (s *Solver) SetHierarchy(h *Hierarchy) {
	if h != nil {
		s.hier = h
	}
}

// ensureHierarchy returns a hierarchy for a, building and caching one when
// the current hierarchy belongs to a different matrix.
func (s *Solver) ensureHierarchy(a *sparse.CSR) (*Hierarchy, error) {
	if s.hier != nil && s.hier.Fine() == a {
		return s.hier, nil
	}
	h, err := BuildHierarchy(a, s.hint, s.opts)
	if err != nil {
		return nil, err
	}
	s.hier = h
	return h, nil
}

// Preconditioner implements sparse.Preconditioned: it prepares the V-cycle
// for a and returns its application z = M⁻¹·r. Block solves share it
// across right-hand sides.
func (s *Solver) Preconditioner(a *sparse.CSR) (func(z, r []float64), error) {
	h, err := s.ensureHierarchy(a)
	if err != nil {
		return nil, err
	}
	if s.ws == nil || s.ws.forHier != h {
		s.ws = newWorkspace(h, s.opts.withDefaults())
	}
	ws := s.ws
	opts := s.opts.withDefaults()
	return func(z, r []float64) {
		for i := range z {
			z[i] = 0
		}
		h.vcycle(ws, opts, 0, z, r)
	}, nil
}

// Solve implements sparse.Solver: conjugate gradient with one V-cycle per
// iteration as the preconditioner.
func (s *Solver) Solve(a *sparse.CSR, b, x []float64) (sparse.Result, error) {
	precond, err := s.Preconditioner(a)
	if err != nil {
		return sparse.Result{}, err
	}
	if s.outer == nil {
		s.outer = sparse.NewWorkspace(a.N())
	}
	return sparse.PCG(a, b, x, s.outer, precond, s.opts.Tolerance, s.opts.MaxIterations, s.opts.Workers)
}

// vcycle runs one V-cycle on level l, improving x (which must arrive
// zeroed at preconditioner entry) towards A·x = b.
func (h *Hierarchy) vcycle(ws *workspace, opts Options, l int, x, b []float64) {
	lv := h.levels[l]
	if l == len(h.levels)-1 {
		// Near-exact coarse solve; on the (unlikely) iteration-budget
		// overrun the best iterate is still a valid, slightly weaker
		// preconditioner, so the error is deliberately dropped.
		ws.coarse.Solve(lv.a, b, x) //nolint:errcheck
		return
	}
	r, z := ws.r[l], ws.z[l]
	// smooth runs opts.Smooth symmetric relaxation passes on x. The z-line
	// smoother operates on A·x = b directly (each pass is a forward plus a
	// backward line Gauss–Seidel sweep, together symmetric); the SSOR
	// smoother is applied in residual-correction form. Pre- and
	// post-smoothing use the identical symmetric operation, keeping the
	// V-cycle an SPD preconditioner.
	smooth := func(first bool) {
		for sweep := 0; sweep < opts.Smooth; sweep++ {
			if opts.Smoother == SmootherZLine {
				lv.lineSweep(x, b, ws.line[l], false)
				lv.lineSweep(x, b, ws.line[l], true)
				continue
			}
			if first && sweep == 0 {
				// x starts at zero, so the first residual is b itself.
				lv.a.SSORApply(z, b, lv.diag, opts.Omega)
				copy(x, z)
				continue
			}
			lv.residual(r, b, x, opts.Workers)
			lv.a.SSORApply(z, r, lv.diag, opts.Omega)
			for i := range x {
				x[i] += z[i]
			}
		}
	}
	smooth(true)
	// Coarse-grid correction, visited γ times (V- or W-cycle).
	xc, bc := ws.xc[l], ws.bc[l]
	for visit := 0; visit < opts.Cycle; visit++ {
		lv.residual(r, b, x, opts.Workers)
		lv.restrict(bc, r)
		for i := range xc {
			xc[i] = 0
		}
		h.vcycle(ws, opts, l+1, xc, bc)
		lv.prolongAdd(x, xc)
	}
	smooth(false)
}

// residual computes r = b − A·x.
func (lv *level) residual(r, b, x []float64, workers int) {
	lv.a.MulVecN(r, x, workers)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}
