// Package mg implements a geometric-multigrid preconditioned conjugate
// gradient backend ("mg-cg") for the structured-grid SPD systems the FVM
// thermal solver assembles. One V-cycle over a semicoarsened mesh
// hierarchy per CG iteration makes the iteration count roughly independent
// of mesh resolution, turning paper-resolution steady solves from
// O(n·√κ) into near-O(n).
//
// The hierarchy semicoarsens the lateral axes only — x and y grid lines
// are thinned 2:1 while the thin, strongly non-uniform z stack (BCB,
// copper, heater layers) is kept at full resolution, which preserves the
// vertical material structure the paper's package model lives on. Coarse
// operators are Galerkin (RAP) products of the assembled fine matrix, so
// material discontinuities are carried down the hierarchy without any
// re-discretisation; transfer operators are tensor-product linear
// interpolation between cell centres (prolongation) and its transpose
// (full-weighting restriction). Levels are smoothed with symmetric z-line
// relaxation by default — exact tridiagonal (Thomas) solves along each
// vertical cell column, the robust partner of lateral semicoarsening on
// stacks whose µm-thin layers couple far more strongly in z than in the
// plane — with the ssor-cg backend's point-SSOR sweep available as an
// alternative. The coarsest level is solved nearly exactly with SSOR-CG
// so the V-cycle stays a fixed SPD operator, as the outer CG requires.
//
// The backend registers itself with the sparse solver registry under
// sparse.BackendMGCG; it needs the mesh geometry behind the matrix, which
// callers supply through sparse.GridSolver.SetGridHint (fvm.System does
// this automatically and additionally shares one cached Hierarchy across
// batched and blocked solves).
package mg

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"vcselnoc/internal/parallel"
	"vcselnoc/internal/sparse"
)

func init() {
	sparse.RegisterBackend(sparse.BackendMGCG, func(c sparse.Config) (sparse.Solver, error) {
		return New(Options{
			Tolerance:          c.Tolerance,
			MaxIterations:      c.MaxIterations,
			Workers:            c.Workers,
			Omega:              c.Omega,
			Levels:             c.MGLevels,
			Smooth:             c.MGSmooth,
			CoarseTol:          c.MGCoarseTol,
			Ordering:           c.MGOrdering,
			Precision:          c.MGPrecision,
			CoarseSolver:       c.MGCoarseSolver,
			CoarseDirectBudget: c.MGCoarseBudget,
			CoarseRebalance:    c.MGCoarseRebalance,
		}), nil
	})
}

// Options parameterises the mg-cg backend. The zero value is a good
// default for FVM conduction systems.
type Options struct {
	// Tolerance is the outer CG relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds the outer CG iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps the goroutines used by matrix-vector products, by the
	// red-black line smoother's per-colour relaxations and by the coarse
	// solve; 0 means GOMAXPROCS.
	Workers int
	// Levels caps the hierarchy depth including the finest level; 0
	// coarsens until the lateral grid is a few cells wide. Levels = 1
	// degenerates into a (costly) near-exact solve of the fine system per
	// V-cycle — useful for debugging only.
	Levels int
	// Smooth is the number of pre- and post-smoothing sweeps per V-cycle
	// side; 0 means 1.
	Smooth int
	// Smoother selects the relaxation scheme: SmootherZLine (default)
	// solves each vertical cell column exactly per sweep — the robust
	// partner of lateral semicoarsening on strongly z-coupled stacks —
	// while SmootherSSOR is the point sweep the ssor-cg backend uses.
	Smoother string
	// Omega is the SSOR smoother relaxation factor in (0, 2); 0 means 1.0
	// (symmetric Gauss–Seidel), the robust choice for smoothing. Ignored
	// by the z-line smoother.
	Omega float64
	// CoarseTol is the relative tolerance of the coarsest-level SSOR-CG
	// solve; 0 means 1e-12, effectively exact.
	CoarseTol float64
	// Cycle is the cycle index γ: 1 is a V-cycle (default), 2 a W-cycle —
	// each level visits the next coarser one twice, which stops
	// convergence from degrading with hierarchy depth at modest extra
	// cost (semicoarsening shrinks levels 4×, so γ=2 still geometrically
	// decreases work per level).
	Cycle int
	// Ordering selects the order line relaxations visit the lateral
	// lines. OrderingRedBlack (default) partitions the lines into
	// structurally independent colour classes (computed from the actual
	// level operator, so the widened Galerkin stencils of coarse levels
	// get the extra colours they need) and relaxes each class on the
	// worker pool; OrderingLex is the serial lexicographic reference.
	// Both run a forward plus a backward pass per sweep, so either way
	// the smoother stays symmetric and the V-cycle SPD. Ignored by the
	// SSOR smoother.
	Ordering string
	// Precision selects the V-cycle arithmetic. PrecisionFloat32 applies
	// the whole preconditioner — level operators, transfers and Thomas
	// line solves — in single precision, halving memory traffic on the
	// bandwidth-bound stencil ops while the outer CG stays float64;
	// PrecisionFloat64 forces double precision. Empty auto-selects
	// float32 when the outer tolerance is 1e-9 or looser (a float32
	// preconditioner perturbs search directions at the ~1e-7 level,
	// irrelevant at practical tolerances but worth avoiding when callers
	// push the outer CG towards float64 roundoff) and the fine level is
	// at most autoFloat32MaxCells unknowns — past that, accumulated
	// single-precision rounding weakens the preconditioner enough to
	// cost an extra outer iteration, which is dearest exactly on the
	// largest systems. The coarsest-level solve runs in float64 — it
	// anchors the cycle — except when the sparse-Cholesky tier is
	// latched, whose float32 factor mirror is accurate enough to solve
	// in-cycle without the conversion round trip. The SSOR smoother has
	// no float32 path and forces float64.
	Precision string
	// CoarseSolver forces one tier of the coarsest-level solve ladder:
	// CoarseSolverSparse (fill-reducing sparse Cholesky),
	// CoarseSolverBand (dense-band Cholesky) or CoarseSolverIterative
	// (measured zline-vs-SSOR PCG trial). Empty walks the ladder in that
	// order, falling through when a direct tier exceeds the budget, and
	// honours the VCSELNOC_MG_COARSE environment override (how perfab
	// sweeps the axis across child processes).
	CoarseSolver string
	// CoarseDirectBudget caps the stored entries (float64 values) of the
	// direct coarsest-level factorisation — packed band entries for the
	// banded tier, factor nonzeros for the sparse tier. 0 means the
	// VCSELNOC_MG_COARSE_BUDGET environment override when set, else
	// defaultCoarseBudget; negative disables the direct tiers. The first
	// solver to factor a shared Hierarchy latches its budget for
	// everyone.
	CoarseDirectBudget int
	// CoarseRebalance opts into appending extra aggressively rebalanced
	// coarsening levels (plain pairwise lateral merges, ignoring the
	// size-adaptive pair cap) until the coarsest level's predicted
	// factorisation fits CoarseDirectBudget. Off by default: the
	// aggressive merge trades coarse-grid quality for size, which is only
	// worth it when the budget would otherwise force an iterative coarse
	// solve. Honours the VCSELNOC_MG_COARSE_REBALANCE environment
	// override ("1"/"true").
	CoarseRebalance bool
}

// Smoother names accepted by Options.Smoother.
const (
	SmootherZLine = "zline"
	SmootherSSOR  = "ssor"
)

// Ordering names accepted by Options.Ordering.
const (
	OrderingRedBlack = "redblack"
	OrderingLex      = "lex"
)

// Precision names accepted by Options.Precision.
const (
	PrecisionFloat64 = "float64"
	PrecisionFloat32 = "float32"
)

// Coarse-solver tier names accepted by Options.CoarseSolver.
const (
	CoarseSolverSparse    = "sparse"
	CoarseSolverBand      = "band"
	CoarseSolverIterative = "iterative"
)

// autoFloat32Tol is the loosest outer tolerance at which an empty
// Options.Precision still auto-selects the float32 V-cycle, and
// autoFloat32MaxCells the largest fine-level system: single-precision
// rounding inside the cycle accumulates with system size (restriction
// sums and long dot products), and at ~1M cells the weakened
// preconditioner starts costing an extra outer CG iteration — expensive
// exactly where iterations are dearest.
const (
	autoFloat32Tol      = 1e-9
	autoFloat32MaxCells = 1 << 19
)

// effectivePrecision resolves the Precision knob for a fine-level system
// of n unknowns: an explicit value wins; empty auto-selects float32 at
// practical tolerances on small-to-mid systems. The SSOR smoother only
// exists in float64.
func (o Options) effectivePrecision(n int) string {
	if o.Smoother == SmootherSSOR {
		return PrecisionFloat64
	}
	if o.Precision != "" {
		return o.Precision
	}
	tol := o.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	if tol >= autoFloat32Tol && n <= autoFloat32MaxCells {
		return PrecisionFloat32
	}
	return PrecisionFloat64
}

// effectiveWorkers resolves the Workers knob to a concrete goroutine cap.
func (o Options) effectiveWorkers() int {
	if o.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Workers
}

func (o Options) withDefaults() Options {
	if o.Smooth <= 0 {
		o.Smooth = 1
	}
	if o.Smoother == "" {
		o.Smoother = SmootherZLine
	}
	if o.Ordering == "" {
		o.Ordering = OrderingRedBlack
	}
	if o.Cycle <= 0 {
		o.Cycle = 1
	}
	if o.Omega == 0 {
		o.Omega = 1.0
	}
	if o.CoarseTol <= 0 {
		o.CoarseTol = 1e-12
	}
	if o.Levels <= 0 {
		o.Levels = 64 // effectively unlimited; coarsening stops geometrically
	}
	if o.CoarseSolver == "" {
		o.CoarseSolver = os.Getenv("VCSELNOC_MG_COARSE")
	}
	if o.CoarseDirectBudget == 0 {
		if v, err := strconv.Atoi(os.Getenv("VCSELNOC_MG_COARSE_BUDGET")); err == nil && v != 0 {
			o.CoarseDirectBudget = v
		}
	}
	if !o.CoarseRebalance {
		switch os.Getenv("VCSELNOC_MG_COARSE_REBALANCE") {
		case "1", "true":
			o.CoarseRebalance = true
		}
	}
	return o
}

// effectiveCoarseBudget resolves CoarseDirectBudget (already env-resolved
// by withDefaults) to a concrete entry cap: ≤ 0 after defaulting means
// the direct tiers are disabled.
func (o Options) effectiveCoarseBudget() int {
	if o.CoarseDirectBudget == 0 {
		return defaultCoarseBudget
	}
	return o.CoarseDirectBudget
}

// minCoarsenCells is the per-axis cell count below which an axis is no
// longer coarsened, and lateralTargetCells stops the hierarchy once the
// x-y plane is small enough that the near-exact coarse solve (lateral ×
// the fixed z stack) is cheap.
const (
	minCoarsenCells    = 4
	lateralTargetCells = 20
)

// axisInterp is the 1D cell-centred transfer operator of one axis: fine
// cell i interpolates linearly between the two coarse cells whose centres
// bracket it. It doubles as its own adjoint via the rev lists
// (full-weighting restriction).
type axisInterp struct {
	nc int
	// lo/hi are the coarse source cells of each fine cell; hi == lo with
	// whi == 0 where a single source suffices (domain ends, identity).
	lo, hi   []int32
	wlo, whi []float64
	// wlo32/whi32 mirror the weights in single precision for the float32
	// V-cycle transfer ops.
	wlo32, whi32 []float32
	// rev lists the fine contributors of each coarse cell (the transpose
	// structure, used by restriction and the Galerkin product).
	rev  [][]int32
	revW [][]float64
}

// centersOf returns the cell-centre coordinates of a line set.
func centersOf(lines []float64) []float64 {
	c := make([]float64, len(lines)-1)
	for i := range c {
		c[i] = (lines[i] + lines[i+1]) / 2
	}
	return c
}

// coarsenLines merges adjacent cells pairwise, keeping coarse lines a
// subset of fine ones. The merge is size-adaptive: a pair only fuses while
// both cells are within pairRatioCap of the axis' current finest cell, so
// on the strongly graded floorplan meshes this code exists for (runs of
// ~10 µm device cells separated by ~900 µm gap cells) the fine runs halve
// level by level while the already-coarse gap cells stay untouched until
// the fine cells have grown comparable. Merging the gap cells early was
// measured to destroy convergence on the thermal model (5 → ~120 CG
// iterations): their fused centres drift further from the device regions
// whose error the coarse grid must represent, and plain every-other-line
// coarsening fails the same way for the same reason. On a uniform axis
// the rule degenerates to the classic 2:1 coarsening.
func coarsenLines(lines []float64) []float64 {
	n := len(lines) - 1
	out := make([]float64, 0, n/2+2)
	out = append(out, lines[0])
	minW := lines[1] - lines[0]
	for i := 1; i < n; i++ {
		if w := lines[i+1] - lines[i]; w < minW {
			minW = w
		}
	}
	for i := 0; i < n; {
		if i+1 < n {
			w0 := lines[i+1] - lines[i]
			w1 := lines[i+2] - lines[i+1]
			hi := w0
			if w1 > hi {
				hi = w1
			}
			if hi <= pairRatioCap*minW {
				out = append(out, lines[i+2])
				i += 2
				continue
			}
		}
		out = append(out, lines[i+1])
		i++
	}
	return out
}

// pairRatioCap is the largest multiple of the axis' finest cell a cell may
// reach and still merge. 4 tolerates the 2:1 remainders greedy pairing
// leaves (an odd-length fine run keeps one half-width cell) and smoothly
// graded meshes, while deferring the merge of hard size jumps until the
// levels below have evened them out.
const pairRatioCap = 4.0

// newAxisInterp builds the linear interpolation from coarse cell centres
// to fine cell centres. Passing identical line sets yields the identity.
func newAxisInterp(fineLines, coarseLines []float64) *axisInterp {
	cf := centersOf(fineLines)
	cc := centersOf(coarseLines)
	nf, nc := len(cf), len(cc)
	a := &axisInterp{
		nc:    nc,
		lo:    make([]int32, nf),
		hi:    make([]int32, nf),
		wlo:   make([]float64, nf),
		whi:   make([]float64, nf),
		wlo32: make([]float32, nf),
		whi32: make([]float32, nf),
		rev:   make([][]int32, nc),
		revW:  make([][]float64, nc),
	}
	for i, x := range cf {
		j := sort.SearchFloat64s(cc, x) // first coarse centre ≥ x
		var lo, hi int
		var wlo, whi float64
		switch {
		case j == 0:
			lo, hi, wlo, whi = 0, 0, 1, 0
		case j == nc:
			lo, hi, wlo, whi = nc-1, nc-1, 1, 0
		default:
			lo, hi = j-1, j
			w := (x - cc[lo]) / (cc[hi] - cc[lo])
			wlo, whi = 1-w, w
			// Collapse (near-)degenerate weights so identity axes and
			// coincident centres store a single clean entry.
			if whi == 0 {
				hi = lo
			} else if wlo == 0 {
				lo, wlo, whi = hi, whi, 0
				hi = lo
			}
		}
		a.lo[i], a.hi[i] = int32(lo), int32(hi)
		a.wlo[i], a.whi[i] = wlo, whi
		a.wlo32[i], a.whi32[i] = float32(wlo), float32(whi)
		a.rev[lo] = append(a.rev[lo], int32(i))
		a.revW[lo] = append(a.revW[lo], wlo)
		if whi != 0 {
			a.rev[hi] = append(a.rev[hi], int32(i))
			a.revW[hi] = append(a.revW[hi], whi)
		}
	}
	return a
}

// level is one rung of the hierarchy: its operator plus the transfer maps
// to the next coarser rung (nil on the coarsest).
type level struct {
	a          *sparse.CSR
	diag       []float64
	nx, ny, nz int
	ix, iy, iz *axisInterp
	ls         *lineSmoother
}

// lineSmoother holds the precomputed Thomas factorisation of every
// vertical cell column of one level, in a cache-conscious line-major
// layout. Because z is never coarsened and the operator's z-coupling is
// confined to the same lateral position, the entries at column offsets
// ±stride form an exact tridiagonal system per (i, j) line on every
// Galerkin level; solving it exactly per sweep removes the
// strongly-coupled vertical error components a point smoother crawls
// through. All remaining (off-line) row entries are repacked into a
// private CSR-like store walked linearly by the sweep, so the hot loop
// touches no branch-filtered a.Row() slices. The struct additionally
// carries a colouring of the line-coupling graph: lines of one colour
// share no matrix entry and may be relaxed concurrently with a result
// bit-identical to relaxing them one by one. It is immutable after
// construction and shared (read-only) by all solvers of a hierarchy.
type lineSmoother struct {
	stride, nz int
	// Line-major Thomas coefficients: entry j = l·nz + k holds layer k of
	// line l. subL is the coupling to the layer below (zero on the bottom
	// layer); cpL and invL are the forward-elimination coefficients c′_k
	// and 1/(d_k − sub_k·c′_{k−1}).
	subL, cpL, invL []float64
	// Packed off-line coefficients of cell (l, k): offCol/offVal entries
	// offPtr[j] ≤ p < offPtr[j+1], with offCol holding global cell
	// indices. These are the couplings the block Gauss–Seidel sweep moves
	// to the right-hand side at their current values.
	offPtr []int32
	offCol []int32
	offVal []float64
	// colors partitions the lines into structurally independent classes:
	// no two lines of one class share an off-line coupling. The fine
	// 5-point lateral stencil yields the classic 2 colours; the widened
	// 9-point Galerkin stencils of coarse levels get up to 4.
	colors [][]int32
}

// newLineSmoother factorises the vertical tridiagonal of every lateral
// line, packs the off-line couplings and colours the line-coupling graph.
// A non-positive pivot means the operator is not SPD.
func newLineSmoother(a *sparse.CSR, nx, ny, nz int) (*lineSmoother, error) {
	stride := nx * ny
	n := a.N()
	ls := &lineSmoother{
		stride: stride, nz: nz,
		subL: make([]float64, n), cpL: make([]float64, n), invL: make([]float64, n),
		offPtr: make([]int32, n+1),
	}
	adj := make([][]int32, stride)
	for l := 0; l < stride; l++ {
		prevCp := 0.0
		for k := 0; k < nz; k++ {
			idx := k*stride + l
			j := l*nz + k
			var sub, diag, sup float64
			cols, vals := a.Row(idx)
			for p, c := range cols {
				switch int(c) {
				case idx - stride:
					sub = vals[p]
				case idx:
					diag = vals[p]
				case idx + stride:
					sup = vals[p]
				default:
					ls.offCol = append(ls.offCol, c)
					ls.offVal = append(ls.offVal, vals[p])
					if nl := int32(int(c) % stride); nl != int32(l) {
						adj[l] = appendUniqueInt32(adj[l], nl)
					}
				}
			}
			if k == 0 {
				sub = 0
			}
			denom := diag - sub*prevCp
			if denom <= 0 {
				return nil, fmt.Errorf("mg: z-line pivot %g at cell %d (matrix not SPD?)", denom, idx)
			}
			ls.subL[j] = sub
			ls.invL[j] = 1 / denom
			prevCp = sup / denom
			ls.cpL[j] = prevCp
			ls.offPtr[j+1] = int32(len(ls.offCol))
		}
	}
	ls.colors = colorLines(adj, stride)
	return ls, nil
}

func appendUniqueInt32(s []int32, v int32) []int32 {
	for _, e := range s {
		if e == v {
			return s
		}
	}
	return append(s, v)
}

// colorLines greedy-colours the line-coupling graph in ascending line
// order (smallest unused colour wins). Greedy needs at most maxdegree+1
// colours; line degrees are ≤ 8 even on the widened coarse stencils, so
// the uint64 used-colour mask never saturates. Lines within one returned
// class are pairwise uncoupled.
func colorLines(adj [][]int32, stride int) [][]int32 {
	color := make([]int, stride)
	maxColor := 1
	for l := 0; l < stride; l++ {
		var used uint64
		for _, nl := range adj[l] {
			if int(nl) < l {
				used |= 1 << uint(color[nl])
			}
		}
		c := 0
		for used&(1<<uint(c)) != 0 {
			c++
		}
		color[l] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	classes := make([][]int32, maxColor)
	for l := 0; l < stride; l++ {
		classes[color[l]] = append(classes[color[l]], int32(l))
	}
	return classes
}

// coarseNDOrder builds the fill-reducing cell ordering the sparse
// Cholesky tier factors a level under: nested dissection on the level's
// lateral line-coupling graph — the same graph the red-black smoother
// colours — with each lateral line's nz cells kept consecutive. Because
// z is never coarsened, the level's cell graph is the lateral line graph
// with every vertex blown up into a densely chained z-line; dissecting
// the lateral plane and numbering each separator's lines last confines
// fill to the separator blocks (O(m·log m) line-blocks on an m-line
// plane instead of the O(m^1.5) a band ordering stores), while the
// z-contiguous numbering keeps the per-line blocks dense and
// cache-friendly. The separator thickness adapts to the widest lateral
// reach of the level's stencil (1 for the 9-point Galerkin stencils), so
// a separator genuinely separates and correctness never depends on it —
// a too-thin separator would only cost extra fill.
func coarseNDOrder(lv *level) []int32 {
	nx, ny, nz := lv.nx, lv.ny, lv.nz
	stride := nx * ny
	// Widest lateral reach of any stencil entry, from the operator itself.
	reach := 1
	for i := 0; i < lv.n(); i++ {
		li, lj := i%stride%nx, i%stride/nx
		cols, _ := lv.a.Row(i)
		for _, c := range cols {
			ci, cj := int(c)%stride%nx, int(c)%stride/nx
			if d := li - ci; d > reach || -d > reach {
				reach = max(d, -d)
			}
			if d := lj - cj; d > reach || -d > reach {
				reach = max(d, -d)
			}
		}
	}
	lines := make([]int32, 0, stride)
	var dissect func(x0, x1, y0, y1 int)
	dissect = func(x0, x1, y0, y1 int) {
		w, ht := x1-x0, y1-y0
		if w <= 0 || ht <= 0 {
			return
		}
		if w*ht <= ndLeafLines || (w <= 2*reach && ht <= 2*reach) {
			for j := y0; j < y1; j++ {
				for i := x0; i < x1; i++ {
					lines = append(lines, int32(j*nx+i))
				}
			}
			return
		}
		if w >= ht {
			mid := (x0 + x1 - reach) / 2
			dissect(x0, mid, y0, y1)
			dissect(mid+reach, x1, y0, y1)
			for i := mid; i < mid+reach && i < x1; i++ {
				for j := y0; j < y1; j++ {
					lines = append(lines, int32(j*nx+i))
				}
			}
			return
		}
		mid := (y0 + y1 - reach) / 2
		dissect(x0, x1, y0, mid)
		dissect(x0, x1, mid+reach, y1)
		for j := mid; j < mid+reach && j < y1; j++ {
			for i := x0; i < x1; i++ {
				lines = append(lines, int32(j*nx+i))
			}
		}
	}
	dissect(0, nx, 0, ny)
	perm := make([]int32, 0, stride*nz)
	for _, l := range lines {
		for k := 0; k < nz; k++ {
			perm = append(perm, int32(k*stride)+l)
		}
	}
	return perm
}

// ndLeafLines is the lateral box size below which nested dissection
// stops splitting and numbers lines lexicographically: tiny boxes
// factor densely anyway and the recursion overhead stops paying.
const ndLeafLines = 8

// solveLine relaxes lateral line l exactly: forward elimination builds the
// line right-hand side on the fly (off-line couplings at their current x
// values) into scratch d (length nz), back substitution writes straight
// into x.
func (ls *lineSmoother) solveLine(x, b, d []float64, l int) {
	stride, nz := ls.stride, ls.nz
	base := l * nz
	prev := 0.0
	for k := 0; k < nz; k++ {
		j := base + k
		s := b[k*stride+l]
		for p := ls.offPtr[j]; p < ls.offPtr[j+1]; p++ {
			s -= ls.offVal[p] * x[ls.offCol[p]]
		}
		prev = (s - ls.subL[j]*prev) * ls.invL[j]
		d[k] = prev
	}
	x[(nz-1)*stride+l] = d[nz-1]
	for k := nz - 2; k >= 0; k-- {
		x[k*stride+l] = d[k] - ls.cpL[base+k]*x[(k+1)*stride+l]
	}
}

// sweepLex runs one serial block Gauss–Seidel pass over the lines in
// ascending (or, reversed, descending) lexicographic order — the
// reference ordering. A forward followed by a backward pass is symmetric
// block Gauss–Seidel, keeping the V-cycle an SPD preconditioner.
func (ls *lineSmoother) sweepLex(x, b, d []float64, reverse bool) {
	for li := 0; li < ls.stride; li++ {
		l := li
		if reverse {
			l = ls.stride - 1 - li
		}
		ls.solveLine(x, b, d, l)
	}
}

// lineChunk is the number of lines one parallel.ForEach work item relaxes;
// chunking keeps the atomic work-counter traffic negligible against the
// O(nz) line solves.
const lineChunk = 32

// sweepColored runs one block Gauss–Seidel pass colour class by colour
// class, ascending (or, reversed, descending) — forward plus backward is
// again symmetric. Lines within a class are independent, so each class is
// relaxed on up to workers goroutines; bufs supplies one length-nz Thomas
// scratch per worker. Because same-colour lines share no coupling and
// each line writes only its own cells, the parallel result is
// bit-identical to relaxing the class serially.
func (ls *lineSmoother) sweepColored(x, b []float64, bufs [][]float64, workers int, reverse bool) {
	nc := len(ls.colors)
	for ci := 0; ci < nc; ci++ {
		c := ci
		if reverse {
			c = nc - 1 - ci
		}
		lines := ls.colors[c]
		chunks := (len(lines) + lineChunk - 1) / lineChunk
		w := workers
		if w > chunks {
			w = chunks
		}
		parallel.ForEach(w, chunks, func(worker, chunk int) error { //nolint:errcheck // fn never fails
			d := bufs[worker]
			lo := chunk * lineChunk
			hi := lo + lineChunk
			if hi > len(lines) {
				hi = len(lines)
			}
			for _, l := range lines[lo:hi] {
				ls.solveLine(x, b, d, int(l))
			}
			return nil
		})
	}
}

// lineSmoother32 is the single-precision mirror of a lineSmoother: the
// layout, colouring and line order are shared, only the coefficient
// arrays are stored again in float32 (rounded from the float64
// factorisation, not refactorised, so the f32 sweep applies the same
// operator to within rounding).
type lineSmoother32 struct {
	ls                      *lineSmoother
	subL, cpL, invL, offVal []float32
}

func newLineSmoother32(ls *lineSmoother) *lineSmoother32 {
	s := &lineSmoother32{
		ls:     ls,
		subL:   make([]float32, len(ls.subL)),
		cpL:    make([]float32, len(ls.cpL)),
		invL:   make([]float32, len(ls.invL)),
		offVal: make([]float32, len(ls.offVal)),
	}
	for i, v := range ls.subL {
		s.subL[i] = float32(v)
	}
	for i, v := range ls.cpL {
		s.cpL[i] = float32(v)
	}
	for i, v := range ls.invL {
		s.invL[i] = float32(v)
	}
	for i, v := range ls.offVal {
		s.offVal[i] = float32(v)
	}
	return s
}

func (s *lineSmoother32) solveLine(x, b, d []float32, l int) {
	ls := s.ls
	stride, nz := ls.stride, ls.nz
	base := l * nz
	prev := float32(0)
	for k := 0; k < nz; k++ {
		j := base + k
		sum := b[k*stride+l]
		for p := ls.offPtr[j]; p < ls.offPtr[j+1]; p++ {
			sum -= s.offVal[p] * x[ls.offCol[p]]
		}
		prev = (sum - s.subL[j]*prev) * s.invL[j]
		d[k] = prev
	}
	x[(nz-1)*stride+l] = d[nz-1]
	for k := nz - 2; k >= 0; k-- {
		x[k*stride+l] = d[k] - s.cpL[base+k]*x[(k+1)*stride+l]
	}
}

func (s *lineSmoother32) sweepLex(x, b, d []float32, reverse bool) {
	for li := 0; li < s.ls.stride; li++ {
		l := li
		if reverse {
			l = s.ls.stride - 1 - li
		}
		s.solveLine(x, b, d, l)
	}
}

func (s *lineSmoother32) sweepColored(x, b []float32, bufs [][]float32, workers int, reverse bool) {
	nc := len(s.ls.colors)
	for ci := 0; ci < nc; ci++ {
		c := ci
		if reverse {
			c = nc - 1 - ci
		}
		lines := s.ls.colors[c]
		chunks := (len(lines) + lineChunk - 1) / lineChunk
		w := workers
		if w > chunks {
			w = chunks
		}
		parallel.ForEach(w, chunks, func(worker, chunk int) error { //nolint:errcheck // fn never fails
			d := bufs[worker]
			lo := chunk * lineChunk
			hi := lo + lineChunk
			if hi > len(lines) {
				hi = len(lines)
			}
			for _, l := range lines[lo:hi] {
				s.solveLine(x, b, d, int(l))
			}
			return nil
		})
	}
}

func (lv *level) n() int { return lv.nx * lv.ny * lv.nz }

// coarseN returns the cell count of the next coarser level.
func (lv *level) coarseN() int { return lv.ix.nc * lv.iy.nc * lv.iz.nc }

// level32 is the single-precision mirror of one level: the operator
// values and Thomas/off-line coefficients in float32 (structure shared
// with the float64 level). Transfers reuse the float64 level's geometry
// via the axisInterp wlo32/whi32 weights.
type level32 struct {
	a  *sparse.CSR32
	ls *lineSmoother32
}

// Hierarchy is an immutable semicoarsened multigrid hierarchy for one
// matrix. Building one costs a few matrix passes (Galerkin products); it
// is safe for concurrent use by many Solvers, so batched multi-RHS solves
// share a single instance.
type Hierarchy struct {
	levels []*level
	// f32 holds the lazily built single-precision level mirrors, shared by
	// every solver running the float32 V-cycle on this hierarchy.
	f32Once sync.Once
	f32     []*level32
	// coarseMode latches, across every solver sharing this hierarchy, the
	// coarsest-solve tier actually in use: coarseAuto (not yet decided),
	// coarseSparseChol or coarseBandChol when a direct factorisation was
	// built, coarseZLine or coarseSSOR when the first iterative solve's
	// measured trial picked a preconditioner.
	coarseMode atomic.Int32
	// chol holds the lazily built direct factorisation of the coarsest
	// level (nil when the budget or a numerical failure rules the direct
	// tiers out), shared race-free by every solver of this hierarchy. The
	// first solver to reach the latch factors with its own options;
	// cholSparse additionally keeps the concrete sparse factor for the
	// float32 mirror below.
	cholOnce   sync.Once
	chol       coarseFactor
	cholSparse *sparse.SparseCholesky
	// chol32 mirrors the sparse factor in float32 for the float32
	// V-cycle, which then solves the coarsest level in-cycle instead of
	// staging through float64.
	chol32Once sync.Once
	chol32     *sparse.SparseCholesky32
	// phaseNanos accumulates per-phase V-cycle wall time for this
	// hierarchy alone, so concurrently solving specs don't blend their
	// phase fractions (the package-global aggregate is kept alongside
	// for process-wide benchmark deltas).
	phaseNanos [numPhases]atomic.Int64
}

// coarseFactor is a direct coarsest-level factorisation tier: both the
// sparse and the banded Cholesky solve in place and are immutable after
// construction.
type coarseFactor interface {
	SolveInPlace(b []float64)
}

// defaultCoarseBudget is the default Options.CoarseDirectBudget: 8·10⁶
// stored float64 entries (64 MB). Graded meshes stall the lateral
// semicoarsening with large coarsest levels whose near-exact iterative
// solve costs hundreds of iterations per V-cycle and dominates the whole
// mg-cg solve; within this budget a direct factorisation reduces the
// coarse solve to two triangular sweeps. The fill-reducing sparse tier
// keeps paper-scale coarse levels within it where the dense band blew
// past it.
const defaultCoarseBudget = 8 << 20

// coarseDirect builds (once) and returns the direct factorisation of the
// coarsest level — the ladder's sparse-Cholesky tier first, the banded
// tier as fallback — or nil when the budget, a forced iterative tier or
// a numerical failure rules the direct tiers out. The first caller's
// options decide the budget and tier for every solver sharing the
// hierarchy. Safe for concurrent use.
func (h *Hierarchy) coarseDirect(opts Options) coarseFactor {
	h.cholOnce.Do(func() {
		budget := opts.effectiveCoarseBudget()
		if budget <= 0 || opts.CoarseSolver == CoarseSolverIterative {
			return
		}
		lv := h.levels[len(h.levels)-1]
		if opts.CoarseSolver == "" || opts.CoarseSolver == CoarseSolverSparse {
			if sc, err := sparse.NewSparseCholesky(lv.a, coarseNDOrder(lv), budget); err == nil {
				h.chol, h.cholSparse = sc, sc
				h.latchCoarseMode(coarseSparseChol)
				return
			}
		}
		if opts.CoarseSolver == "" || opts.CoarseSolver == CoarseSolverBand {
			if bc, err := sparse.NewBandCholesky(lv.a, budget); err == nil {
				h.chol = bc
				h.latchCoarseMode(coarseBandChol)
			}
		}
	})
	return h.chol
}

// coarseDirect32 builds (once) and returns the float32 mirror of the
// sparse coarse factor, or nil when the latched direct tier is not the
// sparse one (the banded factor stays float64-staged). Safe for
// concurrent use.
func (h *Hierarchy) coarseDirect32(opts Options) *sparse.SparseCholesky32 {
	if h.coarseDirect(opts) == nil || h.cholSparse == nil {
		return nil
	}
	h.chol32Once.Do(func() { h.chol32 = h.cholSparse.Mirror32() })
	return h.chol32
}

// float32Levels builds (once) and returns the single-precision mirrors of
// every level. Safe for concurrent use.
func (h *Hierarchy) float32Levels() []*level32 {
	h.f32Once.Do(func() {
		h.f32 = make([]*level32, len(h.levels))
		for i, lv := range h.levels {
			h.f32[i] = &level32{a: sparse.NewCSR32(lv.a), ls: newLineSmoother32(lv.ls)}
		}
	})
	return h.f32
}

// Fine returns the matrix the hierarchy was built for.
func (h *Hierarchy) Fine() *sparse.CSR { return h.levels[0].a }

// Depth returns the number of levels including the finest.
func (h *Hierarchy) Depth() int { return len(h.levels) }

// LevelSize returns the unknown count of level l (0 = finest).
func (h *Hierarchy) LevelSize(l int) int { return h.levels[l].n() }

// BuildHierarchy semicoarsens the grid behind a and assembles the Galerkin
// coarse operators. The hint must describe the structured grid a was
// assembled on (cell counts multiplying to a.N()).
func BuildHierarchy(a *sparse.CSR, hint sparse.GridHint, opts Options) (*Hierarchy, error) {
	opts = opts.withDefaults()
	if hint.Empty() {
		return nil, fmt.Errorf("mg: no grid geometry — pass the mesh behind the matrix with SetGridHint (fvm.System does this automatically)")
	}
	nx, ny, nz := hint.NX(), hint.NY(), hint.NZ()
	if nx < 1 || ny < 1 || nz < 1 || nx*ny*nz != a.N() {
		return nil, fmt.Errorf("mg: grid hint %d×%d×%d does not match matrix size %d", nx, ny, nz, a.N())
	}
	h := &Hierarchy{}
	xl, yl, zl := hint.X, hint.Y, hint.Z
	cur := a
	for {
		// The z-line factorisation inside newLevel is cheap (one matrix
		// pass) and always built, so solvers sharing this hierarchy may
		// pick either smoother.
		lv, err := newLevel(cur, xl, yl, zl, len(h.levels))
		if err != nil {
			return nil, err
		}
		h.levels = append(h.levels, lv)
		if len(h.levels) >= opts.Levels || lv.nx*lv.ny <= lateralTargetCells {
			break
		}
		coarsenX := lv.nx >= minCoarsenCells
		coarsenY := lv.ny >= minCoarsenCells
		if !coarsenX && !coarsenY {
			break
		}
		cxl, cyl := xl, yl
		if coarsenX {
			cxl = coarsenLines(xl)
		}
		if coarsenY {
			cyl = coarsenLines(yl)
		}
		if len(cxl) == len(xl) && len(cyl) == len(yl) {
			// The size-adaptive merge found no fusible pair on either
			// axis (pathologically graded mesh): the hierarchy cannot
			// deepen, so the current level becomes the coarsest.
			break
		}
		cur, err = h.coarsenTo(lv, xl, yl, zl, cxl, cyl)
		if err != nil {
			return nil, err
		}
		xl, yl = cxl, cyl
	}
	if opts.CoarseRebalance {
		if err := h.rebalanceCoarse(opts, xl, yl, zl); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// newLevel assembles one hierarchy level for operator a on the given
// axis line sets: diagonal validation plus the always-built z-line
// factorisation.
func newLevel(a *sparse.CSR, xl, yl, zl []float64, depth int) (*level, error) {
	lv := &level{a: a, diag: a.Diag(), nx: len(xl) - 1, ny: len(yl) - 1, nz: len(zl) - 1}
	for i, d := range lv.diag {
		if d <= 0 {
			return nil, fmt.Errorf("mg: non-positive diagonal %g at row %d of level %d (matrix not SPD?)", d, i, depth)
		}
	}
	ls, err := newLineSmoother(a, lv.nx, lv.ny, lv.nz)
	if err != nil {
		return nil, fmt.Errorf("mg: level %d: %w", depth, err)
	}
	lv.ls = ls
	return lv, nil
}

// coarsenTo wires the transfer operators from lv's axes to the coarser
// line sets and assembles the Galerkin coarse operator.
func (h *Hierarchy) coarsenTo(lv *level, xl, yl, zl, cxl, cyl []float64) (*sparse.CSR, error) {
	lv.ix = newAxisInterp(xl, cxl)
	lv.iy = newAxisInterp(yl, cyl)
	lv.iz = newAxisInterp(zl, zl) // z stack kept at full resolution
	coarse, err := galerkin(lv)
	if err != nil {
		return nil, fmt.Errorf("mg: level %d Galerkin product: %w", len(h.levels)-1, err)
	}
	return coarse, nil
}

// rebalanceCoarse implements the opt-in CoarseRebalance knob: while the
// coarsest level's predicted sparse-Cholesky fill exceeds the
// factorisation budget, append one more coarsening level built with
// plain pairwise lateral merges — ignoring the size-adaptive pair cap
// that (rightly) stalls the regular coarsening on graded meshes. The
// aggressive merge degrades coarse-grid quality, but below an already
// stalled level the extra rung only has to make the direct coarse solve
// affordable, not carry smoothing; the levels above keep their
// size-adaptive grids. The symbolic analysis alone decides fit, so each
// probe costs one structure pass, never a factorisation.
func (h *Hierarchy) rebalanceCoarse(opts Options, xl, yl, zl []float64) error {
	budget := opts.effectiveCoarseBudget()
	for budget > 0 && len(h.levels) < opts.Levels {
		lv := h.levels[len(h.levels)-1]
		if _, err := sparse.SparseCholeskyCount(lv.a, coarseNDOrder(lv), budget); err == nil {
			break // the factorisation fits — stop shrinking
		}
		cxl, cyl := xl, yl
		if lv.nx > 1 {
			cxl = aggressiveCoarsenLines(xl)
		}
		if lv.ny > 1 {
			cyl = aggressiveCoarsenLines(yl)
		}
		if len(cxl) == len(xl) && len(cyl) == len(yl) {
			break // single lateral cell left on both axes
		}
		coarse, err := h.coarsenTo(lv, xl, yl, zl, cxl, cyl)
		if err != nil {
			return err
		}
		nlv, err := newLevel(coarse, cxl, cyl, zl, len(h.levels))
		if err != nil {
			return err
		}
		h.levels = append(h.levels, nlv)
		xl, yl = cxl, cyl
	}
	return nil
}

// aggressiveCoarsenLines merges adjacent cells pairwise unconditionally
// — the rebalance-only variant of coarsenLines without the size-ratio
// cap. Coarse lines stay a subset of fine ones.
func aggressiveCoarsenLines(lines []float64) []float64 {
	n := len(lines) - 1
	out := make([]float64, 0, n/2+2)
	out = append(out, lines[0])
	for i := 2; i <= n; i += 2 {
		out = append(out, lines[i])
	}
	if n%2 == 1 {
		out = append(out, lines[n])
	}
	return out
}

// Shifted derives the hierarchy for the diagonally shifted operator
// A + diag(shift) — the implicit-Euler transient matrix A + diag(C/dt) —
// from this (steady) hierarchy without redoing any Galerkin triple
// product. The transfer operators, level geometry and off-diagonal
// Galerkin stencils are shared as-is; only the diagonals change: the
// shift vector is carried down the hierarchy by full-weighting
// restriction (mass lumping of Pᵀ·diag(shift)·P, exact on constants
// because interpolation weights sum to one), each level's operator
// becomes its steady Galerkin operator plus its lumped shift, and the
// per-level diagonal caches and z-line Thomas factorisations are
// recomputed — one cheap matrix pass per level instead of the RAP
// products that dominate BuildHierarchy. A positive shift only adds
// diagonal dominance, so the resulting V-cycle stays an SPD
// preconditioner and typically converges at least as fast as the steady
// one.
//
// fine, when non-nil, becomes the new hierarchy's finest operator and
// must equal Fine() plus diag(shift) (callers that already hold the
// shifted matrix pass it so Hierarchy.Fine() pointer-matches the matrix
// they solve); nil builds it internally.
func (h *Hierarchy) Shifted(fine *sparse.CSR, shift []float64) (*Hierarchy, error) {
	n := h.levels[0].n()
	if len(shift) != n {
		return nil, fmt.Errorf("mg: shift has %d entries, want %d", len(shift), n)
	}
	for i, v := range shift {
		if v < 0 || v != v {
			return nil, fmt.Errorf("mg: invalid shift %g at cell %d (want ≥ 0)", v, i)
		}
	}
	if fine != nil && fine.N() != n {
		return nil, fmt.Errorf("mg: shifted fine matrix size %d does not match hierarchy size %d", fine.N(), n)
	}
	out := &Hierarchy{levels: make([]*level, len(h.levels))}
	cur := shift
	for l, lv := range h.levels {
		a := fine
		if l > 0 || a == nil {
			a = sparse.AddDiagonal(lv.a, cur)
		}
		nlv := &level{
			a: a, diag: a.Diag(),
			nx: lv.nx, ny: lv.ny, nz: lv.nz,
			ix: lv.ix, iy: lv.iy, iz: lv.iz,
		}
		ls, err := newLineSmoother(a, nlv.nx, nlv.ny, nlv.nz)
		if err != nil {
			return nil, fmt.Errorf("mg: shifted level %d: %w", l, err)
		}
		nlv.ls = ls
		out.levels[l] = nlv
		if l < len(h.levels)-1 {
			next := make([]float64, lv.coarseN())
			lv.restrict(next, cur)
			cur = next
		}
	}
	return out, nil
}

// galerkin assembles the coarse operator A_c = Pᵀ·A·P of one level, where
// P is the tensor-product interpolation lv.ix ⊗ lv.iy ⊗ lv.iz. Rows are
// built coarse-row-major with a dense scatter buffer (Gustavson's
// algorithm), so the cost is proportional to the number of triple-product
// terms, not to any matrix dimension squared.
func galerkin(lv *level) (*sparse.CSR, error) {
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxf, nyf := lv.nx, lv.ny
	nxc, nyc, nzc := ix.nc, iy.nc, iz.nc
	nc := nxc * nyc * nzc

	scratch := make([]float64, nc)
	marked := make([]bool, nc)
	var touched []int32

	rowPtr := make([]int, 1, nc+1)
	var cols []int32
	var vals []float64

	// scatter adds w·a into the coarse column derived from fine column c.
	scatter := func(c int, w float64) {
		fi := c % nxf
		rem := c / nxf
		fj := rem % nyf
		fk := rem / nyf
		xw := [2]float64{ix.wlo[fi], ix.whi[fi]}
		xj := [2]int32{ix.lo[fi], ix.hi[fi]}
		yw := [2]float64{iy.wlo[fj], iy.whi[fj]}
		yj := [2]int32{iy.lo[fj], iy.hi[fj]}
		zw := [2]float64{iz.wlo[fk], iz.whi[fk]}
		zj := [2]int32{iz.lo[fk], iz.hi[fk]}
		for zi := 0; zi < 2; zi++ {
			if zw[zi] == 0 {
				continue
			}
			for yi := 0; yi < 2; yi++ {
				if yw[yi] == 0 {
					continue
				}
				for xi := 0; xi < 2; xi++ {
					if xw[xi] == 0 {
						continue
					}
					J := (int(zj[zi])*nyc+int(yj[yi]))*nxc + int(xj[xi])
					if !marked[J] {
						marked[J] = true
						touched = append(touched, int32(J))
					}
					scratch[J] += w * zw[zi] * yw[yi] * xw[xi]
				}
			}
		}
	}

	for ck := 0; ck < nzc; ck++ {
		for cj := 0; cj < nyc; cj++ {
			for ci := 0; ci < nxc; ci++ {
				touched = touched[:0]
				// Fine rows contributing to this coarse row: the adjoint
				// stencils of the three axes.
				for zi, fk := range iz.rev[ck] {
					wz := iz.revW[ck][zi]
					for yi, fj := range iy.rev[cj] {
						wy := iy.revW[cj][yi] * wz
						for xi, fi := range ix.rev[ci] {
							rw := ix.revW[ci][xi] * wy
							r := (int(fk)*nyf+int(fj))*nxf + int(fi)
							rc, rv := lv.a.Row(r)
							for p := range rc {
								scatter(int(rc[p]), rw*rv[p])
							}
						}
					}
				}
				// Gather the scattered row in sorted column order.
				sortInt32(touched)
				for _, J := range touched {
					cols = append(cols, J)
					vals = append(vals, scratch[J])
					scratch[J] = 0
					marked[J] = false
				}
				rowPtr = append(rowPtr, len(vals))
			}
		}
	}
	return sparse.NewCSRFromParts(nc, rowPtr, cols, vals)
}

// sortInt32 insertion-sorts a short slice (coarse stencils are ≤ a few
// dozen entries, below the crossover where library sorts pay off).
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// restrict computes bc = Pᵀ·r (full weighting).
func (lv *level) restrict(bc, r []float64) {
	for i := range bc {
		bc[i] = 0
	}
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo[fk], iz.whi[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo[fj], iy.whi[fj]
			for fi := 0; fi < lv.nx; fi++ {
				v := r[idx]
				idx++
				if v == 0 {
					continue
				}
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo[fi], ix.whi[fi]
				accumulate(bc, nxc, nyc, v,
					zl, zh, zwl, zwh, yl, yh, ywl, ywh, xl, xh, xwl, xwh)
			}
		}
	}
}

func accumulate(dst []float64, nxc, nyc int, v float64,
	zl, zh int, zwl, zwh float64, yl, yh int, ywl, ywh float64, xl, xh int, xwl, xwh float64) {
	add := func(zk int, wz float64) {
		base := zk * nyc
		addY := func(yj int, wy float64) {
			row := (base + yj) * nxc
			dst[row+xl] += v * wz * wy * xwl
			if xwh != 0 {
				dst[row+xh] += v * wz * wy * xwh
			}
		}
		addY(yl, ywl)
		if ywh != 0 {
			addY(yh, ywh)
		}
	}
	add(zl, zwl)
	if zwh != 0 {
		add(zh, zwh)
	}
}

// prolongAdd computes x += P·xc (linear interpolation of the coarse
// correction).
func (lv *level) prolongAdd(x, xc []float64) {
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo[fk], iz.whi[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo[fj], iy.whi[fj]
			rowLL := (zl*nyc + yl) * nxc
			for fi := 0; fi < lv.nx; fi++ {
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo[fi], ix.whi[fi]
				sum := zwl * ywl * lerp(xc[rowLL+xl], xc[rowLL+xh], xwl, xwh)
				if ywh != 0 {
					row := (zl*nyc + yh) * nxc
					sum += zwl * ywh * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
				}
				if zwh != 0 {
					row := (zh*nyc + yl) * nxc
					sum += zwh * ywl * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
					if ywh != 0 {
						row = (zh*nyc + yh) * nxc
						sum += zwh * ywh * lerp(xc[row+xl], xc[row+xh], xwl, xwh)
					}
				}
				x[idx] += sum
				idx++
			}
		}
	}
}

func lerp(vlo, vhi, wlo, whi float64) float64 {
	if whi == 0 {
		return vlo * wlo
	}
	return vlo*wlo + vhi*whi
}

// restrict32 computes bc = Pᵀ·r in single precision, mirroring restrict.
func (lv *level) restrict32(bc, r []float32) {
	for i := range bc {
		bc[i] = 0
	}
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo32[fk], iz.whi32[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo32[fj], iy.whi32[fj]
			for fi := 0; fi < lv.nx; fi++ {
				v := r[idx]
				idx++
				if v == 0 {
					continue
				}
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo32[fi], ix.whi32[fi]
				accumulate32(bc, nxc, nyc, v,
					zl, zh, zwl, zwh, yl, yh, ywl, ywh, xl, xh, xwl, xwh)
			}
		}
	}
}

func accumulate32(dst []float32, nxc, nyc int, v float32,
	zl, zh int, zwl, zwh float32, yl, yh int, ywl, ywh float32, xl, xh int, xwl, xwh float32) {
	add := func(zk int, wz float32) {
		base := zk * nyc
		addY := func(yj int, wy float32) {
			row := (base + yj) * nxc
			dst[row+xl] += v * wz * wy * xwl
			if xwh != 0 {
				dst[row+xh] += v * wz * wy * xwh
			}
		}
		addY(yl, ywl)
		if ywh != 0 {
			addY(yh, ywh)
		}
	}
	add(zl, zwl)
	if zwh != 0 {
		add(zh, zwh)
	}
}

// prolongAdd32 computes x += P·xc in single precision, mirroring
// prolongAdd.
func (lv *level) prolongAdd32(x, xc []float32) {
	ix, iy, iz := lv.ix, lv.iy, lv.iz
	nxc, nyc := ix.nc, iy.nc
	idx := 0
	for fk := 0; fk < lv.nz; fk++ {
		zl, zh := int(iz.lo[fk]), int(iz.hi[fk])
		zwl, zwh := iz.wlo32[fk], iz.whi32[fk]
		for fj := 0; fj < lv.ny; fj++ {
			yl, yh := int(iy.lo[fj]), int(iy.hi[fj])
			ywl, ywh := iy.wlo32[fj], iy.whi32[fj]
			rowLL := (zl*nyc + yl) * nxc
			for fi := 0; fi < lv.nx; fi++ {
				xl, xh := int(ix.lo[fi]), int(ix.hi[fi])
				xwl, xwh := ix.wlo32[fi], ix.whi32[fi]
				sum := zwl * ywl * lerp32(xc[rowLL+xl], xc[rowLL+xh], xwl, xwh)
				if ywh != 0 {
					row := (zl*nyc + yh) * nxc
					sum += zwl * ywh * lerp32(xc[row+xl], xc[row+xh], xwl, xwh)
				}
				if zwh != 0 {
					row := (zh*nyc + yl) * nxc
					sum += zwh * ywl * lerp32(xc[row+xl], xc[row+xh], xwl, xwh)
					if ywh != 0 {
						row = (zh*nyc + yh) * nxc
						sum += zwh * ywh * lerp32(xc[row+xl], xc[row+xh], xwl, xwh)
					}
				}
				x[idx] += sum
				idx++
			}
		}
	}
}

func lerp32(vlo, vhi, wlo, whi float32) float32 {
	if whi == 0 {
		return vlo * wlo
	}
	return vlo*wlo + vhi*whi
}

// workspace holds the per-level scratch of one Solver. Not shared.
type workspace struct {
	forHier *Hierarchy
	workers int         // resolved Options.Workers (≥ 1)
	prec    string      // resolved Options.Precision
	r, z    [][]float64 // per level
	xc, bc  [][]float64 // correction problem per coarser level
	lineBuf [][]float64 // Thomas scratch per worker (length nz, z never coarsens)
	coarse  *sparse.SSORCG
	// coarseWS backs the zline-preconditioned CG that competes with
	// SSOR-CG for the iterative coarse solve under the z-line smoother
	// (nil when the direct factorisation exists or the SSOR smoother is
	// selected).
	coarseWS *sparse.Workspace
	// Float32 V-cycle scratch, allocated only when prec is float32.
	l32              []*level32
	x32, b32         []float32   // fine-level iterate and RHS
	r32              [][]float32 // per level
	xc32, bc32       [][]float32 // correction problem per coarser level
	lineBuf32        [][]float32 // Thomas scratch per worker
	coarseB, coarseX []float64   // float64 staging of the coarsest solve
}

func newWorkspace(h *Hierarchy, opts Options) *workspace {
	ws := &workspace{
		forHier: h,
		workers: opts.effectiveWorkers(),
		prec:    opts.effectivePrecision(h.levels[0].n()),
	}
	for l, lv := range h.levels {
		ws.r = append(ws.r, make([]float64, lv.n()))
		ws.z = append(ws.z, make([]float64, lv.n()))
		if l < len(h.levels)-1 {
			ws.xc = append(ws.xc, make([]float64, lv.coarseN()))
			ws.bc = append(ws.bc, make([]float64, lv.coarseN()))
		}
	}
	nz := h.levels[0].nz
	for w := 0; w < ws.workers; w++ {
		ws.lineBuf = append(ws.lineBuf, make([]float64, nz))
	}
	coarseN := h.levels[len(h.levels)-1].n()
	ws.coarse = &sparse.SSORCG{
		Tolerance:     opts.CoarseTol,
		MaxIterations: 20 * coarseN,
		Workers:       opts.Workers,
	}
	if h.coarseDirect(opts) == nil && opts.Smoother == SmootherZLine {
		ws.coarseWS = sparse.NewWorkspace(coarseN)
	}
	if ws.prec == PrecisionFloat32 {
		ws.l32 = h.float32Levels()
		n0 := h.levels[0].n()
		ws.x32 = make([]float32, n0)
		ws.b32 = make([]float32, n0)
		for l, lv := range h.levels {
			ws.r32 = append(ws.r32, make([]float32, lv.n()))
			if l < len(h.levels)-1 {
				ws.xc32 = append(ws.xc32, make([]float32, lv.coarseN()))
				ws.bc32 = append(ws.bc32, make([]float32, lv.coarseN()))
			}
		}
		for w := 0; w < ws.workers; w++ {
			ws.lineBuf32 = append(ws.lineBuf32, make([]float32, nz))
		}
		ws.coarseB = make([]float64, coarseN)
		ws.coarseX = make([]float64, coarseN)
	}
	return ws
}

// Solver is the mg-cg backend: CG preconditioned by one multigrid V-cycle.
// Like every Solver it owns reusable scratch and is NOT safe for
// concurrent use; hierarchies, in contrast, are immutable and may be
// shared across instances with SetHierarchy.
type Solver struct {
	opts  Options
	hint  sparse.GridHint
	hier  *Hierarchy
	ws    *workspace
	outer *sparse.Workspace
}

// New builds an mg-cg solver. Geometry arrives later via SetGridHint or
// SetHierarchy.
func New(opts Options) *Solver { return &Solver{opts: opts} }

// Name implements sparse.Solver.
func (s *Solver) Name() string { return sparse.BackendMGCG }

// SetGridHint implements sparse.GridSolver: it supplies the structured
// grid behind upcoming matrices. The hierarchy is (re)built lazily on the
// next Solve of a new matrix.
func (s *Solver) SetGridHint(h sparse.GridHint) { s.hint = h }

// SetHierarchy injects a prebuilt hierarchy, sharing its (immutable)
// coarse operators with other solver instances. Solves of matrices other
// than h.Fine() fall back to building from the grid hint.
func (s *Solver) SetHierarchy(h *Hierarchy) {
	if h != nil {
		s.hier = h
	}
}

// ensureHierarchy returns a hierarchy for a, building and caching one when
// the current hierarchy belongs to a different matrix.
func (s *Solver) ensureHierarchy(a *sparse.CSR) (*Hierarchy, error) {
	if s.hier != nil && s.hier.Fine() == a {
		return s.hier, nil
	}
	h, err := BuildHierarchy(a, s.hint, s.opts)
	if err != nil {
		return nil, err
	}
	s.hier = h
	return h, nil
}

// Preconditioner implements sparse.Preconditioned: it prepares the V-cycle
// for a and returns its application z = M⁻¹·r. Block solves share it
// across right-hand sides.
func (s *Solver) Preconditioner(a *sparse.CSR) (func(z, r []float64), error) {
	h, err := s.ensureHierarchy(a)
	if err != nil {
		return nil, err
	}
	opts := s.opts.withDefaults()
	if s.ws == nil || s.ws.forHier != h {
		s.ws = newWorkspace(h, opts)
	}
	ws := s.ws
	if ws.prec == PrecisionFloat32 {
		// Mixed precision: the V-cycle runs entirely in float32 (halving
		// the memory traffic of the bandwidth-bound stencil sweeps) while
		// the outer CG sees a float64 operator as usual.
		return func(z, r []float64) {
			for i, v := range r {
				ws.b32[i] = float32(v)
				ws.x32[i] = 0
			}
			h.vcycle32(ws, opts, 0, ws.x32, ws.b32)
			for i, v := range ws.x32 {
				z[i] = float64(v)
			}
		}, nil
	}
	return func(z, r []float64) {
		for i := range z {
			z[i] = 0
		}
		h.vcycle(ws, opts, 0, z, r)
	}, nil
}

// Solve implements sparse.Solver: conjugate gradient with one V-cycle per
// iteration as the preconditioner.
func (s *Solver) Solve(a *sparse.CSR, b, x []float64) (sparse.Result, error) {
	precond, err := s.Preconditioner(a)
	if err != nil {
		return sparse.Result{}, err
	}
	if s.outer == nil {
		s.outer = sparse.NewWorkspace(a.N())
	}
	return sparse.PCG(a, b, x, s.outer, precond, s.opts.Tolerance, s.opts.MaxIterations, s.opts.Workers)
}

// V-cycle phase indices for the process-wide time accounting below.
const (
	phaseSmooth   = iota
	phaseRestrict // includes the pre-restriction residual
	phaseProlong
	phaseCoarse
	numPhases
)

var phaseNanos [numPhases]atomic.Int64

// phaseAdd charges the elapsed time since start to the phase, in both
// this hierarchy's local accounting and the process-wide aggregate.
func (h *Hierarchy) phaseAdd(phase int, start time.Time) {
	d := int64(time.Since(start))
	h.phaseNanos[phase].Add(d)
	phaseNanos[phase].Add(d)
}

// PhaseStats is the cumulative process-wide wall time mg-cg V-cycles have
// spent per phase since process start, summed over every solver and
// hierarchy level. Benchmarks snapshot it before and after a timed region
// and report the Sub difference as per-phase time fractions.
type PhaseStats struct {
	// Smooth is the line/SSOR relaxation time, Restrict the residual plus
	// full-weighting restriction, Prolong the interpolation of coarse
	// corrections, Coarse the near-exact coarsest-level solves.
	Smooth, Restrict, Prolong, Coarse time.Duration
	// CoarseMode names the latched coarsest-solve tier ("sparse-chol",
	// "band-chol", "zline", "ssor"; "" while undecided) — the hierarchy's
	// own latch for Hierarchy.PhaseStats, the most recently latched one
	// process-wide for ReadPhaseStats.
	CoarseMode string
}

// ReadPhaseStats returns the current cumulative phase times. Safe for
// concurrent use.
func ReadPhaseStats() PhaseStats {
	return PhaseStats{
		Smooth:     time.Duration(phaseNanos[phaseSmooth].Load()),
		Restrict:   time.Duration(phaseNanos[phaseRestrict].Load()),
		Prolong:    time.Duration(phaseNanos[phaseProlong].Load()),
		Coarse:     time.Duration(phaseNanos[phaseCoarse].Load()),
		CoarseMode: coarseModeNames[lastCoarseMode.Load()],
	}
}

// PhaseStats returns the cumulative per-phase V-cycle wall time spent on
// this hierarchy alone, isolating one spec's solves from everything else
// running in the process. Safe for concurrent use.
func (h *Hierarchy) PhaseStats() PhaseStats {
	return PhaseStats{
		Smooth:     time.Duration(h.phaseNanos[phaseSmooth].Load()),
		Restrict:   time.Duration(h.phaseNanos[phaseRestrict].Load()),
		Prolong:    time.Duration(h.phaseNanos[phaseProlong].Load()),
		Coarse:     time.Duration(h.phaseNanos[phaseCoarse].Load()),
		CoarseMode: h.CoarseMode(),
	}
}

// Sub returns the per-phase difference p − q, for deltas across a timed
// region. The latched coarse mode is not a counter: the receiver's wins
// when set (it reflects the state at snapshot p).
func (p PhaseStats) Sub(q PhaseStats) PhaseStats {
	mode := p.CoarseMode
	if mode == "" {
		mode = q.CoarseMode
	}
	return PhaseStats{
		Smooth:     p.Smooth - q.Smooth,
		Restrict:   p.Restrict - q.Restrict,
		Prolong:    p.Prolong - q.Prolong,
		Coarse:     p.Coarse - q.Coarse,
		CoarseMode: mode,
	}
}

// Total returns the summed phase time.
func (p PhaseStats) Total() time.Duration {
	return p.Smooth + p.Restrict + p.Prolong + p.Coarse
}

// Coarse-solve tier choices (Hierarchy.coarseMode).
const (
	coarseAuto       int32 = iota // undecided — no solve has reached the coarse level yet
	coarseZLine                   // CG preconditioned by the coarse level's line relaxation
	coarseSSOR                    // plain SSOR-CG
	coarseSparseChol              // direct fill-reducing sparse Cholesky
	coarseBandChol                // direct dense-band Cholesky
)

// coarseModeNames maps the latched tier to its observable name, as
// surfaced by Hierarchy.CoarseMode, PhaseStats.CoarseMode and the serve
// layer's trace attributes.
var coarseModeNames = [...]string{
	coarseAuto:       "",
	coarseZLine:      "zline",
	coarseSSOR:       "ssor",
	coarseSparseChol: "sparse-chol",
	coarseBandChol:   "band-chol",
}

// lastCoarseMode records, process-wide, the most recently latched coarse
// tier for ReadPhaseStats (whose phase times are process aggregates too).
var lastCoarseMode atomic.Int32

// latchCoarseMode publishes the tier the first coarse solve (or factor
// build) settled on, hierarchy-wide and process-wide.
func (h *Hierarchy) latchCoarseMode(mode int32) {
	h.coarseMode.CompareAndSwap(coarseAuto, mode)
	lastCoarseMode.Store(h.coarseMode.Load())
}

// CoarseMode returns the coarse-solve tier this hierarchy has latched
// ("sparse-chol", "band-chol", "zline", "ssor"), or "" while no solve
// has decided yet. Safe for concurrent use.
func (h *Hierarchy) CoarseMode() string {
	return coarseModeNames[h.coarseMode.Load()]
}

// CoarseOperator returns the coarsest-level matrix (read-only; shared
// with the hierarchy's own solves). Benchmarks factor it directly to
// split factor time from per-solve time.
func (h *Hierarchy) CoarseOperator() *sparse.CSR {
	return h.levels[len(h.levels)-1].a
}

// CoarseOrdering returns the fill-reducing nested-dissection ordering
// the sparse-Cholesky tier uses for this hierarchy's coarsest level
// (perm[k] = cell index at permuted position k).
func (h *Hierarchy) CoarseOrdering() []int32 {
	return coarseNDOrder(h.levels[len(h.levels)-1])
}

// coarseTrialTol is the intermediate residual target of the first coarse
// solve's preconditioner race. A fixed-iteration race would mis-rank the
// candidates: CG under the line preconditioner converges superlinearly
// once it has swept the clustered part of the spectrum, so its first few
// iterations understate it. Racing to a six-order reduction samples
// enough of the spectrum to rank honestly, and the loser's work is the
// only waste — the winner's iterate warm-starts the rest of the solve.
const coarseTrialTol = 1e-6

// coarseSolve solves the coarsest-level system (near-)exactly, keeping
// the V-cycle a fixed SPD operator, walking the coarse-solve ladder:
// a direct sparse-Cholesky solve under the fill-reducing ordering where
// that factorisation fits the budget, a banded Cholesky where only the
// dense band does; otherwise CG at CoarseTol. Which
// preconditioner that CG uses under the z-line smoother — the coarse
// level's own symmetric line relaxation, or plain SSOR — depends on how
// much vertical coupling survives the lateral coarsening: on mid-size
// hierarchies the z stack still dominates and the line solve wins ~2x,
// but on the deepest (paper-resolution) hierarchies Galerkin coarsening
// has strengthened the lateral couplings enough that point-SSOR converges
// faster per unit time. There is no cheap a-priori test, so the first
// iterative coarse solve races both candidates to coarseTrialTol on the
// real RHS, latches the faster one, and finishes warm-started from the
// winner's iterate; every later solve goes straight to the latched
// choice. On the
// (unlikely) iteration-budget overrun of the iterative paths the best
// iterate is still a valid, slightly weaker preconditioner, so errors are
// deliberately dropped. x must arrive zeroed.
func (h *Hierarchy) coarseSolve(ws *workspace, opts Options, b, x []float64) {
	lv := h.levels[len(h.levels)-1]
	if chol := h.coarseDirect(opts); chol != nil {
		copy(x, b)
		chol.SolveInPlace(x)
		return
	}
	if ws.coarseWS == nil {
		h.latchCoarseMode(coarseSSOR)
		ws.coarse.Solve(lv.a, b, x) //nolint:errcheck
		return
	}
	ls := lv.ls
	precond := func(z, r []float64) {
		for i := range z {
			z[i] = 0
		}
		ls.sweepColored(z, r, ws.lineBuf, ws.workers, false)
		ls.sweepColored(z, r, ws.lineBuf, ws.workers, true)
	}
	mode := h.coarseMode.Load()
	if mode == coarseAuto {
		trialTol := math.Max(opts.CoarseTol, coarseTrialTol)
		xz := make([]float64, len(x))
		start := time.Now()
		resZ, _ := sparse.PCG(lv.a, b, xz, ws.coarseWS, precond, trialTol, 20*lv.n(), opts.Workers)
		tz := time.Since(start)
		trial := &sparse.SSORCG{Tolerance: trialTol, MaxIterations: 20 * lv.n(), Workers: opts.Workers}
		start = time.Now()
		resS, _ := trial.Solve(lv.a, b, x)
		ts := time.Since(start)
		if resZ.Converged && (!resS.Converged || tz <= ts) {
			mode = coarseZLine
			copy(x, xz)
		} else {
			mode = coarseSSOR
		}
		// First decision wins hierarchy-wide (concurrent solvers may race
		// the trial; any winner is a sound choice). This call proceeds on
		// its own verdict either way, warm-started from the winner's
		// iterate.
		h.latchCoarseMode(mode)
	}
	if mode == coarseZLine {
		sparse.PCG(lv.a, b, x, ws.coarseWS, precond, opts.CoarseTol, 20*lv.n(), opts.Workers) //nolint:errcheck
		return
	}
	ws.coarse.Solve(lv.a, b, x) //nolint:errcheck
}

// vcycle runs one V-cycle on level l, improving x (which must arrive
// zeroed at preconditioner entry) towards A·x = b.
func (h *Hierarchy) vcycle(ws *workspace, opts Options, l int, x, b []float64) {
	lv := h.levels[l]
	if l == len(h.levels)-1 {
		start := time.Now()
		h.coarseSolve(ws, opts, b, x)
		h.phaseAdd(phaseCoarse, start)
		return
	}
	r, z := ws.r[l], ws.z[l]
	// smooth runs opts.Smooth symmetric relaxation passes on x. The z-line
	// smoother operates on A·x = b directly (each pass is a forward plus a
	// backward line Gauss–Seidel sweep — red-black colour order on the
	// worker pool by default, serial lexicographic order with OrderingLex —
	// either way symmetric); the SSOR smoother is applied in
	// residual-correction form. Pre- and post-smoothing use the identical
	// symmetric operation, keeping the V-cycle an SPD preconditioner.
	smooth := func(first bool) {
		start := time.Now()
		defer h.phaseAdd(phaseSmooth, start)
		for sweep := 0; sweep < opts.Smooth; sweep++ {
			if opts.Smoother == SmootherZLine {
				if opts.Ordering == OrderingLex {
					lv.ls.sweepLex(x, b, ws.lineBuf[0], false)
					lv.ls.sweepLex(x, b, ws.lineBuf[0], true)
				} else {
					lv.ls.sweepColored(x, b, ws.lineBuf, ws.workers, false)
					lv.ls.sweepColored(x, b, ws.lineBuf, ws.workers, true)
				}
				continue
			}
			if first && sweep == 0 {
				// x starts at zero, so the first residual is b itself.
				lv.a.SSORApply(z, b, lv.diag, opts.Omega)
				copy(x, z)
				continue
			}
			lv.residual(r, b, x, opts.Workers)
			lv.a.SSORApply(z, r, lv.diag, opts.Omega)
			for i := range x {
				x[i] += z[i]
			}
		}
	}
	smooth(true)
	// Coarse-grid correction, visited γ times (V- or W-cycle).
	xc, bc := ws.xc[l], ws.bc[l]
	for visit := 0; visit < opts.Cycle; visit++ {
		start := time.Now()
		lv.residual(r, b, x, opts.Workers)
		lv.restrict(bc, r)
		h.phaseAdd(phaseRestrict, start)
		for i := range xc {
			xc[i] = 0
		}
		h.vcycle(ws, opts, l+1, xc, bc)
		start = time.Now()
		lv.prolongAdd(x, xc)
		h.phaseAdd(phaseProlong, start)
	}
	smooth(false)
}

// vcycle32 is the single-precision V-cycle: smoothing, residuals and
// transfers run in float32 on the mirrored levels. When the
// sparse-Cholesky tier is latched its float32 factor mirror solves the
// coarsest level in-cycle (the factor is exact, so the mirror's rounding
// matches the rest of the float32 cycle); the banded and iterative tiers
// stay float64, staged through ws.coarseB/coarseX, anchoring the cycle.
// Only the z-line smoother has a float32 path — effectivePrecision
// forces float64 for SSOR.
func (h *Hierarchy) vcycle32(ws *workspace, opts Options, l int, x, b []float32) {
	if l == len(h.levels)-1 {
		if c32 := h.coarseDirect32(opts); c32 != nil {
			start := time.Now()
			copy(x, b)
			c32.SolveInPlace(x)
			h.phaseAdd(phaseCoarse, start)
			return
		}
		start := time.Now()
		for i, v := range b {
			ws.coarseB[i] = float64(v)
		}
		for i := range ws.coarseX {
			ws.coarseX[i] = 0
		}
		h.coarseSolve(ws, opts, ws.coarseB, ws.coarseX)
		for i, v := range ws.coarseX {
			x[i] = float32(v)
		}
		h.phaseAdd(phaseCoarse, start)
		return
	}
	lv, lv32 := h.levels[l], ws.l32[l]
	r := ws.r32[l]
	smooth := func() {
		start := time.Now()
		defer h.phaseAdd(phaseSmooth, start)
		for sweep := 0; sweep < opts.Smooth; sweep++ {
			if opts.Ordering == OrderingLex {
				lv32.ls.sweepLex(x, b, ws.lineBuf32[0], false)
				lv32.ls.sweepLex(x, b, ws.lineBuf32[0], true)
			} else {
				lv32.ls.sweepColored(x, b, ws.lineBuf32, ws.workers, false)
				lv32.ls.sweepColored(x, b, ws.lineBuf32, ws.workers, true)
			}
		}
	}
	smooth()
	xc, bc := ws.xc32[l], ws.bc32[l]
	for visit := 0; visit < opts.Cycle; visit++ {
		start := time.Now()
		lv32.a.MulVecN(r, x, opts.Workers)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		lv.restrict32(bc, r)
		h.phaseAdd(phaseRestrict, start)
		for i := range xc {
			xc[i] = 0
		}
		h.vcycle32(ws, opts, l+1, xc, bc)
		start = time.Now()
		lv.prolongAdd32(x, xc)
		h.phaseAdd(phaseProlong, start)
	}
	smooth()
}

// residual computes r = b − A·x.
func (lv *level) residual(r, b, x []float64, workers int) {
	lv.a.MulVecN(r, x, workers)
	for i := range r {
		r[i] = b[i] - r[i]
	}
}
