package mg

import (
	"math"
	"math/rand"
	"testing"

	"vcselnoc/internal/sparse"
)

// uniformLines returns n+1 evenly spaced grid lines over [0, span].
func uniformLines(n int, span float64) []float64 {
	lines := make([]float64, n+1)
	for i := range lines {
		lines[i] = span * float64(i) / float64(n)
	}
	return lines
}

// buildHeatSystem assembles the 7-point FVM conduction operator on the
// given grid lines with a high-conductivity slab in the middle z layers
// (exercising the material discontinuities Galerkin coarsening must
// carry) and Robin-like diagonal shifts on the z faces to pin the
// temperature level — the same structure fvm.Problem.assemble produces.
func buildHeatSystem(t testing.TB, xl, yl, zl []float64) (*sparse.CSR, sparse.GridHint) {
	t.Helper()
	nx, ny, nz := len(xl)-1, len(yl)-1, len(zl)-1
	n := nx * ny * nz
	cond := func(k int) float64 {
		if k >= nz/3 && k < 2*nz/3 {
			return 120 // copper-like slab
		}
		return 1.2 // BCB-like background
	}
	cx, cy, cz := centersOf(xl), centersOf(yl), centersOf(zl)
	_ = cx
	_ = cy
	dx := func(i int) float64 { return xl[i+1] - xl[i] }
	dy := func(j int) float64 { return yl[j+1] - yl[j] }
	dz := func(k int) float64 { return zl[k+1] - zl[k] }
	_ = cz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	face := func(d1, k1, d2, k2, area float64) float64 {
		return area / (0.5*d1/k1 + 0.5*d2/k2)
	}
	a := sparse.NewCOO(n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				c := idx(i, j, k)
				kc := cond(k)
				diag := 0.0
				couple := func(o int, g float64) {
					a.Add(c, o, -g)
					diag += g
				}
				if i > 0 {
					couple(idx(i-1, j, k), face(dx(i), kc, dx(i-1), kc, dy(j)*dz(k)))
				}
				if i < nx-1 {
					couple(idx(i+1, j, k), face(dx(i), kc, dx(i+1), kc, dy(j)*dz(k)))
				}
				if j > 0 {
					couple(idx(i, j-1, k), face(dy(j), kc, dy(j-1), kc, dx(i)*dz(k)))
				}
				if j < ny-1 {
					couple(idx(i, j+1, k), face(dy(j), kc, dy(j+1), kc, dx(i)*dz(k)))
				}
				if k > 0 {
					couple(idx(i, j, k-1), face(dz(k), kc, dz(k-1), cond(k-1), dx(i)*dy(j)))
				}
				if k < nz-1 {
					couple(idx(i, j, k+1), face(dz(k), kc, dz(k+1), cond(k+1), dx(i)*dy(j)))
				}
				if k == 0 || k == nz-1 {
					diag += 15 * dx(i) * dy(j) // convection-like pinning
				}
				a.Add(c, c, diag)
			}
		}
	}
	return a.ToCSR(), sparse.GridHint{X: xl, Y: yl, Z: zl}
}

func randRHS(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

func relDiff(x, y []float64) float64 {
	var maxD, maxY float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > maxD {
			maxD = d
		}
		if a := math.Abs(y[i]); a > maxY {
			maxY = a
		}
	}
	if maxY == 0 {
		return maxD
	}
	return maxD / maxY
}

// TestRegistered: linking this package must make mg-cg listable and
// constructible through the sparse registry with the right name.
func TestRegistered(t *testing.T) {
	found := false
	for _, b := range sparse.Backends() {
		if b == sparse.BackendMGCG {
			found = true
		}
	}
	if !found {
		t.Fatal("mg-cg missing from sparse.Backends()")
	}
	for _, backend := range sparse.Backends() {
		s, err := sparse.NewSolver(backend)
		if err != nil {
			t.Errorf("backend %s failed to construct: %v", backend, err)
			continue
		}
		if s.Name() != backend {
			t.Errorf("backend %s constructs solver named %s", backend, s.Name())
		}
	}
}

// TestHierarchyInvariants: semicoarsening must shrink the lateral grid
// geometrically, keep z intact, and keep every Galerkin operator
// symmetric with positive diagonals.
func TestHierarchyInvariants(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(24, 1), uniformLines(20, 1), uniformLines(7, 0.1))
	h, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() < 3 {
		t.Fatalf("depth %d, want ≥ 3 on a 24×20×7 grid", h.Depth())
	}
	if h.Fine() != a {
		t.Error("Fine() must return the input matrix")
	}
	for l, lv := range h.levels {
		if lv.nz != 7 {
			t.Errorf("level %d: z coarsened to %d layers", l, lv.nz)
		}
		if !lv.a.IsSymmetric(1e-9 * lv.a.At(0, 0)) {
			t.Errorf("level %d operator is not symmetric", l)
		}
		for i := 0; i < lv.a.N(); i++ {
			if lv.a.At(i, i) <= 0 {
				t.Fatalf("level %d: non-positive diagonal at %d", l, i)
			}
		}
		if l > 0 {
			prev := h.levels[l-1]
			if lv.n() >= prev.n() {
				t.Errorf("level %d did not shrink: %d vs %d", l, lv.n(), prev.n())
			}
		}
	}
}

// TestGalerkinMatchesExplicitTripleProduct verifies A_c = Pᵀ·A·P entry by
// entry on a small grid, with P materialised densely from the axis maps.
func TestGalerkinMatchesExplicitTripleProduct(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(6, 1), uniformLines(5, 1), uniformLines(3, 0.1))
	h, err := BuildHierarchy(a, hint, Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 2 {
		t.Fatalf("depth %d, want 2", h.Depth())
	}
	lv := h.levels[0]
	nf, nc := lv.n(), h.levels[1].n()
	nxc, nyc := lv.ix.nc, lv.iy.nc
	// Dense P from the tensor maps.
	p := make([][]float64, nf)
	for fk := 0; fk < lv.nz; fk++ {
		for fj := 0; fj < lv.ny; fj++ {
			for fi := 0; fi < lv.nx; fi++ {
				f := (fk*lv.ny+fj)*lv.nx + fi
				p[f] = make([]float64, nc)
				addX := func(zj, yj int, wzy float64) {
					p[f][(zj*nyc+yj)*nxc+int(lv.ix.lo[fi])] += wzy * lv.ix.wlo[fi]
					if lv.ix.whi[fi] != 0 {
						p[f][(zj*nyc+yj)*nxc+int(lv.ix.hi[fi])] += wzy * lv.ix.whi[fi]
					}
				}
				addY := func(zj int, wz float64) {
					addX(zj, int(lv.iy.lo[fj]), wz*lv.iy.wlo[fj])
					if lv.iy.whi[fj] != 0 {
						addX(zj, int(lv.iy.hi[fj]), wz*lv.iy.whi[fj])
					}
				}
				addY(int(lv.iz.lo[fk]), lv.iz.wlo[fk])
				if lv.iz.whi[fk] != 0 {
					addY(int(lv.iz.hi[fk]), lv.iz.whi[fk])
				}
			}
		}
	}
	// Dense Pᵀ·A·P.
	want := make([][]float64, nc)
	for i := range want {
		want[i] = make([]float64, nc)
	}
	for r := 0; r < nf; r++ {
		rc, rv := a.Row(r)
		for p1, w1 := range p[r] {
			if w1 == 0 {
				continue
			}
			for e := range rc {
				for p2, w2 := range p[int(rc[e])] {
					if w2 != 0 {
						want[p1][p2] += w1 * rv[e] * w2
					}
				}
			}
		}
	}
	got := h.levels[1].a
	var scale float64
	for i := 0; i < nc; i++ {
		if v := math.Abs(want[i][i]); v > scale {
			scale = v
		}
	}
	for i := 0; i < nc; i++ {
		for j := 0; j < nc; j++ {
			if d := math.Abs(got.At(i, j) - want[i][j]); d > 1e-12*scale {
				t.Fatalf("A_c(%d,%d) = %g, want %g", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

// TestTransferAdjoint: restriction must be the exact transpose of
// prolongation — ⟨P·xc, r⟩ = ⟨xc, Pᵀ·r⟩ — or the V-cycle loses symmetry
// and CG its convergence guarantee.
func TestTransferAdjoint(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(11, 1), uniformLines(9, 1), uniformLines(4, 0.1))
	h, err := BuildHierarchy(a, hint, Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	lv := h.levels[0]
	nf, nc := lv.n(), h.levels[1].n()
	xc := randRHS(nc, 1)
	r := randRHS(nf, 2)
	px := make([]float64, nf)
	lv.prolongAdd(px, xc)
	ptr := make([]float64, nc)
	lv.restrict(ptr, r)
	lhs := sparse.Dot(px, r)
	rhs := sparse.Dot(xc, ptr)
	if math.Abs(lhs-rhs) > 1e-10*math.Max(math.Abs(lhs), 1) {
		t.Fatalf("transfer operators are not adjoint: %g vs %g", lhs, rhs)
	}
}

// TestMGCGMatchesJacobiCG: the new backend must land on the same solution
// as the reference backend on a discontinuous-material system.
func TestMGCGMatchesJacobiCG(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(20, 1), uniformLines(18, 1), uniformLines(6, 0.1))
	b := randRHS(a.N(), 42)
	ref, _, err := sparse.SolveCG(a, b, sparse.CGOptions{Tolerance: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{Tolerance: 1e-10})
	s.SetGridHint(hint)
	x := make([]float64, a.N())
	res, err := s.Solve(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("mg-cg did not converge")
	}
	if d := relDiff(x, ref); d > 1e-6 {
		t.Errorf("mg-cg vs jacobi-cg rel diff %.2e > 1e-6", d)
	}
}

// TestMGIterationsMeshIndependent is the property the backend exists for:
// doubling the lateral resolution twice must leave the CG iteration count
// within a narrow band, while unpreconditioned-in-h backends degrade.
func TestMGIterationsMeshIndependent(t *testing.T) {
	sizes := []int{16, 32, 64}
	var iters []int
	for _, nxy := range sizes {
		a, hint := buildHeatSystem(t, uniformLines(nxy, 1), uniformLines(nxy, 1), uniformLines(6, 0.1))
		s := New(Options{Tolerance: 1e-9})
		s.SetGridHint(hint)
		x := make([]float64, a.N())
		res, err := s.Solve(a, randRHS(a.N(), 9), x)
		if err != nil {
			t.Fatalf("n=%d: %v", nxy, err)
		}
		iters = append(iters, res.Iterations)
	}
	t.Logf("mg-cg iterations across %v lateral cells: %v", sizes, iters)
	for i := 1; i < len(iters); i++ {
		if float64(iters[i]) > 1.5*float64(iters[0])+2 {
			t.Errorf("iteration count grew from %d to %d between refinements — not mesh independent",
				iters[0], iters[i])
		}
	}
}

// TestSharedHierarchy: two solver instances sharing one hierarchy must
// reproduce the fresh-build solution exactly — the contract batched and
// blocked multi-RHS solves rely on.
func TestSharedHierarchy(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(14, 1), uniformLines(12, 1), uniformLines(5, 0.1))
	b := randRHS(a.N(), 4)
	h, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(Options{})
	fresh.SetGridHint(hint)
	want := make([]float64, a.N())
	if _, err := fresh.Solve(a, b, want); err != nil {
		t.Fatal(err)
	}
	for inst := 0; inst < 2; inst++ {
		s := New(Options{})
		s.SetHierarchy(h) // no grid hint at all: the hierarchy is enough
		got := make([]float64, a.N())
		if _, err := s.Solve(a, b, got); err != nil {
			t.Fatalf("instance %d: %v", inst, err)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("instance %d: shared hierarchy changed the solution at %d", inst, i)
			}
		}
	}
}

// TestConfigKnobs: the registry factory must thread the MG knobs through,
// and each knob must still converge to the right answer.
func TestConfigKnobs(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(16, 1), uniformLines(16, 1), uniformLines(5, 0.1))
	b := randRHS(a.N(), 11)
	ref, _, err := sparse.SolveCG(a, b, sparse.CGOptions{Tolerance: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []sparse.Config{
		{Backend: sparse.BackendMGCG},
		{Backend: sparse.BackendMGCG, MGLevels: 2},
		{Backend: sparse.BackendMGCG, MGSmooth: 2},
		{Backend: sparse.BackendMGCG, Omega: 1.4, MGCoarseTol: 1e-10},
	} {
		solver, err := cfg.New()
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		gs, ok := solver.(sparse.GridSolver)
		if !ok {
			t.Fatal("mg-cg must implement sparse.GridSolver")
		}
		gs.SetGridHint(hint)
		x := make([]float64, a.N())
		if _, err := solver.Solve(a, b, x); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		if d := relDiff(x, ref); d > 1e-6 {
			t.Errorf("%+v: rel diff %.2e", cfg, d)
		}
	}
}

// TestErrors: solving without geometry, or with geometry that does not
// match the matrix, must fail with a descriptive error.
func TestErrors(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(8, 1), uniformLines(8, 1), uniformLines(4, 0.1))
	s := New(Options{})
	x := make([]float64, a.N())
	if _, err := s.Solve(a, randRHS(a.N(), 1), x); err == nil {
		t.Error("solve without a grid hint should error")
	}
	s.SetGridHint(sparse.GridHint{X: hint.X, Y: hint.Y, Z: uniformLines(5, 0.1)})
	if _, err := s.Solve(a, randRHS(a.N(), 1), x); err == nil {
		t.Error("mismatched grid hint should error")
	}
	if _, err := BuildHierarchy(a, sparse.GridHint{}, Options{}); err == nil {
		t.Error("empty hint should error")
	}
}

// TestWarmStart: seeding x with the solution must converge immediately.
func TestWarmStart(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(12, 1), uniformLines(12, 1), uniformLines(5, 0.1))
	b := randRHS(a.N(), 13)
	s := New(Options{})
	s.SetGridHint(hint)
	x := make([]float64, a.N())
	cold, err := s.Solve(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations/2+1 {
		t.Errorf("warm start took %d iterations vs cold %d", warm.Iterations, cold.Iterations)
	}
}
