package mg

import (
	"math"
	"testing"

	"vcselnoc/internal/sparse"
)

// shiftVector builds a positive diagonal shift shaped like an
// implicit-Euler capacity term C/dt: proportional to cell volume with a
// material contrast in the middle z band.
func shiftVector(xl, yl, zl []float64) []float64 {
	nx, ny, nz := len(xl)-1, len(yl)-1, len(zl)-1
	d := make([]float64, nx*ny*nz)
	for k := 0; k < nz; k++ {
		rc := 1.6e6
		if k >= nz/3 && k < 2*nz/3 {
			rc = 3.4e6
		}
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				vol := (xl[i+1] - xl[i]) * (yl[j+1] - yl[j]) * (zl[k+1] - zl[k])
				// A long dt keeps the shift comparable to the conduction
				// couplings, so the V-cycle still has real work to do.
				d[(k*ny+j)*nx+i] = rc * vol / 5e4
			}
		}
	}
	return d
}

// TestShiftedHierarchyInvariants: a shifted hierarchy must share the
// steady hierarchy's transfer operators and geometry, keep every level
// symmetric with positive diagonals, and carry the exact shifted fine
// matrix at level 0 when one is supplied.
func TestShiftedHierarchyInvariants(t *testing.T) {
	xl, yl, zl := uniformLines(24, 1), uniformLines(20, 1), uniformLines(7, 0.1)
	a, hint := buildHeatSystem(t, xl, yl, zl)
	steady, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	shift := shiftVector(xl, yl, zl)
	fine := sparse.AddDiagonal(a, shift)
	sh, err := steady.Shifted(fine, shift)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Depth() != steady.Depth() {
		t.Fatalf("shifted depth %d != steady depth %d", sh.Depth(), steady.Depth())
	}
	if sh.Fine() != fine {
		t.Error("Shifted must adopt the supplied fine matrix")
	}
	for l, lv := range sh.levels {
		st := steady.levels[l]
		if lv.ix != st.ix || lv.iy != st.iy || lv.iz != st.iz {
			t.Errorf("level %d: transfer operators not shared with the steady hierarchy", l)
		}
		if lv.nx != st.nx || lv.ny != st.ny || lv.nz != st.nz {
			t.Errorf("level %d: geometry changed", l)
		}
		if !lv.a.IsSymmetric(1e-9 * lv.a.At(0, 0)) {
			t.Errorf("level %d: shifted operator not symmetric", l)
		}
		for i := 0; i < lv.a.N(); i++ {
			if lv.a.At(i, i) <= st.a.At(i, i) {
				t.Fatalf("level %d row %d: shifted diagonal %g not above steady %g",
					l, i, lv.a.At(i, i), st.a.At(i, i))
			}
		}
	}
}

// TestShiftedHierarchySolves: CG preconditioned by the shifted V-cycle
// must land on the reference solution of A + diag(shift) and converge in
// about as few iterations as a hierarchy rebuilt from scratch for the
// shifted matrix — the property that lets transient steps reuse the
// steady Galerkin setup.
func TestShiftedHierarchySolves(t *testing.T) {
	xl, yl, zl := uniformLines(32, 1), uniformLines(28, 1), uniformLines(6, 0.1)
	a, hint := buildHeatSystem(t, xl, yl, zl)
	shift := shiftVector(xl, yl, zl)
	fine := sparse.AddDiagonal(a, shift)
	b := randRHS(a.N(), 17)
	ref, _, err := sparse.SolveCG(fine, b, sparse.CGOptions{Tolerance: 1e-11})
	if err != nil {
		t.Fatal(err)
	}

	steady, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := steady.Shifted(fine, shift)
	if err != nil {
		t.Fatal(err)
	}
	shared := New(Options{Tolerance: 1e-10})
	shared.SetHierarchy(sh)
	got := make([]float64, a.N())
	res, err := shared.Solve(fine, b, got)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("shifted mg-cg did not converge")
	}
	if d := relDiff(got, ref); d > 1e-6 {
		t.Errorf("shifted mg-cg vs jacobi-cg rel diff %.2e > 1e-6", d)
	}

	rebuilt := New(Options{Tolerance: 1e-10})
	rebuilt.SetGridHint(hint)
	x := make([]float64, a.N())
	full, err := rebuilt.Solve(fine, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > full.Iterations+2 {
		t.Errorf("shifted hierarchy took %d iterations vs %d for a full rebuild",
			res.Iterations, full.Iterations)
	}
	t.Logf("shifted %d iterations, full rebuild %d", res.Iterations, full.Iterations)
}

// TestShiftedErrors: bad shift vectors and size mismatches must refuse.
func TestShiftedErrors(t *testing.T) {
	a, hint := buildHeatSystem(t, uniformLines(8, 1), uniformLines(8, 1), uniformLines(4, 0.1))
	h, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Shifted(nil, make([]float64, 3)); err == nil {
		t.Error("wrong shift length should error")
	}
	bad := make([]float64, a.N())
	bad[5] = -1
	if _, err := h.Shifted(nil, bad); err == nil {
		t.Error("negative shift should error")
	}
	bad[5] = math.NaN()
	if _, err := h.Shifted(nil, bad); err == nil {
		t.Error("NaN shift should error")
	}
	if _, err := h.Shifted(sparse.NewCOO(3).ToCSR(), make([]float64, a.N())); err == nil {
		t.Error("mismatched fine matrix should error")
	}
}
