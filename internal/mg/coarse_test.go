package mg

import (
	"sync"
	"testing"

	"vcselnoc/internal/sparse"
)

// TestCoarseSolverAgreement checks the three tiers of the coarse-solve
// ladder against each other on a graded floorplan mesh: the sparse
// Cholesky, the banded Cholesky and the tightly converged iterative
// reference must agree on the coarsest-level solution.
func TestCoarseSolverAgreement(t *testing.T) {
	h, _, _ := testHierarchy(t)
	lv := h.levels[len(h.levels)-1]
	b := randRHS(lv.n(), 41)

	sp, err := sparse.NewSparseCholesky(lv.a, coarseNDOrder(lv), defaultCoarseBudget)
	if err != nil {
		t.Fatal(err)
	}
	xs := append([]float64(nil), b...)
	sp.SolveInPlace(xs)

	bd, err := sparse.NewBandCholesky(lv.a, defaultCoarseBudget)
	if err != nil {
		t.Fatal(err)
	}
	xb := append([]float64(nil), b...)
	bd.SolveInPlace(xb)

	ref := make([]float64, lv.n())
	ssor := &sparse.SSORCG{Tolerance: 1e-13, MaxIterations: 100 * lv.n()}
	if _, err := ssor.Solve(lv.a, b, ref); err != nil {
		t.Fatal(err)
	}

	if rd := relDiff(xs, xb); rd > 1e-9 {
		t.Fatalf("sparse and band coarse solutions differ: rel diff %g", rd)
	}
	if rd := relDiff(xs, ref); rd > 1e-8 {
		t.Fatalf("sparse and iterative coarse solutions differ: rel diff %g", rd)
	}
}

// TestCoarseOrderingRoundTrip validates the nested-dissection ordering:
// a genuine permutation whose factorisation solves back in original cell
// order, and with no more fill than the natural ordering.
func TestCoarseOrderingRoundTrip(t *testing.T) {
	h, _, _ := testHierarchy(t)
	lv := h.levels[len(h.levels)-1]
	perm := h.CoarseOrdering()
	seen := make([]bool, lv.n())
	if len(perm) != lv.n() {
		t.Fatalf("ordering has %d entries, want %d", len(perm), lv.n())
	}
	for _, o := range perm {
		if o < 0 || int(o) >= lv.n() || seen[o] {
			t.Fatalf("ordering is not a permutation (entry %d)", o)
		}
		seen[o] = true
	}
	ident := make([]int32, lv.n())
	for i := range ident {
		ident[i] = int32(i)
	}
	nd, err := sparse.NewSparseCholesky(lv.a, perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := sparse.NewSparseCholesky(lv.a, ident, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := randRHS(lv.n(), 43)
	xnd := append([]float64(nil), b...)
	xnat := append([]float64(nil), b...)
	nd.SolveInPlace(xnd)
	nat.SolveInPlace(xnat)
	if rd := relDiff(xnd, xnat); rd > 1e-9 {
		t.Fatalf("ND-ordered and naturally ordered solutions differ: rel diff %g", rd)
	}
}

// TestCoarseNDOrderingReducesFill pins the point of the fill-reducing
// ordering: on a realistically sized coarse level (large lateral plane,
// short z) nested dissection must produce strictly less fill than the
// natural z-major ordering. (On tiny lateral planes the natural band
// ordering can win — that is fine; the direct tiers fit either way.)
func TestCoarseNDOrderingReducesFill(t *testing.T) {
	xl := uniformLines(48, 2)
	yl := uniformLines(40, 2)
	zl := uniformLines(9, 3)
	a, hint := buildHeatSystem(t, xl, yl, zl)
	h, err := BuildHierarchy(a, hint, Options{Levels: 2})
	if err != nil {
		t.Fatal(err)
	}
	lv := h.levels[len(h.levels)-1]
	perm := coarseNDOrder(lv)
	ndFill, err := sparse.SparseCholeskyCount(lv.a, perm, 0)
	if err != nil {
		t.Fatal(err)
	}
	ident := make([]int32, lv.n())
	for i := range ident {
		ident[i] = int32(i)
	}
	natFill, err := sparse.SparseCholeskyCount(lv.a, ident, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coarse level n=%d: ND fill %d vs natural fill %d", lv.n(), ndFill, natFill)
	if ndFill >= natFill {
		t.Fatalf("nested-dissection fill %d does not beat natural-ordering fill %d on a %d-cell coarse level", ndFill, natFill, lv.n())
	}
}

// TestCoarseFactorSharedOnce hammers the factorisation latch: many
// goroutines racing coarseDirect on one hierarchy must all observe the
// same single factorisation (run under -race in CI).
func TestCoarseFactorSharedOnce(t *testing.T) {
	h, _, _ := testHierarchy(t)
	opts := Options{}.withDefaults()
	const goroutines = 16
	factors := make([]coarseFactor, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			factors[g] = h.coarseDirect(opts)
		}(g)
	}
	wg.Wait()
	if factors[0] == nil {
		t.Fatal("coarse factorisation unexpectedly unavailable")
	}
	for g := 1; g < goroutines; g++ {
		if factors[g] != factors[0] {
			t.Fatalf("goroutine %d saw a different factorisation", g)
		}
	}
	if mode := h.CoarseMode(); mode != "sparse-chol" {
		t.Fatalf("latched coarse mode %q, want sparse-chol", mode)
	}
}

// TestCoarseSolversShareFactorisation runs concurrent full solves
// against one shared hierarchy and checks they all land on the same
// latched tier with identical solutions (the -race hammer for the
// solver-facing path).
func TestCoarseSolversShareFactorisation(t *testing.T) {
	h, a, hint := testHierarchy(t)
	b := randRHS(a.N(), 47)
	const goroutines = 8
	sols := make([][]float64, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(Options{Workers: 2})
			s.SetGridHint(hint)
			s.SetHierarchy(h)
			x := make([]float64, a.N())
			_, errs[g] = s.Solve(a, b, x)
			sols[g] = x
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
	}
	if mode := h.CoarseMode(); mode != "sparse-chol" {
		t.Fatalf("latched coarse mode %q, want sparse-chol", mode)
	}
	for g := 1; g < goroutines; g++ {
		if rd := relDiff(sols[g], sols[0]); rd > 1e-7 {
			t.Fatalf("goroutine %d solution differs: rel diff %g", g, rd)
		}
	}
}

// TestCoarseSolverForced pins the CoarseSolver knob: each forced tier
// must latch its own mode and still converge to the same solution.
func TestCoarseSolverForced(t *testing.T) {
	_, a, hint := testHierarchy(t)
	b := randRHS(a.N(), 53)
	var ref []float64
	for _, tc := range []struct {
		force string
		mode  string
	}{
		{CoarseSolverSparse, "sparse-chol"},
		{CoarseSolverBand, "band-chol"},
		{CoarseSolverIterative, "zline"},
	} {
		s := New(Options{CoarseSolver: tc.force})
		s.SetGridHint(hint)
		x := make([]float64, a.N())
		res, err := s.Solve(a, b, x)
		if err != nil {
			t.Fatalf("%s: %v", tc.force, err)
		}
		if !res.Converged {
			t.Fatalf("%s: solve did not converge", tc.force)
		}
		if mode := s.hier.CoarseMode(); mode != tc.mode {
			t.Fatalf("%s: latched coarse mode %q, want %q", tc.force, mode, tc.mode)
		}
		if ref == nil {
			ref = x
		} else if rd := relDiff(x, ref); rd > 1e-7 {
			t.Fatalf("%s: solution differs from sparse tier: rel diff %g", tc.force, rd)
		}
	}
}

// TestCoarseBudgetKnob pins the CoarseDirectBudget plumbing: a negative
// budget disables the direct tiers, a tiny one refuses both
// factorisations, and the default accepts.
func TestCoarseBudgetKnob(t *testing.T) {
	h, a, hint := testHierarchy(t)
	if f := h.coarseDirect(Options{CoarseDirectBudget: -1}.withDefaults()); f != nil {
		t.Fatal("negative budget should disable the direct tiers")
	}
	if mode := h.CoarseMode(); mode != "" {
		t.Fatalf("mode latched to %q before any solve", mode)
	}
	h2, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := h2.coarseDirect(Options{CoarseDirectBudget: 10}.withDefaults()); f != nil {
		t.Fatal("a 10-entry budget should refuse both factorisations")
	}
	h3, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f := h3.coarseDirect(Options{}.withDefaults()); f == nil {
		t.Fatal("default budget should factor the test hierarchy")
	}
}

// TestCoarseRebalance pins the opt-in extra-coarsening knob: with a
// budget too small for the regular coarsest level, rebalancing must
// append aggressively merged levels until the factorisation fits, and
// the solve must still converge quickly to the right answer.
func TestCoarseRebalance(t *testing.T) {
	_, a, hint := testHierarchy(t)
	base, err := BuildHierarchy(a, hint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lv := base.levels[len(base.levels)-1]
	fill, err := sparse.SparseCholeskyCount(lv.a, coarseNDOrder(lv), 0)
	if err != nil {
		t.Fatal(err)
	}
	budget := fill / 2 // too small for the regular coarsest level
	opts := Options{CoarseDirectBudget: budget, CoarseRebalance: true}
	reb, err := BuildHierarchy(a, hint, opts)
	if err != nil {
		t.Fatal(err)
	}
	if reb.Depth() <= base.Depth() {
		t.Fatalf("rebalance did not deepen the hierarchy (depth %d vs %d)", reb.Depth(), base.Depth())
	}
	if f := reb.coarseDirect(opts.withDefaults()); f == nil {
		t.Fatal("rebalanced coarsest level still over budget")
	}
	if mode := reb.CoarseMode(); mode != "sparse-chol" {
		t.Fatalf("latched coarse mode %q, want sparse-chol", mode)
	}
	// The rebalanced hierarchy must still precondition well.
	b := randRHS(a.N(), 59)
	s := New(opts)
	s.SetGridHint(hint)
	s.SetHierarchy(reb)
	x := make([]float64, a.N())
	res, err := s.Solve(a, b, x)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("rebalanced solve did not converge")
	}
	sRef := New(Options{})
	sRef.SetGridHint(hint)
	xRef := make([]float64, a.N())
	resRef, err := sRef.Solve(a, b, xRef)
	if err != nil {
		t.Fatal(err)
	}
	if rd := relDiff(x, xRef); rd > 1e-7 {
		t.Fatalf("rebalanced solution differs: rel diff %g", rd)
	}
	if res.Iterations > 2*resRef.Iterations+2 {
		t.Fatalf("rebalanced solve needs %d iterations vs %d baseline — coarse level too weak", res.Iterations, resRef.Iterations)
	}
}
