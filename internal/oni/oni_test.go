package oni

import (
	"math"
	"testing"

	"vcselnoc/internal/geom"
)

func site() geom.Rect {
	return geom.CenteredRect(0, 0, 360e-6, 200e-6)
}

func TestGenerateChessboard(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(l.VCSELs) != 16 || len(l.MRs) != 16 || len(l.PDs) != 16 {
		t.Fatalf("counts: %d VCSELs, %d MRs, %d PDs", len(l.VCSELs), len(l.MRs), len(l.PDs))
	}
	if len(l.Waveguides) != 4 {
		t.Fatalf("%d waveguides", len(l.Waveguides))
	}
	if len(l.Drivers) != 16 || len(l.Receivers) != 16 || len(l.Heaters) != 16 {
		t.Fatal("electrical/heater counts wrong")
	}
}

func TestChessboardAlternation(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	// Build per-waveguide slot occupancy.
	kind := make(map[[2]int]Kind)
	for _, v := range l.VCSELs {
		kind[[2]int{v.Waveguide, v.Slot}] = KindVCSEL
	}
	for _, m := range l.MRs {
		kind[[2]int{m.Waveguide, m.Slot}] = KindMR
	}
	for wg := 0; wg < 4; wg++ {
		for slot := 0; slot < 7; slot++ {
			a := kind[[2]int{wg, slot}]
			b := kind[[2]int{wg, slot + 1}]
			if a == b {
				t.Errorf("wg %d slots %d,%d both %v (chessboard must alternate)", wg, slot, slot+1, a)
			}
		}
	}
	// Adjacent rows staggered: slot 0 of row 0 and row 1 differ.
	if kind[[2]int{0, 0}] == kind[[2]int{1, 0}] {
		t.Error("rows not staggered")
	}
}

func TestClusteredLayout(t *testing.T) {
	l, err := Generate(site(), Clustered)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// All transmitters left of all receivers within each waveguide.
	for wg := 0; wg < 4; wg++ {
		var maxTX, minRX float64 = -1, 2
		for _, v := range l.VCSELs {
			if v.Waveguide == wg {
				cx, _ := v.Rect.Center()
				if cx > maxTX {
					maxTX = cx
				}
			}
		}
		for _, m := range l.MRs {
			if m.Waveguide == wg {
				cx, _ := m.Rect.Center()
				if cx < minRX {
					minRX = cx
				}
			}
		}
		if maxTX >= minRX {
			t.Errorf("wg %d: TX at %g not left of RX at %g", wg, maxTX, minRX)
		}
	}
}

func TestDeviceFootprints(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	approx := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }
	for _, v := range l.VCSELs {
		if !approx(v.Rect.X.Length(), VCSELWidth) || !approx(v.Rect.Y.Length(), VCSELHeight) {
			t.Errorf("VCSEL %s footprint %gx%g", v.Name, v.Rect.X.Length(), v.Rect.Y.Length())
		}
	}
	for _, m := range l.MRs {
		if !approx(m.Rect.X.Length(), MRDiameter) || !approx(m.Rect.Y.Length(), MRDiameter) {
			t.Errorf("MR %s footprint wrong", m.Name)
		}
	}
	for _, p := range l.PDs {
		if !approx(p.Rect.X.Length(), PDWidth) || !approx(p.Rect.Y.Length(), PDHeight) {
			t.Errorf("PD %s footprint wrong", p.Name)
		}
	}
}

func TestDriversUnderVCSELs(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Drivers) != len(l.VCSELs) {
		t.Fatal("driver count mismatch")
	}
	for i, d := range l.Drivers {
		if d.Rect != l.VCSELs[i].Rect {
			t.Errorf("driver %d not aligned under its VCSEL", i)
		}
	}
}

func TestHeatersOnMRs(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range l.Heaters {
		if h.Rect != l.MRs[i].Rect {
			t.Errorf("heater %d not on its MR", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(geom.Rect{}, Chessboard); err == nil {
		t.Error("empty site should error")
	}
	if _, err := Generate(geom.CenteredRect(0, 0, 50e-6, 50e-6), Chessboard); err == nil {
		t.Error("too-small site should error")
	}
	if _, err := Generate(site(), Style(99)); err == nil {
		t.Error("unknown style should error")
	}
}

func TestAllOptical(t *testing.T) {
	l, err := Generate(site(), Chessboard)
	if err != nil {
		t.Fatal(err)
	}
	all := l.AllOptical()
	if len(all) != 16+16+16+16 {
		t.Errorf("AllOptical returned %d devices", len(all))
	}
}

func TestKindAndStyleStrings(t *testing.T) {
	if KindVCSEL.String() != "vcsel" || KindMR.String() != "mr" ||
		KindPD.String() != "pd" || KindHeater.String() != "heater" ||
		KindDriver.String() != "driver" || KindReceiver.String() != "receiver" {
		t.Error("kind strings wrong")
	}
	if Chessboard.String() != "chessboard" || Clustered.String() != "clustered" {
		t.Error("style strings wrong")
	}
	if Kind(42).String() == "" || Style(42).String() == "" {
		t.Error("unknown enums should stringify")
	}
}

func TestDevicesWithinSiteBounds(t *testing.T) {
	s := site()
	for _, style := range []Style{Chessboard, Clustered} {
		l, err := Generate(s, style)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range l.AllOptical() {
			inter := d.Rect.Intersect(s)
			// Allow PDs to poke out marginally (they sit next to the MR),
			// but the bulk of every device must be inside.
			if inter.Area() < 0.5*d.Rect.Area() {
				t.Errorf("%v: device %s mostly outside site", style, d.Name)
			}
		}
	}
}
