// Package oni generates the device-level layout of an Optical Network
// Interface: the chessboard arrangement of VCSELs (transmitters) and
// microring+photodetector pairs (receivers) along four waveguides that the
// paper proposes to pre-distribute VCSEL heat (Fig. 1-b), plus the CMOS
// driver/receiver blocks that sit underneath on the electrical layer.
//
// Device footprints follow the paper: VCSEL 15×30 µm², MR ⌀10 µm,
// photodetector 1.5×15 µm², TSV ⌀5 µm.
package oni

import (
	"fmt"

	"vcselnoc/internal/geom"
)

// Standard device footprints (metres).
const (
	VCSELWidth  = 30e-6
	VCSELHeight = 15e-6
	MRDiameter  = 10e-6
	PDWidth     = 1.5e-6
	PDHeight    = 15e-6
	TSVDiameter = 5e-6

	// WaveguidesPerONI, TransmittersPerWaveguide and
	// ReceiversPerWaveguide define the paper's ONI: 4 waveguides, each
	// with 4 transmitters and 4 receivers.
	WaveguidesPerONI         = 4
	TransmittersPerWaveguide = 4
	ReceiversPerWaveguide    = 4
)

// Kind labels a device in the layout.
type Kind int

// Device kinds.
const (
	KindVCSEL Kind = iota
	KindMR
	KindPD
	KindHeater
	KindDriver
	KindReceiver
)

func (k Kind) String() string {
	switch k {
	case KindVCSEL:
		return "vcsel"
	case KindMR:
		return "mr"
	case KindPD:
		return "pd"
	case KindHeater:
		return "heater"
	case KindDriver:
		return "driver"
	case KindReceiver:
		return "receiver"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is one placed element. Optical devices live on the optical layer;
// drivers and receivers live in the BEOL below.
type Device struct {
	Kind      Kind
	Name      string
	Rect      geom.Rect
	Waveguide int // 0..3
	Slot      int // position along the waveguide, 0..7
}

// Style selects the placement strategy.
type Style int

const (
	// Chessboard alternates TX and RX along each waveguide and staggers
	// rows, the paper's proposal for spreading VCSEL heat.
	Chessboard Style = iota
	// Clustered puts all transmitters on the left and all receivers on the
	// right, the baseline the chessboard is compared against (ablation).
	Clustered
)

func (s Style) String() string {
	switch s {
	case Chessboard:
		return "chessboard"
	case Clustered:
		return "clustered"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Layout is a fully placed ONI.
type Layout struct {
	Site       geom.Rect
	Style      Style
	VCSELs     []Device
	MRs        []Device
	PDs        []Device
	Heaters    []Device
	Drivers    []Device
	Receivers  []Device
	Waveguides []geom.Rect
}

// Generate places the ONI devices inside the site rectangle.
func Generate(site geom.Rect, style Style) (*Layout, error) {
	if site.Empty() {
		return nil, fmt.Errorf("oni: empty site rectangle")
	}
	const slots = TransmittersPerWaveguide + ReceiversPerWaveguide
	minW := float64(slots) * VCSELWidth
	minH := float64(WaveguidesPerONI) * (VCSELHeight + MRDiameter)
	if site.X.Length() < minW || site.Y.Length() < minH {
		return nil, fmt.Errorf("oni: site %.0fx%.0f µm too small (need >= %.0fx%.0f µm)",
			site.X.Length()*1e6, site.Y.Length()*1e6, minW*1e6, minH*1e6)
	}
	if style != Chessboard && style != Clustered {
		return nil, fmt.Errorf("oni: unknown style %v", style)
	}

	l := &Layout{Site: site, Style: style}
	rowH := site.Y.Length() / WaveguidesPerONI
	slotW := site.X.Length() / slots

	for wg := 0; wg < WaveguidesPerONI; wg++ {
		rowY := site.Y.Lo + float64(wg)*rowH
		rowCenter := rowY + rowH/2
		// The waveguide runs through the row centre.
		l.Waveguides = append(l.Waveguides,
			geom.NewRect(site.X.Lo, rowCenter-0.25e-6, site.X.Length(), 0.5e-6))

		tx := 0
		rx := 0
		for slot := 0; slot < slots; slot++ {
			cx := site.X.Lo + (float64(slot)+0.5)*slotW
			isTX := transmitterSlot(style, wg, slot)
			if isTX {
				name := fmt.Sprintf("wg%d-tx%d", wg, tx)
				v := geom.CenteredRect(cx, rowCenter, VCSELWidth, VCSELHeight)
				l.VCSELs = append(l.VCSELs, Device{KindVCSEL, name, v, wg, slot})
				// CMOS driver directly underneath, same footprint.
				l.Drivers = append(l.Drivers, Device{KindDriver, name + "-drv", v, wg, slot})
				tx++
			} else {
				name := fmt.Sprintf("wg%d-rx%d", wg, rx)
				m := geom.CenteredRect(cx, rowCenter, MRDiameter, MRDiameter)
				l.MRs = append(l.MRs, Device{KindMR, name, m, wg, slot})
				l.Heaters = append(l.Heaters, Device{KindHeater, name + "-htr", m, wg, slot})
				pd := geom.CenteredRect(cx+MRDiameter, rowCenter, PDWidth, PDHeight)
				l.PDs = append(l.PDs, Device{KindPD, name + "-pd", pd, wg, slot})
				l.Receivers = append(l.Receivers, Device{KindReceiver, name + "-rcv", pd, wg, slot})
				rx++
			}
		}
		if tx != TransmittersPerWaveguide || rx != ReceiversPerWaveguide {
			return nil, fmt.Errorf("oni: waveguide %d placed %d TX / %d RX, want %d/%d",
				wg, tx, rx, TransmittersPerWaveguide, ReceiversPerWaveguide)
		}
	}
	return l, nil
}

// transmitterSlot decides whether a slot holds a transmitter.
func transmitterSlot(style Style, wg, slot int) bool {
	if style == Clustered {
		return slot < TransmittersPerWaveguide
	}
	// Chessboard: alternate TX/RX along the row, stagger odd rows.
	return (slot+wg)%2 == 0
}

// AllOptical returns every device on the optical layer (VCSELs, MRs, PDs,
// heaters).
func (l *Layout) AllOptical() []Device {
	out := make([]Device, 0, len(l.VCSELs)+len(l.MRs)+len(l.PDs)+len(l.Heaters))
	out = append(out, l.VCSELs...)
	out = append(out, l.MRs...)
	out = append(out, l.PDs...)
	out = append(out, l.Heaters...)
	return out
}

// Validate checks layout invariants: expected device counts, devices inside
// the site, and no overlap between VCSELs and MRs.
func (l *Layout) Validate() error {
	wantTX := WaveguidesPerONI * TransmittersPerWaveguide
	wantRX := WaveguidesPerONI * ReceiversPerWaveguide
	if len(l.VCSELs) != wantTX {
		return fmt.Errorf("oni: %d VCSELs, want %d", len(l.VCSELs), wantTX)
	}
	if len(l.MRs) != wantRX || len(l.PDs) != wantRX || len(l.Heaters) != wantRX {
		return fmt.Errorf("oni: receiver chain counts %d/%d/%d, want %d",
			len(l.MRs), len(l.PDs), len(l.Heaters), wantRX)
	}
	if len(l.Drivers) != wantTX {
		return fmt.Errorf("oni: %d drivers, want %d", len(l.Drivers), wantTX)
	}
	for _, d := range append(append([]Device{}, l.VCSELs...), l.MRs...) {
		if !l.Site.Intersects(d.Rect) {
			return fmt.Errorf("oni: device %s outside site", d.Name)
		}
	}
	for _, v := range l.VCSELs {
		for _, m := range l.MRs {
			if v.Rect.Intersects(m.Rect) {
				return fmt.Errorf("oni: %s overlaps %s", v.Name, m.Name)
			}
		}
	}
	return nil
}
