package scc

import (
	"math"
	"testing"
)

func TestFloorplanStructure(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Tiles) != 24 {
		t.Fatalf("got %d tiles, want 24", len(f.Tiles))
	}
	if len(f.MemoryControllers) != 4 {
		t.Fatalf("got %d MCs, want 4", len(f.MemoryControllers))
	}
	if len(f.ONISites) != 16 {
		t.Fatalf("got %d ONI sites, want 16", len(f.ONISites))
	}
	// Die area ≈ 567 mm².
	area := f.Die.Area()
	if math.Abs(area-567.1e-6) > 1e-6 {
		t.Errorf("die area = %g m², want ~567.1 mm²", area)
	}
}

func TestTilesInsideDieAndDisjoint(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, tile := range f.Tiles {
		if tile.Bounds.X.Lo < 0 || tile.Bounds.X.Hi > DieWidth ||
			tile.Bounds.Y.Lo < 0 || tile.Bounds.Y.Hi > DieHeight {
			t.Errorf("tile %d outside die", tile.Index)
		}
		// Cores and router inside the tile.
		for _, c := range tile.Cores {
			if !tile.Bounds.Intersects(c) {
				t.Errorf("tile %d core outside tile", tile.Index)
			}
		}
		if !tile.Bounds.Intersects(tile.Router) {
			t.Errorf("tile %d router outside tile", tile.Index)
		}
		// Router between the cores, no overlap.
		if tile.Cores[0].Intersects(tile.Router) || tile.Cores[1].Intersects(tile.Router) {
			t.Errorf("tile %d router overlaps a core", tile.Index)
		}
	}
	for i := range f.Tiles {
		for j := i + 1; j < len(f.Tiles); j++ {
			if f.Tiles[i].Bounds.Intersects(f.Tiles[j].Bounds) {
				t.Errorf("tiles %d and %d overlap", i, j)
			}
		}
	}
}

func TestTileAt(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	tile := f.TileAt(2, 1)
	if tile.Col != 2 || tile.Row != 1 {
		t.Errorf("TileAt(2,1) = col %d row %d", tile.Col, tile.Row)
	}
	if tile.Index != 1*TileCols+2 {
		t.Errorf("index = %d", tile.Index)
	}
}

func TestONISitesOverInnerTiles(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for i, site := range f.ONISites {
		cx, cy := site.Center()
		if cx < f.Die.X.Lo || cx > f.Die.X.Hi || cy < f.Die.Y.Lo || cy > f.Die.Y.Hi {
			t.Errorf("ONI %d centre outside die", i)
		}
		// Each site must be over some tile's router.
		found := false
		for _, tile := range f.Tiles {
			rcx, rcy := tile.Router.Center()
			if math.Abs(rcx-cx) < 1e-9 && math.Abs(rcy-cy) < 1e-9 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("ONI %d not centred on a router", i)
		}
	}
	// Sites pairwise disjoint.
	for i := range f.ONISites {
		for j := i + 1; j < len(f.ONISites); j++ {
			if f.ONISites[i].Intersects(f.ONISites[j]) {
				t.Errorf("ONI sites %d and %d overlap", i, j)
			}
		}
	}
}

func TestPowerMapConservation(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, 24)
	for i := range weights {
		weights[i] = 1
	}
	blocks, err := f.PowerMap(25, weights)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalPower(blocks); math.Abs(got-25) > 1e-9 {
		t.Errorf("total power = %g, want 25", got)
	}
	// 24 tiles × 3 blocks + 4 MCs.
	if len(blocks) != 24*3+4 {
		t.Errorf("got %d blocks", len(blocks))
	}
	for _, b := range blocks {
		if b.Power < 0 {
			t.Errorf("block %s has negative power", b.Name)
		}
		if b.Rect.Empty() {
			t.Errorf("block %s has empty rect", b.Name)
		}
	}
}

func TestPowerMapWeighted(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, 24)
	weights[0] = 1 // all tile power on tile 0
	blocks, err := f.PowerMap(10, weights)
	if err != nil {
		t.Fatal(err)
	}
	var tile0, others float64
	for _, b := range blocks {
		switch {
		case len(b.Name) >= 6 && b.Name[:6] == "tile00":
			tile0 += b.Power
		case b.Name[:2] == "mc":
		default:
			others += b.Power
		}
	}
	if others > 1e-12 {
		t.Errorf("other tiles got power %g", others)
	}
	if math.Abs(tile0-10*0.88) > 1e-9 {
		t.Errorf("tile0 power = %g, want %g", tile0, 10*0.88)
	}
}

func TestPowerMapErrors(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.PowerMap(-5, make([]float64, 24)); err == nil {
		t.Error("negative power should error")
	}
	if _, err := f.PowerMap(5, make([]float64, 10)); err == nil {
		t.Error("wrong weight count should error")
	}
	if _, err := f.PowerMap(5, make([]float64, 24)); err == nil {
		t.Error("all-zero weights with positive power should error")
	}
	w := make([]float64, 24)
	w[3] = -1
	if _, err := f.PowerMap(5, w); err == nil {
		t.Error("negative weight should error")
	}
}

func TestQuadrantOf(t *testing.T) {
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y float64
		want int
	}{
		{1e-3, 1e-3, 0},                        // lower-left
		{DieWidth - 1e-3, 1e-3, 1},             // lower-right
		{1e-3, DieHeight - 1e-3, 2},            // upper-left
		{DieWidth - 1e-3, DieHeight - 1e-3, 3}, // upper-right
	}
	for _, c := range cases {
		if got := f.QuadrantOf(c.x, c.y); got != c.want {
			t.Errorf("QuadrantOf(%g, %g) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}
