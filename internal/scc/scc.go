// Package scc models the Intel Single-Chip Cloud Computer floorplan used
// as the paper's case study: a 24-tile, 48-core IA-32 die (6×4 tile grid,
// two cores and a mesh router per tile, four DDR3 memory controllers on
// the die edges, 567 mm², up to 125 W).
//
// The floorplan produces the rectangular power blocks that the thermal
// simulator places in the BEOL layer, and the 4×4 grid of ONI sites on the
// optical layer above the inner tiles.
package scc

import (
	"fmt"

	"vcselnoc/internal/geom"
)

// Standard SCC dimensions.
const (
	// DieWidth and DieHeight give the 567 mm² SCC die.
	DieWidth  = 26.5e-3
	DieHeight = 21.4e-3
	// TileCols and TileRows define the 6×4 tile mesh.
	TileCols = 6
	TileRows = 4
	// CoresPerTile is fixed by the SCC architecture.
	CoresPerTile = 2
	// MaxPower is the SCC's maximum dissipation in watts.
	MaxPower = 125.0
	// ONICols and ONIRows define the 4×4 ONI grid placed over the inner
	// tiles.
	ONICols = 4
	ONIRows = 4
)

// Tile is one SCC tile: two cores flanking a router column.
type Tile struct {
	Index    int
	Col, Row int
	Bounds   geom.Rect
	Cores    [CoresPerTile]geom.Rect
	Router   geom.Rect
}

// Floorplan is the resolved SCC die layout.
type Floorplan struct {
	Die               geom.Rect
	Tiles             []Tile
	MemoryControllers []geom.Rect
	// ONISites are the footprints reserved for the 16 ONIs on the optical
	// layer (their centres sit over the routers of the inner 4×4 tiles).
	ONISites []geom.Rect
}

// periphery reserved for memory controllers and IO around the tile array.
const periphery = 1.8e-3

// New builds the standard SCC floorplan.
func New() (*Floorplan, error) {
	die := geom.NewRect(0, 0, DieWidth, DieHeight)
	tileRegion := geom.NewRect(periphery, periphery,
		DieWidth-2*periphery, DieHeight-2*periphery)
	cells, err := tileRegion.GridPositions(TileCols, TileRows)
	if err != nil {
		return nil, fmt.Errorf("scc: tile grid: %w", err)
	}
	fp := &Floorplan{Die: die}
	for idx, cell := range cells {
		col := idx % TileCols
		row := idx / TileCols
		t := Tile{Index: idx, Col: col, Row: row, Bounds: cell}
		// Router occupies the central 20 % strip; cores split the rest.
		w := cell.X.Length()
		h := cell.Y.Length()
		coreW := w * 0.4
		routerW := w * 0.2
		t.Cores[0] = geom.NewRect(cell.X.Lo, cell.Y.Lo, coreW, h)
		t.Router = geom.NewRect(cell.X.Lo+coreW, cell.Y.Lo+h*0.25, routerW, h*0.5)
		t.Cores[1] = geom.NewRect(cell.X.Lo+coreW+routerW, cell.Y.Lo, coreW, h)
		fp.Tiles = append(fp.Tiles, t)
	}
	// Four DDR3 memory controllers: two per vertical edge.
	mcW := periphery * 0.8
	mcH := DieHeight * 0.25
	fp.MemoryControllers = []geom.Rect{
		geom.NewRect(0.1e-3, DieHeight*0.17, mcW, mcH),
		geom.NewRect(0.1e-3, DieHeight*0.58, mcW, mcH),
		geom.NewRect(DieWidth-0.1e-3-mcW, DieHeight*0.17, mcW, mcH),
		geom.NewRect(DieWidth-0.1e-3-mcW, DieHeight*0.58, mcW, mcH),
	}
	// ONI sites: a 4×4 grid over the inner tiles (columns 1..4 of 0..5,
	// all rows). Each site is centred on its tile's router, sized for the
	// chessboard ONI layout (≈ 360×200 µm).
	const oniW, oniH = 360e-6, 200e-6
	for row := 0; row < ONIRows; row++ {
		for col := 0; col < ONICols; col++ {
			tile := fp.TileAt(col+1, row)
			cx, cy := tile.Router.Center()
			fp.ONISites = append(fp.ONISites, geom.CenteredRect(cx, cy, oniW, oniH))
		}
	}
	return fp, nil
}

// TileAt returns the tile at mesh coordinates (col, row).
func (f *Floorplan) TileAt(col, row int) *Tile {
	return &f.Tiles[row*TileCols+col]
}

// PowerBlock is a rectangular heat source with an assigned power.
type PowerBlock struct {
	Name  string
	Rect  geom.Rect
	Power float64 // watts
}

// PowerMap distributes a total chip power over the die according to
// per-tile activity weights (length 24). A fixed uncoreFraction of the
// total goes to the memory controllers, the rest is split over tiles
// proportionally to the weights; within a tile, 80 % goes to the two cores
// and 20 % to the router.
func (f *Floorplan) PowerMap(totalPower float64, tileWeights []float64) ([]PowerBlock, error) {
	if totalPower < 0 {
		return nil, fmt.Errorf("scc: negative total power %g", totalPower)
	}
	if len(tileWeights) != len(f.Tiles) {
		return nil, fmt.Errorf("scc: %d tile weights for %d tiles", len(tileWeights), len(f.Tiles))
	}
	var sum float64
	for i, w := range tileWeights {
		if w < 0 {
			return nil, fmt.Errorf("scc: negative weight %g for tile %d", w, i)
		}
		sum += w
	}
	if sum == 0 && totalPower > 0 {
		return nil, fmt.Errorf("scc: all tile weights are zero")
	}

	const uncoreFraction = 0.12
	uncore := totalPower * uncoreFraction
	tileTotal := totalPower - uncore

	blocks := make([]PowerBlock, 0, len(f.Tiles)*3+len(f.MemoryControllers))
	for i, t := range f.Tiles {
		p := 0.0
		if sum > 0 {
			p = tileTotal * tileWeights[i] / sum
		}
		corePower := p * 0.8 / CoresPerTile
		routerPower := p * 0.2
		blocks = append(blocks,
			PowerBlock{Name: fmt.Sprintf("tile%02d-core0", i), Rect: t.Cores[0], Power: corePower},
			PowerBlock{Name: fmt.Sprintf("tile%02d-core1", i), Rect: t.Cores[1], Power: corePower},
			PowerBlock{Name: fmt.Sprintf("tile%02d-router", i), Rect: t.Router, Power: routerPower},
		)
	}
	for i, mc := range f.MemoryControllers {
		blocks = append(blocks, PowerBlock{
			Name:  fmt.Sprintf("mc%d", i),
			Rect:  mc,
			Power: uncore / float64(len(f.MemoryControllers)),
		})
	}
	return blocks, nil
}

// TotalPower sums a block list.
func TotalPower(blocks []PowerBlock) float64 {
	var s float64
	for _, b := range blocks {
		s += b.Power
	}
	return s
}

// QuadrantOf reports which die quadrant a point is in: 0=lower-left,
// 1=lower-right, 2=upper-left, 3=upper-right.
func (f *Floorplan) QuadrantOf(x, y float64) int {
	cx, cy := f.Die.Center()
	q := 0
	if x >= cx {
		q |= 1
	}
	if y >= cy {
		q |= 2
	}
	return q
}
