// Package activity generates the chip activity scenarios the paper uses to
// drive thermal simulation: uniform, diagonal, random, plus hotspot and
// checkerboard extensions. A scenario yields per-tile weights for a
// cols×rows tile mesh; the weights are relative and are normalised by the
// floorplan's power mapper.
package activity

import (
	"fmt"
	"math/rand"
)

// Scenario produces per-tile activity weights.
type Scenario interface {
	// Name identifies the scenario in reports.
	Name() string
	// Weights returns cols*rows non-negative weights in row-major order
	// (row 0 at the bottom).
	Weights(cols, rows int) ([]float64, error)
}

func checkDims(cols, rows int) error {
	if cols <= 0 || rows <= 0 {
		return fmt.Errorf("activity: invalid mesh %dx%d", cols, rows)
	}
	return nil
}

// Uniform loads every tile equally.
type Uniform struct{}

// Name implements Scenario.
func (Uniform) Name() string { return "uniform" }

// Weights implements Scenario.
func (Uniform) Weights(cols, rows int) ([]float64, error) {
	if err := checkDims(cols, rows); err != nil {
		return nil, err
	}
	w := make([]float64, cols*rows)
	for i := range w {
		w[i] = 1
	}
	return w, nil
}

// Diagonal reproduces the paper's diagonal activity: the upper-left and
// lower-right quadrants dissipate twice the power of the upper-right and
// lower-left quadrants (8 W vs 4 W per quadrant in the paper's 24 W case).
type Diagonal struct {
	// HotWeight and ColdWeight set the per-tile weights of the hot and
	// cold quadrants. Zero values default to 2 and 1.
	HotWeight, ColdWeight float64
}

// Name implements Scenario.
func (Diagonal) Name() string { return "diagonal" }

// Weights implements Scenario.
func (d Diagonal) Weights(cols, rows int) ([]float64, error) {
	if err := checkDims(cols, rows); err != nil {
		return nil, err
	}
	hot, cold := d.HotWeight, d.ColdWeight
	if hot == 0 && cold == 0 {
		hot, cold = 2, 1
	}
	if hot < 0 || cold < 0 {
		return nil, fmt.Errorf("activity: negative diagonal weights %g, %g", hot, cold)
	}
	w := make([]float64, cols*rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			left := c < cols/2
			bottom := r < rows/2
			// Hot quadrants: upper-left and lower-right.
			if (left && !bottom) || (!left && bottom) {
				w[r*cols+c] = hot
			} else {
				w[r*cols+c] = cold
			}
		}
	}
	return w, nil
}

// Random assigns each tile an independent weight drawn uniformly from
// [Min, Max] with a deterministic seed.
type Random struct {
	Seed     int64
	Min, Max float64
}

// Name implements Scenario.
func (Random) Name() string { return "random" }

// Weights implements Scenario.
func (r Random) Weights(cols, rows int) ([]float64, error) {
	if err := checkDims(cols, rows); err != nil {
		return nil, err
	}
	lo, hi := r.Min, r.Max
	if lo == 0 && hi == 0 {
		lo, hi = 0.25, 1.75
	}
	if lo < 0 || hi < lo {
		return nil, fmt.Errorf("activity: invalid random range [%g, %g]", lo, hi)
	}
	rng := rand.New(rand.NewSource(r.Seed))
	w := make([]float64, cols*rows)
	for i := range w {
		w[i] = lo + rng.Float64()*(hi-lo)
	}
	return w, nil
}

// Hotspot concentrates activity on one tile, with a background level
// elsewhere.
type Hotspot struct {
	Col, Row   int
	Background float64 // weight of the other tiles, default 0.1
}

// Name implements Scenario.
func (Hotspot) Name() string { return "hotspot" }

// Weights implements Scenario.
func (h Hotspot) Weights(cols, rows int) ([]float64, error) {
	if err := checkDims(cols, rows); err != nil {
		return nil, err
	}
	if h.Col < 0 || h.Col >= cols || h.Row < 0 || h.Row >= rows {
		return nil, fmt.Errorf("activity: hotspot (%d,%d) outside %dx%d mesh", h.Col, h.Row, cols, rows)
	}
	bg := h.Background
	if bg == 0 {
		bg = 0.1
	}
	if bg < 0 {
		return nil, fmt.Errorf("activity: negative background %g", bg)
	}
	w := make([]float64, cols*rows)
	for i := range w {
		w[i] = bg
	}
	w[h.Row*cols+h.Col] = float64(cols*rows) * 1.0
	return w, nil
}

// Checkerboard alternates high/low tiles, a stress pattern for intra-die
// gradients.
type Checkerboard struct {
	High, Low float64 // default 2 and 0.5
}

// Name implements Scenario.
func (Checkerboard) Name() string { return "checkerboard" }

// Weights implements Scenario.
func (c Checkerboard) Weights(cols, rows int) ([]float64, error) {
	if err := checkDims(cols, rows); err != nil {
		return nil, err
	}
	high, low := c.High, c.Low
	if high == 0 && low == 0 {
		high, low = 2, 0.5
	}
	if high < 0 || low < 0 {
		return nil, fmt.Errorf("activity: negative checkerboard weights")
	}
	w := make([]float64, cols*rows)
	for r := 0; r < rows; r++ {
		for col := 0; col < cols; col++ {
			if (r+col)%2 == 0 {
				w[r*cols+col] = high
			} else {
				w[r*cols+col] = low
			}
		}
	}
	return w, nil
}

// ByName returns the scenario for a CLI-style name. Random uses the given
// seed.
func ByName(name string, seed int64) (Scenario, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "diagonal":
		return Diagonal{}, nil
	case "random":
		return Random{Seed: seed}, nil
	case "hotspot":
		return Hotspot{Col: 1, Row: 1}, nil
	case "checkerboard":
		return Checkerboard{}, nil
	default:
		return nil, fmt.Errorf("activity: unknown scenario %q (want uniform, diagonal, random, hotspot or checkerboard)", name)
	}
}
