package activity

import (
	"math"
	"testing"
)

func TestUniform(t *testing.T) {
	w, err := Uniform{}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 24 {
		t.Fatalf("got %d weights", len(w))
	}
	for i, v := range w {
		if v != 1 {
			t.Errorf("weight %d = %g, want 1", i, v)
		}
	}
}

func TestDiagonalQuadrants(t *testing.T) {
	w, err := Diagonal{}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: upper-left and lower-right hot (2x), upper-right and
	// lower-left cold (1x). Row 0 is the bottom.
	get := func(col, row int) float64 { return w[row*6+col] }
	if get(0, 0) != 1 { // lower-left cold
		t.Errorf("lower-left = %g, want 1", get(0, 0))
	}
	if get(5, 0) != 2 { // lower-right hot
		t.Errorf("lower-right = %g, want 2", get(5, 0))
	}
	if get(0, 3) != 2 { // upper-left hot
		t.Errorf("upper-left = %g, want 2", get(0, 3))
	}
	if get(5, 3) != 1 { // upper-right cold
		t.Errorf("upper-right = %g, want 1", get(5, 3))
	}
	// Quadrant power split 8/4 when scaled to 24 total: hot quadrants sum
	// to twice the cold ones.
	var hot, cold float64
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			left := c < 3
			bottom := r < 2
			if (left && !bottom) || (!left && bottom) {
				hot += get(c, r)
			} else {
				cold += get(c, r)
			}
		}
	}
	if math.Abs(hot-2*cold) > 1e-12 {
		t.Errorf("hot/cold = %g/%g, want ratio 2", hot, cold)
	}
}

func TestDiagonalCustomWeights(t *testing.T) {
	w, err := Diagonal{HotWeight: 3, ColdWeight: 1}.Weights(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// (0,0) bottom-left cold, (1,0) bottom-right hot.
	if w[0] != 1 || w[1] != 3 {
		t.Errorf("weights = %v", w)
	}
	if _, err := (Diagonal{HotWeight: -1, ColdWeight: 1}).Weights(2, 2); err == nil {
		t.Error("negative weight should error")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random{Seed: 42}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random{Seed: 42}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce weights")
		}
	}
	c, err := Random{Seed: 43}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
	// Default range respected.
	for i, v := range a {
		if v < 0.25 || v > 1.75 {
			t.Errorf("weight %d = %g outside default range", i, v)
		}
	}
}

func TestRandomRangeValidation(t *testing.T) {
	if _, err := (Random{Min: -1, Max: 1}).Weights(2, 2); err == nil {
		t.Error("negative min should error")
	}
	if _, err := (Random{Min: 2, Max: 1}).Weights(2, 2); err == nil {
		t.Error("inverted range should error")
	}
}

func TestHotspot(t *testing.T) {
	w, err := Hotspot{Col: 2, Row: 1}.Weights(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	hotIdx := 1*6 + 2
	for i, v := range w {
		if i == hotIdx {
			if v <= 1 {
				t.Errorf("hotspot weight = %g, want > 1", v)
			}
		} else if v != 0.1 {
			t.Errorf("background %d = %g, want 0.1", i, v)
		}
	}
	if _, err := (Hotspot{Col: 9, Row: 0}).Weights(6, 4); err == nil {
		t.Error("out-of-range hotspot should error")
	}
	if _, err := (Hotspot{Col: 0, Row: 0, Background: -1}).Weights(6, 4); err == nil {
		t.Error("negative background should error")
	}
}

func TestCheckerboard(t *testing.T) {
	w, err := Checkerboard{}.Weights(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 2 || w[1] != 0.5 || w[4] != 0.5 || w[5] != 2 {
		t.Errorf("checkerboard pattern wrong: %v", w[:6])
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "diagonal", "random", "hotspot", "checkerboard"} {
		s, err := ByName(name, 7)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
		if _, err := s.Weights(6, 4); err != nil {
			t.Errorf("%s weights: %v", name, err)
		}
	}
	if _, err := ByName("bogus", 0); err == nil {
		t.Error("unknown name should error")
	}
}

func TestDimensionValidation(t *testing.T) {
	scenarios := []Scenario{Uniform{}, Diagonal{}, Random{}, Hotspot{}, Checkerboard{}}
	for _, s := range scenarios {
		if _, err := s.Weights(0, 4); err == nil {
			t.Errorf("%s should reject zero cols", s.Name())
		}
		if _, err := s.Weights(4, -1); err == nil {
			t.Errorf("%s should reject negative rows", s.Name())
		}
	}
}

func TestAllWeightsNonNegative(t *testing.T) {
	scenarios := []Scenario{Uniform{}, Diagonal{}, Random{Seed: 1}, Hotspot{Col: 1, Row: 1}, Checkerboard{}}
	for _, s := range scenarios {
		w, err := s.Weights(6, 4)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		var sum float64
		for i, v := range w {
			if v < 0 {
				t.Errorf("%s weight %d negative", s.Name(), i)
			}
			sum += v
		}
		if sum <= 0 {
			t.Errorf("%s weights sum to %g", s.Name(), sum)
		}
	}
}
