package mesh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vcselnoc/internal/geom"
)

func TestAxisBuilderUniform(t *testing.T) {
	b := NewAxisBuilder(0, 1, 0.25)
	lines, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5: %v", len(lines), lines)
	}
	for i, want := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if math.Abs(lines[i]-want) > 1e-12 {
			t.Errorf("line %d = %g, want %g", i, lines[i], want)
		}
	}
}

func TestAxisBuilderBreakpoint(t *testing.T) {
	b := NewAxisBuilder(0, 1, 1) // one coarse cell by default
	b.AddBreakpoint(0.3)
	lines, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if math.Abs(l-0.3) < 1e-12 {
			found = true
		}
	}
	if !found {
		t.Errorf("breakpoint 0.3 missing from %v", lines)
	}
}

func TestAxisBuilderBreakpointOutsideIgnored(t *testing.T) {
	b := NewAxisBuilder(0, 1, 0.5)
	b.AddBreakpoint(-1)
	b.AddBreakpoint(2)
	b.AddBreakpoint(0) // boundary, already present
	lines, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if lines[0] != 0 || lines[len(lines)-1] != 1 {
		t.Errorf("domain endpoints wrong: %v", lines)
	}
}

func TestAxisBuilderRefinement(t *testing.T) {
	// Domain 1 mm with 100 µm default, refined to 5 µm over [400, 500] µm.
	b := NewAxisBuilder(0, 1e-3, 100e-6)
	b.AddRefinement(400e-6, 500e-6, 5e-6)
	lines, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Check cell sizes inside vs outside refinement.
	for i := 0; i < len(lines)-1; i++ {
		mid := (lines[i] + lines[i+1]) / 2
		d := lines[i+1] - lines[i]
		if mid > 400e-6 && mid < 500e-6 {
			if d > 5e-6+1e-12 {
				t.Errorf("cell at %g has size %g, want <= 5µm", mid, d)
			}
		} else if d > 100e-6+1e-12 {
			t.Errorf("cell at %g has size %g, want <= 100µm", mid, d)
		}
	}
	// Refinement should produce exactly 20 cells in the fine band.
	fine := 0
	for i := 0; i < len(lines)-1; i++ {
		mid := (lines[i] + lines[i+1]) / 2
		if mid > 400e-6 && mid < 500e-6 {
			fine++
		}
	}
	if fine != 20 {
		t.Errorf("fine cells = %d, want 20", fine)
	}
}

func TestAxisBuilderOverlappingRefinements(t *testing.T) {
	b := NewAxisBuilder(0, 1, 0.5)
	b.AddRefinement(0.2, 0.6, 0.1)
	b.AddRefinement(0.4, 0.8, 0.05)
	lines, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(lines)-1; i++ {
		mid := (lines[i] + lines[i+1]) / 2
		d := lines[i+1] - lines[i]
		if mid > 0.4 && mid < 0.6 && d > 0.05+1e-12 {
			t.Errorf("overlap zone cell %g too large: %g", mid, d)
		}
	}
}

func TestAxisBuilderErrors(t *testing.T) {
	if _, err := NewAxisBuilder(1, 0, 0.1).Build(); err == nil {
		t.Error("inverted domain should error")
	}
	if _, err := NewAxisBuilder(0, 1, 0).Build(); err == nil {
		t.Error("zero step should error")
	}
	if _, err := NewAxisBuilder(0, 1, -2).Build(); err == nil {
		t.Error("negative step should error")
	}
}

func mustGrid(t *testing.T) *Grid {
	t.Helper()
	g, err := NewGrid(
		[]float64{0, 1, 2, 4},
		[]float64{0, 0.5, 1},
		[]float64{0, 10},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridCounts(t *testing.T) {
	g := mustGrid(t)
	if g.NX() != 3 || g.NY() != 2 || g.NZ() != 1 {
		t.Fatalf("dims = %d,%d,%d", g.NX(), g.NY(), g.NZ())
	}
	if g.NumCells() != 6 {
		t.Fatalf("NumCells = %d", g.NumCells())
	}
}

func TestGridIndexRoundTrip(t *testing.T) {
	g := mustGrid(t)
	for k := 0; k < g.NZ(); k++ {
		for j := 0; j < g.NY(); j++ {
			for i := 0; i < g.NX(); i++ {
				idx := g.Index(i, j, k)
				ii, jj, kk := g.Unflatten(idx)
				if ii != i || jj != j || kk != k {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i, j, k, idx, ii, jj, kk)
				}
			}
		}
	}
}

func TestGridCellGeometry(t *testing.T) {
	g := mustGrid(t)
	b := g.CellBox(2, 1, 0)
	if b.X.Lo != 2 || b.X.Hi != 4 || b.Y.Lo != 0.5 || b.Z.Hi != 10 {
		t.Errorf("cell box = %v", b)
	}
	if v := g.CellVolume(2, 1, 0); v != 2*0.5*10 {
		t.Errorf("volume = %g", v)
	}
	c := g.CellCenter(0, 0, 0)
	if c.X != 0.5 || c.Y != 0.25 || c.Z != 5 {
		t.Errorf("center = %v", c)
	}
	sz := g.CellSize(1, 0, 0)
	if sz.X != 1 || sz.Y != 0.5 || sz.Z != 10 {
		t.Errorf("size = %v", sz)
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := NewGrid([]float64{0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("single line axis should error")
	}
	if _, err := NewGrid([]float64{0, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("repeated line should error")
	}
	if _, err := NewGrid([]float64{1, 0}, []float64{0, 1}, []float64{0, 1}); err == nil {
		t.Error("descending lines should error")
	}
}

func TestFindCell(t *testing.T) {
	g := mustGrid(t)
	cases := []struct {
		p       geom.Vec3
		i, j, k int
		ok      bool
	}{
		{geom.Vec3{X: 0.5, Y: 0.25, Z: 5}, 0, 0, 0, true},
		{geom.Vec3{X: 3, Y: 0.75, Z: 1}, 2, 1, 0, true},
		{geom.Vec3{X: 4, Y: 1, Z: 10}, 2, 1, 0, true}, // upper domain corner maps to last cell
		{geom.Vec3{X: -0.1, Y: 0.5, Z: 5}, 0, 0, 0, false},
		{geom.Vec3{X: 5, Y: 0.5, Z: 5}, 0, 0, 0, false},
		{geom.Vec3{X: 1, Y: 0.5, Z: 0}, 1, 1, 0, true}, // on interior lines -> upper cell
	}
	for _, c := range cases {
		i, j, k, ok := g.FindCell(c.p)
		if ok != c.ok {
			t.Errorf("FindCell(%v) ok = %v, want %v", c.p, ok, c.ok)
			continue
		}
		if ok && (i != c.i || j != c.j || k != c.k) {
			t.Errorf("FindCell(%v) = (%d,%d,%d), want (%d,%d,%d)", c.p, i, j, k, c.i, c.j, c.k)
		}
	}
}

func TestCellsOverlapping(t *testing.T) {
	g := mustGrid(t)
	// Box covering x in [0.5, 2.5] should hit cells i=0,1,2.
	b := geom.NewBox(geom.Vec3{X: 0.5, Y: 0, Z: 0}, geom.Vec3{X: 2, Y: 1, Z: 10})
	i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(b)
	if i0 != 0 || i1 != 3 {
		t.Errorf("i range = [%d, %d), want [0, 3)", i0, i1)
	}
	if j0 != 0 || j1 != 2 {
		t.Errorf("j range = [%d, %d), want [0, 2)", j0, j1)
	}
	if k0 != 0 || k1 != 1 {
		t.Errorf("k range = [%d, %d), want [0, 1)", k0, k1)
	}
	// Box exactly on a cell boundary should not include the cell before it.
	b2 := geom.NewBox(geom.Vec3{X: 1, Y: 0, Z: 0}, geom.Vec3{X: 1, Y: 0.5, Z: 10})
	i0, i1, _, _, _, _ = g.CellsOverlapping(b2)
	if i0 != 1 || i1 != 2 {
		t.Errorf("boundary box i range = [%d, %d), want [1, 2)", i0, i1)
	}
}

func TestDomain(t *testing.T) {
	g := mustGrid(t)
	d := g.Domain()
	if d.X.Lo != 0 || d.X.Hi != 4 || d.Y.Hi != 1 || d.Z.Hi != 10 {
		t.Errorf("domain = %v", d)
	}
}

// Property: axis builder lines are strictly increasing, cover the domain,
// and no cell exceeds the default step (outside refinements, which only
// shrink cells).
func TestQuickAxisInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.Float64() * 10
		hi := lo + 0.1 + rng.Float64()*10
		step := (hi - lo) / (1 + rng.Float64()*20)
		b := NewAxisBuilder(lo, hi, step)
		for n := rng.Intn(4); n > 0; n-- {
			b.AddBreakpoint(lo + rng.Float64()*(hi-lo))
		}
		for n := rng.Intn(3); n > 0; n-- {
			a := lo + rng.Float64()*(hi-lo)
			bb := a + rng.Float64()*(hi-a)
			b.AddRefinement(a, bb, step/(1+rng.Float64()*10))
		}
		lines, err := b.Build()
		if err != nil {
			return false
		}
		if lines[0] != lo || lines[len(lines)-1] != hi {
			return false
		}
		for i := 1; i < len(lines); i++ {
			if lines[i] <= lines[i-1] {
				return false
			}
			if lines[i]-lines[i-1] > step*(1+1e-9) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: cell volumes sum to the domain volume.
func TestQuickVolumeConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() []float64 {
			n := 2 + rng.Intn(8)
			lines := make([]float64, n)
			x := rng.Float64()
			for i := range lines {
				lines[i] = x
				x += 0.01 + rng.Float64()
			}
			return lines
		}
		g, err := NewGrid(mk(), mk(), mk())
		if err != nil {
			return false
		}
		var sum float64
		for k := 0; k < g.NZ(); k++ {
			for j := 0; j < g.NY(); j++ {
				for i := 0; i < g.NX(); i++ {
					sum += g.CellVolume(i, j, k)
				}
			}
		}
		dom := g.Domain().Volume()
		return math.Abs(sum-dom) <= 1e-9*dom
	}
	cfg := &quick.Config{MaxCount: 100}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: FindCell agrees with CellBox containment for random interior
// points.
func TestQuickFindCellConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := NewGrid(
			[]float64{0, 0.3, 1.1, 2.5, 4},
			[]float64{-1, 0, 2},
			[]float64{0, 0.1, 0.5},
		)
		if err != nil {
			return false
		}
		dom := g.Domain()
		for trial := 0; trial < 20; trial++ {
			p := geom.Vec3{
				X: dom.X.Lo + rng.Float64()*dom.X.Length()*0.999,
				Y: dom.Y.Lo + rng.Float64()*dom.Y.Length()*0.999,
				Z: dom.Z.Lo + rng.Float64()*dom.Z.Length()*0.999,
			}
			i, j, k, ok := g.FindCell(p)
			if !ok {
				return false
			}
			if !g.CellBox(i, j, k).Contains(p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: CellsOverlapping returns exactly the cells with positive
// overlap volume — no false positives at the range boundaries and no
// missed cells.
func TestQuickCellsOverlappingExact(t *testing.T) {
	g, err := NewGrid(
		[]float64{0, 0.4, 1.0, 1.7, 2.5, 4},
		[]float64{-1, 0, 0.8, 2},
		[]float64{0, 0.3, 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dom := g.Domain()
		rnd := func(iv geom.Interval) (float64, float64) {
			a := iv.Lo + rng.Float64()*iv.Length()*1.2 - 0.1*iv.Length()
			b := iv.Lo + rng.Float64()*iv.Length()*1.2 - 0.1*iv.Length()
			if a > b {
				a, b = b, a
			}
			return a, b
		}
		x0, x1 := rnd(dom.X)
		y0, y1 := rnd(dom.Y)
		z0, z1 := rnd(dom.Z)
		box := geom.Box{
			X: geom.Interval{Lo: x0, Hi: x1},
			Y: geom.Interval{Lo: y0, Hi: y1},
			Z: geom.Interval{Lo: z0, Hi: z1},
		}
		i0, i1, j0, j1, k0, k1 := g.CellsOverlapping(box)
		inRange := func(i, j, k int) bool {
			return i >= i0 && i < i1 && j >= j0 && j < j1 && k >= k0 && k < k1
		}
		for k := 0; k < g.NZ(); k++ {
			for j := 0; j < g.NY(); j++ {
				for i := 0; i < g.NX(); i++ {
					ov := g.CellBox(i, j, k).OverlapVolume(box)
					if ov > 0 && !inRange(i, j, k) {
						return false // missed an overlapping cell
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
