// Package mesh builds the non-uniform tensor-product grids used by the
// finite-volume thermal solver. Following the paper's meshing strategy, a
// grid axis is described by mandatory breakpoints (layer and block
// boundaries) plus refinement intervals that cap the local cell size (e.g.
// 5 µm across ONI regions, ~100 µm across the die, ~500 µm across the
// package). The three axes combine into a structured grid whose cells are
// addressed either by (i, j, k) or by a flattened index.
package mesh

import (
	"fmt"
	"math"
	"sort"

	"vcselnoc/internal/geom"
)

// AxisBuilder accumulates constraints for one grid axis.
type AxisBuilder struct {
	lo, hi      float64
	defaultStep float64
	breakpoints []float64
	refinements []refinement
}

type refinement struct {
	iv   geom.Interval
	step float64
}

// NewAxisBuilder creates a builder for the domain [lo, hi] with the given
// default maximum cell size.
func NewAxisBuilder(lo, hi, defaultStep float64) *AxisBuilder {
	return &AxisBuilder{lo: lo, hi: hi, defaultStep: defaultStep}
}

// AddBreakpoint forces a grid line at x (clamped into the domain).
func (b *AxisBuilder) AddBreakpoint(x float64) {
	if x <= b.lo || x >= b.hi {
		return
	}
	b.breakpoints = append(b.breakpoints, x)
}

// AddRefinement caps the cell size at maxStep across [lo, hi]. The interval
// endpoints also become breakpoints.
func (b *AxisBuilder) AddRefinement(lo, hi, maxStep float64) {
	if hi <= lo || maxStep <= 0 {
		return
	}
	b.AddBreakpoint(lo)
	b.AddBreakpoint(hi)
	b.refinements = append(b.refinements, refinement{geom.Interval{Lo: lo, Hi: hi}, maxStep})
}

// Build produces the sorted, de-duplicated grid-line coordinates.
func (b *AxisBuilder) Build() ([]float64, error) {
	if b.hi <= b.lo {
		return nil, fmt.Errorf("mesh: axis domain [%g, %g] is empty", b.lo, b.hi)
	}
	if b.defaultStep <= 0 {
		return nil, fmt.Errorf("mesh: default step %g must be > 0", b.defaultStep)
	}
	pts := append([]float64{b.lo, b.hi}, b.breakpoints...)
	sort.Float64s(pts)
	pts = dedupe(pts, (b.hi-b.lo)*1e-12)

	var lines []float64
	for s := 0; s < len(pts)-1; s++ {
		span := geom.Interval{Lo: pts[s], Hi: pts[s+1]}
		step := b.defaultStep
		for _, r := range b.refinements {
			if r.iv.Overlap(span) > 0 && r.step < step {
				step = r.step
			}
		}
		n := int(math.Ceil(span.Length() / step))
		if n < 1 {
			n = 1
		}
		d := span.Length() / float64(n)
		for i := 0; i < n; i++ {
			lines = append(lines, span.Lo+float64(i)*d)
		}
	}
	lines = append(lines, b.hi)
	return lines, nil
}

func dedupe(sorted []float64, eps float64) []float64 {
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v-out[len(out)-1] > eps {
			out = append(out, v)
		}
	}
	return out
}

// Grid is a structured non-uniform tensor-product grid. Lines along each
// axis define NX×NY×NZ cells.
type Grid struct {
	X, Y, Z []float64 // grid-line coordinates, ascending

	// Precomputed cell centres and sizes per axis.
	cx, cy, cz []float64
	dx, dy, dz []float64
}

// NewGrid validates the line sets and precomputes cell geometry.
func NewGrid(x, y, z []float64) (*Grid, error) {
	for _, ax := range []struct {
		name  string
		lines []float64
	}{{"x", x}, {"y", y}, {"z", z}} {
		if len(ax.lines) < 2 {
			return nil, fmt.Errorf("mesh: axis %s needs at least 2 lines, got %d", ax.name, len(ax.lines))
		}
		for i := 1; i < len(ax.lines); i++ {
			if ax.lines[i] <= ax.lines[i-1] {
				return nil, fmt.Errorf("mesh: axis %s lines not strictly increasing at %d", ax.name, i)
			}
		}
	}
	g := &Grid{X: x, Y: y, Z: z}
	g.cx, g.dx = centers(x)
	g.cy, g.dy = centers(y)
	g.cz, g.dz = centers(z)
	return g, nil
}

func centers(lines []float64) (c, d []float64) {
	n := len(lines) - 1
	c = make([]float64, n)
	d = make([]float64, n)
	for i := 0; i < n; i++ {
		c[i] = (lines[i] + lines[i+1]) / 2
		d[i] = lines[i+1] - lines[i]
	}
	return c, d
}

// NX returns the number of cells along x.
func (g *Grid) NX() int { return len(g.X) - 1 }

// NY returns the number of cells along y.
func (g *Grid) NY() int { return len(g.Y) - 1 }

// NZ returns the number of cells along z.
func (g *Grid) NZ() int { return len(g.Z) - 1 }

// NumCells returns the total cell count.
func (g *Grid) NumCells() int { return g.NX() * g.NY() * g.NZ() }

// Index flattens (i, j, k) into a linear cell index (x fastest).
func (g *Grid) Index(i, j, k int) int {
	return (k*g.NY()+j)*g.NX() + i
}

// Unflatten inverts Index.
func (g *Grid) Unflatten(idx int) (i, j, k int) {
	nx, ny := g.NX(), g.NY()
	i = idx % nx
	j = (idx / nx) % ny
	k = idx / (nx * ny)
	return
}

// CellBox returns the geometric box of cell (i, j, k).
func (g *Grid) CellBox(i, j, k int) geom.Box {
	return geom.Box{
		X: geom.Interval{Lo: g.X[i], Hi: g.X[i+1]},
		Y: geom.Interval{Lo: g.Y[j], Hi: g.Y[j+1]},
		Z: geom.Interval{Lo: g.Z[k], Hi: g.Z[k+1]},
	}
}

// CellCenter returns the centroid of cell (i, j, k).
func (g *Grid) CellCenter(i, j, k int) geom.Vec3 {
	return geom.Vec3{X: g.cx[i], Y: g.cy[j], Z: g.cz[k]}
}

// CellSize returns the extents of cell (i, j, k).
func (g *Grid) CellSize(i, j, k int) geom.Vec3 {
	return geom.Vec3{X: g.dx[i], Y: g.dy[j], Z: g.dz[k]}
}

// CellVolume returns the volume of cell (i, j, k).
func (g *Grid) CellVolume(i, j, k int) float64 {
	return g.dx[i] * g.dy[j] * g.dz[k]
}

// Domain returns the bounding box of the whole grid.
func (g *Grid) Domain() geom.Box {
	return geom.Box{
		X: geom.Interval{Lo: g.X[0], Hi: g.X[len(g.X)-1]},
		Y: geom.Interval{Lo: g.Y[0], Hi: g.Y[len(g.Y)-1]},
		Z: geom.Interval{Lo: g.Z[0], Hi: g.Z[len(g.Z)-1]},
	}
}

// FindCell locates the cell containing p, or ok=false if p is outside the
// domain.
func (g *Grid) FindCell(p geom.Vec3) (i, j, k int, ok bool) {
	i, ok1 := findInterval(g.X, p.X)
	j, ok2 := findInterval(g.Y, p.Y)
	k, ok3 := findInterval(g.Z, p.Z)
	return i, j, k, ok1 && ok2 && ok3
}

func findInterval(lines []float64, v float64) (int, bool) {
	n := len(lines) - 1
	if v < lines[0] || v > lines[n] {
		return 0, false
	}
	if v == lines[n] {
		return n - 1, true
	}
	idx := sort.SearchFloat64s(lines, v)
	if idx < len(lines) && lines[idx] == v {
		return idx, idx < n
	}
	return idx - 1, true
}

// CellsOverlapping returns the index ranges [i0,i1)×[j0,j1)×[k0,k1) of cells
// that overlap the box with positive volume.
func (g *Grid) CellsOverlapping(b geom.Box) (i0, i1, j0, j1, k0, k1 int) {
	i0, i1 = lineRange(g.X, b.X)
	j0, j1 = lineRange(g.Y, b.Y)
	k0, k1 = lineRange(g.Z, b.Z)
	return
}

func lineRange(lines []float64, iv geom.Interval) (lo, hi int) {
	n := len(lines) - 1
	lo = sort.SearchFloat64s(lines, iv.Lo)
	if lo > 0 && (lo > n || lines[lo] > iv.Lo) {
		lo--
	}
	// Skip cells entirely before the interval.
	for lo < n && lines[lo+1] <= iv.Lo {
		lo++
	}
	hi = lo
	for hi < n && lines[hi] < iv.Hi {
		hi++
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}
