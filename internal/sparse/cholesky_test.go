package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// relResidual returns ‖A·x − b‖/‖b‖.
func relResidual(a *CSR, x, b []float64) float64 {
	ax := make([]float64, a.N())
	a.MulVec(ax, x)
	num, den := 0.0, 0.0
	for i := range b {
		num += (ax[i] - b[i]) * (ax[i] - b[i])
		den += b[i] * b[i]
	}
	return math.Sqrt(num / den)
}

func TestSparseCholeskySolve(t *testing.T) {
	a := buildLaplacian2D(9, 7)
	n := a.N()
	chol, err := NewSparseCholesky(a, nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chol.N() != n {
		t.Fatalf("N() = %d, want %d", chol.N(), n)
	}
	rng := rand.New(rand.NewSource(31))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	chol.SolveInPlace(b)
	for i := range b {
		if e := math.Abs(b[i] - xTrue[i]); e > 1e-10 {
			t.Fatalf("direct solve error %g at %d, want ≤ 1e-10", e, i)
		}
	}
}

func TestSparseCholeskyMatchesBand(t *testing.T) {
	a := buildLaplacian3D(11, 7, 5)
	n := a.N()
	sp, err := NewSparseCholesky(a, nil, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := NewBandCholesky(a, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xs := append([]float64(nil), b...)
	xb := append([]float64(nil), b...)
	sp.SolveInPlace(xs)
	bd.SolveInPlace(xb)
	for i := range xs {
		if e := math.Abs(xs[i] - xb[i]); e > 1e-9 {
			t.Fatalf("sparse and band solutions differ by %g at %d", e, i)
		}
	}
	// The fill-reducing factor should not exceed the packed band size.
	if band := n * (bd.Bandwidth() + 1); sp.Nnz() > band {
		t.Fatalf("sparse factor has %d entries, more than the %d-entry band", sp.Nnz(), band)
	}
}

func TestSparseCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		a := randomSPD(rng, 40)
		chol, err := NewSparseCholesky(a, nil, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.N())
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := append([]float64(nil), b...)
		chol.SolveInPlace(x)
		if rel := relResidual(a, x, b); rel > 1e-10 {
			t.Fatalf("trial %d: relative residual %g", trial, rel)
		}
	}
}

// TestSparseCholeskyPermRoundTrip factors under explicit shuffled
// orderings: the permutation must round-trip — solutions come back in
// original index order regardless of the factor ordering — and the
// recorded Perm must reproduce the input.
func TestSparseCholeskyPermRoundTrip(t *testing.T) {
	a := buildLaplacian2D(8, 6)
	n := a.N()
	rng := rand.New(rand.NewSource(97))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ref := append([]float64(nil), b...)
	chol, err := NewSparseCholesky(a, nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	chol.SolveInPlace(ref)
	for trial := 0; trial < 4; trial++ {
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		pc, err := NewSparseCholesky(a, perm, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		got := pc.Perm()
		for i := range perm {
			if got[i] != perm[i] {
				t.Fatalf("trial %d: Perm()[%d] = %d, want %d", trial, i, got[i], perm[i])
			}
		}
		x := append([]float64(nil), b...)
		pc.SolveInPlace(x)
		for i := range x {
			if e := math.Abs(x[i] - ref[i]); e > 1e-9 {
				t.Fatalf("trial %d: permuted solve differs by %g at %d", trial, e, i)
			}
		}
	}
}

func TestSparseCholeskyBadOrdering(t *testing.T) {
	a := buildLaplacian1D(5)
	if _, err := NewSparseCholesky(a, []int32{0, 1, 2}, 0); err == nil {
		t.Fatal("short ordering should be rejected")
	}
	if _, err := NewSparseCholesky(a, []int32{0, 1, 2, 2, 4}, 0); err == nil {
		t.Fatal("duplicate ordering entry should be rejected")
	}
	if _, err := NewSparseCholesky(a, []int32{0, 1, 2, 9, 4}, 0); err == nil {
		t.Fatal("out-of-range ordering entry should be rejected")
	}
}

func TestSparseCholeskyEntryCap(t *testing.T) {
	a := buildLaplacian2D(20, 20)
	full, err := NewSparseCholesky(a, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSparseCholesky(a, full.Perm(), full.Nnz()-1); !errors.Is(err, ErrFactorTooLarge) {
		t.Fatalf("err = %v, want ErrFactorTooLarge", err)
	}
	if _, err := NewSparseCholesky(a, full.Perm(), full.Nnz()); err != nil {
		t.Fatalf("cap exactly at size should factor, got %v", err)
	}
	count, err := SparseCholeskyCount(a, full.Perm(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if count != full.Nnz() {
		t.Fatalf("symbolic count %d != factor entries %d", count, full.Nnz())
	}
	if _, err := SparseCholeskyCount(a, full.Perm(), full.Nnz()-1); !errors.Is(err, ErrFactorTooLarge) {
		t.Fatalf("count err = %v, want ErrFactorTooLarge", err)
	}
}

func TestSparseCholeskyNotPositiveDefinite(t *testing.T) {
	a := NewCOO(2)
	a.Add(0, 0, 1)
	a.Add(0, 1, 2)
	a.Add(1, 0, 2)
	a.Add(1, 1, 1) // eigenvalues 3 and -1: symmetric but indefinite
	if _, err := NewSparseCholesky(a.ToCSR(), nil, 1<<20); err == nil {
		t.Fatal("factoring an indefinite matrix should fail")
	}
}

func TestSparseCholeskySingular(t *testing.T) {
	// Singular: graph Laplacian with no diagonal shift (constant null
	// space). The last pivot collapses to ~0 and must be refused.
	n := 6
	a := NewCOO(n)
	for i := 0; i < n; i++ {
		if i > 0 {
			a.Add(i, i-1, -1)
			a.Add(i, i, 1)
		}
		if i < n-1 {
			a.Add(i, i+1, -1)
			a.Add(i, i, 1)
		}
	}
	if _, err := NewSparseCholesky(a.ToCSR(), nil, 1<<20); err == nil {
		t.Fatal("factoring a singular matrix should fail")
	}
}

func TestSparseCholesky32Mirror(t *testing.T) {
	a := buildLaplacian2D(12, 9)
	n := a.N()
	chol, err := NewSparseCholesky(a, nil, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	m32 := chol.Mirror32()
	if m32.N() != n {
		t.Fatalf("mirror N() = %d, want %d", m32.N(), n)
	}
	rng := rand.New(rand.NewSource(11))
	b := make([]float64, n)
	b32 := make([]float32, n)
	for i := range b {
		b[i] = rng.NormFloat64()
		b32[i] = float32(b[i])
	}
	chol.SolveInPlace(b)
	m32.SolveInPlace(b32)
	num, den := 0.0, 0.0
	for i := range b {
		d := float64(b32[i]) - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-5 {
		t.Fatalf("float32 mirror deviates from float64 solve by %g, want ≤ 1e-5", rel)
	}
}

func TestRCMOrderIsPermutation(t *testing.T) {
	for _, a := range []*CSR{buildLaplacian1D(17), buildLaplacian2D(13, 8), randomSPD(rand.New(rand.NewSource(3)), 30)} {
		perm := RCMOrder(a)
		if _, err := invertPerm(a.N(), perm); err != nil {
			t.Fatalf("RCM ordering invalid: %v", err)
		}
	}
}

// TestRCMOrderReducesFill sanity-checks that RCM is actually doing its
// job on a grid: its factor should carry no more fill than the identity
// ordering's.
func TestRCMOrderReducesFill(t *testing.T) {
	a := buildLaplacian2D(30, 4) // natural ordering has bandwidth 30
	ident := make([]int32, a.N())
	for i := range ident {
		ident[i] = int32(i)
	}
	nIdent, err := SparseCholeskyCount(a, ident, 0)
	if err != nil {
		t.Fatal(err)
	}
	nRCM, err := SparseCholeskyCount(a, RCMOrder(a), 0)
	if err != nil {
		t.Fatal(err)
	}
	if nRCM > nIdent {
		t.Fatalf("RCM fill %d exceeds natural-ordering fill %d", nRCM, nIdent)
	}
}
