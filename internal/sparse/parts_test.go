package sparse

import (
	"math"
	"testing"
)

func TestNewCSRFromPartsValid(t *testing.T) {
	// 2x2: [2 -1; -1 2]
	m, err := NewCSRFromParts(2,
		[]int{0, 2, 4},
		[]int32{0, 1, 0, 1},
		[]float64{2, -1, -1, 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 2 || m.At(0, 1) != -1 || m.At(1, 0) != -1 || m.At(1, 1) != 2 {
		t.Error("entries wrong")
	}
	if !m.IsSymmetric(0) {
		t.Error("should be symmetric")
	}
	y := make([]float64, 2)
	m.MulVec(y, []float64{1, 1})
	if y[0] != 1 || y[1] != 1 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestNewCSRFromPartsErrors(t *testing.T) {
	cases := []struct {
		name   string
		n      int
		rowPtr []int
		colIdx []int32
		values []float64
	}{
		{"short rowPtr", 2, []int{0, 2}, []int32{0, 1}, []float64{1, 1}},
		{"rowPtr[0] != 0", 1, []int{1, 1}, nil, nil},
		{"rowPtr[n] mismatch", 1, []int{0, 2}, []int32{0}, []float64{1}},
		{"len mismatch", 1, []int{0, 1}, []int32{0, 1}, []float64{1}},
		{"decreasing rowPtr", 2, []int{0, 2, 1}, []int32{0, 1}, []float64{1, 1}},
		{"column out of range", 1, []int{0, 1}, []int32{5}, []float64{1}},
		{"negative column", 1, []int{0, 1}, []int32{-1}, []float64{1}},
		{"unsorted columns", 1, []int{0, 2}, []int32{1, 0}, []float64{1, 1}},
		{"duplicate columns", 1, []int{0, 2}, []int32{0, 0}, []float64{1, 1}},
	}
	for _, c := range cases {
		if _, err := NewCSRFromParts(c.n, c.rowPtr, c.colIdx, c.values); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAddDiagonal(t *testing.T) {
	m := buildLaplacian1D(4)
	d := []float64{1, 2, 3, 4}
	m2 := AddDiagonal(m, d)
	for i := 0; i < 4; i++ {
		want := 2 + d[i]
		if got := m2.At(i, i); math.Abs(got-want) > 1e-15 {
			t.Errorf("diag[%d] = %g, want %g", i, got, want)
		}
		// Original untouched.
		if m.At(i, i) != 2 {
			t.Error("AddDiagonal mutated the input")
		}
	}
	// Off-diagonals preserved.
	if m2.At(0, 1) != -1 || m2.At(3, 2) != -1 {
		t.Error("off-diagonal entries changed")
	}
}

func TestAddDiagonalPanics(t *testing.T) {
	m := buildLaplacian1D(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on dimension mismatch")
			}
		}()
		AddDiagonal(m, []float64{1, 2})
	}()
}

func TestAddDiagonalSolvable(t *testing.T) {
	// Bumping the diagonal keeps the system SPD and changes the solution
	// in the expected direction (larger diagonal → smaller solution).
	n := 20
	m := buildLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x1, _, err := SolveCG(m, b, CGOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	bump := make([]float64, n)
	for i := range bump {
		bump[i] = 0.5
	}
	x2, _, err := SolveCG(AddDiagonal(m, bump), b, CGOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x2[i] >= x1[i] {
			t.Fatalf("solution did not shrink at %d: %g vs %g", i, x2[i], x1[i])
		}
	}
}
