package sparse

import (
	"errors"
	"math"
	"testing"
)

// TestMulVecBlockNMatchesColumns: the interleaved block product must equal
// per-column MulVec for every worker count.
func TestMulVecBlockNMatchesColumns(t *testing.T) {
	m := buildLaplacian3D(14, 11, 6)
	n := m.N()
	const s = 4
	x := make([]float64, n*s)
	cols := make([][]float64, s)
	for c := 0; c < s; c++ {
		cols[c] = rhsFor(n, int64(60+c))
		for i := 0; i < n; i++ {
			x[i*s+c] = cols[c][i]
		}
	}
	want := make([][]float64, s)
	for c := 0; c < s; c++ {
		want[c] = make([]float64, n)
		m.MulVecN(want[c], cols[c], 1)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		dst := make([]float64, n*s)
		m.MulVecBlockN(dst, x, s, workers)
		for c := 0; c < s; c++ {
			for i := 0; i < n; i++ {
				if dst[i*s+c] != want[c][i] {
					t.Fatalf("workers=%d col %d row %d: block %g vs column %g",
						workers, c, i, dst[i*s+c], want[c][i])
				}
			}
		}
	}
}

// TestBlockCGMatchesCG: the block solve over several right-hand sides must
// land on the same solutions as independent preconditioned CG runs, for
// every backend preconditioner.
func TestBlockCGMatchesCG(t *testing.T) {
	m := buildLaplacian3D(12, 10, 7)
	n := m.N()
	bs := make([][]float64, 4)
	for c := range bs {
		bs[c] = rhsFor(n, int64(7*c+1))
	}
	for _, backend := range Backends() {
		solver, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		pre, ok := solver.(Preconditioned)
		if !ok {
			t.Fatalf("%s does not expose a standalone preconditioner", backend)
		}
		precond, err := pre.Preconditioner(m)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([][]float64, len(bs))
		for c := range xs {
			xs[c] = make([]float64, n)
		}
		results, err := BlockCG(m, bs, xs, []func(z, r []float64){precond}, 1e-10, 0, 1)
		if err != nil {
			t.Fatalf("%s block: %v", backend, err)
		}
		for c := range bs {
			if !results[c].Converged {
				t.Fatalf("%s column %d did not converge", backend, c)
			}
			want, _, err := SolveCG(m, bs[c], CGOptions{Tolerance: 1e-12})
			if err != nil {
				t.Fatal(err)
			}
			if d := relDiff(xs[c], want); d > 1e-7 {
				t.Errorf("%s column %d: block vs CG rel diff %.2e", backend, c, d)
			}
		}
	}
}

// TestBlockCGPerColumnPreconds: per-column preconditioners (applied
// concurrently) must reproduce the shared-preconditioner solve exactly —
// the contract the parallel multigrid block path relies on. Run under
// -race this is also the data-race check for the concurrent application.
func TestBlockCGPerColumnPreconds(t *testing.T) {
	m := buildLaplacian3D(11, 9, 6)
	n := m.N()
	bs := make([][]float64, 4)
	for c := range bs {
		bs[c] = rhsFor(n, int64(11*c+2))
	}
	shared, err := (&SSORCG{}).Preconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, len(bs))
	for c := range want {
		want[c] = make([]float64, n)
	}
	wantRes, err := BlockCG(m, bs, want, []func(z, r []float64){shared}, 1e-10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	preconds := make([]func(z, r []float64), len(bs))
	for c := range preconds {
		if preconds[c], err = (&SSORCG{}).Preconditioner(m); err != nil {
			t.Fatal(err)
		}
	}
	got := make([][]float64, len(bs))
	for c := range got {
		got[c] = make([]float64, n)
	}
	gotRes, err := BlockCG(m, bs, got, preconds, 1e-10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for c := range bs {
		if gotRes[c].Iterations != wantRes[c].Iterations {
			t.Errorf("column %d: %d iterations per-column vs %d shared", c, gotRes[c].Iterations, wantRes[c].Iterations)
		}
		for i := range got[c] {
			if got[c][i] != want[c][i] {
				t.Fatalf("column %d entry %d: per-column %g vs shared %g", c, i, got[c][i], want[c][i])
			}
		}
	}
	if _, err := BlockCG(m, bs, got, preconds[:2], 1e-10, 0, 1); err == nil {
		t.Error("mismatched preconditioner count should error")
	}
}

// TestBlockCGSharedDirections: identical right-hand sides are the worst
// case for rank — the solver must either solve them or report a breakdown
// the caller can fall back from, never return a wrong answer silently.
func TestBlockCGSharedDirections(t *testing.T) {
	m := buildLaplacian3D(8, 8, 5)
	n := m.N()
	b := rhsFor(n, 3)
	bs := [][]float64{b, append([]float64(nil), b...)}
	xs := [][]float64{make([]float64, n), make([]float64, n)}
	solver := &CG{}
	precond, err := solver.Preconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	results, err := BlockCG(m, bs, xs, []func(z, r []float64){precond}, 1e-10, 0, 1)
	if err != nil {
		if !errors.Is(err, ErrBlockBreakdown) {
			t.Fatalf("unexpected error kind: %v", err)
		}
		return // breakdown correctly reported
	}
	want, _, err := SolveCG(m, b, CGOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for c := range xs {
		if !results[c].Converged {
			t.Fatalf("column %d did not converge", c)
		}
		if d := relDiff(xs[c], want); d > 1e-7 {
			t.Errorf("column %d rel diff %.2e", c, d)
		}
	}
}

// TestBlockCGZeroColumn: a zero right-hand side must come back as x = 0
// without poisoning the other columns.
func TestBlockCGZeroColumn(t *testing.T) {
	m := buildLaplacian3D(9, 8, 4)
	n := m.N()
	bs := [][]float64{rhsFor(n, 5), make([]float64, n)}
	xs := [][]float64{make([]float64, n), rhsFor(n, 6)} // non-zero seed on the zero column
	solver := &SSORCG{}
	precond, err := solver.Preconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	results, err := BlockCG(m, bs, xs, []func(z, r []float64){precond}, 1e-10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range xs[1] {
		if v != 0 {
			t.Fatalf("zero column entry %d = %g, want 0", i, v)
		}
	}
	if !results[0].Converged || !results[1].Converged {
		t.Error("both columns should converge")
	}
	want, _, err := SolveCG(m, bs[0], CGOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if d := relDiff(xs[0], want); d > 1e-7 {
		t.Errorf("non-zero column rel diff %.2e", d)
	}
}

// TestBlockCGBestIterateOnNonConvergence mirrors the single-RHS contract:
// a starved iteration budget must leave the best iterates in place.
func TestBlockCGBestIterateOnNonConvergence(t *testing.T) {
	m := buildLaplacian3D(12, 12, 6)
	n := m.N()
	bs := [][]float64{rhsFor(n, 8), rhsFor(n, 9)}
	xs := [][]float64{make([]float64, n), make([]float64, n)}
	solver := &CG{}
	precond, err := solver.Preconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	results, err := BlockCG(m, bs, xs, []func(z, r []float64){precond}, 1e-14, 3, 1)
	if err == nil {
		t.Fatal("expected non-convergence error")
	}
	if errors.Is(err, ErrBlockBreakdown) {
		t.Fatalf("budget exhaustion misreported as breakdown: %v", err)
	}
	for c, res := range results {
		if res.Iterations != 3 {
			t.Errorf("column %d iterations = %d, want 3", c, res.Iterations)
		}
		if res.Residual <= 0 || res.Residual >= 1 {
			t.Errorf("column %d residual %.2e outside (0, 1)", c, res.Residual)
		}
	}
}

// TestConfigValidate: Validate must reject unknown backends (naming the
// valid set) and out-of-range parameters without constructing anything.
func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Backend: "conjugate-gradient-deluxe"},
		{Omega: 2.5},
		{Omega: -0.1},
		{Tolerance: -1},
		{MaxIterations: -3},
		{Workers: -1},
		{MGLevels: -1},
		{MGSmooth: -2},
		{MGCoarseTol: -1e-9},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d (%+v) should fail validation", i, c)
		}
	}
	if err := (Config{Backend: "zzz"}).Validate(); err == nil || len(err.Error()) == 0 {
		t.Error("unknown backend error should name the valid list")
	} else {
		for _, name := range Backends() {
			found := false
			for _, sub := range []string{name} {
				if containsSub(err.Error(), sub) {
					found = true
				}
			}
			if !found {
				t.Errorf("validation error %q does not list backend %s", err, name)
			}
		}
	}
	good := []Config{
		{},
		{Backend: BackendSSORCG, Omega: 1.5, Workers: 4},
		{Backend: BackendJacobiCG, Tolerance: 1e-6, MaxIterations: 100},
		{MGLevels: 3, MGSmooth: 2, MGCoarseTol: 1e-10},
	}
	for i, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("config %d (%+v) rejected: %v", i, c, err)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestEveryBackendConstructs: every name reported by Backends() must build
// through Config.New with default parameters — the guarantee the CLI flag
// help and Spec validation rely on.
func TestEveryBackendConstructs(t *testing.T) {
	for _, backend := range Backends() {
		s, err := Config{Backend: backend}.New()
		if err != nil {
			t.Errorf("backend %s failed to construct: %v", backend, err)
			continue
		}
		if s.Name() != backend {
			t.Errorf("backend %s constructs a solver named %s", backend, s.Name())
		}
	}
}

// TestRegisterBackend covers the registry: a registered backend becomes
// listable and constructible; duplicates and built-in names panic.
func TestRegisterBackend(t *testing.T) {
	name := "test-identity"
	// The test backend must be fully functional: later tests in this
	// package iterate Backends() and exercise whatever they find.
	RegisterBackend(name, func(c Config) (Solver, error) {
		return &renamedCG{CG{Tolerance: c.Tolerance, MaxIterations: c.MaxIterations, Workers: c.Workers}}, nil
	})
	found := false
	for _, b := range Backends() {
		if b == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered backend %s missing from Backends()", name)
	}
	if _, err := NewSolver(name); err != nil {
		t.Fatalf("registered backend failed to construct: %v", err)
	}
	if err := (Config{Backend: name}).Validate(); err != nil {
		t.Fatalf("registered backend failed validation: %v", err)
	}
	mustPanic := func(fn func()) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { RegisterBackend(name, func(Config) (Solver, error) { return nil, nil }) })
	mustPanic(func() { RegisterBackend(BackendJacobiCG, func(Config) (Solver, error) { return nil, nil }) })
	mustPanic(func() { RegisterBackend("", nil) })
}

// renamedCG lets the registry test satisfy the Name() == backend contract
// TestEveryBackendConstructs checks.
type renamedCG struct{ CG }

func (*renamedCG) Name() string { return "test-identity" }

// TestPCGExportedMatchesSolve: the exported PCG engine with a Jacobi
// preconditioner must reproduce the CG backend bit-for-bit.
func TestPCGExportedMatchesSolve(t *testing.T) {
	m := buildLaplacian3D(10, 9, 5)
	b := rhsFor(m.N(), 17)
	want := make([]float64, m.N())
	if _, err := (&CG{}).Solve(m, b, want); err != nil {
		t.Fatal(err)
	}
	solver := &CG{}
	precond, err := solver.Preconditioner(m)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, m.N())
	res, err := PCG(m, b, got, solver.Workspace, precond, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("PCG did not converge")
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("entry %d: PCG %g vs Solve %g", i, got[i], want[i])
		}
	}
}
