// Package sparse implements the sparse linear algebra needed by the
// finite-volume thermal solver: compressed sparse row (CSR) matrices, a
// Jacobi-preconditioned conjugate gradient solver for symmetric positive
// definite systems, and a Gauss–Seidel smoother usable as a standalone
// iterative solver for small systems.
package sparse

import (
	"fmt"
	"math"
)

// COO is a matrix under assembly, stored as coordinate triplets with
// accumulation: adding to the same (row, col) twice sums the entries.
type COO struct {
	n       int
	entries map[coord]float64
}

type coord struct{ r, c int }

// NewCOO creates an n×n matrix accumulator.
func NewCOO(n int) *COO {
	return &COO{n: n, entries: make(map[coord]float64)}
}

// N returns the matrix dimension.
func (a *COO) N() int { return a.n }

// Add accumulates v into entry (r, c). Out-of-range indices panic, as they
// indicate a programming error in assembly code.
func (a *COO) Add(r, c int, v float64) {
	if r < 0 || r >= a.n || c < 0 || c >= a.n {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for n=%d", r, c, a.n))
	}
	if v == 0 {
		return
	}
	a.entries[coord{r, c}] += v
}

// ToCSR converts the accumulated triplets to CSR form. Zero accumulated
// entries are dropped except diagonal entries, which are always kept so that
// preconditioners can rely on their presence.
func (a *COO) ToCSR() *CSR {
	counts := make([]int, a.n+1)
	hasDiag := make([]bool, a.n)
	for c := range a.entries {
		counts[c.r+1]++
		if c.r == c.c {
			hasDiag[c.r] = true
		}
	}
	for i := 0; i < a.n; i++ {
		if !hasDiag[i] {
			counts[i+1]++
		}
	}
	for i := 0; i < a.n; i++ {
		counts[i+1] += counts[i]
	}
	nnz := counts[a.n]
	m := &CSR{
		n:      a.n,
		rowPtr: counts,
		colIdx: make([]int32, nnz),
		values: make([]float64, nnz),
	}
	next := make([]int, a.n)
	copy(next, counts[:a.n])
	for c, v := range a.entries {
		p := next[c.r]
		next[c.r]++
		m.colIdx[p] = int32(c.c)
		m.values[p] = v
	}
	for i := 0; i < a.n; i++ {
		if !hasDiag[i] {
			p := next[i]
			next[i]++
			m.colIdx[p] = int32(i)
			m.values[p] = 0
		}
	}
	m.sortRows()
	return m
}

// CSR is an n×n sparse matrix in compressed sparse row format.
type CSR struct {
	n      int
	rowPtr []int
	colIdx []int32
	values []float64
}

// NewCSRFromParts builds a CSR matrix directly from its raw arrays. The
// caller promises that colIdx within each row is sorted; rowPtr must be
// non-decreasing with rowPtr[0]==0 and rowPtr[n]==len(values). This is the
// fast path used by structured-grid assembly, where the stencil layout is
// known in advance.
func NewCSRFromParts(n int, rowPtr []int, colIdx []int32, values []float64) (*CSR, error) {
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("sparse: rowPtr length %d != n+1 (%d)", len(rowPtr), n+1)
	}
	if rowPtr[0] != 0 || rowPtr[n] != len(values) || len(values) != len(colIdx) {
		return nil, fmt.Errorf("sparse: inconsistent CSR arrays (rowPtr[0]=%d, rowPtr[n]=%d, nnz=%d/%d)",
			rowPtr[0], rowPtr[n], len(colIdx), len(values))
	}
	for i := 0; i < n; i++ {
		if rowPtr[i+1] < rowPtr[i] {
			return nil, fmt.Errorf("sparse: rowPtr decreases at row %d", i)
		}
		for p := rowPtr[i]; p < rowPtr[i+1]; p++ {
			if colIdx[p] < 0 || int(colIdx[p]) >= n {
				return nil, fmt.Errorf("sparse: column %d out of range in row %d", colIdx[p], i)
			}
			if p > rowPtr[i] && colIdx[p] <= colIdx[p-1] {
				return nil, fmt.Errorf("sparse: row %d columns not strictly increasing", i)
			}
		}
	}
	return &CSR{n: n, rowPtr: rowPtr, colIdx: colIdx, values: values}, nil
}

// N returns the matrix dimension.
func (m *CSR) N() int { return m.n }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.values) }

// Row returns read-only views of row i's column indices (sorted ascending)
// and values. Callers must not modify the returned slices; they alias the
// matrix storage. This is the raw access triple-product assembly (Galerkin
// coarse-grid operators) is built on.
func (m *CSR) Row(i int) (cols []int32, vals []float64) {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	return m.colIdx[lo:hi], m.values[lo:hi]
}

// AddDiagonal returns a copy of m with d[i] added to each diagonal entry.
// Every row of m must already store its diagonal (guaranteed for matrices
// built by COO.ToCSR or the FVM assembler).
func AddDiagonal(m *CSR, d []float64) *CSR {
	if len(d) != m.n {
		panic("sparse: AddDiagonal dimension mismatch")
	}
	out := &CSR{
		n:      m.n,
		rowPtr: m.rowPtr, // shared: structure is immutable
		colIdx: m.colIdx,
		values: make([]float64, len(m.values)),
	}
	copy(out.values, m.values)
	for i := 0; i < m.n; i++ {
		found := false
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if int(m.colIdx[p]) == i {
				out.values[p] += d[i]
				found = true
				break
			}
		}
		if !found {
			panic(fmt.Sprintf("sparse: AddDiagonal: row %d has no stored diagonal", i))
		}
	}
	return out
}

func (m *CSR) sortRows() {
	for i := 0; i < m.n; i++ {
		lo, hi := m.rowPtr[i], m.rowPtr[i+1]
		// Insertion sort: rows are short (≤ 7 entries for a 3D stencil).
		for j := lo + 1; j < hi; j++ {
			cj, vj := m.colIdx[j], m.values[j]
			k := j - 1
			for k >= lo && m.colIdx[k] > cj {
				m.colIdx[k+1] = m.colIdx[k]
				m.values[k+1] = m.values[k]
				k--
			}
			m.colIdx[k+1] = cj
			m.values[k+1] = vj
		}
	}
}

// At returns entry (r, c), or 0 if not stored.
func (m *CSR) At(r, c int) float64 {
	if r < 0 || r >= m.n || c < 0 || c >= m.n {
		return 0
	}
	for p := m.rowPtr[r]; p < m.rowPtr[r+1]; p++ {
		if int(m.colIdx[p]) == c {
			return m.values[p]
		}
	}
	return 0
}

// Diag returns a copy of the diagonal.
func (m *CSR) Diag() []float64 {
	d := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			if int(m.colIdx[p]) == i {
				d[i] = m.values[p]
				break
			}
		}
	}
	return d
}

// IsSymmetric reports whether the matrix equals its transpose within tol.
func (m *CSR) IsSymmetric(tol float64) bool {
	for i := 0; i < m.n; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := int(m.colIdx[p])
			if math.Abs(m.values[p]-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MulVec computes dst = m · x. dst and x must have length N and must not
// alias. For large systems the row loop is split across CPUs; use MulVecN
// to control the worker count explicitly.
func (m *CSR) MulVec(dst, x []float64) {
	m.MulVecN(dst, x, 0)
}

func (m *CSR) mulRange(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var sum float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			sum += m.values[p] * x[m.colIdx[p]]
		}
		dst[i] = sum
	}
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	// MaxIterations bounds the iteration count; 0 means 10·n.
	MaxIterations int
	// Tolerance is the relative residual target ‖r‖/‖b‖; 0 means 1e-9.
	Tolerance float64
	// InitialGuess, if non-nil, seeds the iteration (it is not modified).
	InitialGuess []float64
}

// CGResult reports how a solve went. It is an alias of the Result type
// shared by all Solver backends.
type CGResult = Result

// SolveCG solves A·x = b for symmetric positive definite A using the
// conjugate gradient method with Jacobi (diagonal) preconditioning. It is
// a convenience wrapper over the CG Solver backend that allocates a fresh
// solution vector per call; hot paths should hold a Solver and reuse its
// workspace instead.
//
// On non-convergence the best iterate reached is returned alongside the
// populated CGResult and a non-nil error, so callers can inspect partial
// solutions (for example to relax the tolerance or warm-start a retry).
func SolveCG(a *CSR, b []float64, opts CGOptions) ([]float64, CGResult, error) {
	n := a.N()
	x := make([]float64, n)
	if opts.InitialGuess != nil {
		if len(opts.InitialGuess) != n {
			return nil, CGResult{}, fmt.Errorf("sparse: initial guess length %d != n %d", len(opts.InitialGuess), n)
		}
		copy(x, opts.InitialGuess)
	}
	s := CG{Tolerance: opts.Tolerance, MaxIterations: opts.MaxIterations}
	res, err := s.Solve(a, b, x)
	return x, res, err
}

// GaussSeidelSweeps applies count symmetric Gauss–Seidel sweeps to the
// system A·x = b in place and returns the relative residual afterwards.
// Useful as a smoother and as a fallback solver for tiny systems.
func GaussSeidelSweeps(a *CSR, x, b []float64, count int) (float64, error) {
	n := a.N()
	if len(x) != n || len(b) != n {
		return 0, fmt.Errorf("sparse: dimension mismatch")
	}
	diag := a.Diag()
	for i, d := range diag {
		if d == 0 {
			return 0, fmt.Errorf("sparse: zero diagonal at row %d", i)
		}
	}
	for s := 0; s < count; s++ {
		// Forward sweep.
		for i := 0; i < n; i++ {
			sum := b[i]
			for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
				j := int(a.colIdx[p])
				if j != i {
					sum -= a.values[p] * x[j]
				}
			}
			x[i] = sum / diag[i]
		}
		// Backward sweep.
		for i := n - 1; i >= 0; i-- {
			sum := b[i]
			for p := a.rowPtr[i]; p < a.rowPtr[i+1]; p++ {
				j := int(a.colIdx[p])
				if j != i {
					sum -= a.values[p] * x[j]
				}
			}
			x[i] = sum / diag[i]
		}
	}
	r := make([]float64, n)
	a.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bn := Norm2(b)
	if bn == 0 {
		bn = 1
	}
	return Norm2(r) / bn, nil
}
