package sparse

import "sync"

// CSR32 is a float32 mirror of a CSR matrix: the sparsity structure
// (rowPtr, colIdx) is shared with the source matrix and only the values
// are stored again, in single precision. It exists for mixed-precision
// preconditioning — stencil operators are memory-bandwidth-bound, so a
// V-cycle applied in float32 moves half the bytes of the float64 one —
// and is immutable after construction, safe for concurrent use.
type CSR32 struct {
	n      int
	rowPtr []int
	colIdx []int32
	values []float32
}

// NewCSR32 builds the float32 mirror of m. Structure arrays are shared
// (m is immutable); values are rounded to single precision.
func NewCSR32(m *CSR) *CSR32 {
	vals := make([]float32, len(m.values))
	for i, v := range m.values {
		vals[i] = float32(v)
	}
	return &CSR32{n: m.n, rowPtr: m.rowPtr, colIdx: m.colIdx, values: vals}
}

// N returns the matrix dimension.
func (m *CSR32) N() int { return m.n }

func (m *CSR32) mulRange(dst, x []float32, lo, hi int) {
	for i := lo; i < hi; i++ {
		var sum float32
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			sum += m.values[p] * x[m.colIdx[p]]
		}
		dst[i] = sum
	}
}

// MulVecN computes dst = m · x in single precision using up to workers
// goroutines (0 means GOMAXPROCS); small systems run serially, mirroring
// CSR.MulVecN.
func (m *CSR32) MulVecN(dst, x []float32, workers int) {
	if len(dst) != m.n || len(x) != m.n {
		panic("sparse: CSR32 MulVec dimension mismatch")
	}
	workers = mulVecWorkers(m.n, workers)
	if workers == 1 {
		m.mulRange(dst, x, 0, m.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.n {
			hi = m.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRange(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
