package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildLaplacian2D assembles the 5-point Laplacian on an nx×ny grid with a
// unit diagonal shift — SPD with bandwidth nx, the shape of a coarsest
// multigrid level.
func buildLaplacian2D(nx, ny int) *CSR {
	a := NewCOO(nx * ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			idx := j*nx + i
			a.Add(idx, idx, 5)
			if i > 0 {
				a.Add(idx, idx-1, -1)
			}
			if i < nx-1 {
				a.Add(idx, idx+1, -1)
			}
			if j > 0 {
				a.Add(idx, idx-nx, -1)
			}
			if j < ny-1 {
				a.Add(idx, idx+nx, -1)
			}
		}
	}
	return a.ToCSR()
}

func TestBandCholeskySolve(t *testing.T) {
	a := buildLaplacian2D(9, 7)
	n := a.N()
	chol, err := NewBandCholesky(a, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if chol.N() != n {
		t.Fatalf("N() = %d, want %d", chol.N(), n)
	}
	if chol.Bandwidth() != 9 {
		t.Fatalf("Bandwidth() = %d, want 9", chol.Bandwidth())
	}
	rng := rand.New(rand.NewSource(31))
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(b, xTrue)
	chol.SolveInPlace(b)
	maxErr := 0.0
	for i := range b {
		if e := math.Abs(b[i] - xTrue[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-10 {
		t.Fatalf("direct solve error %g, want ≤ 1e-10", maxErr)
	}
}

func TestBandCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 5; trial++ {
		a := randomSPD(rng, 40)
		chol, err := NewBandCholesky(a, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, a.N())
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := append([]float64(nil), b...)
		chol.SolveInPlace(x)
		// Residual check: A·x should reproduce b.
		ax := make([]float64, a.N())
		a.MulVec(ax, x)
		num, den := 0.0, 0.0
		for i := range b {
			num += (ax[i] - b[i]) * (ax[i] - b[i])
			den += b[i] * b[i]
		}
		if rel := math.Sqrt(num / den); rel > 1e-10 {
			t.Fatalf("trial %d: relative residual %g", trial, rel)
		}
	}
}

func TestBandCholeskyEntryCap(t *testing.T) {
	a := buildLaplacian2D(20, 20)
	// bandwidth 20 → 400·21 = 8400 packed entries; a cap below that must
	// refuse with the sentinel so callers fall back to the iterative path.
	if _, err := NewBandCholesky(a, 8000); !errors.Is(err, ErrBandTooLarge) {
		t.Fatalf("err = %v, want ErrBandTooLarge", err)
	}
	if _, err := NewBandCholesky(a, 8400); err != nil {
		t.Fatalf("cap exactly at size should factor, got %v", err)
	}
}

func TestBandCholeskyNotPositiveDefinite(t *testing.T) {
	a := NewCOO(2)
	a.Add(0, 0, 1)
	a.Add(0, 1, 2)
	a.Add(1, 0, 2)
	a.Add(1, 1, 1) // eigenvalues 3 and -1: symmetric but indefinite
	if _, err := NewBandCholesky(a.ToCSR(), 1<<20); err == nil {
		t.Fatal("factoring an indefinite matrix should fail")
	}
}
