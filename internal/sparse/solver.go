package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// Result reports how an iterative solve went. It is the common currency of
// every Solver backend.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ‖r‖/‖b‖
	Converged  bool
}

// Solver is a pluggable linear solver for symmetric positive definite
// systems. Solve computes x ≈ A⁻¹·b; the incoming contents of x seed the
// iteration (warm start) and the solution is written back into x, so
// repeated solves against slowly varying right-hand sides converge fast
// without any allocation.
//
// A Solver instance owns a reusable workspace and is therefore NOT safe
// for concurrent use; create one instance per goroutine (they are cheap —
// the workspace is allocated lazily on first Solve and grown on demand).
type Solver interface {
	// Name identifies the backend (e.g. "jacobi-cg", "ssor-cg").
	Name() string
	// Solve solves a·x = b in place. On non-convergence the best iterate
	// reached is left in x and a non-nil error is returned alongside the
	// populated Result.
	Solve(a *CSR, b, x []float64) (Result, error)
}

// Backend names accepted by Config and NewSolver.
const (
	BackendJacobiCG = "jacobi-cg"
	BackendSSORCG   = "ssor-cg"
)

// Backends lists the available solver backends.
func Backends() []string { return []string{BackendJacobiCG, BackendSSORCG} }

// Config selects and parameterises a solver backend.
type Config struct {
	// Backend is one of Backends(); empty selects jacobi-cg.
	Backend string
	// Tolerance is the relative residual target ‖r‖/‖b‖; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds the iteration count; 0 means 10·n.
	MaxIterations int
	// Workers caps the goroutines used by matrix-vector products; 0 means
	// GOMAXPROCS, 1 forces serial execution.
	Workers int
	// Omega is the SSOR relaxation factor in (0, 2); 0 means 1.2. Ignored
	// by the Jacobi backend.
	Omega float64
}

// New builds the configured solver.
func (c Config) New() (Solver, error) {
	switch c.Backend {
	case "", BackendJacobiCG, "cg", "jacobi":
		return &CG{Tolerance: c.Tolerance, MaxIterations: c.MaxIterations, Workers: c.Workers}, nil
	case BackendSSORCG, "ssor":
		if c.Omega != 0 && (c.Omega <= 0 || c.Omega >= 2) {
			return nil, fmt.Errorf("sparse: SSOR omega %g outside (0, 2)", c.Omega)
		}
		return &SSORCG{Tolerance: c.Tolerance, MaxIterations: c.MaxIterations, Workers: c.Workers, Omega: c.Omega}, nil
	default:
		return nil, fmt.Errorf("sparse: unknown solver backend %q (have %v)", c.Backend, Backends())
	}
}

// NewSolver builds a solver by backend name with default parameters.
func NewSolver(backend string) (Solver, error) { return Config{Backend: backend}.New() }

// Workspace holds the scratch vectors of a preconditioned CG solve so
// repeated solves against same-sized systems allocate nothing. The zero
// value is ready to use; vectors grow on demand.
type Workspace struct {
	r, z, p, ap []float64
	// precond holds preconditioner state (inverse diagonal for Jacobi,
	// diagonal for SSOR); rebuilt when the matrix or backend changes.
	precond     []float64
	precondFor  *CSR
	precondKind uint8
}

const (
	precondNone uint8 = iota
	precondJacobi
	precondSSOR
)

// NewWorkspace pre-sizes a workspace for n-dimensional systems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

func (w *Workspace) ensure(n int) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
		w.precond = make([]float64, n)
		w.precondFor = nil
		w.precondKind = precondNone
	}
	w.r = w.r[:n]
	w.z = w.z[:n]
	w.p = w.p[:n]
	w.ap = w.ap[:n]
	w.precond = w.precond[:n]
}

// mulVecWorkers resolves a worker count for an n-row product.
func mulVecWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < 4096 {
		return 1
	}
	if max := n / 2048; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MulVecN computes dst = m · x using up to workers goroutines (0 means
// GOMAXPROCS). Rows are split into contiguous ranges; small systems run
// serially regardless.
func (m *CSR) MulVecN(dst, x []float64, workers int) {
	if len(dst) != m.n || len(x) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	workers = mulVecWorkers(m.n, workers)
	if workers == 1 {
		m.mulRange(dst, x, 0, m.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.n {
			hi = m.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRange(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// CG is the Jacobi (diagonal) preconditioned conjugate gradient backend —
// the solver the seed shipped with, now allocation-free across solves.
type CG struct {
	// Tolerance is the relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps MulVec goroutines; 0 means GOMAXPROCS.
	Workers int
	// Workspace may be supplied to share scratch space; nil lazily
	// allocates one owned by this instance.
	Workspace *Workspace
}

// Name implements Solver.
func (s *CG) Name() string { return BackendJacobiCG }

// Solve implements Solver.
func (s *CG) Solve(a *CSR, b, x []float64) (Result, error) {
	if s.Workspace == nil {
		s.Workspace = &Workspace{}
	}
	w := s.Workspace
	w.ensure(a.n)
	if w.precondFor != a || w.precondKind != precondJacobi {
		for i := 0; i < a.n; i++ {
			d := a.diagAt(i)
			if d <= 0 {
				return Result{}, fmt.Errorf("sparse: non-positive diagonal %g at row %d (matrix not SPD?)", d, i)
			}
			w.precond[i] = 1 / d
		}
		w.precondFor = a
		w.precondKind = precondJacobi
	}
	precond := func(z, r []float64) {
		inv := w.precond
		for i := range z {
			z[i] = inv[i] * r[i]
		}
	}
	return pcg(a, b, x, w, precond, s.Tolerance, s.MaxIterations, s.Workers)
}

// SSORCG is a symmetric-successive-over-relaxation preconditioned
// conjugate gradient backend. The SSOR preconditioner
//
//	M = (D/ω + L) · (ω/(2−ω)) D⁻¹ · (D/ω + U)
//
// reuses the matrix itself (no extra factorisation storage) and typically
// halves the iteration count of Jacobi-CG on FVM conduction systems,
// trading a forward+backward triangular sweep per iteration.
type SSORCG struct {
	// Tolerance is the relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps MulVec goroutines; 0 means GOMAXPROCS. The triangular
	// preconditioner sweeps are inherently serial.
	Workers int
	// Omega is the relaxation factor in (0, 2); 0 means 1.2.
	Omega float64
	// Workspace may be supplied to share scratch space; nil lazily
	// allocates one owned by this instance.
	Workspace *Workspace
}

// Name implements Solver.
func (s *SSORCG) Name() string { return BackendSSORCG }

// Solve implements Solver.
func (s *SSORCG) Solve(a *CSR, b, x []float64) (Result, error) {
	omega := s.Omega
	if omega == 0 {
		omega = 1.2
	}
	if omega <= 0 || omega >= 2 {
		return Result{}, fmt.Errorf("sparse: SSOR omega %g outside (0, 2)", omega)
	}
	if s.Workspace == nil {
		s.Workspace = &Workspace{}
	}
	w := s.Workspace
	w.ensure(a.n)
	if w.precondFor != a || w.precondKind != precondSSOR {
		for i := 0; i < a.n; i++ {
			d := a.diagAt(i)
			if d <= 0 {
				return Result{}, fmt.Errorf("sparse: non-positive diagonal %g at row %d (matrix not SPD?)", d, i)
			}
			w.precond[i] = d
		}
		w.precondFor = a
		w.precondKind = precondSSOR
	}
	precond := func(z, r []float64) {
		a.ssorApply(z, r, w.precond, omega)
	}
	return pcg(a, b, x, w, precond, s.Tolerance, s.MaxIterations, s.Workers)
}

// diagAt returns the stored diagonal of row i (0 if absent).
func (m *CSR) diagAt(i int) float64 {
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		if int(m.colIdx[p]) == i {
			return m.values[p]
		}
	}
	return 0
}

// ssorApply computes z = M⁻¹·r for the SSOR preconditioner:
//
//	z = ω(2−ω) · (D + ωU)⁻¹ · D · (D + ωL)⁻¹ · r
//
// using z itself as the intermediate vector, so no scratch is needed.
func (m *CSR) ssorApply(z, r, diag []float64, omega float64) {
	n := m.n
	// Forward solve (D + ωL)·y = r; y lives in z.
	for i := 0; i < n; i++ {
		sum := r[i]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := int(m.colIdx[p])
			if j >= i {
				break // columns are sorted; L entries exhausted
			}
			sum -= omega * m.values[p] * z[j]
		}
		z[i] = sum / diag[i]
	}
	// Scale by D and solve (D + ωU)·z = D·y backwards. The constant
	// ω(2−ω) factor is applied after the substitution: folding it into
	// each entry as it is computed would feed scaled values back into the
	// recurrence and break the preconditioner's symmetry.
	for i := n - 1; i >= 0; i-- {
		sum := diag[i] * z[i]
		for p := m.rowPtr[i+1] - 1; p >= m.rowPtr[i]; p-- {
			j := int(m.colIdx[p])
			if j <= i {
				break // U entries exhausted
			}
			sum -= omega * m.values[p] * z[j]
		}
		z[i] = sum / diag[i]
	}
	scale := omega * (2 - omega)
	for i := range z {
		z[i] *= scale
	}
}

// pcg is the shared preconditioned conjugate gradient engine. precond must
// compute z = M⁻¹·r. x is warm-start input and solution output; the best
// iterate is always left in x, converged or not.
func pcg(a *CSR, b, x []float64, w *Workspace, precond func(z, r []float64), tol float64, maxIter, workers int) (Result, error) {
	n := a.n
	if len(b) != n {
		return Result{}, fmt.Errorf("sparse: rhs length %d != n %d", len(b), n)
	}
	if len(x) != n {
		return Result{}, fmt.Errorf("sparse: solution length %d != n %d", len(x), n)
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if tol <= 0 {
		tol = 1e-9
	}
	bNorm := Norm2(b)
	if bNorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}

	r, z, p, ap := w.r, w.z, w.p, w.ap
	a.MulVecN(ap, x, workers)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	precond(z, r)
	copy(p, z)
	rz := Dot(r, z)

	var res Result
	res.Residual = Norm2(r) / bNorm
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k + 1
		a.MulVecN(ap, p, workers)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("sparse: p·Ap = %g not positive at iteration %d (matrix not SPD)", pap, k)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rNorm := Norm2(r)
		res.Residual = rNorm / bNorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		precond(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, fmt.Errorf("sparse: CG did not converge in %d iterations (residual %.3e)", maxIter, res.Residual)
}
