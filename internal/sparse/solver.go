package sparse

import (
	"fmt"
	"runtime"
	"sync"
)

// GridHint carries the structured-grid geometry a matrix was assembled on:
// the grid-line coordinates of a tensor-product mesh (len = cells+1 per
// axis). Geometry-aware backends (geometric multigrid) need it to build
// their mesh hierarchy; algebraic backends ignore it.
type GridHint struct {
	X, Y, Z []float64
}

// NX returns the cell count along x (0 for an empty hint).
func (h GridHint) NX() int { return max0(len(h.X) - 1) }

// NY returns the cell count along y (0 for an empty hint).
func (h GridHint) NY() int { return max0(len(h.Y) - 1) }

// NZ returns the cell count along z (0 for an empty hint).
func (h GridHint) NZ() int { return max0(len(h.Z) - 1) }

// Empty reports whether no geometry was provided.
func (h GridHint) Empty() bool { return len(h.X) == 0 && len(h.Y) == 0 && len(h.Z) == 0 }

func max0(v int) int {
	if v < 0 {
		return 0
	}
	return v
}

// GridSolver is implemented by backends that exploit grid geometry.
// Callers that know the mesh behind a matrix (the FVM layer does) should
// pass it down before the first Solve; solving a grid-dependent backend
// without a hint fails with a descriptive error.
type GridSolver interface {
	Solver
	// SetGridHint supplies the structured-grid geometry of upcoming
	// matrices. The product of the axis cell counts must match N of every
	// matrix later passed to Solve.
	SetGridHint(h GridHint)
}

// Preconditioned is implemented by backends whose preconditioner can be
// prepared once and applied standalone. Block (multi-RHS) Krylov solves
// use it to share one preconditioner across all right-hand sides.
type Preconditioned interface {
	// Preconditioner prepares M⁻¹ for a and returns its application
	// z = M⁻¹·r. The closure may share the solver's workspace and is NOT
	// safe for concurrent use.
	Preconditioner(a *CSR) (func(z, r []float64), error)
}

// Result reports how an iterative solve went. It is the common currency of
// every Solver backend.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ‖r‖/‖b‖
	Converged  bool
}

// Solver is a pluggable linear solver for symmetric positive definite
// systems. Solve computes x ≈ A⁻¹·b; the incoming contents of x seed the
// iteration (warm start) and the solution is written back into x, so
// repeated solves against slowly varying right-hand sides converge fast
// without any allocation.
//
// A Solver instance owns a reusable workspace and is therefore NOT safe
// for concurrent use; create one instance per goroutine (they are cheap —
// the workspace is allocated lazily on first Solve and grown on demand).
type Solver interface {
	// Name identifies the backend (e.g. "jacobi-cg", "ssor-cg").
	Name() string
	// Solve solves a·x = b in place. On non-convergence the best iterate
	// reached is left in x and a non-nil error is returned alongside the
	// populated Result.
	Solve(a *CSR, b, x []float64) (Result, error)
}

// Backend names accepted by Config and NewSolver. BackendMGCG is only
// available once its package (internal/mg) has been linked in — it
// registers itself via RegisterBackend; the FVM layer imports it, so any
// program using the thermal stack has all three.
const (
	BackendJacobiCG = "jacobi-cg"
	BackendSSORCG   = "ssor-cg"
	BackendMGCG     = "mg-cg"
)

// BackendFactory builds a Solver from a Config. The Config's Backend field
// matches the name the factory was registered under.
type BackendFactory func(Config) (Solver, error)

var (
	registryMu    sync.RWMutex
	registryNames []string
	registry      = map[string]BackendFactory{}
)

// RegisterBackend makes an external solver backend constructible through
// Config.New and visible in Backends. Registering a built-in or duplicate
// name panics: backend names are package-level constants, so a collision
// is a programming error.
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("sparse: RegisterBackend with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == BackendJacobiCG || name == BackendSSORCG {
		panic(fmt.Sprintf("sparse: backend %q is built in", name))
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("sparse: backend %q registered twice", name))
	}
	registry[name] = f
	registryNames = append(registryNames, name)
}

// Backends lists the available solver backends: the built-ins followed by
// registered ones in registration order.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := []string{BackendJacobiCG, BackendSSORCG}
	return append(names, registryNames...)
}

// Config selects and parameterises a solver backend.
type Config struct {
	// Backend is one of Backends(); empty selects jacobi-cg.
	Backend string
	// Tolerance is the relative residual target ‖r‖/‖b‖; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds the iteration count; 0 means 10·n.
	MaxIterations int
	// Workers caps the goroutines used by matrix-vector products; 0 means
	// GOMAXPROCS, 1 forces serial execution.
	Workers int
	// Omega is the SSOR relaxation factor in (0, 2); 0 means 1.2 for the
	// SSOR-CG backend and 1.0 for the multigrid smoother. Ignored by the
	// Jacobi backend.
	Omega float64

	// MGLevels caps the multigrid hierarchy depth; 0 coarsens until the
	// level is small. Ignored by non-multigrid backends.
	MGLevels int
	// MGSmooth is the number of pre- and post-smoothing sweeps per V-cycle
	// side; 0 means 1. Ignored by non-multigrid backends.
	MGSmooth int
	// MGCoarseTol is the relative tolerance of the coarsest-level solve;
	// 0 means 1e-12 (effectively exact, keeping the V-cycle a fixed SPD
	// operator as CG requires). Ignored by non-multigrid backends.
	MGCoarseTol float64
	// MGOrdering selects the multigrid line-smoother sweep ordering:
	// "redblack" (default) relaxes independently coloured lateral lines
	// concurrently on the worker pool, "lex" is the serial lexicographic
	// reference sweep. Ignored by non-multigrid backends.
	MGOrdering string
	// MGPrecision selects the V-cycle arithmetic: "float32" applies the
	// preconditioner in single precision (half the memory traffic on the
	// bandwidth-bound stencil ops; the outer CG stays float64), "float64"
	// forces double precision, and "" auto-selects float32 when the outer
	// tolerance permits it. Ignored by non-multigrid backends.
	MGPrecision string
	// MGCoarseSolver forces one tier of the multigrid coarse-solve
	// ladder: "sparse" (fill-reducing sparse Cholesky), "band" (dense-band
	// Cholesky), "iterative" (measured zline-vs-SSOR PCG trial); empty
	// walks the ladder in that order. Ignored by non-multigrid backends.
	MGCoarseSolver string
	// MGCoarseBudget caps the stored entries (float64 values) of the
	// direct coarsest-level factorisation; 0 means the mg package default
	// (or the VCSELNOC_MG_COARSE_BUDGET environment override), negative
	// disables the direct tiers entirely. Ignored by non-multigrid
	// backends.
	MGCoarseBudget int
	// MGCoarseRebalance opts into appending extra aggressively rebalanced
	// coarsening levels until the coarsest level fits the factorisation
	// budget. Ignored by non-multigrid backends.
	MGCoarseRebalance bool
}

// Validate checks the configuration without building a solver: the backend
// must be known (the error lists the valid names) and every set parameter
// must be in range.
func (c Config) Validate() error {
	known := c.Backend == "" || c.Backend == "cg" || c.Backend == "jacobi" || c.Backend == "ssor"
	if !known {
		for _, b := range Backends() {
			if c.Backend == b {
				known = true
				break
			}
		}
	}
	if !known {
		return fmt.Errorf("sparse: unknown solver backend %q (have %v)", c.Backend, Backends())
	}
	if c.Omega != 0 && (c.Omega <= 0 || c.Omega >= 2) {
		return fmt.Errorf("sparse: relaxation omega %g outside (0, 2)", c.Omega)
	}
	if c.Tolerance < 0 {
		return fmt.Errorf("sparse: negative tolerance %g", c.Tolerance)
	}
	if c.MaxIterations < 0 {
		return fmt.Errorf("sparse: negative iteration cap %d", c.MaxIterations)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sparse: negative worker count %d", c.Workers)
	}
	if c.MGLevels < 0 {
		return fmt.Errorf("sparse: negative multigrid level cap %d", c.MGLevels)
	}
	if c.MGSmooth < 0 {
		return fmt.Errorf("sparse: negative smoothing sweep count %d", c.MGSmooth)
	}
	if c.MGCoarseTol < 0 {
		return fmt.Errorf("sparse: negative coarse-solve tolerance %g", c.MGCoarseTol)
	}
	switch c.MGOrdering {
	case "", "lex", "redblack":
	default:
		return fmt.Errorf("sparse: unknown smoother ordering %q (have lex, redblack)", c.MGOrdering)
	}
	switch c.MGPrecision {
	case "", "float32", "float64":
	default:
		return fmt.Errorf("sparse: unknown V-cycle precision %q (have float32, float64)", c.MGPrecision)
	}
	switch c.MGCoarseSolver {
	case "", "sparse", "band", "iterative":
	default:
		return fmt.Errorf("sparse: unknown coarse solver %q (have sparse, band, iterative)", c.MGCoarseSolver)
	}
	return nil
}

// New builds the configured solver.
func (c Config) New() (Solver, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch c.Backend {
	case "", BackendJacobiCG, "cg", "jacobi":
		return &CG{Tolerance: c.Tolerance, MaxIterations: c.MaxIterations, Workers: c.Workers}, nil
	case BackendSSORCG, "ssor":
		return &SSORCG{Tolerance: c.Tolerance, MaxIterations: c.MaxIterations, Workers: c.Workers, Omega: c.Omega}, nil
	}
	registryMu.RLock()
	f := registry[c.Backend]
	registryMu.RUnlock()
	if f == nil {
		// Validate accepted the name, so the factory was unregistered
		// concurrently — treat as unknown.
		return nil, fmt.Errorf("sparse: unknown solver backend %q (have %v)", c.Backend, Backends())
	}
	return f(c)
}

// NewSolver builds a solver by backend name with default parameters.
func NewSolver(backend string) (Solver, error) { return Config{Backend: backend}.New() }

// Workspace holds the scratch vectors of a preconditioned CG solve so
// repeated solves against same-sized systems allocate nothing. The zero
// value is ready to use; vectors grow on demand.
type Workspace struct {
	r, z, p, ap []float64
	// precond holds preconditioner state (inverse diagonal for Jacobi,
	// diagonal for SSOR); rebuilt when the matrix or backend changes.
	precond     []float64
	precondFor  *CSR
	precondKind uint8
}

const (
	precondNone uint8 = iota
	precondJacobi
	precondSSOR
)

// NewWorkspace pre-sizes a workspace for n-dimensional systems.
func NewWorkspace(n int) *Workspace {
	w := &Workspace{}
	w.ensure(n)
	return w
}

func (w *Workspace) ensure(n int) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
		w.precond = make([]float64, n)
		w.precondFor = nil
		w.precondKind = precondNone
	}
	w.r = w.r[:n]
	w.z = w.z[:n]
	w.p = w.p[:n]
	w.ap = w.ap[:n]
	w.precond = w.precond[:n]
}

// mulVecWorkers resolves a worker count for an n-row product.
func mulVecWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if n < 4096 {
		return 1
	}
	if max := n / 2048; workers > max {
		workers = max
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// MulVecN computes dst = m · x using up to workers goroutines (0 means
// GOMAXPROCS). Rows are split into contiguous ranges; small systems run
// serially regardless.
func (m *CSR) MulVecN(dst, x []float64, workers int) {
	if len(dst) != m.n || len(x) != m.n {
		panic("sparse: MulVec dimension mismatch")
	}
	workers = mulVecWorkers(m.n, workers)
	if workers == 1 {
		m.mulRange(dst, x, 0, m.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.n {
			hi = m.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRange(dst, x, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// CG is the Jacobi (diagonal) preconditioned conjugate gradient backend —
// the solver the seed shipped with, now allocation-free across solves.
type CG struct {
	// Tolerance is the relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps MulVec goroutines; 0 means GOMAXPROCS.
	Workers int
	// Workspace may be supplied to share scratch space; nil lazily
	// allocates one owned by this instance.
	Workspace *Workspace
}

// Name implements Solver.
func (s *CG) Name() string { return BackendJacobiCG }

// Preconditioner implements Preconditioned: it prepares the inverse
// diagonal for a and returns its application.
func (s *CG) Preconditioner(a *CSR) (func(z, r []float64), error) {
	if s.Workspace == nil {
		s.Workspace = &Workspace{}
	}
	w := s.Workspace
	w.ensure(a.n)
	if w.precondFor != a || w.precondKind != precondJacobi {
		for i := 0; i < a.n; i++ {
			d := a.diagAt(i)
			if d <= 0 {
				return nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d (matrix not SPD?)", d, i)
			}
			w.precond[i] = 1 / d
		}
		w.precondFor = a
		w.precondKind = precondJacobi
	}
	return func(z, r []float64) {
		inv := w.precond
		for i := range z {
			z[i] = inv[i] * r[i]
		}
	}, nil
}

// Solve implements Solver.
func (s *CG) Solve(a *CSR, b, x []float64) (Result, error) {
	precond, err := s.Preconditioner(a)
	if err != nil {
		return Result{}, err
	}
	return pcg(a, b, x, s.Workspace, precond, s.Tolerance, s.MaxIterations, s.Workers)
}

// SSORCG is a symmetric-successive-over-relaxation preconditioned
// conjugate gradient backend. The SSOR preconditioner
//
//	M = (D/ω + L) · (ω/(2−ω)) D⁻¹ · (D/ω + U)
//
// reuses the matrix itself (no extra factorisation storage) and typically
// halves the iteration count of Jacobi-CG on FVM conduction systems,
// trading a forward+backward triangular sweep per iteration.
type SSORCG struct {
	// Tolerance is the relative residual target; 0 means 1e-9.
	Tolerance float64
	// MaxIterations bounds iterations; 0 means 10·n.
	MaxIterations int
	// Workers caps MulVec goroutines; 0 means GOMAXPROCS. The triangular
	// preconditioner sweeps are inherently serial.
	Workers int
	// Omega is the relaxation factor in (0, 2); 0 means 1.2.
	Omega float64
	// Workspace may be supplied to share scratch space; nil lazily
	// allocates one owned by this instance.
	Workspace *Workspace
}

// Name implements Solver.
func (s *SSORCG) Name() string { return BackendSSORCG }

// Preconditioner implements Preconditioned: it caches the diagonal of a
// and returns the SSOR forward+backward sweep application.
func (s *SSORCG) Preconditioner(a *CSR) (func(z, r []float64), error) {
	omega := s.Omega
	if omega == 0 {
		omega = 1.2
	}
	if omega <= 0 || omega >= 2 {
		return nil, fmt.Errorf("sparse: SSOR omega %g outside (0, 2)", omega)
	}
	if s.Workspace == nil {
		s.Workspace = &Workspace{}
	}
	w := s.Workspace
	w.ensure(a.n)
	if w.precondFor != a || w.precondKind != precondSSOR {
		for i := 0; i < a.n; i++ {
			d := a.diagAt(i)
			if d <= 0 {
				return nil, fmt.Errorf("sparse: non-positive diagonal %g at row %d (matrix not SPD?)", d, i)
			}
			w.precond[i] = d
		}
		w.precondFor = a
		w.precondKind = precondSSOR
	}
	return func(z, r []float64) {
		a.ssorApply(z, r, w.precond, omega)
	}, nil
}

// Solve implements Solver.
func (s *SSORCG) Solve(a *CSR, b, x []float64) (Result, error) {
	precond, err := s.Preconditioner(a)
	if err != nil {
		return Result{}, err
	}
	return pcg(a, b, x, s.Workspace, precond, s.Tolerance, s.MaxIterations, s.Workers)
}

// SSORApply computes z = M⁻¹·r for the SSOR preconditioner of m with the
// given relaxation factor; diag must hold m's diagonal (see Diag). It is
// the smoother primitive geometry-aware backends reuse per grid level.
func (m *CSR) SSORApply(z, r, diag []float64, omega float64) {
	m.ssorApply(z, r, diag, omega)
}

// diagAt returns the stored diagonal of row i (0 if absent).
func (m *CSR) diagAt(i int) float64 {
	for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
		if int(m.colIdx[p]) == i {
			return m.values[p]
		}
	}
	return 0
}

// ssorApply computes z = M⁻¹·r for the SSOR preconditioner:
//
//	z = ω(2−ω) · (D + ωU)⁻¹ · D · (D + ωL)⁻¹ · r
//
// using z itself as the intermediate vector, so no scratch is needed.
func (m *CSR) ssorApply(z, r, diag []float64, omega float64) {
	n := m.n
	// Forward solve (D + ωL)·y = r; y lives in z.
	for i := 0; i < n; i++ {
		sum := r[i]
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			j := int(m.colIdx[p])
			if j >= i {
				break // columns are sorted; L entries exhausted
			}
			sum -= omega * m.values[p] * z[j]
		}
		z[i] = sum / diag[i]
	}
	// Scale by D and solve (D + ωU)·z = D·y backwards. The constant
	// ω(2−ω) factor is applied after the substitution: folding it into
	// each entry as it is computed would feed scaled values back into the
	// recurrence and break the preconditioner's symmetry.
	for i := n - 1; i >= 0; i-- {
		sum := diag[i] * z[i]
		for p := m.rowPtr[i+1] - 1; p >= m.rowPtr[i]; p-- {
			j := int(m.colIdx[p])
			if j <= i {
				break // U entries exhausted
			}
			sum -= omega * m.values[p] * z[j]
		}
		z[i] = sum / diag[i]
	}
	scale := omega * (2 - omega)
	for i := range z {
		z[i] *= scale
	}
}

// PCG runs the shared preconditioned conjugate gradient engine with a
// caller-supplied preconditioner application z = M⁻¹·r. It is the
// extension point external backends (geometric multigrid) build on so
// every Solver shares one Krylov loop. x is warm-start input and solution
// output; the best iterate is always left in x, converged or not. A nil
// workspace allocates a fresh one.
func PCG(a *CSR, b, x []float64, w *Workspace, precond func(z, r []float64), tol float64, maxIter, workers int) (Result, error) {
	if w == nil {
		w = &Workspace{}
	}
	w.ensure(a.n)
	return pcg(a, b, x, w, precond, tol, maxIter, workers)
}

// pcg is the shared preconditioned conjugate gradient engine. precond must
// compute z = M⁻¹·r. x is warm-start input and solution output; the best
// iterate is always left in x, converged or not.
func pcg(a *CSR, b, x []float64, w *Workspace, precond func(z, r []float64), tol float64, maxIter, workers int) (Result, error) {
	n := a.n
	if len(b) != n {
		return Result{}, fmt.Errorf("sparse: rhs length %d != n %d", len(b), n)
	}
	if len(x) != n {
		return Result{}, fmt.Errorf("sparse: solution length %d != n %d", len(x), n)
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if tol <= 0 {
		tol = 1e-9
	}
	bNorm := Norm2(b)
	if bNorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return Result{Converged: true}, nil
	}

	r, z, p, ap := w.r, w.z, w.p, w.ap
	a.MulVecN(ap, x, workers)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	precond(z, r)
	copy(p, z)
	rz := Dot(r, z)

	var res Result
	res.Residual = Norm2(r) / bNorm
	if res.Residual <= tol {
		res.Converged = true
		return res, nil
	}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k + 1
		a.MulVecN(ap, p, workers)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("sparse: p·Ap = %g not positive at iteration %d (matrix not SPD)", pap, k)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rNorm := Norm2(r)
		res.Residual = rNorm / bNorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		precond(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, fmt.Errorf("sparse: CG did not converge in %d iterations (residual %.3e)", maxIter, res.Residual)
}
