package sparse

import (
	"fmt"
	"math"
)

// BandCholesky is a dense-band Cholesky factorisation L·Lᵀ of an SPD
// matrix with limited bandwidth. Multigrid uses it to solve the
// coarsest-level system exactly: graded meshes can stall semicoarsening
// with thousands of unknowns left, where an iterative near-exact solve at
// tight tolerance costs hundreds of iterations per V-cycle while a banded
// factorisation — O(n·bw²) once, O(n·bw) per solve — reduces the coarse
// solve to two triangular sweeps. The factor is immutable after
// construction and safe for concurrent SolveInPlace calls with distinct
// vectors.
type BandCholesky struct {
	n, bw int
	// f stores the lower band of L row-major with width bw+1: entry
	// (i, j), i−bw ≤ j ≤ i, lives at f[i·(bw+1) + j−i+bw]; the diagonal
	// sits at offset bw of each row.
	f []float64
}

// NewBandCholesky factors a, which must be SPD with a (structural) half
// bandwidth small enough that the packed band holds at most maxEntries
// float64s. It returns ErrBandTooLarge when the band storage would exceed
// the cap — callers fall back to an iterative coarse solve — and an error
// when a pivot fails (matrix not SPD).
func NewBandCholesky(a *CSR, maxEntries int) (*BandCholesky, error) {
	n := a.N()
	bw := 0
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			if d := i - int(c); d > bw {
				bw = d
			}
		}
	}
	w := bw + 1
	if n*w > maxEntries {
		return nil, fmt.Errorf("%w: %d×%d band needs %d entries, cap %d", ErrBandTooLarge, n, w, n*w, maxEntries)
	}
	c := &BandCholesky{n: n, bw: bw, f: make([]float64, n*w)}
	// Seed the packed band with the lower triangle of a.
	for i := 0; i < n; i++ {
		cols, vals := a.Row(i)
		for p, col := range cols {
			if j := int(col); j <= i {
				c.f[i*w+j-i+bw] = vals[p]
			}
		}
	}
	// In-place factorisation: row i of L overwrites row i of the band.
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		ri := c.f[i*w-i+bw:] // row i, indexed by the true column
		for j := lo; j < i; j++ {
			s := ri[j]
			rj := c.f[j*w-j+bw:]
			for k := lo; k < j; k++ {
				s -= ri[k] * rj[k]
			}
			ri[j] = s / rj[j]
		}
		s := ri[i]
		for k := lo; k < i; k++ {
			s -= ri[k] * ri[k]
		}
		if s <= 0 {
			return nil, fmt.Errorf("sparse: band Cholesky pivot %g at row %d (matrix not SPD?)", s, i)
		}
		ri[i] = math.Sqrt(s)
	}
	return c, nil
}

// ErrBandTooLarge reports that the matrix bandwidth exceeds the caller's
// storage cap; the matrix itself may still be perfectly solvable
// iteratively.
var ErrBandTooLarge = fmt.Errorf("sparse: band Cholesky storage cap exceeded")

// N returns the matrix dimension.
func (c *BandCholesky) N() int { return c.n }

// Bandwidth returns the half bandwidth of the factor.
func (c *BandCholesky) Bandwidth() int { return c.bw }

// SolveInPlace overwrites b with A⁻¹·b via forward and backward
// substitution.
func (c *BandCholesky) SolveInPlace(b []float64) {
	if len(b) != c.n {
		panic("sparse: BandCholesky solve dimension mismatch")
	}
	n, bw, w := c.n, c.bw, c.bw+1
	// Forward: L·y = b.
	for i := 0; i < n; i++ {
		lo := i - bw
		if lo < 0 {
			lo = 0
		}
		ri := c.f[i*w-i+bw:]
		s := b[i]
		for k := lo; k < i; k++ {
			s -= ri[k] * b[k]
		}
		b[i] = s / ri[i]
	}
	// Backward: Lᵀ·x = y. Column i of L is read across the rows below i.
	for i := n - 1; i >= 0; i-- {
		hi := i + bw
		if hi > n-1 {
			hi = n - 1
		}
		s := b[i]
		for k := i + 1; k <= hi; k++ {
			s -= c.f[k*w+i-k+bw] * b[k]
		}
		b[i] = s / c.f[i*w+bw]
	}
}
