package sparse

import (
	"fmt"
	"math"
	"sync"
)

// SparseCholesky is a general sparse Cholesky factorisation
// P·A·Pᵀ = L·Lᵀ of an SPD matrix under a fill-reducing permutation P.
// Multigrid uses it as the first tier of the coarse-solve ladder: graded
// paper-scale coarse levels have bandwidths far beyond the dense-band
// cap, but under a nested-dissection (or RCM) ordering their Cholesky
// factors stay sparse, so a symbolic analysis plus a compressed numeric
// factorisation — O(flops) once, O(nnz(L)) per solve — turns the
// dominant iterative coarse solve into two triangular sweeps. The factor
// is stored column-compressed (diagonal entry first in each column,
// rows ascending), is immutable after construction and is safe for
// concurrent SolveInPlace calls with distinct vectors.
type SparseCholesky struct {
	n     int
	perm  []int32 // perm[k] = original index at permuted position k
	iperm []int32 // inverse: iperm[orig] = permuted position
	// CSC arrays of L on the permuted matrix: column j occupies
	// colPtr[j] ≤ p < colPtr[j+1] with rowIdx[colPtr[j]] == j (diagonal).
	colPtr []int
	rowIdx []int32
	values []float64
	// scratch pools the permuted solve vector so concurrent solves stay
	// allocation-free after warm-up.
	scratch sync.Pool
}

// ErrFactorTooLarge reports that the predicted Cholesky fill exceeds the
// caller's storage cap; the matrix itself may still be perfectly
// solvable iteratively or under a better ordering.
var ErrFactorTooLarge = fmt.Errorf("sparse: sparse Cholesky fill cap exceeded")

// NewSparseCholesky factors a, which must be structurally symmetric and
// SPD, under the fill-reducing ordering perm (perm[k] = original index
// at permuted position k); a nil perm falls back to the reverse
// Cuthill–McKee ordering. maxEntries caps the stored entries of L
// (float64 values, diagonal included); the symbolic analysis aborts
// with ErrFactorTooLarge as soon as the predicted fill exceeds it, so
// over-budget matrices cost one cheap structure pass, not a
// factorisation. maxEntries ≤ 0 means no cap. A non-positive pivot
// (matrix not SPD, or numerically singular) fails the numeric phase.
func NewSparseCholesky(a *CSR, perm []int32, maxEntries int) (*SparseCholesky, error) {
	n := a.N()
	if perm == nil {
		perm = RCMOrder(a)
	}
	iperm, err := invertPerm(n, perm)
	if err != nil {
		return nil, err
	}
	parent, colPtr, err := cholSymbolic(a, perm, iperm, maxEntries)
	if err != nil {
		return nil, err
	}
	c := &SparseCholesky{
		n: n, perm: perm, iperm: iperm,
		colPtr: colPtr,
		rowIdx: make([]int32, colPtr[n]),
		values: make([]float64, colPtr[n]),
	}
	c.scratch.New = func() any { s := make([]float64, n); return &s }

	// Up-looking numeric factorisation: row k of L is the solution of the
	// triangular system L(0:k,0:k)·l = a_k over the elimination-tree reach
	// of row k's entries, appended column-wise so every column keeps its
	// diagonal first and rows ascending.
	colNext := make([]int, n)
	copy(colNext, colPtr)
	x := make([]float64, n)     // dense accumulator, zero outside the reach
	marked := make([]int32, n)  // ereach visit stamps (row k stamps with k+1)
	stack := make([]int32, n)   // ereach output, pattern in s[top:]
	pathBuf := make([]int32, n) // ereach path scratch
	for k := 0; k < n; k++ {
		d := 0.0
		cols, vals := a.Row(int(perm[k]))
		for p, col := range cols {
			if j := iperm[col]; j < int32(k) {
				x[j] = vals[p]
			} else if j == int32(k) {
				d = vals[p]
			}
		}
		top := ereach(a, perm, iperm, parent, k, marked, stack, pathBuf)
		for p := top; p < n; p++ {
			j := stack[p]
			lkj := x[j] / c.values[c.colPtr[j]]
			x[j] = 0
			for q := c.colPtr[j] + 1; q < colNext[j]; q++ {
				x[c.rowIdx[q]] -= c.values[q] * lkj
			}
			d -= lkj * lkj
			q := colNext[j]
			colNext[j]++
			c.rowIdx[q] = int32(k)
			c.values[q] = lkj
		}
		if d <= 0 {
			return nil, fmt.Errorf("sparse: sparse Cholesky pivot %g at permuted row %d (matrix not SPD?)", d, k)
		}
		q := colNext[k]
		colNext[k]++
		c.rowIdx[q] = int32(k)
		c.values[q] = math.Sqrt(d)
	}
	return c, nil
}

// SparseCholeskyCount runs only the symbolic analysis and returns the
// entry count of L under the given ordering (nil = RCM), or
// ErrFactorTooLarge once the count passes maxEntries. Callers use it to
// decide whether a factorisation fits a budget without paying for one.
func SparseCholeskyCount(a *CSR, perm []int32, maxEntries int) (int, error) {
	n := a.N()
	if perm == nil {
		perm = RCMOrder(a)
	}
	iperm, err := invertPerm(n, perm)
	if err != nil {
		return 0, err
	}
	_, colPtr, err := cholSymbolic(a, perm, iperm, maxEntries)
	if err != nil {
		return 0, err
	}
	return colPtr[n], nil
}

// invertPerm validates that perm is a permutation of 0..n-1 and returns
// its inverse.
func invertPerm(n int, perm []int32) ([]int32, error) {
	if len(perm) != n {
		return nil, fmt.Errorf("sparse: ordering has %d entries, want %d", len(perm), n)
	}
	iperm := make([]int32, n)
	for i := range iperm {
		iperm[i] = -1
	}
	for k, o := range perm {
		if o < 0 || int(o) >= n || iperm[o] != -1 {
			return nil, fmt.Errorf("sparse: ordering is not a permutation (entry %d = %d)", k, o)
		}
		iperm[o] = int32(k)
	}
	return iperm, nil
}

// cholSymbolic computes the elimination tree of the permuted matrix and
// the column pointers of L (diagonal included), aborting with
// ErrFactorTooLarge once the running entry count exceeds maxEntries
// (maxEntries ≤ 0 disables the cap).
func cholSymbolic(a *CSR, perm, iperm []int32, maxEntries int) (parent []int32, colPtr []int, err error) {
	n := a.N()
	// Elimination tree via ancestor path compression over the strictly
	// upper-triangular structure of the permuted matrix.
	parent = make([]int32, n)
	ancestor := make([]int32, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		cols, _ := a.Row(int(perm[k]))
		for _, col := range cols {
			j := iperm[col]
			for j != -1 && j < int32(k) {
				next := ancestor[j]
				ancestor[j] = int32(k)
				if next == -1 {
					parent[j] = int32(k)
				}
				j = next
			}
		}
	}
	// Column counts of L: each node in the ereach pattern of row k holds
	// L[k][j] ≠ 0, i.e. one entry of column j; every column also stores
	// its diagonal.
	counts := make([]int, n)
	marked := make([]int32, n)
	stack := make([]int32, n)
	pathBuf := make([]int32, n)
	nnz := 0
	for k := 0; k < n; k++ {
		counts[k]++ // diagonal
		nnz++
		top := ereach(a, perm, iperm, parent, k, marked, stack, pathBuf)
		for p := top; p < n; p++ {
			counts[stack[p]]++
		}
		nnz += n - top
		if maxEntries > 0 && nnz > maxEntries {
			return nil, nil, fmt.Errorf("%w: ≥ %d entries at row %d/%d, cap %d", ErrFactorTooLarge, nnz, k, n, maxEntries)
		}
	}
	colPtr = make([]int, n+1)
	for j := 0; j < n; j++ {
		colPtr[j+1] = colPtr[j] + counts[j]
	}
	return parent, colPtr, nil
}

// ereach collects the nonzero pattern of row k of L (diagonal excluded)
// into stack[top:] in topological order — descendants before elimination-
// tree ancestors, as the up-looking triangular solve requires. marked
// carries visit stamps across calls (row k stamps with k+1, so a zeroed
// array works for row 0 onwards); pathBuf is per-call path scratch.
func ereach(a *CSR, perm, iperm, parent []int32, k int, marked, stack, pathBuf []int32) int {
	n := len(parent)
	top := n
	stamp := int32(k + 1)
	marked[k] = stamp
	cols, _ := a.Row(int(perm[k]))
	for _, col := range cols {
		j := iperm[col]
		if j >= int32(k) {
			continue
		}
		depth := 0
		for j != -1 && marked[j] != stamp {
			pathBuf[depth] = j
			depth++
			marked[j] = stamp
			j = parent[j]
		}
		for depth > 0 {
			depth--
			top--
			stack[top] = pathBuf[depth]
		}
	}
	return top
}

// N returns the matrix dimension.
func (c *SparseCholesky) N() int { return c.n }

// Nnz returns the stored entry count of the factor L.
func (c *SparseCholesky) Nnz() int { return len(c.values) }

// Perm returns a copy of the fill-reducing ordering the factorisation
// ran under (perm[k] = original index at permuted position k).
func (c *SparseCholesky) Perm() []int32 {
	out := make([]int32, len(c.perm))
	copy(out, c.perm)
	return out
}

// SolveInPlace overwrites b with A⁻¹·b: permute, forward and backward
// triangular sweeps on the column-compressed factor, permute back.
func (c *SparseCholesky) SolveInPlace(b []float64) {
	if len(b) != c.n {
		panic("sparse: SparseCholesky solve dimension mismatch")
	}
	yp := c.scratch.Get().(*[]float64)
	y := *yp
	for k, o := range c.perm {
		y[k] = b[o]
	}
	// Forward: L·y = P·b, columns left to right.
	for j := 0; j < c.n; j++ {
		lo, hi := c.colPtr[j], c.colPtr[j+1]
		yj := y[j] / c.values[lo]
		y[j] = yj
		for q := lo + 1; q < hi; q++ {
			y[c.rowIdx[q]] -= c.values[q] * yj
		}
	}
	// Backward: Lᵀ·x = y, columns right to left (column j of L is row j
	// of Lᵀ).
	for j := c.n - 1; j >= 0; j-- {
		lo, hi := c.colPtr[j], c.colPtr[j+1]
		s := y[j]
		for q := lo + 1; q < hi; q++ {
			s -= c.values[q] * y[c.rowIdx[q]]
		}
		y[j] = s / c.values[lo]
	}
	for k, o := range c.perm {
		b[o] = y[k]
	}
	c.scratch.Put(yp)
}

// SparseCholesky32 is the single-precision mirror of a SparseCholesky:
// structure, ordering and solve order are shared, only the factor values
// are stored again in float32 (rounded from the float64 factorisation,
// not refactorised) — the same structure-sharing contract as the
// multigrid level32 mirrors. It is immutable and safe for concurrent
// SolveInPlace calls with distinct vectors.
type SparseCholesky32 struct {
	c       *SparseCholesky
	values  []float32
	scratch sync.Pool
}

// Mirror32 builds the single-precision mirror of the factor.
func (c *SparseCholesky) Mirror32() *SparseCholesky32 {
	m := &SparseCholesky32{c: c, values: make([]float32, len(c.values))}
	for i, v := range c.values {
		m.values[i] = float32(v)
	}
	n := c.n
	m.scratch.New = func() any { s := make([]float32, n); return &s }
	return m
}

// N returns the matrix dimension.
func (m *SparseCholesky32) N() int { return m.c.n }

// SolveInPlace overwrites b with A⁻¹·b in single precision, mirroring
// SparseCholesky.SolveInPlace.
func (m *SparseCholesky32) SolveInPlace(b []float32) {
	c := m.c
	if len(b) != c.n {
		panic("sparse: SparseCholesky32 solve dimension mismatch")
	}
	yp := m.scratch.Get().(*[]float32)
	y := *yp
	for k, o := range c.perm {
		y[k] = b[o]
	}
	for j := 0; j < c.n; j++ {
		lo, hi := c.colPtr[j], c.colPtr[j+1]
		yj := y[j] / m.values[lo]
		y[j] = yj
		for q := lo + 1; q < hi; q++ {
			y[c.rowIdx[q]] -= m.values[q] * yj
		}
	}
	for j := c.n - 1; j >= 0; j-- {
		lo, hi := c.colPtr[j], c.colPtr[j+1]
		s := y[j]
		for q := lo + 1; q < hi; q++ {
			s -= m.values[q] * y[c.rowIdx[q]]
		}
		y[j] = s / m.values[lo]
	}
	for k, o := range c.perm {
		b[o] = y[k]
	}
	m.scratch.Put(yp)
}

// RCMOrder returns the reverse Cuthill–McKee ordering of a's structure
// (perm[k] = original index at permuted position k): breadth-first from
// a pseudo-peripheral vertex, neighbours visited in ascending degree,
// then reversed. RCM shrinks the factor's profile on arbitrary sparse
// structures and is the fallback ordering when no geometry-aware nested
// dissection is available.
func RCMOrder(a *CSR) []int32 {
	n := a.N()
	degree := make([]int32, n)
	for i := 0; i < n; i++ {
		cols, _ := a.Row(i)
		degree[i] = int32(len(cols))
	}
	visited := make([]bool, n)
	order := make([]int32, 0, n)
	queue := make([]int32, 0, n)
	bfs := func(start int32) {
		head := len(order)
		order = append(order, start)
		visited[start] = true
		for head < len(order) {
			v := order[head]
			head++
			cols, _ := a.Row(int(v))
			queue = queue[:0]
			for _, c := range cols {
				if !visited[c] && c != v {
					visited[c] = true
					queue = append(queue, c)
				}
			}
			// Ascending degree (insertion sort — stencil rows are short).
			for i := 1; i < len(queue); i++ {
				u := queue[i]
				j := i - 1
				for j >= 0 && degree[queue[j]] > degree[u] {
					queue[j+1] = queue[j]
					j--
				}
				queue[j+1] = u
			}
			order = append(order, queue...)
		}
	}
	for comp := 0; comp < n; comp++ {
		if visited[comp] {
			continue
		}
		// Pseudo-peripheral start: min degree in the component, then the
		// last vertex of one exploratory BFS (an approximate far end).
		compStart := len(order)
		bfs(int32(comp))
		compVerts := order[compStart:]
		start := compVerts[0]
		best := degree[start]
		for _, v := range compVerts {
			if degree[v] < best {
				best, start = degree[v], v
			}
		}
		far := compVerts[len(compVerts)-1]
		if degree[far] <= degree[start] || len(compVerts) > 2 {
			start = far
		}
		for _, v := range compVerts {
			visited[v] = false
		}
		order = order[:compStart]
		bfs(start)
	}
	// Reverse.
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}
