package sparse

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrBlockBreakdown reports that a block-Krylov solve lost rank: the
// right-hand sides' search directions became (numerically) linearly
// dependent. Callers should fall back to independent per-RHS solves.
var ErrBlockBreakdown = errors.New("sparse: block-CG search directions became linearly dependent")

// MulVecBlockN computes s matrix-vector products at once over interleaved
// block vectors: dst and x store column c of row i at index i·s+c, so one
// pass over the matrix feeds every column — the memory-bandwidth win block
// Krylov methods exist for. Rows are split across up to `workers`
// goroutines (0 means GOMAXPROCS); small systems run serially.
func (m *CSR) MulVecBlockN(dst, x []float64, s, workers int) {
	if s <= 0 {
		panic("sparse: MulVecBlockN needs s > 0")
	}
	if len(dst) != m.n*s || len(x) != m.n*s {
		panic("sparse: MulVecBlockN dimension mismatch")
	}
	workers = mulVecWorkers(m.n, workers)
	if workers == 1 {
		m.mulRangeBlock(dst, x, s, 0, m.n)
		return
	}
	var wg sync.WaitGroup
	chunk := (m.n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.n {
			hi = m.n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			m.mulRangeBlock(dst, x, s, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (m *CSR) mulRangeBlock(dst, x []float64, s, lo, hi int) {
	if s == 4 {
		m.mulRangeBlock4(dst, x, lo, hi)
		return
	}
	var stack [8]float64
	sums := stack[:]
	if s > len(stack) {
		sums = make([]float64, s)
	} else {
		sums = sums[:s]
	}
	for i := lo; i < hi; i++ {
		for c := range sums {
			sums[c] = 0
		}
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			v := m.values[p]
			src := int(m.colIdx[p]) * s
			for c := 0; c < s; c++ {
				sums[c] += v * x[src+c]
			}
		}
		copy(dst[i*s:(i+1)*s], sums)
	}
}

// mulRangeBlock4 is the s = 4 block kernel — the width of the thermal
// basis build (chip/VCSEL/driver/heater unit vectors), and by far the
// hottest block size. Keeping the four accumulators in named locals
// instead of a scratch slice lets the compiler hold them in registers
// across the row, so each matrix entry costs one load and four fused
// multiply-adds instead of a bounds-checked inner loop.
func (m *CSR) mulRangeBlock4(dst, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		var s0, s1, s2, s3 float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			v := m.values[p]
			src := x[m.colIdx[p]*4 : m.colIdx[p]*4+4]
			s0 += v * src[0]
			s1 += v * src[1]
			s2 += v * src[2]
			s3 += v * src[3]
		}
		d := dst[i*4 : i*4+4]
		d[0], d[1], d[2], d[3] = s0, s1, s2, s3
	}
}

// BlockCG solves a·x_c = b_c for every column c simultaneously with the
// preconditioned block conjugate gradient method (O'Leary 1980): all
// columns share each matrix pass (MulVecBlockN over interleaved block
// vectors) and exchange Krylov information through small s×s projections,
// so clustered right-hand sides converge in fewer iterations than s
// independent CG runs and touch the matrix s× less per iteration.
//
// Each preconditioner computes z = M⁻¹·r for contiguous single vectors.
// Pass one to share it across all columns (applied column-by-column), or
// one per column — all representing the SAME operator M but owning
// disjoint scratch — to apply them concurrently, which keeps every core
// busy through expensive applications like multigrid V-cycles. The
// incoming xs seed the iteration and receive the solutions. One Result
// per column is returned; on non-convergence every column keeps its best
// iterate.
//
// If the block loses rank mid-flight the error wraps ErrBlockBreakdown and
// callers should retry with independent solves.
func BlockCG(a *CSR, bs, xs [][]float64, preconds []func(z, r []float64), tol float64, maxIter, workers int) ([]Result, error) {
	n := a.n
	s := len(bs)
	if s == 0 {
		return nil, fmt.Errorf("sparse: BlockCG needs at least one right-hand side")
	}
	if len(xs) != s {
		return nil, fmt.Errorf("sparse: BlockCG has %d right-hand sides but %d solutions", s, len(xs))
	}
	if len(preconds) != 1 && len(preconds) != s {
		return nil, fmt.Errorf("sparse: BlockCG needs 1 shared or %d per-column preconditioners, got %d", s, len(preconds))
	}
	for c := range bs {
		if len(bs[c]) != n {
			return nil, fmt.Errorf("sparse: rhs %d length %d != n %d", c, len(bs[c]), n)
		}
		if len(xs[c]) != n {
			return nil, fmt.Errorf("sparse: solution %d length %d != n %d", c, len(xs[c]), n)
		}
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if tol <= 0 {
		tol = 1e-9
	}
	results := make([]Result, s)
	bNorm := make([]float64, s)
	var active []int
	for c := range bs {
		bNorm[c] = Norm2(bs[c])
		if bNorm[c] == 0 {
			// A zero column would make the block singular: its exact
			// solution is x = 0, so solve it here and keep it out of the
			// small projections entirely.
			for i := range xs[c] {
				xs[c][i] = 0
			}
			results[c].Converged = true
		} else {
			active = append(active, c)
		}
	}
	if len(active) == 0 {
		return results, nil
	}
	if len(active) < s {
		subB := make([][]float64, len(active))
		subX := make([][]float64, len(active))
		subP := preconds
		if len(preconds) > 1 {
			subP = make([]func(z, r []float64), len(active))
			for i, c := range active {
				subP[i] = preconds[c]
			}
		}
		for i, c := range active {
			subB[i], subX[i] = bs[c], xs[c]
		}
		subRes, err := BlockCG(a, subB, subX, subP, tol, maxIter, workers)
		for i, c := range active {
			results[c] = subRes[i]
		}
		return results, err
	}

	// Interleaved block vectors: entry (i, c) at i·s+c.
	blk := func() []float64 { return make([]float64, n*s) }
	r, z, p, q := blk(), blk(), blk(), blk()
	rcol := make([]float64, n)
	zcol := make([]float64, n)

	// R = B − A·X (column-wise: X arrives as independent slices).
	for c := range xs {
		a.MulVecN(rcol, xs[c], workers)
		for i := 0; i < n; i++ {
			r[i*s+c] = bs[c][i] - rcol[i]
		}
	}
	var applyPrecond func()
	if len(preconds) == 1 {
		precond := preconds[0]
		applyPrecond = func() {
			for c := 0; c < s; c++ {
				for i := 0; i < n; i++ {
					rcol[i] = r[i*s+c]
				}
				precond(zcol, rcol)
				for i := 0; i < n; i++ {
					z[i*s+c] = zcol[i]
				}
			}
		}
	} else {
		// One preconditioner per column, each with private scratch:
		// apply them concurrently. De/interleaving stays per goroutine.
		rcols := make([][]float64, s)
		zcols := make([][]float64, s)
		for c := range rcols {
			rcols[c] = make([]float64, n)
			zcols[c] = make([]float64, n)
		}
		applyPrecond = func() {
			var wg sync.WaitGroup
			for c := 0; c < s; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					rc, zc := rcols[c], zcols[c]
					for i := 0; i < n; i++ {
						rc[i] = r[i*s+c]
					}
					preconds[c](zc, rc)
					for i := 0; i < n; i++ {
						z[i*s+c] = zc[i]
					}
				}(c)
			}
			wg.Wait()
		}
	}
	// columnResiduals refreshes per-column relative residuals and reports
	// whether every column is at tolerance.
	columnResiduals := func() bool {
		done := true
		for c := 0; c < s; c++ {
			var sum float64
			for i := 0; i < n; i++ {
				sum += r[i*s+c] * r[i*s+c]
			}
			results[c].Residual = math.Sqrt(sum) / bNorm[c]
			if results[c].Residual <= tol {
				results[c].Converged = true
			} else {
				results[c].Converged = false
				done = false
			}
		}
		return done
	}

	applyPrecond()
	copy(p, z)
	gamma := blockDot(r, z, s) // γ = Rᵀ·Z
	if columnResiduals() {
		return results, nil
	}

	alpha := make([]float64, s*s)
	beta := make([]float64, s*s)
	rowBuf := make([]float64, s)
	for k := 0; k < maxIter; k++ {
		for c := range results {
			results[c].Iterations = k + 1
		}
		a.MulVecBlockN(q, p, s, workers)
		delta := blockDot(p, q, s) // Δ = Pᵀ·A·P
		if err := solveSmall(delta, gamma, alpha, s); err != nil {
			return results, fmt.Errorf("%w (iteration %d: %v)", ErrBlockBreakdown, k, err)
		}
		// X += P·α, R −= Q·α.
		for i := 0; i < n; i++ {
			base := i * s
			for c := 0; c < s; c++ {
				var dx, dr float64
				for j := 0; j < s; j++ {
					aj := alpha[j*s+c]
					dx += p[base+j] * aj
					dr += q[base+j] * aj
				}
				xs[c][i] += dx
				r[base+c] -= dr
			}
		}
		if columnResiduals() {
			return results, nil
		}
		applyPrecond()
		gammaNew := blockDot(r, z, s)
		if err := solveSmall(gamma, gammaNew, beta, s); err != nil {
			return results, fmt.Errorf("%w (iteration %d: %v)", ErrBlockBreakdown, k, err)
		}
		// P = Z + P·β (row-wise so the old P row survives the update).
		for i := 0; i < n; i++ {
			base := i * s
			copy(rowBuf, p[base:base+s])
			for c := 0; c < s; c++ {
				sum := z[base+c]
				for j := 0; j < s; j++ {
					sum += rowBuf[j] * beta[j*s+c]
				}
				p[base+c] = sum
			}
		}
		gamma = gammaNew
	}
	worst := 0.0
	for _, res := range results {
		if res.Residual > worst {
			worst = res.Residual
		}
	}
	return results, fmt.Errorf("sparse: block CG did not converge in %d iterations (worst residual %.3e)", maxIter, worst)
}

// blockDot computes the s×s Gram matrix G[i][j] = Σ_k u(k,i)·v(k,j) of two
// interleaved block vectors.
func blockDot(u, v []float64, s int) []float64 {
	g := make([]float64, s*s)
	for base := 0; base+s <= len(u); base += s {
		for i := 0; i < s; i++ {
			ui := u[base+i]
			if ui == 0 {
				continue
			}
			for j := 0; j < s; j++ {
				g[i*s+j] += ui * v[base+j]
			}
		}
	}
	return g
}

// solveSmall solves m·x = rhs for s×s flat matrices (rhs holds s columns)
// by Gaussian elimination with partial pivoting, writing the solution into
// x. m and rhs are destroyed. A vanishing pivot reports rank loss.
func solveSmall(m, rhs, x []float64, s int) error {
	// Work on copies so callers can keep γ for the β solve.
	a := append([]float64(nil), m...)
	b := append([]float64(nil), rhs...)
	var scale float64
	for _, v := range a {
		if av := math.Abs(v); av > scale {
			scale = av
		}
	}
	if scale == 0 {
		return fmt.Errorf("zero projection matrix")
	}
	for col := 0; col < s; col++ {
		// Pivot.
		piv := col
		for row := col + 1; row < s; row++ {
			if math.Abs(a[row*s+col]) > math.Abs(a[piv*s+col]) {
				piv = row
			}
		}
		if math.Abs(a[piv*s+col]) < 1e-14*scale {
			return fmt.Errorf("pivot %d vanished", col)
		}
		if piv != col {
			for j := 0; j < s; j++ {
				a[col*s+j], a[piv*s+j] = a[piv*s+j], a[col*s+j]
				b[col*s+j], b[piv*s+j] = b[piv*s+j], b[col*s+j]
			}
		}
		inv := 1 / a[col*s+col]
		for row := 0; row < s; row++ {
			if row == col {
				continue
			}
			f := a[row*s+col] * inv
			if f == 0 {
				continue
			}
			for j := col; j < s; j++ {
				a[row*s+j] -= f * a[col*s+j]
			}
			for j := 0; j < s; j++ {
				b[row*s+j] -= f * b[col*s+j]
			}
		}
	}
	for row := 0; row < s; row++ {
		inv := 1 / a[row*s+row]
		for j := 0; j < s; j++ {
			x[row*s+j] = b[row*s+j] * inv
		}
	}
	return nil
}
