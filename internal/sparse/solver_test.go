package sparse

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// buildLaplacian3D assembles the 7-point finite-volume stencil on an
// nx×ny×nz box with unit conductances and a unit diagonal shift — the
// same structure the FVM layer produces.
func buildLaplacian3D(nx, ny, nz int) *CSR {
	n := nx * ny * nz
	idx := func(i, j, k int) int { return (k*ny+j)*nx + i }
	a := NewCOO(n)
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				c := idx(i, j, k)
				deg := 0.0
				add := func(o int) {
					a.Add(c, o, -1)
					deg++
				}
				if i > 0 {
					add(idx(i-1, j, k))
				}
				if i < nx-1 {
					add(idx(i+1, j, k))
				}
				if j > 0 {
					add(idx(i, j-1, k))
				}
				if j < ny-1 {
					add(idx(i, j+1, k))
				}
				if k > 0 {
					add(idx(i, j, k-1))
				}
				if k < nz-1 {
					add(idx(i, j, k+1))
				}
				// Small diagonal shift stands in for the boundary
				// conductance that makes FVM systems non-singular.
				a.Add(c, c, deg+0.01)
			}
		}
	}
	return a.ToCSR()
}

func rhsFor(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return b
}

// relDiff returns max_i |x_i − y_i| / max_i |y_i|.
func relDiff(x, y []float64) float64 {
	var maxD, maxY float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > maxD {
			maxD = d
		}
		if a := math.Abs(y[i]); a > maxY {
			maxY = a
		}
	}
	if maxY == 0 {
		return maxD
	}
	return maxD / maxY
}

// TestBackendsAgree: both production backends must land on the same
// solution of an FVM-structured system to well below 1e-6 relative.
func TestBackendsAgree(t *testing.T) {
	m := buildLaplacian3D(12, 10, 8)
	b := rhsFor(m.N(), 42)
	sols := map[string][]float64{}
	for _, backend := range Backends() {
		s, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, m.N())
		res, err := s.Solve(m, b, x)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if !res.Converged {
			t.Fatalf("%s did not converge", backend)
		}
		sols[backend] = x
	}
	if d := relDiff(sols[BackendJacobiCG], sols[BackendSSORCG]); d > 1e-6 {
		t.Errorf("backends disagree: relative difference %.2e > 1e-6", d)
	}
}

// TestSSORReducesIterations: the SSOR preconditioner must cut the
// iteration count of Jacobi-CG substantially on the 3D stencil — the
// property the backend exists for.
func TestSSORReducesIterations(t *testing.T) {
	m := buildLaplacian3D(16, 16, 8)
	b := rhsFor(m.N(), 7)
	iters := map[string]int{}
	for _, backend := range Backends() {
		s, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, m.N())
		res, err := s.Solve(m, b, x)
		if err != nil {
			t.Fatal(err)
		}
		iters[backend] = res.Iterations
	}
	if iters[BackendSSORCG] >= iters[BackendJacobiCG] {
		t.Errorf("SSOR-CG took %d iterations, Jacobi-CG %d — no preconditioning advantage",
			iters[BackendSSORCG], iters[BackendJacobiCG])
	}
}

// TestWorkspaceReuse: back-to-back solves on one solver instance (the
// allocation-free hot path) must match fresh-instance solves, including
// across matrices of different sizes and after a backend has cached a
// preconditioner for another matrix.
func TestWorkspaceReuse(t *testing.T) {
	systems := []*CSR{
		buildLaplacian3D(10, 9, 7),
		buildLaplacian3D(6, 5, 4),
		buildLaplacian3D(10, 9, 7),
	}
	for _, backend := range Backends() {
		reused, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		for si, m := range systems {
			b := rhsFor(m.N(), int64(100+si))
			xr := make([]float64, m.N())
			if _, err := reused.Solve(m, b, xr); err != nil {
				t.Fatalf("%s reused solve %d: %v", backend, si, err)
			}
			fresh, err := NewSolver(backend)
			if err != nil {
				t.Fatal(err)
			}
			xf := make([]float64, m.N())
			if _, err := fresh.Solve(m, b, xf); err != nil {
				t.Fatalf("%s fresh solve %d: %v", backend, si, err)
			}
			if d := relDiff(xr, xf); d > 1e-12 {
				t.Errorf("%s solve %d: workspace reuse changed the solution (rel diff %.2e)", backend, si, d)
			}
		}
	}
}

// TestSharedWorkspaceAcrossBackends: a workspace shared between a Jacobi
// and an SSOR solver must not leak one backend's preconditioner into the
// other.
func TestSharedWorkspaceAcrossBackends(t *testing.T) {
	m := buildLaplacian3D(8, 8, 6)
	b := rhsFor(m.N(), 3)
	ws := NewWorkspace(m.N())
	cg := &CG{Workspace: ws}
	ssor := &SSORCG{Workspace: ws}

	want := make([]float64, m.N())
	if _, err := (&CG{}).Solve(m, b, want); err != nil {
		t.Fatal(err)
	}
	// Interleave: CG, SSOR, CG again on the same matrix.
	for pass := 0; pass < 2; pass++ {
		x := make([]float64, m.N())
		if _, err := cg.Solve(m, b, x); err != nil {
			t.Fatal(err)
		}
		if d := relDiff(x, want); d > 1e-9 {
			t.Fatalf("pass %d: shared-workspace CG diverged (rel diff %.2e)", pass, d)
		}
		x2 := make([]float64, m.N())
		if _, err := ssor.Solve(m, b, x2); err != nil {
			t.Fatal(err)
		}
		if d := relDiff(x2, want); d > 1e-6 {
			t.Fatalf("pass %d: shared-workspace SSOR diverged (rel diff %.2e)", pass, d)
		}
	}
}

// TestSolverWarmStart: seeding x with the solution must converge
// (nearly) immediately for both backends.
func TestSolverWarmStart(t *testing.T) {
	m := buildLaplacian3D(10, 10, 6)
	b := rhsFor(m.N(), 11)
	for _, backend := range Backends() {
		s, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, m.N())
		cold, err := s.Solve(m, b, x)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := s.Solve(m, b, x) // x now holds the solution
		if err != nil {
			t.Fatal(err)
		}
		if warm.Iterations > cold.Iterations/2+2 {
			t.Errorf("%s: warm start took %d iterations vs cold %d",
				backend, warm.Iterations, cold.Iterations)
		}
	}
}

// TestSolveBestIterateOnNonConvergence: with a tiny iteration budget the
// solvers must return their best iterate and a populated result, not
// discard the work.
func TestSolveBestIterateOnNonConvergence(t *testing.T) {
	m := buildLaplacian3D(12, 12, 6)
	b := rhsFor(m.N(), 5)
	for _, backend := range Backends() {
		s, err := Config{Backend: backend, MaxIterations: 3, Tolerance: 1e-14}.New()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, m.N())
		res, err := s.Solve(m, b, x)
		if err == nil {
			t.Fatalf("%s: expected non-convergence error", backend)
		}
		if res.Iterations != 3 {
			t.Errorf("%s: iterations = %d, want 3", backend, res.Iterations)
		}
		var moved bool
		for _, v := range x {
			if v != 0 {
				moved = true
				break
			}
		}
		if !moved {
			t.Errorf("%s: best iterate not written back", backend)
		}
		if res.Residual <= 0 || res.Residual >= 1 {
			t.Errorf("%s: residual %.2e should lie in (0, 1) after 3 iterations", backend, res.Residual)
		}
	}
	// The SolveCG wrapper must expose the same behaviour.
	x, res, err := SolveCG(m, b, CGOptions{MaxIterations: 3, Tolerance: 1e-14})
	if err == nil {
		t.Fatal("SolveCG: expected non-convergence error")
	}
	if x == nil {
		t.Fatal("SolveCG: best iterate is nil on non-convergence")
	}
	if res.Iterations != 3 {
		t.Errorf("SolveCG iterations = %d, want 3", res.Iterations)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewSolver("multigrid"); err == nil {
		t.Error("unknown backend should error")
	}
	if _, err := (Config{Backend: BackendSSORCG, Omega: 2.5}).New(); err == nil {
		t.Error("omega outside (0,2) should error")
	}
	s := &SSORCG{Omega: -1}
	m := buildLaplacian1D(4)
	if _, err := s.Solve(m, make([]float64, 4), make([]float64, 4)); err == nil {
		t.Error("negative omega should error at solve time")
	}
	for _, backend := range Backends() {
		sv, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sv.Solve(m, make([]float64, 3), make([]float64, 4)); err == nil {
			t.Errorf("%s: wrong rhs length should error", backend)
		}
		if _, err := sv.Solve(m, make([]float64, 4), make([]float64, 3)); err == nil {
			t.Errorf("%s: wrong solution length should error", backend)
		}
		bad := NewCOO(2)
		bad.Add(0, 0, -1)
		bad.Add(1, 1, 1)
		if _, err := sv.Solve(bad.ToCSR(), []float64{1, 1}, make([]float64, 2)); err == nil {
			t.Errorf("%s: negative diagonal should error", backend)
		}
	}
}

func TestSolverZeroRHS(t *testing.T) {
	m := buildLaplacian1D(10)
	for _, backend := range Backends() {
		s, err := NewSolver(backend)
		if err != nil {
			t.Fatal(err)
		}
		x := rhsFor(10, 9) // non-zero warm start must still yield x = 0
		res, err := s.Solve(m, make([]float64, 10), x)
		if err != nil || !res.Converged {
			t.Fatalf("%s zero rhs: %v", backend, err)
		}
		for _, v := range x {
			if v != 0 {
				t.Fatalf("%s: zero rhs should give zero solution", backend)
			}
		}
	}
}

// TestMulVecNMatchesSerial: every worker count must produce the serial
// product bit-for-bit (each row is computed by exactly one goroutine).
func TestMulVecNMatchesSerial(t *testing.T) {
	m := buildLaplacian1D(9000) // above the parallel threshold
	x := rhsFor(m.N(), 21)
	want := make([]float64, m.N())
	m.mulRange(want, x, 0, m.N())
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got := make([]float64, m.N())
		m.MulVecN(got, x, workers)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: row %d differs: %g vs %g", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMulVecNConcurrent hammers a shared matrix from many goroutines with
// per-goroutine destinations — the pattern batched solves rely on. Run
// under -race this doubles as the MulVec data-race check.
func TestMulVecNConcurrent(t *testing.T) {
	m := buildLaplacian1D(8192)
	x := rhsFor(m.N(), 33)
	want := make([]float64, m.N())
	m.mulRange(want, x, 0, m.N())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]float64, m.N())
			for rep := 0; rep < 4; rep++ {
				m.MulVecN(dst, x, 4)
				for i := range dst {
					if dst[i] != want[i] {
						errs <- "concurrent MulVecN produced a wrong entry"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
