package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildLaplacian1D(n int) *CSR {
	a := NewCOO(n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 2)
		if i > 0 {
			a.Add(i, i-1, -1)
		}
		if i < n-1 {
			a.Add(i, i+1, -1)
		}
	}
	return a.ToCSR()
}

func TestCOOAccumulation(t *testing.T) {
	a := NewCOO(3)
	a.Add(0, 0, 1)
	a.Add(0, 0, 2)
	a.Add(1, 2, -4)
	m := a.ToCSR()
	if got := m.At(0, 0); got != 3 {
		t.Errorf("accumulated (0,0) = %g, want 3", got)
	}
	if got := m.At(1, 2); got != -4 {
		t.Errorf("(1,2) = %g", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("missing diagonal should read 0, got %g", got)
	}
}

func TestCOOOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range index")
		}
	}()
	NewCOO(2).Add(2, 0, 1)
}

func TestCSRDiagAlwaysPresent(t *testing.T) {
	a := NewCOO(4)
	a.Add(0, 1, 5) // no diagonal entries at all
	m := a.ToCSR()
	d := m.Diag()
	for i, v := range d {
		if v != 0 {
			t.Errorf("diag[%d] = %g, want 0", i, v)
		}
	}
	// Diagonal slots must exist so NNZ >= n.
	if m.NNZ() < 4 {
		t.Errorf("NNZ = %d, want >= 4 (diagonal slots)", m.NNZ())
	}
}

func TestMulVecIdentity(t *testing.T) {
	n := 17
	a := NewCOO(n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 1)
	}
	m := a.ToCSR()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) - 3.5
	}
	y := make([]float64, n)
	m.MulVec(y, x)
	for i := range y {
		if y[i] != x[i] {
			t.Fatalf("identity MulVec differs at %d: %g vs %g", i, y[i], x[i])
		}
	}
}

func TestMulVecKnown(t *testing.T) {
	// [2 -1; -1 2] * [1; 2] = [0; 3]
	m := buildLaplacian1D(2)
	y := make([]float64, 2)
	m.MulVec(y, []float64{1, 2})
	if y[0] != 0 || y[1] != 3 {
		t.Errorf("MulVec = %v, want [0 3]", y)
	}
}

func TestMulVecDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	m := buildLaplacian1D(3)
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

func TestSolveCGLaplacian(t *testing.T) {
	n := 50
	m := buildLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x, res, err := SolveCG(m, b, CGOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatalf("CG: %v", err)
	}
	if !res.Converged {
		t.Fatal("CG did not converge")
	}
	// Verify A·x = b.
	ax := make([]float64, n)
	m.MulVec(ax, x)
	for i := range ax {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("residual too large at %d: %g", i, ax[i]-b[i])
		}
	}
	// Analytic solution of -u'' = 1 with u(0)=u(n+1)=0 discretized:
	// x_i = (i+1)(n-i)/2, peak at the middle.
	mid := x[n/2]
	if mid <= x[0] || mid <= x[n-1] {
		t.Error("solution should peak in the middle")
	}
}

func TestSolveCGZeroRHS(t *testing.T) {
	m := buildLaplacian1D(10)
	x, res, err := SolveCG(m, make([]float64, 10), CGOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v", err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("zero rhs should give zero solution")
		}
	}
}

func TestSolveCGInitialGuess(t *testing.T) {
	n := 30
	m := buildLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x1, res1, err := SolveCG(m, b, CGOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	// Re-solving seeded with the solution should converge immediately.
	_, res2, err := SolveCG(m, b, CGOptions{Tolerance: 1e-10, InitialGuess: x1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Iterations > res1.Iterations/2+2 {
		t.Errorf("warm start took %d iterations vs cold %d", res2.Iterations, res1.Iterations)
	}
}

func TestSolveCGErrors(t *testing.T) {
	m := buildLaplacian1D(4)
	if _, _, err := SolveCG(m, make([]float64, 3), CGOptions{}); err == nil {
		t.Error("wrong rhs length should error")
	}
	if _, _, err := SolveCG(m, make([]float64, 4), CGOptions{InitialGuess: make([]float64, 2)}); err == nil {
		t.Error("wrong guess length should error")
	}
	// Indefinite matrix: negative diagonal.
	bad := NewCOO(2)
	bad.Add(0, 0, -1)
	bad.Add(1, 1, 1)
	if _, _, err := SolveCG(bad.ToCSR(), []float64{1, 1}, CGOptions{}); err == nil {
		t.Error("negative diagonal should error")
	}
}

func TestSolveCGMaxIterations(t *testing.T) {
	n := 100
	m := buildLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	_, res, err := SolveCG(m, b, CGOptions{MaxIterations: 2, Tolerance: 1e-14})
	if err == nil {
		t.Error("expected non-convergence error with 2 iterations")
	}
	if res.Iterations != 2 {
		t.Errorf("iterations = %d, want 2", res.Iterations)
	}
}

func TestGaussSeidel(t *testing.T) {
	n := 20
	m := buildLaplacian1D(n)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, n)
	res, err := GaussSeidelSweeps(m, x, b, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res > 1e-8 {
		t.Errorf("GS residual = %g after 2000 sweeps", res)
	}
	// Cross-check against CG.
	xc, _, err := SolveCG(m, b, CGOptions{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(x[i]-xc[i]) > 1e-6 {
			t.Fatalf("GS and CG disagree at %d: %g vs %g", i, x[i], xc[i])
		}
	}
}

func TestGaussSeidelErrors(t *testing.T) {
	m := buildLaplacian1D(3)
	if _, err := GaussSeidelSweeps(m, make([]float64, 2), make([]float64, 3), 1); err == nil {
		t.Error("dimension mismatch should error")
	}
	z := NewCOO(2)
	z.Add(0, 1, 1)
	if _, err := GaussSeidelSweeps(z.ToCSR(), make([]float64, 2), make([]float64, 2), 1); err == nil {
		t.Error("zero diagonal should error")
	}
}

func TestIsSymmetric(t *testing.T) {
	m := buildLaplacian1D(10)
	if !m.IsSymmetric(1e-12) {
		t.Error("Laplacian should be symmetric")
	}
	a := NewCOO(2)
	a.Add(0, 1, 1)
	a.Add(1, 0, 2)
	a.Add(0, 0, 1)
	a.Add(1, 1, 1)
	if a.ToCSR().IsSymmetric(1e-12) {
		t.Error("asymmetric matrix reported symmetric")
	}
}

// randomSPD builds a random strictly diagonally dominant symmetric matrix,
// which is guaranteed SPD.
func randomSPD(rng *rand.Rand, n int) *CSR {
	a := NewCOO(n)
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for k := 0; k < 3; k++ {
			j := rng.Intn(n)
			if j == i {
				continue
			}
			v := -rng.Float64()
			a.Add(i, j, v)
			a.Add(j, i, v)
			rowSum[i] += -v
			rowSum[j] += -v
		}
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, rowSum[i]+1+rng.Float64())
	}
	return a.ToCSR()
}

// Property: CG solves random SPD systems to the requested tolerance.
func TestQuickCGRandomSPD(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := 5 + int(sz%60)
		rng := rand.New(rand.NewSource(seed))
		m := randomSPD(rng, n)
		if !m.IsSymmetric(1e-12) {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, res, err := SolveCG(m, b, CGOptions{Tolerance: 1e-10})
		if err != nil || !res.Converged {
			return false
		}
		ax := make([]float64, n)
		m.MulVec(ax, x)
		for i := range ax {
			ax[i] -= b[i]
		}
		return Norm2(ax) <= 1e-7*(1+Norm2(b))
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: MulVec is linear: A(ax+by) = a·Ax + b·Ay.
func TestQuickMulVecLinear(t *testing.T) {
	f := func(seed int64, alpha, beta float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			alpha = 1.5
		}
		if math.IsNaN(beta) || math.IsInf(beta, 0) || math.Abs(beta) > 1e6 {
			beta = -0.5
		}
		rng := rand.New(rand.NewSource(seed))
		n := 24
		m := randomSPD(rng, n)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		combo := make([]float64, n)
		for i := range combo {
			combo[i] = alpha*x[i] + beta*y[i]
		}
		mx := make([]float64, n)
		my := make([]float64, n)
		mc := make([]float64, n)
		m.MulVec(mx, x)
		m.MulVec(my, y)
		m.MulVec(mc, combo)
		for i := range mc {
			want := alpha*mx[i] + beta*my[i]
			if math.Abs(mc[i]-want) > 1e-8*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Error("Norm2 wrong")
	}
}

func BenchmarkMulVec100k(b *testing.B) {
	n := 100000
	m := buildLaplacian1D(n)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(y, x)
	}
}

func BenchmarkCG10k(b *testing.B) {
	n := 10000
	m := buildLaplacian1D(n)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveCG(m, rhs, CGOptions{Tolerance: 1e-8}); err != nil {
			b.Fatal(err)
		}
	}
}
