// Package parallel provides the tiny worker-pool primitive shared by the
// batched finite-volume solves and the design-space sweeps: a bounded
// parallel for-loop with first-error short-circuiting.
package parallel

import (
	"sync"
	"sync/atomic"
)

// ForEach runs fn(worker, i) for every i in [0, n), spread across up to
// `workers` goroutines; worker ∈ [0, workers) identifies the executing
// goroutine so callers can maintain per-worker state (solver workspaces,
// scratch buffers). workers ≤ 1 runs serially on worker 0.
//
// The first error (lowest index) is returned. Once any call fails, not
// yet dispatched indices are skipped; calls already in flight finish.
func ForEach(workers, n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(worker, i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
