package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 17} {
		n := 100
		hits := make([]atomic.Int32, n)
		err := ForEach(workers, n, func(_, i int) error {
			hits[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, got)
			}
		}
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 64
	var bad atomic.Bool
	err := ForEach(workers, n, func(w, _ int) error {
		if w < 0 || w >= workers {
			bad.Store(true)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Error("worker id outside [0, workers)")
	}
}

func TestForEachReturnsFirstErrorAndShortCircuits(t *testing.T) {
	for _, workers := range []int{1, 3} {
		n := 1000
		var calls atomic.Int32
		err := ForEach(workers, n, func(_, i int) error {
			calls.Add(1)
			if i == 7 {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Fatalf("workers=%d: err = %v, want boom at 7", workers, err)
		}
		// After the failure, dispatch must stop well short of n.
		if c := calls.Load(); int(c) >= n {
			t.Errorf("workers=%d: %d calls, short-circuit did not engage", workers, c)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(_, _ int) error { t.Error("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}
