module vcselnoc

go 1.24
