#!/usr/bin/env bash
# wait-for-healthz.sh BASE_URL [TIMEOUT_S]
#
# Polls BASE_URL/healthz until it answers 200 or TIMEOUT_S (default 60)
# elapses. Every CI job that starts a vcseld daemon goes through this so
# the readiness handshake lives in exactly one place.
set -euo pipefail

base="${1:?usage: wait-for-healthz.sh BASE_URL [TIMEOUT_S]}"
timeout="${2:-60}"

for _ in $(seq 1 "$timeout"); do
  if curl -sf "${base%/}/healthz" > /dev/null; then
    exit 0
  fi
  sleep 1
done
echo "wait-for-healthz: ${base%/}/healthz not ready after ${timeout}s" >&2
exit 1
