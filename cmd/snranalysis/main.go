// Command snranalysis evaluates the worst-case SNR of the ORNoC for one
// scenario (placement case, activity, laser/heater powers) and prints the
// per-communication breakdown, including BER estimates.
//
// Usage:
//
//	snranalysis [-case 1|2|3] [-activity uniform] [-seed 1]
//	            [-chip 24] [-pvcsel 3.6e-3] [-pheater 1.08e-3]
//	            [-pattern neighbour|paired] [-res fast]
package main

import (
	"flag"
	"fmt"
	"log"

	"vcselnoc/internal/activity"
	"vcselnoc/internal/core"
	"vcselnoc/internal/ornoc"
	"vcselnoc/internal/photodiode"
	"vcselnoc/internal/snr"
	"vcselnoc/internal/thermal"
)

func main() {
	caseNum := flag.Int("case", 3, "placement case: 1 (18mm), 2 (32mm), 3 (47mm)")
	act := flag.String("activity", "uniform", "chip activity scenario")
	seed := flag.Int64("seed", 1, "seed for the random activity")
	chip := flag.Float64("chip", 24, "total chip power in watts")
	pv := flag.Float64("pvcsel", 3.6e-3, "per-VCSEL dissipated power in watts")
	ph := flag.Float64("pheater", 1.08e-3, "per-MR heater power in watts")
	pattern := flag.String("pattern", "neighbour", "communication pattern: neighbour or paired")
	res := flag.String("res", "fast", "mesh resolution: coarse, fast or paper")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("snranalysis: ")

	var cs ornoc.CaseStudy
	switch *caseNum {
	case 1:
		cs = ornoc.Case18mm
	case 2:
		cs = ornoc.Case32mm
	case 3:
		cs = ornoc.Case47mm
	default:
		log.Fatalf("unknown case %d", *caseNum)
	}
	var pat core.CommPattern
	switch *pattern {
	case "neighbour":
		pat = core.Neighbour
	case "paired":
		pat = core.Paired
	default:
		log.Fatalf("unknown pattern %q", *pattern)
	}

	spec, err := thermal.PaperSpec()
	if err != nil {
		log.Fatal(err)
	}
	switch *res {
	case "coarse":
		spec.Res = thermal.CoarseResolution()
	case "fast":
		spec.Res = thermal.FastResolution()
	case "paper":
		spec.Res = thermal.PaperResolution()
	default:
		log.Fatalf("unknown resolution %q", *res)
	}
	scenario, err := activity.ByName(*act, *seed)
	if err != nil {
		log.Fatal(err)
	}

	m, err := core.NewWithSpec(spec, snr.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solving thermal model (%d cells)...\n", m.Model().NumCells())
	r, err := m.SNRAnalysis(core.SNRScenario{
		Case: cs, Activity: scenario, ChipPower: *chip,
		PVCSEL: *pv, PHeater: *ph, Pattern: pat,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncase %v: %d ONIs, loop %.1f mm, activity %s\n",
		cs, r.Ring.N(), r.RingLengthM*1e3, scenario.Name())
	fmt.Printf("ONI temperatures on the ring: %.2f … %.2f °C (spread %.2f °C)\n",
		r.NodeTempMin, r.NodeTempMax, r.NodeTempMax-r.NodeTempMin)
	fmt.Printf("worst-case SNR: %.1f dB; mean signal %.3f mW, mean crosstalk %.4f mW\n\n",
		r.Report.WorstSNRdB, r.Report.MeanSignalW*1e3, r.Report.MeanCrosstalkW*1e3)

	fmt.Println("  comm        λ(nm)     path(mm)  signal(mW)  xtalk(mW)   SNR(dB)   BER        detected")
	for _, cr := range r.Report.PerComm {
		ber, err := photodiode.BERFromSNRDB(cr.SNRdB)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %2d → %-2d   %9.3f   %7.2f   %9.4f   %9.5f   %7.1f   %.2e   %v\n",
			cr.Comm.Src, cr.Comm.Dst, cr.SignalLambdaNM, cr.PathLengthM*1e3,
			cr.SignalW*1e3, cr.CrosstalkW*1e3, cr.SNRdB, ber, cr.Detected)
	}
}
