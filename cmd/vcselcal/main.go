// Command vcselcal reports the calibration of the default VCSEL parameters
// against the anchor points quoted in the paper (Fig. 8-b/8-c).
package main

import (
	"fmt"
	"vcselnoc/internal/vcsel"
)

func main() {
	d, err := vcsel.New(vcsel.DefaultParams())
	if err != nil {
		panic(err)
	}
	fmt.Println("peak wall-plug efficiency vs base temperature:")
	var i40 float64
	for _, T := range []float64{10, 20, 30, 40, 50, 60, 70} {
		peak, ipk, _ := d.PeakEfficiency(T)
		fmt.Printf("  T=%2.0f°C  peak η=%5.1f%% @ %.1f mA\n", T, peak*100, ipk*1e3)
		if T == 40 {
			i40 = ipk
		}
	}
	pt40, _ := d.Operate(i40, 40)
	pt60, _ := d.Operate(i40, 60)
	fmt.Printf("\nanchors at I*=%.1f mA: η(40°C)=%.1f%% (paper ~15%%), η(60°C)=%.1f%% (paper ~4%%)\n",
		i40*1e3, pt40.Efficiency*100, pt60.Efficiency*100)
	fmt.Println("\nOP vs Pdiss at T=40°C (Fig. 8-c shape):")
	for _, i := range []float64{2e-3, 4e-3, 6e-3, 8e-3, 10e-3, 12e-3, 15e-3} {
		pt, _ := d.Operate(i, 40)
		fmt.Printf("  I=%4.1fmA Pdiss=%6.2fmW OP=%.3fmW Tj=%.1f\n", i*1e3, pt.DissipatedPower*1e3, pt.OpticalPower*1e3, pt.JunctionTemp)
	}
}
