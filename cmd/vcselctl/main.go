// Command vcselctl is the fleet coordinator for a pool of vcseld
// workers. It keeps a registry of workers fresh with periodic heartbeat
// scrapes of each worker's /healthz and /metrics, places sweep chunks
// and transient jobs on the least-loaded alive workers, and treats
// failure as a first-class state: a worker that misses consecutive
// heartbeats is first held out of new placements (suspect), then
// evicted (dead) — at which point its transient jobs migrate to
// survivors from their last persisted checkpoint and resume
// bit-identically. Dead workers keep being scraped, so a flapping
// worker rejoins the placement pool on its first good heartbeat.
//
// Usage:
//
//	vcselctl [-addr :9090] [-workers http://h1:8080,http://h2:8080]
//	         [-heartbeat 2s] [-suspect-after 2] [-evict-after 4]
//	         [-job-poll 0] [-chunk-attempts 3]
//	         [-log-level info] [-log-format text]
//
// Workers may also self-register at runtime: start vcseld with
// -coordinator pointing here and it announces itself once its listener
// is up, carrying its -job-dir so the coordinator can recover
// checkpoints from disk if that worker dies.
//
// Endpoints (all JSON):
//
//	GET  /healthz             fleet liveness + per-worker state
//	GET  /v1/fleet            same, plus tracked jobs and migration count
//	POST /v1/fleet/register   worker self-registration
//	GET  /v1/specs            union of alive workers' spec registries
//	POST /v1/sweep/gradient   sweep window, sub-scattered across the fleet
//	POST /v1/sweep/avgtemp    same for the chip × laser grid
//	POST /v1/transient        place a transient job (202 + id)
//	GET  /v1/jobs             paginated tracked-job list
//	GET  /v1/jobs/{id}        one tracked job's progress / result
//
// The sweep and job endpoints match the vcseld worker API shape, so
// `dse -coordinator` (or any ShardClient) can treat the coordinator as
// a single very reliable worker.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"vcselnoc/internal/fleet"
	"vcselnoc/internal/obs"
	"vcselnoc/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9090", "listen address")
	workers := flag.String("workers", "", "comma-separated vcseld worker base URLs to register at startup")
	heartbeat := flag.Duration("heartbeat", fleet.DefaultHeartbeatEvery, "worker heartbeat-scrape cadence")
	suspectAfter := flag.Int("suspect-after", fleet.DefaultSuspectAfter, "consecutive missed heartbeats before a worker is held out of placement")
	evictAfter := flag.Int("evict-after", fleet.DefaultEvictAfter, "consecutive missed heartbeats before a worker's jobs migrate")
	jobPoll := flag.Duration("job-poll", 0, "job status/migration poll cadence (0 follows -heartbeat)")
	chunkAttempts := flag.Int("chunk-attempts", 0, "placement attempts per sweep chunk before the request fails (0 = default)")
	shutdownTimeout := flag.Duration("shutdown-timeout", serve.DefaultShutdownTimeout, "grace period for in-flight requests on shutdown")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	log.SetFlags(0)
	log.SetPrefix("vcselctl: ")

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	cfg := fleet.Config{
		HeartbeatEvery: *heartbeat,
		SuspectAfter:   *suspectAfter,
		EvictAfter:     *evictAfter,
		JobPollEvery:   *jobPoll,
		ChunkAttempts:  *chunkAttempts,
		Logger:         logger,
	}
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				cfg.Workers = append(cfg.Workers, w)
			}
		}
	}
	c, err := fleet.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	defer context.AfterFunc(ctx, c.Close)()
	err = serve.ListenAndRun(ctx, *addr, c, *shutdownTimeout, func(a net.Addr) {
		logger.Info("coordinating", "workers", len(cfg.Workers), "addr", a.String(),
			"heartbeat", heartbeat.String(), "suspect_after", *suspectAfter, "evict_after", *evictAfter)
	})
	c.Close()
	if err != nil {
		log.Fatal(err)
	}
	logger.Info("shut down cleanly")
}
