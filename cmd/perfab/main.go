// Command perfab is the A/B performance harness for the mg-cg hot loop:
// it runs named benchmarks across a configuration sweep (smoother
// ordering × V-cycle precision × worker count × coarse-solve tier),
// optionally captures CPU and heap profiles per configuration, and emits
// one benchmark artifact per configuration plus a markdown delta report. The artifacts are the
// same JSON format cmd/benchguard consumes, so any pair can be diffed
// later with `benchguard -compare old.json new.json`; the first
// configuration of the sweep (by default lex × float64 × 1 worker, the
// pre-optimisation behaviour) is the in-report baseline every other
// configuration is compared against.
//
// Usage:
//
//	go run ./cmd/perfab -res preview -bench 'BenchmarkSolverBackends/mg-cg' \
//	    -orderings lex,redblack -precisions float64,float32 -workers 1,4 \
//	    -profiles -out perfab_out
//
// Each configuration runs `go test -run '^$' -bench ...` in a child
// process with the sweep axes passed through the VCSELNOC_MG_ORDERING,
// VCSELNOC_MG_PRECISION, VCSELNOC_MG_COARSE and VCSELNOC_WORKERS
// environment variables the root-package benchmarks honour, and
// VCSELNOC_BENCH_RES selecting the mesh tier. The -coarse axis defaults
// to the empty auto ladder only, so existing configuration names (and
// any compare gates keyed on them) are untouched unless a sweep opts
// in, e.g. -coarse ,sparse,band,iterative. When the sweep includes
// BenchmarkCoarseSolve the report additionally splits the one-off
// factorisation cost from the recurring per-cycle coarse solve. With -profiles the child also writes <config>.cpu.pprof and
// <config>.mem.pprof next to the artifacts, along with the test binary
// (<config>.test) needed to symbolise them:
//
//	go tool pprof perfab_out/redblack-float32-w4.test perfab_out/redblack-float32-w4.cpu.pprof
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"vcselnoc/internal/benchfmt"
)

// config is one point of the sweep.
type config struct {
	ordering  string
	precision string
	workers   string
	coarse    string // coarse-solve tier; "" = auto ladder
}

func (c config) name() string {
	n := fmt.Sprintf("%s-%s-w%s", c.ordering, c.precision, c.workers)
	if c.coarse != "" {
		n += "-" + c.coarse
	}
	return n
}

func main() {
	pkg := flag.String("pkg", ".", "package holding the benchmarks")
	bench := flag.String("bench", "BenchmarkSolverBackends/mg-cg", "benchmark regexp passed to go test -bench")
	res := flag.String("res", "preview", "mesh resolution tier (VCSELNOC_BENCH_RES)")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime per configuration")
	count := flag.Int("count", 1, "go test -count per configuration")
	orderings := flag.String("orderings", "lex,redblack", "comma-separated smoother orderings to sweep")
	precisions := flag.String("precisions", "float64,float32", "comma-separated V-cycle precisions to sweep")
	workers := flag.String("workers", "1,4", "comma-separated worker counts to sweep")
	coarse := flag.String("coarse", "", "comma-separated coarse-solve tiers to sweep (empty entry = auto ladder; e.g. ',sparse,band,iterative')")
	outDir := flag.String("out", "perfab_out", "directory for artifacts, profiles and the report")
	profiles := flag.Bool("profiles", false, "capture CPU and heap profiles per configuration")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("perfab: ")

	coarseTiers := splitListKeepEmpty(*coarse)
	var configs []config
	for _, o := range splitList(*orderings) {
		for _, p := range splitList(*precisions) {
			for _, w := range splitList(*workers) {
				for _, ct := range coarseTiers {
					configs = append(configs, config{ordering: o, precision: p, workers: w, coarse: ct})
				}
			}
		}
	}
	if len(configs) == 0 {
		log.Fatal("empty sweep: need at least one ordering, precision and worker count")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	absOut, err := filepath.Abs(*outDir)
	if err != nil {
		log.Fatal(err)
	}

	arts := make(map[string]*benchfmt.Artifact, len(configs))
	for _, c := range configs {
		log.Printf("running %s (%s, -benchtime %s)", c.name(), *bench, *benchtime)
		art, err := runConfig(c, *pkg, *bench, *res, *benchtime, *count, absOut, *profiles)
		if err != nil {
			log.Fatalf("%s: %v", c.name(), err)
		}
		if len(art.Benchmarks) == 0 {
			log.Fatalf("%s: no benchmark results — does -bench %q match anything?", c.name(), *bench)
		}
		path := filepath.Join(absOut, c.name()+".json")
		if err := benchfmt.WriteFile(path, art); err != nil {
			log.Fatal(err)
		}
		arts[c.name()] = art
	}

	var report bytes.Buffer
	writeReport(&report, configs, arts, *res, *bench)
	reportPath := filepath.Join(absOut, "report.md")
	if err := os.WriteFile(reportPath, report.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(report.Bytes())
	log.Printf("wrote %d artifacts and %s", len(arts), reportPath)
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// splitListKeepEmpty is splitList for axes where the empty string is a
// meaningful value (the auto coarse ladder): ",sparse" yields ["", "sparse"].
// An empty flag yields the single auto entry.
func splitListKeepEmpty(s string) []string {
	if s == "" {
		return []string{""}
	}
	parts := strings.Split(s, ",")
	out := make([]string, len(parts))
	for i, v := range parts {
		out[i] = strings.TrimSpace(v)
	}
	return out
}

// runConfig runs one benchmark child process and parses its output.
func runConfig(c config, pkg, bench, res, benchtime string, count int, absOut string, profiles bool) (*benchfmt.Artifact, error) {
	args := []string{"test", "-run", "^$", "-bench", bench,
		"-benchtime", benchtime, "-count", fmt.Sprint(count)}
	if profiles {
		// Keep the test binary: pprof needs it to symbolise the profiles.
		args = append(args,
			"-cpuprofile", c.name()+".cpu.pprof",
			"-memprofile", c.name()+".mem.pprof",
			"-outputdir", absOut,
			"-o", filepath.Join(absOut, c.name()+".test"))
	}
	args = append(args, pkg)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(),
		"VCSELNOC_BENCH_RES="+res,
		"VCSELNOC_MG_ORDERING="+c.ordering,
		"VCSELNOC_MG_PRECISION="+c.precision,
		"VCSELNOC_MG_COARSE="+c.coarse,
		"VCSELNOC_WORKERS="+c.workers,
	)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go test failed: %v\n%s", err, out)
	}
	return benchfmt.Parse(bytes.NewReader(out), res)
}

// writeReport renders the sweep summary: a configs × benchmarks speedup
// matrix against the first configuration, then a full benchfmt delta
// table per non-baseline configuration.
func writeReport(w *bytes.Buffer, configs []config, arts map[string]*benchfmt.Artifact, res, bench string) {
	base := configs[0]
	baseArt := arts[base.name()]
	fmt.Fprintf(w, "# perfab sweep — %s @ %s\n\n", bench, res)
	fmt.Fprintf(w, "Baseline configuration: **%s**. Speedup is baseline ns/op ÷ config ns/op (higher is faster).\n\n", base.name())

	names := map[string]bool{}
	for _, art := range arts {
		for n := range art.Benchmarks {
			names[n] = true
		}
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	fmt.Fprintf(w, "| config |")
	for _, n := range sorted {
		fmt.Fprintf(w, " %s |", strings.TrimPrefix(n, "Benchmark"))
	}
	fmt.Fprintf(w, "\n|---|")
	for range sorted {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for _, c := range configs {
		art := arts[c.name()]
		fmt.Fprintf(w, "| %s |", c.name())
		for _, n := range sorted {
			e, ok := art.Benchmarks[n]
			b, okBase := baseArt.Benchmarks[n]
			switch {
			case !ok:
				fmt.Fprintf(w, " — |")
			case !okBase || b.NsPerOp == 0 || c == base:
				fmt.Fprintf(w, " %.1f ms |", e.NsPerOp/1e6)
			default:
				fmt.Fprintf(w, " %.1f ms (%.2f×) |", e.NsPerOp/1e6, b.NsPerOp/e.NsPerOp)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	writeCoarseSplit(w, configs, arts)

	for _, c := range configs[1:] {
		fmt.Fprintf(w, "## %s vs %s\n\n", base.name(), c.name())
		benchfmt.Markdown(w, benchfmt.Compare(baseArt, arts[c.name()]), base.name(), c.name())
		fmt.Fprintln(w)
	}
}

// writeCoarseSplit separates the one-off coarse factorisation cost from
// the recurring per-cycle solve when the sweep ran BenchmarkCoarseSolve:
// the factor is paid once per hierarchy, so what matters for the hot
// loop is the solve column and how many V-cycles amortise the factor.
func writeCoarseSplit(w *bytes.Buffer, configs []config, arts map[string]*benchfmt.Artifact) {
	const (
		factorName = "BenchmarkCoarseSolve/factor"
		solveName  = "BenchmarkCoarseSolve/solve"
	)
	ran := false
	for _, art := range arts {
		if _, ok := art.Benchmarks[factorName]; ok {
			ran = true
			break
		}
		if _, ok := art.Benchmarks[solveName]; ok {
			ran = true
			break
		}
	}
	if !ran {
		return
	}
	fmt.Fprintf(w, "## Coarse solve: one-off factor vs per-cycle solve\n\n")
	fmt.Fprintf(w, "| config | factor (ms, once per hierarchy) | solve (ms, per V-cycle) | cycles to amortise factor |\n|---|---|---|---|\n")
	for _, c := range configs {
		art := arts[c.name()]
		f, okF := art.Benchmarks[factorName]
		s, okS := art.Benchmarks[solveName]
		row := func(e benchfmt.Entry, ok bool) string {
			if !ok {
				return "—"
			}
			return fmt.Sprintf("%.2f", e.NsPerOp/1e6)
		}
		amort := "—"
		if okF && okS && s.NsPerOp > 0 {
			amort = fmt.Sprintf("%.0f", f.NsPerOp/s.NsPerOp)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.name(), row(f, okF), row(s, okS), amort)
	}
	fmt.Fprintln(w)
}
